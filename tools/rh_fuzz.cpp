// rh_fuzz: differential command-stream fuzzer.
//
// Fuzz mode (default): generates seeded valid-by-construction command
// streams, mutates a fraction of them, replays each through the production
// timing checkers AND the independent JEDEC oracle, and fails loudly on
// any verdict disagreement — shrinking it to a minimal repro first.
//
//   rh_fuzz --seed 7 --iters 10000                  # CI smoke
//   rh_fuzz --seed 7 --iters 200 --disable-rule tFAW  # planted-bug check
//   rh_fuzz --seed 7 --iters 10000 --corpus out/      # save shrunk repros
//
// Replay mode: re-runs one .rhcs file (e.g. a committed corpus repro)
// through both implementations and checks its `! expect` directive.
//
//   rh_fuzz --replay tests/corpus/tfaw-window-edge.rhcs
//
// Output on stdout is byte-identical for identical flags (no clocks, no
// machine state), which CI relies on. Exit codes: 0 agreement, 1 usage or
// I/O error, 2 disagreement (or expectation mismatch in replay mode).
#include <algorithm>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "verify/checker_replay.hpp"
#include "verify/differential.hpp"

using namespace rh;

namespace {

int replay_file(const std::string& path) {
  const verify::StreamFile file = verify::load_stream_file(path);
  const auto oracle = verify::replay_oracle(file.commands, file.timings, file.banks);
  const auto checker = verify::replay_checker(file.commands, file.timings, file.banks);

  std::cout << "replay " << path << ": " << file.commands.size() << " commands, " << file.banks
            << " banks\n";
  const std::size_t rows = std::max(oracle.size(), checker.size());
  bool agree = true;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::string o = i < oracle.size() ? to_string(oracle[i]) : "<stopped>";
    const std::string c = i < checker.size() ? to_string(checker[i]) : "<stopped>";
    std::cout << "  cmd " << i << ": oracle=" << o << " checker=" << c
              << (o == c ? "" : "   <-- DISAGREE") << '\n';
    agree = agree && o == c;
  }
  if (!agree) {
    std::cout << "replay: DISAGREEMENT\n";
    return 2;
  }

  if (file.expect) {
    const auto& want = *file.expect;
    const verify::Verdict got = checker.empty() ? verify::ok_verdict() : checker.back();
    const std::size_t got_index = checker.empty() ? 0 : checker.size() - 1;
    const bool verdict_ok = got == want.verdict;
    const bool index_ok = want.verdict.ok() || got_index == want.index;
    if (!verdict_ok || !index_ok) {
      std::cout << "replay: expectation mismatch: want " << to_string(want.verdict) << " at cmd "
                << want.index << ", got " << to_string(got) << " at cmd " << got_index << '\n';
      return 2;
    }
    std::cout << "replay: agreement, expectation holds (" << to_string(want.verdict) << ")\n";
  } else {
    std::cout << "replay: agreement\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const common::CliArgs args(argc, argv);

    const std::string replay = args.get("replay", "");
    verify::FuzzConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.iters = static_cast<std::size_t>(args.get_positive_int("iters", 1000));
    cfg.gen.max_cmds = static_cast<std::size_t>(args.get_positive_int("max-cmds", 48));
    cfg.gen.banks = static_cast<std::uint32_t>(args.get_positive_int("banks", 8));
    cfg.mutate_fraction = args.get_fraction("mutate", 0.6);
    cfg.shrink = args.get_int("shrink", 1) != 0;
    cfg.corpus_dir = args.get("corpus", "");
    cfg.disable_rule = args.get("disable-rule", "");

    for (const auto& flag : args.unqueried_flags()) {
      std::cerr << "rh_fuzz: unknown flag --" << flag << '\n';
      return 1;
    }

    if (!replay.empty()) return replay_file(replay);

    const verify::FuzzStats stats = verify::run_fuzz(cfg, std::cout);
    return stats.disagreements == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "rh_fuzz: " << e.what() << '\n';
    return 1;
  }
}
