// rh_serve — the multi-tenant campaign service.
//
// Hosts the rig pool behind a tiny HTTP/1.1 JSON API (see
// src/serve/server.hpp for the route table). Jobs are durable: every
// descriptor and checkpoint journal lives in --data-dir, so killing the
// server and restarting it with the same directory resumes every
// in-flight job at its last journaled shard.
//
//   rh_serve --port=0 --data-dir=rh-serve-data --rigs=2
//
// Flags:
//   --port=N                 listen port; 0 (default) picks an ephemeral one
//   --port-file=PATH         write the bound port (for scripts; ephemeral)
//   --data-dir=PATH          job descriptors/journals/reports (default
//                            rh-serve-data, created if missing)
//   --rigs=N                 simulated-rig pool size (default 2)
//   --retries=N              per-shard transient retry budget (default 1)
//   --queue-limit=N          max active jobs server-wide (default 8)
//   --tenant-quota=N         max active jobs per tenant (default 4)
//   --stream-cycle-cadence=N device cycles between stream samples
//   --max-seconds=F          exit (with a drain) after F seconds; for CI
//   --storage-fault-rate=F   inject disk faults (short write, fsync failure,
//                            bit corruption, torn line, ENOSPC) into every
//                            job's durable outputs with probability F per
//                            write; jobs degrade (state failed, "storage: "
//                            reason), /healthz reports degraded, the server
//                            never crashes. For chaos testing with rh_fsck.
//   --storage-fault-seed=N   storage-fault-plan seed (deterministic storms)
//   --access-log=PATH        JSONL access log (default
//                            <data-dir>/access-log.jsonl, appended across
//                            restarts; CRC-framed torn-tail-safe lines)
//   --flightrec-size=N       flight-recorder ring capacity (default 256)
//
// SIGTERM/SIGINT drain gracefully: in-flight shards finish and journal,
// queued work is left for the next start, exit status 0. SIGQUIT dumps the
// flight recorder (recent admissions/steals/retries/storage errors) to
// <data-dir>/flightrec-<ts>.jsonl and keeps serving — the live post-mortem
// hook; GET /debugz/flightrec serves the same ring over HTTP.
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;

void handle_signal(int) { g_stop = 1; }
void handle_dump_signal(int) { g_dump = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace rh;
  try {
    const common::CliArgs args(argc, argv);

    serve::Server::Options options;
    const std::int64_t port = args.get_int("port", 0);
    if (port < 0 || port > 65535) {
      throw common::CliError("--port must be in [0, 65535], got " + std::to_string(port));
    }
    options.port = static_cast<std::uint16_t>(port);
    options.data_dir = args.get("data-dir", "rh-serve-data");
    options.rigs = static_cast<unsigned>(args.get_positive_int("rigs", 2));
    const std::int64_t retries = args.get_int("retries", 1);
    if (retries < 0) {
      throw common::CliError("--retries must be >= 0, got " + std::to_string(retries));
    }
    options.retries = static_cast<unsigned>(retries);
    options.queue_limit = static_cast<std::size_t>(args.get_positive_int("queue-limit", 8));
    options.tenant_quota = static_cast<std::size_t>(args.get_positive_int("tenant-quota", 4));
    options.stream_cycle_cadence =
        static_cast<std::uint64_t>(args.get_positive_int("stream-cycle-cadence", 1ll << 24));
    const double storage_fault_rate = args.get_fraction("storage-fault-rate", 0.0);
    if (storage_fault_rate > 0.0) options.storage_plan.set_all_rates(storage_fault_rate);
    options.storage_plan.seed =
        static_cast<std::uint64_t>(args.get_int("storage-fault-seed", 0x5709A));
    options.access_log = args.get("access-log", "");
    options.flightrec_size =
        static_cast<std::size_t>(args.get_positive_int("flightrec-size", 256));
    const double max_seconds = args.get_positive_double("max-seconds", 0.0);
    const std::string port_file = args.get("port-file", "");
    for (const auto& flag : args.unqueried_flags()) {
      std::cerr << "warning: unknown flag --" << flag << " ignored\n";
    }

    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGQUIT, handle_dump_signal);  // dump the flight recorder, keep serving
    std::signal(SIGPIPE, SIG_IGN);  // a peer hanging up must not kill us

    serve::Server server(options);
    server.start();
    if (!port_file.empty()) {
      std::ofstream out(port_file, std::ios::trunc);
      if (!out) throw common::ConfigError("cannot open port file: " + port_file);
      out << server.port() << '\n';
    }
    std::cout << "rh_serve: listening on 127.0.0.1:" << server.port() << " (data dir "
              << options.data_dir << ", " << options.rigs << " rigs)" << std::endl;

    const auto start = std::chrono::steady_clock::now();
    server.serve([&] {
      if (g_dump != 0) {
        g_dump = 0;
        const std::string path = server.dump_flightrec("sigquit");
        if (path.empty()) {
          std::cerr << "rh_serve: flight-recorder dump failed" << std::endl;
        } else {
          std::cout << "rh_serve: flight recorder dumped to " << path << std::endl;
        }
      }
      if (g_stop != 0) return true;
      if (max_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (elapsed >= max_seconds) return true;
      }
      return false;
    });
    std::cout << "rh_serve: drained, exiting" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rh_serve: " << e.what() << '\n';
    return 1;
  }
}
