// rh_report: campaign profiling and post-mortem reporting.
//
// Two modes:
//   rh_report --journal=PATH
//       Offline: summarize a checkpoint journal (shards done/failed/retried,
//       wall-ms-per-shard percentiles from the journal's cost annotations)
//       without re-running anything — including the journal of a campaign
//       that was killed mid-run and the one a resume appended to.
//   rh_report [campaign flags]
//       Run a fig4-style HC_first sweep and print/write its run report (the
//       phase profile, shard latency percentiles, throughput, and fault
//       summary). Takes the standard campaign flags (--seed, --stride,
//       --hammers, --tolerance, --jobs, --checkpoint, --resume, --retries,
//       --fault-rate, --fault-seed, --retry-attempts) plus:
//         --label=NAME     campaign label in the report (default "fig4")
//         --report=PATH    JSON output path (default "report.json")
//         --deterministic  write the deterministic projection (no wall-ms,
//                          call counts, or gauges) — byte-identical for a
//                          fixed seed regardless of --jobs or machine
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "campaign/journal.hpp"
#include "core/spatial.hpp"

using namespace rh;

int main(int argc, char** argv) {
  try {
    const common::CliArgs args(argc, argv);

    const std::string journal_path = args.get("journal", "");
    if (!journal_path.empty()) {
      benchutil::warn_unqueried(args);
      const campaign::JournalReader reader(journal_path);
      campaign::render_journal_summary(std::cout, journal_path, reader);
      return 0;
    }

    const auto seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));
    const std::string label = args.get("label", "fig4");
    const std::string report_path = args.get("report", "report.json");
    const bool deterministic = args.has("deterministic");

    core::SurveyConfig config;
    // Same sweep shape as bench/fig4, but strided sparser by default so a
    // report run finishes in seconds.
    config.row_stride = static_cast<std::uint32_t>(args.get_positive_int("stride", 2048));
    config.characterizer.max_hammers =
        static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
    config.characterizer.ber_hammers = config.characterizer.max_hammers;
    config.characterizer.wcdp_tolerance =
        static_cast<std::uint64_t>(args.get_positive_int("tolerance", 512));

    const campaign::SweepSpec spec =
        campaign::survey_sweep(benchutil::paper_device_config(seed), config);
    // The sink is always on here — the report's throughput axes come from
    // the fleet's cmd.* counters.
    telemetry::Telemetry sink;
    campaign::Campaign campaign(benchutil::campaign_config(args), &sink);
    const campaign::CampaignResult result = campaign.run(spec);
    const profiling::RunReport report =
        campaign::build_report(label, spec, campaign, result, &sink);
    benchutil::warn_unqueried(args);

    std::ofstream out(report_path);
    if (!out) throw common::ConfigError("cannot open report output file: " + report_path);
    profiling::write_report_json(out, report, !deterministic);
    out << '\n';

    profiling::render_report_text(std::cout, report);
    std::cout << "(report written to " << report_path << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rh_report: " << e.what() << '\n';
    return 1;
  }
}
