// rh_tail: live/post-mortem campaign monitor.
//
//   rh_tail --journal=PATH --stream=PATH [--follow] [--interval-ms=500]
//           [--stall-ms=2000] [--max-seconds=N]
//
// Joins a campaign's checkpoint journal and rh-metrics-stream/v1 file (at
// least one of --journal/--stream required) into one status view: progress
// and ETA, per-worker utilization, shard outcome counts, fault/recovery
// rates, and a stall watchdog that flags shards a worker claimed but never
// journaled.
//
// Without --follow, one status is printed and the tool exits — this works
// on the files of a *killed* campaign too (both readers tolerate a torn
// trailing line). With --follow, the files are re-read every --interval-ms;
// the watchdog trips when a suspect shard is still open after the files
// have been quiet for --stall-ms. The loop ends when the stream's final
// sample appears (exit 0) or after --max-seconds (exit 0 if finished,
// 3 if the watchdog tripped, 2 otherwise).
#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>

#include "campaign/tail.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"

using namespace rh;

namespace {

/// Combined size of the monitored files; 0 when neither exists yet.
std::uintmax_t monitored_bytes(const std::string& journal, const std::string& stream) {
  std::uintmax_t total = 0;
  std::error_code ec;
  if (!journal.empty()) {
    const auto size = std::filesystem::file_size(journal, ec);
    if (!ec) total += size;
  }
  if (!stream.empty()) {
    const auto size = std::filesystem::file_size(stream, ec);
    if (!ec) total += size;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const common::CliArgs args(argc, argv);
    const std::string journal = args.get("journal", "");
    const std::string stream = args.get("stream", "");
    const bool follow = args.has("follow");
    const double interval_ms =
        static_cast<double>(args.get_positive_int("interval-ms", 500));
    campaign::TailOptions opts;
    opts.stall_ms = static_cast<double>(args.get_positive_int("stall-ms", 2000));
    const double max_seconds = args.get_double("max-seconds", 0.0);
    const auto unknown = args.unqueried_flags();
    if (!unknown.empty()) {
      throw common::ConfigError("unknown flag --" + unknown.front());
    }
    if (journal.empty() && stream.empty()) {
      throw common::ConfigError("rh_tail needs --journal=PATH and/or --stream=PATH");
    }

    if (!follow) {
      // Post-mortem: observed_idle_ms stays < 0 so every claimed-but-not-
      // journaled shard is flagged outright.
      const campaign::TailStatus status = campaign::tail_status(journal, stream, opts);
      campaign::render_tail_status(std::cout, status);
      return 0;
    }

    const auto start = std::chrono::steady_clock::now();
    auto last_growth = start;
    std::uintmax_t last_bytes = monitored_bytes(journal, stream);
    bool tripped = false;
    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      const std::uintmax_t bytes = monitored_bytes(journal, stream);
      if (bytes != last_bytes) {
        last_bytes = bytes;
        last_growth = now;
      }
      opts.observed_idle_ms =
          std::chrono::duration<double, std::milli>(now - last_growth).count();

      bool readable = true;
      campaign::TailStatus status;
      try {
        status = campaign::tail_status(journal, stream, opts);
      } catch (const common::ConfigError&) {
        // The campaign has not created (or fully headered) the files yet.
        readable = false;
      }
      if (readable) {
        campaign::render_tail_status(std::cout, status);
        std::cout.flush();
        if (status.finished) return 0;
        tripped = status.watchdog_tripped;
      } else {
        std::cout << "[rh_tail] waiting for campaign files...\n";
      }

      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      if (max_seconds > 0.0 && elapsed_s >= max_seconds) {
        std::cerr << "rh_tail: gave up after " << max_seconds << " s without a final sample\n";
        return tripped ? 3 : 2;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(interval_ms));
    }
  } catch (const std::exception& e) {
    std::cerr << "rh_tail: " << e.what() << '\n';
    return 1;
  }
}
