// rh_fsck — offline integrity check and repair for campaign/serve durable
// state (src/campaign/fsck.hpp is the library; this is the CLI).
//
//   rh_fsck --data-dir=rh-serve-data [--repair]
//   rh_fsck ck.jsonl run.stream.jsonl [--repair]
//
// Scans every regular file in --data-dir (or the listed files): checkpoint
// journals and metrics streams are classified line by line with the
// readers' damage taxonomy; job descriptors and run reports are validated
// as whole documents; orphaned `.tmp` files from interrupted atomic writes
// are flagged. With --repair, torn tails are truncated, corrupt mid-file
// JSONL lines are quarantined to `<file>.quarantine` and the file is
// compacted, and orphaned tmp files are deleted — exactly the repairs a
// resuming campaign would apply, so a post-repair restart behaves as if
// the damage never happened.
//
// Exit status:
//   0  every file ok (or every damaged file repaired under --repair)
//   1  usage / IO error
//   2  unrepairable corruption present (destroyed header, corrupt
//      descriptor/report) — operator attention needed
//   3  repairable damage found and --repair was not given
#include <iostream>
#include <string>
#include <vector>

#include "campaign/fsck.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"

int main(int argc, char** argv) {
  using namespace rh;
  try {
    const common::CliArgs args(argc, argv);
    const std::string data_dir = args.get("data-dir", "");
    const bool repair = args.has("repair");
    const std::vector<std::string> files = args.positional();
    for (const auto& flag : args.unqueried_flags()) {
      std::cerr << "warning: unknown flag --" << flag << " ignored\n";
    }
    if (data_dir.empty() && files.empty()) {
      throw common::CliError("usage: rh_fsck --data-dir=DIR [--repair], or rh_fsck FILE...");
    }

    std::vector<campaign::FsckVerdict> verdicts;
    if (!data_dir.empty()) verdicts = campaign::fsck_scan(data_dir);
    for (const std::string& path : files) verdicts.push_back(campaign::fsck_file(path));

    std::cout << "rh_fsck: " << verdicts.size() << " file(s)"
              << (data_dir.empty() ? "" : " in " + data_dir) << '\n';
    campaign::render_fsck_report(std::cout, verdicts);

    bool unrepairable = false;
    bool damaged = false;
    for (const campaign::FsckVerdict& v : verdicts) {
      if (v.status == campaign::FsckStatus::kOk) continue;
      damaged = true;
      if (!v.repairable) {
        unrepairable = true;
        continue;
      }
      if (repair) {
        const std::string note = campaign::fsck_repair(v);
        std::cout << "repaired " << v.path << ": " << note << '\n';
      }
    }

    if (unrepairable) {
      std::cout << "rh_fsck: unrepairable corruption present\n";
      return 2;
    }
    if (damaged && !repair) {
      std::cout << "rh_fsck: repairable damage found (rerun with --repair)\n";
      return 3;
    }
    std::cout << (damaged ? "rh_fsck: all damage repaired\n" : "rh_fsck: clean\n");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rh_fsck: " << e.what() << '\n';
    return 1;
  }
}
