// rh_top: the operator console for a running rh_serve.
//
//   rh_top --port-file=PATH [--interval-ms=1000] [--max-seconds=F]
//   rh_top --port=N --once
//
// Polls GET /statz, /metricsz, and /jobs on the loopback service and joins
// them into one refreshing status frame: job-state tallies, shard/cache
// throughput and cache hit ratio, latency percentiles (HTTP handler,
// queue wait, steal wait, shard execution — recovered from the Prometheus
// histogram buckets), per-rig utilization bars, per-tenant quota pressure,
// and per-job progress with an ETA extrapolated from the shard completion
// rate between polls.
//
// Flags:
//   --port=N          the service's bound port
//   --port-file=PATH  read the port from rh_serve's --port-file (one of
//                     --port/--port-file is required)
//   --interval-ms=N   refresh cadence (default 1000)
//   --once            print ONE machine-readable JSON snapshot and exit —
//                     the scripting mode (no ETA: rates need two polls)
//   --max-seconds=F   stop refreshing after F seconds (default: forever);
//                     exit 0 — rh_top is a viewer, not a watchdog
//
// Exit status: 0 on a clean run, 1 on bad flags or (in --once mode) an
// unreachable/erroring server. In refresh mode an unreachable server is a
// "waiting" frame, not an exit — the server may simply not be up yet.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/record_io.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "serve/http.hpp"
#include "telemetry/metrics.hpp"

using namespace rh;

namespace {

/// One histogram family recovered from /metricsz cumulative buckets,
/// de-cumulated back into the fixed-width form histogram_quantile expects.
struct HistView {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;

  [[nodiscard]] double quantile(double q) const {
    return telemetry::histogram_quantile(lo, hi, counts, q);
  }
};

/// The slice of a Prometheus text exposition rh_top consumes: unlabeled
/// scalar samples by name, and `_bucket{le=...}` series per family.
struct Exposition {
  std::map<std::string, double> scalars;
  std::map<std::string, HistView> histograms;
};

Exposition parse_exposition(const std::string& text) {
  Exposition out;
  // family -> (upper edge, cumulative count), +Inf excluded.
  std::map<std::string, std::vector<std::pair<double, double>>> buckets;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string::size_type space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    std::string name = line.substr(0, space);
    const std::string::size_type brace = name.find('{');
    if (brace == std::string::npos) {
      out.scalars[name] = value;
      continue;
    }
    const std::string labels = name.substr(brace);
    name.resize(brace);
    if (name.size() > 7 && name.compare(name.size() - 7, 7, "_bucket") == 0) {
      const std::string::size_type le = labels.find("le=\"");
      if (le == std::string::npos) continue;
      const std::string upper_text = labels.substr(le + 4, labels.find('"', le + 4) - le - 4);
      if (upper_text == "+Inf") continue;
      buckets[name.substr(0, name.size() - 7)].emplace_back(
          std::strtod(upper_text.c_str(), nullptr), value);
    }
  }
  for (const auto& [family, edges] : buckets) {
    if (edges.empty()) continue;
    HistView h;
    const double width = edges.size() > 1 ? edges[1].first - edges[0].first : edges[0].first;
    h.lo = edges[0].first - width;
    h.hi = edges.back().first;
    double prev = 0.0;
    for (const auto& [upper, cum] : edges) {
      h.counts.push_back(static_cast<std::uint64_t>(cum - prev));
      prev = cum;
    }
    h.total = static_cast<std::uint64_t>(prev);
    out.histograms[family] = h;
  }
  return out;
}

std::string fetch(std::uint16_t port, const std::string& target) {
  const serve::HttpResponse resp = serve::http_request(port, "GET", target);
  if (resp.status != 200) {
    throw common::ConfigError("GET " + target + " answered " + std::to_string(resp.status));
  }
  return resp.body;
}

std::string fmt(double v, const char* suffix = "") {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%s", v, suffix);
  return buf;
}

std::string percentiles_text(const Exposition& m, const char* family, const char* unit) {
  const auto it = m.histograms.find(family);
  if (it == m.histograms.end() || it->second.total == 0) return "-";
  const HistView& h = it->second;
  return "p50 " + fmt(h.quantile(0.50), unit) + "  p90 " + fmt(h.quantile(0.90), unit) +
         "  p99 " + fmt(h.quantile(0.99), unit) + "  (n=" + std::to_string(h.total) + ")";
}

double stat_num(const campaign::JsonValue& statz, const char* key) {
  const campaign::JsonValue* v = statz.find(key);
  return v != nullptr ? v->as_double() : 0.0;
}

/// ETA bookkeeping: shard completions between two polls of the same job.
struct JobProgress {
  std::uint64_t done = 0;
  std::chrono::steady_clock::time_point at;
};

void render_frame(std::ostream& os, std::uint16_t port, const campaign::JsonValue& statz,
                  const Exposition& metrics, const campaign::JsonValue& jobs,
                  std::map<std::uint64_t, JobProgress>& progress) {
  const double hits = stat_num(statz, "serve.cache_hits");
  const double misses = stat_num(statz, "serve.cache_misses");
  const double lookups = hits + misses;
  const double uptime_ms = stat_num(statz, "serve.uptime_ms");

  os << "rh_serve @ 127.0.0.1:" << port << "   up " << fmt(uptime_ms / 1000.0, "s")
     << "   draining: " << (statz.at("draining").boolean ? "yes" : "no") << '\n';
  os << "jobs     active " << stat_num(statz, "serve.jobs_active") << " (queued "
     << stat_num(statz, "serve.jobs_queued") << ", running "
     << stat_num(statz, "serve.jobs_running") << ")   done "
     << stat_num(statz, "serve.jobs_done") << "  failed " << stat_num(statz, "serve.jobs_failed")
     << "  cancelled " << stat_num(statz, "serve.jobs_cancelled") << "   submitted "
     << stat_num(statz, "serve.jobs_submitted") << "  rejected "
     << stat_num(statz, "serve.jobs_rejected") << '\n';
  os << "shards   run " << stat_num(statz, "campaign.shards_run") << "  cached "
     << stat_num(statz, "serve.shards_cached") << "  stolen "
     << stat_num(statz, "serve.shards_stolen") << "   queue depth "
     << stat_num(statz, "serve.queue_depth") << '\n';
  os << "cache    entries " << stat_num(statz, "serve.cache_entries") << "  hits " << hits
     << "  misses " << misses << "   hit ratio "
     << (lookups > 0.0 ? fmt(100.0 * hits / lookups, "%") : "-") << '\n';
  os << "latency  http " << percentiles_text(metrics, "serve_http_request_us", "us")
     << "\n         queue-wait " << percentiles_text(metrics, "serve_queue_wait_ms", "ms")
     << "\n         steal-wait " << percentiles_text(metrics, "serve_steal_wait_ms", "ms")
     << "\n         shard-exec " << percentiles_text(metrics, "serve_shard_exec_ms", "ms")
     << '\n';

  const campaign::JsonValue* rigs = statz.find("rigs");
  if (rigs != nullptr) {
    for (std::size_t r = 0; r < rigs->items.size(); ++r) {
      const campaign::JsonValue& rig = rigs->items[r];
      const double utilization = rig.at("utilization").as_double();
      const int filled = static_cast<int>(std::lround(utilization * 10.0));
      std::string bar(static_cast<std::size_t>(filled), '#');
      bar.resize(10, '-');
      os << (r == 0 ? "rigs     " : "         ") << '[' << r << "] " << bar << ' '
         << fmt(100.0 * utilization, "%") << "  busy " << fmt(rig.at("busy_ms").as_double(), "ms")
         << "  done " << rig.at("done").as_u64() << "  steals " << rig.at("steals").as_u64();
      const std::int64_t shard = static_cast<std::int64_t>(rig.at("shard").as_double());
      if (shard >= 0) os << "  shard " << shard << " (job " << rig.at("job").as_u64() << ')';
      os << '\n';
    }
  }

  const campaign::JsonValue* tenants = statz.find("tenants");
  if (tenants != nullptr) {
    for (std::size_t t = 0; t < tenants->items.size(); ++t) {
      const campaign::JsonValue& row = tenants->items[t];
      os << (t == 0 ? "tenants  " : "         ") << row.at("tenant").text << ": active "
         << row.at("active").as_u64() << '/' << row.at("quota").as_u64() << "  submitted "
         << row.at("submitted").as_u64() << "  completed " << row.at("completed").as_u64()
         << "  rejected " << row.at("rejected").as_u64() << "  shards "
         << row.at("shards_run").as_u64() << "  cache-hits " << row.at("cache_hits").as_u64()
         << '\n';
    }
  }

  const auto now = std::chrono::steady_clock::now();
  std::map<std::uint64_t, JobProgress> next_progress;
  for (const campaign::JsonValue& job : jobs.at("jobs").items) {
    const std::string& state = job.at("state").text;
    const std::uint64_t id = job.at("id").as_u64();
    const campaign::JsonValue& shards = job.at("shards");
    const std::uint64_t done = shards.at("done").as_u64();
    const std::uint64_t total = shards.at("total").as_u64();
    if (state != "queued" && state != "running") continue;
    os << "job      #" << id << ' ' << state << "  " << done << '/' << total << " shards";
    if (total > 0) {
      os << " (" << fmt(100.0 * static_cast<double>(done) / static_cast<double>(total), "%")
         << ')';
    }
    // ETA from the completion rate since the previous poll of this job.
    const auto prev = progress.find(id);
    if (prev != progress.end() && done > prev->second.done) {
      const double dt =
          std::chrono::duration<double>(now - prev->second.at).count();
      const double rate = static_cast<double>(done - prev->second.done) / std::max(dt, 1e-9);
      os << "  ETA " << fmt(static_cast<double>(total - done) / rate, "s");
    }
    os << "  tenant " << job.at("tenant").text << '\n';
    next_progress[id] = JobProgress{done, now};
    if (prev != progress.end() && done == prev->second.done) next_progress[id] = prev->second;
  }
  progress = std::move(next_progress);
  os << '\n';
}

/// The --once snapshot: one compact JSON object (sorted keys) joining the
/// computed views a script wants without re-deriving them — cache hit
/// ratio, latency percentiles, rig utilization — plus the raw statz
/// document under "statz".
std::string once_json(const campaign::JsonValue& statz, const Exposition& metrics,
                      const std::string& statz_raw) {
  const double hits = stat_num(statz, "serve.cache_hits");
  const double lookups = hits + stat_num(statz, "serve.cache_misses");
  std::string out = "{\"cache_hit_ratio\":";
  out += campaign::format_double_exact(lookups > 0.0 ? hits / lookups : 0.0);
  out += ",\"latency\":{";
  bool first = true;
  for (const char* family :
       {"serve_http_request_us", "serve_queue_wait_ms", "serve_shard_exec_ms",
        "serve_steal_wait_ms"}) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += family;
    out += "\":";
    const auto it = metrics.histograms.find(family);
    if (it == metrics.histograms.end()) {
      out += "null";
      continue;
    }
    const HistView& h = it->second;
    out += "{\"count\":" + std::to_string(h.total);
    out += ",\"p50\":" + campaign::format_double_exact(h.quantile(0.50));
    out += ",\"p90\":" + campaign::format_double_exact(h.quantile(0.90));
    out += ",\"p99\":" + campaign::format_double_exact(h.quantile(0.99));
    out += '}';
  }
  out += "},\"schema\":\"rh-top-once/v1\",\"statz\":" + statz_raw + "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const common::CliArgs args(argc, argv);
    std::int64_t port_num = args.get_int("port", 0);
    const std::string port_file = args.get("port-file", "");
    const double interval_ms = static_cast<double>(args.get_positive_int("interval-ms", 1000));
    const bool once = args.has("once");
    const double max_seconds = args.get_positive_double("max-seconds", 0.0);
    const auto unknown = args.unqueried_flags();
    if (!unknown.empty()) {
      throw common::ConfigError("unknown flag --" + unknown.front());
    }
    if (port_num == 0 && port_file.empty()) {
      throw common::ConfigError("rh_top needs --port=N or --port-file=PATH");
    }
    if (port_num == 0) {
      std::ifstream in(port_file);
      if (!in || !(in >> port_num)) {
        throw common::ConfigError("cannot read port from " + port_file);
      }
    }
    if (port_num < 1 || port_num > 65535) {
      throw common::CliError("--port must be in [1, 65535], got " + std::to_string(port_num));
    }
    const auto port = static_cast<std::uint16_t>(port_num);

    if (once) {
      const std::string statz_raw = fetch(port, "/statz");
      const campaign::JsonValue statz = campaign::parse_json(statz_raw, "/statz");
      const Exposition metrics = parse_exposition(fetch(port, "/metricsz"));
      // statz_raw ends in '\n' (the HTTP body); trim for clean embedding.
      std::string trimmed = statz_raw;
      while (!trimmed.empty() && trimmed.back() == '\n') trimmed.pop_back();
      std::cout << once_json(statz, metrics, trimmed) << std::endl;
      return 0;
    }

    const auto start = std::chrono::steady_clock::now();
    std::map<std::uint64_t, JobProgress> progress;
    for (;;) {
      try {
        const std::string statz_raw = fetch(port, "/statz");
        const campaign::JsonValue statz = campaign::parse_json(statz_raw, "/statz");
        const Exposition metrics = parse_exposition(fetch(port, "/metricsz"));
        const campaign::JsonValue jobs = campaign::parse_json(fetch(port, "/jobs"), "/jobs");
        render_frame(std::cout, port, statz, metrics, jobs, progress);
        std::cout.flush();
      } catch (const common::Error&) {
        std::cout << "[rh_top] waiting for rh_serve on port " << port << "...\n";
        std::cout.flush();
      }
      if (max_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (elapsed >= max_seconds) return 0;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(interval_ms));
    }
  } catch (const std::exception& e) {
    std::cerr << "rh_top: " << e.what() << '\n';
    return 1;
  }
}
