// Fig. 4 of the paper: HC_first distribution across DRAM rows, per channel
// and data pattern (plus the per-row WCDP).
//
// Paper's headline observations this harness reproduces in shape:
//   - HC_first as low as ~14531 hammers across channels and patterns
//   - channels 6 and 7 have more rows with small HC_first
//   - HC_first depends on the pattern (ch0 means: Rowstripe0 57925 vs
//     Rowstripe1 79179 on the real chip)
#include <iostream>
#include <limits>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "core/spatial.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Figure 4", "HC_first across rows, channels, and data patterns");

  benchutil::TelemetrySession telem(args);

  core::SurveyConfig config;
  config.row_stride = static_cast<std::uint32_t>(args.get_positive_int("stride", 256));
  config.characterizer.max_hammers =
      static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
  config.characterizer.ber_hammers = config.characterizer.max_hammers;
  config.characterizer.wcdp_tolerance =
      static_cast<std::uint64_t>(args.get_positive_int("tolerance", 512));
  const auto records = benchutil::run_survey_campaign(args, seed, config, telem, "fig4");
  benchutil::warn_unqueried(args);
  const auto stats = core::aggregate_hc_first(records);

  common::Table table({"channel", "pattern", "min", "q1", "median", "q3", "max", "mean", "rows"});
  for (const auto& s : stats) {
    table.add_row({std::to_string(s.channel), core::pattern_label(s.pattern),
                   common::fmt_double(s.stats.min, 0), common::fmt_double(s.stats.q1, 0),
                   common::fmt_double(s.stats.median, 0), common::fmt_double(s.stats.q3, 0),
                   common::fmt_double(s.stats.max, 0), common::fmt_double(s.stats.mean, 0),
                   std::to_string(s.stats.count)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);

  std::vector<common::BoxRow> rows;
  for (const auto& s : stats) {
    if (s.pattern == core::kWcdpPatternIndex && s.stats.count > 0) {
      rows.push_back({"ch" + std::to_string(s.channel), s.stats});
    }
  }
  std::cout << "\nWCDP HC_first per channel (hammers):\n";
  common::render_boxplot(std::cout, rows, 64, "HC_first");

  // Headline numbers.
  double global_min = std::numeric_limits<double>::infinity();
  for (const auto& s : stats) {
    if (s.stats.count > 0) global_min = std::min(global_min, s.stats.min);
  }
  std::cout << "\npaper: min HC_first across channels/patterns = 14531  |  measured: "
            << common::fmt_double(global_min, 0) << '\n';
  std::map<std::size_t, double> ch0_mean;
  for (const auto& s : stats) {
    if (s.channel == 0) ch0_mean[s.pattern] = s.stats.mean;
  }
  std::cout << "paper: ch0 mean HC_first RS0 57925 / RS1 79179  |  measured: "
            << common::fmt_double(ch0_mean[0], 0) << " / " << common::fmt_double(ch0_mean[1], 0)
            << '\n';
  telem.finish();
  return 0;
}
