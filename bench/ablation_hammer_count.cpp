// Ablation A12: BER as a function of hammer count — the onset curve behind
// the paper's two metrics. HC_first is where the curve leaves zero; the
// 256 K-hammer BER (Figs. 3/5/6) is one vertical slice of it. The curve's
// shape (slow tail onset, then super-linear growth) is what makes both
// metrics necessary: neither alone describes the vulnerability.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));
  const auto rows = static_cast<std::uint32_t>(args.get_int("rows", 10));

  benchutil::banner("Ablation A12 (onset curve)", "BER vs hammer count, ch0 vs ch7");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  core::Characterizer chr(host, map);

  const std::vector<std::uint64_t> counts{8'192,  16'384,  32'768,  65'536,
                                          98'304, 131'072, 196'608, 262'144};
  common::Table table({"hammers", "ch0 mean BER", "ch7 mean BER", "ch0 rows flipped",
                       "ch7 rows flipped"});
  std::vector<double> curve7;
  for (const std::uint64_t hammers : counts) {
    double ber[2] = {0.0, 0.0};
    int flipped[2] = {0, 0};
    const std::uint32_t channels[2] = {0, 7};
    for (int c = 0; c < 2; ++c) {
      const core::Site site{channels[c], 0, 0};
      for (std::uint32_t i = 0; i < rows; ++i) {
        const auto r =
            chr.measure_ber(site, 410 + i * 23, core::DataPattern::kRowstripe0, hammers);
        ber[c] += r.ber();
        flipped[c] += r.bit_errors > 0;
      }
      ber[c] /= rows;
    }
    curve7.push_back(ber[1] * 100.0);
    table.add_row({std::to_string(hammers), common::fmt_percent(ber[0], 3),
                   common::fmt_percent(ber[1], 3),
                   std::to_string(flipped[0]) + "/" + std::to_string(rows),
                   std::to_string(flipped[1]) + "/" + std::to_string(rows)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);

  std::cout << '\n';
  common::render_line(std::cout, curve7, 64, 10,
                      "ch7 mean BER % vs hammer count (8K -> 256K)");
  std::cout << "\nexpected shape: zero below the per-row HC_first tail (~13-20K), then\n"
               "super-linear growth — the regime the paper samples at 256K hammers.\n";
  telem.finish();
  return 0;
}
