// Ablation A12: BER as a function of hammer count — the onset curve behind
// the paper's two metrics. HC_first is where the curve leaves zero; the
// 256 K-hammer BER (Figs. 3/5/6) is one vertical slice of it. The curve's
// shape (slow tail onset, then super-linear growth) is what makes both
// metrics necessary: neither alone describes the vulnerability.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "core/shard.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 10));

  benchutil::banner("Ablation A12 (onset curve)", "BER vs hammer count, ch0 vs ch7");

  benchutil::TelemetrySession telem(args);

  const std::vector<std::uint64_t> counts{8'192,  16'384,  32'768,  65'536,
                                          98'304, 131'072, 196'608, 262'144};
  const std::uint32_t channels[2] = {0, 7};

  // One shard per (hammer count, channel): `rows` rows starting at physical
  // row 410, every 23rd row, one Rowstripe0 measure_ber each. Each point of
  // the onset curve is an independent, journal-able unit of work.
  campaign::SweepSpec spec;
  spec.device = benchutil::paper_device_config(seed);
  for (const std::uint64_t hammers : counts) {
    for (const std::uint32_t channel : channels) {
      core::ShardSpec shard;
      shard.index = spec.shards.size();
      shard.site = core::Site{channel, 0, 0};
      shard.row_begin = 410;
      shard.row_end = 410 + rows * 23;
      shard.row_stride = 23;
      shard.mode = core::ShardMode::kSinglePattern;
      shard.pattern = 0;  // Rowstripe0
      shard.hammers = hammers;
      spec.shards.push_back(shard);
    }
  }

  campaign::Campaign campaign(benchutil::campaign_config(args), telem.sink());
  const auto result = campaign.run(spec);
  benchutil::warn_unqueried(args);

  common::Table table({"hammers", "ch0 mean BER", "ch7 mean BER", "ch0 rows flipped",
                       "ch7 rows flipped"});
  std::vector<double> curve7;
  for (std::size_t ci = 0; ci < counts.size(); ++ci) {
    double ber[2] = {0.0, 0.0};
    int flipped[2] = {0, 0};
    for (int c = 0; c < 2; ++c) {
      for (const auto& rec : result.per_shard[ci * 2 + static_cast<std::size_t>(c)]) {
        ber[c] += rec.ber[0].ber();
        flipped[c] += rec.ber[0].bit_errors > 0;
      }
      ber[c] /= rows;
    }
    curve7.push_back(ber[1] * 100.0);
    table.add_row({std::to_string(counts[ci]), common::fmt_percent(ber[0], 3),
                   common::fmt_percent(ber[1], 3),
                   std::to_string(flipped[0]) + "/" + std::to_string(rows),
                   std::to_string(flipped[1]) + "/" + std::to_string(rows)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);

  std::cout << '\n';
  common::render_line(std::cout, curve7, 64, 10,
                      "ch7 mean BER % vs hammer count (8K -> 256K)");
  std::cout << "\nexpected shape: zero below the per-row HC_first tail (~13-20K), then\n"
               "super-linear growth — the regime the paper samples at 256K hammers.\n";
  telem.finish();
  return 0;
}
