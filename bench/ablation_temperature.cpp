// Ablation A2 (paper §6, future work 2): RowHammer sensitivity to chip
// temperature, driven end-to-end through the thermal rig (heating pad +
// fan + PID controller), the way the real testbed changes temperature.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Ablation A2 (temperature)", "BER vs chip temperature via the thermal rig");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  const core::Site site{0, 0, 0};
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 12));
  benchutil::warn_unqueried(args);

  const core::RowMap map = core::RowMap::from_device(host.device());
  core::Characterizer chr(host, map);

  common::Table table({"target degC", "settled degC", "heater duty", "fan duty", "mean BER"});
  for (const double target : std::vector<double>{45.0, 65.0, 85.0, 95.0}) {
    host.set_chip_temperature(target);
    double ber_sum = 0.0;
    for (std::uint32_t i = 0; i < rows; ++i) {
      ber_sum += chr.measure_ber(site, 1024 + i * 11, core::DataPattern::kRowstripe0).ber();
    }
    table.add_row({common::fmt_double(target, 1),
                   common::fmt_double(host.thermal().temperature(), 2),
                   common::fmt_double(host.thermal().heater_duty(), 2),
                   common::fmt_double(host.thermal().fan_duty(), 2),
                   common::fmt_percent(ber_sum / rows, 3)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  std::cout << "\nexpected shape: mild monotone increase of BER with temperature\n"
               "(the paper runs all headline experiments at 85 degC).\n";
  telem.finish();
  return 0;
}
