// Ablation A10 (paper §4 defense implication, quantified): classic
// controller-side mitigations vs the same 256 K-hammer double-sided attack,
// uniform vs vulnerability-profile-aware provisioning.
//
// Protection metric: residual victim bitflips. Cost metric: preventive
// activations as a fraction of attack activations. The profile-aware rows
// provision each channel from its own measured minimum HC_first instead of
// the chip-wide worst case — the paper's "adapt to the heterogeneous
// distribution" suggestion, realized.
#include <iostream>

#include "bench_util.hpp"
#include "core/characterizer.hpp"
#include "defense/graphene.hpp"
#include "defense/harness.hpp"
#include "defense/para.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));
  const auto hammers = static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));

  benchutil::banner("Ablation A10 (defenses)",
                    "PARA / Graphene vs a 256K double-sided attack");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  defense::DefenseHarness harness(host, map);

  // Quick per-channel HC_first profile (the characterization this repo is
  // about) used by the aware variants.
  core::CharacterizerConfig ccfg;
  ccfg.wcdp_tolerance = 2048;
  core::Characterizer chr(host, map, ccfg);
  const auto profile_min_hc = [&](std::uint32_t channel) {
    double min_hc = 1e18;
    for (std::uint32_t i = 0; i < 10; ++i) {
      if (const auto hc = chr.measure_hc_first(core::Site{channel, 0, 0}, 400 + i * 97,
                                               core::DataPattern::kRowstripe0, 2048)) {
        min_hc = std::min(min_hc, static_cast<double>(*hc));
      }
    }
    return min_hc;
  };
  const double ch7_hc = profile_min_hc(7);
  const double ch0_hc = profile_min_hc(0);
  const double chip_hc = std::min(ch7_hc, ch0_hc);
  std::cout << "profiled min HC_first: ch0 " << common::fmt_double(ch0_hc, 0) << ", ch7 "
            << common::fmt_double(ch7_hc, 0) << "\n\n";

  common::Table table({"policy", "site", "victim flips", "preventive ACTs", "overhead"});
  const auto report = [&](const std::string& label, const core::Site& site,
                          std::uint32_t victim, defense::MitigationPolicy* policy) {
    const auto r = harness.run_double_sided(site, victim, hammers, policy);
    table.add_row({label, site.to_string(), std::to_string(r.victim_flips),
                   std::to_string(r.preventive_activations),
                   common::fmt_percent(r.overhead(), 2)});
  };

  const core::Site ch7{7, 0, 0};
  const core::Site ch0{0, 0, 0};
  report("none", ch7, 1200, nullptr);

  defense::Para para_uniform(map, {defense::Para::provision_probability(chip_hc), 7});
  report(para_uniform.name() + " uniform", ch7, 1212, &para_uniform);

  defense::Para para_aware_ch0(map, {defense::Para::provision_probability(ch0_hc), 7});
  report(para_aware_ch0.name() + " aware", ch0, 1212, &para_aware_ch0);

  defense::Graphene graphene_uniform(map, {defense::Graphene::provision_threshold(chip_hc), 64});
  report(graphene_uniform.name() + " uniform", ch7, 1224, &graphene_uniform);

  defense::Graphene graphene_aware(map, {defense::Graphene::provision_threshold(ch0_hc), 64});
  report(graphene_aware.name() + " aware", ch0, 1224, &graphene_aware);

  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  std::cout << "\nexpected shape: every defended run shows zero flips; the aware variants\n"
               "buy the same protection with visibly less preventive traffic on the\n"
               "stronger channel — the paper's variation-aware defense implication.\n";
  telem.finish();
  return 0;
}
