// Ablation A5 (paper §5 implication): what the undisclosed TRR does to a
// naive double-sided attack once periodic refresh is running.
//
// The paper's characterization disables refresh precisely because refresh
// triggers the in-DRAM mitigation. This harness shows the flip side: the
// same 256 K-hammer attack that ruins a victim row with refresh disabled
// induces no (or far fewer) bitflips when REF commands are interleaved at
// a realistic cadence, because the sampler catches the aggressor pair and
// refreshes the victim every 17th REF.
#include <iostream>

#include "bench_util.hpp"
#include "core/characterizer.hpp"
#include "core/data_patterns.hpp"
#include "core/row_map.hpp"

using namespace rh;

namespace {

std::uint64_t hammer_with_refresh(bender::BenderHost& host, const core::RowMap& map,
                                  const core::Site& site, std::uint32_t victim,
                                  std::uint64_t hammers, std::uint64_t refs) {
  const auto& geometry = host.device().geometry();
  const auto& timings = host.device().timings();
  const auto bank = static_cast<std::uint8_t>(site.bank);

  bender::ProgramBuilder b(geometry, timings);
  b.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
  b.program().set_wide_register(1, core::make_row_image(geometry, 0xFF));
  for (std::int64_t p = static_cast<std::int64_t>(victim) - 2; p <= victim + 2; ++p) {
    if (p < 0 || p >= static_cast<std::int64_t>(geometry.rows_per_bank)) continue;
    const bool agg = (p == victim - 1 || p == victim + 1);
    b.init_row(bank, map.physical_to_logical(static_cast<std::uint32_t>(p)), agg ? 1 : 0);
  }
  b.ldi(0, map.physical_to_logical(victim - 1));
  b.ldi(1, map.physical_to_logical(victim + 1));
  const std::uint64_t chunks = refs == 0 ? 1 : refs;
  const std::uint64_t chunk = hammers / chunks;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    b.hammer(bank, 0, 1, static_cast<std::int64_t>(chunk));
    if (refs > 0) {
      b.ref();
      b.sleep(static_cast<std::int64_t>(timings.tRFC));
    }
  }
  b.read_row(bank, map.physical_to_logical(victim));
  const auto result = host.run(b.take(), site.channel, site.pseudo_channel);

  std::uint64_t flips = 0;
  for (const std::uint8_t byte : result.readback) {
    flips += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(byte)));
  }
  return flips;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Ablation A5 (TRR efficacy)",
                    "256K-hammer attack with vs without interleaved REF");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  const core::Site site{7, 0, 0};  // most vulnerable channel
  const auto hammers = static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 6));
  benchutil::warn_unqueried(args);

  common::Table table({"victim row", "flips, REF off", "flips, 64 REFs", "flips, 512 REFs"});
  for (std::uint32_t i = 0; i < rows; ++i) {
    const std::uint32_t victim = 1200 + i * 13;
    const auto off = hammer_with_refresh(host, map, site, victim, hammers, 0);
    const auto sparse = hammer_with_refresh(host, map, site, victim, hammers, 64);
    const auto dense = hammer_with_refresh(host, map, site, victim, hammers, 512);
    table.add_row({std::to_string(victim), std::to_string(off), std::to_string(sparse),
                   std::to_string(dense)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  std::cout << "\nexpected shape: interleaved REF engages the period-17 TRR sampler, which\n"
               "keeps resetting the victim's disturbance; denser REF -> fewer/no flips.\n";
  telem.finish();
  return 0;
}
