// §5 of the paper: uncovering the undisclosed in-DRAM TRR mechanism with the
// U-TRR retention side channel.
//
// Paper's result this harness reproduces: the profiled victim row is
// refreshed once every 17 iterations (one periodic REF per iteration), so
// the chip implements a proprietary TRR that fires on every 17th REF —
// resembling the Vendor C mechanism U-TRR found in DDR4.
#include <iostream>

#include "bench_util.hpp"
#include "core/row_map.hpp"
#include "core/utrr.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Section 5", "U-TRR: uncovering the undisclosed in-DRAM TRR");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);

  const core::Site site{static_cast<std::uint32_t>(args.get_int("channel", 0)), 0,
                        static_cast<std::uint32_t>(args.get_int("bank", 0))};
  // Pick a probe row away from the REF-pointer sweep (2 rows advance per
  // REF; 100 iterations sweep rows 0..199).
  const auto probe_row = static_cast<std::uint32_t>(args.get_int("row", 4096));
  const auto iterations = static_cast<std::uint32_t>(args.get_positive_int("iterations", 100));
  benchutil::warn_unqueried(args);

  const core::RowMap map = core::RowMap::from_device(host.device());
  core::UtrrConfig config;
  config.iterations = iterations;
  core::UtrrExperiment experiment(host, map, config);

  // The probe row must have a measurable retention time; scan forward from
  // the requested row until one profiles successfully.
  core::UtrrResult result;
  std::uint32_t row = probe_row;
  for (;; ++row) {
    try {
      result = experiment.run(site, row);
      break;
    } catch (const common::Error&) {
      if (row > probe_row + 64) throw;
    }
  }

  std::cout << "probe row (physical):      " << row << '\n'
            << "profiled retention time:   " << common::fmt_double(result.retention_ms, 1)
            << " ms\n"
            << "per-iteration wait:        " << common::fmt_double(result.wait_ms, 1) << " ms\n"
            << "iterations:                " << iterations << '\n';

  std::cout << "refreshed at iterations:   ";
  for (const auto it : result.refreshed_iterations) std::cout << it << ' ';
  std::cout << '\n';

  common::Table table({"quantity", "paper", "measured"});
  table.add_row({"TRR detected", "yes", result.trr_detected() ? "yes" : "no"});
  table.add_row({"victim refresh period (REFs)", "17",
                 result.inferred_period ? std::to_string(*result.inferred_period) : "n/a"});
  table.add_row({"firings in 100 iterations", "~5",
                 std::to_string(result.refreshed_iterations.size())});
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  telem.finish();
  return 0;
}
