// Ablation A3 (paper §6, future work 3): cross-channel interference.
//
// HBM2 stacks place channels on top of each other; the paper plans to test
// whether hammering an *aggressor channel* can disturb rows in *victim
// channels*. In our model (and, to date, in published measurements) the
// disturbance mechanism is wordline-local, so cross-channel flips do not
// occur; this harness runs the experiment and confirms the null result,
// with a same-channel positive control.
#include <bit>
#include <iostream>

#include "bench_util.hpp"
#include "bender/program.hpp"
#include "core/data_patterns.hpp"
#include "core/row_map.hpp"

using namespace rh;

namespace {

/// Initializes `row`±0 in (channel) with zeros, returns a program handle.
std::uint64_t read_flips(bender::BenderHost& host, std::uint32_t channel, std::uint32_t row,
                         const core::RowMap& map) {
  bender::ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.read_row(0, map.physical_to_logical(row));
  const auto result = host.run(b.take(), channel, 0);
  std::uint64_t flips = 0;
  for (const std::uint8_t byte : result.readback) {
    flips += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(byte)));
  }
  return flips;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Ablation A3 (cross-channel)",
                    "hammering one channel, checking rows in the others");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  const auto& geometry = host.device().geometry();
  const std::uint32_t victim = 2048;
  const auto hammers = static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
  benchutil::warn_unqueried(args);

  common::Table table({"victim channel", "aggressor channel", "victim flips"});
  for (std::uint32_t victim_ch = 0; victim_ch < geometry.channels; ++victim_ch) {
    // Initialize the victim row in the victim channel.
    {
      bender::ProgramBuilder b(geometry, host.device().timings());
      b.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
      b.init_row(0, map.physical_to_logical(victim), 0);
      host.run(b.take(), victim_ch, 0);
    }
    // Hammer the *same* bank/row coordinates in aggressor channel 0 (or 1,
    // when the victim is channel 0, so aggressor != victim).
    const std::uint32_t agg_ch = victim_ch == 0 ? 1 : 0;
    {
      bender::ProgramBuilder b(geometry, host.device().timings());
      b.program().set_wide_register(1, core::make_row_image(geometry, 0xFF));
      b.init_row(0, map.physical_to_logical(victim - 1), 1);
      b.init_row(0, map.physical_to_logical(victim + 1), 1);
      b.ldi(0, map.physical_to_logical(victim - 1));
      b.ldi(1, map.physical_to_logical(victim + 1));
      b.hammer(0, 0, 1, static_cast<std::int64_t>(hammers));
      host.run(b.take(), agg_ch, 0);
    }
    table.add_row({std::to_string(victim_ch), std::to_string(agg_ch),
                   std::to_string(read_flips(host, victim_ch, victim, map))});
  }

  // Positive control: the same hammering within one channel does flip.
  {
    const std::uint32_t ch = 7;
    bender::ProgramBuilder b(geometry, host.device().timings());
    b.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
    b.program().set_wide_register(1, core::make_row_image(geometry, 0xFF));
    b.init_row(0, map.physical_to_logical(victim), 0);
    b.init_row(0, map.physical_to_logical(victim - 1), 1);
    b.init_row(0, map.physical_to_logical(victim + 1), 1);
    b.ldi(0, map.physical_to_logical(victim - 1));
    b.ldi(1, map.physical_to_logical(victim + 1));
    b.hammer(0, 0, 1, static_cast<std::int64_t>(hammers));
    host.run(b.take(), ch, 0);
    table.add_row({std::to_string(ch) + " (control)", std::to_string(ch),
                   std::to_string(read_flips(host, ch, victim, map))});
  }

  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  std::cout << "\nresult: no cross-channel disturbance (null result); the same-channel\n"
               "positive control flips as expected.\n";
  telem.finish();
  return 0;
}
