// M1: google-benchmark microbenchmarks of the simulator itself — the
// throughput numbers that make the figure-scale surveys tractable
// (per-activation cost, batch hammer macro-op, settled row reads, whole
// Bender programs, and the per-cell hash primitives).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.hpp"
#include "bender/program.hpp"
#include "common/rng.hpp"
#include "core/characterizer.hpp"
#include "core/data_patterns.hpp"
#include "core/row_map.hpp"

using namespace rh;

namespace {

hbm::DeviceConfig test_config() { return benchutil::paper_device_config(benchutil::kDefaultSeed); }

void BM_CellHash(benchmark::State& state) {
  std::uint64_t x = 0;
  for (auto _ : state) {
    x = common::hash_coords(x, 1, 2, 3, 4);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CellHash);

void BM_ApproxNormal(benchmark::State& state) {
  std::uint64_t h = 0x1234;
  double acc = 0.0;
  for (auto _ : state) {
    h = common::splitmix64(h);
    acc += common::approx_normal(h);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ApproxNormal);

void BM_ActivatePrechargeLoop(benchmark::State& state) {
  hbm::Device device(test_config());
  const hbm::BankAddress bank{0, 0, 0};
  const auto& t = device.timings();
  hbm::Cycle now = 1000;
  std::uint32_t row = 100;
  for (auto _ : state) {
    device.activate(bank, row, now);
    device.precharge(bank, now + t.tRAS);
    now += t.tRAS + t.tRP;  // the minimal legal ACT-to-ACT period via PRE
    row ^= 2;               // alternate between two non-adjacent rows
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ActivatePrechargeLoop);

// Telemetry overhead pin: the same ACT/PRE hot loop with (a) no sink
// attached — the shipping default, one null-pointer branch per command —
// and (b) a live sink recording counters + heatmap + trace. Compare
// against BM_ActivatePrechargeLoop; the unattached variant must stay
// within 5% of it (see DESIGN.md "Observability" for the budget).
void BM_ActivatePrechargeLoopTelemetryDetached(benchmark::State& state) {
  hbm::Device device(test_config());
  device.set_telemetry(nullptr);
  const hbm::BankAddress bank{0, 0, 0};
  const auto& t = device.timings();
  hbm::Cycle now = 1000;
  std::uint32_t row = 100;
  for (auto _ : state) {
    device.activate(bank, row, now);
    device.precharge(bank, now + t.tRAS);
    now += t.tRAS + t.tRP;
    row ^= 2;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ActivatePrechargeLoopTelemetryDetached);

void BM_ActivatePrechargeLoopTelemetryAttached(benchmark::State& state) {
  hbm::Device device(test_config());
  telemetry::Telemetry telem;
  device.set_telemetry(&telem);
  const hbm::BankAddress bank{0, 0, 0};
  const auto& t = device.timings();
  hbm::Cycle now = 1000;
  std::uint32_t row = 100;
  for (auto _ : state) {
    device.activate(bank, row, now);
    device.precharge(bank, now + t.tRAS);
    now += t.tRAS + t.tRP;
    row ^= 2;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["acts_recorded"] =
      static_cast<double>(telem.total_acts());
}
BENCHMARK(BM_ActivatePrechargeLoopTelemetryAttached);

void BM_HammerBatch256K(benchmark::State& state) {
  hbm::Device device(test_config());
  const hbm::BankAddress bank{0, 0, 0};
  const auto& t = device.timings();
  hbm::Cycle now = 1000;
  for (auto _ : state) {
    const hbm::Cycle end = now + 262'144 * 2 * t.tRC;
    device.hammer_pair(bank, 99, 101, 262'144, t.tRAS, end);
    now = end + t.tRP;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 262'144);
}
BENCHMARK(BM_HammerBatch256K);

void BM_BerMeasurement(benchmark::State& state) {
  bender::BenderHost host(test_config());
  const core::RowMap map = core::RowMap::from_device(host.device());
  core::Characterizer chr(host, map);
  const core::Site site{7, 0, 0};
  std::uint32_t row = 1000;
  for (auto _ : state) {
    const auto ber = chr.measure_ber(site, row, core::DataPattern::kRowstripe0);
    benchmark::DoNotOptimize(ber.bit_errors);
    row = 1000 + (row + 37) % 2000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BerMeasurement);

void BM_ProgramInitAndReadRow(benchmark::State& state) {
  bender::BenderHost host(test_config());
  const auto& geometry = host.device().geometry();
  for (auto _ : state) {
    bender::ProgramBuilder b(geometry, host.device().timings());
    b.program().set_wide_register(0, core::make_row_image(geometry, 0xA5));
    b.init_row(0, 42, 0);
    b.read_row(0, 42);
    const auto result = host.run(b.take(), 0, 0);
    benchmark::DoNotOptimize(result.readback.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProgramInitAndReadRow);

}  // namespace

BENCHMARK_MAIN();
