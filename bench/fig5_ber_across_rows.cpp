// Fig. 5 of the paper: per-row WCDP BER across a bank (first / middle / last
// 3 K rows, every channel), exposing the subarray structure.
//
// Paper's observations this harness reproduces in shape:
//   - BER rises toward the middle of each subarray and falls toward its
//     edges (periodic pattern across rows)
//   - subarrays of 832 rows (SA X) and 768 rows (SA Y) — also confirmed
//     here by the single-sided boundary probe of footnote 3
//   - the bank's last subarray (SA Z, last 832 rows) shows far fewer flips
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "core/row_map.hpp"
#include "core/spatial.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Figure 5", "BER for different rows across a bank (per-row WCDP)");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);

  core::SurveyConfig config;
  config.row_stride = static_cast<std::uint32_t>(args.get_positive_int("stride", 16));
  config.wcdp_by_ber = true;  // Fig. 5 only needs the per-row WCDP BER
  config.channels = {0, 7};   // default: best and worst channel
  if (args.has("all-channels")) config.channels = {0, 1, 2, 3, 4, 5, 6, 7};
  config.characterizer.ber_hammers =
      static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
  config.characterizer.max_hammers = config.characterizer.ber_hammers;

  // The survey itself runs as a sharded campaign (--jobs/--checkpoint/
  // --resume); `host` stays around for the layout queries and the
  // single-sided boundary probe below, which are cheap and serial.
  const auto records = benchutil::run_survey_campaign(args, seed, config, telem, "fig5");
  benchutil::warn_unqueried(args);
  const auto regions = core::paper_regions(host.device().geometry(), config.region_rows);

  common::Table table({"channel", "region", "physical row", "WCDP", "BER"});
  for (const auto& rec : records) {
    std::string region = "?";
    for (const auto& r : regions) {
      if (rec.physical_row >= r.first_row && rec.physical_row < r.first_row + r.rows) {
        region = r.name;
      }
    }
    table.add_row({std::to_string(rec.site.channel), region, std::to_string(rec.physical_row),
                   std::string(to_string(rec.wcdp)), common::fmt_percent(rec.wcdp_ber().ber(), 3)});
  }
  benchutil::maybe_write_csv(args, table);
  std::cout << "(" << table.rows() << " rows measured; per-row table in --csv output)\n";

  // Render the per-region series for the first configured channel, the way
  // the figure's subplots show them.
  const std::uint32_t render_channel = config.channels.front();
  for (const auto& region : regions) {
    std::vector<double> series;
    for (const auto& rec : records) {
      if (rec.site.channel != render_channel) continue;
      if (rec.physical_row < region.first_row || rec.physical_row >= region.first_row + region.rows)
        continue;
      series.push_back(rec.wcdp_ber().ber() * 100.0);
    }
    common::render_line(std::cout, series, 96, 10,
                        "ch" + std::to_string(render_channel) + " " + region.name +
                            " 3K rows (x = row, y = WCDP BER %)");
  }

  // Last-subarray attenuation (paper: last 832 rows).
  const auto& layout = host.device().subarray_layout();
  std::vector<double> last_sa;
  std::vector<double> rest;
  for (const auto& rec : records) {
    (layout.in_last_subarray(rec.physical_row) ? last_sa : rest)
        .push_back(rec.wcdp_ber().ber());
  }
  std::cout << "\nmean WCDP BER, last subarray (SA Z, 832 rows): "
            << common::fmt_percent(common::mean(last_sa), 3) << "  vs rest of bank: "
            << common::fmt_percent(common::mean(rest), 3) << '\n';

  // Reverse engineer the subarray boundaries in the middle region via the
  // paper's single-sided probe (footnote 3) and report the subarray sizes.
  if (!args.has("skip-boundaries")) {
    const core::RowMap map = core::RowMap::from_device(host.device());
    const core::Site site{render_channel, 0, 0};
    const auto middle = regions[1];
    const auto starts =
        core::find_subarray_boundaries(host, site, map, middle.first_row, middle.rows);
    std::cout << "\nsubarray starts detected in the middle region (single-sided probe):";
    for (const auto s : starts) std::cout << ' ' << s;
    std::cout << "\nimplied subarray sizes:";
    for (std::size_t i = 1; i < starts.size(); ++i) std::cout << ' ' << starts[i] - starts[i - 1];
    std::cout << "  (paper: 832 and 768)\n";
  }
  telem.finish();
  return 0;
}
