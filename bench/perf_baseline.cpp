// Perf baseline: runs the canonical fig4-style campaign and emits one
// machine-readable throughput document (BENCH_campaign.json) that CI diffs
// against the committed baseline in bench/baselines/ via
// scripts/check_perf.py.
//
// The two tracked axes are the report's throughput numbers:
//   - commands_per_host_second      — interface commands the fleet simulated
//                                     per second of real host time,
//   - device_cycles_per_host_second — how much silicon time one lab second
//                                     buys.
// Everything else in the document (phase wall breakdown, records, commands)
// is context for reading a regression, not a gate.
//
// Flags: --seed, --stride (default 2048, the CI smoke sweep), --hammers,
//        --tolerance, --jobs (default 2), --engine=fast|interp (default
//        fast), --out=PATH (default BENCH_campaign.json).
#include <fstream>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "core/spatial.hpp"
#include "profiling/report.hpp"

using namespace rh;

int main(int argc, char** argv) {
  try {
    const common::CliArgs args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));
    const auto stride = static_cast<std::uint32_t>(args.get_positive_int("stride", 2048));
    const std::string out_path = args.get("out", "BENCH_campaign.json");

    benchutil::banner("perf baseline", "campaign throughput (fig4-style sweep)");

    core::SurveyConfig config;
    config.row_stride = stride;
    config.characterizer.max_hammers =
        static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
    config.characterizer.ber_hammers = config.characterizer.max_hammers;
    config.characterizer.wcdp_tolerance =
        static_cast<std::uint64_t>(args.get_positive_int("tolerance", 512));

    campaign::CampaignConfig run_config;
    run_config.jobs = static_cast<unsigned>(args.get_positive_int("jobs", 2));
    run_config.engine = common::parse_engine_kind(args.get("engine", "fast"));
    benchutil::warn_unqueried(args);

    const campaign::SweepSpec spec =
        campaign::survey_sweep(benchutil::paper_device_config(seed), config);
    // Throughput needs the fleet's cmd.* counters; the per-command trace
    // ring is pure overhead here (nothing exports it) and would tax the
    // measurement, so keep it off.
    telemetry::TelemetryConfig sink_config;
    sink_config.trace_enabled = false;
    telemetry::Telemetry sink(sink_config);
    campaign::Campaign campaign(run_config, &sink);
    const campaign::CampaignResult result = campaign.run(spec);
    const profiling::RunReport report =
        campaign::build_report("perf_baseline", spec, campaign, result, &sink);

    std::ofstream out(out_path);
    if (!out) throw common::ConfigError("cannot open baseline output file: " + out_path);
    profiling::write_perf_baseline_json(out, report, stride);

    std::cout << "commands/s:        " << common::fmt_double(report.commands_per_host_second(), 0)
              << '\n'
              << "device cycles/s:   "
              << common::fmt_double(report.device_cycles_per_host_second(), 0) << '\n'
              << "elapsed:           " << common::fmt_double(report.elapsed_wall_ms * 1e-3, 2)
              << " s on " << report.jobs << " workers\n"
              << "(baseline written to " << out_path << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "perf_baseline: " << e.what() << '\n';
    return 1;
  }
}
