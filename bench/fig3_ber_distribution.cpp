// Fig. 3 of the paper: RowHammer BER distribution across DRAM rows, per
// channel and data pattern (plus the per-row worst-case data pattern).
//
// Paper's headline observations this harness reproduces in shape:
//   - bitflips occur in every tested row across all channels
//   - channels group in pairs (dies); channels 6 and 7 are worst
//   - channel 7 WCDP BER ~2x channel 0's
//   - BER depends on the data pattern (e.g. ch7 max BER: Rowstripe1 3.13%
//     vs Checkered0 2.04% on the real chip)
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "core/spatial.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Figure 3", "BER across rows, channels, and data patterns");

  benchutil::TelemetrySession telem(args);

  core::SurveyConfig config;
  config.row_stride = static_cast<std::uint32_t>(args.get_positive_int("stride", 256));
  config.characterizer.ber_hammers =
      static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
  config.characterizer.max_hammers = config.characterizer.ber_hammers;
  const auto records = benchutil::run_survey_campaign(args, seed, config, telem, "fig3");
  benchutil::warn_unqueried(args);
  const auto stats = core::aggregate_ber(records);

  common::Table table({"channel", "pattern", "min", "q1", "median", "q3", "max", "mean", "rows"});
  for (const auto& s : stats) {
    table.add_row({std::to_string(s.channel), core::pattern_label(s.pattern),
                   common::fmt_percent(s.stats.min), common::fmt_percent(s.stats.q1),
                   common::fmt_percent(s.stats.median), common::fmt_percent(s.stats.q3),
                   common::fmt_percent(s.stats.max), common::fmt_percent(s.stats.mean),
                   std::to_string(s.stats.count)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);

  // Compact rendering of the figure: WCDP box per channel.
  std::vector<common::BoxRow> rows;
  std::map<std::uint32_t, double> wcdp_mean;
  for (const auto& s : stats) {
    if (s.pattern == core::kWcdpPatternIndex) {
      common::BoxStats pct = s.stats;
      pct.min *= 100.0;
      pct.q1 *= 100.0;
      pct.median *= 100.0;
      pct.q3 *= 100.0;
      pct.max *= 100.0;
      pct.mean *= 100.0;
      rows.push_back({"ch" + std::to_string(s.channel), pct});
      wcdp_mean[s.channel] = s.stats.mean;
    }
  }
  std::cout << "\nWCDP BER per channel (percent):\n";
  common::render_boxplot(std::cout, rows, 64, "BER %");

  if (wcdp_mean.count(0) != 0 && wcdp_mean.count(7) != 0 && wcdp_mean[0] > 0.0) {
    std::cout << "\npaper: ch7 WCDP BER = 2.03x ch0  |  measured: " << common::fmt_double(
                     wcdp_mean[7] / wcdp_mean[0], 2)
              << "x\n";
  }
  telem.finish();
  return 0;
}
