// Ablation A6 (paper §4/§5 implications for future attacks): evading the
// uncovered TRR with sampler-poisoning decoy activations.
//
// Once §5 reveals the mitigation's structure — a single-entry activation
// sampler serviced every 17th REF — an attacker defeats it from entirely
// ordinary memory accesses: activate a harmless decoy row right before each
// REF, so the victim refresh lands on the decoy's neighbourhood. The victim
// keeps accumulating disturbance exactly as if refresh were off.
#include <iostream>

#include "bench_util.hpp"
#include "core/attack.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Ablation A6 (TRR evasion)",
                    "decoy activations poison the period-17 sampler");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  core::AttackRunner attacker(host, map);
  const core::Site site{7, 0, 0};
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 6));
  benchutil::warn_unqueried(args);

  core::AttackConfig no_ref;
  no_ref.refs = 0;
  core::AttackConfig with_ref;
  with_ref.refs = 512;

  common::Table table(
      {"victim row", "flips, REF off", "flips, double-sided + REF", "flips, decoy evasion + REF"});
  std::uint64_t blocked = 0;
  std::uint64_t evaded = 0;
  for (std::uint32_t i = 0; i < rows; ++i) {
    const std::uint32_t victim = 1200 + i * 13;
    const auto baseline = attacker.double_sided(site, victim, no_ref);
    const auto naive = attacker.double_sided(site, victim, with_ref);
    const auto decoy = attacker.decoy_evasion(site, victim, with_ref);
    blocked += naive.victim_flips;
    evaded += decoy.victim_flips;
    table.add_row({std::to_string(victim), std::to_string(baseline.victim_flips),
                   std::to_string(naive.victim_flips), std::to_string(decoy.victim_flips)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);

  // TRRespass-style many-sided hammering, same activation budget: the
  // one-entry sampler can only cover the last aggressor's neighbourhood.
  const auto many = attacker.many_sided(site, 1400, 4, with_ref);
  std::cout << "\nmany-sided (4 victims, refresh on) per-victim flips:";
  for (const auto f : many.per_victim_flips) std::cout << ' ' << f;
  std::cout << "  (only the last aggressor's victim is protected)\n";

  std::cout << "\nresult: the deployed mitigation stops the naive attack ("
            << blocked << " flips total) but the sampler-poisoning variant recovers "
            << evaded << " flips —\n"
               "knowing the mechanism (paper §5) is knowing how to defeat it.\n";
  telem.finish();
  return 0;
}
