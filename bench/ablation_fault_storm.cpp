// Fault-storm ablation: runs the same fig4-style HC_first survey twice —
// once fault-free, once under an infrastructure fault storm (every
// transport fault kind armed at --fault-rate) — and asserts the merged
// measurement tables are byte-identical.
//
// This is the end-to-end proof of the resilience plane's contract: every
// transport recovery (upload retry, CRC re-drain, doorbell re-arm) is
// charged to host wall-clock only, so a lossy PCIe link changes how long
// the campaign takes, never what it measures. Exit code 0 means zero
// silent corruptions and zero divergent records; any mismatch exits 1.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "campaign/record_io.hpp"
#include "core/spatial.hpp"

using namespace rh;

namespace {

std::string serialize(const std::vector<core::RowRecord>& records) {
  std::string out;
  for (const auto& record : records) campaign::append_row_record_json(out, record);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));
  const double fault_rate = args.get_fraction("fault-rate", 0.05);

  benchutil::banner("Fault storm",
                    "survey under transport-fault injection vs fault-free baseline");

  benchutil::TelemetrySession telem(args);

  core::SurveyConfig survey;
  survey.row_stride = static_cast<std::uint32_t>(args.get_positive_int("stride", 2048));
  survey.characterizer.max_hammers =
      static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
  survey.characterizer.ber_hammers = survey.characterizer.max_hammers;
  survey.characterizer.wcdp_tolerance =
      static_cast<std::uint64_t>(args.get_positive_int("tolerance", 512));
  const campaign::SweepSpec spec =
      campaign::survey_sweep(benchutil::paper_device_config(seed), survey);

  campaign::CampaignConfig config = benchutil::campaign_config(args);
  benchutil::warn_unqueried(args);

  // Baseline: same spec, same jobs, no injector.
  campaign::CampaignConfig baseline_config = config;
  baseline_config.fault_plan = resilience::FaultPlan{};
  std::cout << "baseline sweep (fault-free, " << spec.shards.size() << " shards, --jobs="
            << config.jobs << ") ...\n";
  campaign::Campaign baseline(baseline_config, telem.sink());
  const std::string baseline_records = serialize(baseline.run(spec).flat());

  // Storm: every transport fault armed at --fault-rate.
  config.fault_plan.set_transport_rates(fault_rate);
  std::cout << "storm sweep   (transport fault rate " << fault_rate << " per opportunity) ...\n";
  campaign::Campaign storm(config, telem.sink());
  const std::string storm_records = serialize(storm.run(spec).flat());

  const auto snapshot = storm.metrics().snapshot();
  common::Table table({"counter", "value"});
  for (const char* name : {"resilience.injected", "resilience.recovered",
                           "resilience.aborted", "campaign.shards_retried",
                           "campaign.shards_fatal", "campaign.records"}) {
    table.add_row({name, common::fmt_double(snapshot.value_or(name, 0.0), 0)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  telem.finish();

  const auto injected = static_cast<std::uint64_t>(snapshot.value_or("resilience.injected", 0.0));
  if (fault_rate > 0.0 && injected == 0) {
    std::cout << "\nFAIL: the storm injected no faults — the rate plumbing is broken\n";
    return 1;
  }
  if (storm_records != baseline_records) {
    std::cout << "\nFAIL: storm results diverge from the fault-free baseline ("
              << storm_records.size() << " vs " << baseline_records.size() << " bytes)\n";
    return 1;
  }
  std::cout << "\nPASS: " << injected << " injected transport faults, "
            << baseline_records.size()
            << " bytes of merged records byte-identical to the fault-free run\n";
  return 0;
}
