// Shared scaffolding for the figure/table bench harnesses.
//
// Every bench binary reproduces one artifact of the paper's evaluation and
// prints (a) the series the figure plots as an aligned table, (b) a compact
// ASCII rendering of the figure's shape, and (c) optional CSV via --csv.
// Flags shared by all benches:
//   --seed=N      device seed (default: the calibrated seed)
//   --stride=N    row-sampling stride (1 = the paper's full methodology)
//   --hammers=N   hammer count for BER tests (default 262144 = 256 K)
//   --csv=PATH    also write machine-readable CSV
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "bender/host.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "fault/config.hpp"
#include "hbm/device.hpp"

namespace rh::benchutil {

/// The paper's device: 4 GiB HBM2 stack, pair-swap row scrambling,
/// proprietary TRR with period 17, held at 85 degC.
inline hbm::DeviceConfig paper_device_config(std::uint64_t seed) {
  hbm::DeviceConfig config;
  config.fault.seed = seed;
  return config;
}

inline void warn_unqueried(const common::CliArgs& args) {
  for (const auto& flag : args.unqueried_flags()) {
    std::cerr << "warning: unknown flag --" << flag << " ignored\n";
  }
}

/// Prints the standard bench banner.
inline void banner(const std::string& artifact, const std::string& description) {
  std::cout << "==============================================================\n"
            << artifact << ": " << description << '\n'
            << "==============================================================\n";
}

/// Writes a table to the CSV path from --csv, if given.
inline void maybe_write_csv(const common::CliArgs& args, const common::Table& table) {
  const std::string path = args.get("csv", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw common::ConfigError("cannot open CSV output file: " + path);
  table.print_csv(out);
  std::cout << "(csv written to " << path << ")\n";
}

/// The calibrated device seed (the fault model's default).
inline const std::uint64_t kDefaultSeed = fault::FaultConfig{}.seed;

}  // namespace rh::benchutil
