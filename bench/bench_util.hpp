// Shared scaffolding for the figure/table bench harnesses.
//
// Every bench binary reproduces one artifact of the paper's evaluation and
// prints (a) the series the figure plots as an aligned table, (b) a compact
// ASCII rendering of the figure's shape, and (c) optional CSV via --csv.
// Flags shared by all benches:
//   --seed=N            device seed (default: the calibrated seed)
//   --stride=N          row-sampling stride (1 = the paper's full methodology)
//   --hammers=N         hammer count for BER tests (default 262144 = 256 K)
//   --csv=PATH          also write machine-readable CSV
//   --metrics-json=PATH write a telemetry metrics snapshot (counters, per-bank
//                       ACT heatmap, trace stats) as JSON
//   --trace=PATH        write the command trace as Chrome trace-event JSON
//                       (load in chrome://tracing or Perfetto)
//   --heatmap           print the per-bank ACT heatmap after the run
//   --report=PATH       write the campaign run report (phase profile, shard
//                       latencies, throughput, fault summary) as JSON; also
//                       forces a telemetry sink on so cmd.* counters exist
//                       (campaign-backed benches only)
// Campaign-backed benches (fig3/fig4/fig5, ablation_hammer_count) also take:
//   --jobs=N            worker threads, each with a private device clone;
//                       merged output is byte-identical for any N
//   --checkpoint=PATH   JSONL results journal written per completed shard
//   --resume            skip shards already in the --checkpoint journal
//                       (refuses a journal whose config hash mismatches)
//   --retries=N         shard retry budget for transient (infrastructure)
//                       failures; fatal errors are isolated immediately
//   --fault-rate=F      inject transport faults (upload timeout/drop, readback
//                       corrupt/short-read, executor stall) with probability F
//                       per opportunity; results stay byte-identical
//   --fault-seed=N      fault-plan seed (independent of the device seed)
//   --storage-fault-rate=F  inject disk faults (short write, fsync failure,
//                       bit corruption, torn line, ENOSPC) into the journal
//                       and metrics stream with probability F per write;
//                       results stay byte-identical, durability degrades
//   --storage-fault-seed=N  storage-fault-plan seed
//   --retry-attempts=N  per-host transport retry budget (RetryPolicy)
//   --engine=fast|interp         program engine for every worker host
//                                (default fast; results byte-identical)
//   --engine-bug=NAME            plant a fast-path bug (differential-rig
//                                sensitivity tests only; see common/engine.hpp)
//   --metrics-stream=PATH        live rh-metrics-stream/v1 JSONL (fsync'd per
//                                sample; follow with tools/rh_tail)
//   --stream-cycle-cadence=N     device cycles between per-worker samples
//                                (default 2^24, deterministic series)
//   --stream-wall-cadence-ms=F   wall ms between campaign-aggregate samples
//                                (default 200)
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bender/host.hpp"
#include "campaign/campaign.hpp"
#include "common/cli.hpp"
#include "common/engine.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "fault/config.hpp"
#include "hbm/device.hpp"
#include "profiling/report.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::benchutil {

/// The paper's device: 4 GiB HBM2 stack, pair-swap row scrambling,
/// proprietary TRR with period 17, held at 85 degC.
inline hbm::DeviceConfig paper_device_config(std::uint64_t seed) {
  hbm::DeviceConfig config;
  config.fault.seed = seed;
  return config;
}

inline void warn_unqueried(const common::CliArgs& args) {
  for (const auto& flag : args.unqueried_flags()) {
    std::cerr << "warning: unknown flag --" << flag << " ignored\n";
  }
}

/// Prints the standard bench banner.
inline void banner(const std::string& artifact, const std::string& description) {
  std::cout << "==============================================================\n"
            << artifact << ": " << description << '\n'
            << "==============================================================\n";
}

/// Writes a table to the CSV path from --csv, if given.
inline void maybe_write_csv(const common::CliArgs& args, const common::Table& table) {
  const std::string path = args.get("csv", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw common::ConfigError("cannot open CSV output file: " + path);
  table.print_csv(out);
  std::cout << "(csv written to " << path << ")\n";
}

/// The calibrated device seed (the fault model's default).
inline const std::uint64_t kDefaultSeed = fault::FaultConfig{}.seed;

/// Per-bench telemetry lifecycle: reads --metrics-json / --trace / --heatmap,
/// attaches a Telemetry sink to the host's device when any is requested, and
/// writes the requested outputs in finish(). When none of the flags is given
/// no sink is constructed and the device keeps its zero-overhead null path.
///
/// Campaign-backed benches pass sink() to the Campaign, which gives every
/// worker host a private sink and absorbs them all back into this session's
/// aggregate after the run — so the exported metrics/heatmap cover the whole
/// worker fleet, not just the main thread's host.
///
/// Usage:
///   TelemetrySession telem(args, host);   // right after constructing host
///   ... run the bench ...
///   telem.finish();                       // before process exit
class TelemetrySession {
public:
  /// Parses the flags only; call attach() for each host (population sweeps
  /// construct several devices; each feeds the same aggregating sink).
  explicit TelemetrySession(const common::CliArgs& args) {
    metrics_path_ = args.get("metrics-json", "");
    trace_path_ = args.get("trace", "");
    report_path_ = args.get("report", "");
    heatmap_ = args.has("heatmap");
    // Fail on unwritable paths now, not after a multi-minute run.
    probe_writable(metrics_path_, "metrics");
    probe_writable(trace_path_, "trace");
    probe_writable(report_path_, "report");
    if (enabled()) {
      telemetry::TelemetryConfig config;
      config.trace_enabled = !trace_path_.empty();
      telemetry_ = std::make_unique<telemetry::Telemetry>(config);
    }
  }

  TelemetrySession(const common::CliArgs& args, bender::BenderHost& host)
      : TelemetrySession(args) {
    attach(host);
  }

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Attaches the sink to a host's device. The session must outlive every
  /// command issued on the host (declare it after the host in main()).
  void attach(bender::BenderHost& host) {
    if (telemetry_) host.set_telemetry(telemetry_.get());
  }

  [[nodiscard]] bool enabled() const {
    return !metrics_path_.empty() || !trace_path_.empty() || !report_path_.empty() || heatmap_;
  }
  [[nodiscard]] telemetry::Telemetry* sink() { return telemetry_.get(); }
  [[nodiscard]] const std::string& report_path() const { return report_path_; }

  /// Writes the --report document for a finished campaign (no-op without the
  /// flag). run_survey_campaign calls this; benches that drive a Campaign by
  /// hand call it themselves before finish().
  void write_report(const std::string& label, const campaign::SweepSpec& spec,
                    const campaign::Campaign& campaign, const campaign::CampaignResult& result) {
    if (report_path_.empty()) return;
    const profiling::RunReport report =
        campaign::build_report(label, spec, campaign, result, telemetry_.get());
    std::ofstream out(report_path_);
    if (!out) throw common::ConfigError("cannot open report output file: " + report_path_);
    profiling::write_report_json(out, report);
    out << '\n';
    std::cout << "(report written to " << report_path_ << ")\n";
  }

  /// Hands the session a finished campaign's span forest (copied): the
  /// --trace export then carries the campaign -> shard -> attempt -> phase
  /// tree alongside the command slices. run_survey_campaign calls this.
  void set_spans(const telemetry::SpanSheet& spans) {
    spans_.clear();
    spans_.merge_from(spans);
    have_spans_ = true;
  }

  /// Writes the requested artifacts and prints one status line per file.
  void finish() {
    if (!telemetry_) return;
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) throw common::ConfigError("cannot open metrics output file: " + metrics_path_);
      telemetry_->write_metrics_json(out);
      std::cout << "(metrics written to " << metrics_path_ << ")\n";
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (!out) throw common::ConfigError("cannot open trace output file: " + trace_path_);
      telemetry_->write_chrome_trace(out, have_spans_ ? &spans_ : nullptr);
      std::cout << "(trace written to " << trace_path_ << ")\n";
    }
    if (heatmap_) telemetry_->render_act_heatmap(std::cout);
    if (const std::uint64_t dropped = telemetry_->trace_dropped_total(); dropped > 0) {
      std::cerr << "warning: " << dropped << " command-trace events dropped (ring capacity "
                << telemetry_->config().trace_capacity
                << "); the telemetry.trace_dropped counter carries the total\n";
    }
  }

private:
  static void probe_writable(const std::string& path, const char* what) {
    if (path.empty()) return;
    // Probe in append mode: a truncating open would destroy an existing
    // file here, before the run has produced anything to replace it with.
    std::ofstream out(path, std::ios::app);
    if (!out) {
      throw common::ConfigError(std::string("cannot open ") + what +
                                " output file: " + path);
    }
  }

  std::string metrics_path_;
  std::string trace_path_;
  std::string report_path_;
  bool heatmap_ = false;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  telemetry::SpanSheet spans_;
  bool have_spans_ = false;
};

/// Parses the shared campaign flags: --jobs=N, --checkpoint=PATH, --resume,
/// --retries=N (shard retry budget), plus the fault-injection knobs
/// --fault-rate=F (transport-fault probability per opportunity, in [0,1]),
/// --fault-seed=N (fault-plan seed, independent of the device seed), and
/// --retry-attempts=N (per-host transport retry budget). All numerics are
/// validated at the command line (CliError) rather than failing mid-sweep.
inline campaign::CampaignConfig campaign_config(const common::CliArgs& args) {
  campaign::CampaignConfig config;
  config.jobs = static_cast<unsigned>(args.get_positive_int("jobs", 1));
  config.checkpoint_path = args.get("checkpoint", "");
  config.resume = args.has("resume");
  config.retries = static_cast<unsigned>(args.get_positive_int("retries", 1));
  const double fault_rate = args.get_fraction("fault-rate", 0.0);
  if (fault_rate > 0.0) config.fault_plan.set_transport_rates(fault_rate);
  config.fault_plan.seed = static_cast<std::uint64_t>(args.get_int("fault-seed", 0x57084));
  const double storage_fault_rate = args.get_fraction("storage-fault-rate", 0.0);
  if (storage_fault_rate > 0.0) config.storage_fault_plan.set_all_rates(storage_fault_rate);
  config.storage_fault_plan.seed =
      static_cast<std::uint64_t>(args.get_int("storage-fault-seed", 0x5709A));
  config.retry_policy.max_attempts =
      static_cast<unsigned>(args.get_positive_int("retry-attempts", 4));
  config.metrics_stream_path = args.get("metrics-stream", "");
  config.stream_cycle_cadence = static_cast<std::uint64_t>(
      args.get_positive_int("stream-cycle-cadence",
                            static_cast<std::int64_t>(config.stream_cycle_cadence)));
  config.stream_wall_cadence_ms =
      args.get_positive_double("stream-wall-cadence-ms", config.stream_wall_cadence_ms);
  config.engine = common::parse_engine_kind(args.get("engine", "fast"));
  config.engine_bug = common::parse_planted_bug(args.get("engine-bug", "none"));
  if (config.resume && config.checkpoint_path.empty()) {
    throw common::ConfigError("--resume requires --checkpoint=PATH");
  }
  return config;
}

/// Runs a SpatialSurvey row sweep as a sharded campaign: identical records
/// in identical order to SpatialSurvey::survey_rows() on one host, but
/// spread over --jobs worker devices with checkpoint/resume. Worker
/// telemetry is aggregated into `telem`'s sink.
inline std::vector<core::RowRecord> run_survey_campaign(const common::CliArgs& args,
                                                        std::uint64_t seed,
                                                        const core::SurveyConfig& survey,
                                                        TelemetrySession& telem,
                                                        const std::string& label = "survey") {
  const campaign::SweepSpec spec = campaign::survey_sweep(paper_device_config(seed), survey);
  campaign::Campaign campaign(campaign_config(args), telem.sink());
  const campaign::CampaignResult result = campaign.run(spec);
  telem.set_spans(campaign.spans());
  telem.write_report(label, spec, campaign, result);
  return result.flat();
}

}  // namespace rh::benchutil
