// Ablation A8 (paper §6, future work 1): "testing more HBM chips".
//
// The paper tested a single stack and plans a population study for
// statistical significance. Here every seed is a different simulated chip
// (fresh process-variation and per-cell lotteries around the same physics);
// this harness characterizes a small population and reports how the
// headline metrics vary chip to chip — the qualitative claims must hold for
// every chip, while the exact numbers move.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto chips = static_cast<std::uint32_t>(args.get_positive_int("chips", 6));
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 16));

  benchutil::banner("Ablation A8 (chip population)",
                    "headline metrics across simulated chips (seeds)");

  benchutil::TelemetrySession telem(args);

  common::Table table({"chip (seed)", "ch0 mean BER", "ch7 mean BER", "ch7/ch0",
                       "min HC_first (sampled)"});
  std::vector<double> ratios;
  bool ordering_holds = true;

  for (std::uint32_t chip = 0; chip < chips; ++chip) {
    const std::uint64_t seed = benchutil::kDefaultSeed + chip * 0x9e37ULL;
    bender::BenderHost host(benchutil::paper_device_config(seed));
    telem.attach(host);
    host.device().set_temperature(85.0);
    const core::RowMap map = core::RowMap::from_device(host.device());
    core::CharacterizerConfig ccfg;
    ccfg.wcdp_tolerance = 2048;
    core::Characterizer chr(host, map, ccfg);

    double ber0 = 0.0;
    double ber7 = 0.0;
    std::uint64_t min_hc = ~0ULL;
    for (std::uint32_t i = 0; i < rows; ++i) {
      const std::uint32_t row = 400 + i * 61;
      ber0 += chr.measure_ber(core::Site{0, 0, 0}, row, core::DataPattern::kRowstripe0).ber();
      ber7 += chr.measure_ber(core::Site{7, 0, 0}, row, core::DataPattern::kRowstripe0).ber();
      if (const auto hc = chr.measure_hc_first(core::Site{7, 0, 0}, row,
                                               core::DataPattern::kRowstripe0, 2048)) {
        min_hc = std::min(min_hc, *hc);
      }
    }
    ber0 /= rows;
    ber7 /= rows;
    const double ratio = ber0 > 0 ? ber7 / ber0 : 0.0;
    ratios.push_back(ratio);
    ordering_holds &= ber7 > ber0;
    table.add_row({"0x" + [&] {
                     char buf[32];
                     std::snprintf(buf, sizeof buf, "%llx",
                                   static_cast<unsigned long long>(seed));
                     return std::string(buf);
                   }(),
                   common::fmt_percent(ber0, 3), common::fmt_percent(ber7, 3),
                   common::fmt_double(ratio, 2) + "x",
                   min_hc == ~0ULL ? "n/a" : std::to_string(min_hc)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);

  const auto stats = common::box_stats(ratios);
  std::cout << "\nch7/ch0 BER ratio across " << chips << " chips: median "
            << common::fmt_double(stats.median, 2) << "x, range ["
            << common::fmt_double(stats.min, 2) << "x, " << common::fmt_double(stats.max, 2)
            << "x]\nworst-die ordering (ch7 > ch0) held on "
            << (ordering_holds ? "every chip" : "NOT every chip — investigate!") << '\n';
  telem.finish();
  return 0;
}
