// Ablation A4 (paper §4 implication): a variation-aware RowHammer defense.
//
// The paper's second takeaway: "an RH defense mechanism can adapt itself to
// the heterogeneous distribution of the RH vulnerability across channels and
// subarrays, which may allow the defense mechanism to more efficiently
// prevent RH bitflips."
//
// This harness quantifies that: a preventive-refresh-style defense must
// bound the activation count any aggressor can reach below HC_first. A
// *uniform* defense provisions every channel for the chip-wide minimum
// HC_first; a *variation-aware* defense provisions each channel for its own
// minimum. Mitigation cost is modelled as proportional to 1/HC_first (the
// preventive refresh rate), so the saving is the gap between the chip-wide
// worst case and each channel's own worst case.
#include <iostream>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Ablation A4 (variation-aware defense)",
                    "per-channel HC_first profiling -> mitigation cost");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 24));
  benchutil::warn_unqueried(args);

  core::CharacterizerConfig ccfg;
  ccfg.wcdp_tolerance = 1024;
  core::Characterizer chr(host, map, ccfg);

  // Profile each channel's minimum HC_first over a row sample (RS0: the
  // strongest pattern on this chip).
  std::vector<double> channel_min(host.device().geometry().channels,
                                  std::numeric_limits<double>::infinity());
  for (std::uint32_t ch = 0; ch < host.device().geometry().channels; ++ch) {
    const core::Site site{ch, 0, 0};
    for (std::uint32_t i = 0; i < rows; ++i) {
      const std::uint32_t row = 512 + i * 97;
      if (const auto hc =
              chr.measure_hc_first(site, row, core::DataPattern::kRowstripe0, 1024)) {
        channel_min[ch] = std::min(channel_min[ch], static_cast<double>(*hc));
      }
    }
  }

  double chip_min = std::numeric_limits<double>::infinity();
  for (const double m : channel_min) chip_min = std::min(chip_min, m);

  common::Table table({"channel", "min HC_first", "uniform cost", "aware cost", "saving"});
  double total_uniform = 0.0;
  double total_aware = 0.0;
  for (std::uint32_t ch = 0; ch < channel_min.size(); ++ch) {
    const double uniform = 1.0;                       // provisioned for chip_min
    const double aware = chip_min / channel_min[ch];  // provisioned for own min
    total_uniform += uniform;
    total_aware += aware;
    table.add_row({std::to_string(ch), common::fmt_double(channel_min[ch], 0),
                   common::fmt_double(uniform, 3), common::fmt_double(aware, 3),
                   common::fmt_percent(1.0 - aware / uniform, 1)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  std::cout << "\ntotal mitigation cost (normalized preventive-refresh rate): uniform "
            << common::fmt_double(total_uniform, 2) << " vs variation-aware "
            << common::fmt_double(total_aware, 2) << " ("
            << common::fmt_percent(1.0 - total_aware / total_uniform, 1) << " saved)\n";
  telem.finish();
  return 0;
}
