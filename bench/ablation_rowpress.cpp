// Ablation A1 (paper §6, future work 2): sensitivity to the time an
// aggressor row remains open (RowPress, ISCA'23).
//
// Expectation encoded in the fault model: disturbance per activation grows
// with aggressor on-time, so at a fixed hammer count the BER rises and
// HC_first falls as tON grows. This harness sweeps tON and reports both.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Ablation A1 (RowPress)", "BER / HC_first vs aggressor row on-time");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const auto& timings = host.device().timings();

  const core::Site site{0, 0, 0};
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 8));
  const auto base_row = static_cast<std::uint32_t>(args.get_int("base-row", 1024));
  benchutil::warn_unqueried(args);

  const core::RowMap map = core::RowMap::from_device(host.device());

  // On-times: minimal (tRAS) and multiples of it. Long on-times slow the
  // hammer loop, so the per-test hammer budget shrinks to stay inside the
  // 27 ms retention bound — exactly the trade a real RowPress test faces.
  const std::vector<std::uint64_t> on_times{0, 2 * timings.tRAS, 4 * timings.tRAS,
                                            8 * timings.tRAS, 16 * timings.tRAS};

  common::Table table(
      {"on-time (cycles)", "hammers", "mean BER", "mean HC_first", "rows with flips"});
  for (const std::uint64_t on : on_times) {
    const hbm::Cycle per_hammer =
        2 * std::max<hbm::Cycle>(timings.tRC, std::max<hbm::Cycle>(on, timings.tRAS) + timings.tRP);
    // Stay within ~24 ms of hammering.
    const std::uint64_t budget = hbm::ms_to_cycles(24.0) / per_hammer;
    const std::uint64_t hammers = std::min<std::uint64_t>(262'144, budget);

    core::CharacterizerConfig config;
    config.aggressor_on_time = on;
    config.ber_hammers = hammers;
    config.max_hammers = hammers;
    core::Characterizer chr(host, map, config);

    double ber_sum = 0.0;
    double hc_sum = 0.0;
    int hc_count = 0;
    int flipped_rows = 0;
    for (std::uint32_t i = 0; i < rows; ++i) {
      const std::uint32_t row = base_row + i * 7;
      const auto ber = chr.measure_ber(site, row, core::DataPattern::kRowstripe0);
      ber_sum += ber.ber();
      if (ber.bit_errors > 0) ++flipped_rows;
      if (const auto hc = chr.measure_hc_first(site, row, core::DataPattern::kRowstripe0, 512)) {
        hc_sum += static_cast<double>(*hc);
        ++hc_count;
      }
    }
    table.add_row({std::to_string(on == 0 ? timings.tRAS : on), std::to_string(hammers),
                   common::fmt_percent(ber_sum / rows, 3),
                   hc_count > 0 ? common::fmt_double(hc_sum / hc_count, 0) : "n/a",
                   std::to_string(flipped_rows) + "/" + std::to_string(rows)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);
  std::cout << "\nexpected shape (RowPress): HC_first falls as on-time grows; per-hammer\n"
               "damage rises even though the timing budget allows fewer hammers.\n";
  telem.finish();
  return 0;
}
