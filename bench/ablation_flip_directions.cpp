// Ablation A9 (paper §4 closing observation): "the RH vulnerability of a
// cell depends on ... data stored in the neighboring cells" — bit-level
// anatomy of the flips.
//
// Prints, per data pattern: total flips across a row sample, the 0->1 vs
// 1->0 direction split (exposing the true-/anti-cell composition), and the
// per-cell repeatability of the flips.
#include <iostream>

#include "bench_util.hpp"
#include "core/bitflip_analysis.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 12));

  benchutil::banner("Ablation A9 (flip directions)",
                    "0->1 vs 1->0 bitflip anatomy per data pattern");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  core::BitflipAnalyzer analyzer(host, map);
  const core::Site site{7, 0, 0};

  common::Table table({"pattern", "victim byte", "flips", "0->1", "1->0", "0->1 share"});
  for (const auto pattern : core::kAllPatterns) {
    const auto census = analyzer.direction_census(site, 400, rows, 7, pattern);
    char victim[8];
    std::snprintf(victim, sizeof victim, "0x%02X", core::victim_byte(pattern));
    table.add_row({std::string(to_string(pattern)), victim, std::to_string(census.total()),
                   std::to_string(census.zero_to_one), std::to_string(census.one_to_zero),
                   common::fmt_percent(census.zero_to_one_fraction(), 1)});
  }
  table.print(std::cout);
  benchutil::maybe_write_csv(args, table);

  const double repeat = analyzer.repeatability(site, 416, core::DataPattern::kRowstripe0);
  std::cout << "\nper-cell repeatability of an identical repeated experiment: "
            << common::fmt_percent(repeat, 1)
            << "\n(RowHammer flips are per-cell deterministic — the property memory\n"
               "templating attacks rely on; checkered rows flip in both directions\n"
               "because both cell orientations hold charge somewhere in the row.)\n";
  telem.finish();
  return 0;
}
