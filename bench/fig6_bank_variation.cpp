// Fig. 6 of the paper: per-bank BER variation. Every bank (8 channels x 2
// pseudo channels x 16 banks = 256 banks) is summarized by the mean (y) and
// coefficient of variation (x) of its per-row WCDP BER over the first,
// middle, and last 100 rows.
//
// Paper's observations this harness reproduces in shape:
//   - banks vary in mean BER (up to ~0.23% spread within channel 7)
//   - bank-to-bank variation is dominated by channel-to-channel variation:
//     banks cluster by channel
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/ascii_plot.hpp"
#include "core/spatial.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(benchutil::kDefaultSeed)));

  benchutil::banner("Figure 6", "BER variation across banks (mean vs CV, 256 banks)");

  bender::BenderHost host(benchutil::paper_device_config(seed));
  benchutil::TelemetrySession telem(args, host);
  host.set_chip_temperature(85.0);

  core::SurveyConfig config;
  config.wcdp_by_ber = true;
  config.characterizer.ber_hammers =
      static_cast<std::uint64_t>(args.get_positive_int("hammers", 262144));
  config.characterizer.max_hammers = config.characterizer.ber_hammers;
  const auto rows_per_region =
      static_cast<std::uint32_t>(args.get_positive_int("rows-per-region", 100));
  const auto stride = static_cast<std::uint32_t>(args.get_positive_int("row-stride", 8));
  benchutil::warn_unqueried(args);

  core::SpatialSurvey survey(host, config);
  const auto points = survey.survey_banks(rows_per_region, stride);

  common::Table table({"channel", "pc", "bank", "mean BER", "CV", "rows"});
  for (const auto& p : points) {
    table.add_row({std::to_string(p.site.channel), std::to_string(p.site.pseudo_channel),
                   std::to_string(p.site.bank), common::fmt_percent(p.mean_ber, 3),
                   common::fmt_double(p.cv, 3), std::to_string(p.rows_tested)});
  }
  benchutil::maybe_write_csv(args, table);
  std::cout << "(" << table.rows() << " banks measured; per-bank table in --csv output)\n\n";

  // Scatter: glyph = channel digit (color in the paper); the paper marks
  // pseudo channels by shape, which the per-bank CSV preserves.
  std::vector<common::ScatterPoint> scatter;
  for (const auto& p : points) {
    scatter.push_back(
        {p.cv, p.mean_ber * 100.0, static_cast<char>('0' + (p.site.channel % 10))});
  }
  common::render_scatter(std::cout, scatter, 72, 20,
                         "per-bank mean WCDP BER % (y) vs CV (x); glyph = channel");

  // Headline checks.
  std::map<std::uint32_t, std::pair<double, double>> ch_minmax;  // channel -> {min,max} mean BER
  for (const auto& p : points) {
    auto it = ch_minmax.find(p.site.channel);
    if (it == ch_minmax.end()) {
      ch_minmax[p.site.channel] = {p.mean_ber, p.mean_ber};
    } else {
      it->second.first = std::min(it->second.first, p.mean_ber);
      it->second.second = std::max(it->second.second, p.mean_ber);
    }
  }
  common::Table summary({"channel", "min bank mean", "max bank mean", "spread (pp)"});
  for (const auto& [ch, mm] : ch_minmax) {
    summary.add_row({std::to_string(ch), common::fmt_percent(mm.first, 3),
                     common::fmt_percent(mm.second, 3),
                     common::fmt_double((mm.second - mm.first) * 100.0, 3)});
  }
  summary.print(std::cout);
  std::cout << "\npaper: up to 0.23% mean-BER spread across banks within ch7  |  measured ch7: "
            << common::fmt_double((ch_minmax[7].second - ch_minmax[7].first) * 100.0, 3)
            << " pp\n";

  // Channel dominance: worst within-channel spread vs cross-channel spread.
  double max_within = 0.0;
  for (const auto& [ch, mm] : ch_minmax) {
    (void)ch;
    max_within = std::max(max_within, mm.second - mm.first);
  }
  double lo = 1e9;
  double hi = -1e9;
  for (const auto& [ch, mm] : ch_minmax) {
    (void)ch;
    lo = std::min(lo, 0.5 * (mm.first + mm.second));
    hi = std::max(hi, 0.5 * (mm.first + mm.second));
  }
  std::cout << "cross-channel spread of channel means: " << common::fmt_double((hi - lo) * 100.0, 3)
            << " pp vs max within-channel bank spread: "
            << common::fmt_double(max_within * 100.0, 3)
            << " pp (paper: channel-level variation dominates)\n";
  telem.finish();
  return 0;
}
