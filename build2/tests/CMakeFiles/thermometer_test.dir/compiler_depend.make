# Empty compiler generated dependencies file for thermometer_test.
# This may be replaced when dependencies are built.
