file(REMOVE_RECURSE
  "CMakeFiles/thermometer_test.dir/thermometer_test.cpp.o"
  "CMakeFiles/thermometer_test.dir/thermometer_test.cpp.o.d"
  "thermometer_test"
  "thermometer_test.pdb"
  "thermometer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermometer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
