file(REMOVE_RECURSE
  "CMakeFiles/vendor_b_test.dir/vendor_b_test.cpp.o"
  "CMakeFiles/vendor_b_test.dir/vendor_b_test.cpp.o.d"
  "vendor_b_test"
  "vendor_b_test.pdb"
  "vendor_b_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_b_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
