file(REMOVE_RECURSE
  "CMakeFiles/bitflip_analysis_test.dir/bitflip_analysis_test.cpp.o"
  "CMakeFiles/bitflip_analysis_test.dir/bitflip_analysis_test.cpp.o.d"
  "bitflip_analysis_test"
  "bitflip_analysis_test.pdb"
  "bitflip_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitflip_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
