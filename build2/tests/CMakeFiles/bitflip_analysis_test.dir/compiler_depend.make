# Empty compiler generated dependencies file for bitflip_analysis_test.
# This may be replaced when dependencies are built.
