file(REMOVE_RECURSE
  "CMakeFiles/retention_model_test.dir/retention_model_test.cpp.o"
  "CMakeFiles/retention_model_test.dir/retention_model_test.cpp.o.d"
  "retention_model_test"
  "retention_model_test.pdb"
  "retention_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
