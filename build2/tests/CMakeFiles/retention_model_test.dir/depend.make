# Empty dependencies file for retention_model_test.
# This may be replaced when dependencies are built.
