file(REMOVE_RECURSE
  "CMakeFiles/paper_numbers_test.dir/paper_numbers_test.cpp.o"
  "CMakeFiles/paper_numbers_test.dir/paper_numbers_test.cpp.o.d"
  "paper_numbers_test"
  "paper_numbers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_numbers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
