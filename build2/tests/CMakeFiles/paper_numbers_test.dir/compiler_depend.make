# Empty compiler generated dependencies file for paper_numbers_test.
# This may be replaced when dependencies are built.
