file(REMOVE_RECURSE
  "CMakeFiles/rowhammer_model_test.dir/rowhammer_model_test.cpp.o"
  "CMakeFiles/rowhammer_model_test.dir/rowhammer_model_test.cpp.o.d"
  "rowhammer_model_test"
  "rowhammer_model_test.pdb"
  "rowhammer_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rowhammer_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
