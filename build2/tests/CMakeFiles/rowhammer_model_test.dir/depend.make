# Empty dependencies file for rowhammer_model_test.
# This may be replaced when dependencies are built.
