file(REMOVE_RECURSE
  "CMakeFiles/timing_checker_test.dir/timing_checker_test.cpp.o"
  "CMakeFiles/timing_checker_test.dir/timing_checker_test.cpp.o.d"
  "timing_checker_test"
  "timing_checker_test.pdb"
  "timing_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
