# Empty dependencies file for retention_profiler_test.
# This may be replaced when dependencies are built.
