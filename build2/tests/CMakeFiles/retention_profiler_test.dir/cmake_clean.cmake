file(REMOVE_RECURSE
  "CMakeFiles/retention_profiler_test.dir/retention_profiler_test.cpp.o"
  "CMakeFiles/retention_profiler_test.dir/retention_profiler_test.cpp.o.d"
  "retention_profiler_test"
  "retention_profiler_test.pdb"
  "retention_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
