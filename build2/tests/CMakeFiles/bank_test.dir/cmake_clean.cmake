file(REMOVE_RECURSE
  "CMakeFiles/bank_test.dir/bank_test.cpp.o"
  "CMakeFiles/bank_test.dir/bank_test.cpp.o.d"
  "bank_test"
  "bank_test.pdb"
  "bank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
