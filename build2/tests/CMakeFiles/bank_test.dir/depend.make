# Empty dependencies file for bank_test.
# This may be replaced when dependencies are built.
