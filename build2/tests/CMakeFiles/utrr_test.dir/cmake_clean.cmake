file(REMOVE_RECURSE
  "CMakeFiles/utrr_test.dir/utrr_test.cpp.o"
  "CMakeFiles/utrr_test.dir/utrr_test.cpp.o.d"
  "utrr_test"
  "utrr_test.pdb"
  "utrr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utrr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
