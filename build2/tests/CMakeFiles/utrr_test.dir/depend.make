# Empty dependencies file for utrr_test.
# This may be replaced when dependencies are built.
