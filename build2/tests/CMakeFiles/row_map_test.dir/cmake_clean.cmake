file(REMOVE_RECURSE
  "CMakeFiles/row_map_test.dir/row_map_test.cpp.o"
  "CMakeFiles/row_map_test.dir/row_map_test.cpp.o.d"
  "row_map_test"
  "row_map_test.pdb"
  "row_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
