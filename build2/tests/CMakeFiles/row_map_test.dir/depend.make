# Empty dependencies file for row_map_test.
# This may be replaced when dependencies are built.
