# Empty dependencies file for trr_test.
# This may be replaced when dependencies are built.
