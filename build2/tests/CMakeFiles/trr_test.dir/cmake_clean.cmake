file(REMOVE_RECURSE
  "CMakeFiles/trr_test.dir/trr_test.cpp.o"
  "CMakeFiles/trr_test.dir/trr_test.cpp.o.d"
  "trr_test"
  "trr_test.pdb"
  "trr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
