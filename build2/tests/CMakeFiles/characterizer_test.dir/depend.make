# Empty dependencies file for characterizer_test.
# This may be replaced when dependencies are built.
