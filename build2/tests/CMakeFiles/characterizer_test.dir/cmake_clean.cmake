file(REMOVE_RECURSE
  "CMakeFiles/characterizer_test.dir/characterizer_test.cpp.o"
  "CMakeFiles/characterizer_test.dir/characterizer_test.cpp.o.d"
  "characterizer_test"
  "characterizer_test.pdb"
  "characterizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
