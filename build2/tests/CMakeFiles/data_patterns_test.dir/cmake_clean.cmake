file(REMOVE_RECURSE
  "CMakeFiles/data_patterns_test.dir/data_patterns_test.cpp.o"
  "CMakeFiles/data_patterns_test.dir/data_patterns_test.cpp.o.d"
  "data_patterns_test"
  "data_patterns_test.pdb"
  "data_patterns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
