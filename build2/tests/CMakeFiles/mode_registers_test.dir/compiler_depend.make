# Empty compiler generated dependencies file for mode_registers_test.
# This may be replaced when dependencies are built.
