file(REMOVE_RECURSE
  "CMakeFiles/mode_registers_test.dir/mode_registers_test.cpp.o"
  "CMakeFiles/mode_registers_test.dir/mode_registers_test.cpp.o.d"
  "mode_registers_test"
  "mode_registers_test.pdb"
  "mode_registers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_registers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
