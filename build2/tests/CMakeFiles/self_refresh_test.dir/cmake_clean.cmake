file(REMOVE_RECURSE
  "CMakeFiles/self_refresh_test.dir/self_refresh_test.cpp.o"
  "CMakeFiles/self_refresh_test.dir/self_refresh_test.cpp.o.d"
  "self_refresh_test"
  "self_refresh_test.pdb"
  "self_refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
