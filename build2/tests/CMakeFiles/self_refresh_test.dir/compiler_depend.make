# Empty compiler generated dependencies file for self_refresh_test.
# This may be replaced when dependencies are built.
