file(REMOVE_RECURSE
  "CMakeFiles/process_variation_test.dir/process_variation_test.cpp.o"
  "CMakeFiles/process_variation_test.dir/process_variation_test.cpp.o.d"
  "process_variation_test"
  "process_variation_test.pdb"
  "process_variation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_variation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
