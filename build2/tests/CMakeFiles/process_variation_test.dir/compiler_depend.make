# Empty compiler generated dependencies file for process_variation_test.
# This may be replaced when dependencies are built.
