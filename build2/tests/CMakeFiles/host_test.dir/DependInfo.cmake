
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/host_test.cpp" "tests/CMakeFiles/host_test.dir/host_test.cpp.o" "gcc" "tests/CMakeFiles/host_test.dir/host_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/defense/CMakeFiles/rh_defense.dir/DependInfo.cmake"
  "/root/repo/build2/src/core/CMakeFiles/rh_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/bender/CMakeFiles/rh_bender.dir/DependInfo.cmake"
  "/root/repo/build2/src/hbm/CMakeFiles/rh_hbm.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/rh_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/trr/CMakeFiles/rh_trr.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/rh_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/telemetry/CMakeFiles/rh_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
