# Empty compiler generated dependencies file for rh_bender.
# This may be replaced when dependencies are built.
