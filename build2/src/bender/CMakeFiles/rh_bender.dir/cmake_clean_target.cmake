file(REMOVE_RECURSE
  "librh_bender.a"
)
