file(REMOVE_RECURSE
  "CMakeFiles/rh_bender.dir/executor.cpp.o"
  "CMakeFiles/rh_bender.dir/executor.cpp.o.d"
  "CMakeFiles/rh_bender.dir/host.cpp.o"
  "CMakeFiles/rh_bender.dir/host.cpp.o.d"
  "CMakeFiles/rh_bender.dir/program.cpp.o"
  "CMakeFiles/rh_bender.dir/program.cpp.o.d"
  "CMakeFiles/rh_bender.dir/thermal.cpp.o"
  "CMakeFiles/rh_bender.dir/thermal.cpp.o.d"
  "librh_bender.a"
  "librh_bender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_bender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
