file(REMOVE_RECURSE
  "librh_fault.a"
)
