file(REMOVE_RECURSE
  "CMakeFiles/rh_fault.dir/process_variation.cpp.o"
  "CMakeFiles/rh_fault.dir/process_variation.cpp.o.d"
  "CMakeFiles/rh_fault.dir/retention_model.cpp.o"
  "CMakeFiles/rh_fault.dir/retention_model.cpp.o.d"
  "CMakeFiles/rh_fault.dir/rowhammer_model.cpp.o"
  "CMakeFiles/rh_fault.dir/rowhammer_model.cpp.o.d"
  "librh_fault.a"
  "librh_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
