# Empty dependencies file for rh_fault.
# This may be replaced when dependencies are built.
