
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/process_variation.cpp" "src/fault/CMakeFiles/rh_fault.dir/process_variation.cpp.o" "gcc" "src/fault/CMakeFiles/rh_fault.dir/process_variation.cpp.o.d"
  "/root/repo/src/fault/retention_model.cpp" "src/fault/CMakeFiles/rh_fault.dir/retention_model.cpp.o" "gcc" "src/fault/CMakeFiles/rh_fault.dir/retention_model.cpp.o.d"
  "/root/repo/src/fault/rowhammer_model.cpp" "src/fault/CMakeFiles/rh_fault.dir/rowhammer_model.cpp.o" "gcc" "src/fault/CMakeFiles/rh_fault.dir/rowhammer_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/rh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
