file(REMOVE_RECURSE
  "CMakeFiles/rh_core.dir/attack.cpp.o"
  "CMakeFiles/rh_core.dir/attack.cpp.o.d"
  "CMakeFiles/rh_core.dir/bitflip_analysis.cpp.o"
  "CMakeFiles/rh_core.dir/bitflip_analysis.cpp.o.d"
  "CMakeFiles/rh_core.dir/characterizer.cpp.o"
  "CMakeFiles/rh_core.dir/characterizer.cpp.o.d"
  "CMakeFiles/rh_core.dir/data_patterns.cpp.o"
  "CMakeFiles/rh_core.dir/data_patterns.cpp.o.d"
  "CMakeFiles/rh_core.dir/retention_profiler.cpp.o"
  "CMakeFiles/rh_core.dir/retention_profiler.cpp.o.d"
  "CMakeFiles/rh_core.dir/row_map.cpp.o"
  "CMakeFiles/rh_core.dir/row_map.cpp.o.d"
  "CMakeFiles/rh_core.dir/spatial.cpp.o"
  "CMakeFiles/rh_core.dir/spatial.cpp.o.d"
  "CMakeFiles/rh_core.dir/thermometer.cpp.o"
  "CMakeFiles/rh_core.dir/thermometer.cpp.o.d"
  "CMakeFiles/rh_core.dir/utrr.cpp.o"
  "CMakeFiles/rh_core.dir/utrr.cpp.o.d"
  "librh_core.a"
  "librh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
