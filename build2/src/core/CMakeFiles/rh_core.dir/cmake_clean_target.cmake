file(REMOVE_RECURSE
  "librh_core.a"
)
