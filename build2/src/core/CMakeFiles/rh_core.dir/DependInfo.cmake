
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack.cpp" "src/core/CMakeFiles/rh_core.dir/attack.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/attack.cpp.o.d"
  "/root/repo/src/core/bitflip_analysis.cpp" "src/core/CMakeFiles/rh_core.dir/bitflip_analysis.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/bitflip_analysis.cpp.o.d"
  "/root/repo/src/core/characterizer.cpp" "src/core/CMakeFiles/rh_core.dir/characterizer.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/characterizer.cpp.o.d"
  "/root/repo/src/core/data_patterns.cpp" "src/core/CMakeFiles/rh_core.dir/data_patterns.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/data_patterns.cpp.o.d"
  "/root/repo/src/core/retention_profiler.cpp" "src/core/CMakeFiles/rh_core.dir/retention_profiler.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/retention_profiler.cpp.o.d"
  "/root/repo/src/core/row_map.cpp" "src/core/CMakeFiles/rh_core.dir/row_map.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/row_map.cpp.o.d"
  "/root/repo/src/core/spatial.cpp" "src/core/CMakeFiles/rh_core.dir/spatial.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/spatial.cpp.o.d"
  "/root/repo/src/core/thermometer.cpp" "src/core/CMakeFiles/rh_core.dir/thermometer.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/thermometer.cpp.o.d"
  "/root/repo/src/core/utrr.cpp" "src/core/CMakeFiles/rh_core.dir/utrr.cpp.o" "gcc" "src/core/CMakeFiles/rh_core.dir/utrr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/bender/CMakeFiles/rh_bender.dir/DependInfo.cmake"
  "/root/repo/build2/src/hbm/CMakeFiles/rh_hbm.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/rh_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/fault/CMakeFiles/rh_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/trr/CMakeFiles/rh_trr.dir/DependInfo.cmake"
  "/root/repo/build2/src/telemetry/CMakeFiles/rh_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
