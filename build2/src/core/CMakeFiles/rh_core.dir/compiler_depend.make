# Empty compiler generated dependencies file for rh_core.
# This may be replaced when dependencies are built.
