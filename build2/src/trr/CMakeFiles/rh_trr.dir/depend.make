# Empty dependencies file for rh_trr.
# This may be replaced when dependencies are built.
