file(REMOVE_RECURSE
  "CMakeFiles/rh_trr.dir/documented_trr.cpp.o"
  "CMakeFiles/rh_trr.dir/documented_trr.cpp.o.d"
  "CMakeFiles/rh_trr.dir/proprietary_trr.cpp.o"
  "CMakeFiles/rh_trr.dir/proprietary_trr.cpp.o.d"
  "librh_trr.a"
  "librh_trr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_trr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
