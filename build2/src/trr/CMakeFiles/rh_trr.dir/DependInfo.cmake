
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trr/documented_trr.cpp" "src/trr/CMakeFiles/rh_trr.dir/documented_trr.cpp.o" "gcc" "src/trr/CMakeFiles/rh_trr.dir/documented_trr.cpp.o.d"
  "/root/repo/src/trr/proprietary_trr.cpp" "src/trr/CMakeFiles/rh_trr.dir/proprietary_trr.cpp.o" "gcc" "src/trr/CMakeFiles/rh_trr.dir/proprietary_trr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/rh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
