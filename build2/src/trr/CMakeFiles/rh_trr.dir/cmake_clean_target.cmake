file(REMOVE_RECURSE
  "librh_trr.a"
)
