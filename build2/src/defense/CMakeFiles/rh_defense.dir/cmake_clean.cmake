file(REMOVE_RECURSE
  "CMakeFiles/rh_defense.dir/graphene.cpp.o"
  "CMakeFiles/rh_defense.dir/graphene.cpp.o.d"
  "CMakeFiles/rh_defense.dir/harness.cpp.o"
  "CMakeFiles/rh_defense.dir/harness.cpp.o.d"
  "CMakeFiles/rh_defense.dir/para.cpp.o"
  "CMakeFiles/rh_defense.dir/para.cpp.o.d"
  "CMakeFiles/rh_defense.dir/policy.cpp.o"
  "CMakeFiles/rh_defense.dir/policy.cpp.o.d"
  "librh_defense.a"
  "librh_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
