file(REMOVE_RECURSE
  "librh_defense.a"
)
