# Empty compiler generated dependencies file for rh_defense.
# This may be replaced when dependencies are built.
