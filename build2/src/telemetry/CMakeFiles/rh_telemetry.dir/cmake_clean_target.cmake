file(REMOVE_RECURSE
  "librh_telemetry.a"
)
