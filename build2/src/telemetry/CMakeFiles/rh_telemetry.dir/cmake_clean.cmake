file(REMOVE_RECURSE
  "CMakeFiles/rh_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/rh_telemetry.dir/metrics.cpp.o.d"
  "CMakeFiles/rh_telemetry.dir/telemetry.cpp.o"
  "CMakeFiles/rh_telemetry.dir/telemetry.cpp.o.d"
  "CMakeFiles/rh_telemetry.dir/trace.cpp.o"
  "CMakeFiles/rh_telemetry.dir/trace.cpp.o.d"
  "librh_telemetry.a"
  "librh_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
