# Empty compiler generated dependencies file for rh_telemetry.
# This may be replaced when dependencies are built.
