# Empty dependencies file for rh_common.
# This may be replaced when dependencies are built.
