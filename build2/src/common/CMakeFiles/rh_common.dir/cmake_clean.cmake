file(REMOVE_RECURSE
  "CMakeFiles/rh_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/rh_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/rh_common.dir/cli.cpp.o"
  "CMakeFiles/rh_common.dir/cli.cpp.o.d"
  "CMakeFiles/rh_common.dir/csv.cpp.o"
  "CMakeFiles/rh_common.dir/csv.cpp.o.d"
  "CMakeFiles/rh_common.dir/logging.cpp.o"
  "CMakeFiles/rh_common.dir/logging.cpp.o.d"
  "CMakeFiles/rh_common.dir/rng.cpp.o"
  "CMakeFiles/rh_common.dir/rng.cpp.o.d"
  "CMakeFiles/rh_common.dir/stats.cpp.o"
  "CMakeFiles/rh_common.dir/stats.cpp.o.d"
  "CMakeFiles/rh_common.dir/table.cpp.o"
  "CMakeFiles/rh_common.dir/table.cpp.o.d"
  "librh_common.a"
  "librh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
