file(REMOVE_RECURSE
  "librh_common.a"
)
