# Empty compiler generated dependencies file for rh_hbm.
# This may be replaced when dependencies are built.
