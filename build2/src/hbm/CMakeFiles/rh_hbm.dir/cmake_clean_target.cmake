file(REMOVE_RECURSE
  "librh_hbm.a"
)
