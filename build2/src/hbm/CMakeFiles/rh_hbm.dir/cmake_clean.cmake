file(REMOVE_RECURSE
  "CMakeFiles/rh_hbm.dir/bank.cpp.o"
  "CMakeFiles/rh_hbm.dir/bank.cpp.o.d"
  "CMakeFiles/rh_hbm.dir/device.cpp.o"
  "CMakeFiles/rh_hbm.dir/device.cpp.o.d"
  "CMakeFiles/rh_hbm.dir/ecc.cpp.o"
  "CMakeFiles/rh_hbm.dir/ecc.cpp.o.d"
  "CMakeFiles/rh_hbm.dir/pseudo_channel.cpp.o"
  "CMakeFiles/rh_hbm.dir/pseudo_channel.cpp.o.d"
  "CMakeFiles/rh_hbm.dir/timing_checker.cpp.o"
  "CMakeFiles/rh_hbm.dir/timing_checker.cpp.o.d"
  "librh_hbm.a"
  "librh_hbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rh_hbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
