
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbm/bank.cpp" "src/hbm/CMakeFiles/rh_hbm.dir/bank.cpp.o" "gcc" "src/hbm/CMakeFiles/rh_hbm.dir/bank.cpp.o.d"
  "/root/repo/src/hbm/device.cpp" "src/hbm/CMakeFiles/rh_hbm.dir/device.cpp.o" "gcc" "src/hbm/CMakeFiles/rh_hbm.dir/device.cpp.o.d"
  "/root/repo/src/hbm/ecc.cpp" "src/hbm/CMakeFiles/rh_hbm.dir/ecc.cpp.o" "gcc" "src/hbm/CMakeFiles/rh_hbm.dir/ecc.cpp.o.d"
  "/root/repo/src/hbm/pseudo_channel.cpp" "src/hbm/CMakeFiles/rh_hbm.dir/pseudo_channel.cpp.o" "gcc" "src/hbm/CMakeFiles/rh_hbm.dir/pseudo_channel.cpp.o.d"
  "/root/repo/src/hbm/timing_checker.cpp" "src/hbm/CMakeFiles/rh_hbm.dir/timing_checker.cpp.o" "gcc" "src/hbm/CMakeFiles/rh_hbm.dir/timing_checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/fault/CMakeFiles/rh_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/trr/CMakeFiles/rh_trr.dir/DependInfo.cmake"
  "/root/repo/build2/src/telemetry/CMakeFiles/rh_telemetry.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/rh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
