# Empty dependencies file for fig5_ber_across_rows.
# This may be replaced when dependencies are built.
