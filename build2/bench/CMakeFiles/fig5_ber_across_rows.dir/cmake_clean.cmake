file(REMOVE_RECURSE
  "CMakeFiles/fig5_ber_across_rows.dir/fig5_ber_across_rows.cpp.o"
  "CMakeFiles/fig5_ber_across_rows.dir/fig5_ber_across_rows.cpp.o.d"
  "fig5_ber_across_rows"
  "fig5_ber_across_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ber_across_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
