# Empty compiler generated dependencies file for fig6_bank_variation.
# This may be replaced when dependencies are built.
