file(REMOVE_RECURSE
  "CMakeFiles/fig6_bank_variation.dir/fig6_bank_variation.cpp.o"
  "CMakeFiles/fig6_bank_variation.dir/fig6_bank_variation.cpp.o.d"
  "fig6_bank_variation"
  "fig6_bank_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bank_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
