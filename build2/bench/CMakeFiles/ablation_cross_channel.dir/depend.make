# Empty dependencies file for ablation_cross_channel.
# This may be replaced when dependencies are built.
