file(REMOVE_RECURSE
  "CMakeFiles/ablation_cross_channel.dir/ablation_cross_channel.cpp.o"
  "CMakeFiles/ablation_cross_channel.dir/ablation_cross_channel.cpp.o.d"
  "ablation_cross_channel"
  "ablation_cross_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cross_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
