# Empty compiler generated dependencies file for ablation_defense_comparison.
# This may be replaced when dependencies are built.
