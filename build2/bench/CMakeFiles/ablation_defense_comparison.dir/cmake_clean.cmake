file(REMOVE_RECURSE
  "CMakeFiles/ablation_defense_comparison.dir/ablation_defense_comparison.cpp.o"
  "CMakeFiles/ablation_defense_comparison.dir/ablation_defense_comparison.cpp.o.d"
  "ablation_defense_comparison"
  "ablation_defense_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defense_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
