# Empty compiler generated dependencies file for ablation_flip_directions.
# This may be replaced when dependencies are built.
