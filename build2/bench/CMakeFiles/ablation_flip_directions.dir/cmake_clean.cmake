file(REMOVE_RECURSE
  "CMakeFiles/ablation_flip_directions.dir/ablation_flip_directions.cpp.o"
  "CMakeFiles/ablation_flip_directions.dir/ablation_flip_directions.cpp.o.d"
  "ablation_flip_directions"
  "ablation_flip_directions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flip_directions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
