# Empty dependencies file for fig4_hcfirst_distribution.
# This may be replaced when dependencies are built.
