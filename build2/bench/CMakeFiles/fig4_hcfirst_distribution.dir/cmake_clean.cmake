file(REMOVE_RECURSE
  "CMakeFiles/fig4_hcfirst_distribution.dir/fig4_hcfirst_distribution.cpp.o"
  "CMakeFiles/fig4_hcfirst_distribution.dir/fig4_hcfirst_distribution.cpp.o.d"
  "fig4_hcfirst_distribution"
  "fig4_hcfirst_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hcfirst_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
