file(REMOVE_RECURSE
  "CMakeFiles/ablation_rowpress.dir/ablation_rowpress.cpp.o"
  "CMakeFiles/ablation_rowpress.dir/ablation_rowpress.cpp.o.d"
  "ablation_rowpress"
  "ablation_rowpress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rowpress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
