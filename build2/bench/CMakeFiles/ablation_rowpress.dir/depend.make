# Empty dependencies file for ablation_rowpress.
# This may be replaced when dependencies are built.
