file(REMOVE_RECURSE
  "CMakeFiles/fig3_ber_distribution.dir/fig3_ber_distribution.cpp.o"
  "CMakeFiles/fig3_ber_distribution.dir/fig3_ber_distribution.cpp.o.d"
  "fig3_ber_distribution"
  "fig3_ber_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ber_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
