# Empty compiler generated dependencies file for fig3_ber_distribution.
# This may be replaced when dependencies are built.
