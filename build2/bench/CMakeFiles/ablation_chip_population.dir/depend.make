# Empty dependencies file for ablation_chip_population.
# This may be replaced when dependencies are built.
