file(REMOVE_RECURSE
  "CMakeFiles/ablation_chip_population.dir/ablation_chip_population.cpp.o"
  "CMakeFiles/ablation_chip_population.dir/ablation_chip_population.cpp.o.d"
  "ablation_chip_population"
  "ablation_chip_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chip_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
