# Empty compiler generated dependencies file for ablation_hammer_count.
# This may be replaced when dependencies are built.
