file(REMOVE_RECURSE
  "CMakeFiles/ablation_hammer_count.dir/ablation_hammer_count.cpp.o"
  "CMakeFiles/ablation_hammer_count.dir/ablation_hammer_count.cpp.o.d"
  "ablation_hammer_count"
  "ablation_hammer_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hammer_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
