file(REMOVE_RECURSE
  "CMakeFiles/ablation_temperature.dir/ablation_temperature.cpp.o"
  "CMakeFiles/ablation_temperature.dir/ablation_temperature.cpp.o.d"
  "ablation_temperature"
  "ablation_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
