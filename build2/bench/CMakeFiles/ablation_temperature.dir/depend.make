# Empty dependencies file for ablation_temperature.
# This may be replaced when dependencies are built.
