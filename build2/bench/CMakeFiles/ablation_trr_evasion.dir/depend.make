# Empty dependencies file for ablation_trr_evasion.
# This may be replaced when dependencies are built.
