file(REMOVE_RECURSE
  "CMakeFiles/ablation_trr_evasion.dir/ablation_trr_evasion.cpp.o"
  "CMakeFiles/ablation_trr_evasion.dir/ablation_trr_evasion.cpp.o.d"
  "ablation_trr_evasion"
  "ablation_trr_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trr_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
