file(REMOVE_RECURSE
  "CMakeFiles/ablation_trr_efficacy.dir/ablation_trr_efficacy.cpp.o"
  "CMakeFiles/ablation_trr_efficacy.dir/ablation_trr_efficacy.cpp.o.d"
  "ablation_trr_efficacy"
  "ablation_trr_efficacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trr_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
