# Empty compiler generated dependencies file for ablation_trr_efficacy.
# This may be replaced when dependencies are built.
