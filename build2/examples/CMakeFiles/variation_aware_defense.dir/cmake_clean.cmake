file(REMOVE_RECURSE
  "CMakeFiles/variation_aware_defense.dir/variation_aware_defense.cpp.o"
  "CMakeFiles/variation_aware_defense.dir/variation_aware_defense.cpp.o.d"
  "variation_aware_defense"
  "variation_aware_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_aware_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
