# Empty compiler generated dependencies file for variation_aware_defense.
# This may be replaced when dependencies are built.
