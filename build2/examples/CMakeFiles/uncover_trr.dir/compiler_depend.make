# Empty compiler generated dependencies file for uncover_trr.
# This may be replaced when dependencies are built.
