file(REMOVE_RECURSE
  "CMakeFiles/uncover_trr.dir/uncover_trr.cpp.o"
  "CMakeFiles/uncover_trr.dir/uncover_trr.cpp.o.d"
  "uncover_trr"
  "uncover_trr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncover_trr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
