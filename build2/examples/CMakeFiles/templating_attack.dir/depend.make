# Empty dependencies file for templating_attack.
# This may be replaced when dependencies are built.
