file(REMOVE_RECURSE
  "CMakeFiles/templating_attack.dir/templating_attack.cpp.o"
  "CMakeFiles/templating_attack.dir/templating_attack.cpp.o.d"
  "templating_attack"
  "templating_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/templating_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
