file(REMOVE_RECURSE
  "CMakeFiles/spatial_characterization.dir/spatial_characterization.cpp.o"
  "CMakeFiles/spatial_characterization.dir/spatial_characterization.cpp.o.d"
  "spatial_characterization"
  "spatial_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
