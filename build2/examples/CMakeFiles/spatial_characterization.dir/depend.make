# Empty dependencies file for spatial_characterization.
# This may be replaced when dependencies are built.
