# Empty dependencies file for dram_thermometer.
# This may be replaced when dependencies are built.
