file(REMOVE_RECURSE
  "CMakeFiles/dram_thermometer.dir/dram_thermometer.cpp.o"
  "CMakeFiles/dram_thermometer.dir/dram_thermometer.cpp.o.d"
  "dram_thermometer"
  "dram_thermometer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_thermometer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
