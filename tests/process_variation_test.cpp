#include "fault/process_variation.hpp"

#include <gtest/gtest.h>

#include "fault/config.hpp"
#include "hbm/geometry.hpp"

namespace rh::fault {
namespace {

class ProcessVariationTest : public ::testing::Test {
protected:
  FaultConfig cfg_{};
  hbm::Geometry geometry_ = hbm::paper_geometry();
  ProcessVariation pv_{cfg_, geometry_};

  BankContext bank(std::uint32_t ch, std::uint32_t pc = 0, std::uint32_t b = 0) const {
    return BankContext::from(geometry_, hbm::BankAddress{ch, pc, b});
  }
};

TEST_F(ProcessVariationTest, ChannelFactorsFollowDieOrdering) {
  // Channels 6-7 (die 3) must be the most vulnerable (paper Figs. 3-4).
  const double ch0 = pv_.channel_factor(0);
  const double ch7 = pv_.channel_factor(7);
  EXPECT_GT(ch7, ch0);
  EXPECT_GT(ch7 / ch0, 1.1);
  EXPECT_LT(ch7 / ch0, 1.8);
}

TEST_F(ProcessVariationTest, ChannelsOnOneDieAreCloserThanAcrossDies) {
  // The paper highlights channel *pairs* (same die) behaving alike.
  const double within = std::abs(pv_.channel_factor(6) - pv_.channel_factor(7));
  const double across = std::abs(pv_.channel_factor(7) - pv_.channel_factor(0));
  EXPECT_LT(within, across);
}

TEST_F(ProcessVariationTest, BankFactorsInheritChannelFactor) {
  for (std::uint32_t b = 0; b < geometry_.banks_per_pseudo_channel; ++b) {
    const double f = pv_.bank_factor(bank(7, 0, b));
    EXPECT_NEAR(f, pv_.channel_factor(7), pv_.channel_factor(7) * 0.2);
  }
}

TEST_F(ProcessVariationTest, BankJitterIsSmallButPresent) {
  bool any_diff = false;
  for (std::uint32_t b = 1; b < geometry_.banks_per_pseudo_channel; ++b) {
    if (pv_.bank_factor(bank(0, 0, b)) != pv_.bank_factor(bank(0, 0, 0))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(ProcessVariationTest, RowJitterIsDeterministicAndBounded) {
  const auto b = bank(3);
  for (std::uint32_t row = 0; row < 4096; row += 111) {
    const double j1 = pv_.row_jitter(b, row);
    const double j2 = pv_.row_jitter(b, row);
    EXPECT_DOUBLE_EQ(j1, j2);
    EXPECT_GT(j1, 0.4);
    EXPECT_LT(j1, 2.5);
  }
}

TEST_F(ProcessVariationTest, RowJitterVariesAcrossRowsAndBanks) {
  const auto b0 = bank(0, 0, 0);
  const auto b1 = bank(0, 0, 1);
  EXPECT_NE(pv_.row_jitter(b0, 10), pv_.row_jitter(b0, 11));
  EXPECT_NE(pv_.row_jitter(b0, 10), pv_.row_jitter(b1, 10));
}

TEST_F(ProcessVariationTest, DifferentSeedsGiveDifferentFabs) {
  FaultConfig other = cfg_;
  other.seed ^= 0x1111;
  const ProcessVariation pv2(other, geometry_);
  EXPECT_NE(pv_.channel_factor(0), pv2.channel_factor(0));
}

TEST_F(ProcessVariationTest, MeanRowJitterIsAboutUnity) {
  const auto b = bank(1);
  double sum = 0.0;
  const int n = 2000;
  for (int row = 0; row < n; ++row) sum += pv_.row_jitter(b, static_cast<std::uint32_t>(row));
  // Lognormal with small sigma: mean ~ exp(sigma^2/2) ~ 1.02.
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

}  // namespace
}  // namespace rh::fault
