// Satellite: the storage damage matrix against the readers and server boot.
//
// Started as header-only-file tests (a kill between the header fsync and
// the first shard leaves a header and nothing else; that is "0 of N
// complete", not corruption) and grew into the full matrix: torn tails,
// corrupt mid-file lines, truncated/destroyed headers, and orphaned .tmp
// files — each checked against the journal/stream readers and against a
// restarting rh_serve recovering its data directory.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "campaign/journal.hpp"
#include "campaign/record_io.hpp"
#include "campaign/tail.hpp"
#include "common/error.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"
#include "telemetry/stream.hpp"

namespace rh::campaign {
namespace {

class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

TEST(HeaderOnly, JournalReaderSeesZeroOfN) {
  const TempPath path("header_only_test_journal.jsonl");
  const JournalHeader header{0xFEEDu, 0xD00Du, 18};
  { const JournalWriter writer(path.str(), header); }  // header fsync, no shards

  const JournalReader reader(path.str());
  EXPECT_EQ(reader.header().seed, 0xFEEDu);
  EXPECT_EQ(reader.header().config_hash, 0xD00Du);
  EXPECT_EQ(reader.header().shard_count, 18u);
  EXPECT_TRUE(reader.shards().empty());
  EXPECT_TRUE(reader.outcomes().empty());
  EXPECT_GT(reader.intact_bytes(), 0u);
}

TEST(HeaderOnly, JournalSummaryRendersWithoutShardLines) {
  // rh_report --journal on a campaign killed before its first checkpoint.
  const TempPath path("header_only_test_summary.jsonl");
  { const JournalWriter writer(path.str(), JournalHeader{1, 2, 18}); }

  const JournalReader reader(path.str());
  std::ostringstream os;
  render_journal_summary(os, path.str(), reader);
  const std::string text = os.str();
  EXPECT_NE(text.find("0/18 complete"), std::string::npos) << text;
  EXPECT_NE(text.find("pending: 18 shards"), std::string::npos) << text;
  // No latency table: there are no wall-ms annotations to aggregate.
  EXPECT_EQ(text.find("p50"), std::string::npos) << text;
  EXPECT_NE(text.find("no per-shard wall-ms annotations"), std::string::npos) << text;
}

TEST(HeaderOnly, ResumeFromHeaderOnlyJournalKeepsTheHeader) {
  // A resume against a header-only journal must behave like a fresh start:
  // keep the header bytes, append from shard zero.
  const TempPath path("header_only_test_resume.jsonl");
  { const JournalWriter writer(path.str(), JournalHeader{7, 8, 4}); }
  const JournalReader before(path.str());
  { const JournalWriter resumed(path.str(), before.intact_bytes()); }
  const JournalReader after(path.str());
  EXPECT_EQ(after.header().seed, 7u);
  EXPECT_EQ(after.header().shard_count, 4u);
  EXPECT_TRUE(after.shards().empty());
}

TEST(HeaderOnly, MetricsStreamReaderSeesAnUnfinishedEmptyRun) {
  const TempPath path("header_only_test_stream.jsonl");
  telemetry::MetricsStreamHeader header;
  header.seed = 0xFEEDu;
  header.config_hash = 0xD00Du;
  header.shards = 18;
  header.jobs = 2;
  header.cycle_cadence = 1u << 20;
  header.wall_cadence_ms = 250.0;
  { const telemetry::MetricsStreamWriter writer(path.str(), header); }

  const MetricsStreamData data = read_metrics_stream(path.str());
  EXPECT_TRUE(data.has_header);
  EXPECT_EQ(data.seed, 0xFEEDu);
  EXPECT_EQ(data.shards, 18u);
  EXPECT_EQ(data.jobs, 2u);
  EXPECT_EQ(data.cycles_samples, 0u);
  EXPECT_EQ(data.wall_samples, 0u);
  EXPECT_FALSE(data.finished);
  EXPECT_FALSE(data.torn);
  EXPECT_TRUE(data.counters.empty());
  EXPECT_TRUE(data.workers.empty());
}

TEST(HeaderOnly, TornHeaderTailIsTolerated) {
  // A kill can tear even the first sample line; everything intact before it
  // (here: just the header) must still parse.
  const TempPath path("header_only_test_torn.jsonl");
  {
    const telemetry::MetricsStreamWriter writer(path.str(), telemetry::MetricsStreamHeader{});
  }
  {
    std::FILE* f = std::fopen(path.str().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"sample\":\"wall\",\"t_ms\":12.5,\"coun";
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);
  }
  const MetricsStreamData data = read_metrics_stream(path.str());
  EXPECT_TRUE(data.has_header);
  EXPECT_TRUE(data.torn);
  EXPECT_EQ(data.wall_samples, 0u);
  EXPECT_FALSE(data.finished);
}

TEST(DamageMatrix, TruncatedJournalHeaderIsFatal) {
  // A kill can tear even the header line. With no trusted identity line
  // the whole file is untrusted: the reader must refuse, and resume must
  // start over rather than guess.
  const TempPath path("damage_matrix_torn_header.jsonl");
  {
    std::ofstream out(path.str(), std::ios::binary);
    out << "{\"kind\":\"rh-campaign-journal\",\"version\":2,\"se";  // no newline
  }
  EXPECT_THROW((void)JournalReader(path.str()), common::ConfigError);
}

TEST(DamageMatrix, TruncatedStreamHeaderReadsAsTornAndEmpty) {
  // The stream is advisory telemetry: a torn header is a torn tail like
  // any other, not an error — there is just nothing to report yet.
  const TempPath path("damage_matrix_torn_stream_header.jsonl");
  {
    std::ofstream out(path.str(), std::ios::binary);
    out << "{\"kind\":\"rh-metrics-stream\",\"vers";  // no newline
  }
  const MetricsStreamData data = read_metrics_stream(path.str());
  EXPECT_FALSE(data.has_header);
  EXPECT_TRUE(data.torn);
  EXPECT_EQ(data.cycles_samples, 0u);
}

TEST(DamageMatrix, TornJournalTailKeepsEveryIntactShard) {
  const TempPath path("damage_matrix_torn_tail.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{3, 4, 6});
    core::RowRecord record;
    record.site = {0, 0, 1};
    record.physical_row = 11;
    writer.append_shard(0, {record}, 9.0, 1);
  }
  {
    std::ofstream out(path.str(), std::ios::app | std::ios::binary);
    out << "{\"shard\":1,\"reco";
  }
  const JournalReader reader(path.str());
  EXPECT_TRUE(reader.torn_tail());
  EXPECT_TRUE(reader.corrupt_lines().empty());
  EXPECT_EQ(reader.shards().size(), 1u);
}

TEST(DamageMatrix, CorruptMidFileJournalLineLeavesItsShardPending) {
  const TempPath path("damage_matrix_rot.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{3, 4, 6});
    core::RowRecord record;
    record.site = {0, 0, 1};
    record.physical_row = 11;
    writer.append_shard(0, {record}, 9.0, 1);
    writer.append_shard(1, {record}, 9.0, 1);
    writer.append_shard(2, {record}, 9.0, 1);
  }
  // Flip one byte in shard 1's line.
  std::string content;
  {
    std::ifstream in(path.str(), std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    content = ss.str();
  }
  std::size_t start = content.find('\n') + 1;       // past the header
  start = content.find('\n', start) + 1;            // past shard 0
  content[start + 10] ^= 0x01;
  {
    std::ofstream out(path.str(), std::ios::binary | std::ios::trunc);
    out << content;
  }
  const JournalReader reader(path.str());
  ASSERT_EQ(reader.corrupt_lines().size(), 1u);
  EXPECT_EQ(reader.shards().count(0), 1u);
  EXPECT_EQ(reader.shards().count(1), 0u);
  EXPECT_EQ(reader.shards().count(2), 1u);
  EXPECT_FALSE(reader.torn_tail());
}

}  // namespace
}  // namespace rh::campaign

// ---------------------------------------------------------------------------
// The same matrix against a restarting server: boot recovery must absorb
// every lesion without crashing, re-run exactly what was lost, and converge
// to the same result bytes.
// ---------------------------------------------------------------------------

namespace rh::serve {
namespace {

class TempDir {
public:
  explicit TempDir(std::string path) : path_(std::move(path)) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

CampaignConfig quick_config() {
  CampaignConfig config;
  config.label = "boot-recovery";
  config.channels = {0, 7};
  config.row_stride = 512;
  config.wcdp_by_ber = true;
  config.settle_thermal = false;
  config.max_rows_per_shard = 2;  // 18 shards
  return config;
}

HttpRequest request(const std::string& method, const std::string& target,
                    const std::string& body = "") {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.body = body;
  return req;
}

std::string wait_terminal(Server& server, std::uint64_t id) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    const HttpResponse resp = server.handle(request("GET", "/jobs/" + std::to_string(id)));
    EXPECT_EQ(resp.status, 200);
    const std::string state = campaign::parse_json(resp.body, "status").at("state").text;
    if (state != "queued" && state != "running") return state;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " still " << state;
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Runs one job to completion on `dir`, returning {id, results body}.
std::pair<std::uint64_t, std::string> run_clean_job(const std::string& dir) {
  Server::Options options;
  options.data_dir = dir;
  options.rigs = 1;
  Server server(options);
  server.start();
  const HttpResponse created =
      server.handle(request("POST", "/jobs", to_canonical_json(quick_config())));
  EXPECT_EQ(created.status, 201) << created.body;
  const std::uint64_t id = campaign::parse_json(created.body, "created").at("id").as_u64();
  EXPECT_EQ(wait_terminal(server, id), "done");
  const HttpResponse results =
      server.handle(request("GET", "/jobs/" + std::to_string(id) + "/results"));
  EXPECT_EQ(results.status, 200);
  return {id, results.body};
}  // ~Server drains

/// Marks the job's descriptor "running" so the next boot resumes it.
void reopen_descriptor(const std::string& dir, std::uint64_t id) {
  const std::string path = dir + "/job-" + std::to_string(id) + ".json";
  std::string text = read_file(path);
  const std::size_t at = text.find("\"state\":\"done\"");
  ASSERT_NE(at, std::string::npos) << text;
  text.replace(at, std::string("\"state\":\"done\"").size(), "\"state\":\"running\"");
  write_raw(path, text);
}

TEST(ServeBootRecovery, QuarantinesMidFileRotReRunsTheShardAndMatches) {
  const TempDir dir("boot_recovery_rot_data");
  const auto [id, clean_results] = run_clean_job(dir.str());
  ASSERT_FALSE(clean_results.empty());

  // The damage matrix, applied while the server is down: the descriptor
  // says the job is still running, one journaled shard line rots, a kill
  // tears the tail, and an interrupted atomic write leaves a .tmp orphan.
  reopen_descriptor(dir.str(), id);
  const std::string journal = dir.str() + "/job-" + std::to_string(id) + ".journal.jsonl";
  std::string text = read_file(journal);
  std::size_t start = text.find('\n') + 1;  // past the header
  start = text.find('\n', start) + 1;       // past the first shard line
  ASSERT_LT(start + 10, text.size());
  text[start + 10] ^= 0x01;                 // rot the second shard line
  text += "{\"shard\":99,\"rec";            // torn tail
  write_raw(journal, text);
  // The orphan rides on an id nobody owns: an orphan on a live job's
  // descriptor path would be legitimately consumed by that job's next
  // atomic rewrite, so it can't be asserted on after the resume.
  write_raw(dir.str() + "/job-777.json.tmp", "{\"half\":");

  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 1;
  Server server(options);
  server.start();  // must not throw, crash, or wedge on any of it
  EXPECT_EQ(wait_terminal(server, id), "done");

  const HttpResponse status = server.handle(request("GET", "/jobs/" + std::to_string(id)));
  const campaign::JsonValue doc = campaign::parse_json(status.body, "status");
  EXPECT_GT(doc.at("shards").at("cached").as_u64(), 0u)
      << "intact journal lines must be restored, not re-run";
  EXPECT_EQ(doc.at("shards").at("failed").as_u64(), 0u);

  const HttpResponse results =
      server.handle(request("GET", "/jobs/" + std::to_string(id) + "/results"));
  EXPECT_EQ(results.body, clean_results)
      << "recovery from rot must converge to the clean bytes";
  EXPECT_TRUE(std::filesystem::exists(journal + ".quarantine"))
      << "the rotted line is preserved for the operator";
  EXPECT_TRUE(std::filesystem::exists(dir.str() + "/job-777.json.tmp"))
      << "boot recovery must not mistake an orphan tmp for a descriptor";
  const HttpResponse ghost = server.handle(request("GET", "/jobs/777"));
  EXPECT_EQ(ghost.status, 404) << "an orphan tmp must not materialize a job";
}

TEST(ServeBootRecovery, DestroyedJournalHeaderStartsOverAndStillFinishes) {
  const TempDir dir("boot_recovery_header_data");
  const auto [id, clean_results] = run_clean_job(dir.str());

  reopen_descriptor(dir.str(), id);
  const std::string journal = dir.str() + "/job-" + std::to_string(id) + ".journal.jsonl";
  std::string text = read_file(journal);
  text[text.find('\n') / 2] ^= 0x01;  // destroy the identity line
  write_raw(journal, text);

  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 1;
  Server server(options);
  server.start();
  EXPECT_EQ(wait_terminal(server, id), "done");

  const HttpResponse status = server.handle(request("GET", "/jobs/" + std::to_string(id)));
  const campaign::JsonValue doc = campaign::parse_json(status.body, "status");
  EXPECT_EQ(doc.at("shards").at("cached").as_u64(), 0u)
      << "an untrusted journal contributes nothing: every shard re-runs";
  const HttpResponse results =
      server.handle(request("GET", "/jobs/" + std::to_string(id) + "/results"));
  EXPECT_EQ(results.body, clean_results);
}

}  // namespace
}  // namespace rh::serve
