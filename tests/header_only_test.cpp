// Satellite: the observability readers on freshly-created files. A campaign
// (or the serve scheduler) fsyncs the journal header and the stream header
// before any shard completes; a kill in that window leaves files with a
// header and nothing else. rh_report --journal and rh_tail must treat that
// as "0 of N complete", not as corruption.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "campaign/journal.hpp"
#include "campaign/tail.hpp"
#include "telemetry/stream.hpp"

namespace rh::campaign {
namespace {

class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

TEST(HeaderOnly, JournalReaderSeesZeroOfN) {
  const TempPath path("header_only_test_journal.jsonl");
  const JournalHeader header{0xFEEDu, 0xD00Du, 18};
  { const JournalWriter writer(path.str(), header); }  // header fsync, no shards

  const JournalReader reader(path.str());
  EXPECT_EQ(reader.header().seed, 0xFEEDu);
  EXPECT_EQ(reader.header().config_hash, 0xD00Du);
  EXPECT_EQ(reader.header().shard_count, 18u);
  EXPECT_TRUE(reader.shards().empty());
  EXPECT_TRUE(reader.outcomes().empty());
  EXPECT_GT(reader.intact_bytes(), 0u);
}

TEST(HeaderOnly, JournalSummaryRendersWithoutShardLines) {
  // rh_report --journal on a campaign killed before its first checkpoint.
  const TempPath path("header_only_test_summary.jsonl");
  { const JournalWriter writer(path.str(), JournalHeader{1, 2, 18}); }

  const JournalReader reader(path.str());
  std::ostringstream os;
  render_journal_summary(os, path.str(), reader);
  const std::string text = os.str();
  EXPECT_NE(text.find("0/18 complete"), std::string::npos) << text;
  EXPECT_NE(text.find("pending: 18 shards"), std::string::npos) << text;
  // No latency table: there are no wall-ms annotations to aggregate.
  EXPECT_EQ(text.find("p50"), std::string::npos) << text;
  EXPECT_NE(text.find("no per-shard wall-ms annotations"), std::string::npos) << text;
}

TEST(HeaderOnly, ResumeFromHeaderOnlyJournalKeepsTheHeader) {
  // A resume against a header-only journal must behave like a fresh start:
  // keep the header bytes, append from shard zero.
  const TempPath path("header_only_test_resume.jsonl");
  { const JournalWriter writer(path.str(), JournalHeader{7, 8, 4}); }
  const JournalReader before(path.str());
  { const JournalWriter resumed(path.str(), before.intact_bytes()); }
  const JournalReader after(path.str());
  EXPECT_EQ(after.header().seed, 7u);
  EXPECT_EQ(after.header().shard_count, 4u);
  EXPECT_TRUE(after.shards().empty());
}

TEST(HeaderOnly, MetricsStreamReaderSeesAnUnfinishedEmptyRun) {
  const TempPath path("header_only_test_stream.jsonl");
  telemetry::MetricsStreamHeader header;
  header.seed = 0xFEEDu;
  header.config_hash = 0xD00Du;
  header.shards = 18;
  header.jobs = 2;
  header.cycle_cadence = 1u << 20;
  header.wall_cadence_ms = 250.0;
  { const telemetry::MetricsStreamWriter writer(path.str(), header); }

  const MetricsStreamData data = read_metrics_stream(path.str());
  EXPECT_TRUE(data.has_header);
  EXPECT_EQ(data.seed, 0xFEEDu);
  EXPECT_EQ(data.shards, 18u);
  EXPECT_EQ(data.jobs, 2u);
  EXPECT_EQ(data.cycles_samples, 0u);
  EXPECT_EQ(data.wall_samples, 0u);
  EXPECT_FALSE(data.finished);
  EXPECT_FALSE(data.torn);
  EXPECT_TRUE(data.counters.empty());
  EXPECT_TRUE(data.workers.empty());
}

TEST(HeaderOnly, TornHeaderTailIsTolerated) {
  // A kill can tear even the first sample line; everything intact before it
  // (here: just the header) must still parse.
  const TempPath path("header_only_test_torn.jsonl");
  {
    const telemetry::MetricsStreamWriter writer(path.str(), telemetry::MetricsStreamHeader{});
  }
  {
    std::FILE* f = std::fopen(path.str().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"sample\":\"wall\",\"t_ms\":12.5,\"coun";
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);
  }
  const MetricsStreamData data = read_metrics_stream(path.str());
  EXPECT_TRUE(data.has_header);
  EXPECT_TRUE(data.torn);
  EXPECT_EQ(data.wall_samples, 0u);
  EXPECT_FALSE(data.finished);
}

}  // namespace
}  // namespace rh::campaign
