// Golden-contract tests: pin the *shape* (field names, order, types) of
// every on-disk document schema against committed golden files under
// tests/golden/. Values vary by seed and machine; shapes must not change
// without review. To accept an intentional schema change, rerun with
// RH_UPDATE_GOLDEN=1 and commit the regenerated .shape files.
#include "verify/golden.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "campaign/journal.hpp"
#include "profiling/report.hpp"
#include "resilience/storage.hpp"
#include "serve/config.hpp"
#include "serve/observe.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/span.hpp"
#include "telemetry/stream.hpp"

#ifndef RH_GOLDEN_DIR
#error "RH_GOLDEN_DIR must point at the committed golden shape files"
#endif

namespace rh::verify {
namespace {

std::string golden(const std::string& name) { return std::string(RH_GOLDEN_DIR) + "/" + name; }

/// v2 JSONL lines carry a CRC-32 frame after the payload; the shape
/// contract covers the payload document. The frame must be present and
/// intact on every writer-produced line.
std::string unframe(const std::string& line) {
  std::string_view payload;
  EXPECT_EQ(resilience::check_frame(line, payload), resilience::FrameCheck::kFramed) << line;
  return std::string(payload);
}

/// A canonical populated report: every optional branch of the writers has
/// content (shard timings, metrics in all three groups, trace counts), so
/// the shape covers the full schema, not a degenerate empty document.
profiling::RunReport canonical_report() {
  profiling::RunReport report;
  report.campaign = "golden";
  report.seed = 7;
  report.jobs = 2;
  report.shards_total = 4;
  report.shards_done = 3;
  report.shards_skipped = 1;
  report.shards_retried = 1;
  report.records = 96;
  report.elapsed_wall_ms = 1234.5;
  report.profile.record(profiling::Phase::kExecute, 50000, 800.0, 3);
  report.profile.record(profiling::Phase::kShardRun, 48000, 700.0, 3);
  report.timings.push_back({0, 16000, 250.0, 1, telemetry::span_id(0, 0, 0)});
  report.timings.push_back({2, 16000, 300.0, 2, telemetry::span_id(2, 0, 0)});
  report.spans_total = 12;
  report.spans_dropped = 1;
  telemetry::MetricsRegistry registry;
  registry.counter("cmd.act").add(100);
  registry.gauge("thermal.temp_c").set(85.0);
  registry.histogram("shard.wall_ms", 0.0, 1000.0, 8).observe(250.0);
  report.metrics = registry.snapshot();
  report.trace = {10, 8, 2};
  return report;
}

TEST(GoldenContract, RunReportSchemaV1) {
  std::ostringstream os;
  profiling::write_report_json(os, canonical_report(), /*include_wall=*/true);
  const auto diff = check_golden(golden("run_report_v1.shape"),
                                 shape_text(os.str(), "rh-run-report/v1"));
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, RunReportDeterministicProjection) {
  // The include_wall=false projection is its own contract: the determinism
  // tests byte-compare it, so silently gaining a wall-clock field would
  // break them machine-dependently. Pin it separately.
  std::ostringstream os;
  profiling::write_report_json(os, canonical_report(), /*include_wall=*/false);
  const auto diff = check_golden(golden("run_report_deterministic.shape"),
                                 shape_text(os.str(), "rh-run-report deterministic projection"));
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, MetricsSnapshotJson) {
  std::ostringstream os;
  canonical_report().metrics.write_json(os);
  const auto diff =
      check_golden(golden("metrics_snapshot.shape"), shape_text(os.str(), "metrics snapshot"));
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, PerfBaselineSchemaV1) {
  std::ostringstream os;
  profiling::write_perf_baseline_json(os, canonical_report(), /*stride=*/2048);
  const auto diff = check_golden(golden("perf_baseline_v1.shape"),
                                 shape_text(os.str(), "rh-perf-baseline/v1"));
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, CheckpointJournalV1) {
  // The journal is JSONL: pin the shape of each line kind — header,
  // annotated completion, bare completion, failure — as one document each.
  const std::string path = "golden_contract_journal.jsonl";
  std::remove(path.c_str());
  {
    campaign::JournalWriter writer(path, campaign::JournalHeader{7, 0xabcdefu, 4});
    core::RowRecord record;
    record.site = {0, 1, 2};
    record.physical_row = 17;
    record.hc_first[0] = 4096;  // cover the non-null branch of hc_first
    writer.append_shard(3, {record}, 812.5, 2);
    writer.append_shard(1, {record});  // pre-annotation byte format
    writer.append_failure(2, 3, "injected fault");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const char* kLabels[] = {"header", "shard-annotated", "shard-bare", "failure"};
  std::string actual;
  std::string line;
  for (const char* label : kLabels) {
    ASSERT_TRUE(std::getline(in, line)) << "journal is missing its " << label << " line";
    actual += std::string("== ") + label + "\n" + shape_text(unframe(line), label);
  }
  std::remove(path.c_str());
  const auto diff = check_golden(golden("checkpoint_journal_v1.shape"), actual);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, MetricsStreamV1) {
  // The live stream is JSONL like the journal: pin each line kind — header,
  // cycles sample, wall sample, final sample — as one document each.
  const std::string path = "golden_contract_stream.jsonl";
  std::remove(path.c_str());
  {
    telemetry::MetricsStreamHeader header;
    header.seed = 7;
    header.config_hash = 0xabcdefu;
    header.shards = 4;
    header.jobs = 2;
    header.cycle_cadence = 1 << 24;
    header.wall_cadence_ms = 200.0;
    telemetry::MetricsStreamWriter writer(path, header);
    writer.append(telemetry::format_cycles_sample(0, 1, 0, 1 << 24, {{"cmd.ACT", 96}}));
    writer.append(telemetry::format_wall_sample(210.5, {{"campaign.shards_done", 1}},
                                                {{180.0, 1, 2}, {0.0, 0, -1}}));
    writer.append(telemetry::format_final_sample(900.0, {{"campaign.shards_done", 4}}, 3, 0, 1,
                                                 4));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const char* kLabels[] = {"header", "cycles", "wall", "final"};
  std::string actual;
  std::string line;
  for (const char* label : kLabels) {
    ASSERT_TRUE(std::getline(in, line)) << "stream is missing its " << label << " line";
    actual += std::string("== ") + label + "\n" + shape_text(unframe(line), label);
  }
  std::remove(path.c_str());
  const auto diff = check_golden(golden("metrics_stream_v1.shape"), actual);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

/// A service fixture for the /healthz and /statz shapes: one admitted job
/// (so the tenants array has a row) on a never-started server (so every
/// value is deterministic-by-construction; the shape ignores values, but a
/// populated array pins its element shape where an empty one would not).
class ServeFixture {
public:
  ServeFixture() : dir_("golden_contract_serve") {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    serve::Server::Options options;
    options.data_dir = dir_;
    server_ = std::make_unique<serve::Server>(options);
    serve::HttpRequest req;
    req.method = "POST";
    req.target = "/jobs";
    req.body = serve::to_canonical_json(serve::CampaignConfig{});
    req.headers["x-tenant"] = "alice";
    EXPECT_EQ(server_->handle(req).status, 201);
  }
  ~ServeFixture() {
    server_.reset();
    std::filesystem::remove_all(dir_);
  }
  [[nodiscard]] serve::Server& server() { return *server_; }

private:
  std::string dir_;
  std::unique_ptr<serve::Server> server_;
};

TEST(GoldenContract, ServeHealthzV1) {
  ServeFixture fixture;
  const auto diff = check_golden(golden("serve_healthz_v1.shape"),
                                 shape_text(fixture.server().healthz_json(), "rh-serve-healthz/v1"));
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, ServeStatzV1) {
  // The statz document carries two element-bearing arrays: per-rig rows
  // (idle pool, 2 rigs) and per-tenant rows (the fixture's one tenant).
  ServeFixture fixture;
  const auto diff = check_golden(golden("serve_statz_v1.shape"),
                                 shape_text(fixture.server().statz_json(), "rh-serve-statz/v1"));
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, AccessLogLineV1) {
  serve::AccessRecord record;
  record.method = "POST";
  record.path = "/jobs";
  record.tenant = "alice";
  record.outcome = "ok";
  record.status = 201;
  record.bytes = 321;
  record.wall_us = 412.5;
  const auto diff = check_golden(golden("access_log_v1.shape"),
                                 shape_text(serve::access_record_json(record), "rh-access-log/v1"));
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, PrometheusExpositionSample) {
  // /metricsz is text, not JSON, so the contract is the rendered bytes of a
  // fixed fixture: one counter, one gauge, one histogram (cumulative
  // buckets, +Inf, _sum, _count), and one labeled sample — every line form
  // the endpoint emits.
  telemetry::MetricsRegistry registry;
  registry.counter("serve.http_requests").add(4);
  registry.gauge("serve.jobs_active").set(1.0);
  auto& hist = registry.histogram("serve.queue_wait_ms", 0.0, 8.0, 4);
  hist.observe(1.0);
  hist.observe(3.0);
  hist.observe(100.0);  // clamps into the top bucket; _sum keeps 100
  std::ostringstream os;
  telemetry::write_prometheus(os, registry.snapshot());
  telemetry::write_prometheus_type(os, "serve_tenant_quota", "gauge");
  telemetry::write_prometheus_sample(os, "serve_tenant_quota", {{"tenant", "alice"}}, 4.0);
  const auto diff = check_golden(golden("prometheus_exposition_sample.golden"), os.str());
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(GoldenContract, MissingGoldenFileExplainsHowToCreateIt) {
  if (std::getenv("RH_UPDATE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "update mode would create the intentionally-missing file";
  }
  const auto diff = check_golden(golden("does_not_exist.shape"), "/ object\n");
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("RH_UPDATE_GOLDEN"), std::string::npos);
}

TEST(GoldenContract, ShapeDetectsFieldRenameAddRemoveAndReorder) {
  const std::string base = shape_text(R"({"a":1,"b":"x","c":[{"d":true}]})", "base");
  EXPECT_NE(base, shape_text(R"({"a":1,"b":"x","c":[{"e":true}]})", "rename"));
  EXPECT_NE(base, shape_text(R"({"a":1,"b":"x","c":[{"d":true}],"z":0})", "add"));
  EXPECT_NE(base, shape_text(R"({"a":1,"c":[{"d":true}]})", "remove"));
  EXPECT_NE(base, shape_text(R"({"b":"x","a":1,"c":[{"d":true}]})", "reorder"));
  EXPECT_NE(base, shape_text(R"({"a":"1","b":"x","c":[{"d":true}]})", "type-change"));
  // Values alone never change the shape.
  EXPECT_EQ(base, shape_text(R"({"a":99,"b":"y","c":[{"d":false}]})", "values"));
}

}  // namespace
}  // namespace rh::verify
