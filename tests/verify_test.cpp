// The differential verification harness itself: oracle rule coverage,
// stream parsing/round-trips, valid-by-construction generation, mutation,
// shrinking, and the planted-bug sensitivity check that proves the
// harness would catch a real timing-rule regression.
#include "verify/differential.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "verify/checker_replay.hpp"
#include "verify/generator.hpp"
#include "verify/oracle.hpp"
#include "verify/shrink.hpp"

namespace rh::verify {
namespace {

const hbm::TimingParams kT = hbm::paper_timings();

TEST(TimingOracle, LegalActPreActRoundTrip) {
  TimingOracle oracle(kT, 4);
  EXPECT_EQ(oracle.step({0, Op::kAct, 0, 5}), ok_verdict());
  EXPECT_EQ(oracle.step({kT.tRAS, Op::kPre, 0, 0}), ok_verdict());
  EXPECT_EQ(oracle.step({kT.tRAS + kT.tRP, Op::kAct, 0, 6}), ok_verdict());
  EXPECT_TRUE(oracle.bank_open(0));
}

TEST(TimingOracle, ChecksRulesInContractOrder) {
  // An ACT violating both tRC and tRP must report tRC (checked first).
  TimingOracle oracle(kT, 4);
  ASSERT_TRUE(oracle.step({0, Op::kAct, 0, 5}).ok());
  ASSERT_TRUE(oracle.step({kT.tRAS, Op::kPre, 0, 0}).ok());
  EXPECT_EQ(oracle.check({kT.tRC - 1, Op::kAct, 0, 6}), timing_verdict("tRC"));
  // At exactly tRC, tRP (tRAS + tRP = 29 > tRC = 28) still blocks.
  EXPECT_EQ(oracle.check({kT.tRC, Op::kAct, 0, 6}), timing_verdict("tRP"));
}

TEST(TimingOracle, EarliestLegalMatchesCheckBoundary) {
  TimingOracle oracle(kT, 4);
  ASSERT_TRUE(oracle.step({0, Op::kAct, 0, 5}).ok());
  ASSERT_TRUE(oracle.step({kT.tRAS, Op::kPre, 0, 0}).ok());
  const hbm::Cycle e = oracle.earliest_legal(Op::kAct, 0);
  EXPECT_EQ(e, kT.tRAS + kT.tRP);
  EXPECT_FALSE(oracle.check({e - 1, Op::kAct, 0, 6}).ok());
  EXPECT_TRUE(oracle.check({e, Op::kAct, 0, 6}).ok());
}

TEST(TimingOracle, StepDoesNotMutateOnViolation) {
  TimingOracle oracle(kT, 4);
  ASSERT_TRUE(oracle.step({0, Op::kAct, 0, 5}).ok());
  EXPECT_FALSE(oracle.step({1, Op::kAct, 1, 5}).ok());  // tRRD
  // Had the illegal ACT been applied, bank 1 would be open.
  EXPECT_FALSE(oracle.bank_open(1));
  EXPECT_TRUE(oracle.step({kT.tRRD, Op::kAct, 1, 5}).ok());
}

TEST(TimingOracle, FawWindowAndDisableRule) {
  TimingOracle strict(kT, 8);
  TimingOracle planted(kT, 8, "tFAW");
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(strict.step({i * kT.tRRD, Op::kAct, i, 1}).ok());
    ASSERT_TRUE(planted.step({i * kT.tRRD, Op::kAct, i, 1}).ok());
  }
  const Command fifth{kT.tFAW - 1, Op::kAct, 4, 1};
  EXPECT_EQ(strict.check(fifth), timing_verdict("tFAW"));
  EXPECT_EQ(planted.check(fifth), ok_verdict());
  EXPECT_EQ(strict.earliest_legal(Op::kAct, 4), kT.tFAW);
  EXPECT_LT(planted.earliest_legal(Op::kAct, 4), kT.tFAW);
}

TEST(TimingOracle, RefProtocolBeforeTrfc) {
  TimingOracle oracle(kT, 2);
  ASSERT_TRUE(oracle.step({0, Op::kRef, 0, 0}).ok());
  ASSERT_TRUE(oracle.step({kT.tRFC, Op::kAct, 0, 3}).ok());
  // A REF with an open bank inside the next tRFC window: protocol wins.
  ASSERT_TRUE(oracle.step({kT.tRFC + kT.tRRD, Op::kRef, 0, 0}).kind ==
              Verdict::Kind::kProtocol);
}

TEST(CheckerReplayTest, MessageExtraction) {
  EXPECT_EQ(timing_rule("timing violation: tRC requires cycle >= 28, command issued at 3"), "tRC");
  EXPECT_EQ(protocol_tag("ACT to a bank with an open row"), "act-open");
  EXPECT_EQ(protocol_tag("REF with an open bank"), "ref-open");
}

TEST(StreamFormat, ParsesDirectivesAndCommands) {
  const auto file = parse_stream("# comment\n"
                                 "! banks 2\n"
                                 "! timing tFAW 24\n"
                                 "0 ACT 0 5\n"
                                 "12 RD 0 3\n"
                                 "40 PREA\n"
                                 "200 REF\n"
                                 "! expect timing tRAS 2\n",
                                 "test");
  EXPECT_EQ(file.banks, 2u);
  EXPECT_EQ(file.timings.tFAW, 24u);
  ASSERT_EQ(file.commands.size(), 4u);
  EXPECT_EQ(file.commands[1].op, Op::kRead);
  EXPECT_EQ(file.commands[1].arg, 3u);
  ASSERT_TRUE(file.expect.has_value());
  EXPECT_EQ(file.expect->verdict, timing_verdict("tRAS"));
  EXPECT_EQ(file.expect->index, 2u);
}

TEST(StreamFormat, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_stream("0 BOGUS 1\n", "t"), common::ConfigError);
  EXPECT_THROW((void)parse_stream("x ACT 0 1\n", "t"), common::ConfigError);
  EXPECT_THROW((void)parse_stream("0 ACT 9 1\n! banks 4\n", "t"), common::ConfigError);
  EXPECT_THROW((void)parse_stream("! timing tBOGUS 7\n", "t"), common::ConfigError);
}

TEST(StreamFormat, FileRoundTripsThroughFormatter) {
  GenConfig cfg;
  cfg.max_cmds = 24;
  common::Xoshiro256 rng(11);
  const CommandStream stream = generate_valid(rng, cfg);
  hbm::TimingParams t = cfg.timings;
  t.tFAW = 24;  // force a directive into the document
  const std::string text = format_stream_file(stream, t, cfg.banks, {"round trip"});
  const auto parsed = parse_stream(text, "round-trip");
  EXPECT_EQ(parsed.banks, cfg.banks);
  EXPECT_EQ(parsed.timings.tFAW, 24u);
  ASSERT_EQ(parsed.commands.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(parsed.commands[i].cycle, stream[i].cycle);
    EXPECT_EQ(parsed.commands[i].op, stream[i].op);
    EXPECT_EQ(parsed.commands[i].bank, stream[i].bank);
    EXPECT_EQ(parsed.commands[i].arg, stream[i].arg);
  }
}

TEST(Generator, ValidByConstructionAgainstBothImplementations) {
  GenConfig cfg;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    common::Xoshiro256 rng(seed);
    const CommandStream stream = generate_valid(rng, cfg);
    ASSERT_EQ(stream.size(), cfg.max_cmds);
    const auto oracle = replay_oracle(stream, cfg.timings, cfg.banks);
    const auto checker = replay_checker(stream, cfg.timings, cfg.banks);
    ASSERT_EQ(oracle.size(), stream.size()) << "oracle rejected its own stream, seed " << seed;
    ASSERT_TRUE(oracle.back().ok());
    ASSERT_EQ(checker.size(), stream.size()) << "checker rejected a valid stream, seed " << seed;
    ASSERT_TRUE(checker.back().ok());
  }
}

TEST(Generator, StrictlyIncreasingCycles) {
  GenConfig cfg;
  common::Xoshiro256 rng(5);
  const CommandStream stream = generate_valid(rng, cfg);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    ASSERT_GT(stream[i].cycle, stream[i - 1].cycle);
  }
}

TEST(Generator, MutantsStillAgreeDifferentially) {
  // Mutants usually violate some rule; the property under test is that
  // both implementations say the same thing about every mutant.
  GenConfig cfg;
  std::size_t violating = 0;
  for (std::uint64_t seed = 1000; seed < 1300; ++seed) {
    common::Xoshiro256 rng(seed);
    CommandStream stream = generate_valid(rng, cfg);
    (void)mutate_stream(rng, stream, cfg);
    const auto disagreement = compare_stream(stream, cfg.timings, cfg.banks);
    ASSERT_FALSE(disagreement.has_value())
        << "seed " << seed << ": oracle=" << to_string(disagreement->oracle)
        << " checker=" << to_string(disagreement->checker) << " at " << disagreement->index;
    const auto verdicts = replay_checker(stream, cfg.timings, cfg.banks);
    if (!verdicts.empty() && !verdicts.back().ok()) ++violating;
  }
  EXPECT_GT(violating, 100u) << "mutators are not injecting violations";
}

TEST(Shrinker, ReducesToMinimalFailingSubsequence) {
  // Predicate: stream contains >= 3 ACT commands. Minimal repro: exactly 3.
  CommandStream stream;
  for (std::uint32_t i = 0; i < 40; ++i) {
    stream.push_back({i * 30, i % 3 == 0 ? Op::kAct : Op::kPre, 0, 0});
  }
  const auto shrunk = shrink_stream(stream, [](const CommandStream& s) {
    std::size_t acts = 0;
    for (const auto& c : s) acts += c.op == Op::kAct ? 1 : 0;
    return acts >= 3;
  });
  EXPECT_EQ(shrunk.size(), 3u);
  for (const auto& c : shrunk) EXPECT_EQ(c.op, Op::kAct);
}

TEST(FuzzLoop, PlantedBugIsCaughtAndShrunkToEightCommandsOrFewer) {
  // Disable tFAW in the oracle: generation stops respecting it, the
  // production checker objects, and the loop must notice and shrink.
  FuzzConfig cfg;
  cfg.seed = 3;
  cfg.iters = 300;
  cfg.disable_rule = "tFAW";
  std::ostringstream log;
  const FuzzStats stats = run_fuzz(cfg, log);
  ASSERT_GT(stats.disagreements, 0u) << "planted tFAW bug went unnoticed:\n" << log.str();
  for (const auto& repro : stats.repros) {
    EXPECT_LE(repro.size(), 8u) << "shrunk repro still has " << repro.size() << " commands";
    EXPECT_TRUE(compare_stream(repro, cfg.gen.timings, cfg.gen.banks, cfg.disable_rule))
        << "shrunk repro no longer disagrees";
  }
}

TEST(FuzzLoop, PlantedProtocolScopeBugsAreCaught) {
  // Every other disable-able rule must also be fuzzable to a disagreement,
  // proving coverage isn't tFAW-specific. tREFI is cadence-only; tRC and
  // tRRD_L are shadowed by tRAS+tRP / tRRD at paper values, so they get
  // their own widened-window tests below.
  for (const char* rule : {"tRP", "tRAS", "tRCD", "tCCD", "tRRD", "tWTR", "tWR", "tRTP"}) {
    FuzzConfig cfg;
    cfg.seed = 17;
    cfg.iters = 400;
    cfg.shrink = false;  // detection only; keep the loop fast
    cfg.disable_rule = rule;
    std::ostringstream log;
    const FuzzStats stats = run_fuzz(cfg, log);
    EXPECT_GT(stats.disagreements, 0u) << "planted " << rule << " bug went unnoticed";
  }
}

TEST(FuzzLoop, DisabledTrcWithDominantWindowIsCaught) {
  // With paper timings tRAS + tRP = 29 > tRC = 28, so tRC never binds and
  // disabling it is invisible — itself a fact this harness documents.
  // Widen tRC past the PRE path to make the plant observable.
  FuzzConfig cfg;
  cfg.seed = 17;
  cfg.iters = 300;
  cfg.shrink = false;
  cfg.disable_rule = "tRC";
  cfg.gen.timings.tRC = cfg.gen.timings.tRAS + cfg.gen.timings.tRP + 8;
  std::ostringstream log;
  const FuzzStats stats = run_fuzz(cfg, log);
  EXPECT_GT(stats.disagreements, 0u);
}

TEST(FuzzLoop, DisabledTrrdLongWithWidenedWindowIsCaught) {
  FuzzConfig cfg;
  cfg.seed = 29;
  cfg.iters = 300;
  cfg.shrink = false;
  cfg.disable_rule = "tRRD_L";
  cfg.gen.timings.tRRD_L = cfg.gen.timings.tRRD + 4;
  std::ostringstream log;
  const FuzzStats stats = run_fuzz(cfg, log);
  EXPECT_GT(stats.disagreements, 0u);
}

TEST(FuzzLoop, LogIsDeterministicForAFixedSeed) {
  FuzzConfig cfg;
  cfg.seed = 99;
  cfg.iters = 150;
  std::ostringstream a;
  std::ostringstream b;
  (void)run_fuzz(cfg, a);
  (void)run_fuzz(cfg, b);
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
}

TEST(FuzzLoop, CleanRulesProduceZeroDisagreements) {
  FuzzConfig cfg;
  cfg.seed = 1234;
  cfg.iters = 500;
  std::ostringstream log;
  const FuzzStats stats = run_fuzz(cfg, log);
  EXPECT_EQ(stats.disagreements, 0u) << log.str();
  EXPECT_GT(stats.violating, 100u);  // mutants genuinely exercise rules
}

TEST(Regression, Cycle0ColumnSentinelsAreGated) {
  // Surfaced by the harness (tests/corpus/sentinel-*.rhcs): BankTiming
  // used cycle!=0 sentinels for write-recovery/read-to-precharge history,
  // so column commands at cycle 0 escaped tWR/tRTP.
  hbm::TimingParams t = kT;
  t.tRCD = 0;
  t.tWR = 30;
  const CommandStream stream = {
      {0, Op::kAct, 0, 5},
      {0, Op::kWrite, 0, 0},
      {kT.tRAS, Op::kPre, 0, 0},
  };
  EXPECT_FALSE(compare_stream(stream, t, 1).has_value());
  const auto verdicts = replay_checker(stream, t, 1);
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts.back(), timing_verdict("tWR"));
}

}  // namespace
}  // namespace rh::verify
