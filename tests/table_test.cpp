#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"

namespace rh::common {
namespace {

TEST(Table, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(Table({}), PreconditionError);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, PrintsHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "22.75"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.75"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RightAlignsNumericCells) {
  Table t({"k", "v"});
  t.add_row({"x", "1"});
  t.add_row({"y", "100"});
  std::ostringstream os;
  t.print(os);
  // The short numeric value must be padded on the left to line up with 100.
  EXPECT_NE(os.str().find("  1\n"), std::string::npos);
}

TEST(Table, CsvUsesCommas) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(FmtDouble, RespectsDigits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
}

TEST(FmtPercent, ScalesFractions) {
  EXPECT_EQ(fmt_percent(0.0313, 2), "3.13%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(0.0, 2), "0.00%");
}

TEST(Table, CountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace rh::common
