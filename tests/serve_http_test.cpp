#include "serve/http.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "serve/server.hpp"

namespace rh::serve {
namespace {

/// Accepts exactly one connection and answers it with `responder`.
template <typename Responder>
std::thread one_shot_server(TcpListener& listener, Responder responder) {
  return std::thread([&listener, responder] {
    const int fd = listener.accept_connection(5000);
    ASSERT_GE(fd, 0) << "accept timed out";
    responder(fd);
    close_fd(fd);
  });
}

TEST(ServeHttp, EphemeralPortRoundTrip) {
  TcpListener listener(0);
  ASSERT_NE(listener.port(), 0);

  HttpRequest seen;
  std::thread server = one_shot_server(listener, [&seen](int fd) {
    seen = read_http_request(fd);
    HttpResponse resp;
    resp.status = 201;
    resp.body = "{\"ok\":true}";
    resp.extra_headers.emplace("Retry-After", "1");
    write_http_response(fd, resp);
  });

  const HttpResponse resp = http_request(listener.port(), "POST", "/jobs",
                                         "{\"kind\":\"survey\"}", {{"X-Tenant", "alice"}});
  server.join();

  EXPECT_EQ(seen.method, "POST");
  EXPECT_EQ(seen.target, "/jobs");
  EXPECT_EQ(seen.body, "{\"kind\":\"survey\"}");
  // Header names are lowercased on read.
  ASSERT_TRUE(seen.headers.count("x-tenant"));
  EXPECT_EQ(seen.headers.at("x-tenant"), "alice");
  ASSERT_TRUE(seen.headers.count("content-length"));

  EXPECT_EQ(resp.status, 201);
  EXPECT_EQ(resp.body, "{\"ok\":true}");
  EXPECT_EQ(resp.content_type, "application/json");
}

TEST(ServeHttp, EmptyBodyGetHasNoContentLengthRequirement) {
  TcpListener listener(0);
  std::thread server = one_shot_server(listener, [](int fd) {
    const HttpRequest req = read_http_request(fd);
    EXPECT_EQ(req.method, "GET");
    EXPECT_TRUE(req.body.empty());
    write_http_response(fd, HttpResponse{});
  });
  const HttpResponse resp = http_request(listener.port(), "GET", "/healthz");
  server.join();
  EXPECT_EQ(resp.status, 200);
}

void send_raw(std::uint16_t port, const std::string& bytes) {
  const int s = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(s, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(s, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  (void)::send(s, bytes.data(), bytes.size(), 0);
  ::close(s);
}

TEST(ServeHttp, MalformedRequestLineThrowsHttpError) {
  TcpListener listener(0);
  bool threw = false;
  std::thread server = one_shot_server(listener, [&threw](int fd) {
    try {
      (void)read_http_request(fd);
    } catch (const HttpError&) {
      threw = true;
    }
  });
  send_raw(listener.port(), "this is not http\r\n\r\n");
  server.join();
  EXPECT_TRUE(threw);
}

TEST(ServeHttp, OversizedHeaderBlockIsRejected) {
  TcpListener listener(0);
  bool threw = false;
  std::thread server = one_shot_server(listener, [&threw](int fd) {
    try {
      (void)read_http_request(fd);
    } catch (const HttpError&) {
      threw = true;
    }
  });
  // 128 KiB of header bytes with no terminator: over the 64 KiB cap.
  std::string huge = "GET / HTTP/1.1\r\nX-Filler: ";
  huge.append(128 * 1024, 'a');
  send_raw(listener.port(), huge);
  server.join();
  EXPECT_TRUE(threw);
}

TEST(ServeHttp, ClosedListenerStopsAccepting) {
  TcpListener listener(0);
  listener.close();
  EXPECT_EQ(listener.accept_connection(10), -1);
}

/// Sends raw bytes and reads the whole response (the server closes the
/// connection after one request, so read to EOF).
std::string raw_round_trip(std::uint16_t port, const std::string& bytes) {
  const int s = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(s, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(s, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  (void)::send(s, bytes.data(), bytes.size(), 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(s, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(s);
  return out;
}

TEST(ServeHttp, ServeLoopAnswersMalformedRequestsWith400) {
  // http.hpp's contract: HttpError maps to a 400, not a silent close —
  // including malformed *framing*, which never reaches Server::handle().
  const std::string dir = "serve_http_test_serve400";
  std::filesystem::remove_all(dir);
  Server::Options options;
  options.data_dir = dir;
  options.rigs = 1;
  Server server(options);
  server.start();
  std::thread loop([&server] { server.serve({}); });

  const std::string resp = raw_round_trip(server.port(), "this is not http\r\n\r\n");
  EXPECT_EQ(resp.rfind("HTTP/1.1 400", 0), 0u) << resp;
  EXPECT_NE(resp.find("\"error\""), std::string::npos) << resp;

  // The loop keeps serving: the next, well-formed connection is answered.
  EXPECT_EQ(http_request(server.port(), "GET", "/healthz").status, 200);

  server.drain();
  loop.join();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rh::serve
