// Cross-module integration: the whole stack driven the way a user would
// drive it, plus the paper's methodology invariants that only hold when all
// the layers cooperate.
#include <gtest/gtest.h>

#include <bit>

#include "bender/host.hpp"
#include "core/characterizer.hpp"
#include "core/data_patterns.hpp"
#include "core/row_map.hpp"

namespace rh {
namespace {

TEST(Integration, EndToEndQuickstartFlow) {
  // Power up, heat to 85 degC, reverse engineer the row decoder, measure a
  // row: the examples/quickstart.cpp flow, asserted.
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.set_chip_temperature(85.0);
  const core::Site site{7, 0, 0};

  const core::RowMap recovered = core::reverse_engineer_window(host, site, 128, 64);
  core::Characterizer chr(host, recovered);
  const auto record = chr.characterize_row(site, 416);
  EXPECT_GT(record.wcdp_ber().ber(), 0.0);
  EXPECT_TRUE(record.min_hc_first().has_value());
}

TEST(Integration, HammeringOneChannelNeverDisturbsAnother) {
  // A6 (paper §6, future work 3): no cross-channel interference.
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  const auto& geometry = host.device().geometry();

  // Initialize a victim row in channel 2.
  bender::ProgramBuilder init(geometry, host.device().timings());
  init.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  init.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
  init.init_row(0, map.physical_to_logical(2048), 0);
  (void)host.run(init.take(), 2, 0);

  // Hammer the same coordinates, hard, in channel 5.
  core::Characterizer chr(host, map);
  (void)chr.measure_ber(core::Site{5, 0, 0}, 2048, core::DataPattern::kRowstripe0);

  // Channel 2's row is untouched.
  bender::ProgramBuilder read(geometry, host.device().timings());
  read.read_row(0, map.physical_to_logical(2048));
  const auto result = host.run(read.take(), 2, 0);
  for (const auto byte : result.readback) EXPECT_EQ(byte, 0x00);
}

TEST(Integration, DisablingRefreshDisablesTheOnDieMitigation) {
  // §3.1: "disabling periodic refresh disables all known on-die RH defense
  // mechanisms" — characterization results must be identical whether or not
  // the chip ships the proprietary TRR, because no REF is ever issued.
  hbm::DeviceConfig with_trr;
  hbm::DeviceConfig without_trr;
  without_trr.trr.enabled = false;

  auto measure = [](const hbm::DeviceConfig& cfg) {
    bender::BenderHost host{cfg};
    host.device().set_temperature(85.0);
    core::Characterizer chr(host, core::RowMap::from_device(host.device()));
    return chr.measure_ber(core::Site{7, 0, 0}, 500, core::DataPattern::kRowstripe0).bit_errors;
  };
  EXPECT_EQ(measure(with_trr), measure(without_trr));
}

TEST(Integration, EccOnMasksWhatEccOffReveals) {
  // The reason §3.1 disables ECC: with the mode register left at its
  // power-on default (ECC on), the same hammering shows fewer bitflips.
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  const auto& geometry = host.device().geometry();
  const core::Site site{7, 0, 0};
  const std::uint32_t victim = 420;

  auto run_once = [&](bool ecc_on) {
    bender::ProgramBuilder b(geometry, host.device().timings());
    b.mrs(hbm::ModeRegisters::kEccRegister, ecc_on ? 0x1 : 0x0);
    b.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
    b.program().set_wide_register(1, core::make_row_image(geometry, 0xFF));
    for (std::uint32_t p = victim - 2; p <= victim + 2; ++p) {
      const bool agg = (p == victim - 1 || p == victim + 1);
      b.init_row(0, map.physical_to_logical(p), agg ? 1 : 0);
    }
    b.ldi(0, map.physical_to_logical(victim - 1));
    b.ldi(1, map.physical_to_logical(victim + 1));
    b.hammer(0, 0, 1, 80'000);
    b.read_row(0, map.physical_to_logical(victim));
    const auto result = host.run(b.take(), site.channel, site.pseudo_channel);
    std::uint64_t flips = 0;
    for (const auto byte : result.readback) {
      flips += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(byte)));
    }
    return flips;
  };

  const std::uint64_t raw = run_once(false);
  const std::uint64_t corrected = run_once(true);
  ASSERT_GT(raw, 0u);
  EXPECT_LT(corrected, raw);
}

TEST(Integration, BerExperimentLeavesSurroundingRowsMostlyIntact) {
  // Blast radius sanity: rows at distance >= 3 from the victim keep their
  // initialization value through a full 256 K-hammer experiment.
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  core::Characterizer chr(host, map);
  const core::Site site{7, 0, 0};
  const std::uint32_t victim = 416;
  (void)chr.measure_ber(site, victim, core::DataPattern::kRowstripe0);

  const auto& geometry = host.device().geometry();
  bender::ProgramBuilder read(geometry, host.device().timings());
  read.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  for (const std::uint32_t p : {victim - 5, victim + 5}) {
    read.read_row(0, map.physical_to_logical(p));
  }
  const auto result = host.run(read.take(), site.channel, site.pseudo_channel);
  std::uint64_t flips = 0;
  for (const auto byte : result.readback) {
    flips += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(byte)));
  }
  EXPECT_EQ(flips, 0u);
}

TEST(Integration, SeedChangesTheChipButNotTheShape) {
  // Two different "chips" (seeds) give different per-row numbers but the
  // same qualitative ordering (ch7 worse than ch0).
  auto mean_ber = [](std::uint64_t seed, std::uint32_t channel) {
    hbm::DeviceConfig cfg;
    cfg.fault.seed = seed;
    bender::BenderHost host{cfg};
    host.device().set_temperature(85.0);
    core::Characterizer chr(host, core::RowMap::from_device(host.device()));
    double sum = 0.0;
    for (std::uint32_t i = 0; i < 6; ++i) {
      sum += chr.measure_ber(core::Site{channel, 0, 0}, 400 + i * 31,
                             core::DataPattern::kRowstripe0)
                 .ber();
    }
    return sum / 6.0;
  };
  const double chip_a_ch7 = mean_ber(111, 7);
  const double chip_b_ch7 = mean_ber(222, 7);
  EXPECT_NE(chip_a_ch7, chip_b_ch7);
  EXPECT_GT(mean_ber(111, 7), mean_ber(111, 0));
  EXPECT_GT(mean_ber(222, 7), mean_ber(222, 0));
}

}  // namespace
}  // namespace rh
