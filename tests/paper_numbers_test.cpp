// N1: the calibration contract. Every headline quantity of the paper's
// evaluation must land inside an agreed band (DESIGN.md §5) — ordering,
// grouping, factors and crossovers, not absolute silicon numbers. A change
// to the fault model that silently breaks a figure's shape fails here.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "bender/host.hpp"
#include "core/spatial.hpp"
#include "core/utrr.hpp"

namespace rh::core {
namespace {

/// One shared survey for all assertions (it is the expensive part).
class PaperNumbers : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    host_ = new bender::BenderHost(hbm::DeviceConfig{});
    host_->set_chip_temperature(85.0);
    SurveyConfig config;
    config.row_stride = 192;
    config.characterizer.wcdp_tolerance = 2048;
    SpatialSurvey survey(*host_, config);
    records_ = new std::vector<RowRecord>(survey.survey_rows());
    ber_ = new std::vector<ChannelPatternStats>(aggregate_ber(*records_));
    hc_ = new std::vector<ChannelPatternStats>(aggregate_hc_first(*records_));
  }

  static void TearDownTestSuite() {
    delete records_;
    delete ber_;
    delete hc_;
    delete host_;
    records_ = nullptr;
    ber_ = nullptr;
    hc_ = nullptr;
    host_ = nullptr;
  }

  static double ber_mean(std::uint32_t channel, std::size_t pattern) {
    for (const auto& s : *ber_) {
      if (s.channel == channel && s.pattern == pattern) return s.stats.mean;
    }
    ADD_FAILURE() << "missing BER stats for ch" << channel;
    return 0.0;
  }

  static const common::BoxStats& hc_stats(std::uint32_t channel, std::size_t pattern) {
    for (const auto& s : *hc_) {
      if (s.channel == channel && s.pattern == pattern) return s.stats;
    }
    static common::BoxStats empty;
    ADD_FAILURE() << "missing HC_first stats for ch" << channel;
    return empty;
  }

  static bender::BenderHost* host_;
  static std::vector<RowRecord>* records_;
  static std::vector<ChannelPatternStats>* ber_;
  static std::vector<ChannelPatternStats>* hc_;
};

bender::BenderHost* PaperNumbers::host_ = nullptr;
std::vector<RowRecord>* PaperNumbers::records_ = nullptr;
std::vector<ChannelPatternStats>* PaperNumbers::ber_ = nullptr;
std::vector<ChannelPatternStats>* PaperNumbers::hc_ = nullptr;

constexpr std::size_t kWcdp = 4;

TEST_F(PaperNumbers, EveryChannelExhibitsBitflips) {
  // §4: "RH bitflips occur in every tested DRAM row across all HBM channels"
  // (we assert the weaker per-channel form at our sampling stride).
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    EXPECT_GT(ber_mean(ch, kWcdp), 0.0) << "channel " << ch;
  }
}

TEST_F(PaperNumbers, Channel7ToChannel0WcdpBerRatioNearPaper) {
  // Paper: 2.03x. Band: [1.4, 2.9].
  const double ratio = ber_mean(7, kWcdp) / ber_mean(0, kWcdp);
  EXPECT_GE(ratio, 1.4);
  EXPECT_LE(ratio, 2.9);
}

TEST_F(PaperNumbers, Channels6And7AreTheMostVulnerable) {
  const double worst_pair = 0.5 * (ber_mean(6, kWcdp) + ber_mean(7, kWcdp));
  for (std::uint32_t ch = 0; ch < 6; ++ch) {
    EXPECT_LT(ber_mean(ch, kWcdp), worst_pair * 1.05) << "channel " << ch;
  }
}

TEST_F(PaperNumbers, ChannelsGroupInDiePairs) {
  // Fig. 3: "channels can be classified into groups of two". Same-die
  // channels must sit closer than the die-0 vs die-3 gap.
  const double within = std::abs(ber_mean(6, kWcdp) - ber_mean(7, kWcdp));
  const double across = std::abs(ber_mean(7, kWcdp) - ber_mean(0, kWcdp));
  EXPECT_LT(within, across);
}

TEST_F(PaperNumbers, MinHcFirstNearPaper) {
  // Paper: 14531 hammers. Band: [9K, 26K] at our sampling stride.
  double global_min = 1e18;
  for (const auto& s : *hc_) {
    if (s.stats.count > 0) global_min = std::min(global_min, s.stats.min);
  }
  EXPECT_GE(global_min, 9'000.0);
  EXPECT_LE(global_min, 26'000.0);
}

TEST_F(PaperNumbers, Rowstripe0IsStrongerThanRowstripe1InHcFirst) {
  // Paper ch0: RS0 mean 57925 < RS1 mean 79179 (ratio 1.37). Band on the
  // ratio: [1.1, 1.8].
  const double rs0 = hc_stats(0, 0).mean;
  const double rs1 = hc_stats(0, 1).mean;
  ASSERT_GT(rs0, 0.0);
  const double ratio = rs1 / rs0;
  EXPECT_GE(ratio, 1.1);
  EXPECT_LE(ratio, 1.8);
}

TEST_F(PaperNumbers, RowstripesBeatCheckeredPatterns) {
  // Fig. 4: checkered HC_first means sit above rowstripe means.
  for (std::uint32_t ch : {0u, 7u}) {
    EXPECT_GT(hc_stats(ch, 2).mean, hc_stats(ch, 0).mean) << "ch" << ch;
    EXPECT_GT(hc_stats(ch, 3).mean, hc_stats(ch, 0).mean) << "ch" << ch;
  }
}

TEST_F(PaperNumbers, Channel7MaxBerRowstripe1ExceedsCheckered0) {
  // Paper: ch7 max BER 3.13% (RS1) vs 2.04% (Checkered0).
  double rs1_max = 0.0;
  double ck0_max = 0.0;
  for (const auto& s : *ber_) {
    if (s.channel != 7) continue;
    if (s.pattern == 1) rs1_max = s.stats.max;
    if (s.pattern == 2) ck0_max = s.stats.max;
  }
  EXPECT_GT(rs1_max, ck0_max);
}

TEST_F(PaperNumbers, WcdpBerMagnitudesAreParperScale) {
  // Percent-scale BER at 256 K hammers (paper's Fig. 3 y-axis tops out at
  // a few percent).
  EXPECT_GT(ber_mean(7, kWcdp), 0.005);
  EXPECT_LT(ber_mean(7, kWcdp), 0.08);
  EXPECT_GT(ber_mean(0, kWcdp), 0.002);
  EXPECT_LT(ber_mean(0, kWcdp), 0.05);
}

TEST_F(PaperNumbers, HcFirstChannelSpreadIsSecondOrder) {
  // §1: HC_first varies across channels by ~20%, far less than BER's ~2x.
  const double hc0 = hc_stats(0, kWcdp).mean;
  const double hc7 = hc_stats(7, kWcdp).mean;
  ASSERT_GT(hc7, 0.0);
  const double hc_ratio = hc0 / hc7;
  const double ber_ratio = ber_mean(7, kWcdp) / ber_mean(0, kWcdp);
  EXPECT_GT(hc_ratio, 1.0);   // worst channel flips earlier...
  EXPECT_LT(hc_ratio, 2.2);   // ...but the spread stays moderate
  EXPECT_GT(ber_ratio, hc_ratio * 0.8);
}

TEST_F(PaperNumbers, LastSubarrayIsHeavilyAttenuated) {
  // §4: "significantly fewer bitflips occur in the last subarray".
  const auto& layout = host_->device().subarray_layout();
  double last_sum = 0.0;
  double rest_sum = 0.0;
  std::size_t last_n = 0;
  std::size_t rest_n = 0;
  for (const auto& rec : *records_) {
    if (layout.in_last_subarray(rec.physical_row)) {
      last_sum += rec.wcdp_ber().ber();
      ++last_n;
    } else {
      rest_sum += rec.wcdp_ber().ber();
      ++rest_n;
    }
  }
  ASSERT_GT(last_n, 0u);
  ASSERT_GT(rest_n, 0u);
  EXPECT_LT(last_sum / last_n, 0.3 * (rest_sum / rest_n));
}

TEST_F(PaperNumbers, MidSubarrayRowsBeatEdgeRows) {
  // Fig. 5's periodic pattern: aggregate BER by relative position.
  const auto& layout = host_->device().subarray_layout();
  double mid_sum = 0.0;
  double edge_sum = 0.0;
  std::size_t mid_n = 0;
  std::size_t edge_n = 0;
  for (const auto& rec : *records_) {
    if (layout.in_last_subarray(rec.physical_row)) continue;
    const double x = layout.relative_position(rec.physical_row);
    if (x > 0.35 && x < 0.65) {
      mid_sum += rec.wcdp_ber().ber();
      ++mid_n;
    } else if (x < 0.15 || x > 0.85) {
      edge_sum += rec.wcdp_ber().ber();
      ++edge_n;
    }
  }
  ASSERT_GT(mid_n, 0u);
  ASSERT_GT(edge_n, 0u);
  EXPECT_GT(mid_sum / mid_n, edge_sum / edge_n);
}

TEST_F(PaperNumbers, UndisclosedTrrHasPeriod17) {
  // §5's headline, end to end through the retention side channel.
  const RowMap map = RowMap::from_device(host_->device());
  UtrrConfig cfg;
  cfg.iterations = 40;
  UtrrExperiment experiment(*host_, map, cfg);
  const Site site{1, 1, 3};
  UtrrResult result;
  for (std::uint32_t row = 4096;; ++row) {
    try {
      result = experiment.run(site, row);
      break;
    } catch (const common::Error&) {
      ASSERT_LT(row, 4160u);
    }
  }
  ASSERT_TRUE(result.inferred_period.has_value());
  EXPECT_EQ(*result.inferred_period, 17u);
}

}  // namespace
}  // namespace rh::core
