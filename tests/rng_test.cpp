#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rh::common {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(SplitMix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should change roughly half the output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t a = splitmix64(0x1234567890abcdefULL);
    const std::uint64_t b = splitmix64(0x1234567890abcdefULL ^ (1ULL << bit));
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 16) << "bit " << bit;
    EXPECT_LT(flipped, 48) << "bit " << bit;
  }
}

TEST(HashCoords, IsOrderSensitive) {
  EXPECT_NE(hash_coords(1, 2, 3, 4, 5), hash_coords(1, 5, 4, 3, 2));
  EXPECT_NE(hash_coords(1, 2, 3), hash_coords(2, 2, 3));
}

TEST(HashCoords, ProducesDistinctStreamsForDistinctCells) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t row = 0; row < 64; ++row) {
    for (std::uint64_t bit = 0; bit < 64; ++bit) {
      seen.insert(hash_coords(7, 0, row, bit));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(ToUnitDouble, StaysInHalfOpenUnitInterval) {
  EXPECT_GE(to_unit_double(0), 0.0);
  EXPECT_LT(to_unit_double(~0ULL), 1.0);
  EXPECT_LT(to_unit_double(splitmix64(99)), 1.0);
}

TEST(ToUnitDouble, IsApproximatelyUniform) {
  std::vector<int> buckets(16, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double u = to_unit_double(splitmix64(static_cast<std::uint64_t>(i)));
    ++buckets[static_cast<std::size_t>(u * 16.0)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, n / 16, n / 16 / 10);
  }
}

TEST(ApproxNormal, HasStandardMoments) {
  const int n = 400'000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = approx_normal(splitmix64(static_cast<std::uint64_t>(i) * 31 + 7));
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(ApproxNormal, IsBoundedByIrwinHallSupport) {
  // Sum of four uniforms scaled: |z| <= 2*sqrt(3).
  const double bound = 2.0 * std::sqrt(3.0) + 1e-9;
  for (int i = 0; i < 100'000; ++i) {
    const double z = approx_normal(splitmix64(static_cast<std::uint64_t>(i)));
    EXPECT_LE(std::abs(z), bound);
  }
}

TEST(Xoshiro256, IsDeterministicPerSeed) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  Xoshiro256 c(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
  bool any_diff = false;
  Xoshiro256 a2(5);
  for (int i = 0; i < 100; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, UniformCoversUnitInterval) {
  Xoshiro256 rng(9);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

class HashStreamIndependence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashStreamIndependence, DifferentSeedsDecorrelate) {
  const std::uint64_t seed = GetParam();
  // Correlation proxy: identical coordinates under different seeds should
  // agree on the normal's sign about half the time.
  int agree = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double a = approx_normal(hash_coords(seed, static_cast<std::uint64_t>(i)));
    const double b = approx_normal(hash_coords(seed + 1, static_cast<std::uint64_t>(i)));
    if ((a < 0) == (b < 0)) ++agree;
  }
  EXPECT_NEAR(agree, n / 2, n / 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashStreamIndependence,
                         ::testing::Values(0ULL, 1ULL, 0xdeadbeefULL, 0x5AFA2123ULL));

}  // namespace
}  // namespace rh::common
