// Methodology-generalization test: the characterization pipeline is told
// NOTHING about "vendor B" — a part with a different row decoder (xor-fold),
// a different floorplan (uniform 512-row subarrays), a different TRR period
// (9), and the worst die at the bottom of the stack — and must discover all
// of it from the outside, exactly the way it discovered the paper chip's
// parameters. If any of these pass only because of paper-chip constants
// baked into the core library, this suite fails.
#include <gtest/gtest.h>

#include "bender/host.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"
#include "core/utrr.hpp"

namespace rh {
namespace {

class VendorBTest : public ::testing::Test {
protected:
  VendorBTest() : host_(hbm::vendor_b_profile()) { host_.device().set_temperature(85.0); }
  bender::BenderHost host_;
};

TEST_F(VendorBTest, ProfileIsWiredThrough) {
  EXPECT_EQ(host_.device().scrambler().kind(), hbm::ScrambleKind::kXorFold);
  EXPECT_EQ(host_.device().subarray_layout().size_of(0), 512u);
  EXPECT_EQ(host_.device().subarray_layout().subarray_count(), 16384u / 512u);
}

TEST_F(VendorBTest, ReverseEngineeringRecoversTheXorFoldDecoder) {
  const core::Site site{0, 0, 0};
  const core::RowMap recovered = core::reverse_engineer_exact(host_, site, 64, 24);
  for (std::uint32_t logical = 64; logical < 88; ++logical) {
    EXPECT_EQ(recovered.logical_to_physical(logical),
              host_.device().scrambler().logical_to_physical(logical));
  }
}

TEST_F(VendorBTest, BoundaryProbeFindsTheUniform512RowFloorplan) {
  const core::Site site{0, 0, 0};
  const core::RowMap map = core::RowMap::from_device(host_.device());
  const auto starts = core::find_subarray_boundaries(host_, site, map, 400, 1200);
  ASSERT_GE(starts.size(), 2u);
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i] % 512, 0u) << "start " << starts[i];
    if (i > 0) EXPECT_EQ(starts[i] - starts[i - 1], 512u);
  }
}

TEST_F(VendorBTest, UtrrDiscoversThePeriod9Mitigation) {
  const core::RowMap map = core::RowMap::from_device(host_.device());
  core::UtrrConfig config;
  config.iterations = 45;
  core::UtrrExperiment experiment(host_, map, config);
  core::UtrrResult result;
  for (std::uint32_t row = 4096;; ++row) {
    try {
      result = experiment.run(core::Site{0, 0, 0}, row);
      break;
    } catch (const common::Error&) {
      ASSERT_LT(row, 4160u);
    }
  }
  ASSERT_TRUE(result.inferred_period.has_value());
  EXPECT_EQ(*result.inferred_period, 9u);
}

TEST_F(VendorBTest, WorstDieSitsAtTheBottomOfThisStack) {
  const core::RowMap map = core::RowMap::from_device(host_.device());
  core::Characterizer chr(host_, map);
  double ch0 = 0.0;
  double ch7 = 0.0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint32_t row = 300 + i * 31;
    ch0 += chr.measure_ber(core::Site{0, 0, 0}, row, core::DataPattern::kRowstripe0).ber();
    ch7 += chr.measure_ber(core::Site{7, 0, 0}, row, core::DataPattern::kRowstripe0).ber();
  }
  EXPECT_GT(ch0, ch7);  // reversed vs the paper chip
}

}  // namespace
}  // namespace rh
