#include "bender/host.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/data_patterns.hpp"
#include "resilience/fault.hpp"

namespace rh::bender {
namespace {

class HostTest : public ::testing::Test {
protected:
  HostTest() : host_(hbm::DeviceConfig{}) {}
  BenderHost host_;
};

TEST_F(HostTest, ClockAdvancesWithEachProgram) {
  ProgramBuilder b(host_.device().geometry(), host_.device().timings());
  b.sleep(1000);
  const hbm::Cycle before = host_.now();
  const auto result = host_.run(b.take(), 0, 0);
  EXPECT_EQ(result.start_cycle, before);
  EXPECT_EQ(host_.now(), result.end_cycle);
  EXPECT_GE(host_.now() - before, 1000u);
}

TEST_F(HostTest, IdleAdvancesTimeWithoutCommands) {
  const hbm::Cycle before = host_.now();
  host_.idle_ms(5.0);
  EXPECT_EQ(host_.now() - before, hbm::ms_to_cycles(5.0));
}

TEST_F(HostTest, ConsecutiveProgramsSeeMonotoneTime) {
  ProgramBuilder b1(host_.device().geometry(), host_.device().timings());
  b1.program().set_wide_register(0, core::make_row_image(host_.device().geometry(), 0x77));
  b1.init_row(0, 9, 0);
  (void)host_.run(b1.take(), 0, 0);

  // A second program can legally re-activate the same bank because the
  // clock carried over (tRP / tRC already elapsed inside program 1's tail).
  ProgramBuilder b2(host_.device().geometry(), host_.device().timings());
  b2.read_row(0, 9);
  const auto result = host_.run(b2.take(), 0, 0);
  for (const auto byte : result.readback) EXPECT_EQ(byte, 0x77);
}

TEST_F(HostTest, SetChipTemperatureDrivesTheRigAndDevice) {
  host_.set_chip_temperature(85.0);
  EXPECT_NEAR(host_.device().temperature(), 85.0, 0.6);
  EXPECT_NEAR(host_.thermal().temperature(), host_.device().temperature(), 1e-9);
  const hbm::Cycle after_heat = host_.now();
  EXPECT_GT(after_heat, 0u);  // heating took simulated wall-clock time
  host_.set_chip_temperature(45.0);
  EXPECT_NEAR(host_.device().temperature(), 45.0, 0.6);
}

TEST_F(HostTest, UnreachableTemperatureThrowsThermalErrorNamingBothSides) {
  // 300 degC is beyond what the heater can reach in half a second; the
  // failure must be a ThermalError (a TransientError — the campaign spends
  // retries on it) and must name the target and actual temperature.
  try {
    host_.set_chip_temperature(300.0, /*timeout_s=*/0.5);
    FAIL() << "expected ThermalError";
  } catch (const common::ThermalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("300.00"), std::string::npos) << what;
    EXPECT_NE(what.find("degC"), std::string::npos) << what;
  }
  EXPECT_THROW(host_.set_chip_temperature(300.0, 0.5), common::TransientError);
}

TEST_F(HostTest, WallClockIncludesRetryBackoff) {
  resilience::FaultPlan plan;
  plan.script = {{resilience::FaultKind::kUploadTimeout, 0}};
  resilience::FaultInjector injector(plan);
  host_.set_fault_injector(&injector);

  ProgramBuilder b(host_.device().geometry(), host_.device().timings());
  b.sleep(1000);
  (void)host_.run(b.take(), 0, 0);

  const auto& stats = host_.resilience_stats();
  EXPECT_EQ(stats.detected, 1u);
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_GT(stats.retry_wait_ms, 0.0);
  // wall_ms = DRAM time + link busy (which includes the watchdog) + backoff.
  EXPECT_DOUBLE_EQ(host_.wall_ms(), hbm::cycles_to_ms(host_.now()) + host_.link().busy_ms() +
                                        stats.retry_wait_ms);
  host_.set_fault_injector(nullptr);
}

TEST_F(HostTest, RetentionAccruesAcrossIdle) {
  // Write a row, idle far beyond the refresh window, read it back: decay.
  const auto& geometry = host_.device().geometry();
  ProgramBuilder init(geometry, host_.device().timings());
  init.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
  init.init_row(0, 500, 0);
  (void)host_.run(init.take(), 0, 0);

  host_.idle_ms(60'000.0);

  ProgramBuilder read(geometry, host_.device().timings());
  read.read_row(0, 500);
  const auto result = host_.run(read.take(), 0, 0);
  std::uint64_t flips = 0;
  for (const auto byte : result.readback) {
    flips += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(byte)));
  }
  EXPECT_GT(flips, 0u);
}

}  // namespace
}  // namespace rh::bender
