#include "core/retention_profiler.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"
#include "fault/context.hpp"

namespace rh::core {
namespace {

class RetentionProfilerTest : public ::testing::Test {
protected:
  RetentionProfilerTest()
      : host_(hbm::DeviceConfig{}), map_(RowMap::from_device(host_.device())),
        profiler_(host_, map_) {
    host_.device().set_temperature(85.0);
  }

  bender::BenderHost host_;
  RowMap map_;
  RetentionProfiler profiler_;
};

TEST_F(RetentionProfilerTest, NoFlipsWithinTheRefreshWindow) {
  const Site site{0, 0, 0};
  EXPECT_EQ(profiler_.flips_after(site, 4000, 27.0), 0u);
}

TEST_F(RetentionProfilerTest, FlipsAppearAfterLongWaits) {
  const Site site{0, 0, 0};
  EXPECT_GT(profiler_.flips_after(site, 4000, 60'000.0), 0u);
}

TEST_F(RetentionProfilerTest, FlipsAfterIsMonotone) {
  const Site site{0, 0, 0};
  std::uint64_t prev = 0;
  for (const double wait : {100.0, 1'000.0, 10'000.0, 60'000.0}) {
    const std::uint64_t f = profiler_.flips_after(site, 4000, wait);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST_F(RetentionProfilerTest, ProfileBracketsTheModelsRowMinimum) {
  const Site site{0, 0, 0};
  const std::uint32_t physical = 4096;
  const auto profile = profiler_.profile(site, physical);
  ASSERT_TRUE(profile.has_value());
  EXPECT_GT(profile->flips, 0u);
  // Ground truth from the fault model (all-zero pattern decays anti cells,
  // so the boundary is the weakest *anti* cell; the model's row minimum over
  // all cells is a lower bound).
  const auto ctx =
      fault::BankContext::from(host_.device().geometry(), hbm::BankAddress{0, 0, 0});
  const double t_min_s =
      host_.device().retention_model().row_min_retention_s(ctx, physical, 85.0);
  EXPECT_GE(profile->retention_ms * 1.1, t_min_s * 1e3);
  EXPECT_LT(profile->retention_ms, t_min_s * 1e3 * 64.0);
}

TEST_F(RetentionProfilerTest, ProfiledTimeSeparatesCleanFromDecayed) {
  const Site site{0, 0, 0};
  const auto profile = profiler_.profile(site, 5000);
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profiler_.flips_after(site, 5000, profile->retention_ms * 0.45), 0u);
  EXPECT_GT(profiler_.flips_after(site, 5000, profile->retention_ms * 1.05), 0u);
}

TEST_F(RetentionProfilerTest, RejectsNonPositiveWaits) {
  EXPECT_THROW((void)profiler_.profile(Site{0, 0, 0}, 100, 0.0), common::PreconditionError);
}

}  // namespace
}  // namespace rh::core
