// Replays every committed .rhcs stream in tests/corpus/ through both the
// independent oracle and the production checker: the two must agree
// verdict-for-verdict, and any `! expect` directive must hold. The corpus
// is where rh_fuzz repros and hand-picked boundary streams live, so a
// timing-rule regression fails here with the exact file naming the rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "verify/checker_replay.hpp"
#include "verify/command_stream.hpp"
#include "verify/differential.hpp"

#ifndef RH_CORPUS_DIR
#error "RH_CORPUS_DIR must point at tests/corpus"
#endif

namespace rh::verify {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(RH_CORPUS_DIR)) {
    if (entry.path().extension() == ".rhcs") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(CorpusReplay, CorpusIsSeeded) {
  // The corpus ships with ~14 hand-picked boundary streams plus the shrunk
  // sentinel repros; an empty directory means the test is not testing.
  EXPECT_GE(corpus_files().size(), 10u);
}

TEST(CorpusReplay, EveryStreamAgreesAndMeetsItsExpectation) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const StreamFile file = load_stream_file(path);
    ASSERT_FALSE(file.commands.empty());

    const auto disagreement = compare_stream(file.commands, file.timings, file.banks);
    ASSERT_FALSE(disagreement.has_value())
        << "oracle=" << to_string(disagreement->oracle)
        << " checker=" << to_string(disagreement->checker) << " at index " << disagreement->index;

    if (!file.expect.has_value()) continue;
    const auto verdicts = replay_checker(file.commands, file.timings, file.banks);
    ASSERT_FALSE(verdicts.empty());
    if (file.expect->verdict.ok()) {
      ASSERT_EQ(verdicts.size(), file.commands.size());
      EXPECT_TRUE(verdicts.back().ok()) << "expected a clean stream, got "
                                        << to_string(verdicts.back());
    } else {
      ASSERT_EQ(verdicts.size(), file.expect->index + 1)
          << "expected the stream to stop at index " << file.expect->index;
      EXPECT_EQ(verdicts.back(), file.expect->verdict);
    }
  }
}

TEST(CorpusReplay, EveryStreamCarriesAnExpectation) {
  // A corpus file without `! expect` still checks agreement but pins no
  // behaviour; require the directive so regressions flip a named verdict.
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    EXPECT_TRUE(load_stream_file(path).expect.has_value());
  }
}

}  // namespace
}  // namespace rh::verify
