#include "hbm/timing_checker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace rh::hbm {
namespace {

class BankTimingTest : public ::testing::Test {
protected:
  TimingParams t_ = paper_timings();
  BankTiming bank_{t_};
};

TEST_F(BankTimingTest, LegalActPreActSequencePasses) {
  // With the paper timings tRAS + tRP (29) exceeds tRC (28), so the minimum
  // legal ACT-to-ACT period through a PRE is tRAS + tRP.
  bank_.on_activate(100, 5);
  bank_.on_precharge(100 + t_.tRAS);
  bank_.on_activate(100 + t_.tRAS + t_.tRP, 6);
  EXPECT_TRUE(bank_.open());
  EXPECT_EQ(bank_.open_row(), 6u);
}

TEST_F(BankTimingTest, ActToOpenBankIsProtocolError) {
  bank_.on_activate(100, 5);
  EXPECT_THROW(bank_.on_activate(100 + t_.tRC, 6), common::ProtocolError);
}

TEST_F(BankTimingTest, PreWithoutOpenRowIsProtocolError) {
  EXPECT_THROW(bank_.on_precharge(100), common::ProtocolError);
}

TEST_F(BankTimingTest, EarlyPrechargeViolatesTRas) {
  bank_.on_activate(100, 5);
  EXPECT_THROW(bank_.on_precharge(100 + t_.tRAS - 1), common::TimingError);
}

TEST_F(BankTimingTest, EarlyReactivationViolatesTRc) {
  bank_.on_activate(100, 5);
  bank_.on_precharge(100 + t_.tRAS);
  EXPECT_THROW(bank_.on_activate(100 + t_.tRC - 1, 6), common::TimingError);
}

TEST_F(BankTimingTest, EarlyReactivationViolatesTRp) {
  bank_.on_activate(100, 5);
  bank_.on_precharge(100 + t_.tRC);  // late precharge: tRC satisfied, tRP not
  EXPECT_THROW(bank_.on_activate(100 + t_.tRC + t_.tRP - 1, 6), common::TimingError);
}

TEST_F(BankTimingTest, ColumnCommandsNeedOpenRowAndTRcd) {
  EXPECT_THROW(bank_.on_read(100), common::ProtocolError);
  EXPECT_THROW(bank_.on_write(100), common::ProtocolError);
  bank_.on_activate(100, 5);
  EXPECT_THROW(bank_.on_read(100 + t_.tRCD - 1), common::TimingError);
  bank_.on_read(100 + t_.tRCD);
}

TEST_F(BankTimingTest, WriteRecoveryGatesPrecharge) {
  bank_.on_activate(100, 5);
  bank_.on_write(100 + t_.tRCD);
  EXPECT_THROW(bank_.on_precharge(100 + t_.tRCD + t_.tWR - 1), common::TimingError);
  bank_.on_precharge(100 + t_.tRCD + t_.tWR);
}

TEST_F(BankTimingTest, ReadToPrechargeGatesOnTRtp) {
  bank_.on_activate(100, 5);
  const Cycle rd = 100 + t_.tRAS;  // late read so tRAS is already satisfied
  bank_.on_read(rd);
  EXPECT_THROW(bank_.on_precharge(rd + t_.tRTP - 1), common::TimingError);
  bank_.on_precharge(rd + t_.tRTP);
}

TEST_F(BankTimingTest, BatchEndRequiresClosedBankAndGatesNextAct) {
  bank_.on_activate(100, 5);
  EXPECT_THROW(bank_.note_batch_end(5000), common::ProtocolError);
  bank_.on_precharge(100 + t_.tRAS);
  bank_.note_batch_end(5000);
  EXPECT_THROW(bank_.on_activate(5000 - 1, 6), common::TimingError);
  bank_.on_activate(5000, 6);
}

class ChannelTimingTest : public ::testing::Test {
protected:
  TimingParams t_ = paper_timings();
  ChannelTiming channel_{t_};
};

TEST_F(ChannelTimingTest, BackToBackActsAcrossBanksNeedTRrd) {
  channel_.on_activate(100);
  EXPECT_THROW(channel_.on_activate(100 + t_.tRRD - 1), common::TimingError);
  channel_.on_activate(100 + t_.tRRD);
}

TEST_F(ChannelTimingTest, SameGroupActsNeedTRrdL) {
  // Banks 0 and 1 share a bank group; with a widened tRRD_L the pair is
  // gated by the long spacing even though tRRD (short) is satisfied.
  t_.tRRD_L = t_.tRRD + 3;
  channel_.on_activate(100, 0);
  EXPECT_THROW(channel_.on_activate(100 + t_.tRRD_L - 1, 1), common::TimingError);
  channel_.on_activate(100 + t_.tRRD_L, 1);
}

TEST_F(ChannelTimingTest, CrossGroupActsOnlyNeedTRrdShort) {
  t_.tRRD_L = t_.tRRD + 3;
  channel_.on_activate(100, 0);
  channel_.on_activate(100 + t_.tRRD, t_.banks_per_group);  // different group
}

TEST_F(ChannelTimingTest, FifthActWaitsForTFaw) {
  // Four ACTs at the tRRD floor; the fifth must clear tFAW from the first.
  Cycle now = 100;
  for (std::uint32_t i = 0; i < 4; ++i) channel_.on_activate(now + i * t_.tRRD, i);
  EXPECT_THROW(channel_.on_activate(100 + t_.tFAW - 1, 4), common::TimingError);
  channel_.on_activate(100 + t_.tFAW, 4);
}

TEST_F(ChannelTimingTest, FawWindowRollsForward) {
  // Once the window slides, the fifth-and-later ACTs gate on the
  // fourth-previous ACT, not the very first.
  Cycle now = 100;
  for (std::uint32_t i = 0; i < 4; ++i) channel_.on_activate(now + i * t_.tRRD, i % 2);
  channel_.on_activate(100 + t_.tFAW, 0);
  // Sixth ACT: window anchor is the second ACT (100 + tRRD).
  EXPECT_THROW(channel_.on_activate(100 + t_.tRRD + t_.tFAW - 1, 1), common::TimingError);
  channel_.on_activate(100 + t_.tRRD + t_.tFAW, 1);
}

TEST_F(ChannelTimingTest, WriteToReadTurnaroundNeedsTWtr) {
  channel_.on_column(100, /*is_write=*/true);
  EXPECT_THROW(channel_.on_column(100 + t_.tWTR - 1, /*is_write=*/false), common::TimingError);
  channel_.on_column(100 + t_.tWTR, /*is_write=*/false);
}

TEST_F(ChannelTimingTest, WriteToWriteOnlyNeedsTCcd) {
  channel_.on_column(100, /*is_write=*/true);
  channel_.on_column(100 + t_.tCCD, /*is_write=*/true);
  // A later read still honours tWTR from the most recent write.
  EXPECT_THROW(channel_.on_column(100 + t_.tCCD + t_.tWTR - 1, /*is_write=*/false),
               common::TimingError);
}

TEST_F(ChannelTimingTest, ColumnBusNeedsTCcd) {
  channel_.on_column(100);
  EXPECT_THROW(channel_.on_column(100 + t_.tCCD - 1), common::TimingError);
  channel_.on_column(100 + t_.tCCD);
}

TEST_F(ChannelTimingTest, RefreshBlocksForTRfc) {
  channel_.on_refresh(100);
  EXPECT_THROW(channel_.on_activate(100 + t_.tRFC - 1), common::TimingError);
  EXPECT_THROW(channel_.on_column(100 + t_.tRFC - 1), common::TimingError);
  channel_.on_activate(100 + t_.tRFC);
}

TEST_F(ChannelTimingTest, RefreshBackToBackGatedByTRfc) {
  channel_.on_refresh(100);
  EXPECT_THROW(channel_.on_refresh(100 + t_.tRFC - 1), common::TimingError);
  channel_.on_refresh(100 + t_.tRFC);
}

TEST(Timings, DoubleSidedHammerBudgetMatchesPaperBound) {
  // §3.1: 256 K hammers (512 K activations) must finish within 27 ms.
  const TimingParams t = paper_timings();
  const double ms = cycles_to_ms(512'000ULL * std::max(t.tRC, t.tRAS + t.tRP));
  EXPECT_LT(ms, 27.0);
  EXPECT_GT(ms, 20.0);  // and it is genuinely close to the bound
}

TEST(Timings, RefreshWindowIs32Ms) {
  const TimingParams t = paper_timings();
  EXPECT_NEAR(cycles_to_ms(t.refresh_window), 32.0, 0.1);
  // tREFI * refs_per_window spans one refresh window.
  EXPECT_NEAR(cycles_to_ms(t.tREFI * t.refs_per_window), 32.0, 0.5);
}

}  // namespace
}  // namespace rh::hbm
