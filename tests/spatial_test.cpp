#include "core/spatial.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"

namespace rh::core {
namespace {

TEST(PaperRegions, CoverFirstMiddleAndLast3K) {
  const auto geometry = hbm::paper_geometry();
  const auto regions = paper_regions(geometry);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].name, "first");
  EXPECT_EQ(regions[0].first_row, 0u);
  EXPECT_EQ(regions[0].rows, 3072u);
  EXPECT_EQ(regions[1].name, "middle");
  EXPECT_EQ(regions[1].first_row, (16384u - 3072u) / 2);
  EXPECT_EQ(regions[2].name, "last");
  EXPECT_EQ(regions[2].first_row, 16384u - 3072u);
}

TEST(PaperRegions, MiddleRegionLandsInThe768RowSubarrays) {
  const auto geometry = hbm::paper_geometry();
  const auto layout = hbm::SubarrayLayout::paper_layout(geometry.rows_per_bank);
  const auto regions = paper_regions(geometry);
  EXPECT_EQ(layout.size_of(layout.subarray_of(regions[1].first_row + 1000)), 768u);
}

TEST(PaperRegions, RejectOversizedRegions) {
  EXPECT_THROW((void)paper_regions(hbm::paper_geometry(), 10'000), common::PreconditionError);
}

class SurveyTest : public ::testing::Test {
protected:
  static SurveyConfig quick_config() {
    SurveyConfig cfg;
    cfg.channels = {0, 7};
    cfg.row_stride = 512;
    cfg.wcdp_by_ber = true;  // BER-only: fast
    return cfg;
  }
};

TEST_F(SurveyTest, SurveyRowsCoversRequestedChannelsAndRegions) {
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  SpatialSurvey survey(host, quick_config());
  const auto records = survey.survey_rows();
  const std::size_t rows_per_channel = 3 * (3072 / 512);
  EXPECT_EQ(records.size(), 2 * rows_per_channel);
  for (const auto& rec : records) {
    EXPECT_TRUE(rec.site.channel == 0 || rec.site.channel == 7);
    EXPECT_EQ(rec.ber[0].bits_tested, host.device().geometry().row_bits());
  }
}

TEST_F(SurveyTest, WorstChannelHasHigherMeanWcdpBer) {
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  SpatialSurvey survey(host, quick_config());
  const auto records = survey.survey_rows();
  const auto stats = aggregate_ber(records);
  double ch0_mean = 0.0;
  double ch7_mean = 0.0;
  for (const auto& s : stats) {
    if (s.pattern == 4 && s.channel == 0) ch0_mean = s.stats.mean;
    if (s.pattern == 4 && s.channel == 7) ch7_mean = s.stats.mean;
  }
  EXPECT_GT(ch7_mean, ch0_mean);
}

TEST_F(SurveyTest, AggregateBerEmitsFivePatternsPerChannel) {
  bender::BenderHost host{hbm::DeviceConfig{}};
  SpatialSurvey survey(host, quick_config());
  const auto records = survey.survey_rows();
  const auto stats = aggregate_ber(records);
  EXPECT_EQ(stats.size(), 2u * 5u);  // 2 channels x (4 patterns + WCDP)
  for (const auto& s : stats) {
    EXPECT_EQ(s.stats.count, records.size() / 2);
  }
}

TEST_F(SurveyTest, AggregateHcFirstSkipsUnflippableRows) {
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  SurveyConfig cfg = quick_config();
  cfg.wcdp_by_ber = false;  // full HC_first methodology
  cfg.row_stride = 1024;
  cfg.characterizer.wcdp_tolerance = 8192;
  SpatialSurvey survey(host, cfg);
  const auto records = survey.survey_rows();
  const auto stats = aggregate_hc_first(records);
  for (const auto& s : stats) {
    // Counts can be below the row count (last-subarray rows cap out), but
    // whatever is there must be positive and below the 256 K ceiling.
    EXPECT_LE(s.stats.count, records.size() / 2);
    if (s.stats.count > 0) {
      EXPECT_GT(s.stats.min, 0.0);
      EXPECT_LE(s.stats.max, 262'144.0);
    }
  }
}

TEST_F(SurveyTest, PatternLabelsAreStable) {
  EXPECT_EQ(pattern_label(0), "Rowstripe0");
  EXPECT_EQ(pattern_label(3), "Checkered1");
  EXPECT_EQ(pattern_label(4), "WCDP");
}

TEST_F(SurveyTest, BerProxyAgreesWithHcFirstWcdpOnClearCases) {
  // The fast Fig. 5/6 mode picks the WCDP as the max-BER pattern; in this
  // monotone regime it should agree with the paper's HC_first-based
  // definition whenever the choice is not a near-tie.
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  const RowMap map = RowMap::from_device(host.device());
  CharacterizerConfig cfg;
  cfg.wcdp_tolerance = 1024;
  Characterizer chr(host, map, cfg);
  const Site site{7, 0, 0};
  for (std::uint32_t row = 410; row < 470; row += 17) {
    const RowRecord full = chr.characterize_row(site, row);
    std::size_t max_ber = 0;
    for (std::size_t i = 1; i < kAllPatterns.size(); ++i) {
      if (full.ber[i].bit_errors > full.ber[max_ber].bit_errors) max_ber = i;
    }
    // Near-ties in flips are legitimately ambiguous; require agreement only
    // when the max-BER pattern leads by >20%.
    const auto chosen = static_cast<std::size_t>(full.wcdp);
    if (full.ber[max_ber].bit_errors * 4 > full.ber[chosen].bit_errors * 5) continue;
    EXPECT_EQ(chosen, max_ber) << "row " << row;
  }
}

TEST_F(SurveyTest, BankSurveyEmitsOnePointPerBank) {
  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  SurveyConfig cfg = quick_config();
  cfg.channels = {0};
  SpatialSurvey survey(host, cfg);
  const auto points = survey.survey_banks(40, 20);
  // 1 channel x 2 pseudo channels x 16 banks.
  EXPECT_EQ(points.size(), 32u);
  for (const auto& p : points) {
    EXPECT_EQ(p.rows_tested, 3u * 2u);
    EXPECT_GE(p.mean_ber, 0.0);
    EXPECT_GE(p.cv, 0.0);
  }
}

}  // namespace
}  // namespace rh::core
