#include "hbm/ecc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace rh::hbm {
namespace {

TEST(PopcountDiff, CountsDifferingBits) {
  const std::vector<std::uint8_t> a{0x00, 0xFF, 0x0F};
  const std::vector<std::uint8_t> b{0x01, 0xFF, 0xF0};
  EXPECT_EQ(popcount_diff(a, b), 1u + 0u + 8u);
}

TEST(PopcountDiff, RejectsSizeMismatch) {
  const std::vector<std::uint8_t> a{0x00};
  const std::vector<std::uint8_t> b{0x00, 0x00};
  EXPECT_THROW((void)popcount_diff(a, b), common::PreconditionError);
}

TEST(EccCorrectRead, LeavesCleanDataAlone) {
  std::vector<std::uint8_t> raw(16, 0xA5);
  const std::vector<std::uint8_t> written(16, 0xA5);
  EXPECT_EQ(ecc_correct_read(raw, written), 0u);
  EXPECT_EQ(raw, written);
}

TEST(EccCorrectRead, CorrectsSingleBitPerCodeword) {
  std::vector<std::uint8_t> raw(16, 0x00);
  const std::vector<std::uint8_t> written(16, 0x00);
  raw[3] = 0x10;   // one flip in word 0
  raw[9] = 0x02;   // one flip in word 1
  EXPECT_EQ(ecc_correct_read(raw, written), 2u);
  EXPECT_EQ(raw, written);
}

TEST(EccCorrectRead, LeavesDoubleErrorsUncorrected) {
  std::vector<std::uint8_t> raw(8, 0x00);
  const std::vector<std::uint8_t> written(8, 0x00);
  raw[0] = 0x03;  // two flips in the same 64-bit word
  EXPECT_EQ(ecc_correct_read(raw, written), 0u);
  EXPECT_EQ(raw[0], 0x03);
}

TEST(EccCorrectRead, MixedWords) {
  std::vector<std::uint8_t> raw(24, 0xFF);
  const std::vector<std::uint8_t> written(24, 0xFF);
  raw[1] ^= 0x01;          // word 0: 1 flip -> corrected
  raw[8] ^= 0x81;          // word 1: 2 flips -> kept
  raw[23] ^= 0x40;         // word 2: 1 flip -> corrected
  EXPECT_EQ(ecc_correct_read(raw, written), 2u);
  EXPECT_EQ(raw[1], 0xFF);
  EXPECT_EQ(raw[8], 0xFF ^ 0x81);
  EXPECT_EQ(raw[23], 0xFF);
}

TEST(EccCorrectRead, RejectsNonCodewordSizes) {
  std::vector<std::uint8_t> raw(7, 0);
  const std::vector<std::uint8_t> written(7, 0);
  EXPECT_THROW((void)ecc_correct_read(raw, written), common::PreconditionError);
}

}  // namespace
}  // namespace rh::hbm
