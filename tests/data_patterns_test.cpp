#include "core/data_patterns.hpp"

#include <gtest/gtest.h>

namespace rh::core {
namespace {

TEST(DataPatterns, Table1VictimBytes) {
  EXPECT_EQ(victim_byte(DataPattern::kRowstripe0), 0x00);
  EXPECT_EQ(victim_byte(DataPattern::kRowstripe1), 0xFF);
  EXPECT_EQ(victim_byte(DataPattern::kCheckered0), 0x55);
  EXPECT_EQ(victim_byte(DataPattern::kCheckered1), 0xAA);
}

TEST(DataPatterns, Table1AggressorBytes) {
  EXPECT_EQ(aggressor_byte(DataPattern::kRowstripe0), 0xFF);
  EXPECT_EQ(aggressor_byte(DataPattern::kRowstripe1), 0x00);
  EXPECT_EQ(aggressor_byte(DataPattern::kCheckered0), 0xAA);
  EXPECT_EQ(aggressor_byte(DataPattern::kCheckered1), 0x55);
}

TEST(DataPatterns, SurroundingRowsCarryTheVictimByte) {
  // Table 1: V±[2:8] match the victim row's value.
  for (const auto p : kAllPatterns) {
    EXPECT_EQ(surround_byte(p), victim_byte(p));
  }
}

TEST(DataPatterns, AggressorIsAlwaysTheVictimComplement) {
  for (const auto p : kAllPatterns) {
    EXPECT_EQ(aggressor_byte(p), static_cast<std::uint8_t>(~victim_byte(p)));
  }
}

TEST(DataPatterns, NamesRoundTrip) {
  EXPECT_EQ(to_string(DataPattern::kRowstripe0), "Rowstripe0");
  EXPECT_EQ(to_string(DataPattern::kRowstripe1), "Rowstripe1");
  EXPECT_EQ(to_string(DataPattern::kCheckered0), "Checkered0");
  EXPECT_EQ(to_string(DataPattern::kCheckered1), "Checkered1");
}

TEST(DataPatterns, RowImageFillsTheWholeRow) {
  const auto geometry = hbm::paper_geometry();
  const auto image = make_row_image(geometry, 0x5A);
  EXPECT_EQ(image.size(), geometry.row_bytes());
  for (const auto b : image) EXPECT_EQ(b, 0x5A);
}

TEST(DataPatterns, AllPatternsEnumeratesFour) {
  EXPECT_EQ(kAllPatterns.size(), 4u);
}

}  // namespace
}  // namespace rh::core
