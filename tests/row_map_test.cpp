#include "core/row_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bender/host.hpp"
#include "common/error.hpp"

namespace rh::core {
namespace {

hbm::DeviceConfig config_with(hbm::ScrambleKind kind) {
  hbm::DeviceConfig cfg;
  cfg.scramble = kind;
  return cfg;
}

TEST(RowMap, IdentityByDefault) {
  const RowMap map(64);
  for (std::uint32_t r = 0; r < 64; ++r) {
    EXPECT_EQ(map.logical_to_physical(r), r);
    EXPECT_EQ(map.physical_to_logical(r), r);
  }
}

TEST(RowMap, SetMaintainsBothDirections) {
  RowMap map(8);
  map.set(1, 2);
  map.set(2, 1);
  EXPECT_EQ(map.logical_to_physical(1), 2u);
  EXPECT_EQ(map.physical_to_logical(2), 1u);
  EXPECT_EQ(map.logical_to_physical(2), 1u);
}

TEST(RowMap, FromDeviceMatchesTheScrambler) {
  const hbm::Device device(config_with(hbm::ScrambleKind::kPairSwap));
  const RowMap map = RowMap::from_device(device);
  for (std::uint32_t r = 0; r < device.geometry().rows_per_bank; r += 101) {
    EXPECT_EQ(map.logical_to_physical(r), device.scrambler().logical_to_physical(r));
  }
}

TEST(ProbeAdjacency, FindsThePhysicalNeighbours) {
  bender::BenderHost host(config_with(hbm::ScrambleKind::kPairSwap));
  host.device().set_temperature(85.0);
  const Site site{0, 0, 0};
  // Logical 101 is physical 102; its physical neighbours 101 and 103 are
  // logical 102 and 103.
  const auto probe = probe_adjacency(host, site, 101);
  auto victims = probe.victims_logical;
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(victims, (std::vector<std::uint32_t>{102, 103}));
}

TEST(ProbeAdjacency, IdentityMappingYieldsLogicalNeighbours) {
  bender::BenderHost host(config_with(hbm::ScrambleKind::kIdentity));
  const Site site{0, 0, 0};
  const auto probe = probe_adjacency(host, site, 200);
  auto victims = probe.victims_logical;
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(victims, (std::vector<std::uint32_t>{199, 201}));
}

class ReverseEngineering : public ::testing::TestWithParam<hbm::ScrambleKind> {};

TEST_P(ReverseEngineering, RecoversTheDecoderFamily) {
  bender::BenderHost host(config_with(GetParam()));
  const Site site{0, 0, 0};
  const RowMap recovered = reverse_engineer_window(host, site, 96, 64);
  for (std::uint32_t logical = 0; logical < host.device().geometry().rows_per_bank;
       logical += 127) {
    EXPECT_EQ(recovered.logical_to_physical(logical),
              host.device().scrambler().logical_to_physical(logical))
        << "logical row " << logical;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ReverseEngineering,
                         ::testing::Values(hbm::ScrambleKind::kIdentity,
                                           hbm::ScrambleKind::kPairSwap,
                                           hbm::ScrambleKind::kXorFold),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

class ExactReverseEngineering : public ::testing::TestWithParam<hbm::ScrambleKind> {};

TEST_P(ExactReverseEngineering, RecoversTheWindowWithoutFamilyKnowledge) {
  bender::BenderHost host(config_with(GetParam()));
  const Site site{0, 0, 0};
  const std::uint32_t first = 96;
  const std::uint32_t count = 24;
  const RowMap recovered = reverse_engineer_exact(host, site, first, count);
  for (std::uint32_t logical = first; logical < first + count; ++logical) {
    EXPECT_EQ(recovered.logical_to_physical(logical),
              host.device().scrambler().logical_to_physical(logical))
        << "logical row " << logical;
  }
  // Rows outside the window stay identity-mapped in the returned RowMap.
  EXPECT_EQ(recovered.logical_to_physical(first + count + 10), first + count + 10);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ExactReverseEngineering,
                         ::testing::Values(hbm::ScrambleKind::kIdentity,
                                           hbm::ScrambleKind::kPairSwap,
                                           hbm::ScrambleKind::kXorFold),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ExactReverseEngineeringEdge, WorksInWorstChannelToo) {
  bender::BenderHost host(config_with(hbm::ScrambleKind::kPairSwap));
  const Site site{7, 1, 5};
  const RowMap recovered = reverse_engineer_exact(host, site, 200, 16);
  for (std::uint32_t logical = 200; logical < 216; ++logical) {
    EXPECT_EQ(recovered.logical_to_physical(logical),
              host.device().scrambler().logical_to_physical(logical));
  }
}

TEST(ExactReverseEngineeringEdge, RejectsWindowsSpanningASubarrayBoundary) {
  bender::BenderHost host(config_with(hbm::ScrambleKind::kPairSwap));
  const Site site{0, 0, 0};
  // Physical row 832 starts the second subarray: edges cannot cross it, so
  // the graph fragments into two paths (4 endpoints) and the walk fails.
  EXPECT_THROW((void)reverse_engineer_exact(host, site, 824, 16), common::Error);
}

TEST(SubarrayBoundaries, SingleSidedProbeFindsTheStarts) {
  bender::BenderHost host(config_with(hbm::ScrambleKind::kPairSwap));
  const Site site{0, 0, 0};
  const RowMap map = RowMap::from_device(host.device());
  // Probe around the first boundary of the paper layout (physical row 832).
  const auto starts = find_subarray_boundaries(host, site, map, 800, 64);
  EXPECT_EQ(starts, std::vector<std::uint32_t>{832});
}

TEST(SubarrayBoundaries, NoFalsePositivesInsideASubarray) {
  bender::BenderHost host(config_with(hbm::ScrambleKind::kPairSwap));
  const Site site{0, 0, 0};
  const RowMap map = RowMap::from_device(host.device());
  const auto starts = find_subarray_boundaries(host, site, map, 300, 100);
  EXPECT_TRUE(starts.empty());
}

TEST(RowMap, RejectsOutOfRange) {
  const RowMap map(16);
  EXPECT_THROW((void)map.logical_to_physical(16), common::PreconditionError);
  EXPECT_THROW((void)map.physical_to_logical(16), common::PreconditionError);
}

}  // namespace
}  // namespace rh::core
