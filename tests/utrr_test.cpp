#include "core/utrr.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"

namespace rh::core {
namespace {

hbm::DeviceConfig device_with_trr(bool enabled, std::uint32_t period = 17) {
  hbm::DeviceConfig cfg;
  cfg.trr.enabled = enabled;
  cfg.trr.period = period;
  return cfg;
}

UtrrResult run_experiment(const hbm::DeviceConfig& cfg, std::uint32_t iterations = 60) {
  bender::BenderHost host(cfg);
  host.device().set_temperature(85.0);
  const RowMap map = RowMap::from_device(host.device());
  UtrrConfig ucfg;
  ucfg.iterations = iterations;
  UtrrExperiment experiment(host, map, ucfg);
  // A probe row away from the REF-pointer sweep; scan for one that profiles.
  const Site site{0, 0, 0};
  for (std::uint32_t row = 4096;; ++row) {
    try {
      return experiment.run(site, row);
    } catch (const common::Error&) {
      if (row > 4160) throw;
    }
  }
}

TEST(Utrr, UncoversThePaperPeriod17Mechanism) {
  const UtrrResult result = run_experiment(device_with_trr(true, 17), 100);
  EXPECT_TRUE(result.trr_detected());
  ASSERT_TRUE(result.inferred_period.has_value());
  EXPECT_EQ(*result.inferred_period, 17u);
  // "the profiled row (R) is refreshed once every 17 iterations":
  EXPECT_EQ(result.refreshed_iterations.size(), 100u / 17u);
}

TEST(Utrr, FiringsAreEvenlySpaced) {
  const UtrrResult result = run_experiment(device_with_trr(true, 17), 100);
  ASSERT_GE(result.refreshed_iterations.size(), 2u);
  for (std::size_t i = 1; i < result.refreshed_iterations.size(); ++i) {
    EXPECT_EQ(result.refreshed_iterations[i] - result.refreshed_iterations[i - 1], 17u);
  }
}

TEST(Utrr, SilentWhenTheChipHasNoProprietaryTrr) {
  const UtrrResult result = run_experiment(device_with_trr(false), 40);
  EXPECT_FALSE(result.trr_detected());
  EXPECT_FALSE(result.inferred_period.has_value());
}

TEST(Utrr, RecoversOtherPeriodsToo) {
  // The methodology must discover whatever the vendor shipped, not just 17.
  const UtrrResult result = run_experiment(device_with_trr(true, 9), 60);
  ASSERT_TRUE(result.inferred_period.has_value());
  EXPECT_EQ(*result.inferred_period, 9u);
}

TEST(Utrr, ReportsTheProfiledRetentionTime) {
  const UtrrResult result = run_experiment(device_with_trr(true, 17), 20);
  EXPECT_GT(result.retention_ms, 10.0);
  EXPECT_NEAR(result.wait_ms, result.retention_ms * 1.5, 1e-9);
}

TEST(Utrr, RejectsDegenerateConfig) {
  bender::BenderHost host(device_with_trr(true));
  const RowMap map = RowMap::from_device(host.device());
  UtrrConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(UtrrExperiment(host, map, cfg), common::PreconditionError);
  UtrrConfig cfg2;
  cfg2.safety = 1.0;
  EXPECT_THROW(UtrrExperiment(host, map, cfg2), common::PreconditionError);
}

}  // namespace
}  // namespace rh::core
