// Satellite: every cadence/count knob on the bench and tool command lines
// goes through a validated CliArgs getter, so nonsense values die at the
// flag with a message naming it — instead of hanging shard planning
// (--jobs=0), dividing by zero in a cadence, or silently disabling a
// sweep (--rows=0). Each test below calls the getter exactly the way the
// binary that owns the flag calls it.
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace rh::common {
namespace {

CliArgs make(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

// --- campaign flags (bench_util.hpp campaign_config) -----------------

TEST(FlagValidation, JobsMustBePositive) {
  EXPECT_THROW((void)make({"--jobs=0"}).get_positive_int("jobs", 1), CliError);
  EXPECT_THROW((void)make({"--jobs=-2"}).get_positive_int("jobs", 1), CliError);
}

TEST(FlagValidation, StreamCycleCadenceMustBePositive) {
  EXPECT_THROW(
      (void)make({"--stream-cycle-cadence=0"}).get_positive_int("stream-cycle-cadence", 1 << 24),
      CliError);
}

TEST(FlagValidation, StreamWallCadenceMustBePositive) {
  EXPECT_THROW((void)make({"--stream-wall-cadence-ms=0"})
                   .get_positive_double("stream-wall-cadence-ms", 250.0),
               CliError);
}

TEST(FlagValidation, FaultRateIsAFraction) {
  EXPECT_THROW((void)make({"--fault-rate=1.5"}).get_fraction("fault-rate", 0.0), CliError);
  EXPECT_THROW((void)make({"--fault-rate=-0.1"}).get_fraction("fault-rate", 0.0), CliError);
  EXPECT_THROW((void)make({"--fault-rate=nan"}).get_fraction("fault-rate", 0.0), CliError);
}

// --- sweep-shape flags (bench/fig*, tools/rh_report, examples) --------

TEST(FlagValidation, StrideMustBePositive) {
  EXPECT_THROW((void)make({"--stride=0"}).get_positive_int("stride", 2048), CliError);
}

TEST(FlagValidation, HammersMustBePositive) {
  EXPECT_THROW((void)make({"--hammers=0"}).get_positive_int("hammers", 262144), CliError);
}

TEST(FlagValidation, ToleranceMustBePositive) {
  EXPECT_THROW((void)make({"--tolerance=0"}).get_positive_int("tolerance", 512), CliError);
}

TEST(FlagValidation, RowsMustBePositive) {
  EXPECT_THROW((void)make({"--rows=0"}).get_positive_int("rows", 64), CliError);
}

TEST(FlagValidation, IterationsMustBePositive) {
  EXPECT_THROW((void)make({"--iterations=0"}).get_positive_int("iterations", 4), CliError);
}

TEST(FlagValidation, RowsPerRegionMustBePositive) {
  EXPECT_THROW((void)make({"--rows-per-region=0"}).get_positive_int("rows-per-region", 32),
               CliError);
}

TEST(FlagValidation, ChipsMustBePositive) {
  EXPECT_THROW((void)make({"--chips=0"}).get_positive_int("chips", 6), CliError);
}

TEST(FlagValidation, RowStrideMustBePositive) {
  EXPECT_THROW((void)make({"--row-stride=0"}).get_positive_int("row-stride", 1024), CliError);
}

TEST(FlagValidation, TargetsMustBePositive) {
  EXPECT_THROW((void)make({"--targets=0"}).get_positive_int("targets", 4), CliError);
}

// --- rh_tail / rh_serve flags -----------------------------------------

TEST(FlagValidation, StallMsMustBePositive) {
  EXPECT_THROW((void)make({"--stall-ms=0"}).get_positive_double("stall-ms", 2000.0), CliError);
}

TEST(FlagValidation, RigsMustBePositive) {
  EXPECT_THROW((void)make({"--rigs=0"}).get_positive_int("rigs", 2), CliError);
}

TEST(FlagValidation, QueueLimitMustBePositive) {
  EXPECT_THROW((void)make({"--queue-limit=0"}).get_positive_int("queue-limit", 8), CliError);
}

TEST(FlagValidation, TenantQuotaMustBePositive) {
  EXPECT_THROW((void)make({"--tenant-quota=0"}).get_positive_int("tenant-quota", 4), CliError);
}

TEST(FlagValidation, FlightrecSizeMustBePositive) {
  EXPECT_THROW((void)make({"--flightrec-size=0"}).get_positive_int("flightrec-size", 256),
               CliError);
  EXPECT_THROW((void)make({"--flightrec-size=-1"}).get_positive_int("flightrec-size", 256),
               CliError);
}

// --- rh_top flags ------------------------------------------------------

TEST(FlagValidation, IntervalMsMustBePositive) {
  EXPECT_THROW((void)make({"--interval-ms=0"}).get_positive_int("interval-ms", 1000), CliError);
  EXPECT_THROW((void)make({"--interval-ms=-250"}).get_positive_int("interval-ms", 1000),
               CliError);
  EXPECT_THROW((void)make({"--interval-ms=fast"}).get_positive_int("interval-ms", 1000),
               CliError);
}

// --access-log is a path (any string goes through), but it must be
// *queried*: a typo'd flag name surfaces through unqueried_flags() exactly
// the way rh_serve warns about it.
TEST(FlagValidation, AccessLogRoutesThroughGetAndTyposAreVisible) {
  const auto args = make({"--access-log=/tmp/x.jsonl"});
  EXPECT_EQ(args.get("access-log", ""), "/tmp/x.jsonl");
  EXPECT_TRUE(args.unqueried_flags().empty());

  const auto typo = make({"--acess-log=/tmp/x.jsonl"});
  EXPECT_EQ(typo.get("access-log", ""), "");
  ASSERT_EQ(typo.unqueried_flags().size(), 1u);
  EXPECT_EQ(typo.unqueried_flags()[0], "acess-log");
}

TEST(FlagValidation, MaxSecondsMustBePositive) {
  EXPECT_THROW((void)make({"--max-seconds=0"}).get_positive_double("max-seconds", 0.0), CliError);
  EXPECT_THROW((void)make({"--max-seconds=inf"}).get_positive_double("max-seconds", 0.0),
               CliError);
}

// Defaults remain unchecked: an absent flag never throws, even when the
// binary's own default would fail the validator (rh_serve --max-seconds
// defaults to 0.0 meaning "no deadline").
TEST(FlagValidation, AbsentFlagsReturnTheDefaultUnchecked) {
  const auto args = make({});
  EXPECT_EQ(args.get_positive_int("jobs", 1), 1);
  EXPECT_DOUBLE_EQ(args.get_positive_double("max-seconds", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(args.get_fraction("fault-rate", 0.0), 0.0);
}

// In-domain values pass through exactly.
TEST(FlagValidation, ValidValuesPass) {
  EXPECT_EQ(make({"--jobs=8"}).get_positive_int("jobs", 1), 8);
  EXPECT_EQ(make({"--stride=64"}).get_positive_int("stride", 2048), 64);
  EXPECT_DOUBLE_EQ(make({"--fault-rate=0.05"}).get_fraction("fault-rate", 0.0), 0.05);
  EXPECT_DOUBLE_EQ(make({"--stall-ms=1.5"}).get_positive_double("stall-ms", 2000.0), 1.5);
}

}  // namespace
}  // namespace rh::common
