#include "core/attack.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"

namespace rh::core {
namespace {

class AttackTest : public ::testing::Test {
protected:
  AttackTest()
      : host_(hbm::DeviceConfig{}),
        map_(RowMap::from_device(host_.device())),
        attacker_(host_, map_) {
    host_.device().set_temperature(85.0);
  }

  bender::BenderHost host_;
  RowMap map_;
  AttackRunner attacker_;
  const Site site_{7, 0, 0};
};

TEST_F(AttackTest, BaselineWithoutRefreshFlips) {
  AttackConfig config;
  config.refs = 0;
  const auto result = attacker_.double_sided(site_, 1200, config);
  EXPECT_GT(result.victim_flips, 0u);
}

TEST_F(AttackTest, DenseRefreshBlocksTheNaiveAttack) {
  AttackConfig config;
  config.refs = 512;
  const auto result = attacker_.double_sided(site_, 1200, config);
  AttackConfig off = config;
  off.refs = 0;
  const auto baseline = attacker_.double_sided(site_, 1200, off);
  ASSERT_GT(baseline.victim_flips, 0u);
  EXPECT_LT(result.victim_flips, baseline.victim_flips / 10);
}

TEST_F(AttackTest, DecoyEvasionRestoresTheFlips) {
  AttackConfig config;
  config.refs = 512;
  const auto naive = attacker_.double_sided(site_, 1200, config);
  const auto decoy = attacker_.decoy_evasion(site_, 1200, config);
  EXPECT_GT(decoy.victim_flips, naive.victim_flips);
  // The decoy variant should approach the refresh-off baseline.
  AttackConfig off = config;
  off.refs = 0;
  const auto baseline = attacker_.double_sided(site_, 1200, off);
  EXPECT_GT(decoy.victim_flips * 2, baseline.victim_flips);
}

TEST_F(AttackTest, DecoyMustBeOutsideTheTrrNeighbourhood) {
  // A decoy too close to the victim would let the TRR's neighbourhood
  // refresh hit the victim anyway. Distance 1 (the decoy IS an aggressor)
  // must behave like the naive attack.
  AttackConfig close_decoy;
  close_decoy.refs = 512;
  close_decoy.decoy_distance = 1;
  AttackConfig far_decoy;
  far_decoy.refs = 512;
  far_decoy.decoy_distance = 64;
  const auto close_result = attacker_.decoy_evasion(site_, 1200, close_decoy);
  const auto far_result = attacker_.decoy_evasion(site_, 1200, far_decoy);
  EXPECT_GT(far_result.victim_flips, close_result.victim_flips);
}

TEST_F(AttackTest, AttackRunsInsideRealisticTiming) {
  AttackConfig config;
  config.refs = 512;
  const auto result = attacker_.decoy_evasion(site_, 1200, config);
  // 256 K hammers + 512 REFs + decoys is still a ~25 ms attack.
  EXPECT_GT(result.dram_time_ms, 20.0);
  EXPECT_LT(result.dram_time_ms, 40.0);
}

TEST_F(AttackTest, ManySidedLayoutAndAccounting) {
  AttackConfig config;
  config.refs = 0;
  const auto result = attacker_.many_sided(site_, 1400, 3, config);
  EXPECT_EQ(result.per_victim_flips.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto f : result.per_victim_flips) sum += f;
  EXPECT_EQ(sum, result.total_victim_flips);
  EXPECT_GT(result.total_victim_flips, 0u);
}

TEST_F(AttackTest, ManySidedEvadesTheSamplerUnderRefresh) {
  // TRRespass in miniature: with refresh running, the naive double-sided
  // attack is blocked, but many-sided hammering overwhelms the one-entry
  // sampler and some victims keep flipping.
  AttackConfig config;
  config.refs = 512;
  const auto naive = attacker_.double_sided(site_, 1400, config);
  const auto many = attacker_.many_sided(site_, 1400, 4, config);
  EXPECT_GT(many.total_victim_flips, naive.victim_flips);
  EXPECT_GT(many.total_victim_flips, 0u);
}

TEST_F(AttackTest, ManySidedSamplerProtectsOnlyTheLastAggressorsVictims) {
  // The sampler always holds the most recent ACT before the REF — the last
  // aggressor in the round-robin — so the victims far from it flip more.
  AttackConfig config;
  config.refs = 512;
  const auto many = attacker_.many_sided(site_, 1400, 4, config);
  ASSERT_EQ(many.per_victim_flips.size(), 4u);
  EXPECT_GT(many.per_victim_flips.front(), many.per_victim_flips.back());
}

TEST_F(AttackTest, ResultsAreDeterministic) {
  AttackConfig config;
  config.refs = 64;
  const auto a = attacker_.decoy_evasion(site_, 1300, config);
  const auto b = attacker_.decoy_evasion(site_, 1300, config);
  EXPECT_EQ(a.victim_flips, b.victim_flips);
}

}  // namespace
}  // namespace rh::core
