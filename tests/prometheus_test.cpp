// The Prometheus text-exposition renderer behind GET /metricsz
// (src/telemetry/prometheus). The contract under test: any
// MetricsSnapshot renders as valid exposition text — sanitized names,
// escaped label values, canonical numbers, cumulative histogram
// buckets whose +Inf sample equals _count — and rendering is a pure
// function of the snapshot (repeat renders are byte-identical).
#include "telemetry/prometheus.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace rh::telemetry {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(PrometheusName, SanitizesIntoTheMetricNameGrammar) {
  EXPECT_EQ(prometheus_name("serve.http_request_us"), "serve_http_request_us");
  EXPECT_EQ(prometheus_name("cmd.act"), "cmd_act");
  EXPECT_EQ(prometheus_name("weird metric-name!"), "weird_metric_name_");
  // Colons are legal in the grammar and survive.
  EXPECT_EQ(prometheus_name("ns::metric"), "ns::metric");
}

TEST(PrometheusName, PrefixesALeadingDigit) {
  EXPECT_EQ(prometheus_name("2xx"), "_2xx");
  // First char of the result is always [a-zA-Z_:].
  const std::string n = prometheus_name("404.count");
  ASSERT_FALSE(n.empty());
  EXPECT_TRUE(n[0] == '_' || n[0] == ':' || std::isalpha(static_cast<unsigned char>(n[0])));
}

TEST(PrometheusName, IsIdempotent) {
  for (const char* raw : {"serve.http_request_us", "2xx", "weird metric-name!", "ok_name"}) {
    const std::string once = prometheus_name(raw);
    EXPECT_EQ(prometheus_name(once), once) << raw;
  }
}

TEST(PrometheusLabelEscape, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(prometheus_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_label_escape("two\nlines"), "two\\nlines");
}

TEST(PrometheusNumber, IntegralValuesPrintWithoutADecimalPoint) {
  EXPECT_EQ(prometheus_number(0.0), "0");
  EXPECT_EQ(prometheus_number(42.0), "42");
  EXPECT_EQ(prometheus_number(-3.0), "-3");
}

TEST(PrometheusNumber, FractionsRoundTripAndNonFiniteClampsToZero) {
  const std::string v = prometheus_number(0.25);
  EXPECT_EQ(std::stod(v), 0.25);
  // A scrape must never carry NaN/Inf — the renderer clamps to 0.
  EXPECT_EQ(prometheus_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(prometheus_number(std::numeric_limits<double>::infinity()), "0");
}

TEST(PrometheusSample, RendersLabelsInOrder) {
  std::ostringstream os;
  write_prometheus_sample(os, "serve_rig_done", {{"rig", "0"}}, 7.0);
  write_prometheus_sample(os, "plain_total", {}, 3.0);
  EXPECT_EQ(os.str(), "serve_rig_done{rig=\"0\"} 7\nplain_total 3\n");
}

TEST(PrometheusRender, CountersAndGaugesCarryTypeHeaders) {
  MetricsRegistry reg;
  reg.counter("serve.http_requests").add(5);
  reg.gauge("serve.queue_depth").set(2.0);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE serve_http_requests counter\n"), std::string::npos);
  EXPECT_NE(text.find("serve_http_requests 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("serve_queue_depth 2\n"), std::string::npos);
}

TEST(PrometheusRender, HistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", 0.0, 10.0, 5);  // edges 2,4,6,8,10
  h.observe(1.0);
  h.observe(1.5);
  h.observe(5.0);
  h.observe(9.9);
  h.observe(50.0);  // clamps into the last bucket; sum keeps 50
  const std::string text = prometheus_text(reg.snapshot());

  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"6\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"8\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 5\n"), std::string::npos);
  // The sum is over observed (pre-clamp) values.
  EXPECT_NE(text.find("lat_sum 67.4"), std::string::npos);
}

TEST(PrometheusRender, EmptyHistogramStillExposesEveryBucket) {
  MetricsRegistry reg;
  reg.histogram("lat", 0.0, 4.0, 2);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"4\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 0\n"), std::string::npos);
}

TEST(PrometheusRender, PlusInfAlwaysEqualsCount) {
  MetricsRegistry reg;
  auto& h = reg.histogram("serve.queue_wait_ms", 0.0, 60000.0, 120);
  for (int i = 0; i < 1000; ++i) h.observe(static_cast<double>(i) * 77.0);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("serve_queue_wait_ms_bucket{le=\"+Inf\"} 1000\n"), std::string::npos);
  EXPECT_NE(text.find("serve_queue_wait_ms_count 1000\n"), std::string::npos);
}

TEST(PrometheusRender, OutputIsDeterministicAndSortedByFamily) {
  MetricsRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(3.0);
  reg.histogram("hist", 0.0, 2.0, 2).observe(1.0);

  const auto snap = reg.snapshot();
  const std::string once = prometheus_text(snap);
  const std::string twice = prometheus_text(snap);
  EXPECT_EQ(once, twice);
  // Same registry state, fresh snapshot: still byte-identical.
  EXPECT_EQ(prometheus_text(reg.snapshot()), once);

  // Families appear in snapshot order (sorted by metric name).
  const auto alpha = once.find("# TYPE alpha counter");
  const auto hist = once.find("# TYPE hist histogram");
  const auto mid = once.find("# TYPE mid gauge");
  const auto zeta = once.find("# TYPE zeta counter");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(hist, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, hist);
  EXPECT_LT(hist, mid);
  EXPECT_LT(mid, zeta);
}

TEST(PrometheusRender, EveryLineIsAHeaderOrASample) {
  MetricsRegistry reg;
  reg.counter("serve.http_requests").add(3);
  reg.histogram("serve.http_request_us", 0.0, 100000.0, 100).observe(120.0);
  for (const auto& line : lines_of(prometheus_text(reg.snapshot()))) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    // Sample lines: `name[{labels}] value` — value parses as a double.
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

}  // namespace
}  // namespace rh::telemetry
