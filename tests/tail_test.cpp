// Tests of the rh_tail joining layer (campaign/tail.hpp): journal+stream
// fusion into one TailStatus, the stall watchdog's post-mortem and
// follow-mode semantics, and the rendered monitor sections.
#include "campaign/tail.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/journal.hpp"
#include "common/error.hpp"
#include "telemetry/stream.hpp"

namespace rh::campaign {
namespace {

/// A scratch file deleted on scope exit.
class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

core::RowRecord minimal_record(std::uint32_t row) {
  core::RowRecord record;
  record.site = {0, 0, 1};
  record.physical_row = row;
  return record;
}

/// Scratch names are per-process: ctest runs each test as its own process
/// in a shared directory, and a fixed name lets one test's TempPath delete
/// the scene out from under a concurrently-running sibling.
std::string scratch(const char* stem) {
  return std::string(stem) + "." + std::to_string(::getpid()) + ".jsonl";
}

/// A mid-run scene: shards 0 and 1 journaled, shard 2 failed, worker 0
/// in flight on (unjournaled) shard 5, worker 1 idle.
struct Scene {
  Scene()
      : journal(scratch("tail_test_journal")), stream(scratch("tail_test_stream")) {
    {
      JournalWriter writer(journal.str(), JournalHeader{42, 0xbeef, 8});
      writer.append_shard(0, {minimal_record(1), minimal_record(2)}, 100.0, 1);
      writer.append_shard(1, {minimal_record(3)}, 80.0, 2);
      writer.append_failure(2, 3, "transport: injected timeout");
    }
    telemetry::MetricsStreamHeader header;
    header.seed = 42;
    header.config_hash = 0xbeef;
    header.shards = 8;
    header.jobs = 2;
    header.cycle_cadence = 1 << 20;
    header.wall_cadence_ms = 200.0;
    telemetry::MetricsStreamWriter writer(stream.str(), header);
    writer.append(telemetry::format_cycles_sample(0, 1, 0, 1 << 20, {{"cmd.ACT", 64}}));
    writer.append(telemetry::format_wall_sample(
        500.0,
        {{"campaign.shards_done", 2}, {"resilience.injected", 3}, {"resilience.recovered", 2}},
        {{400.0, 2, 5}, {90.0, 0, -1}}));
  }

  TempPath journal;
  TempPath stream;
};

TEST(TailStatusTest, JoinsJournalAndStreamIntoOneView) {
  const Scene scene;
  const TailStatus status = tail_status(scene.journal.str(), scene.stream.str(), TailOptions{});
  EXPECT_EQ(status.seed, 42u);
  EXPECT_EQ(status.shards_total, 8u);
  EXPECT_EQ(status.jobs, 2u);
  EXPECT_EQ(status.done, 2u);
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.records, 3u);
  EXPECT_EQ(status.attempts, 6u);  // 1 + 2 + 3
  EXPECT_DOUBLE_EQ(status.elapsed_ms, 500.0);
  EXPECT_FALSE(status.finished);
  EXPECT_FALSE(status.eta.empty());
  EXPECT_EQ(status.counters.at("resilience.injected"), 3u);
  EXPECT_EQ(status.device_counters.at("cmd.ACT"), 64u);
  ASSERT_EQ(status.workers.size(), 2u);
  EXPECT_DOUBLE_EQ(status.workers[0].utilization, 0.8);  // 400 ms of 500 ms
  EXPECT_EQ(status.workers[0].shard, 5);
  EXPECT_EQ(status.workers[1].shard, -1);
}

TEST(TailStatusTest, PostMortemFlagsEveryClaimedButUnjournaledShard) {
  const Scene scene;
  // Default options model the post-mortem: no live observation, so a shard
  // a worker claimed but never journaled is a casualty outright.
  const TailStatus status = tail_status(scene.journal.str(), scene.stream.str(), TailOptions{});
  ASSERT_EQ(status.stalled.size(), 1u);
  EXPECT_EQ(status.stalled[0].shard, 5u);
  EXPECT_EQ(status.stalled[0].worker, 0u);
  EXPECT_TRUE(status.watchdog_tripped);
}

TEST(TailStatusTest, FollowModeTripsOnlyAfterTheStallBudget) {
  const Scene scene;
  TailOptions opts;
  opts.stall_ms = 2000.0;
  opts.observed_idle_ms = 100.0;  // files still growing: in flight, not stalled
  const TailStatus busy = tail_status(scene.journal.str(), scene.stream.str(), opts);
  ASSERT_EQ(busy.stalled.size(), 1u);
  EXPECT_FALSE(busy.watchdog_tripped);

  opts.observed_idle_ms = 2500.0;  // quiet past the budget
  const TailStatus quiet = tail_status(scene.journal.str(), scene.stream.str(), opts);
  EXPECT_TRUE(quiet.watchdog_tripped);
}

TEST(TailStatusTest, JournaledShardIsNeverASuspect) {
  const Scene scene;
  {
    // The campaign journals shard 5 (the write raced the wall sample).
    JournalWriter writer(scene.journal.str(), JournalReader(scene.journal.str()).intact_bytes());
    writer.append_shard(5, {minimal_record(9)}, 120.0, 1);
  }
  const TailStatus status = tail_status(scene.journal.str(), scene.stream.str(), TailOptions{});
  EXPECT_TRUE(status.stalled.empty());
  EXPECT_FALSE(status.watchdog_tripped);
  EXPECT_EQ(status.done, 3u);
}

TEST(TailStatusTest, FinalSampleFinishesTheStatus) {
  const Scene scene;
  {
    telemetry::MetricsStreamHeader header;
    header.seed = 42;
    header.shards = 8;
    header.jobs = 2;
    telemetry::MetricsStreamWriter writer(scene.stream.str(), header);
    writer.append(telemetry::format_wall_sample(500.0, {}, {{400.0, 2, 5}}));
    writer.append(
        telemetry::format_final_sample(900.0, {{"campaign.shards_done", 7}}, 7, 1, 0, 8));
  }
  const TailStatus status = tail_status("", scene.stream.str(), TailOptions{});
  EXPECT_TRUE(status.finished);
  EXPECT_EQ(status.done, 7u);
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.shards_total, 8u);
  EXPECT_TRUE(status.stalled.empty()) << "a finished campaign has nothing in flight";
  EXPECT_FALSE(status.watchdog_tripped);
  EXPECT_TRUE(status.eta.empty());
}

TEST(TailStatusTest, StreamOnlyModeCountsFromCampaignCounters) {
  const Scene scene;
  const TailStatus status = tail_status("", scene.stream.str(), TailOptions{});
  EXPECT_EQ(status.done, 2u) << "campaign.shards_done stands in for the journal";
  EXPECT_EQ(status.records, 0u) << "record counts need the journal";
}

TEST(TailStatusTest, JournalOnlyModeWorksWithoutAStream) {
  const Scene scene;
  const TailStatus status = tail_status(scene.journal.str(), "", TailOptions{});
  EXPECT_EQ(status.done, 2u);
  EXPECT_EQ(status.failed, 1u);
  EXPECT_TRUE(status.workers.empty());
  EXPECT_TRUE(status.stalled.empty());
  EXPECT_THROW((void)tail_status("", "", TailOptions{}), common::ConfigError);
}

TEST(TailRenderTest, AlwaysPrintsUtilizationAndWatchdogSections) {
  const Scene scene;
  const TailStatus status = tail_status(scene.journal.str(), scene.stream.str(), TailOptions{});
  std::ostringstream os;
  render_tail_status(os, status);
  const std::string text = os.str();
  EXPECT_NE(text.find("[rh_tail] seed 42 | 3/8 shards (37%)"), std::string::npos) << text;
  EXPECT_NE(text.find("1 FAILED"), std::string::npos);
  EXPECT_NE(text.find("per-worker utilization:"), std::string::npos);
  EXPECT_NE(text.find("worker 0: 80% busy"), std::string::npos);
  EXPECT_NE(text.find("shard 5 in flight"), std::string::npos);
  EXPECT_NE(text.find("worker 1: 18% busy"), std::string::npos);
  EXPECT_NE(text.find("idle"), std::string::npos);
  EXPECT_NE(text.find("faults: 3 injected"), std::string::npos);
  EXPECT_NE(text.find("2 recovered"), std::string::npos);
  EXPECT_NE(text.find("stall watchdog:"), std::string::npos);
  EXPECT_NE(text.find("STALLED: shard 5 (worker 0) — claimed but not journaled"),
            std::string::npos);

  // A journal-only status still prints both section headers (CI greps them).
  const TailStatus bare = tail_status(scene.journal.str(), "", TailOptions{});
  std::ostringstream os2;
  render_tail_status(os2, bare);
  EXPECT_NE(os2.str().find("per-worker utilization:"), std::string::npos);
  EXPECT_NE(os2.str().find("(no wall samples yet"), std::string::npos);
  EXPECT_NE(os2.str().find("stall watchdog:"), std::string::npos);
  EXPECT_NE(os2.str().find("ok — no suspect shards"), std::string::npos);
}

TEST(TailRenderTest, FinishedCampaignRendersCleanly) {
  TailStatus status;
  status.seed = 7;
  status.shards_total = 4;
  status.done = 4;
  status.finished = true;
  status.elapsed_ms = 1500.0;
  std::ostringstream os;
  render_tail_status(os, status);
  const std::string text = os.str();
  EXPECT_NE(text.find("finished in 1.5s"), std::string::npos) << text;
  EXPECT_NE(text.find("campaign finished cleanly"), std::string::npos);
  EXPECT_EQ(text.find("STALLED"), std::string::npos);
}

TEST(TailRenderTest, TornTailIsAnnotatedNotFatal) {
  const Scene scene;
  {
    std::ofstream out(scene.stream.str(), std::ios::app);
    out << "{\"sample\":\"wall\",\"t_m";
  }
  const TailStatus status = tail_status(scene.journal.str(), scene.stream.str(), TailOptions{});
  EXPECT_TRUE(status.torn);
  std::ostringstream os;
  render_tail_status(os, status);
  EXPECT_NE(os.str().find("torn tail tolerated"), std::string::npos);
}

}  // namespace
}  // namespace rh::campaign
