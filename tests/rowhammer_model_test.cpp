#include "fault/rowhammer_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/process_variation.hpp"
#include "hbm/geometry.hpp"
#include "hbm/subarray.hpp"

namespace rh::fault {
namespace {

class RowHammerModelTest : public ::testing::Test {
protected:
  RowHammerModelTest()
      : layout_(hbm::SubarrayLayout::paper_layout(geometry_.rows_per_bank)),
        variation_(cfg_, geometry_),
        model_(cfg_, geometry_, layout_, variation_) {}

  BankContext bank(std::uint32_t ch = 0) const {
    return BankContext::from(geometry_, hbm::BankAddress{ch, 0, 0});
  }

  std::vector<std::uint8_t> row(std::uint8_t value) const {
    return std::vector<std::uint8_t>(geometry_.row_bytes(), value);
  }

  std::size_t flips(std::uint32_t ch, std::uint32_t physical_row, std::uint8_t victim,
                    std::uint8_t aggressor, double disturbance) const {
    auto data = row(victim);
    const auto above = row(aggressor);
    const auto below = row(aggressor);
    // A fresh copy per call: apply() mutates.
    return const_cast<RowHammerModel&>(model_).apply(bank(ch), physical_row, data, above, below,
                                                     disturbance, 85.0);
  }

  FaultConfig cfg_{};
  hbm::Geometry geometry_ = hbm::paper_geometry();
  hbm::SubarrayLayout layout_;
  ProcessVariation variation_;
  RowHammerModel model_;
};

TEST_F(RowHammerModelTest, ZeroDisturbanceNeverFlips) {
  EXPECT_EQ(flips(0, 100, 0x00, 0xFF, 0.0), 0u);
}

TEST_F(RowHammerModelTest, BelowGlobalMinNeverFlips) {
  const double d = model_.global_min_disturbance() * 0.99;
  for (std::uint32_t r = 0; r < 3000; r += 123) {
    EXPECT_EQ(flips(7, r, 0x00, 0xFF, d), 0u) << "row " << r;
  }
}

TEST_F(RowHammerModelTest, LargeDisturbanceFlipsEveryRow) {
  // The paper: "RH bitflips occur in every tested DRAM row".
  for (std::uint32_t r = 100; r < 800; r += 37) {
    EXPECT_GT(flips(0, r, 0x00, 0xFF, 2'000'000.0), 0u) << "row " << r;
  }
}

TEST_F(RowHammerModelTest, FlipCountIsMonotoneInDisturbance) {
  const std::uint32_t r = 416;  // mid-subarray
  std::size_t prev = 0;
  for (const double d : {2e5, 4e5, 8e5, 1.6e6, 3.2e6}) {
    const std::size_t f = flips(0, r, 0x00, 0xFF, d);
    EXPECT_GE(f, prev) << "d=" << d;
    prev = f;
  }
}

TEST_F(RowHammerModelTest, OppositeAggressorDataCouplesMoreStrongly) {
  // Classic RH data-pattern dependence: aggressors storing the victim's
  // complement flip more bits than aggressors storing the same value.
  const std::uint32_t r = 416;
  EXPECT_GT(flips(0, r, 0x00, 0xFF, 6e5), flips(0, r, 0x00, 0x00, 6e5));
}

TEST_F(RowHammerModelTest, AllZeroVictimBeatsAllOneVictim) {
  // anti_cell_fraction > 0.5 and anti_cell_relative > 1: all-zero victims
  // (Rowstripe0) are the most vulnerable — Fig. 4's RS0 < RS1 HC_first.
  std::size_t zero_total = 0;
  std::size_t one_total = 0;
  for (std::uint32_t r = 100; r < 700; r += 29) {
    zero_total += flips(0, r, 0x00, 0xFF, 5e5);
    one_total += flips(0, r, 0xFF, 0x00, 5e5);
  }
  EXPECT_GT(zero_total, one_total);
}

TEST_F(RowHammerModelTest, CheckeredCouplesMoreWeaklyThanRowstripe) {
  std::size_t rowstripe = 0;
  std::size_t checkered = 0;
  for (std::uint32_t r = 100; r < 700; r += 29) {
    rowstripe += flips(0, r, 0x00, 0xFF, 5e5);
    checkered += flips(0, r, 0x55, 0xAA, 5e5);
  }
  EXPECT_GT(rowstripe, checkered);
}

TEST_F(RowHammerModelTest, MidSubarrayIsMoreVulnerableThanEdges) {
  // Fig. 5: BER is higher mid-subarray, lower toward the sense amps.
  const double edge = model_.row_vulnerability(bank(0), 1, 85.0);
  const double mid = model_.row_vulnerability(bank(0), 416, 85.0);
  EXPECT_GT(mid, edge);
}

TEST_F(RowHammerModelTest, LastSubarrayIsStronglyAttenuated) {
  const auto b = bank(0);
  const double last = model_.row_vulnerability(b, geometry_.rows_per_bank - 416, 85.0);
  const double normal = model_.row_vulnerability(b, 416, 85.0);
  EXPECT_LT(last, normal * 0.35);
}

TEST_F(RowHammerModelTest, WorstChannelIsMoreVulnerable) {
  const double ch0 = model_.row_vulnerability(bank(0), 416, 85.0);
  const double ch7 = model_.row_vulnerability(bank(7), 416, 85.0);
  EXPECT_GT(ch7, ch0);
}

TEST_F(RowHammerModelTest, TemperatureMildlyIncreasesVulnerability) {
  EXPECT_GT(model_.temperature_factor(95.0), model_.temperature_factor(85.0));
  EXPECT_LT(model_.temperature_factor(45.0), model_.temperature_factor(85.0));
  EXPECT_NEAR(model_.temperature_factor(85.0), 1.0, 1e-12);
}

TEST_F(RowHammerModelTest, ApplyIsDeterministic) {
  auto d1 = row(0x00);
  auto d2 = row(0x00);
  const auto above = row(0xFF);
  const auto below = row(0xFF);
  model_.apply(bank(0), 416, d1, above, below, 6e5, 85.0);
  model_.apply(bank(0), 416, d2, above, below, 6e5, 85.0);
  EXPECT_EQ(d1, d2);
}

TEST_F(RowHammerModelTest, FlippedCellsStayFlippedOnReapplication) {
  // Once materialized, a flipped (now discharged) cell must not flip back
  // when the model is applied again with more disturbance.
  auto data = row(0x00);
  const auto above = row(0xFF);
  const auto below = row(0xFF);
  const auto b = bank(7);
  const std::size_t first = model_.apply(b, 416, data, above, below, 6e5, 85.0);
  ASSERT_GT(first, 0u);
  auto snapshot = data;
  model_.apply(b, 416, data, above, below, 6e5, 85.0);
  // Everything that was flipped (0 -> 1 for the all-zero victim) must still
  // be flipped: no bit set in the snapshot may be cleared by reapplication.
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(snapshot[i] & ~data[i], 0) << "byte " << i;
  }
  // And the flip count barely grows (the same bits are already flipped).
  std::size_t diff = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    diff += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(snapshot[i] ^ data[i])));
  }
  EXPECT_LT(diff, first / 4 + 8);
}

TEST_F(RowHammerModelTest, MissingNeighbourMeansNoOppositeBoost) {
  const std::uint32_t r = 416;
  auto with_both = row(0x00);
  auto with_none = row(0x00);
  const auto agg = row(0xFF);
  const std::size_t both = model_.apply(bank(0), r, with_both, agg, agg, 5e5, 85.0);
  const std::size_t none = model_.apply(bank(0), r, with_none, {}, {}, 5e5, 85.0);
  EXPECT_GT(both, none);
}

class DisturbanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DisturbanceSweep, FlipFractionIsSane) {
  const FaultConfig cfg{};
  const auto geometry = hbm::paper_geometry();
  const auto layout = hbm::SubarrayLayout::paper_layout(geometry.rows_per_bank);
  const ProcessVariation variation(cfg, geometry);
  const RowHammerModel model(cfg, geometry, layout, variation);
  const auto b = BankContext::from(geometry, hbm::BankAddress{7, 0, 0});
  std::vector<std::uint8_t> data(geometry.row_bytes(), 0x00);
  const std::vector<std::uint8_t> agg(geometry.row_bytes(), 0xFF);
  const std::size_t flips = model.apply(b, 416, data, agg, agg, GetParam(), 85.0);
  // Even at very large disturbance, discharged cells can't flip in the
  // charge-loss direction — the fraction must stay well below 100%.
  EXPECT_LT(flips, geometry.row_bits());
}

INSTANTIATE_TEST_SUITE_P(Levels, DisturbanceSweep, ::testing::Values(1e5, 1e6, 1e7, 1e8));

}  // namespace
}  // namespace rh::fault
