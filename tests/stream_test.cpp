// Tests of the rh-metrics-stream/v1 layer (telemetry/stream.hpp): line
// formats, the writer's header + durability contract, and the cadence /
// delta / baseline semantics of MetricsSampler.
#include "telemetry/stream.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/tail.hpp"
#include "common/error.hpp"
#include "resilience/storage.hpp"

namespace rh::telemetry {
namespace {

/// A scratch file deleted on scope exit.
class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Strips the v2 CRC frame, asserting it is present and intact: every line
/// the writer produces must carry a valid frame.
std::string unframe(const std::string& line) {
  std::string_view payload;
  EXPECT_EQ(resilience::check_frame(line, payload), resilience::FrameCheck::kFramed) << line;
  return std::string(payload);
}

TEST(StreamFormatTest, CyclesSampleIsExactAndOmitsZeroDeltas) {
  const CounterValues deltas{{"cmd.ACT", 128}, {"cmd.REF", 2}};
  EXPECT_EQ(format_cycles_sample(3, 1, 0, 16777216, deltas),
            "{\"sample\":\"cycles\",\"shard\":3,\"attempt\":1,\"seq\":0,"
            "\"cycle\":16777216,\"deltas\":{\"cmd.ACT\":128,\"cmd.REF\":2}}");
  EXPECT_EQ(format_cycles_sample(0, 2, 5, 42, {}),
            "{\"sample\":\"cycles\",\"shard\":0,\"attempt\":2,\"seq\":5,"
            "\"cycle\":42,\"deltas\":{}}");
}

TEST(StreamFormatTest, WallSampleListsWorkersInOrder) {
  const std::vector<StreamWorkerStatus> workers{{12.5, 3, 7}, {0.0, 0, -1}};
  EXPECT_EQ(format_wall_sample(201.25, {{"campaign.shards_done", 3}}, workers),
            "{\"sample\":\"wall\",\"t_ms\":201.250,"
            "\"counters\":{\"campaign.shards_done\":3},"
            "\"workers\":[{\"busy_ms\":12.500,\"done\":3,\"shard\":7},"
            "{\"busy_ms\":0.000,\"done\":0,\"shard\":-1}]}");
}

TEST(StreamFormatTest, FinalSampleCarriesShardTotals) {
  EXPECT_EQ(format_final_sample(999.5, {{"resilience.injected", 4}}, 17, 1, 2, 20),
            "{\"sample\":\"final\",\"t_ms\":999.500,"
            "\"counters\":{\"resilience.injected\":4},"
            "\"shards\":{\"done\":17,\"failed\":1,\"skipped\":2,\"total\":20}}");
}

TEST(StreamFormatTest, CounterValuesTakeOnlyCounters) {
  MetricsRegistry reg;
  reg.counter("a").add(5);
  reg.gauge("g").set(3.5);
  reg.histogram("h", 0.0, 1.0, 2).observe(0.5);
  const CounterValues values = counter_values(reg);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values.at("a"), 5u);
}

TEST(StreamWriterTest, TruncatesWritesHeaderThenAppends) {
  const TempPath path("stream_test_writer.jsonl");
  {
    std::ofstream stale(path.str());
    stale << "previous run's leftovers\n";
  }
  MetricsStreamHeader header;
  header.seed = 9;
  header.config_hash = 0xabcdef;
  header.shards = 18;
  header.jobs = 4;
  header.cycle_cadence = 1ull << 24;
  header.wall_cadence_ms = 200.0;
  {
    MetricsStreamWriter writer(path.str(), header);
    writer.append(format_cycles_sample(0, 1, 0, 100, {}));
  }
  const auto lines = read_lines(path.str());
  ASSERT_EQ(lines.size(), 2u) << "stale content must be truncated";
  EXPECT_EQ(unframe(lines[0]),
            "{\"kind\":\"rh-metrics-stream\",\"version\":2,\"seed\":9,"
            "\"config_hash\":\"0000000000abcdef\",\"shards\":18,\"jobs\":4,"
            "\"cycle_cadence\":16777216,\"wall_cadence_ms\":200.000}");
  EXPECT_EQ(unframe(lines[1]).rfind("{\"sample\":\"cycles\"", 0), 0u);
}

TEST(StreamWriterTest, UnwritablePathThrowsUpFront) {
  EXPECT_THROW(MetricsStreamWriter("/nonexistent-dir/stream.jsonl", MetricsStreamHeader{}),
               common::ConfigError);
}

TEST(MetricsSamplerTest, EmitsOncePerCadenceCrossingWithDeltas) {
  const TempPath path("stream_test_sampler.jsonl");
  MetricsRegistry reg;
  MetricsStreamWriter writer(path.str(), MetricsStreamHeader{});
  MetricsSampler sampler(writer, reg, /*cadence=*/100, /*shard=*/2, /*attempt=*/1,
                         /*base_cycle=*/1000);

  reg.counter("cmd.ACT").add(10);
  sampler.sample_if_due(1050);  // 50 relative cycles: not due yet
  EXPECT_EQ(sampler.samples_emitted(), 0u);
  sampler.sample_if_due(1130);  // crossed 100
  EXPECT_EQ(sampler.samples_emitted(), 1u);
  sampler.sample_if_due(1180);  // next boundary is 200: not due
  reg.counter("cmd.ACT").add(7);
  sampler.sample_if_due(1420);  // crossed 200 (and 300/400: one sample per visit)
  EXPECT_EQ(sampler.samples_emitted(), 2u);
  sampler.finish(1500);  // closing sample is unconditional
  EXPECT_EQ(sampler.samples_emitted(), 3u);

  const auto lines = read_lines(path.str());
  ASSERT_EQ(lines.size(), 4u);  // header + 3 samples
  // Cycle stamps are attempt-relative; deltas are since the previous sample.
  EXPECT_EQ(unframe(lines[1]),
            "{\"sample\":\"cycles\",\"shard\":2,\"attempt\":1,\"seq\":0,"
            "\"cycle\":130,\"deltas\":{\"cmd.ACT\":10}}");
  EXPECT_EQ(unframe(lines[2]),
            "{\"sample\":\"cycles\",\"shard\":2,\"attempt\":1,\"seq\":1,"
            "\"cycle\":420,\"deltas\":{\"cmd.ACT\":7}}");
  EXPECT_EQ(unframe(lines[3]),
            "{\"sample\":\"cycles\",\"shard\":2,\"attempt\":1,\"seq\":2,"
            "\"cycle\":500,\"deltas\":{}}");
}

TEST(MetricsSamplerTest, BaselinesAtConstructionSoPriorShardsDoNotLeak) {
  // A worker sink accumulates across the shards that worker runs; the
  // sampler must report only activity after its own construction, or the
  // first delta of every shard would depend on scheduling.
  const TempPath path("stream_test_baseline.jsonl");
  MetricsRegistry reg;
  reg.counter("cmd.ACT").add(5000);  // a previous shard's activity
  MetricsStreamWriter writer(path.str(), MetricsStreamHeader{});
  MetricsSampler sampler(writer, reg, 100, 0, 1, 0);
  reg.counter("cmd.ACT").add(3);
  sampler.finish(50);
  const auto lines = read_lines(path.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"deltas\":{\"cmd.ACT\":3}"), std::string::npos) << lines[1];
}

TEST(StreamReaderTest, RoundTripsThroughTheTailReader) {
  const TempPath path("stream_test_roundtrip.jsonl");
  MetricsStreamHeader header;
  header.seed = 4;
  header.shards = 6;
  header.jobs = 2;
  header.cycle_cadence = 128;
  header.wall_cadence_ms = 50.0;
  {
    MetricsStreamWriter writer(path.str(), header);
    writer.append(format_cycles_sample(0, 1, 0, 128, {{"cmd.ACT", 9}}));
    writer.append(format_wall_sample(60.0, {{"campaign.shards_done", 1}}, {{12.0, 1, 3}}));
    writer.append(format_final_sample(120.0, {{"campaign.shards_done", 6}}, 6, 0, 0, 6));
  }
  const campaign::MetricsStreamData data = campaign::read_metrics_stream(path.str());
  EXPECT_TRUE(data.has_header);
  EXPECT_EQ(data.seed, 4u);
  EXPECT_EQ(data.jobs, 2u);
  EXPECT_EQ(data.cycle_cadence, 128u);
  EXPECT_EQ(data.cycles_samples, 1u);
  EXPECT_EQ(data.wall_samples, 1u);
  EXPECT_EQ(data.device_counters.at("cmd.ACT"), 9u);
  ASSERT_EQ(data.workers.size(), 1u);
  EXPECT_EQ(data.workers[0].shard, 3);
  EXPECT_TRUE(data.finished);
  EXPECT_EQ(data.final_done, 6u);
  EXPECT_FALSE(data.torn);
}

TEST(StreamReaderTest, ToleratesTornTrailingLineOnly) {
  const TempPath path("stream_test_torn.jsonl");
  {
    MetricsStreamWriter writer(path.str(), MetricsStreamHeader{});
    writer.append(format_cycles_sample(0, 1, 0, 10, {}));
  }
  {
    std::ofstream out(path.str(), std::ios::app);
    out << "{\"sample\":\"cycles\",\"sh";  // the kill mid-append
  }
  const campaign::MetricsStreamData torn_tail = campaign::read_metrics_stream(path.str());
  EXPECT_TRUE(torn_tail.torn);
  EXPECT_EQ(torn_tail.cycles_samples, 1u) << "intact prefix must survive";

  // A newline-terminated but unparsable *final* line is the same torn write
  // (the newline landed, the payload did not); once a good line follows it,
  // the damage is mid-file bit rot — counted and skipped, never fatal,
  // because the header above it is intact and telemetry is advisory.
  {
    std::ofstream out(path.str(), std::ios::app);
    out << "yntax error\n";
  }
  EXPECT_TRUE(campaign::read_metrics_stream(path.str()).torn);
  {
    std::ofstream out(path.str(), std::ios::app);
    out << format_cycles_sample(1, 1, 0, 10, {}) << '\n';  // bare v1 line: accepted
  }
  const campaign::MetricsStreamData rotted = campaign::read_metrics_stream(path.str());
  EXPECT_FALSE(rotted.torn) << "the tail line is now intact";
  EXPECT_EQ(rotted.corrupt_lines, 1u);
  EXPECT_EQ(rotted.cycles_samples, 2u) << "good lines on both sides of the rot survive";
}

TEST(StreamReaderTest, RejectsForeignFiles) {
  const TempPath path("stream_test_foreign.jsonl");
  {
    std::ofstream out(path.str());
    out << "{\"kind\":\"rh-checkpoint\",\"version\":1}\n";
  }
  EXPECT_THROW((void)campaign::read_metrics_stream(path.str()), common::ConfigError);
  EXPECT_THROW((void)campaign::read_metrics_stream("stream_test_missing.jsonl"),
               common::ConfigError);
}

}  // namespace
}  // namespace rh::telemetry
