// Property / fuzz tests: randomly generated workloads must uphold the
// stack-wide invariants — builder-emitted programs never violate DRAM
// timing, data written through random program sequences reads back exactly,
// and the disassembler covers every instruction it is given.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "bender/host.hpp"
#include "common/rng.hpp"
#include "core/data_patterns.hpp"

namespace rh {
namespace {

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, BuilderEmittedSequencesNeverViolateTiming) {
  // Property: any interleaving of the builder's high-level emitters across
  // random banks and rows is a legal command schedule.
  bender::BenderHost host{hbm::DeviceConfig{}};
  const auto& geometry = host.device().geometry();
  common::Xoshiro256 rng(GetParam());

  bender::ProgramBuilder b(geometry, host.device().timings());
  b.program().set_wide_register(0, core::make_row_image(geometry, 0x3C));
  b.program().set_wide_register(1, core::make_row_image(geometry, 0xC3));
  for (int step = 0; step < 40; ++step) {
    const auto bank = static_cast<std::uint8_t>(rng.below(geometry.banks_per_pseudo_channel));
    const auto row = static_cast<std::uint32_t>(rng.below(geometry.rows_per_bank));
    switch (rng.below(5)) {
      case 0:
        b.init_row(bank, row, static_cast<std::uint8_t>(rng.below(2)));
        break;
      case 1:
        b.read_row(bank, row);
        break;
      case 2:
        b.touch_row(bank, row);
        break;
      case 3:
        b.ldi(0, row);
        b.hammer_single(bank, 0, static_cast<std::int64_t>(rng.below(200)));
        break;
      default:
        b.ref();
        b.sleep(static_cast<std::int64_t>(host.device().timings().tRFC));
        break;
    }
  }
  EXPECT_NO_THROW((void)host.run(b.take(), static_cast<std::uint32_t>(rng.below(8)),
                                 static_cast<std::uint32_t>(rng.below(2))));
}

TEST_P(RandomPrograms, WritesReadBackExactlyAcrossRandomSites) {
  // Property: within the retention window, every written row reads back
  // bit-exactly regardless of site, order, or interleaving.
  bender::BenderHost host{hbm::DeviceConfig{}};
  const auto& geometry = host.device().geometry();
  common::Xoshiro256 rng(GetParam() * 977 + 3);

  struct Write {
    std::uint32_t channel;
    std::uint32_t pc;
    std::uint8_t bank;
    std::uint32_t row;
    std::uint8_t value;
  };
  std::vector<Write> writes;
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint8_t, std::uint32_t>, std::uint8_t>
      latest;
  for (int i = 0; i < 12; ++i) {
    Write w;
    w.channel = static_cast<std::uint32_t>(rng.below(8));
    w.pc = static_cast<std::uint32_t>(rng.below(2));
    w.bank = static_cast<std::uint8_t>(rng.below(16));
    w.row = static_cast<std::uint32_t>(rng.below(geometry.rows_per_bank));
    w.value = static_cast<std::uint8_t>(rng.below(256));
    writes.push_back(w);
    latest[{w.channel, w.pc, w.bank, w.row}] = w.value;
  }

  for (const auto& w : writes) {
    bender::ProgramBuilder b(geometry, host.device().timings());
    b.program().set_wide_register(0, core::make_row_image(geometry, w.value));
    b.init_row(w.bank, w.row, 0);
    (void)host.run(b.take(), w.channel, w.pc);
  }
  for (const auto& [key, value] : latest) {
    const auto [channel, pc, bank, row] = key;
    bender::ProgramBuilder b(geometry, host.device().timings());
    b.read_row(bank, row);
    const auto result = host.run(b.take(), channel, pc);
    for (const auto byte : result.readback) {
      ASSERT_EQ(byte, value) << "ch" << channel << " pc" << pc << " b" << int(bank) << " row"
                             << row;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(Disassembler, RendersEveryEmittedInstruction) {
  const auto geometry = hbm::paper_geometry();
  bender::ProgramBuilder b(geometry, hbm::paper_timings());
  b.program().set_wide_register(2, core::make_row_image(geometry, 0xAA));
  b.ldi(1, 42);
  b.addi(2, 1, -1);
  const auto loop = b.here();
  b.act(3, 1);
  b.sleep(30);
  b.pre(3);
  b.sleep(9);
  b.blt(2, 1, loop);
  b.mrs(4, 0);
  b.hammer(0, 1, 2, 100, 50);
  b.ref();
  const auto program = b.take();
  const auto lines = bender::disassemble(program);
  ASSERT_EQ(lines.size(), program.instructions().size());
  const std::string joined = [&] {
    std::string all;
    for (const auto& line : lines) all += line + "\n";
    return all;
  }();
  for (const char* expect : {"LDI r1, 42", "ADDI r2, r1, -1", "ACT b3, row=r1", "PRE b3",
                             "BLT r2, r1, @2", "MRS mr4 <- 0", "count=100, tON=50", "REF",
                             "SLEEP 30", "END"}) {
    EXPECT_NE(joined.find(expect), std::string::npos) << "missing: " << expect << "\n" << joined;
  }
}

TEST(Disassembler, IndexesLines) {
  const auto geometry = hbm::paper_geometry();
  bender::ProgramBuilder b(geometry, hbm::paper_timings());
  b.nop();
  b.nop();
  const auto lines = bender::disassemble(b.take());
  EXPECT_EQ(lines[0].rfind("0: ", 0), 0u);
  EXPECT_EQ(lines[1].rfind("1: ", 0), 0u);
  EXPECT_EQ(lines[2], "2: END");
}

}  // namespace
}  // namespace rh
