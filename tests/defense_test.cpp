#include <gtest/gtest.h>

#include "bender/host.hpp"
#include "defense/graphene.hpp"
#include "defense/harness.hpp"
#include "defense/para.hpp"

namespace rh::defense {
namespace {

class DefenseTest : public ::testing::Test {
protected:
  DefenseTest()
      : host_(hbm::DeviceConfig{}),
        map_(core::RowMap::from_device(host_.device())),
        harness_(host_, map_) {
    host_.device().set_temperature(85.0);
  }

  bender::BenderHost host_;
  core::RowMap map_;
  DefenseHarness harness_;
  const core::Site site_{7, 0, 0};
};

TEST_F(DefenseTest, UndefendedAttackFlipsTheVictim) {
  const auto result = harness_.run_double_sided(site_, 1200, 262'144, nullptr);
  EXPECT_GT(result.victim_flips, 0u);
  EXPECT_EQ(result.preventive_activations, 0u);
  EXPECT_EQ(result.attack_activations, 2u * 262'144);
}

TEST_F(DefenseTest, ParaSuppressesFlipsAtModestOverhead) {
  Para para(map_, ParaConfig{0.02, 7});
  const auto defended = harness_.run_double_sided(site_, 1200, 262'144, &para);
  const auto open = harness_.run_double_sided(site_, 1230, 262'144, nullptr);
  ASSERT_GT(open.victim_flips, 0u);
  EXPECT_EQ(defended.victim_flips, 0u);
  EXPECT_NEAR(defended.overhead(), 0.02, 0.005);
}

TEST_F(DefenseTest, ParaProbabilityZeroIsNoDefense) {
  Para para(map_, ParaConfig{0.0, 7});
  const auto result = harness_.run_double_sided(site_, 1200, 262'144, &para);
  EXPECT_GT(result.victim_flips, 0u);
  EXPECT_EQ(result.preventive_activations, 0u);
}

TEST_F(DefenseTest, ParaProvisioningTracksHcFirst) {
  EXPECT_GT(Para::provision_probability(10'000.0), Para::provision_probability(50'000.0));
  EXPECT_LE(Para::provision_probability(1.0), 1.0);
}

TEST_F(DefenseTest, GrapheneBlocksDeterministically) {
  Graphene graphene(map_, GrapheneConfig{4'096, 64});
  const auto result = harness_.run_double_sided(site_, 1200, 262'144, &graphene);
  EXPECT_EQ(result.victim_flips, 0u);
  // Preventive refreshes fire once per threshold crossing per aggressor:
  // 2 aggressors x (262144 / 4096) crossings x 2 neighbours each.
  const std::uint64_t crossings = 2ULL * (262'144 / 4'096) * 2ULL;
  EXPECT_NEAR(static_cast<double>(result.preventive_activations),
              static_cast<double>(crossings), static_cast<double>(crossings) * 0.2);
}

TEST_F(DefenseTest, GrapheneWithHugeThresholdFails) {
  Graphene graphene(map_, GrapheneConfig{1'000'000, 64});
  const auto result = harness_.run_double_sided(site_, 1200, 262'144, &graphene);
  EXPECT_GT(result.victim_flips, 0u);
}

TEST_F(DefenseTest, GrapheneCountsActivations) {
  Graphene graphene(map_, GrapheneConfig{1'000, 8});
  for (int i = 0; i < 10; ++i) (void)graphene.on_activate(0, 42);
  EXPECT_EQ(graphene.count_of(0, 42), 10u);
  graphene.reset();
  EXPECT_EQ(graphene.count_of(0, 42), 0u);
}

TEST_F(DefenseTest, GrapheneMisraGriesBoundsTableSize) {
  Graphene graphene(map_, GrapheneConfig{1'000'000, 4});
  // Stream over many distinct rows: the table must not grow past 4
  // (indirectly observable: counts of early rows decay away).
  for (std::uint32_t row = 0; row < 100; ++row) {
    for (int i = 0; i < 3; ++i) (void)graphene.on_activate(0, row);
  }
  EXPECT_EQ(graphene.count_of(0, 0), 0u);  // decremented away long ago
}

TEST_F(DefenseTest, GrapheneThresholdFiresExactlyOnTime) {
  Graphene graphene(map_, GrapheneConfig{5, 8});
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(graphene.on_activate(0, 100).empty());
  }
  const auto victims = graphene.on_activate(0, 100);
  EXPECT_EQ(victims.size(), 2u);
  EXPECT_EQ(graphene.count_of(0, 100), 0u);  // reset after firing
}

TEST_F(DefenseTest, ProfileAwareProvisioningCutsOverhead) {
  // The paper's implication, quantified end to end: provision PARA for the
  // chip-wide worst case vs for channel 0's own (larger) HC_first; both
  // protect channel 0, the aware one at lower overhead.
  const double chip_min_hc = 13'000.0;
  const double ch0_min_hc = 22'000.0;  // weaker channel: larger HC_first
  Para uniform(map_, ParaConfig{Para::provision_probability(chip_min_hc), 7});
  Para aware(map_, ParaConfig{Para::provision_probability(ch0_min_hc), 7});
  const core::Site ch0{0, 0, 0};
  const auto uniform_run = harness_.run_double_sided(ch0, 1200, 262'144, &uniform);
  const auto aware_run = harness_.run_double_sided(ch0, 1230, 262'144, &aware);
  EXPECT_EQ(uniform_run.victim_flips, 0u);
  EXPECT_EQ(aware_run.victim_flips, 0u);
  EXPECT_LT(aware_run.overhead(), uniform_run.overhead());
}

}  // namespace
}  // namespace rh::defense
