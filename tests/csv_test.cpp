#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace rh::common {
namespace {

class CsvTest : public ::testing::Test {
protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string read_back() const {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  std::string path_ = ::testing::TempDir() + "rh_csv_test.csv";
};

TEST_F(CsvTest, WritesRowsCommaSeparated) {
  {
    CsvWriter writer(path_);
    writer.write_row({"a", "b", "c"});
    writer.write_row({"1", "2", "3"});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  EXPECT_EQ(read_back(), "a,b,c\n1,2,3\n");
}

TEST_F(CsvTest, QuotesCellsWithCommasAndQuotes) {
  {
    CsvWriter writer(path_);
    writer.write_row({"plain", "with,comma", "with\"quote"});
  }
  EXPECT_EQ(read_back(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST_F(CsvTest, QuotesEmbeddedNewlines) {
  {
    CsvWriter writer(path_);
    writer.write_row({"line1\nline2"});
  }
  EXPECT_EQ(read_back(), "\"line1\nline2\"\n");
}

TEST_F(CsvTest, EmptyRowProducesEmptyLine) {
  {
    CsvWriter writer(path_);
    writer.write_row({});
    writer.write_row({"x"});
  }
  EXPECT_EQ(read_back(), "\nx\n");
}

TEST(CsvWriterErrors, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/out.csv"), ConfigError);
}

}  // namespace
}  // namespace rh::common
