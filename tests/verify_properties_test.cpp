// The differential property suite, expressed through verify::Property so
// every invariant reports a seeded, reproducible counterexample:
//   - oracle-vs-checker verdict agreement over fuzzed streams,
//   - serial-vs-sharded campaign byte-identity,
//   - fault-storm-vs-baseline campaign identity,
//   - scramble and row-map round-trips,
//   - on-die ECC read-path invariants.
#include "verify/property.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/record_io.hpp"
#include "core/row_map.hpp"
#include "core/spatial.hpp"
#include "hbm/device.hpp"
#include "hbm/ecc.hpp"
#include "hbm/scramble.hpp"
#include "verify/differential.hpp"
#include "verify/generator.hpp"

namespace rh::verify {
namespace {

void expect_passes(const Property& property, std::uint64_t seed, std::size_t cases) {
  const PropertyOutcome outcome = property.run(seed, cases);
  EXPECT_TRUE(outcome.passed) << outcome.name << " case " << outcome.failing_case << ": "
                              << outcome.counterexample;
}

/// Serializes campaign records to the exact bytes record_io would persist,
/// so "identical" means bit-identical doubles, not approximately-equal.
std::string record_bytes(const std::vector<core::RowRecord>& records) {
  std::string out;
  for (const auto& record : records) campaign::append_row_record_json(out, record);
  return out;
}

/// A two-shard-per-bank sweep small enough to run several times per case.
campaign::SweepSpec tiny_sweep() {
  core::SurveyConfig survey;
  survey.channels = {0};
  survey.row_stride = 1024;
  survey.wcdp_by_ber = true;
  campaign::SweepSpec spec =
      campaign::survey_sweep(hbm::DeviceConfig{}, survey, /*max_rows_per_shard=*/2);
  spec.settle_thermal = false;
  return spec;
}

std::vector<core::RowRecord> run_campaign(const campaign::SweepSpec& spec, unsigned jobs,
                                          double fault_rate, std::uint64_t fault_seed) {
  campaign::CampaignConfig config;
  config.jobs = jobs;
  config.progress = false;
  config.retries = 3;
  if (fault_rate > 0.0) {
    config.fault_plan.seed = fault_seed;
    config.fault_plan.set_transport_rates(fault_rate);
  }
  campaign::Campaign campaign(config);
  return campaign.run(spec).flat();
}

TEST(VerifyProperties, OracleAgreesWithCheckerOnFuzzedStreams) {
  expect_passes(Property("oracle/checker verdict agreement",
                         [](common::Xoshiro256& rng) -> std::optional<std::string> {
                           GenConfig cfg;
                           cfg.max_cmds = 32;
                           CommandStream stream = generate_valid(rng, cfg);
                           if (rng.below(4) != 0) (void)mutate_stream(rng, stream, cfg);
                           const auto d = compare_stream(stream, cfg.timings, cfg.banks);
                           if (!d.has_value()) return std::nullopt;
                           return "index " + std::to_string(d->index) + ": oracle=" +
                                  to_string(d->oracle) + " checker=" + to_string(d->checker) +
                                  "\n" + format_stream(stream);
                         }),
                /*seed=*/11, /*cases=*/400);
}

TEST(VerifyProperties, SerialAndShardedCampaignsAreByteIdentical) {
  const campaign::SweepSpec spec = tiny_sweep();
  expect_passes(Property("serial == sharded campaign",
                         [&spec](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const unsigned jobs = 2 + static_cast<unsigned>(rng.below(3));
                           const std::string serial = record_bytes(run_campaign(spec, 1, 0.0, 0));
                           if (serial.empty()) return "sweep produced no records";
                           const std::string sharded =
                               record_bytes(run_campaign(spec, jobs, 0.0, 0));
                           if (serial == sharded) return std::nullopt;
                           return "jobs=" + std::to_string(jobs) + ": " +
                                  std::to_string(serial.size()) + " vs " +
                                  std::to_string(sharded.size()) + " record bytes differ";
                         }),
                /*seed=*/5, /*cases=*/2);
}

TEST(VerifyProperties, FaultStormCampaignMatchesBaseline) {
  const campaign::SweepSpec spec = tiny_sweep();
  const std::string baseline = record_bytes(run_campaign(spec, 2, 0.0, 0));
  ASSERT_FALSE(baseline.empty());
  expect_passes(Property("fault storm == baseline",
                         [&spec, &baseline](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const std::uint64_t fault_seed = rng();
                           const std::string stormed =
                               record_bytes(run_campaign(spec, 2, 0.05, fault_seed));
                           if (stormed == baseline) return std::nullopt;
                           return "fault seed " + std::to_string(fault_seed) +
                                  " changed the results";
                         }),
                /*seed=*/23, /*cases=*/2);
}

/// Runs `spec` with a metrics stream and returns the canonical cycles
/// series: the {"sample":"cycles"} lines sorted by their (shard, attempt,
/// seq) content — the rh-metrics-stream/v1 canonicalization rule. Workers
/// interleave lines arbitrarily; the sorted bytes must not depend on --jobs.
std::string canonical_cycles_series(const campaign::SweepSpec& spec, unsigned jobs) {
  const std::string path =
      "verify_properties_stream_" + std::to_string(jobs) + ".jsonl";
  campaign::CampaignConfig config;
  config.jobs = jobs;
  config.progress = false;
  config.metrics_stream_path = path;
  config.stream_cycle_cadence = 1 << 22;
  campaign::Campaign campaign(config);
  (void)campaign.run(spec);
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("{\"sample\":\"cycles\"", 0) == 0) lines.push_back(line);
    }
  }
  std::remove(path.c_str());
  std::sort(lines.begin(), lines.end());
  std::string joined;
  for (const auto& line : lines) {
    joined += line;
    joined += '\n';
  }
  return joined;
}

TEST(VerifyProperties, MetricsStreamCyclesSeriesIsJobsInvariant) {
  const campaign::SweepSpec spec = tiny_sweep();
  const std::string serial = canonical_cycles_series(spec, 1);
  ASSERT_FALSE(serial.empty()) << "every attempt must close with a cycles sample";
  expect_passes(Property("cycles series is --jobs invariant",
                         [&spec, &serial](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const unsigned jobs = 2 + static_cast<unsigned>(rng.below(3));
                           const std::string sharded = canonical_cycles_series(spec, jobs);
                           if (sharded == serial) return std::nullopt;
                           return "jobs=" + std::to_string(jobs) + ": " +
                                  std::to_string(serial.size()) + " vs " +
                                  std::to_string(sharded.size()) +
                                  " canonical series bytes differ";
                         }),
                /*seed=*/17, /*cases=*/2);
}

TEST(VerifyProperties, ScramblersRoundTripAndAreInvolutions) {
  expect_passes(Property("scramble round-trip",
                         [](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const std::uint32_t rows = 4u * (1u + static_cast<std::uint32_t>(
                                                                     rng.below(256)));
                           for (const auto kind :
                                {hbm::ScrambleKind::kIdentity, hbm::ScrambleKind::kPairSwap,
                                 hbm::ScrambleKind::kXorFold}) {
                             const hbm::RowScrambler s(kind, rows);
                             const auto logical = static_cast<std::uint32_t>(rng.below(rows));
                             const std::uint32_t physical = s.logical_to_physical(logical);
                             if (physical >= rows || s.physical_to_logical(physical) != logical) {
                               return std::string(to_string(kind)) + ": row " +
                                      std::to_string(logical) + " -> " +
                                      std::to_string(physical) + " does not round-trip";
                             }
                           }
                           return std::nullopt;
                         }),
                /*seed=*/31, /*cases=*/500);
}

TEST(VerifyProperties, RowMapFromDeviceRoundTrips) {
  expect_passes(
      Property("row-map round-trip",
               [](common::Xoshiro256& rng) -> std::optional<std::string> {
                 hbm::DeviceConfig config;
                 config.scramble = rng.below(2) == 0 ? hbm::ScrambleKind::kPairSwap
                                                     : hbm::ScrambleKind::kXorFold;
                 const hbm::Device device(config);
                 const core::RowMap map = core::RowMap::from_device(device);
                 const auto logical = static_cast<std::uint32_t>(rng.below(map.rows()));
                 const std::uint32_t physical = map.logical_to_physical(logical);
                 if (map.physical_to_logical(physical) != logical) {
                   return "logical " + std::to_string(logical) + " -> physical " +
                          std::to_string(physical) + " -> logical " +
                          std::to_string(map.physical_to_logical(physical));
                 }
                 const hbm::RowScrambler reference(config.scramble, map.rows());
                 if (physical != reference.logical_to_physical(logical)) {
                   return "map disagrees with the decoder at logical " + std::to_string(logical);
                 }
                 return std::nullopt;
               }),
      /*seed=*/47, /*cases=*/200);
}

TEST(VerifyProperties, EccCorrectsExactlyTheSingleErrorWords) {
  expect_passes(
      Property("on-die ECC read-path invariants",
               [](common::Xoshiro256& rng) -> std::optional<std::string> {
                 constexpr std::size_t kWords = 8;
                 std::array<std::uint8_t, kWords * 8> written{};
                 for (auto& b : written) b = static_cast<std::uint8_t>(rng.below(256));
                 auto raw = written;
                 // Plant 0..3 bit errors per word; remember each word's count.
                 std::array<std::size_t, kWords> errors{};
                 for (std::size_t w = 0; w < kWords; ++w) {
                   errors[w] = rng.below(4);
                   for (std::size_t e = 0; e < errors[w]; ++e) {
                     // Error e lands in its own 16-bit lane of the 64-bit
                     // word: distinct positions, so flips never cancel.
                     const std::size_t bit = 16 * e + rng.below(16);
                     raw[w * 8 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
                   }
                 }
                 auto out = raw;
                 const std::size_t corrected = hbm::ecc_correct_read(out, written);
                 std::size_t expected_corrected = 0;
                 for (std::size_t w = 0; w < kWords; ++w) {
                   const std::span<const std::uint8_t> out_w(out.data() + w * 8, 8);
                   const std::span<const std::uint8_t> raw_w(raw.data() + w * 8, 8);
                   const std::span<const std::uint8_t> wrote_w(written.data() + w * 8, 8);
                   if (errors[w] == 1) {
                     ++expected_corrected;
                     if (hbm::popcount_diff(out_w, wrote_w) != 0) {
                       return "word " + std::to_string(w) + ": single error not corrected";
                     }
                   } else if (hbm::popcount_diff(out_w, raw_w) != 0) {
                     return "word " + std::to_string(w) + ": " + std::to_string(errors[w]) +
                            "-error word was altered";
                   }
                 }
                 if (corrected != expected_corrected) {
                   return "corrected " + std::to_string(corrected) + " words, expected " +
                          std::to_string(expected_corrected);
                 }
                 return std::nullopt;
               }),
      /*seed=*/59, /*cases=*/500);
}

TEST(VerifyProperties, FrameworkReportsTheFailingCaseAndStops) {
  std::size_t bodies_run = 0;
  const Property property("fails on case 3", [&bodies_run](common::Xoshiro256&) {
    ++bodies_run;
    return bodies_run == 4 ? std::optional<std::string>("boom") : std::nullopt;
  });
  const PropertyOutcome outcome = property.run(1, 10);
  EXPECT_FALSE(outcome.passed);
  EXPECT_EQ(outcome.failing_case, 3u);
  EXPECT_EQ(outcome.counterexample, "boom");
  EXPECT_EQ(bodies_run, 4u);  // stopped at the first counterexample

  bodies_run = 0;
  std::ostringstream log;
  EXPECT_FALSE(check_properties({property}, 1, 10, log));
  EXPECT_NE(log.str().find("FAIL fails on case 3 case 3: boom"), std::string::npos);
}

TEST(VerifyProperties, CasesAreIndependentlySeeded) {
  // Case i's RNG derives from hash_coords(seed, i): re-running a failing
  // case index in isolation must reproduce the same stream.
  std::vector<std::uint64_t> first;
  const Property collect("collect", [&first](common::Xoshiro256& rng) {
    first.push_back(rng());
    return std::optional<std::string>{};
  });
  (void)collect.run(9, 5);
  const auto all = first;
  first.clear();
  (void)collect.run(9, 5);
  EXPECT_EQ(first, all);
  // Distinct cases see distinct streams.
  EXPECT_NE(all[0], all[1]);
}

}  // namespace
}  // namespace rh::verify
