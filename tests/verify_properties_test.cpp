// The differential property suite, expressed through verify::Property so
// every invariant reports a seeded, reproducible counterexample:
//   - oracle-vs-checker verdict agreement over fuzzed streams,
//   - serial-vs-sharded campaign byte-identity,
//   - fault-storm-vs-baseline campaign identity,
//   - fast-engine-vs-interp campaign byte-identity (serial, sharded, and
//     under a transport fault storm) plus hammer-loop boundary agreement
//     and planted fast-path bug sensitivity,
//   - scramble and row-map round-trips,
//   - on-die ECC read-path invariants.
#include "verify/property.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "bender/host.hpp"
#include "bender/program.hpp"
#include "campaign/campaign.hpp"
#include "campaign/record_io.hpp"
#include "common/engine.hpp"
#include "core/row_map.hpp"
#include "core/spatial.hpp"
#include "hbm/device.hpp"
#include "hbm/ecc.hpp"
#include "hbm/scramble.hpp"
#include "verify/differential.hpp"
#include "verify/generator.hpp"

namespace rh::verify {
namespace {

void expect_passes(const Property& property, std::uint64_t seed, std::size_t cases) {
  const PropertyOutcome outcome = property.run(seed, cases);
  EXPECT_TRUE(outcome.passed) << outcome.name << " case " << outcome.failing_case << ": "
                              << outcome.counterexample;
}

/// Serializes campaign records to the exact bytes record_io would persist,
/// so "identical" means bit-identical doubles, not approximately-equal.
std::string record_bytes(const std::vector<core::RowRecord>& records) {
  std::string out;
  for (const auto& record : records) campaign::append_row_record_json(out, record);
  return out;
}

/// A two-shard-per-bank sweep small enough to run several times per case.
campaign::SweepSpec tiny_sweep() {
  core::SurveyConfig survey;
  survey.channels = {0};
  survey.row_stride = 1024;
  survey.wcdp_by_ber = true;
  campaign::SweepSpec spec =
      campaign::survey_sweep(hbm::DeviceConfig{}, survey, /*max_rows_per_shard=*/2);
  spec.settle_thermal = false;
  return spec;
}

std::vector<core::RowRecord> run_campaign(const campaign::SweepSpec& spec, unsigned jobs,
                                          double fault_rate, std::uint64_t fault_seed,
                                          common::EngineKind engine = common::EngineKind::kFast,
                                          common::PlantedBug bug = common::PlantedBug::kNone) {
  campaign::CampaignConfig config;
  config.jobs = jobs;
  config.progress = false;
  config.retries = 3;
  config.engine = engine;
  config.engine_bug = bug;
  if (fault_rate > 0.0) {
    config.fault_plan.seed = fault_seed;
    config.fault_plan.set_transport_rates(fault_rate);
  }
  campaign::Campaign campaign(config);
  return campaign.run(spec).flat();
}

TEST(VerifyProperties, OracleAgreesWithCheckerOnFuzzedStreams) {
  expect_passes(Property("oracle/checker verdict agreement",
                         [](common::Xoshiro256& rng) -> std::optional<std::string> {
                           GenConfig cfg;
                           cfg.max_cmds = 32;
                           CommandStream stream = generate_valid(rng, cfg);
                           if (rng.below(4) != 0) (void)mutate_stream(rng, stream, cfg);
                           const auto d = compare_stream(stream, cfg.timings, cfg.banks);
                           if (!d.has_value()) return std::nullopt;
                           return "index " + std::to_string(d->index) + ": oracle=" +
                                  to_string(d->oracle) + " checker=" + to_string(d->checker) +
                                  "\n" + format_stream(stream);
                         }),
                /*seed=*/11, /*cases=*/400);
}

TEST(VerifyProperties, SerialAndShardedCampaignsAreByteIdentical) {
  const campaign::SweepSpec spec = tiny_sweep();
  expect_passes(Property("serial == sharded campaign",
                         [&spec](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const unsigned jobs = 2 + static_cast<unsigned>(rng.below(3));
                           const std::string serial = record_bytes(run_campaign(spec, 1, 0.0, 0));
                           if (serial.empty()) return "sweep produced no records";
                           const std::string sharded =
                               record_bytes(run_campaign(spec, jobs, 0.0, 0));
                           if (serial == sharded) return std::nullopt;
                           return "jobs=" + std::to_string(jobs) + ": " +
                                  std::to_string(serial.size()) + " vs " +
                                  std::to_string(sharded.size()) + " record bytes differ";
                         }),
                /*seed=*/5, /*cases=*/2);
}

TEST(VerifyProperties, FaultStormCampaignMatchesBaseline) {
  const campaign::SweepSpec spec = tiny_sweep();
  const std::string baseline = record_bytes(run_campaign(spec, 2, 0.0, 0));
  ASSERT_FALSE(baseline.empty());
  expect_passes(Property("fault storm == baseline",
                         [&spec, &baseline](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const std::uint64_t fault_seed = rng();
                           const std::string stormed =
                               record_bytes(run_campaign(spec, 2, 0.05, fault_seed));
                           if (stormed == baseline) return std::nullopt;
                           return "fault seed " + std::to_string(fault_seed) +
                                  " changed the results";
                         }),
                /*seed=*/23, /*cases=*/2);
}

TEST(VerifyProperties, FastAndInterpCampaignsAreByteIdentical) {
  // The two-engine equivalence contract at campaign granularity: the
  // reference interpreter's serial records are the ground truth; the fast
  // engine must reproduce them byte-for-byte serial, sharded, and under a
  // 5% transport fault storm.
  const campaign::SweepSpec spec = tiny_sweep();
  const std::string reference =
      record_bytes(run_campaign(spec, 1, 0.0, 0, common::EngineKind::kInterp));
  ASSERT_FALSE(reference.empty());
  expect_passes(
      Property("fast engine == interp engine campaign",
               [&spec, &reference](common::Xoshiro256& rng) -> std::optional<std::string> {
                 const unsigned jobs = 1 + static_cast<unsigned>(rng.below(3));
                 const double fault_rate = rng.below(2) == 0 ? 0.0 : 0.05;
                 const std::string fast = record_bytes(
                     run_campaign(spec, jobs, fault_rate, rng(), common::EngineKind::kFast));
                 if (fast == reference) return std::nullopt;
                 return "jobs=" + std::to_string(jobs) + " fault_rate=" +
                        std::to_string(fault_rate) + ": " + std::to_string(reference.size()) +
                        " vs " + std::to_string(fast.size()) + " record bytes differ";
               }),
      /*seed=*/83, /*cases=*/3);
}

/// Runs one hammer program through the chosen engine and digests every
/// cheap observable: clocks, command mix, bank statistics, the pending
/// disturbance around the aggressors, the TRR sampler, and the victim
/// readback. `use_macro` picks the batched HAMMER macro-op (the TRR/flush
/// paths) over the unrolled register loop (the fast-forward path).
std::string engine_probe_digest(common::EngineKind kind, common::PlantedBug bug,
                                std::uint32_t count, std::uint32_t row_a, std::uint32_t row_b,
                                bool use_macro, int refs = 0) {
  hbm::DeviceConfig config;
  bender::BenderHost host(config);
  host.set_engine(kind, bug);
  bender::ProgramBuilder b(config.geometry, config.timings);
  const std::uint32_t victim = (row_a + row_b) / 2;
  b.init_row(0, victim, 0);
  if (use_macro) {
    b.ldi(1, row_a).ldi(2, row_b);
    b.hammer(0, 1, 2, static_cast<std::int64_t>(count));
  } else {
    b.hammer_loop_raw(0, row_a, row_b, count);
  }
  // REFs give the proprietary TRR its firing slots (period 17), so a
  // mis-sampled aggressor turns into a victim refresh on the wrong
  // neighbourhood — the observable a sampler bug leaves behind.
  for (int i = 0; i < refs; ++i) b.sleep(1000).ref();
  if (refs > 0) b.sleep(1000);  // clear tRFC before reopening the bank
  b.read_row(0, victim);
  b.program().set_wide_register(0,
                                std::vector<std::uint8_t>(config.geometry.row_bytes(), 0x5A));
  const bender::ExecutionResult result = host.run(b.take(), 0, 0);

  const hbm::Bank& bank = host.device().bank({0, 0, 0});
  std::ostringstream os;
  os << std::hexfloat << result.end_cycle << ' ' << result.instructions_executed << ' '
     << result.metrics.acts << ' ' << result.metrics.precharges << ' ' << bank.stats().activates
     << ' ' << bank.stats().rowhammer_flips << ' ' << bank.stats().settles << '\n';
  for (std::uint32_t r = row_a - 4; r <= row_b + 4; ++r) {
    os << bank.disturbance_of_physical(r) << ' ';
  }
  const trr::ProprietaryTrr& trr =
      host.device().pseudo_channel(0, 0).proprietary_trr();
  os << "\ntrr " << trr.sample_valid();
  if (trr.sample_valid()) os << ' ' << trr.sample().bank << ' ' << trr.sample().logical_row;
  os << '\n';
  for (const std::uint8_t byte : result.readback) os << static_cast<int>(byte) << ' ';
  return os.str();
}

TEST(VerifyProperties, HammerLoopBoundariesMatchAcrossEngines) {
  // Fuzz the unrolled hammer loop's iteration count around the pivots the
  // closed-form fast-forward must not cross by one: 0, 1, and power-ish
  // thresholds +/-1. Both engines must agree on every observable.
  expect_passes(
      Property("fast == interp at hammer-loop boundaries",
               [](common::Xoshiro256& rng) -> std::optional<std::string> {
                 static constexpr std::uint32_t kPivots[] = {0, 1, 2, 17, 64, 256, 1024};
                 const std::uint32_t pivot =
                     kPivots[rng.below(std::size(kPivots))];
                 const std::uint32_t jitter = static_cast<std::uint32_t>(rng.below(3));
                 const std::uint32_t count = pivot == 0 ? jitter : pivot - 1 + jitter;
                 const std::uint32_t row_a = 100 + 2 * static_cast<std::uint32_t>(rng.below(40));
                 const std::uint32_t row_b = row_a + 2;
                 const std::string fast = engine_probe_digest(
                     common::EngineKind::kFast, common::PlantedBug::kNone, count, row_a, row_b,
                     /*use_macro=*/false);
                 const std::string interp = engine_probe_digest(
                     common::EngineKind::kInterp, common::PlantedBug::kNone, count, row_a, row_b,
                     /*use_macro=*/false);
                 if (fast == interp) return std::nullopt;
                 return "count=" + std::to_string(count) + " rows " + std::to_string(row_a) +
                        "/" + std::to_string(row_b) + ": engines diverge\nfast:\n" + fast +
                        "\ninterp:\n" + interp;
               }),
      /*seed=*/71, /*cases=*/24);
}

TEST(VerifyProperties, PlantedEngineBugsDivergeFromTheReference) {
  // Sensitivity: each planted fast-path bug must visibly diverge from the
  // reference interpreter on a randomized hammer program — a rig that
  // cannot convict a planted off-by-one could not convict a real one.
  // Rows 200/202 map to physically adjacent rows under the default
  // pair-swap decoder, so the macro-op's final-ACT flush has real pending
  // state to clear (what kStaleDisturbanceFlush breaks).
  expect_passes(
      Property("planted fast-path bugs are caught",
               [](common::Xoshiro256& rng) -> std::optional<std::string> {
                 static constexpr common::PlantedBug kBugs[] = {
                     common::PlantedBug::kOffByOneFastForward,
                     common::PlantedBug::kSkipTrrSample,
                     common::PlantedBug::kStaleDisturbanceFlush,
                 };
                 const common::PlantedBug bug = kBugs[rng.below(std::size(kBugs))];
                 const bool use_macro = bug != common::PlantedBug::kOffByOneFastForward;
                 // The sampler bug only manifests once a TRR slot fires
                 // (one victim refresh per 17 REFs).
                 const int refs = bug == common::PlantedBug::kSkipTrrSample ? 20 : 0;
                 const std::uint32_t count = 257 + static_cast<std::uint32_t>(rng.below(512));
                 const std::string buggy =
                     engine_probe_digest(common::EngineKind::kFast, bug, count, 200, 202,
                                         use_macro, refs);
                 const std::string reference =
                     engine_probe_digest(common::EngineKind::kInterp, common::PlantedBug::kNone,
                                         count, 200, 202, use_macro, refs);
                 if (buggy != reference) return std::nullopt;
                 return std::string(to_string(bug)) + " count=" + std::to_string(count) +
                        ": the rig saw no divergence";
               }),
      /*seed=*/97, /*cases=*/9);
}

/// Runs `spec` with a metrics stream and returns the canonical cycles
/// series: the {"sample":"cycles"} lines sorted by their (shard, attempt,
/// seq) content — the rh-metrics-stream/v1 canonicalization rule. Workers
/// interleave lines arbitrarily; the sorted bytes must not depend on --jobs.
std::string canonical_cycles_series(const campaign::SweepSpec& spec, unsigned jobs) {
  const std::string path =
      "verify_properties_stream_" + std::to_string(jobs) + ".jsonl";
  campaign::CampaignConfig config;
  config.jobs = jobs;
  config.progress = false;
  config.metrics_stream_path = path;
  config.stream_cycle_cadence = 1 << 22;
  campaign::Campaign campaign(config);
  (void)campaign.run(spec);
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("{\"sample\":\"cycles\"", 0) == 0) lines.push_back(line);
    }
  }
  std::remove(path.c_str());
  std::sort(lines.begin(), lines.end());
  std::string joined;
  for (const auto& line : lines) {
    joined += line;
    joined += '\n';
  }
  return joined;
}

TEST(VerifyProperties, MetricsStreamCyclesSeriesIsJobsInvariant) {
  const campaign::SweepSpec spec = tiny_sweep();
  const std::string serial = canonical_cycles_series(spec, 1);
  ASSERT_FALSE(serial.empty()) << "every attempt must close with a cycles sample";
  expect_passes(Property("cycles series is --jobs invariant",
                         [&spec, &serial](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const unsigned jobs = 2 + static_cast<unsigned>(rng.below(3));
                           const std::string sharded = canonical_cycles_series(spec, jobs);
                           if (sharded == serial) return std::nullopt;
                           return "jobs=" + std::to_string(jobs) + ": " +
                                  std::to_string(serial.size()) + " vs " +
                                  std::to_string(sharded.size()) +
                                  " canonical series bytes differ";
                         }),
                /*seed=*/17, /*cases=*/2);
}

TEST(VerifyProperties, ScramblersRoundTripAndAreInvolutions) {
  expect_passes(Property("scramble round-trip",
                         [](common::Xoshiro256& rng) -> std::optional<std::string> {
                           const std::uint32_t rows = 4u * (1u + static_cast<std::uint32_t>(
                                                                     rng.below(256)));
                           for (const auto kind :
                                {hbm::ScrambleKind::kIdentity, hbm::ScrambleKind::kPairSwap,
                                 hbm::ScrambleKind::kXorFold}) {
                             const hbm::RowScrambler s(kind, rows);
                             const auto logical = static_cast<std::uint32_t>(rng.below(rows));
                             const std::uint32_t physical = s.logical_to_physical(logical);
                             if (physical >= rows || s.physical_to_logical(physical) != logical) {
                               return std::string(to_string(kind)) + ": row " +
                                      std::to_string(logical) + " -> " +
                                      std::to_string(physical) + " does not round-trip";
                             }
                           }
                           return std::nullopt;
                         }),
                /*seed=*/31, /*cases=*/500);
}

TEST(VerifyProperties, RowMapFromDeviceRoundTrips) {
  expect_passes(
      Property("row-map round-trip",
               [](common::Xoshiro256& rng) -> std::optional<std::string> {
                 hbm::DeviceConfig config;
                 config.scramble = rng.below(2) == 0 ? hbm::ScrambleKind::kPairSwap
                                                     : hbm::ScrambleKind::kXorFold;
                 const hbm::Device device(config);
                 const core::RowMap map = core::RowMap::from_device(device);
                 const auto logical = static_cast<std::uint32_t>(rng.below(map.rows()));
                 const std::uint32_t physical = map.logical_to_physical(logical);
                 if (map.physical_to_logical(physical) != logical) {
                   return "logical " + std::to_string(logical) + " -> physical " +
                          std::to_string(physical) + " -> logical " +
                          std::to_string(map.physical_to_logical(physical));
                 }
                 const hbm::RowScrambler reference(config.scramble, map.rows());
                 if (physical != reference.logical_to_physical(logical)) {
                   return "map disagrees with the decoder at logical " + std::to_string(logical);
                 }
                 return std::nullopt;
               }),
      /*seed=*/47, /*cases=*/200);
}

TEST(VerifyProperties, EccCorrectsExactlyTheSingleErrorWords) {
  expect_passes(
      Property("on-die ECC read-path invariants",
               [](common::Xoshiro256& rng) -> std::optional<std::string> {
                 constexpr std::size_t kWords = 8;
                 std::array<std::uint8_t, kWords * 8> written{};
                 for (auto& b : written) b = static_cast<std::uint8_t>(rng.below(256));
                 auto raw = written;
                 // Plant 0..3 bit errors per word; remember each word's count.
                 std::array<std::size_t, kWords> errors{};
                 for (std::size_t w = 0; w < kWords; ++w) {
                   errors[w] = rng.below(4);
                   for (std::size_t e = 0; e < errors[w]; ++e) {
                     // Error e lands in its own 16-bit lane of the 64-bit
                     // word: distinct positions, so flips never cancel.
                     const std::size_t bit = 16 * e + rng.below(16);
                     raw[w * 8 + bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
                   }
                 }
                 auto out = raw;
                 const std::size_t corrected = hbm::ecc_correct_read(out, written);
                 std::size_t expected_corrected = 0;
                 for (std::size_t w = 0; w < kWords; ++w) {
                   const std::span<const std::uint8_t> out_w(out.data() + w * 8, 8);
                   const std::span<const std::uint8_t> raw_w(raw.data() + w * 8, 8);
                   const std::span<const std::uint8_t> wrote_w(written.data() + w * 8, 8);
                   if (errors[w] == 1) {
                     ++expected_corrected;
                     if (hbm::popcount_diff(out_w, wrote_w) != 0) {
                       return "word " + std::to_string(w) + ": single error not corrected";
                     }
                   } else if (hbm::popcount_diff(out_w, raw_w) != 0) {
                     return "word " + std::to_string(w) + ": " + std::to_string(errors[w]) +
                            "-error word was altered";
                   }
                 }
                 if (corrected != expected_corrected) {
                   return "corrected " + std::to_string(corrected) + " words, expected " +
                          std::to_string(expected_corrected);
                 }
                 return std::nullopt;
               }),
      /*seed=*/59, /*cases=*/500);
}

TEST(VerifyProperties, FrameworkReportsTheFailingCaseAndStops) {
  std::size_t bodies_run = 0;
  const Property property("fails on case 3", [&bodies_run](common::Xoshiro256&) {
    ++bodies_run;
    return bodies_run == 4 ? std::optional<std::string>("boom") : std::nullopt;
  });
  const PropertyOutcome outcome = property.run(1, 10);
  EXPECT_FALSE(outcome.passed);
  EXPECT_EQ(outcome.failing_case, 3u);
  EXPECT_EQ(outcome.counterexample, "boom");
  EXPECT_EQ(bodies_run, 4u);  // stopped at the first counterexample

  bodies_run = 0;
  std::ostringstream log;
  EXPECT_FALSE(check_properties({property}, 1, 10, log));
  EXPECT_NE(log.str().find("FAIL fails on case 3 case 3: boom"), std::string::npos);
}

TEST(VerifyProperties, CasesAreIndependentlySeeded) {
  // Case i's RNG derives from hash_coords(seed, i): re-running a failing
  // case index in isolation must reproduce the same stream.
  std::vector<std::uint64_t> first;
  const Property collect("collect", [&first](common::Xoshiro256& rng) {
    first.push_back(rng());
    return std::optional<std::string>{};
  });
  (void)collect.run(9, 5);
  const auto all = first;
  first.clear();
  (void)collect.run(9, 5);
  EXPECT_EQ(first, all);
  // Distinct cases see distinct streams.
  EXPECT_NE(all[0], all[1]);
}

}  // namespace
}  // namespace rh::verify
