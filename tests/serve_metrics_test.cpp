// The service observability plane end to end: /metricsz scrape stability,
// the serve.* instrumentation catalogue, the JSONL access log (including
// the malformed-framing 400 path over a real socket), steal accounting
// agreement between /statz and /metricsz, per-tenant accounting on both
// surfaces, and the flight recorder's ring/dump semantics.
#include "serve/observe.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/record_io.hpp"
#include "resilience/storage.hpp"
#include "serve/config.hpp"
#include "serve/server.hpp"

namespace rh::serve {
namespace {

class TempDir {
public:
  explicit TempDir(std::string path) : path_(std::move(path)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

/// serve_server_test's quick sweep: 2 channels x 512-stride BER-only survey
/// in 2-row shards -> 18 fast shards.
CampaignConfig quick_config() {
  CampaignConfig config;
  config.label = "serve-metrics-test";
  config.channels = {0, 7};
  config.row_stride = 512;
  config.wcdp_by_ber = true;
  config.settle_thermal = false;
  config.max_rows_per_shard = 2;
  return config;
}

HttpRequest request(const std::string& method, const std::string& target,
                    const std::string& body = "", const std::string& tenant = "") {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.body = body;
  if (!tenant.empty()) req.headers["x-tenant"] = tenant;
  return req;
}

campaign::JsonValue parse(const HttpResponse& resp) {
  return campaign::parse_json(resp.body, "response body");
}

/// Polls GET /jobs/<id> through the *uninstrumented* handle() so waiting
/// does not move the serve.http_* metrics under test.
std::string wait_terminal(Server& server, std::uint64_t id) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    const HttpResponse resp = server.handle(request("GET", "/jobs/" + std::to_string(id)));
    EXPECT_EQ(resp.status, 200);
    const std::string state = parse(resp).at("state").text;
    if (state != "queued" && state != "running") return state;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " still " << state << " after 2 minutes";
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Waits for `kind` to appear in the flight recorder. A job's terminal
/// state is visible over HTTP a beat before the rig thread's finalize
/// callback records the event, so event assertions poll briefly.
bool wait_for_event(Server& server, ServiceEventKind kind) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    for (const ServiceEvent& e : server.flightrec().events()) {
      if (e.kind == kind) return true;
    }
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// The value of an unlabeled sample line `<name> <value>` in an exposition
/// document. Fails the test when the sample is absent.
double metric_value(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  auto pos = text.rfind(needle);
  if (pos == std::string::npos && text.rfind(name + " ", 0) == 0) {
    pos = 0;
  } else if (pos != std::string::npos) {
    pos += 1;  // skip the leading newline
  }
  if (pos == std::string::npos) {
    ADD_FAILURE() << "sample " << name << " not found in exposition";
    return -1.0;
  }
  const auto value_at = pos + name.size() + 1;
  return std::stod(text.substr(value_at));
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Unframes a CRC-framed access-log/flightrec line, asserting integrity.
std::string unframe(const std::string& line) {
  std::string_view payload;
  EXPECT_EQ(resilience::check_frame(line, payload), resilience::FrameCheck::kFramed) << line;
  return std::string(payload);
}

TEST(ServeMetrics, FixedRequestSequenceYieldsExactCountsAndStableScrapes) {
  const TempDir dir("serve_metrics_test_seq");
  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 2;
  Server server(options);
  server.start();

  // The fixed job-API sequence: 201, 200, 404, then (after the job lands)
  // a 200 report fetch — 4 instrumented requests, 3 of them 2xx.
  const HttpResponse created = server.handle_observed(
      request("POST", "/jobs", to_canonical_json(quick_config()), "alice"));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::uint64_t id = parse(created).at("id").as_u64();
  EXPECT_EQ(server.handle_observed(request("GET", "/jobs")).status, 200);
  EXPECT_EQ(server.handle_observed(request("GET", "/jobs/999999")).status, 404);
  ASSERT_EQ(wait_terminal(server, id), "done");
  // Tenant shard accounting folds in on the rig thread's finalize callback.
  ASSERT_TRUE(wait_for_event(server, ServiceEventKind::kFinalize));
  EXPECT_EQ(
      server.handle_observed(request("GET", "/jobs/" + std::to_string(id) + "/report?det=1"))
          .status,
      200);

  // Consecutive scrapes are byte-identical: observability endpoints never
  // self-instrument, so scraping cannot move the metrics being scraped.
  const HttpResponse scrape1 = server.handle_observed(request("GET", "/metricsz"));
  const HttpResponse scrape2 = server.handle_observed(request("GET", "/metricsz"));
  ASSERT_EQ(scrape1.status, 200);
  EXPECT_EQ(scrape1.content_type, "text/plain; version=0.0.4");
  EXPECT_EQ(scrape1.body, scrape2.body);
  EXPECT_EQ(scrape1.body, server.metricsz_text());

  // Exact catalogue counts for the fixed sequence and the 18-shard sweep.
  const std::string& text = scrape1.body;
  EXPECT_EQ(metric_value(text, "serve_http_requests"), 4.0);
  EXPECT_EQ(metric_value(text, "serve_http_2xx"), 3.0);
  EXPECT_EQ(metric_value(text, "serve_http_4xx"), 1.0);
  EXPECT_EQ(metric_value(text, "serve_http_5xx"), 0.0);
  EXPECT_EQ(metric_value(text, "serve_http_request_us_count"), 4.0);
  EXPECT_EQ(metric_value(text, "serve_queue_wait_ms_count"), 18.0);
  EXPECT_EQ(metric_value(text, "serve_shard_exec_ms_count"), 18.0);
  EXPECT_EQ(metric_value(text, "serve_cache_lookup_us_count"), 18.0);
  EXPECT_EQ(metric_value(text, "serve_cache_hit_us_count"), 0.0);
  EXPECT_EQ(metric_value(text, "campaign_shards_run"), 18.0);
  EXPECT_EQ(metric_value(text, "serve_jobs_done"), 1.0);
  EXPECT_EQ(metric_value(text, "serve_jobs_submitted"), 1.0);
  EXPECT_NE(text.find("serve_tenant_jobs_submitted{tenant=\"alice\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_tenant_shards_run{tenant=\"alice\"} 18\n"), std::string::npos);
  // Every histogram family carries the full bucket encoding.
  for (const char* family :
       {"serve_http_request_us", "serve_queue_wait_ms", "serve_steal_wait_ms",
        "serve_shard_exec_ms", "serve_cache_lookup_us", "serve_cache_hit_us"}) {
    EXPECT_NE(text.find(std::string("# TYPE ") + family + " histogram\n"), std::string::npos)
        << family;
    EXPECT_NE(text.find(std::string(family) + "_bucket{le=\"+Inf\"}"), std::string::npos)
        << family;
    EXPECT_NE(text.find(std::string(family) + "_sum "), std::string::npos) << family;
  }
  // Wall-clock series live in /statz only — a scrape must be a pure
  // function of the request/shard history.
  EXPECT_EQ(text.find("uptime"), std::string::npos);
  EXPECT_EQ(text.find("utilization"), std::string::npos);
  EXPECT_EQ(text.find("busy_ms"), std::string::npos);
}

TEST(ServeMetrics, AccessLogRecordsEveryRequestWithFramedLines) {
  const TempDir dir("serve_metrics_test_log");
  const std::string log_path = dir.str() + "/access-log.jsonl";
  {
    Server::Options options;
    options.data_dir = dir.str();
    options.rigs = 2;
    Server server(options);
    server.start();
    ASSERT_NE(server.access_log(), nullptr);
    EXPECT_EQ(server.access_log()->path(), log_path);

    const HttpResponse created = server.handle_observed(
        request("POST", "/jobs", to_canonical_json(quick_config()), "alice"));
    ASSERT_EQ(created.status, 201);
    EXPECT_EQ(server.handle_observed(request("GET", "/healthz")).status, 200);
    EXPECT_EQ(server.handle_observed(request("GET", "/jobs/999999")).status, 404);
    EXPECT_EQ(server.handle_observed(request("POST", "/jobs", "{", "mallory")).status, 400);
    EXPECT_FALSE(server.access_log()->degraded());
    wait_terminal(server, parse(created).at("id").as_u64());
  }

  const std::vector<std::string> lines = read_lines(log_path);
  ASSERT_EQ(lines.size(), 4u);
  std::vector<campaign::JsonValue> docs;
  for (const std::string& line : lines) {
    docs.push_back(campaign::parse_json(unframe(line), "access-log line"));
  }
  EXPECT_EQ(docs[0].at("method").text, "POST");
  EXPECT_EQ(docs[0].at("path").text, "/jobs");
  EXPECT_EQ(docs[0].at("status").as_u64(), 201u);
  EXPECT_EQ(docs[0].at("tenant").text, "alice");
  EXPECT_EQ(docs[0].at("outcome").text, "ok");
  EXPECT_GT(docs[0].at("bytes").as_u64(), 0u);
  EXPECT_GE(docs[0].at("wall_us").as_double(), 0.0);
  // Observability endpoints are excluded from metrics but logged anyway.
  EXPECT_EQ(docs[1].at("path").text, "/healthz");
  EXPECT_EQ(docs[1].at("outcome").text, "ok");
  EXPECT_EQ(docs[2].at("status").as_u64(), 404u);
  EXPECT_EQ(docs[2].at("outcome").text, "client-error");
  EXPECT_EQ(docs[3].at("status").as_u64(), 400u);
  EXPECT_EQ(docs[3].at("outcome").text, "client-error");
  EXPECT_EQ(docs[3].at("tenant").text, "mallory");
}

TEST(ServeMetrics, MalformedFramingIsAnswered400AndLoggedAsMalformed) {
  const TempDir dir("serve_metrics_test_garbage");
  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 1;
  Server server(options);
  server.start();
  std::thread pump([&server] { server.serve([] { return false; }); });

  // Raw TCP garbage: never parses as HTTP, so the server must answer 400
  // and log the request with "-" placeholders and the "malformed" outcome.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "this is not http\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage - 1, 0), 0);
  std::string response;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("400"), std::string::npos) << response;

  server.drain();
  pump.join();

  // DurableFile fsyncs per line, so the log is readable while the server
  // still holds it open.
  ASSERT_NE(server.access_log(), nullptr);
  const std::vector<std::string> lines = read_lines(server.access_log()->path());
  ASSERT_FALSE(lines.empty());
  const campaign::JsonValue doc =
      campaign::parse_json(unframe(lines.back()), "access-log line");
  EXPECT_EQ(doc.at("method").text, "-");
  EXPECT_EQ(doc.at("path").text, "-");
  EXPECT_EQ(doc.at("status").as_u64(), 400u);
  EXPECT_EQ(doc.at("outcome").text, "malformed");

  // Malformed framing is still a served request (it is not one of the
  // excluded observability endpoints), so it counts as an HTTP 4xx.
  const std::string text = server.metricsz_text();
  EXPECT_EQ(metric_value(text, "serve_http_requests"), 1.0);
  EXPECT_EQ(metric_value(text, "serve_http_4xx"), 1.0);
}

TEST(ServeMetrics, StealCounterAgreesWithTheStealHistogramAndRigRows) {
  const TempDir dir("serve_metrics_test_steal");
  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 2;
  options.retries = 2;
  Server server(options);
  server.start();

  // Force a steal structurally: a fat single-shard job pins one rig for
  // the whole sweep, then a small-shard job deals its shards over both
  // deques — the free rig drains its own deque and must steal the shards
  // queued behind the pinned rig. (If the fat shard itself gets stolen at
  // the start, the roles swap symmetrically; either way a steal happens.)
  CampaignConfig fat = quick_config();
  fat.channels = {0};
  fat.max_rows_per_shard = 64;  // the whole channel as one shard
  fat.label = "steal-fat";
  const HttpResponse fat_created =
      server.handle(request("POST", "/jobs", to_canonical_json(fat), "alice"));
  ASSERT_EQ(fat_created.status, 201) << fat_created.body;
  const std::uint64_t fat_id = parse(fat_created).at("id").as_u64();

  CampaignConfig small = quick_config();
  small.channels = {0};
  small.label = "steal-small";
  const HttpResponse small_created =
      server.handle(request("POST", "/jobs", to_canonical_json(small), "alice"));
  ASSERT_EQ(small_created.status, 201) << small_created.body;
  const std::uint64_t small_id = parse(small_created).at("id").as_u64();

  ASSERT_EQ(wait_terminal(server, fat_id), "done");
  ASSERT_EQ(wait_terminal(server, small_id), "done");
  const std::uint64_t stolen =
      parse(server.handle(request("GET", "/statz"))).at("serve.shards_stolen").as_u64();
  ASSERT_GT(stolen, 0u) << "no steal with one rig pinned on a fat shard";

  // The counter and the steal-wait histogram account the same events: one
  // observation per stolen task, on both surfaces.
  const std::string text = server.metricsz_text();
  EXPECT_EQ(metric_value(text, "serve_shards_stolen"), static_cast<double>(stolen));
  EXPECT_EQ(metric_value(text, "serve_steal_wait_ms_count"), static_cast<double>(stolen));
  // Stolen tasks waited in a queue too: the queue-wait histogram includes
  // every steal-wait observation.
  EXPECT_GE(metric_value(text, "serve_queue_wait_ms_count"),
            metric_value(text, "serve_steal_wait_ms_count"));

  // /statz's per-rig rows sum to the same total.
  const campaign::JsonValue statz = parse(server.handle(request("GET", "/statz")));
  std::uint64_t rig_sum = 0;
  for (const campaign::JsonValue& rig : statz.at("rigs").items) {
    rig_sum += rig.at("steals").as_u64();
  }
  EXPECT_EQ(rig_sum, stolen);
  // The flight recorder saw each steal as an event.
  std::uint64_t steal_events = 0;
  for (const ServiceEvent& e : server.flightrec().events()) {
    if (e.kind == ServiceEventKind::kSteal) ++steal_events;
  }
  EXPECT_EQ(steal_events, stolen);
}

TEST(ServeMetrics, TenantAccountingAndRetryAfterOnBothRejectPaths) {
  const TempDir dir("serve_metrics_test_tenants");
  Server::Options options;
  options.data_dir = dir.str();
  options.queue_limit = 2;
  options.tenant_quota = 1;
  // No start(): the rig pool never runs, so admitted jobs stay active and
  // the admission decisions below are deterministic.
  Server server(options);

  const std::string body = to_canonical_json(quick_config());
  ASSERT_EQ(server.handle(request("POST", "/jobs", body, "alice")).status, 201);
  const HttpResponse quota = server.handle(request("POST", "/jobs", body, "alice"));
  ASSERT_EQ(quota.status, 429);
  EXPECT_TRUE(quota.extra_headers.count("Retry-After"));
  ASSERT_EQ(server.handle(request("POST", "/jobs", body, "bob")).status, 201);
  const HttpResponse full = server.handle(request("POST", "/jobs", body, "carol"));
  ASSERT_EQ(full.status, 429);
  EXPECT_TRUE(full.extra_headers.count("Retry-After"));
  ASSERT_EQ(server.handle(request("POST", "/jobs", "{", "dave")).status, 400);

  // /statz: per-tenant rows, sorted by tenant, each carrying the quota.
  const campaign::JsonValue statz = parse(server.handle(request("GET", "/statz")));
  const auto& tenants = statz.at("tenants").items;
  ASSERT_EQ(tenants.size(), 4u);
  EXPECT_EQ(tenants[0].at("tenant").text, "alice");
  EXPECT_EQ(tenants[0].at("active").as_u64(), 1u);
  EXPECT_EQ(tenants[0].at("submitted").as_u64(), 1u);
  EXPECT_EQ(tenants[0].at("rejected").as_u64(), 1u);
  EXPECT_EQ(tenants[0].at("quota").as_u64(), 1u);
  EXPECT_EQ(tenants[1].at("tenant").text, "bob");
  EXPECT_EQ(tenants[1].at("rejected").as_u64(), 0u);
  EXPECT_EQ(tenants[2].at("tenant").text, "carol");
  EXPECT_EQ(tenants[2].at("submitted").as_u64(), 0u);
  EXPECT_EQ(tenants[2].at("rejected").as_u64(), 1u);
  EXPECT_EQ(tenants[3].at("tenant").text, "dave");
  EXPECT_EQ(tenants[3].at("rejected").as_u64(), 1u);

  // /metricsz agrees, per tenant and in aggregate.
  const std::string text = server.metricsz_text();
  EXPECT_NE(text.find("serve_tenant_quota{tenant=\"alice\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("serve_tenant_jobs_rejected{tenant=\"carol\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("serve_tenant_active{tenant=\"bob\"} 1\n"), std::string::npos);
  EXPECT_EQ(metric_value(text, "serve_jobs_rejected"), 3.0);
  EXPECT_EQ(metric_value(text, "serve_jobs_submitted"), 2.0);
}

TEST(ServeMetrics, FlightRecorderRingDropsOldestAndCountsDropped) {
  FlightRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    rec.record(ServiceEventKind::kAdmit, static_cast<std::uint64_t>(i + 1), "alice",
               "event " + std::to_string(i));
  }
  EXPECT_EQ(rec.recorded(), 6u);
  const std::vector<ServiceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first; the first two events fell off the ring.
  EXPECT_EQ(events.front().seq, 2u);
  EXPECT_EQ(events.back().seq, 5u);
  EXPECT_EQ(events.front().detail, "event 2");

  // The dump: one rh-flightrec header line, then the ring, every line JSON.
  std::istringstream dump(rec.dump_jsonl());
  std::string line;
  ASSERT_TRUE(std::getline(dump, line));
  const campaign::JsonValue header = campaign::parse_json(line, "dump header");
  EXPECT_EQ(header.at("kind").text, "rh-flightrec");
  EXPECT_EQ(header.at("version").as_u64(), 1u);
  EXPECT_EQ(header.at("capacity").as_u64(), 4u);
  EXPECT_EQ(header.at("recorded").as_u64(), 6u);
  EXPECT_EQ(header.at("dropped").as_u64(), 2u);
  std::size_t body_lines = 0;
  while (std::getline(dump, line)) {
    const campaign::JsonValue event = campaign::parse_json(line, "dump event");
    EXPECT_EQ(event.at("kind").text, "admit");
    EXPECT_EQ(event.at("tenant").text, "alice");
    ++body_lines;
  }
  EXPECT_EQ(body_lines, 4u);
}

TEST(ServeMetrics, ServerDumpsTheFlightRecorderOnDemand) {
  const TempDir dir("serve_metrics_test_dump");
  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 2;
  Server server(options);
  server.start();

  const HttpResponse created = server.handle_observed(
      request("POST", "/jobs", to_canonical_json(quick_config()), "alice"));
  ASSERT_EQ(created.status, 201);
  ASSERT_EQ(wait_terminal(server, parse(created).at("id").as_u64()), "done");
  ASSERT_TRUE(wait_for_event(server, ServiceEventKind::kFinalize));

  // The SIGQUIT path: a dump event is recorded, then the ring lands on
  // disk as a parseable JSONL document under the data dir.
  const std::string path = server.dump_flightrec("sigquit");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind(dir.str() + "/flightrec-", 0), 0u) << path;
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(campaign::parse_json(lines[0], "header").at("kind").text, "rh-flightrec");
  bool saw_admit = false;
  bool saw_finalize = false;
  bool saw_dump = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const campaign::JsonValue event = campaign::parse_json(lines[i], "event");
    const std::string& kind = event.at("kind").text;
    saw_admit = saw_admit || kind == "admit";
    saw_finalize = saw_finalize || kind == "finalize";
    if (kind == "dump") {
      saw_dump = true;
      EXPECT_EQ(event.at("detail").text, "sigquit");
    }
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_finalize);
  EXPECT_TRUE(saw_dump);

  // GET /debugz/flightrec serves the same ring over HTTP.
  const HttpResponse debugz = server.handle_observed(request("GET", "/debugz/flightrec"));
  ASSERT_EQ(debugz.status, 200);
  EXPECT_EQ(debugz.content_type, "application/x-ndjson");
  std::istringstream in(debugz.body);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(campaign::parse_json(line, "header").at("kind").text, "rh-flightrec");
}

TEST(ServeMetrics, AccessLogGoesDarkOnStorageFailureInsteadOfThrowing) {
  const TempDir dir("serve_metrics_test_dark");
  resilience::StorageFaultPlan plan;
  plan.script.push_back({resilience::StorageFaultKind::kEnospc, 1});
  resilience::StorageFaultInjector injector(std::move(plan));
  AccessLog log(dir.str() + "/access.jsonl", &injector);

  AccessRecord record;
  record.method = "GET";
  record.path = "/healthz";
  record.tenant = "alice";
  record.outcome = "ok";
  record.status = 200;
  log.record(record);  // lands
  EXPECT_FALSE(log.degraded());
  log.record(record);  // injected ENOSPC: the log goes dark, no throw
  EXPECT_TRUE(log.degraded());
  EXPECT_NE(log.storage_error().find("access log"), std::string::npos);
  log.record(record);  // dark log swallows further records
  EXPECT_TRUE(log.degraded());

  const std::vector<std::string> lines = read_lines(dir.str() + "/access.jsonl");
  ASSERT_EQ(lines.size(), 1u);
  const campaign::JsonValue doc =
      campaign::parse_json(unframe(lines[0]), "access-log line");
  EXPECT_EQ(doc.at("path").text, "/healthz");
}

}  // namespace
}  // namespace rh::serve
