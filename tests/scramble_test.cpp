#include "hbm/scramble.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"

namespace rh::hbm {
namespace {

class ScramblerProperties : public ::testing::TestWithParam<ScrambleKind> {};

TEST_P(ScramblerProperties, IsAnInvolution) {
  const RowScrambler s(GetParam(), 16384);
  for (std::uint32_t row = 0; row < 16384; row += 13) {
    EXPECT_EQ(s.physical_to_logical(s.logical_to_physical(row)), row);
  }
}

TEST_P(ScramblerProperties, IsABijectionWithinRange) {
  const RowScrambler s(GetParam(), 1024);
  std::set<std::uint32_t> seen;
  for (std::uint32_t row = 0; row < 1024; ++row) {
    const std::uint32_t p = s.logical_to_physical(row);
    EXPECT_LT(p, 1024u);
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 1024u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ScramblerProperties,
                         ::testing::Values(ScrambleKind::kIdentity, ScrambleKind::kPairSwap,
                                           ScrambleKind::kXorFold),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Scrambler, IdentityIsIdentity) {
  const RowScrambler s(ScrambleKind::kIdentity, 64);
  for (std::uint32_t row = 0; row < 64; ++row) EXPECT_EQ(s.logical_to_physical(row), row);
}

TEST(Scrambler, PairSwapSwapsMiddleOfEachGroupOfFour) {
  const RowScrambler s(ScrambleKind::kPairSwap, 64);
  EXPECT_EQ(s.logical_to_physical(0), 0u);
  EXPECT_EQ(s.logical_to_physical(1), 2u);
  EXPECT_EQ(s.logical_to_physical(2), 1u);
  EXPECT_EQ(s.logical_to_physical(3), 3u);
  EXPECT_EQ(s.logical_to_physical(5), 6u);
}

TEST(Scrambler, PairSwapBreaksLogicalAdjacency) {
  // The reason experiments must reverse engineer the map: logical r and r+1
  // are not always physical neighbours.
  const RowScrambler s(ScrambleKind::kPairSwap, 64);
  const std::uint32_t p0 = s.logical_to_physical(0);
  const std::uint32_t p1 = s.logical_to_physical(1);
  EXPECT_NE(p0 + 1, p1);
}

TEST(Scrambler, XorFoldTwistsBit0ByBit1) {
  const RowScrambler s(ScrambleKind::kXorFold, 64);
  EXPECT_EQ(s.logical_to_physical(0), 0u);
  EXPECT_EQ(s.logical_to_physical(1), 1u);
  EXPECT_EQ(s.logical_to_physical(2), 3u);
  EXPECT_EQ(s.logical_to_physical(3), 2u);
}

TEST(Scrambler, RejectsTinyOrUnalignedBanks) {
  EXPECT_THROW(RowScrambler(ScrambleKind::kPairSwap, 2), common::PreconditionError);
  EXPECT_THROW(RowScrambler(ScrambleKind::kPairSwap, 1026), common::PreconditionError);
}

TEST(Scrambler, RejectsOutOfRangeRows) {
  const RowScrambler s(ScrambleKind::kIdentity, 64);
  EXPECT_THROW((void)s.logical_to_physical(64), common::PreconditionError);
}

}  // namespace
}  // namespace rh::hbm
