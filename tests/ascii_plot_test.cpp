#include "common/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rh::common {
namespace {

BoxStats simple_box() {
  BoxStats s;
  s.min = 0.0;
  s.q1 = 1.0;
  s.median = 2.0;
  s.q3 = 3.0;
  s.max = 4.0;
  s.mean = 2.0;
  s.count = 5;
  return s;
}

TEST(Boxplot, RendersMarkersForAllQuantiles) {
  std::ostringstream os;
  render_boxplot(os, {{"row", simple_box()}}, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find('['), std::string::npos);
  EXPECT_NE(out.find(']'), std::string::npos);
  EXPECT_NE(out.find('M'), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find("row"), std::string::npos);
}

TEST(Boxplot, HandlesEmptyInputQuietly) {
  std::ostringstream os;
  render_boxplot(os, {}, 40);
  EXPECT_TRUE(os.str().empty());
}

TEST(Boxplot, AlignsMultipleLabels) {
  std::ostringstream os;
  render_boxplot(os, {{"a", simple_box()}, {"longer", simple_box()}}, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("a     "), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(LinePlot, RendersSeriesAndRange) {
  std::ostringstream os;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) ys.push_back(static_cast<double>(i % 10));
  render_line(os, ys, 50, 8, "title");
  const std::string out = os.str();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("100 points"), std::string::npos);
}

TEST(LinePlot, HandlesConstantSeries) {
  std::ostringstream os;
  render_line(os, std::vector<double>(20, 1.5), 30, 5);
  EXPECT_NE(os.str().find('#'), std::string::npos);
}

TEST(LinePlot, HandlesEmptySeries) {
  std::ostringstream os;
  render_line(os, {}, 30, 5);
  EXPECT_TRUE(os.str().empty());
}

TEST(Scatter, PlacesGlyphs) {
  std::ostringstream os;
  render_scatter(os, {{0.0, 0.0, 'a'}, {1.0, 1.0, 'b'}}, 20, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(Scatter, HandlesSinglePoint) {
  std::ostringstream os;
  render_scatter(os, {{0.5, 0.5, 'x'}}, 20, 10);
  EXPECT_NE(os.str().find('x'), std::string::npos);
}

TEST(Scatter, HandlesEmptyInput) {
  std::ostringstream os;
  render_scatter(os, {}, 20, 10);
  EXPECT_TRUE(os.str().empty());
}

}  // namespace
}  // namespace rh::common
