// Satellite: server-level durability. SIGKILL the service mid-job, restart
// it on the same data directory, and the job finishes by itself — with the
// journaled result set byte-identical to an uninterrupted run. (The
// deterministic *report* of a resumed job honestly records the resume —
// skipped shards have no timings — so the byte-identity contract lives on
// the flattened results, which are sorted by shard index and therefore
// independent of how many processes it took to produce them.)
//
// Drives the real rh_serve binary (RH_SERVE_BIN) over real sockets; also
// checks the SIGTERM drain exits 0.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/record_io.hpp"
#include "serve/config.hpp"
#include "serve/http.hpp"

namespace rh::serve {
namespace {

class TempDir {
public:
  explicit TempDir(std::string path) : path_(std::move(path)) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

CampaignConfig quick_config() {
  CampaignConfig config;
  config.label = "serve-resume";
  config.channels = {0, 7};
  config.row_stride = 512;
  config.wcdp_by_ber = true;
  config.settle_thermal = false;
  config.max_rows_per_shard = 2;  // 18 shards: room to die mid-job
  return config;
}

struct ServerProcess {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

ServerProcess spawn_server(const std::string& data_dir, const std::string& port_file) {
  std::filesystem::remove(port_file);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const std::string port_flag = "--port-file=" + port_file;
    const std::string dir_flag = "--data-dir=" + data_dir;
    ::execl(RH_SERVE_BIN, RH_SERVE_BIN, "--port=0", port_flag.c_str(), dir_flag.c_str(),
            "--rigs=1", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ServerProcess proc;
  proc.pid = pid;
  // The port file is written (then the listening line printed) once the
  // server has recovered its data dir and bound the socket.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(1);
  for (;;) {
    std::ifstream in(port_file);
    int port = 0;
    if (in >> port && port > 0) {
      proc.port = static_cast<std::uint16_t>(port);
      return proc;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "server did not write " << port_file << " within a minute";
      return proc;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

campaign::JsonValue get_json(std::uint16_t port, const std::string& target) {
  const HttpResponse resp = http_request(port, "GET", target);
  EXPECT_EQ(resp.status, 200) << target << ": " << resp.body;
  return campaign::parse_json(resp.body, target);
}

std::string wait_done(std::uint16_t port, std::uint64_t id) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    const campaign::JsonValue doc = get_json(port, "/jobs/" + std::to_string(id));
    const std::string state = doc.at("state").text;
    if (state != "queued" && state != "running") return state;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " still " << state << " after 2 minutes";
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(ServeResume, KilledServerResumesAndMatchesUninterruptedRun) {
  const TempDir data("serve_resume_test_data");
  const TempDir reference("serve_resume_test_reference");
  const std::string port_file = data.str() + ".port";
  const std::string config_json = to_canonical_json(quick_config());

  // --- phase 1: start, submit, die mid-job ----------------------------
  ServerProcess first = spawn_server(data.str(), port_file);
  ASSERT_GT(first.port, 0);
  const HttpResponse created = http_request(first.port, "POST", "/jobs", config_json);
  ASSERT_EQ(created.status, 201) << created.body;
  const std::uint64_t id =
      campaign::parse_json(created.body, "created").at("id").as_u64();
  const std::uint64_t total =
      campaign::parse_json(created.body, "created").at("shards").at("total").as_u64();
  ASSERT_GT(total, 4u);

  // Wait until some shards are journaled but the job cannot be finished,
  // then SIGKILL — no drain, no flush, mid-shard with high probability.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    const campaign::JsonValue doc = get_json(first.port, "/jobs/" + std::to_string(id));
    const std::uint64_t done = doc.at("shards").at("done").as_u64();
    if (done >= 2) {
      ASSERT_LT(done, total) << "job finished before the kill; shrink the shards";
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "no shard completed in 2 minutes";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(::kill(first.pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // --- phase 2: restart on the same data dir; the job finishes --------
  ServerProcess second = spawn_server(data.str(), port_file);
  ASSERT_GT(second.port, 0);
  EXPECT_EQ(wait_done(second.port, id), "done");

  const campaign::JsonValue resumed = get_json(second.port, "/jobs/" + std::to_string(id));
  EXPECT_GT(resumed.at("shards").at("cached").as_u64(), 0u)
      << "restart should have restored journaled shards";
  EXPECT_EQ(resumed.at("shards").at("failed").as_u64(), 0u);

  const HttpResponse report =
      http_request(second.port, "GET", "/jobs/" + std::to_string(id) + "/report");
  EXPECT_EQ(report.status, 200);
  const HttpResponse results =
      http_request(second.port, "GET", "/jobs/" + std::to_string(id) + "/results");
  ASSERT_EQ(results.status, 200);
  EXPECT_FALSE(results.body.empty());

  // --- phase 3: SIGTERM is a graceful drain, exit 0 --------------------
  ASSERT_EQ(::kill(second.pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(second.pid, &status, 0), second.pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // --- phase 4: an uninterrupted run produces the same bytes -----------
  const std::string ref_port_file = reference.str() + ".port";
  ServerProcess ref = spawn_server(reference.str(), ref_port_file);
  ASSERT_GT(ref.port, 0);
  const HttpResponse ref_created = http_request(ref.port, "POST", "/jobs", config_json);
  ASSERT_EQ(ref_created.status, 201);
  const std::uint64_t ref_id =
      campaign::parse_json(ref_created.body, "created").at("id").as_u64();
  EXPECT_EQ(wait_done(ref.port, ref_id), "done");
  const HttpResponse ref_results =
      http_request(ref.port, "GET", "/jobs/" + std::to_string(ref_id) + "/results");
  ASSERT_EQ(ref_results.status, 200);
  EXPECT_EQ(results.body, ref_results.body);

  ASSERT_EQ(::kill(ref.pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(ref.pid, &status, 0), ref.pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::filesystem::remove(port_file);
  std::filesystem::remove(ref_port_file);
}

}  // namespace
}  // namespace rh::serve
