#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rh::common {
namespace {

CliArgs make(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  const auto args = make({"--stride=16"});
  EXPECT_EQ(args.get_int("stride", 0), 16);
}

TEST(Cli, ParsesSpaceForm) {
  const auto args = make({"--stride", "32"});
  EXPECT_EQ(args.get_int("stride", 0), 32);
}

TEST(Cli, ParsesBooleanFlag) {
  const auto args = make({"--full"});
  EXPECT_TRUE(args.has("full"));
  EXPECT_FALSE(args.has("other"));
}

TEST(Cli, KeepsPositionalArguments) {
  const auto args = make({"input.csv", "--k=v", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = make({});
  EXPECT_EQ(args.get("name", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
}

TEST(Cli, RejectsNonNumericValues) {
  const auto args = make({"--n=abc"});
  EXPECT_THROW((void)args.get_int("n", 0), ConfigError);
  const auto args2 = make({"--x=1.5zzz"});
  EXPECT_THROW((void)args2.get_double("x", 0.0), ConfigError);
}

TEST(Cli, RejectsBareDashes) { EXPECT_THROW(make({"--"}), ConfigError); }

TEST(Cli, ParsesDoubles) {
  const auto args = make({"--temp=85.5"});
  EXPECT_DOUBLE_EQ(args.get_double("temp", 0.0), 85.5);
}

TEST(Cli, TracksUnqueriedFlags) {
  const auto args = make({"--used=1", "--typo=2"});
  (void)args.get_int("used", 0);
  const auto unqueried = args.unqueried_flags();
  ASSERT_EQ(unqueried.size(), 1u);
  EXPECT_EQ(unqueried[0], "typo");
}

TEST(Cli, NegativeNumbersAsValues) {
  const auto args = make({"--offset=-12"});
  EXPECT_EQ(args.get_int("offset", 0), -12);
}

TEST(Cli, ParseFailuresAreCliErrors) {
  // CliError derives from ConfigError: old catch sites keep working, new
  // ones can distinguish flag errors from config errors.
  const auto args = make({"--n=abc"});
  EXPECT_THROW((void)args.get_int("n", 0), CliError);
  EXPECT_THROW(make({"--"}), CliError);
}

TEST(Cli, PositiveIntAcceptsValidAndDefaults) {
  const auto args = make({"--jobs=8"});
  EXPECT_EQ(args.get_positive_int("jobs", 1), 8);
  // Absent flag: the default passes through unchecked.
  EXPECT_EQ(args.get_positive_int("retries", 1), 1);
}

TEST(Cli, PositiveIntRejectsZeroAndNegative) {
  EXPECT_THROW((void)make({"--jobs=0"}).get_positive_int("jobs", 1), CliError);
  EXPECT_THROW((void)make({"--jobs=-4"}).get_positive_int("jobs", 1), CliError);
  EXPECT_THROW((void)make({"--retries=-1"}).get_positive_int("retries", 1), CliError);
}

TEST(Cli, PositiveDoubleRejectsZeroNegativeAndNonFinite) {
  EXPECT_DOUBLE_EQ(make({"--rate=1.5"}).get_positive_double("rate", 1.0), 1.5);
  EXPECT_THROW((void)make({"--rate=0"}).get_positive_double("rate", 1.0), CliError);
  EXPECT_THROW((void)make({"--rate=-0.1"}).get_positive_double("rate", 1.0), CliError);
  EXPECT_THROW((void)make({"--rate=nan"}).get_positive_double("rate", 1.0), CliError);
  EXPECT_THROW((void)make({"--rate=inf"}).get_positive_double("rate", 1.0), CliError);
}

TEST(Cli, FractionEnforcesUnitInterval) {
  EXPECT_DOUBLE_EQ(make({"--fault-rate=0.05"}).get_fraction("fault-rate", 0.0), 0.05);
  EXPECT_DOUBLE_EQ(make({"--fault-rate=0"}).get_fraction("fault-rate", 0.5), 0.0);
  EXPECT_DOUBLE_EQ(make({"--fault-rate=1"}).get_fraction("fault-rate", 0.5), 1.0);
  EXPECT_THROW((void)make({"--fault-rate=1.01"}).get_fraction("fault-rate", 0.0), CliError);
  EXPECT_THROW((void)make({"--fault-rate=-0.05"}).get_fraction("fault-rate", 0.0), CliError);
  EXPECT_THROW((void)make({"--fault-rate=nan"}).get_fraction("fault-rate", 0.0), CliError);
}

}  // namespace
}  // namespace rh::common
