#include "serve/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "campaign/journal.hpp"
#include "common/error.hpp"
#include "serve/cache.hpp"

namespace rh::serve {
namespace {

class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

/// A deliberately non-default config exercising every field kind.
CampaignConfig sample_config() {
  CampaignConfig config;
  config.kind = "survey";
  config.label = "sample \"quoted\"";
  config.seed = 12345;
  config.scramble = "xor-fold";
  config.trr_enabled = false;
  config.trr_period = 19;
  config.temperature_c = 62.5;
  config.settle_thermal = false;
  config.channels = {0, 7};
  config.pseudo_channel = 1;
  config.bank = 3;
  config.region_rows = 1024;
  config.row_stride = 512;
  config.wcdp_by_ber = true;
  config.ber_hammers = 4096;
  config.max_hammers = 8192;
  config.wcdp_tolerance = 512;
  config.surround_rows = 4;
  config.enforce_retention_bound = false;
  config.aggressor_on_time = 2;
  config.hammer_counts = {1000, 2000};
  config.onset_rows = 3;
  config.onset_row_begin = 100;
  config.onset_row_stride = 7;
  config.onset_pattern = 2;
  config.max_rows_per_shard = 2;
  config.fault_rate = 0.25;
  config.fault_seed = 99;
  return config;
}

TEST(ServeConfig, CanonicalJsonIsAFixedPoint) {
  const CampaignConfig config = sample_config();
  const std::string once = to_canonical_json(config);
  const CampaignConfig reparsed = config_from_json(once, "test");
  EXPECT_EQ(to_canonical_json(reparsed), once);
  EXPECT_EQ(config_hash(reparsed), config_hash(config));
}

TEST(ServeConfig, EmptyObjectIsTheDefaultJob) {
  const CampaignConfig parsed = config_from_json("{}", "test");
  EXPECT_EQ(to_canonical_json(parsed), to_canonical_json(CampaignConfig{}));
  EXPECT_EQ(config_hash(parsed), config_hash(CampaignConfig{}));
}

TEST(ServeConfig, HashIgnoresMemberOrder) {
  // Same fields, scrambled member order, eccentric whitespace: the
  // canonical form (and therefore the hash) must not notice.
  const std::string a = R"({"seed": 777, "kind": "onset", "hammer_counts": [4096, 8192]})";
  const std::string b =
      "{\n  \"hammer_counts\":[4096,8192],\n  \"kind\":\"onset\",\n  \"seed\":777\n}";
  const CampaignConfig ca = config_from_json(a, "a");
  const CampaignConfig cb = config_from_json(b, "b");
  EXPECT_EQ(to_canonical_json(ca), to_canonical_json(cb));
  EXPECT_EQ(config_hash(ca), config_hash(cb));
}

TEST(ServeConfig, LabelAndFaultPlanDoNotChangeTheHash) {
  CampaignConfig a = sample_config();
  CampaignConfig b = sample_config();
  b.label = "different label";
  b.fault_rate = 0.0;
  b.fault_seed = 1;
  EXPECT_EQ(config_hash(a), config_hash(b));
  // ... but they do change the canonical JSON (they are real fields).
  EXPECT_NE(to_canonical_json(a), to_canonical_json(b));
}

TEST(ServeConfig, EveryScienceKnobChangesTheHash) {
  const std::uint64_t base = config_hash(sample_config());
  const auto expect_differs = [&](auto mutate, const char* what) {
    CampaignConfig c = sample_config();
    mutate(c);
    EXPECT_NE(config_hash(c), base) << what;
  };
  expect_differs([](CampaignConfig& c) { c.seed = 1; }, "seed");
  expect_differs([](CampaignConfig& c) { c.scramble = "identity"; }, "scramble");
  expect_differs([](CampaignConfig& c) { c.temperature_c = 85.0; }, "temperature");
  expect_differs([](CampaignConfig& c) { c.settle_thermal = true; }, "settle_thermal");
  expect_differs([](CampaignConfig& c) { c.channels = {0}; }, "channels");
  expect_differs([](CampaignConfig& c) { c.row_stride = 256; }, "row_stride");
  expect_differs([](CampaignConfig& c) { c.ber_hammers = 2048; }, "ber_hammers");
  expect_differs([](CampaignConfig& c) { c.max_hammers = 16384; }, "max_hammers");
  expect_differs([](CampaignConfig& c) { c.wcdp_tolerance = 64; }, "wcdp_tolerance");
  expect_differs([](CampaignConfig& c) { c.surround_rows = 2; }, "surround_rows");
  expect_differs([](CampaignConfig& c) { c.max_rows_per_shard = 1; }, "max_rows_per_shard");
}

TEST(ServeConfig, UnknownKeysAreRejected) {
  EXPECT_THROW(config_from_json(R"({"sede": 1})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json(R"({"rigs": 4})", "test"), common::ConfigError);
}

TEST(ServeConfig, DomainValidation) {
  EXPECT_THROW(config_from_json(R"({"kind": "sweep"})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json(R"({"scramble": "rot13"})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json(R"({"channels": []})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json(R"({"channels": [8]})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json(R"({"fault_rate": 1.5})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json(R"({"temperature_c": -4})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json(R"({"row_stride": 0})", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json("[1,2,3]", "test"), common::ConfigError);
  EXPECT_THROW(config_from_json("not json", "test"), common::ConfigError);
}

TEST(ServeConfig, HashMatchesTheJournalHeader) {
  // The service's one-hash-everywhere property: the hash the HTTP API
  // reports is literally the hash a checkpoint journal for the lowered
  // sweep records in its header.
  const CampaignConfig config = sample_config();
  const campaign::SweepSpec spec = to_sweep_spec(config);
  EXPECT_EQ(config_hash(config), campaign::sweep_config_hash(spec));

  const TempPath path("serve_config_test_journal.jsonl");
  const campaign::JournalHeader header{spec.device.fault.seed, config_hash(config),
                                       static_cast<std::uint64_t>(spec.shards.size())};
  { const campaign::JournalWriter writer(path.str(), header); }
  const campaign::JournalReader reader(path.str());
  EXPECT_EQ(reader.header().config_hash, config_hash(config));
  EXPECT_EQ(reader.header().seed, config.seed);
}

TEST(ServeConfig, GoldenHashIsPinned) {
  // The default config's hash is part of the service's wire contract —
  // cache keys and journal headers embed it. If this value moves, every
  // cached result and every resumable journal in the field is invalidated:
  // bump the schema tag alongside any intentional change.
  EXPECT_EQ(config_hash_hex(CampaignConfig{}), "67696404998d6a14");
}

TEST(ServeConfig, OnsetPlanMatchesAblationHammerCount) {
  CampaignConfig config;
  config.kind = "onset";
  config.channels = {2, 5};
  config.hammer_counts = {1000, 2000};
  config.onset_rows = 3;
  const campaign::SweepSpec spec = to_sweep_spec(config);
  // Count-major, channel-minor — the ablation_hammer_count plan.
  ASSERT_EQ(spec.shards.size(), 4u);
  EXPECT_EQ(spec.shards[0].hammers, 1000u);
  EXPECT_EQ(spec.shards[0].site.channel, 2u);
  EXPECT_EQ(spec.shards[1].hammers, 1000u);
  EXPECT_EQ(spec.shards[1].site.channel, 5u);
  EXPECT_EQ(spec.shards[2].hammers, 2000u);
  EXPECT_EQ(spec.shards[3].hammers, 2000u);
  for (std::size_t i = 0; i < spec.shards.size(); ++i) {
    EXPECT_EQ(spec.shards[i].index, i);
    EXPECT_EQ(spec.shards[i].mode, core::ShardMode::kSinglePattern);
    EXPECT_EQ(spec.shards[i].row_begin, config.onset_row_begin);
  }
}

TEST(ServeCache, ShardKeyIgnoresPlanPosition) {
  // The same physical work reached from two different shard plans (e.g. a
  // subset sweep and a superset sweep) must share a cache entry; only the
  // plan position (index) may differ.
  const CampaignConfig config = sample_config();
  const campaign::SweepSpec spec = to_sweep_spec(config);
  ASSERT_GE(spec.shards.size(), 2u);
  const std::string prefix = sweep_cache_prefix(spec);
  core::ShardSpec moved = spec.shards[0];
  moved.index = 17;
  EXPECT_EQ(shard_cache_key(prefix, moved), shard_cache_key(prefix, spec.shards[0]));
  EXPECT_NE(shard_cache_key(prefix, spec.shards[0]), shard_cache_key(prefix, spec.shards[1]));
}

TEST(ServeCache, PrefixCoversSweepParametersNotThePlan) {
  CampaignConfig a = sample_config();
  CampaignConfig b = sample_config();
  b.max_rows_per_shard = 1;  // different decomposition, same physics fields
  const campaign::SweepSpec sa = to_sweep_spec(a);
  const campaign::SweepSpec sb = to_sweep_spec(b);
  EXPECT_NE(campaign::sweep_config_hash(sa), campaign::sweep_config_hash(sb));
  EXPECT_EQ(sweep_cache_prefix(sa), sweep_cache_prefix(sb));
}

TEST(ServeCache, CountsHitsAndMissesAndKeepsFirstWrite) {
  ResultCache cache;
  std::vector<core::RowRecord> out;
  EXPECT_FALSE(cache.lookup(42, out));
  EXPECT_EQ(cache.misses(), 1u);

  std::vector<core::RowRecord> records(3);
  records[0].physical_row = 7;
  cache.insert(42, records);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.lookup(42, out));
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].physical_row, 7u);

  std::vector<core::RowRecord> other(1);
  cache.insert(42, other);  // first write wins
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.lookup(42, out));
  EXPECT_EQ(out.size(), 3u);
}

}  // namespace
}  // namespace rh::serve
