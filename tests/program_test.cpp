#include "bender/program.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/data_patterns.hpp"
#include "hbm/geometry.hpp"
#include "hbm/timing.hpp"

namespace rh::bender {
namespace {

class ProgramTest : public ::testing::Test {
protected:
  hbm::Geometry geometry_ = hbm::paper_geometry();
  hbm::TimingParams timings_ = hbm::paper_timings();
};

TEST_F(ProgramTest, ValidateRejectsEmptyProgram) {
  const Program p;
  EXPECT_THROW(p.validate(geometry_), common::ProgramError);
}

TEST_F(ProgramTest, ValidateRequiresEnd) {
  Program p;
  p.push({.op = Opcode::kNop});
  EXPECT_THROW(p.validate(geometry_), common::ProgramError);
  p.push({.op = Opcode::kEnd});
  p.validate(geometry_);
}

TEST_F(ProgramTest, ValidateRejectsBadBank) {
  Program p;
  p.push({.op = Opcode::kAct, .rs1 = 0, .bank = 16});
  p.push({.op = Opcode::kEnd});
  EXPECT_THROW(p.validate(geometry_), common::ProgramError);
}

TEST_F(ProgramTest, ValidateRejectsJumpOutOfRange) {
  Program p;
  p.push({.op = Opcode::kJmp, .imm = 99});
  p.push({.op = Opcode::kEnd});
  EXPECT_THROW(p.validate(geometry_), common::ProgramError);
}

TEST_F(ProgramTest, ValidateRejectsUnloadedWideRegister) {
  Program p;
  p.push({.op = Opcode::kWr, .rs1 = 0, .bank = 0, .wide = 2});
  p.push({.op = Opcode::kEnd});
  EXPECT_THROW(p.validate(geometry_), common::ProgramError);
  p.set_wide_register(2, std::vector<std::uint8_t>(geometry_.row_bytes(), 0xFF));
  p.validate(geometry_);
}

TEST_F(ProgramTest, ValidateRejectsBadModeRegister) {
  Program p;
  p.push({.op = Opcode::kMrs, .rd = 16, .imm = 0});
  p.push({.op = Opcode::kEnd});
  EXPECT_THROW(p.validate(geometry_), common::ProgramError);
}

TEST_F(ProgramTest, ValidateRejectsNegativeHammerCount) {
  Program p;
  p.push({.op = Opcode::kHammer, .imm = -1});
  p.push({.op = Opcode::kEnd});
  EXPECT_THROW(p.validate(geometry_), common::ProgramError);
}

TEST_F(ProgramTest, BuilderAppendsEndOnTake) {
  ProgramBuilder b(geometry_, timings_);
  b.nop();
  const Program p = b.take();
  EXPECT_EQ(p.instructions().back().op, Opcode::kEnd);
}

TEST_F(ProgramTest, BuilderTracksVirtualTime) {
  ProgramBuilder b(geometry_, timings_);
  b.nop();            // 1
  b.ldi(0, 5);        // 1
  b.sleep(10);        // 11
  EXPECT_EQ(b.virtual_cycles(), 13u);
}

TEST_F(ProgramTest, HammerMacroChargesUnrolledDuration) {
  ProgramBuilder b(geometry_, timings_);
  b.ldi(0, 10);
  b.ldi(1, 12);
  const hbm::Cycle before = b.virtual_cycles();
  b.hammer(0, 0, 1, 1000);
  EXPECT_EQ(b.virtual_cycles() - before, 1000ULL * 2 * b.hammer_period(0));
}

TEST_F(ProgramTest, HammerPeriodGrowsWithOnTime) {
  ProgramBuilder b(geometry_, timings_);
  // Minimal on-time: the pair period is bounded by both tRC and tRAS+tRP.
  const hbm::Cycle minimal = std::max(timings_.tRC, timings_.tRAS + timings_.tRP);
  EXPECT_EQ(b.hammer_period(0), minimal);
  EXPECT_EQ(b.hammer_period(static_cast<std::int64_t>(timings_.tRAS)), minimal);
  const auto long_on = static_cast<std::int64_t>(4 * timings_.tRAS);
  EXPECT_EQ(b.hammer_period(long_on), 4 * timings_.tRAS + timings_.tRP);
}

TEST_F(ProgramTest, InitRowEmitsOneWritePerColumn) {
  ProgramBuilder b(geometry_, timings_);
  b.program().set_wide_register(0, core::make_row_image(geometry_, 0xAB));
  b.init_row(0, 5, 0);
  const Program p = b.take();
  int writes = 0;
  int acts = 0;
  int pres = 0;
  for (const auto& ins : p.instructions()) {
    writes += ins.op == Opcode::kWr;
    acts += ins.op == Opcode::kAct;
    pres += ins.op == Opcode::kPre;
  }
  EXPECT_EQ(writes, static_cast<int>(geometry_.columns_per_row));
  EXPECT_EQ(acts, 1);
  EXPECT_EQ(pres, 1);
}

TEST_F(ProgramTest, ReadRowEmitsOneReadPerColumn) {
  ProgramBuilder b(geometry_, timings_);
  b.read_row(0, 5);
  const Program p = b.take();
  int reads = 0;
  for (const auto& ins : p.instructions()) reads += ins.op == Opcode::kRd;
  EXPECT_EQ(reads, static_cast<int>(geometry_.columns_per_row));
}

TEST_F(ProgramTest, LabelsResolveToInstructionIndices) {
  ProgramBuilder b(geometry_, timings_);
  b.ldi(0, 0);
  b.ldi(1, 3);
  const Label loop = b.here();
  EXPECT_EQ(loop.index, 2u);
  b.addi(0, 0, 1);
  b.blt(0, 1, loop);
  const Program p = b.take();
  EXPECT_EQ(p.instructions()[3].imm, 2);
}

TEST_F(ProgramTest, WideRegisterRoundTrip) {
  Program p;
  std::vector<std::uint8_t> image(geometry_.row_bytes(), 0x3C);
  p.set_wide_register(1, image);
  const auto view = p.wide_register(1);
  ASSERT_EQ(view.size(), image.size());
  EXPECT_EQ(view[0], 0x3C);
  EXPECT_TRUE(p.wide_register(0).empty());
}

}  // namespace
}  // namespace rh::bender
