#include "bender/thermal.hpp"

#include <gtest/gtest.h>

namespace rh::bender {
namespace {

int steps_to_settle(ThermalRig& rig, int max_steps = 40'000) {
  for (int i = 0; i < max_steps; ++i) {
    rig.step();
    if (rig.settled()) return i;
  }
  return -1;
}

TEST(ThermalRig, StartsAtAmbient) {
  const ThermalRig rig{ThermalConfig{}};
  EXPECT_DOUBLE_EQ(rig.temperature(), ThermalConfig{}.ambient_c);
}

TEST(ThermalRig, HeatsToThePaperSetpoint) {
  ThermalRig rig{ThermalConfig{}};
  rig.set_target(85.0);
  ASSERT_GE(steps_to_settle(rig), 0);
  EXPECT_NEAR(rig.temperature(), 85.0, 0.5);
}

TEST(ThermalRig, CoolsBackDownUsingTheFan) {
  ThermalRig rig{ThermalConfig{}};
  rig.set_target(85.0);
  ASSERT_GE(steps_to_settle(rig), 0);
  rig.set_target(45.0);
  bool fan_used = false;
  for (int i = 0; i < 40'000 && !rig.settled(); ++i) {
    rig.step();
    fan_used |= rig.fan_duty() > 0.0;
  }
  EXPECT_TRUE(rig.settled());
  EXPECT_TRUE(fan_used);
  EXPECT_NEAR(rig.temperature(), 45.0, 0.5);
}

TEST(ThermalRig, HoldsSetpointUnderSteadyState) {
  ThermalRig rig{ThermalConfig{}};
  rig.set_target(85.0);
  ASSERT_GE(steps_to_settle(rig), 0);
  // One simulated minute at the setpoint: stays within the band.
  for (int i = 0; i < 1200; ++i) {
    rig.step();
    EXPECT_NEAR(rig.temperature(), 85.0, 1.5);
  }
}

TEST(ThermalRig, DutiesStayInActuatorRange) {
  ThermalRig rig{ThermalConfig{}};
  rig.set_target(95.0);
  for (int i = 0; i < 10'000; ++i) {
    rig.step();
    EXPECT_GE(rig.heater_duty(), 0.0);
    EXPECT_LE(rig.heater_duty(), 1.0);
    EXPECT_GE(rig.fan_duty(), 0.0);
    EXPECT_LE(rig.fan_duty(), 1.0);
    // Never heats and fans at once.
    EXPECT_EQ(rig.heater_duty() > 0.0 && rig.fan_duty() > 0.0, false);
  }
}

class Setpoints : public ::testing::TestWithParam<double> {};

TEST_P(Setpoints, ConvergesAcrossTheOperatingRange) {
  ThermalRig rig{ThermalConfig{}};
  rig.set_target(GetParam());
  ASSERT_GE(steps_to_settle(rig), 0) << "target " << GetParam();
  EXPECT_NEAR(rig.temperature(), GetParam(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Range, Setpoints, ::testing::Values(30.0, 45.0, 65.0, 85.0, 95.0));

}  // namespace
}  // namespace rh::bender
