#include "hbm/subarray.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace rh::hbm {
namespace {

TEST(SubarrayLayout, PaperLayoutCoversTheBank) {
  const auto layout = SubarrayLayout::paper_layout(16384);
  EXPECT_EQ(layout.total_rows(), 16384u);
  EXPECT_EQ(layout.subarray_count(), 20u);
}

TEST(SubarrayLayout, PaperLayoutUses832And768RowSubarrays) {
  // Footnote 3: subarrays contain either 832 (SA X) or 768 (SA Y) rows.
  const auto layout = SubarrayLayout::paper_layout(16384);
  for (std::uint32_t sa = 0; sa < layout.subarray_count(); ++sa) {
    const std::uint32_t size = layout.size_of(sa);
    EXPECT_TRUE(size == 832 || size == 768) << "subarray " << sa << " has " << size;
  }
}

TEST(SubarrayLayout, LastSubarrayIs832Rows) {
  // Fig. 5 / §4: "the last 832 rows in SA Z".
  const auto layout = SubarrayLayout::paper_layout(16384);
  EXPECT_EQ(layout.size_of(layout.subarray_count() - 1), 832u);
  EXPECT_TRUE(layout.in_last_subarray(16384 - 1));
  EXPECT_TRUE(layout.in_last_subarray(16384 - 832));
  EXPECT_FALSE(layout.in_last_subarray(16384 - 833));
}

TEST(SubarrayLayout, MiddleRegionContains768RowSubarrays) {
  // The paper's middle test region (rows 6656..9728) spans the 768-row SAs.
  const auto layout = SubarrayLayout::paper_layout(16384);
  EXPECT_EQ(layout.size_of(layout.subarray_of(8000)), 768u);
}

TEST(SubarrayLayout, SubarrayOfMatchesStartTables) {
  const auto layout = SubarrayLayout::paper_layout(16384);
  for (std::uint32_t sa = 0; sa < layout.subarray_count(); ++sa) {
    const std::uint32_t start = layout.start_of(sa);
    EXPECT_EQ(layout.subarray_of(start), sa);
    EXPECT_EQ(layout.subarray_of(start + layout.size_of(sa) - 1), sa);
  }
}

TEST(SubarrayLayout, CrossesBoundaryExactlyAtStarts) {
  const auto layout = SubarrayLayout::paper_layout(16384);
  for (std::uint32_t sa = 1; sa < layout.subarray_count(); ++sa) {
    const std::uint32_t start = layout.start_of(sa);
    EXPECT_TRUE(layout.crosses_boundary(start - 1, start));
    EXPECT_FALSE(layout.crosses_boundary(start, start + 1));
  }
}

TEST(SubarrayLayout, RelativePositionSpansUnitInterval) {
  const auto layout = SubarrayLayout::paper_layout(16384);
  EXPECT_LT(layout.relative_position(0), 0.01);
  EXPECT_GT(layout.relative_position(831), 0.99);
  EXPECT_NEAR(layout.relative_position(416), 0.5, 0.01);
}

TEST(SubarrayLayout, ExplicitSizesValidated) {
  EXPECT_THROW(SubarrayLayout(std::vector<std::uint32_t>{}), common::PreconditionError);
  EXPECT_THROW(SubarrayLayout(std::vector<std::uint32_t>{10, 0, 10}), common::PreconditionError);
}

TEST(SubarrayLayout, SubarrayOfRejectsOutOfRange) {
  const auto layout = SubarrayLayout::paper_layout(16384);
  EXPECT_THROW((void)layout.subarray_of(16384), common::PreconditionError);
}

class NonCanonicalBankSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NonCanonicalBankSizes, FallbackTilingCoversEveryRow) {
  const std::uint32_t rows = GetParam();
  const auto layout = SubarrayLayout::paper_layout(rows);
  EXPECT_EQ(layout.total_rows(), rows);
  // Every row belongs to exactly one subarray and positions are in [0,1).
  for (std::uint32_t r = 0; r < rows; r += 97) {
    const double x = layout.relative_position(r);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NonCanonicalBankSizes, ::testing::Values(2048u, 4096u, 8192u));

}  // namespace
}  // namespace rh::hbm
