// End-to-end tests of the resilience plane (src/resilience) and the layers
// that consume it: CRC framing, fault-injector determinism, BenderHost
// retry/recovery, thermal robustness, and campaign-level fault storms.
#include "resilience/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bender/host.hpp"
#include "campaign/campaign.hpp"
#include "campaign/record_io.hpp"
#include "common/error.hpp"
#include "core/data_patterns.hpp"
#include "core/spatial.hpp"
#include "resilience/crc32.hpp"
#include "resilience/retry.hpp"

namespace rh::resilience {
namespace {

using bender::BenderHost;
using bender::ProgramBuilder;

// --- CRC-32 ---------------------------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckValue) {
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg), 0xCBF43926u);
}

TEST(Crc32, ChainsAcrossScatteredBuffers) {
  const std::uint8_t a[] = {'1', '2', '3', '4'};
  const std::uint8_t b[] = {'5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(b, crc32(a)), 0xCBF43926u);
}

TEST(Crc32, DetectsUpToThreeFlippedBitsInARowFrame) {
  // Hamming distance 4 up to ~11 KB: any 1..3-bit error in a ~1 KiB row
  // frame must change the CRC. Spot-check a deterministic sample of
  // 1/2/3-bit flip positions.
  std::vector<std::uint8_t> frame(1024);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint32_t reference = crc32(frame);
  const std::size_t total_bits = frame.size() * 8;
  for (std::size_t trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> mutated = frame;
    const std::size_t flips = 1 + trial % 3;
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = (trial * 2654435761u + f * 40503u) % total_bits;
      mutated[bit / 8] = static_cast<std::uint8_t>(mutated[bit / 8] ^ (1u << (bit % 8)));
    }
    if (mutated == frame) continue;  // flips cancelled (even counts only)
    EXPECT_NE(crc32(mutated), reference) << "trial " << trial;
  }
}

// --- fault injector determinism -------------------------------------------

TEST(FaultInjector, SamePlanSameSeedYieldsIdenticalStreams) {
  FaultPlan plan;
  plan.seed = 0xDECAF;
  plan.set_transport_rates(0.3);

  const auto drive = [](FaultInjector& injector) {
    // A fixed interleaving of opportunities across kinds, with recovery
    // notes, mimicking a host's call pattern.
    for (int i = 0; i < 200; ++i) {
      const auto kind = static_cast<FaultKind>(i % 5);
      if (injector.should_fire(kind)) {
        if (i % 3 == 0) {
          injector.note_aborted(kind, "budget");
        } else {
          injector.note_recovered(kind, "retry");
        }
      }
    }
  };

  FaultInjector first(plan), second(plan);
  drive(first);
  drive(second);
  EXPECT_FALSE(first.log().empty());
  EXPECT_EQ(first.log_string(), second.log_string());
  EXPECT_EQ(first.stats().injected, second.stats().injected);

  FaultPlan other = plan;
  other.seed = 0xDECAF + 1;
  FaultInjector third(other);
  drive(third);
  EXPECT_NE(first.log_string(), third.log_string());
}

TEST(FaultInjector, KindsDoNotPerturbEachOther) {
  // Counter-based hashing: interleaving draws of other kinds must not move
  // kind k's firing pattern.
  FaultPlan plan;
  plan.seed = 77;
  plan.set_rate(FaultKind::kUploadTimeout, 0.5);
  plan.set_rate(FaultKind::kReadbackCorrupt, 0.5);

  FaultInjector pure(plan);
  std::vector<bool> solo;
  for (int i = 0; i < 64; ++i) solo.push_back(pure.should_fire(FaultKind::kUploadTimeout));

  FaultInjector interleaved(plan);
  std::vector<bool> mixed;
  for (int i = 0; i < 64; ++i) {
    (void)interleaved.should_fire(FaultKind::kReadbackCorrupt);
    mixed.push_back(interleaved.should_fire(FaultKind::kUploadTimeout));
  }
  EXPECT_EQ(solo, mixed);
}

TEST(FaultInjector, ScriptedFaultsFireOnTheirExactOpportunity) {
  FaultPlan plan;
  plan.script = {{FaultKind::kExecutorStall, 2}};
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.should_fire(FaultKind::kExecutorStall));
  EXPECT_FALSE(injector.should_fire(FaultKind::kExecutorStall));
  EXPECT_TRUE(injector.should_fire(FaultKind::kExecutorStall));
  injector.note_recovered(FaultKind::kExecutorStall, "re-armed");
  EXPECT_FALSE(injector.should_fire(FaultKind::kExecutorStall));
  EXPECT_EQ(injector.log_string(), "0 executor-stall@2 recovered [re-armed]\n");
}

// --- retry policy ----------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndGrows) {
  const RetryPolicy policy;
  EXPECT_DOUBLE_EQ(backoff_ms(policy, 3, 1), backoff_ms(policy, 3, 1));
  EXPECT_NE(backoff_ms(policy, 3, 1), backoff_ms(policy, 4, 1));  // per-op jitter
  for (unsigned attempt = 1; attempt <= 12; ++attempt) {
    const double wait = backoff_ms(policy, 0, attempt);
    EXPECT_GE(wait, policy.backoff_base_ms * (1.0 - policy.jitter_frac) - 1e-12);
    EXPECT_LE(wait, policy.backoff_max_ms * (1.0 + policy.jitter_frac) + 1e-12);
  }
}

// --- host recovery ---------------------------------------------------------

class HostRecoveryTest : public ::testing::Test {
protected:
  static constexpr std::uint8_t kBank = 3;
  static constexpr std::uint32_t kRow = 42;

  BenderHost& baseline() {
    if (!baseline_) baseline_ = std::make_unique<BenderHost>(hbm::DeviceConfig{});
    return *baseline_;
  }

  static std::unique_ptr<BenderHost> make_host() {
    return std::make_unique<BenderHost>(hbm::DeviceConfig{});
  }

  /// Writes a known pattern into (kBank, kRow); no readback.
  static void init_row(BenderHost& host) {
    ProgramBuilder b(host.device().geometry(), host.device().timings());
    b.program().set_wide_register(0, core::make_row_image(host.device().geometry(), 0x5C));
    b.init_row(kBank, kRow, 0);
    (void)host.run(b.take(), 0, 0);
  }

  /// Reads (kBank, kRow) back; returns the payload.
  static std::vector<std::uint8_t> read_row(BenderHost& host) {
    ProgramBuilder b(host.device().geometry(), host.device().timings());
    b.read_row(kBank, kRow);
    return host.run(b.take(), 0, 0).readback;
  }

  std::unique_ptr<BenderHost> baseline_;
};

TEST_F(HostRecoveryTest, UploadFaultsAreRetriedWithoutTouchingTheDeviceClock) {
  init_row(baseline());
  const auto expected = read_row(baseline());

  FaultPlan plan;
  plan.script = {{FaultKind::kUploadTimeout, 0}, {FaultKind::kUploadDrop, 0}};
  FaultInjector injector(plan);
  auto host = make_host();
  host->set_fault_injector(&injector);

  init_row(*host);
  EXPECT_EQ(read_row(*host), expected);

  // Byte-identical recovery: the device clock matches the fault-free host
  // cycle for cycle; only host wall-clock paid for the faults.
  EXPECT_EQ(host->now(), baseline().now());
  EXPECT_GT(host->wall_ms(), baseline().wall_ms());

  const auto& stats = host->resilience_stats();
  EXPECT_EQ(stats.detected, 2u);
  EXPECT_EQ(stats.recovered, 2u);
  EXPECT_EQ(stats.upload_failures, 2u);
  EXPECT_EQ(stats.aborted, 0u);
  // Host bookkeeping and injector agree: nothing slipped through.
  EXPECT_EQ(injector.stats().injected, stats.detected);
  EXPECT_EQ(injector.stats().recovered + injector.stats().aborted, injector.stats().injected);
}

TEST_F(HostRecoveryTest, CorruptedReadbackIsAlwaysCaughtByCrcAndHealed) {
  init_row(baseline());
  const auto expected = read_row(baseline());
  ASSERT_EQ(read_row(baseline()), expected);  // second read, matching below

  FaultPlan plan;
  plan.script = {{FaultKind::kReadbackCorrupt, 0}, {FaultKind::kReadbackCorrupt, 2}};
  FaultInjector injector(plan);
  auto host = make_host();
  host->set_fault_injector(&injector);

  init_row(*host);
  EXPECT_EQ(read_row(*host), expected);  // drain 1 corrupt, drain 2 clean
  EXPECT_EQ(read_row(*host), expected);  // drain 3 corrupt, drain 4 clean

  const auto& stats = host->resilience_stats();
  EXPECT_EQ(stats.crc_failures, 2u);
  EXPECT_EQ(stats.recovered, 2u);
  EXPECT_EQ(stats.aborted, 0u);
  EXPECT_EQ(host->now(), baseline().now());
}

TEST_F(HostRecoveryTest, ShortReadsAreCaughtByFramingAndHealed) {
  init_row(baseline());
  const auto expected = read_row(baseline());

  FaultPlan plan;
  plan.script = {{FaultKind::kReadbackShortRead, 0}};
  FaultInjector injector(plan);
  auto host = make_host();
  host->set_fault_injector(&injector);

  init_row(*host);
  EXPECT_EQ(read_row(*host), expected);
  EXPECT_EQ(host->resilience_stats().short_reads, 1u);
  EXPECT_EQ(host->resilience_stats().recovered, 1u);
  EXPECT_EQ(host->now(), baseline().now());
}

TEST_F(HostRecoveryTest, ExecutorStallIsReArmedAfterTheWatchdog) {
  init_row(baseline());
  const auto expected = read_row(baseline());

  FaultPlan plan;
  plan.script = {{FaultKind::kExecutorStall, 0}};
  FaultInjector injector(plan);
  auto host = make_host();
  host->set_fault_injector(&injector);

  init_row(*host);  // stall fires here: program never started, re-shipped
  EXPECT_EQ(read_row(*host), expected);

  const auto& stats = host->resilience_stats();
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.recovered, 1u);
  // The watchdog wait landed on wall clock, not the device clock.
  EXPECT_GE(stats.retry_wait_ms, host->link().config().timeout_ms);
  EXPECT_EQ(host->now(), baseline().now());
}

TEST_F(HostRecoveryTest, ExhaustedUploadBudgetThrowsTransportError) {
  FaultPlan plan;
  plan.set_rate(FaultKind::kUploadTimeout, 1.0);
  FaultInjector injector(plan);
  auto host = make_host();
  host->set_fault_injector(&injector);

  ProgramBuilder b(host->device().geometry(), host->device().timings());
  b.nop();
  EXPECT_THROW((void)host->run(b.take(), 0, 0), common::TransportError);

  const auto budget = host->retry_policy().max_attempts;
  EXPECT_EQ(injector.stats().injected, budget);
  EXPECT_EQ(injector.stats().aborted, 1u);
  EXPECT_EQ(host->resilience_stats().aborted, 1u);
  // The device never saw the program.
  EXPECT_EQ(host->now(), 0u);
}

TEST_F(HostRecoveryTest, NonIdempotentProgramIsNeverReRun) {
  FaultPlan plan;
  plan.set_rate(FaultKind::kReadbackCorrupt, 1.0);
  FaultInjector injector(plan);
  auto host = make_host();
  host->set_fault_injector(&injector);

  // One program that writes AND reads back: every drain corrupts, and the
  // write makes a full re-run unsafe (it would re-touch DRAM state), so the
  // host must refuse and surface a TransportError after the drain budget.
  ProgramBuilder b(host->device().geometry(), host->device().timings());
  b.program().set_wide_register(0, core::make_row_image(host->device().geometry(), 0x11));
  b.init_row(kBank, kRow, 0);
  b.read_row(kBank, kRow);
  const auto program = b.take();
  EXPECT_FALSE(bender::is_idempotent(program));
  EXPECT_THROW((void)host->run(program, 0, 0), common::TransportError);
  EXPECT_EQ(host->resilience_stats().reruns, 0u);
  EXPECT_GT(host->resilience_stats().crc_failures, 0u);
}

TEST_F(HostRecoveryTest, IdempotentProgramIsReRunAfterDrainExhaustion) {
  init_row(baseline());
  const auto expected = read_row(baseline());

  auto host = make_host();
  init_row(*host);  // fault-free init

  FaultPlan plan;
  // Corrupt the read program's entire first drain budget; the re-run's
  // drain (opportunity 4) is clean.
  const unsigned budget = host->retry_policy().max_attempts;
  for (unsigned i = 0; i < budget; ++i) {
    plan.script.push_back({FaultKind::kReadbackCorrupt, i});
  }
  FaultInjector injector(plan);
  host->set_fault_injector(&injector);

  ProgramBuilder b(host->device().geometry(), host->device().timings());
  b.read_row(kBank, kRow);
  const auto program = b.take();
  EXPECT_TRUE(bender::is_idempotent(program));
  EXPECT_EQ(host->run(program, 0, 0).readback, expected);
  EXPECT_EQ(host->resilience_stats().reruns, 1u);
  EXPECT_EQ(host->resilience_stats().crc_failures, budget);
  EXPECT_EQ(injector.stats().recovered + injector.stats().aborted,
            injector.stats().injected);
}

// --- thermal robustness ----------------------------------------------------

TEST(ThermalResilience, ExcursionDuringSettleIsReSettledWithinTheBudget) {
  FaultPlan plan;
  plan.script = {{FaultKind::kThermalExcursion, 0}};
  FaultInjector injector(plan);
  BenderHost host{hbm::DeviceConfig{}};
  host.set_fault_injector(&injector);

  host.set_chip_temperature(85.0);
  EXPECT_NEAR(host.device().temperature(), 85.0, 0.6);
  EXPECT_EQ(injector.stats().injected, 1u);
  EXPECT_EQ(injector.stats().recovered, 1u);
  EXPECT_EQ(injector.stats().aborted, 0u);
}

TEST(ThermalResilience, GuardPausesHammeringOutsideTheBand) {
  BenderHost host{hbm::DeviceConfig{}};
  host.set_chip_temperature(85.0);  // settle fault-free first

  FaultPlan plan;
  plan.script = {{FaultKind::kThermalExcursion, 0}};
  FaultInjector injector(plan);
  host.set_fault_injector(&injector);

  double guard_target = 0.0, guard_actual = 0.0;
  host.set_temperature_guard(
      [&](double target_c, double actual_c) {
        guard_target = target_c;
        guard_actual = actual_c;
      },
      /*band_c=*/1.0);

  ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.nop();
  (void)host.run(b.take(), 0, 0);  // excursion fires before this program

  EXPECT_EQ(host.resilience_stats().guard_pauses, 1u);
  EXPECT_DOUBLE_EQ(guard_target, 85.0);
  // The callback observed the out-of-band temperature (default excursion
  // magnitude is 5 degC, guard band 1 degC)...
  EXPECT_GT(std::abs(guard_actual - 85.0), 1.0);
  // ...and hammering resumed only after the rig was back inside the band.
  EXPECT_NEAR(host.device().temperature(), 85.0, 1.0);
  EXPECT_EQ(injector.stats().recovered, 1u);
}

TEST(ThermalResilience, DriftShiftsTheAmbientAndThePidHolds) {
  FaultPlan plan;
  plan.script = {{FaultKind::kThermalDrift, 0}};
  FaultInjector injector(plan);
  BenderHost host{hbm::DeviceConfig{}};
  const double ambient_before = host.thermal().config().ambient_c;
  host.set_fault_injector(&injector);

  host.set_chip_temperature(85.0);
  EXPECT_NE(host.thermal().config().ambient_c, ambient_before);
  EXPECT_NEAR(host.device().temperature(), 85.0, 0.6);
  EXPECT_EQ(injector.stats().recovered, 1u);
}

// --- campaign under fault storm --------------------------------------------

campaign::SweepSpec storm_sweep() {
  core::SurveyConfig survey;
  survey.channels = {0, 7};
  survey.row_stride = 512;
  survey.wcdp_by_ber = true;  // BER-only: fast
  campaign::SweepSpec spec =
      campaign::survey_sweep(hbm::DeviceConfig{}, survey, /*max_rows_per_shard=*/2);
  spec.settle_thermal = false;
  return spec;
}

std::string serialize(const std::vector<core::RowRecord>& records) {
  std::string out;
  for (const auto& record : records) campaign::append_row_record_json(out, record);
  return out;
}

TEST(CampaignResilience, TransportStormYieldsByteIdenticalResults) {
  const campaign::SweepSpec spec = storm_sweep();

  campaign::CampaignConfig config;
  config.progress = false;
  config.jobs = 2;
  campaign::Campaign clean(config);
  const std::string expected = serialize(clean.run(spec).flat());

  config.fault_plan.seed = 0xB0071;
  config.fault_plan.set_transport_rates(0.05);
  campaign::Campaign storm(config);
  const std::string stormed = serialize(storm.run(spec).flat());

  EXPECT_EQ(stormed, expected);
  const auto snapshot = storm.metrics().snapshot();
  EXPECT_GT(snapshot.value_or("resilience.injected", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.value_or("resilience.aborted", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.value_or("campaign.shards_fatal", 0.0), 0.0);
}

TEST(CampaignResilience, ExhaustedRetriesIsolateTheShardInsteadOfCrashing) {
  const campaign::SweepSpec spec = storm_sweep();

  campaign::CampaignConfig config;
  config.progress = false;
  config.jobs = 2;
  config.retries = 1;
  config.fail_on_shard_error = false;
  // Every upload times out on every host: all shards exhaust their per-host
  // transport budget, then their shard retries, and are isolated.
  config.fault_plan.set_rate(FaultKind::kUploadTimeout, 1.0);
  campaign::Campaign campaign(config);
  const auto result = campaign.run(spec);

  EXPECT_EQ(result.failures.size(), spec.shards.size());
  EXPECT_EQ(result.shards_retried, spec.shards.size() * config.retries);
  const auto snapshot = campaign.metrics().snapshot();
  // TransportError is transient: the retry budget was spent, nothing fatal.
  EXPECT_DOUBLE_EQ(snapshot.value_or("campaign.shards_fatal", 0.0), 0.0);
  EXPECT_GT(snapshot.value_or("resilience.aborted", 0.0), 0.0);

  // With fail_on_shard_error the same storm surfaces as a CampaignError
  // (a controlled failure report, not a crash).
  campaign::CampaignConfig strict = config;
  strict.fail_on_shard_error = true;
  campaign::Campaign failing(strict);
  EXPECT_THROW((void)failing.run(spec), campaign::CampaignError);
}

}  // namespace
}  // namespace rh::resilience
