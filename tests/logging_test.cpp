#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace rh::common {
namespace {

class LoggingTest : public ::testing::Test {
protected:
  void TearDown() override {
    set_log_level(LogLevel::kWarn);
    set_log_sink(nullptr);  // restore the default stderr sink
  }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, EmitsToStderrWhenEnabled) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("hello ", 42);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 42"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_debug("quiet");
  log_info("quiet");
  log_warn("quiet");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("still quiet");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, CapturingSinkRecordsLevelTimestampAndMessage) {
  set_log_level(LogLevel::kInfo);
  auto sink = std::make_shared<CapturingSink>();
  set_log_sink(sink);
  log_info("captured ", 7);
  log_warn("also captured");
  const auto records = sink->records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_EQ(records[0].message, "captured 7");
  EXPECT_EQ(records[1].level, LogLevel::kWarn);
  EXPECT_GE(records[0].mono_ms, 0.0);
  EXPECT_GE(records[1].mono_ms, records[0].mono_ms);  // monotonic
  EXPECT_NE(sink->joined().find("also captured"), std::string::npos);
}

TEST_F(LoggingTest, CapturingSinkDivertsOutputFromStderr) {
  set_log_level(LogLevel::kInfo);
  auto sink = std::make_shared<CapturingSink>();
  set_log_sink(sink);
  ::testing::internal::CaptureStderr();
  log_info("not on stderr");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
  EXPECT_EQ(sink->records().size(), 1u);
}

TEST_F(LoggingTest, SetSinkReturnsPreviousAndRestoresDefault) {
  auto first = std::make_shared<CapturingSink>();
  auto second = std::make_shared<CapturingSink>();
  set_log_sink(first);
  const auto previous = set_log_sink(second);
  EXPECT_EQ(previous.get(), first.get());
  // nullptr restores the stderr default; subsequent logs leave `second`.
  set_log_sink(nullptr);
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("back on stderr");
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("back on stderr"),
            std::string::npos);
  EXPECT_TRUE(second->records().empty());
}

TEST_F(LoggingTest, CapturingSinkClear) {
  auto sink = std::make_shared<CapturingSink>();
  set_log_sink(sink);
  set_log_level(LogLevel::kInfo);
  log_info("x");
  sink->clear();
  EXPECT_TRUE(sink->records().empty());
}

TEST_F(LoggingTest, StderrSinkFormatsLevelAndTimestamp) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_warn("formatted");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("WARN"), std::string::npos);
  EXPECT_NE(err.find("ms]"), std::string::npos);  // monotonic stamp suffix
  EXPECT_NE(err.find("formatted"), std::string::npos);
}

}  // namespace
}  // namespace rh::common
