#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace rh::common {
namespace {

class LoggingTest : public ::testing::Test {
protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, EmitsToStderrWhenEnabled) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("hello ", 42);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello 42"), std::string::npos);
  EXPECT_NE(err.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  log_debug("quiet");
  log_info("quiet");
  log_warn("quiet");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("still quiet");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace rh::common
