// The differential engine rig: every program that runs through the fast
// engine (pre-decoded traces, closed-form loop fast-forward, cached fault
// kernel) must be observationally identical to the reference interpreter —
// readback bytes, clocks, command mix, device state, TRR sampler state,
// telemetry counters, flip events, and error strings.
//
// Inputs come from three directions so the rig is not testing what it
// generated itself: the committed .rhcs corpus (timing repros and boundary
// streams, compiled into Bender programs), seeded verify::generator streams,
// and hand-built hammer programs that exercise the fast-forward and macro-op
// paths at their boundaries.
//
// The rig also proves its own sensitivity: each PlantedBug (the three ways
// the closed-form math most plausibly goes wrong) must produce a divergence
// the comparison catches — a differential test that cannot see a planted
// off-by-one would also miss a real one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bender/host.hpp"
#include "bender/program.hpp"
#include "common/engine.hpp"
#include "common/rng.hpp"
#include "hbm/device.hpp"
#include "telemetry/telemetry.hpp"
#include "verify/command_stream.hpp"
#include "verify/generator.hpp"

#ifndef RH_CORPUS_DIR
#error "RH_CORPUS_DIR must point at tests/corpus"
#endif

namespace rh {
namespace {

constexpr std::uint32_t kChannel = 0;
constexpr std::uint32_t kPseudoChannel = 0;

std::vector<std::string> corpus_files() {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(RH_CORPUS_DIR)) {
    if (entry.path().extension() == ".rhcs") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::uint8_t> row_pattern(const hbm::Geometry& geometry) {
  std::vector<std::uint8_t> pattern(geometry.row_bytes());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>(0xA5u ^ (i * 7u));
  }
  return pattern;
}

// Compiles a verify command stream into a Bender program. Absolute stream
// cycles are dilated x4 (+16 start offset) so each command has room for its
// register setup instruction; dilation only widens command gaps, so every
// minimum-separation rule a stream satisfied still holds (streams that
// violated one may become legal — irrelevant here, the assertion is engine
// agreement, not the verdict).
bender::Program compile_stream(const verify::StreamFile& file, const hbm::Geometry& geometry) {
  bender::ProgramBuilder b(geometry, file.timings);
  constexpr hbm::Cycle kDilate = 4;
  constexpr hbm::Cycle kOffset = 16;
  for (const verify::Command& cmd : file.commands) {
    const bool needs_reg = cmd.op == verify::Op::kAct || cmd.op == verify::Op::kRead ||
                           cmd.op == verify::Op::kWrite;
    const hbm::Cycle target = cmd.cycle * kDilate + kOffset;
    const hbm::Cycle setup = needs_reg ? 1 : 0;
    const hbm::Cycle cur = b.virtual_cycles();
    // Streams may carry same-cycle commands (one per bank); issue those as
    // soon as the setup allows. The x4 dilation absorbs the slip, and the
    // assertion is engine agreement, so even a stream this nudges into a
    // timing violation stays a valid differential input.
    const hbm::Cycle slack = target < cur + setup ? 0 : target - setup - cur;
    if (slack == 1) {
      b.nop();
    } else if (slack >= 2) {
      b.sleep(static_cast<std::int64_t>(slack - 1));
    }
    const auto bank = static_cast<std::uint8_t>(cmd.bank);
    switch (cmd.op) {
      case verify::Op::kAct:
        b.ldi(1, cmd.arg).act(bank, 1);
        break;
      case verify::Op::kPre:
        b.pre(bank);
        break;
      case verify::Op::kPreAll:
        b.prea();
        break;
      case verify::Op::kRead:
        b.ldi(1, cmd.arg).rd(bank, 1);
        break;
      case verify::Op::kWrite:
        b.ldi(1, cmd.arg).wr(bank, 1, 0);
        break;
      case verify::Op::kRef:
        b.ref();
        break;
    }
  }
  b.program().set_wide_register(0, row_pattern(geometry));
  return b.take();
}

/// Full post-run device state of the pseudo channel under test: per-bank
/// protocol/fault statistics, every nonzero pending disturbance, and the
/// proprietary TRR sampler internals. Doubles print as hexfloat so the
/// comparison is bit-exact, not round-trip-lossy.
std::string digest_device(hbm::Device& device) {
  std::ostringstream os;
  os << std::hexfloat;
  const hbm::Geometry& geometry = device.geometry();
  hbm::PseudoChannel& pc = device.pseudo_channel(kChannel, kPseudoChannel);
  for (std::uint32_t bk = 0; bk < pc.bank_count(); ++bk) {
    const hbm::Bank& bank = pc.bank(bk);
    const hbm::Bank::Stats& s = bank.stats();
    const bool quiet = s.activates == 0 && s.reads == 0 && s.writes == 0 && s.settles == 0 &&
                       bank.tracked_rows() == 0 && !bank.is_open();
    if (quiet) continue;
    os << "bank " << bk << ": acts=" << s.activates << " rd=" << s.reads << " wr=" << s.writes
       << " rh=" << s.rowhammer_flips << " ret=" << s.retention_flips
       << " ecc=" << s.ecc_corrections << " settles=" << s.settles
       << " tracked=" << bank.tracked_rows();
    if (bank.is_open()) os << " open=" << bank.open_logical_row();
    os << "\n";
    for (std::uint32_t row = 0; row < geometry.rows_per_bank; ++row) {
      const double d = bank.disturbance_of_physical(row);
      if (d != 0.0) os << "  dist " << row << " = " << d << "\n";
    }
  }
  const trr::ProprietaryTrr& trr = pc.proprietary_trr();
  os << "trr: refs=" << trr.ref_count() << " valid=" << trr.sample_valid();
  if (trr.sample_valid()) {
    os << " sample=b" << trr.sample().bank << ",r" << trr.sample().logical_row;
  }
  os << " sr=" << pc.in_self_refresh() << "\n";
  return os.str();
}

/// Everything the telemetry sink observed: the registry snapshot (all
/// counters here are pure functions of the command stream), the TRR and
/// flip event streams, and the per-bank ACT heatmap.
std::string digest_telemetry(const telemetry::Telemetry& sink) {
  std::ostringstream os;
  sink.snapshot().write_json(os);
  os << "\n" << std::hexfloat;
  for (const telemetry::TrrEvent& ev : sink.trr_events()) {
    os << "trr " << ev.cycle << " b" << static_cast<int>(ev.bank) << " r" << ev.logical_row
       << " doc=" << ev.documented << "\n";
  }
  for (const telemetry::FlipEvent& ev : sink.flip_events()) {
    os << "flip " << ev.cycle << " b" << static_cast<int>(ev.bank) << " pr" << ev.physical_row
       << " rh=" << ev.rowhammer_bits << " ret=" << ev.retention_bits << " d=" << ev.disturbance
       << "\n";
  }
  const std::vector<std::uint64_t>& heat = sink.bank_act_counts();
  for (std::size_t i = 0; i < heat.size(); ++i) {
    if (heat[i] != 0) os << "heat " << i << "=" << heat[i] << "\n";
  }
  return os.str();
}

struct EngineRun {
  std::optional<bender::ExecutionResult> result;
  std::string error;  ///< what() of the propagated failure; empty on success
  std::string device_digest;
  std::string telemetry_digest;
};

EngineRun run_one(const hbm::DeviceConfig& config, const bender::Program& program,
                  common::EngineKind kind, common::PlantedBug bug = common::PlantedBug::kNone) {
  bender::BenderHost host(config);
  host.set_engine(kind, bug);
  telemetry::TelemetryConfig sink_config;
  sink_config.trace_enabled = false;
  telemetry::Telemetry sink(sink_config);
  host.set_telemetry(&sink);
  EngineRun out;
  try {
    out.result = host.run(program, kChannel, kPseudoChannel);
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.device_digest = digest_device(host.device());
  out.telemetry_digest = digest_telemetry(sink);
  host.set_telemetry(nullptr);
  return out;
}

/// The equivalence contract, observable by observable. Wall-clock metrics
/// (host_seconds, instructions_per_second) are excluded; simulated-time
/// metrics must match as exact doubles.
void expect_identical(const EngineRun& fast, const EngineRun& interp) {
  EXPECT_EQ(fast.error, interp.error);
  ASSERT_EQ(fast.result.has_value(), interp.result.has_value());
  if (fast.result.has_value()) {
    const bender::ExecutionResult& f = *fast.result;
    const bender::ExecutionResult& i = *interp.result;
    EXPECT_EQ(f.readback, i.readback);
    EXPECT_EQ(f.start_cycle, i.start_cycle);
    EXPECT_EQ(f.end_cycle, i.end_cycle);
    EXPECT_EQ(f.instructions_executed, i.instructions_executed);
    EXPECT_EQ(f.metrics.acts, i.metrics.acts);
    EXPECT_EQ(f.metrics.precharges, i.metrics.precharges);
    EXPECT_EQ(f.metrics.reads, i.metrics.reads);
    EXPECT_EQ(f.metrics.writes, i.metrics.writes);
    EXPECT_EQ(f.metrics.refreshes, i.metrics.refreshes);
    EXPECT_EQ(f.metrics.mode_register_writes, i.metrics.mode_register_writes);
    EXPECT_EQ(f.metrics.sim_wall_ms, i.metrics.sim_wall_ms);
    EXPECT_EQ(f.metrics.act_rate_hz, i.metrics.act_rate_hz);
  }
  EXPECT_EQ(fast.device_digest, interp.device_digest);
  EXPECT_EQ(fast.telemetry_digest, interp.telemetry_digest);
}

/// True when any observable the rig compares diverges (the sensitivity
/// check: a planted bug must make this true).
bool runs_differ(const EngineRun& a, const EngineRun& b) {
  if (a.error != b.error) return true;
  if (a.result.has_value() != b.result.has_value()) return true;
  if (a.result.has_value()) {
    const bender::ExecutionResult& f = *a.result;
    const bender::ExecutionResult& i = *b.result;
    if (f.readback != i.readback || f.end_cycle != i.end_cycle ||
        f.instructions_executed != i.instructions_executed || f.metrics.acts != i.metrics.acts) {
      return true;
    }
  }
  return a.device_digest != b.device_digest || a.telemetry_digest != b.telemetry_digest;
}

TEST(EngineDiff, FastEngineIsTheDefault) {
  bender::BenderHost host{hbm::DeviceConfig{}};
  EXPECT_EQ(host.engine(), common::EngineKind::kFast);
  EXPECT_EQ(host.device().engine(), common::EngineKind::kFast);
}

TEST(EngineDiff, CorpusIsSeeded) {
  // Mirrors corpus_replay_test: an empty corpus means this rig tests nothing.
  EXPECT_GE(corpus_files().size(), 10u);
}

TEST(EngineDiff, CorpusStreamsExecuteIdenticallyOnBothEngines) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const verify::StreamFile file = verify::load_stream_file(path);
    ASSERT_FALSE(file.commands.empty());
    hbm::DeviceConfig config;
    ASSERT_LE(file.banks, config.geometry.banks_per_pseudo_channel);
    config.timings = file.timings;
    const bender::Program program = compile_stream(file, config.geometry);
    expect_identical(run_one(config, program, common::EngineKind::kFast),
                     run_one(config, program, common::EngineKind::kInterp));
  }
}

TEST(EngineDiff, GeneratedStreamsExecuteIdentically) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(seed);
    common::Xoshiro256 rng(seed * 1000 + 7);
    verify::GenConfig gen;
    if (seed % 2 == 0) gen.banks = 16;  // alternate traffic spread
    verify::StreamFile file;
    file.commands = verify::generate_valid(rng, gen);
    file.timings = gen.timings;
    file.banks = gen.banks;
    ASSERT_FALSE(file.commands.empty());
    hbm::DeviceConfig config;
    config.timings = file.timings;
    const bender::Program program = compile_stream(file, config.geometry);
    expect_identical(run_one(config, program, common::EngineKind::kFast),
                     run_one(config, program, common::EngineKind::kInterp));
  }
}

TEST(EngineDiff, HammerLoopFastForwardBoundaries) {
  // The unrolled register loop is what the fast engine fast-forwards in
  // closed form; sweep iteration counts across the interesting boundaries
  // (tiny loops the math must not over-advance, larger ones where the
  // closed form carries real weight, and counts big enough to flip bits).
  const hbm::DeviceConfig config;
  for (const std::uint32_t count : {1u, 2u, 3u, 16u, 17u, 255u, 1024u, 4096u}) {
    SCOPED_TRACE(count);
    bender::ProgramBuilder b(config.geometry, config.timings);
    b.init_row(0, 101, 0);
    b.hammer_loop_raw(0, 100, 102, count);
    b.read_row(0, 101);
    b.program().set_wide_register(0, row_pattern(config.geometry));
    const bender::Program program = b.take();
    expect_identical(run_one(config, program, common::EngineKind::kFast),
                     run_one(config, program, common::EngineKind::kInterp));
  }
}

/// A macro-op hammer session with enough REFs to fire the proprietary TRR
/// (period 17) twice, then a victim readback: exercises the batched bank
/// path, the sampler, the victim refresh, and the fault kernel end to end.
bender::Program hammer_macro_program(const hbm::DeviceConfig& config, std::uint64_t count,
                                     int refs) {
  bender::ProgramBuilder b(config.geometry, config.timings);
  // Aggressors logical 200/202 sit on *physically adjacent* rows under the
  // default pair-swap decoder, so each one's batch deposits disturbance on
  // the other — the pending state the macro-op's final own-ACT re-settle
  // must clear (what kStaleDisturbanceFlush breaks).
  b.init_row(0, 201, 0);
  b.ldi(1, 200).ldi(2, 202);
  b.hammer(0, 1, 2, static_cast<std::int64_t>(count));
  for (int i = 0; i < refs; ++i) b.sleep(1000).ref();
  if (refs > 0) b.sleep(1000);  // clear tRFC before reopening the bank
  b.read_row(0, 201);
  b.program().set_wide_register(0, row_pattern(config.geometry));
  return b.take();
}

TEST(EngineDiff, HammerMacroOpWithTrrAndRefreshIdentical) {
  const hbm::DeviceConfig config;
  for (const std::uint64_t count : {1000ull, 60000ull}) {
    SCOPED_TRACE(count);
    const bender::Program program = hammer_macro_program(config, count, 35);
    expect_identical(run_one(config, program, common::EngineKind::kFast),
                     run_one(config, program, common::EngineKind::kInterp));
  }
}

TEST(EngineDiff, ErrorPathsMatchExactly) {
  // ACT on an already-open bank: both engines must throw, and the attached
  // context (pc, cycle, disassembly, executed count) must render the same
  // what() string — diagnosability is part of the equivalence contract.
  const hbm::DeviceConfig config;
  bender::ProgramBuilder b(config.geometry, config.timings);
  b.ldi(1, 5).act(0, 1).act(0, 1);
  const bender::Program program = b.take();
  const EngineRun fast = run_one(config, program, common::EngineKind::kFast);
  const EngineRun interp = run_one(config, program, common::EngineKind::kInterp);
  EXPECT_FALSE(fast.error.empty());
  expect_identical(fast, interp);
}

TEST(EngineDiff, InterpEngineIgnoresPlantedBugs) {
  // Bugs are fast-path-only by contract: requesting one alongside kInterp
  // must leave the reference interpreter untouched.
  const hbm::DeviceConfig config;
  const bender::Program program = hammer_macro_program(config, 5000, 20);
  const EngineRun clean = run_one(config, program, common::EngineKind::kInterp);
  for (const common::PlantedBug bug :
       {common::PlantedBug::kOffByOneFastForward, common::PlantedBug::kSkipTrrSample,
        common::PlantedBug::kStaleDisturbanceFlush}) {
    SCOPED_TRACE(to_string(bug));
    expect_identical(run_one(config, program, common::EngineKind::kInterp, bug), clean);
  }
}

TEST(EngineDiff, PlantedOffByOneFastForwardIsCaught) {
  // The fast-forward replays one loop iteration too few: the ACT mix, the
  // accumulated disturbance, and the victim readback all shift. The rig
  // must see it — otherwise it could not see a real off-by-one either.
  const hbm::DeviceConfig config;
  bender::ProgramBuilder b(config.geometry, config.timings);
  b.init_row(0, 101, 0);
  b.hammer_loop_raw(0, 100, 102, 513);
  b.read_row(0, 101);
  b.program().set_wide_register(0, row_pattern(config.geometry));
  const bender::Program program = b.take();
  const EngineRun buggy =
      run_one(config, program, common::EngineKind::kFast, common::PlantedBug::kOffByOneFastForward);
  const EngineRun reference = run_one(config, program, common::EngineKind::kInterp);
  EXPECT_TRUE(runs_differ(buggy, reference));
}

TEST(EngineDiff, PlantedSkipTrrSampleIsCaught) {
  // The batched macro-op forgets to let the sampler observe the second
  // aggressor: the sampler retains row_a where the reference holds row_b,
  // and the TRR victim refreshes land on the wrong neighbourhood.
  const hbm::DeviceConfig config;
  const bender::Program program = hammer_macro_program(config, 5000, 20);
  const EngineRun buggy =
      run_one(config, program, common::EngineKind::kFast, common::PlantedBug::kSkipTrrSample);
  const EngineRun reference = run_one(config, program, common::EngineKind::kInterp);
  EXPECT_TRUE(runs_differ(buggy, reference));
}

TEST(EngineDiff, PlantedStaleDisturbanceFlushIsCaught) {
  // The batched macro-op forgets that each aggressor's final ACT re-settles
  // it: stale disturbance stays pending on the aggressor rows, visible in
  // the device digest (and, after the next settle, as phantom flips).
  const hbm::DeviceConfig config;
  const bender::Program program = hammer_macro_program(config, 5000, 0);
  const EngineRun buggy = run_one(config, program, common::EngineKind::kFast,
                                  common::PlantedBug::kStaleDisturbanceFlush);
  const EngineRun reference = run_one(config, program, common::EngineKind::kInterp);
  EXPECT_TRUE(runs_differ(buggy, reference))
      << "buggy digest:\n" << buggy.device_digest
      << "reference digest:\n" << reference.device_digest;
}

}  // namespace
}  // namespace rh
