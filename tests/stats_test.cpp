#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"

namespace rh::common {
namespace {

TEST(Mean, HandlesEmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::vector<double> one{3.5};
  EXPECT_DOUBLE_EQ(mean(one), 3.5);
}

TEST(Mean, ComputesArithmeticMean) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stddev, IsZeroForConstantData) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stddev, MatchesPopulationFormula) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);  // classic textbook example
}

TEST(CoefficientOfVariation, NormalizesByMean) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 2.0 / 5.0);
}

TEST(CoefficientOfVariation, ZeroMeanYieldsZero) {
  const std::vector<double> xs{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(QuantileSorted, InterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.25), 2.5);
}

TEST(QuantileSorted, RejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile_sorted(xs, 1.5), PreconditionError);
  EXPECT_THROW((void)quantile_sorted({}, 0.5), PreconditionError);
}

TEST(BoxStats, EmptyInputYieldsZeroCount) {
  const BoxStats s = box_stats({});
  EXPECT_EQ(s.count, 0u);
}

TEST(BoxStats, SingletonCollapsesAllQuantiles) {
  const std::vector<double> xs{7.0};
  const BoxStats s = box_stats(xs);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.q1, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(BoxStats, UsesTukeyHingesOddLength) {
  // Paper caption: q1/q3 are the medians of the first and second halves.
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  const BoxStats s = box_stats(xs);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);  // median of {1,2,3}
  EXPECT_DOUBLE_EQ(s.q3, 6.0);  // median of {5,6,7}
}

TEST(BoxStats, UsesTukeyHingesEvenLength) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  const BoxStats s = box_stats(xs);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.q1, 2.5);  // median of {1,2,3,4}
  EXPECT_DOUBLE_EQ(s.q3, 6.5);  // median of {5,6,7,8}
}

TEST(BoxStats, IsPermutationInvariant) {
  const std::vector<double> a{5, 1, 4, 2, 3};
  const std::vector<double> b{1, 2, 3, 4, 5};
  const BoxStats sa = box_stats(a);
  const BoxStats sb = box_stats(b);
  EXPECT_DOUBLE_EQ(sa.median, sb.median);
  EXPECT_DOUBLE_EQ(sa.q1, sb.q1);
  EXPECT_DOUBLE_EQ(sa.q3, sb.q3);
}

TEST(Histogram, ClampsOutOfRangeIntoEdgeBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(0.1);
  h.add(0.9);
  h.add(5.0);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[3], 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

class BoxStatsOrdering : public ::testing::TestWithParam<int> {};

TEST_P(BoxStatsOrdering, QuantilesAreMonotone) {
  // Property: for any data, min <= q1 <= median <= q3 <= max and the mean
  // lies in [min, max].
  std::vector<double> xs;
  std::uint64_t state = static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 1;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    xs.push_back(static_cast<double>(state >> 40));
  }
  const BoxStats s = box_stats(xs);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
  EXPECT_GE(s.mean, s.min);
  EXPECT_LE(s.mean, s.max);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoxStatsOrdering, ::testing::Values(1, 2, 3, 5, 8, 64, 1001));

}  // namespace
}  // namespace rh::common
