#include "bender/transport.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"
#include "core/data_patterns.hpp"

namespace rh::bender {
namespace {

TEST(PcieLink, TransferTimeHasLatencyFloor) {
  const PcieLink link;
  EXPECT_GE(link.transfer_ms(0), link.config().latency_us * 1e-3);
  EXPECT_GT(link.transfer_ms(1 << 20), link.transfer_ms(0));
}

TEST(PcieLink, ThroughputMatchesConfig) {
  PcieConfig cfg;
  cfg.bandwidth_gib_s = 1.0;
  cfg.latency_us = 0.0;
  const PcieLink link(cfg);
  EXPECT_NEAR(link.transfer_ms(1024 * 1024 * 1024), 1000.0, 1.0);
}

TEST(PcieLink, CountersAccumulate) {
  PcieLink link;
  link.record_upload(100);
  link.record_upload(200);
  link.record_download(50);
  EXPECT_EQ(link.uploads(), 2u);
  EXPECT_EQ(link.downloads(), 1u);
  EXPECT_EQ(link.upload_bytes(), 300u);
  EXPECT_EQ(link.download_bytes(), 50u);
  EXPECT_GT(link.busy_ms(), 0.0);
}

TEST(PcieLink, HostRecordsProgramTraffic) {
  BenderHost host{hbm::DeviceConfig{}};
  ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.program().set_wide_register(0, core::make_row_image(host.device().geometry(), 0x42));
  b.init_row(0, 7, 0);
  b.read_row(0, 7);
  (void)host.run(b.take(), 0, 0);
  EXPECT_EQ(host.link().uploads(), 1u);
  EXPECT_EQ(host.link().downloads(), 1u);
  // The uploaded program carries the 1 KiB wide register; the download is
  // one full row of readback.
  EXPECT_GE(host.link().upload_bytes(), host.device().geometry().row_bytes());
  EXPECT_EQ(host.link().download_bytes(), host.device().geometry().row_bytes());
}

TEST(PcieLink, WallClockIncludesLinkAndDramTime) {
  BenderHost host{hbm::DeviceConfig{}};
  ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.sleep(static_cast<std::int64_t>(hbm::ms_to_cycles(5.0)));
  (void)host.run(b.take(), 0, 0);
  EXPECT_GT(host.wall_ms(), 5.0);
  EXPECT_GT(host.wall_ms(), hbm::cycles_to_ms(host.now()));
}

TEST(PcieLink, ProgramsWithoutReadbackSkipTheDownload) {
  BenderHost host{hbm::DeviceConfig{}};
  ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.nop();
  (void)host.run(b.take(), 0, 0);
  EXPECT_EQ(host.link().downloads(), 0u);
}

}  // namespace
}  // namespace rh::bender
