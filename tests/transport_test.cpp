#include "bender/transport.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"
#include "core/data_patterns.hpp"
#include "resilience/fault.hpp"

namespace rh::bender {
namespace {

TEST(PcieLink, TransferTimeHasLatencyFloor) {
  const PcieLink link;
  EXPECT_GE(link.transfer_ms(0), link.config().latency_us * 1e-3);
  EXPECT_GT(link.transfer_ms(1 << 20), link.transfer_ms(0));
}

TEST(PcieLink, ThroughputMatchesConfig) {
  PcieConfig cfg;
  cfg.bandwidth_gib_s = 1.0;
  cfg.latency_us = 0.0;
  const PcieLink link(cfg);
  EXPECT_NEAR(link.transfer_ms(1024 * 1024 * 1024), 1000.0, 1.0);
}

TEST(PcieLink, CountersAccumulate) {
  PcieLink link;
  link.record_upload(100);
  link.record_upload(200);
  link.record_download(50);
  EXPECT_EQ(link.uploads(), 2u);
  EXPECT_EQ(link.downloads(), 1u);
  EXPECT_EQ(link.upload_bytes(), 300u);
  EXPECT_EQ(link.download_bytes(), 50u);
  EXPECT_GT(link.busy_ms(), 0.0);
}

TEST(PcieLink, HostRecordsProgramTraffic) {
  BenderHost host{hbm::DeviceConfig{}};
  ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.program().set_wide_register(0, core::make_row_image(host.device().geometry(), 0x42));
  b.init_row(0, 7, 0);
  b.read_row(0, 7);
  (void)host.run(b.take(), 0, 0);
  EXPECT_EQ(host.link().uploads(), 1u);
  EXPECT_EQ(host.link().downloads(), 1u);
  // The uploaded program carries the 1 KiB wide register; the download is
  // one full row of readback.
  EXPECT_GE(host.link().upload_bytes(), host.device().geometry().row_bytes());
  EXPECT_EQ(host.link().download_bytes(), host.device().geometry().row_bytes());
}

TEST(PcieLink, WallClockIncludesLinkAndDramTime) {
  BenderHost host{hbm::DeviceConfig{}};
  ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.sleep(static_cast<std::int64_t>(hbm::ms_to_cycles(5.0)));
  (void)host.run(b.take(), 0, 0);
  EXPECT_GT(host.wall_ms(), 5.0);
  EXPECT_GT(host.wall_ms(), hbm::cycles_to_ms(host.now()));
}

TEST(PcieLink, ProgramsWithoutReadbackSkipTheDownload) {
  BenderHost host{hbm::DeviceConfig{}};
  ProgramBuilder b(host.device().geometry(), host.device().timings());
  b.nop();
  (void)host.run(b.take(), 0, 0);
  EXPECT_EQ(host.link().downloads(), 0u);
}

// --- accounting under injected faults ------------------------------------
// Invariant: every attempt, failed or not, charges busy_ms exactly once;
// uploads/upload_bytes count only delivered transfers; downloads counts
// every drain performed.

TEST(PcieLink, TimedOutUploadChargesTheWatchdogOnce) {
  resilience::FaultPlan plan;
  plan.script = {{resilience::FaultKind::kUploadTimeout, 0}};
  resilience::FaultInjector injector(plan);
  PcieLink link;
  link.set_fault_injector(&injector);

  const auto failed = link.upload(4096);
  EXPECT_EQ(failed.status, TransferStatus::kTimeout);
  EXPECT_EQ(failed.bytes, 0u);
  EXPECT_EQ(link.uploads(), 0u);
  EXPECT_EQ(link.failed_uploads(), 1u);
  EXPECT_EQ(link.upload_bytes(), 0u);
  EXPECT_DOUBLE_EQ(link.busy_ms(), link.config().timeout_ms);

  const auto ok = link.upload(4096);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(link.uploads(), 1u);
  EXPECT_EQ(link.failed_uploads(), 1u);
  EXPECT_EQ(link.upload_bytes(), 4096u);
  EXPECT_DOUBLE_EQ(link.busy_ms(), link.config().timeout_ms + link.transfer_ms(4096));
}

TEST(PcieLink, DroppedUploadChargesTheFullTransferOnce) {
  resilience::FaultPlan plan;
  plan.script = {{resilience::FaultKind::kUploadDrop, 0}};
  resilience::FaultInjector injector(plan);
  PcieLink link;
  link.set_fault_injector(&injector);

  const auto failed = link.upload(1 << 20);
  EXPECT_EQ(failed.status, TransferStatus::kDropped);
  // The data crossed the wire before the ack was lost: full transfer cost,
  // but the transfer is not counted as delivered.
  EXPECT_DOUBLE_EQ(failed.wall_ms, link.transfer_ms(1 << 20));
  EXPECT_DOUBLE_EQ(link.busy_ms(), link.transfer_ms(1 << 20));
  EXPECT_EQ(link.uploads(), 0u);
  EXPECT_EQ(link.failed_uploads(), 1u);
}

TEST(PcieLink, FaultedDrainsStillCountAsDownloads) {
  resilience::FaultPlan plan;
  plan.script = {{resilience::FaultKind::kReadbackCorrupt, 0},
                 {resilience::FaultKind::kReadbackShortRead, 1}};
  resilience::FaultInjector injector(plan);
  PcieLink link;
  link.set_fault_injector(&injector);

  const std::vector<std::uint8_t> frame(1024, 0xAA);
  std::vector<std::uint8_t> out;

  const auto corrupt = link.download(frame, out);
  EXPECT_TRUE(corrupt.ok());  // the wire cannot tell; the CRC layer can
  EXPECT_EQ(out.size(), frame.size());
  EXPECT_NE(out, frame);
  EXPECT_EQ(link.downloads(), 1u);
  EXPECT_EQ(link.faulted_downloads(), 1u);
  double expected_busy = link.transfer_ms(frame.size());
  EXPECT_DOUBLE_EQ(link.busy_ms(), expected_busy);

  const auto short_read = link.download(frame, out);
  EXPECT_TRUE(short_read.ok());
  EXPECT_LT(out.size(), frame.size());  // strict prefix
  EXPECT_EQ(std::vector<std::uint8_t>(frame.begin(),
                                      frame.begin() + static_cast<std::ptrdiff_t>(out.size())),
            out);
  EXPECT_EQ(link.downloads(), 2u);
  EXPECT_EQ(link.faulted_downloads(), 2u);
  // The short drain charges the bytes that actually moved, exactly once.
  expected_busy += link.transfer_ms(out.size());
  EXPECT_DOUBLE_EQ(link.busy_ms(), expected_busy);

  const auto clean = link.download(frame, out);
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(frame.begin(), frame.end()));
  EXPECT_EQ(link.downloads(), 3u);
  EXPECT_EQ(link.faulted_downloads(), 2u);
}

}  // namespace
}  // namespace rh::bender
