#include <gtest/gtest.h>

#include "trr/documented_trr.hpp"
#include "trr/proprietary_trr.hpp"

namespace rh::trr {
namespace {

TEST(ProprietaryTrr, FiresExactlyEveryPeriodRefs) {
  ProprietaryTrrConfig cfg;
  cfg.period = 17;
  ProprietaryTrr trr(cfg);
  int fired = 0;
  for (int ref = 1; ref <= 170; ++ref) {
    trr.observe_activate(3, 1000);
    const auto action = trr.on_refresh();
    if (action) {
      ++fired;
      EXPECT_EQ(ref % 17, 0) << "fired off-period at REF " << ref;
      EXPECT_EQ(action->bank, 3u);
      EXPECT_EQ(action->logical_row, 1000u);
    }
  }
  EXPECT_EQ(fired, 10);
}

TEST(ProprietaryTrr, DoesNotFireWithoutASample) {
  ProprietaryTrr trr(ProprietaryTrrConfig{});
  for (int ref = 0; ref < 40; ++ref) {
    EXPECT_FALSE(trr.on_refresh().has_value());
  }
}

TEST(ProprietaryTrr, SamplerKeepsTheLastActivation) {
  ProprietaryTrrConfig cfg;
  cfg.period = 2;
  ProprietaryTrr trr(cfg);
  trr.observe_activate(0, 10);
  trr.observe_activate(1, 20);
  (void)trr.on_refresh();  // REF 1: no fire
  const auto action = trr.on_refresh();  // REF 2: fires
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->bank, 1u);
  EXPECT_EQ(action->logical_row, 20u);
}

TEST(ProprietaryTrr, SampleIsConsumedOnFiring) {
  ProprietaryTrrConfig cfg;
  cfg.period = 1;
  ProprietaryTrr trr(cfg);
  trr.observe_activate(0, 10);
  EXPECT_TRUE(trr.on_refresh().has_value());
  EXPECT_FALSE(trr.on_refresh().has_value());  // nothing new sampled
}

TEST(ProprietaryTrr, DisabledEngineNeverActs) {
  ProprietaryTrrConfig cfg;
  cfg.enabled = false;
  ProprietaryTrr trr(cfg);
  for (int i = 0; i < 50; ++i) {
    trr.observe_activate(0, 5);
    EXPECT_FALSE(trr.on_refresh().has_value());
  }
}

TEST(ProprietaryTrr, ResetClearsCounterAndSample) {
  ProprietaryTrrConfig cfg;
  cfg.period = 3;
  ProprietaryTrr trr(cfg);
  trr.observe_activate(0, 1);
  (void)trr.on_refresh();
  (void)trr.on_refresh();
  trr.reset();
  trr.observe_activate(0, 2);
  EXPECT_FALSE(trr.on_refresh().has_value());  // counter restarted at 1
  EXPECT_FALSE(trr.on_refresh().has_value());
  EXPECT_TRUE(trr.on_refresh().has_value());  // fires at 3 after reset
}

TEST(ProprietaryTrr, SubsamplingStillFiresEventually) {
  ProprietaryTrrConfig cfg;
  cfg.period = 4;
  cfg.sample_probability = 0.25;
  ProprietaryTrr trr(cfg);
  int fired = 0;
  for (int i = 0; i < 400; ++i) {
    trr.observe_activate(0, 7);
    if (trr.on_refresh()) ++fired;
  }
  EXPECT_GT(fired, 30);   // most periods should have a sample by firing time
  EXPECT_LE(fired, 100);  // can never exceed one per period
}

TEST(ProprietaryTrr, RejectsZeroPeriod) {
  ProprietaryTrrConfig cfg;
  cfg.period = 0;
  EXPECT_ANY_THROW(ProprietaryTrr{cfg});
}

TEST(DocumentedTrr, InactiveByDefault) {
  DocumentedTrrMode mode;
  EXPECT_FALSE(mode.active());
  mode.observe_activate(0, 1);
  EXPECT_FALSE(mode.on_refresh().has_value());
}

TEST(DocumentedTrr, CapturesAggressorsInDesignatedBankOnly) {
  DocumentedTrrMode mode;
  mode.enter(2);
  mode.observe_activate(2, 100);
  mode.observe_activate(3, 200);  // wrong bank: ignored
  const auto action = mode.on_refresh();
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->bank, 2u);
  ASSERT_EQ(action->logical_rows.size(), 1u);
  EXPECT_EQ(action->logical_rows[0], 100u);
}

TEST(DocumentedTrr, DeduplicatesAndCapsAggressors) {
  DocumentedTrrMode mode;
  mode.enter(0);
  for (int i = 0; i < 10; ++i) mode.observe_activate(0, 5);
  mode.observe_activate(0, 6);
  mode.observe_activate(0, 7);
  mode.observe_activate(0, 8);
  mode.observe_activate(0, 9);  // fifth distinct row: beyond the cap
  const auto action = mode.on_refresh();
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(action->logical_rows.size(), 4u);
}

TEST(DocumentedTrr, ExitStopsRefreshes) {
  DocumentedTrrMode mode;
  mode.enter(0);
  mode.observe_activate(0, 5);
  mode.exit();
  EXPECT_FALSE(mode.on_refresh().has_value());
}

}  // namespace
}  // namespace rh::trr
