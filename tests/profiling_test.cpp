// Tests for src/profiling: the phase profile, the run report, the histogram
// quantile/summary path it leans on, and the journal cost annotations that
// feed rh_report --journal.
//
// The load-bearing property pinned here: the *deterministic projection* of a
// campaign run report (write_report_json with include_wall=false) is
// byte-identical for a fixed seed regardless of --jobs, because it carries
// only pure functions of the command stream — no wall clock, no call
// counts, no per-rig bring-up cycles, no gauges.
#include "profiling/profile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/record_io.hpp"
#include "core/spatial.hpp"
#include "profiling/report.hpp"
#include "telemetry/metrics.hpp"

namespace rh {
namespace {

using campaign::CampaignConfig;
using campaign::SweepSpec;
using profiling::Phase;
using profiling::PhaseStat;
using profiling::PhaseTimer;
using profiling::Profile;

// ---------------------------------------------------------------- histogram

TEST(HistogramQuantileTest, EmptyHistogramReturnsZero) {
  EXPECT_EQ(telemetry::histogram_quantile(0.0, 10.0, {0, 0, 0}, 0.5), 0.0);
  telemetry::FixedHistogram h(0.0, 10.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  const telemetry::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.p50, 0.0);
}

TEST(HistogramQuantileTest, SingleSampleLandsInItsBucket) {
  telemetry::FixedHistogram h(0.0, 10.0, 10);
  h.observe(5.25);
  // The one sample occupies bucket [5, 6); any quantile interpolates inside.
  EXPECT_GE(h.quantile(0.5), 5.0);
  EXPECT_LE(h.quantile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5.25);
  EXPECT_EQ(h.summary().count, 1u);
}

TEST(HistogramQuantileTest, OutOfRangeQIsClamped) {
  telemetry::FixedHistogram h(0.0, 10.0, 10);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(HistogramQuantileTest, InterpolatesAUniformDistribution) {
  telemetry::FixedHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  const telemetry::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.sum / static_cast<double>(s.count), 50.0, 0.5);  // mean
}

TEST(HistogramQuantileTest, ClampedSamplesKeepFaithfulSum) {
  telemetry::FixedHistogram h(0.0, 10.0, 10);
  h.observe(-100.0);  // clamps into bucket 0
  h.observe(100.0);   // clamps into the last bucket
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);  // sum is pre-clamp: -100 + 100
}

TEST(HistogramJsonTest, ExportCarriesBoundsAndQuantilesKeySorted) {
  telemetry::MetricsRegistry registry;
  auto& h = registry.histogram("test.latency", 0.0, 4.0, 4);
  h.observe(1.0);
  h.observe(3.0);
  std::ostringstream os;
  registry.snapshot().write_json(os);
  const std::string json = os.str();

  // Bucket bounds are explicit (n+1 edges for n buckets), so a consumer
  // never has to re-derive the layout from lo/hi/bins.
  EXPECT_NE(json.find("\"bounds\":[0,1,2,3,4]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[0,1,0,1]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos) << json;
  // Keys inside the histogram object are sorted for byte-stable diffs.
  const std::size_t bounds = json.find("\"bounds\"");
  const std::size_t buckets = json.find("\"buckets\"");
  const std::size_t count = json.find("\"count\"");
  const std::size_t p50 = json.find("\"p50\"");
  const std::size_t sum = json.find("\"sum\"");
  EXPECT_LT(bounds, buckets);
  EXPECT_LT(buckets, count);
  EXPECT_LT(count, p50);
  EXPECT_LT(p50, sum);
}

// ------------------------------------------------------------------ profile

TEST(ProfileTest, RecordAccumulatesAndMergeAdds) {
  Profile a;
  a.record(Phase::kExecute, 100, 1.5);
  a.record(Phase::kExecute, 50, 0.5);
  a.record(Phase::kCheckpoint, 0, 2.0, 3);
  EXPECT_EQ(a.stat(Phase::kExecute).calls, 2u);
  EXPECT_EQ(a.stat(Phase::kExecute).device_cycles, 150u);
  EXPECT_DOUBLE_EQ(a.stat(Phase::kExecute).wall_ms, 2.0);
  EXPECT_EQ(a.stat(Phase::kCheckpoint).calls, 3u);

  Profile b;
  b.record(Phase::kExecute, 25, 0.25);
  b.merge_from(a);
  EXPECT_EQ(b.stat(Phase::kExecute).calls, 3u);
  EXPECT_EQ(b.stat(Phase::kExecute).device_cycles, 175u);
  EXPECT_DOUBLE_EQ(b.total_wall_ms(), 4.25);

  b.reset();
  EXPECT_EQ(b.stat(Phase::kExecute).calls, 0u);
  EXPECT_DOUBLE_EQ(b.total_wall_ms(), 0.0);
}

TEST(ProfileTest, PhaseTimerSamplesTheCycleClock) {
  Profile p;
  std::uint64_t clock = 1000;
  {
    const PhaseTimer timer(p, Phase::kThermal, &clock);
    clock += 250;
  }
  EXPECT_EQ(p.stat(Phase::kThermal).calls, 1u);
  EXPECT_EQ(p.stat(Phase::kThermal).device_cycles, 250u);
  EXPECT_GE(p.stat(Phase::kThermal).wall_ms, 0.0);
}

TEST(ProfileTest, TimerStopIsIdempotent) {
  Profile p;
  PhaseTimer timer(p, Phase::kUpload);
  timer.stop();
  timer.stop();  // destructor will be the third stop
  EXPECT_EQ(p.stat(Phase::kUpload).calls, 1u);
}

TEST(ProfileTest, DeterministicJsonKeepsOnlyMeasurementCycles) {
  Profile p;
  p.record(Phase::kExecute, 123, 9.9);
  p.record(Phase::kShardRun, 456, 8.8);
  p.record(Phase::kThermal, 789, 7.7);  // per-rig bring-up: schedule-scaled
  p.record(Phase::kIdle, 0, 6.6);

  std::ostringstream full;
  p.write_json(full, /*include_wall=*/true);
  EXPECT_NE(full.str().find("\"calls\""), std::string::npos);
  EXPECT_NE(full.str().find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(full.str().find("\"thermal\":{\"calls\":1,\"device_cycles\":789"),
            std::string::npos)
      << full.str();

  std::ostringstream det;
  p.write_json(det, /*include_wall=*/false);
  const std::string json = det.str();
  EXPECT_EQ(json.find("\"calls\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"wall_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"execute\":{\"device_cycles\":123}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard_run\":{\"device_cycles\":456}"), std::string::npos) << json;
  // Bring-up phases stay present (stable key set) but carry no cycles.
  EXPECT_NE(json.find("\"thermal\":{}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"idle\":{}"), std::string::npos) << json;
}

TEST(LatencySummaryTest, EdgeCases) {
  EXPECT_EQ(profiling::summarize_latencies({}).count, 0u);
  const profiling::LatencySummary one = profiling::summarize_latencies({42.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.min, 42.0);
  EXPECT_DOUBLE_EQ(one.p50, 42.0);
  EXPECT_DOUBLE_EQ(one.max, 42.0);
  EXPECT_DOUBLE_EQ(one.total_ms, 42.0);
}

// ----------------------------------------------------------- campaign level

// The campaign_test quick survey: 2 channels x 3 regions x 3072/512 rows in
// 2-row shards -> 18 shards, BER-only, no thermal settle.
SweepSpec quick_sweep() {
  core::SurveyConfig survey;
  survey.channels = {0, 7};
  survey.row_stride = 512;
  survey.wcdp_by_ber = true;
  SweepSpec spec = campaign::survey_sweep(hbm::DeviceConfig{}, survey, 2);
  spec.settle_thermal = false;
  return spec;
}

CampaignConfig quiet_config(unsigned jobs) {
  CampaignConfig config;
  config.progress = false;
  config.jobs = jobs;
  return config;
}

std::string deterministic_report_json(const SweepSpec& spec, campaign::Campaign& campaign,
                                      const campaign::CampaignResult& result) {
  const profiling::RunReport report =
      campaign::build_report("quick", spec, campaign, result, nullptr);
  std::ostringstream os;
  profiling::write_report_json(os, report, /*include_wall=*/false);
  return os.str();
}

TEST(CampaignProfilingTest, DeterministicProjectionIsIdenticalAcrossJobs) {
  const SweepSpec spec = quick_sweep();

  campaign::Campaign serial(quiet_config(1));
  const campaign::CampaignResult r1 = serial.run(spec);
  campaign::Campaign parallel(quiet_config(3));
  const campaign::CampaignResult r3 = parallel.run(spec);

  // Simulated-cycle totals of the measurement phases are pure functions of
  // the sweep: identical for any worker count.
  EXPECT_EQ(serial.profile().stat(Phase::kShardRun).device_cycles,
            parallel.profile().stat(Phase::kShardRun).device_cycles);
  EXPECT_EQ(serial.profile().stat(Phase::kExecute).device_cycles,
            parallel.profile().stat(Phase::kExecute).device_cycles);

  // Per-shard cycle accounting matches shard for shard.
  ASSERT_EQ(r1.timings.size(), spec.shards.size());
  ASSERT_EQ(r3.timings.size(), spec.shards.size());
  for (std::size_t i = 0; i < r1.timings.size(); ++i) {
    EXPECT_EQ(r1.timings[i].shard, r3.timings[i].shard);
    EXPECT_EQ(r1.timings[i].device_cycles, r3.timings[i].device_cycles) << "shard " << i;
    EXPECT_EQ(r1.timings[i].attempts, 1u);
  }

  // Wall time was measured (nondeterministic), but never zero-filled.
  EXPECT_GT(r1.elapsed_wall_ms, 0.0);
  EXPECT_GT(r3.elapsed_wall_ms, 0.0);
  EXPECT_EQ(r1.jobs, 1u);
  EXPECT_EQ(r3.jobs, 3u);

  // The whole deterministic report document is byte-identical.
  EXPECT_EQ(deterministic_report_json(spec, serial, r1),
            deterministic_report_json(spec, parallel, r3));
}

TEST(CampaignProfilingTest, ReportJsonSchemaAndProjectionContract) {
  const SweepSpec spec = quick_sweep();
  campaign::Campaign campaign(quiet_config(2));
  const campaign::CampaignResult result = campaign.run(spec);
  const profiling::RunReport report =
      campaign::build_report("quick", spec, campaign, result, nullptr);

  std::ostringstream full_os;
  profiling::write_report_json(full_os, report, /*include_wall=*/true);
  const std::string full = full_os.str();
  const campaign::JsonValue doc = campaign::parse_json(full, "report");
  EXPECT_EQ(doc.at("schema").text, "rh-run-report/v1");
  EXPECT_EQ(doc.at("campaign").text, "quick");
  EXPECT_EQ(doc.at("shards").at("total").as_u64(), spec.shards.size());
  EXPECT_EQ(doc.at("shards").at("done").as_u64(), spec.shards.size());
  EXPECT_EQ(doc.at("shards").at("failed").as_u64(), 0u);
  EXPECT_EQ(doc.at("jobs").as_u64(), 2u);
  EXPECT_EQ(doc.at("timings").items.size(), spec.shards.size());
  EXPECT_GT(doc.at("elapsed_wall_ms").as_double(), 0.0);
  ASSERT_NE(doc.find("phases"), nullptr);
  ASSERT_NE(doc.find("metrics"), nullptr);
  ASSERT_NE(doc.find("shard_latency_ms"), nullptr);
  ASSERT_NE(doc.find("worker_utilization"), nullptr);

  // The deterministic projection parses too, and contains no wall-clock,
  // scheduling, or gauge residue anywhere in the document.
  std::ostringstream det_os;
  profiling::write_report_json(det_os, report, /*include_wall=*/false);
  const std::string det = det_os.str();
  const campaign::JsonValue det_doc = campaign::parse_json(det, "det-report");
  EXPECT_EQ(det_doc.at("schema").text, "rh-run-report/v1");
  EXPECT_EQ(det.find("wall_ms"), std::string::npos) << det;
  EXPECT_EQ(det.find("\"calls\""), std::string::npos) << det;
  EXPECT_EQ(det.find("\"jobs\""), std::string::npos) << det;
  EXPECT_EQ(det.find("\"gauges\":{\""), std::string::npos) << det;  // gauges emptied
  EXPECT_EQ(det.find("worker_utilization"), std::string::npos) << det;
  EXPECT_EQ(det.find("\"trace\""), std::string::npos) << det;
}

TEST(CampaignProfilingTest, FleetProfileCoversHostAndCampaignPhases) {
  const SweepSpec spec = quick_sweep();
  campaign::Campaign campaign(quiet_config(2));
  const campaign::CampaignResult result = campaign.run(spec);
  (void)result;
  const Profile& profile = campaign.profile();

  // Host-level: every shard uploads programs and drains readback.
  EXPECT_GT(profile.stat(Phase::kUpload).calls, 0u);
  EXPECT_GT(profile.stat(Phase::kExecute).calls, 0u);
  EXPECT_GT(profile.stat(Phase::kExecute).device_cycles, 0u);
  EXPECT_GT(profile.stat(Phase::kDrain).calls, 0u);
  // Campaign-level: 2 rigs built, 18 shards run, idle accounted per worker.
  EXPECT_EQ(profile.stat(Phase::kRigBuild).calls, 2u);
  EXPECT_EQ(profile.stat(Phase::kShardRun).calls, spec.shards.size());
  EXPECT_GT(profile.stat(Phase::kShardRun).device_cycles, 0u);
  EXPECT_EQ(profile.stat(Phase::kIdle).calls, 2u);
  // shard_run contains the host-level execute: same clock, same axis.
  EXPECT_GE(profile.stat(Phase::kShardRun).device_cycles,
            profile.stat(Phase::kExecute).device_cycles);
}

TEST(CampaignProfilingTest, ThroughputAxisExcludesRigBringUp) {
  SweepSpec spec = quick_sweep();
  spec.settle_thermal = true;  // nonzero bring-up: each rig settles its PID loop
  campaign::Campaign campaign(quiet_config(2));
  const campaign::CampaignResult result = campaign.run(spec);
  const profiling::RunReport report =
      campaign::build_report("quick", spec, campaign, result, nullptr);
  const Profile& profile = campaign.profile();

  const std::uint64_t shard_run = profile.stat(Phase::kShardRun).device_cycles;
  const std::uint64_t rig_build = profile.stat(Phase::kRigBuild).device_cycles;
  ASSERT_GT(shard_run, 0u);
  ASSERT_GT(rig_build, 0u);

  // The gated throughput numerator is measurement only; bring-up reports
  // separately. Folding the simulated PID settle into the axis once
  // inflated device_cycles_per_host_second several-fold.
  EXPECT_EQ(report.device_cycles(), shard_run);
  EXPECT_EQ(report.bringup_device_cycles(), rig_build);
  EXPECT_EQ(report.deterministic_device_cycles(), report.device_cycles());

  // Bring-up is dominated by the thermal settle it pays for.
  EXPECT_GE(rig_build, profile.stat(Phase::kThermal).device_cycles);

  // Per-shard timings partition the measurement phase exactly — a cycle
  // counted in a timing is never also charged to rig_build.
  std::uint64_t timing_total = 0;
  for (const auto& t : result.timings) timing_total += t.device_cycles;
  EXPECT_EQ(timing_total, shard_run);

  // Both JSON documents carry the split.
  std::ostringstream perf_os;
  profiling::write_perf_baseline_json(perf_os, report, 512);
  const campaign::JsonValue perf_doc = campaign::parse_json(perf_os.str(), "perf-baseline");
  EXPECT_EQ(perf_doc.at("device_cycles").as_u64(), shard_run);
  EXPECT_EQ(perf_doc.at("bringup_device_cycles").as_u64(), rig_build);

  std::ostringstream report_os;
  profiling::write_report_json(report_os, report, /*include_wall=*/true);
  const campaign::JsonValue report_doc = campaign::parse_json(report_os.str(), "report");
  EXPECT_EQ(report_doc.at("device_cycles").as_u64(), shard_run);
  EXPECT_EQ(report_doc.at("bringup_device_cycles").as_u64(), rig_build);
}

// ------------------------------------------------------------ journal level

/// A scratch file deleted on scope exit.
class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

TEST(JournalOutcomesTest, ReaderSurfacesCostAnnotationsAndFailures) {
  const TempPath path("profiling_test_journal.jsonl");
  const campaign::JournalHeader header{7, 0xabcd, 3};
  {
    campaign::JournalWriter writer(path.str(), header);
    writer.append_shard(0, {}, 12.5, 2);
    writer.append_failure(1, 3, "thermal \"upset\"");
    writer.append_shard(2, {});  // pre-annotation byte format
  }

  const campaign::JournalReader reader(path.str());
  ASSERT_EQ(reader.outcomes().size(), 3u);

  const campaign::ShardOutcome& annotated = reader.outcomes()[0];
  EXPECT_TRUE(annotated.ok);
  EXPECT_EQ(annotated.attempts, 2u);
  EXPECT_DOUBLE_EQ(annotated.wall_ms, 12.5);

  const campaign::ShardOutcome& failed = reader.outcomes()[1];
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.shard, 1u);
  EXPECT_EQ(failed.attempts, 3u);
  EXPECT_EQ(failed.error, "thermal \"upset\"");

  const campaign::ShardOutcome& legacy = reader.outcomes()[2];
  EXPECT_TRUE(legacy.ok);
  EXPECT_EQ(legacy.attempts, 1u);
  EXPECT_LT(legacy.wall_ms, 0.0);  // no annotation on the line

  // A failure line never counts as a completed shard: resume re-runs it.
  EXPECT_EQ(reader.shards().size(), 2u);
  EXPECT_EQ(reader.shards().count(1), 0u);
}

TEST(JournalOutcomesTest, TornTrailingLineIsIgnoredInOutcomes) {
  const TempPath path("profiling_test_torn.jsonl");
  {
    campaign::JournalWriter writer(path.str(), campaign::JournalHeader{1, 2, 4});
    writer.append_shard(0, {}, 5.0, 1);
  }
  {
    std::ofstream out(path.str(), std::ios::app);
    out << "{\"shard\":1,\"attempts\":1,\"wall_";  // the kill hit here
  }
  const campaign::JournalReader reader(path.str());
  EXPECT_EQ(reader.outcomes().size(), 1u);
  EXPECT_EQ(reader.shards().size(), 1u);
}

TEST(JournalOutcomesTest, SummaryRendersCountsLatencyAndFailures) {
  const TempPath path("profiling_test_summary.jsonl");
  {
    campaign::JournalWriter writer(path.str(), campaign::JournalHeader{7, 0xabcd, 4});
    writer.append_shard(0, {}, 10.0, 1);
    writer.append_shard(2, {}, 30.0, 2);
    writer.append_failure(3, 2, "boom");
  }
  const campaign::JournalReader reader(path.str());
  std::ostringstream os;
  campaign::render_journal_summary(os, path.str(), reader);
  const std::string text = os.str();
  EXPECT_NE(text.find("2/4 complete"), std::string::npos) << text;
  EXPECT_NE(text.find("1 failure lines"), std::string::npos) << text;
  EXPECT_NE(text.find("--resume"), std::string::npos) << text;  // pending hint
  EXPECT_NE(text.find("failed shard 3 after 2 attempts: boom"), std::string::npos) << text;
  EXPECT_NE(text.find("wall ms per journaled shard"), std::string::npos) << text;
}

}  // namespace
}  // namespace rh
