// Tests of the rh_telemetry module: registry semantics, histogram
// bucketing, trace-ring wraparound, export well-formedness, and — through a
// real device + executor — that the recorded command mix matches what a
// hand-written Bender program implies.
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "bender/executor.hpp"
#include "bender/program.hpp"
#include "core/data_patterns.hpp"
#include "hbm/device.hpp"

namespace rh::telemetry {
namespace {

// --- minimal JSON syntax check ------------------------------------------
// Validates balanced {} / [] nesting outside string literals and rejects
// trailing garbage. Not a full parser, but catches the classes of breakage
// an emitter regression produces (unbalanced braces, unescaped quotes,
// missing commas are caught structurally by brace mismatch).
bool json_balanced(const std::string& text) {
  std::string stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string literal
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

// --- registry ------------------------------------------------------------

TEST(MetricsRegistryTest, CounterIdentityAndAccumulation) {
  MetricsRegistry reg;
  Counter& c = reg.counter("cmd.act");
  c.add();
  c.add(41);
  EXPECT_EQ(reg.counter("cmd.act").value(), 42u);  // same instance by name
  EXPECT_EQ(&reg.counter("cmd.act"), &c);
  EXPECT_EQ(reg.counter("cmd.other").value(), 0u);
}

TEST(MetricsRegistryTest, GaugeKeepsLastValue) {
  MetricsRegistry reg;
  reg.gauge("ref.pointer").set(3.0);
  reg.gauge("ref.pointer").set(7.0);
  EXPECT_DOUBLE_EQ(reg.gauge("ref.pointer").value(), 7.0);
}

TEST(MetricsRegistryTest, SnapshotFindsAndDefaults) {
  MetricsRegistry reg;
  reg.counter("a").add(5);
  reg.gauge("b").set(2.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("a"), nullptr);
  EXPECT_EQ(snap.find("a")->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(snap.value_or("a", -1.0), 5.0);
  EXPECT_DOUBLE_EQ(snap.value_or("b", -1.0), 2.5);
  EXPECT_DOUBLE_EQ(snap.value_or("missing", -1.0), -1.0);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistration) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  c.add(9);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("a"), &c);
}

// --- histogram -----------------------------------------------------------

TEST(FixedHistogramTest, BucketsSamplesUniformly) {
  FixedHistogram h(0.0, 10.0, 5);  // buckets [0,2) [2,4) [4,6) [6,8) [8,10)
  h.observe(1.0);
  h.observe(3.0);
  h.observe(3.5);
  h.observe(9.9);
  EXPECT_EQ(h.total(), 4u);
  ASSERT_EQ(h.buckets().size(), 5u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[4], 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 4.0);
}

TEST(FixedHistogramTest, ClampsOutOfRangeIntoEdgeBuckets) {
  FixedHistogram h(0.0, 10.0, 5);
  h.observe(-100.0);
  h.observe(100.0);
  h.observe(10.0);  // hi is exclusive: lands in the top bucket
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

// --- trace ring ----------------------------------------------------------

CommandEvent act_event(std::uint64_t cycle, std::uint32_t row) {
  CommandEvent e;
  e.cycle = cycle;
  e.row = row;
  e.command = TraceCommand::kAct;
  return e;
}

TEST(TraceRingTest, FillsThenWrapsOverwritingOldest) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) ring.push(act_event(i, static_cast<std::uint32_t>(i)));
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto events = ring.in_order();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].cycle, i + 2);  // oldest first
}

TEST(TraceRingTest, PartialFillKeepsInsertionOrder) {
  TraceRing ring(8);
  ring.push(act_event(10, 1));
  ring.push(act_event(20, 2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.in_order();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].cycle, 10u);
  EXPECT_EQ(events[1].cycle, 20u);
}

TEST(TraceRingTest, ClearEmptiesEverything) {
  TraceRing ring(4);
  ring.push(act_event(1, 1));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.in_order().empty());
}

// --- export --------------------------------------------------------------

TEST(TelemetryExportTest, MetricsJsonIsWellFormed) {
  Telemetry telem;
  telem.on_command(TraceCommand::kAct, 100, 0, 0, 3, 42);
  telem.on_trr_trigger(200, 1, 0, 2, 77, false);
  telem.on_bit_flips(300, 0, 1, 5, 1234, 3, 1, 80000.0);
  telem.on_refresh_pointer(0, 0, 17);
  std::ostringstream os;
  telem.write_metrics_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"cmd.ACT\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trr.proprietary_triggers\":1"), std::string::npos);
  EXPECT_NE(json.find("\"flip.rowhammer_bits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"bank_act_heatmap\""), std::string::npos);
}

TEST(TelemetryExportTest, ChromeTraceIsWellFormedAndLabelsLanes) {
  Telemetry telem;
  telem.on_command(TraceCommand::kAct, 100, 2, 1, 3, 42);
  telem.on_command(TraceCommand::kPre, 130, 2, 1, 3, 0);
  std::ostringstream os;
  telem.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ACT\""), std::string::npos);
  EXPECT_NE(json.find("\"PRE\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);  // lane metadata
}

TEST(TelemetryExportTest, CsvSnapshotHasOneRowPerMetricAndBucket) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.histogram("h", 0.0, 4.0, 2).observe(1.0);
  std::ostringstream os;
  common::CsvWriter csv(os);
  reg.snapshot().write_csv(csv);
  const std::string text = os.str();
  // header + counter + one row per histogram bucket
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("c,counter"), std::string::npos);
  EXPECT_NE(text.find("h[0]"), std::string::npos);
  EXPECT_NE(text.find("h[1]"), std::string::npos);
}

TEST(TelemetryExportTest, HeatmapRendersOneLanePerRowAndMarksActivity) {
  TelemetryConfig config;
  config.channels = 2;
  config.pseudo_channels = 2;
  config.banks = 4;
  Telemetry telem(config);
  for (std::uint64_t i = 0; i < 100; ++i) telem.on_command(TraceCommand::kAct, 10 * i, 1, 0, 2, 5);
  std::ostringstream os;
  telem.render_act_heatmap(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("ch1.pc0"), std::string::npos);
  EXPECT_NE(text.find("ch0.pc1"), std::string::npos);
  // The hammered lane renders a max-intensity cell; idle lanes render blanks.
  EXPECT_NE(text.find('@'), std::string::npos);
}

TEST(TelemetryTest, TraceDropsSurfaceAsACounterAndSurviveAbsorb) {
  // Overflowing the ring must be *visible*: the synthesized
  // telemetry.trace_dropped counter carries the loss into every snapshot,
  // metrics export, and run report, and absorb() accumulates the worker
  // fleet's drops even though the absorbed rings themselves are gone.
  TelemetryConfig config;
  config.trace_capacity = 4;
  Telemetry telem(config);
  for (std::uint64_t i = 0; i < 6; ++i) telem.on_command(TraceCommand::kAct, i, 0, 0, 0, 1);
  EXPECT_EQ(telem.trace().dropped(), 2u);
  EXPECT_EQ(telem.trace_dropped_total(), 2u);
  EXPECT_DOUBLE_EQ(telem.snapshot().value_or("telemetry.trace_dropped", -1.0), 2.0);
  std::ostringstream os;
  telem.write_metrics_json(os);
  EXPECT_NE(os.str().find("\"telemetry.trace_dropped\":2"), std::string::npos) << os.str();

  // An aggregate with headroom absorbs the overflowed worker: the worker's
  // 4 retained events fit, but its 2 lost ones stay lost — the aggregate's
  // total must still account for them.
  TelemetryConfig roomy;
  roomy.trace_capacity = 16;
  Telemetry aggregate(roomy);
  aggregate.absorb(telem);
  EXPECT_EQ(aggregate.trace().dropped(), 0u);
  EXPECT_EQ(aggregate.trace_dropped_total(), 2u);
  EXPECT_DOUBLE_EQ(aggregate.snapshot().value_or("telemetry.trace_dropped", -1.0), 2.0);

  telem.reset();
  EXPECT_EQ(telem.trace_dropped_total(), 0u);
  EXPECT_DOUBLE_EQ(telem.snapshot().value_or("telemetry.trace_dropped", -1.0), 0.0);
}

TEST(TelemetryTest, UndroppedTraceStillReportsTheCounterAtZero) {
  // The counter is always present (dashboards key on it), just zero.
  Telemetry telem;
  telem.on_command(TraceCommand::kAct, 1, 0, 0, 0, 1);
  const MetricsSnapshot snap = telem.snapshot();
  const auto* entry = snap.find("telemetry.trace_dropped");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(entry->value, 0.0);
}

TEST(TelemetryTest, ResetClearsEverything) {
  Telemetry telem;
  telem.on_command(TraceCommand::kAct, 1, 0, 0, 0, 0);
  telem.on_hammer(100, 0, 0, 0, 10, 1000);
  telem.on_trr_trigger(1, 0, 0, 0, 1, true);
  telem.reset();
  EXPECT_EQ(telem.total_acts(), 0u);
  EXPECT_EQ(telem.trace().size(), 0u);
  EXPECT_TRUE(telem.trr_events().empty());
  EXPECT_DOUBLE_EQ(telem.snapshot().value_or("cmd.ACT", -1.0), 0.0);
}

// --- device + executor integration ---------------------------------------

class TelemetryIntegrationTest : public ::testing::Test {
protected:
  TelemetryIntegrationTest() : device_(hbm::DeviceConfig{}), executor_(device_) {
    device_.set_telemetry(&telem_);
  }

  bender::ProgramBuilder builder() {
    return bender::ProgramBuilder(device_.geometry(), device_.timings());
  }

  Telemetry telem_;
  hbm::Device device_;
  bender::Executor executor_;
};

TEST_F(TelemetryIntegrationTest, CommandMixMatchesHandWrittenProgram) {
  // init_row = ACT + one WR per column + PRE; read_row = ACT + one RD per
  // column + PRE; plus two explicit REFs. The recorded counters must equal
  // exactly this program-implied mix.
  const auto columns = device_.geometry().columns_per_row;
  auto b = builder();
  b.program().set_wide_register(0, core::make_row_image(device_.geometry(), 0x5A));
  b.init_row(0, 42, 0);
  b.read_row(0, 42);
  b.ref();
  b.sleep(static_cast<std::int64_t>(device_.timings().tRFC));
  b.ref();
  b.sleep(static_cast<std::int64_t>(device_.timings().tRFC));
  const auto result = executor_.run(b.take(), 0, 0, 0);

  const MetricsSnapshot snap = telem_.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("cmd.ACT", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(snap.value_or("cmd.PRE", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(snap.value_or("cmd.WR", -1.0), static_cast<double>(columns));
  EXPECT_DOUBLE_EQ(snap.value_or("cmd.RD", -1.0), static_cast<double>(columns));
  EXPECT_DOUBLE_EQ(snap.value_or("cmd.REF", -1.0), 2.0);

  // The executor's own accounting agrees with the device-side counters.
  EXPECT_EQ(result.metrics.acts, 2u);
  EXPECT_EQ(result.metrics.precharges, 2u);
  EXPECT_EQ(result.metrics.writes, columns);
  EXPECT_EQ(result.metrics.reads, columns);
  EXPECT_EQ(result.metrics.refreshes, 2u);
  EXPECT_GT(result.metrics.act_rate_hz, 0.0);
  EXPECT_GT(result.metrics.instructions_per_second, 0.0);
  EXPECT_GT(result.metrics.sim_wall_ms, 0.0);

  // All activity landed on bank 0 of channel 0 / pc 0.
  EXPECT_EQ(telem_.bank_act_count(0, 0, 0), 2u);
  EXPECT_EQ(telem_.total_acts(), 2u);
}

TEST_F(TelemetryIntegrationTest, HammerMacroCountsUnrolledActivationsOnHeatmap) {
  auto b = builder();
  b.ldi(0, 100);
  b.ldi(1, 102);
  b.hammer(0, 0, 1, 40);  // 40 double-sided pairs = 80 activations
  (void)executor_.run(b.take(), 0, 0, 0);
  EXPECT_DOUBLE_EQ(telem_.snapshot().value_or("cmd.ACT", -1.0), 80.0);
  EXPECT_EQ(telem_.bank_act_count(0, 0, 0), 80u);
  EXPECT_EQ(telem_.total_acts(), 80u);
  // The batch itself is one trace event carrying the activation count.
  const auto events = telem_.trace().in_order();
  bool saw_hammer = false;
  for (const auto& e : events) {
    if (e.command == TraceCommand::kHammer) {
      saw_hammer = true;
      EXPECT_EQ(e.arg, 80u);
    }
  }
  EXPECT_TRUE(saw_hammer);
}

TEST_F(TelemetryIntegrationTest, RefreshStreamsReportTrrTriggersAndPointer) {
  // Hammer to arm the TRR sampler, then issue two TRR periods' worth of
  // REFs: the proprietary engine (1 victim refresh per 17 REFs) must fire.
  auto b = builder();
  b.ldi(0, 100);
  b.ldi(1, 102);
  b.hammer(0, 0, 1, 5000);
  for (int i = 0; i < 40; ++i) {
    b.ref();
    b.sleep(static_cast<std::int64_t>(device_.timings().tRFC));
  }
  (void)executor_.run(b.take(), 0, 0, 0);
  EXPECT_GE(telem_.snapshot().value_or("trr.proprietary_triggers", -1.0), 1.0);
  EXPECT_FALSE(telem_.trr_events().empty());
  EXPECT_FALSE(telem_.trr_events().front().documented);
  // REF progress is visible as the per-lane refresh-pointer gauge.
  EXPECT_GT(telem_.snapshot().value_or("ref.pointer.ch0.pc0", -1.0), 0.0);
}

TEST_F(TelemetryIntegrationTest, BitFlipMaterializationEmitsFlipEvents) {
  // A large double-sided hammer of logical rows 100/101 (physical 100 and
  // 102) then an activation of the bracketed victim: the settle that
  // materializes the flips must emit flip events and counters.
  device_.set_temperature(85.0);
  auto b = builder();
  b.ldi(0, 100);
  b.ldi(1, 101);
  b.hammer(0, 0, 1, 1'000'000);
  const auto result = executor_.run(b.take(), 0, 0, 0);

  // Activate every logical row decoding near the victim band to settle it.
  hbm::Cycle now = result.end_cycle + device_.timings().tRP;
  const auto& t = device_.timings();
  for (std::uint32_t logical = 99; logical <= 103; ++logical) {
    device_.activate(hbm::BankAddress{0, 0, 0}, logical, now);
    device_.precharge(hbm::BankAddress{0, 0, 0}, now + t.tRAS);
    now += t.tRC + t.tRP;
  }

  EXPECT_FALSE(telem_.flip_events().empty());
  EXPECT_GT(telem_.snapshot().value_or("flip.rowhammer_bits", -1.0), 0.0);
  EXPECT_GT(telem_.snapshot().value_or("flip.events", -1.0), 0.0);
  const auto& e = telem_.flip_events().front();
  EXPECT_GT(e.rowhammer_bits, 0u);
  EXPECT_GT(e.disturbance, 0.0);
  const MetricsSnapshot snap = telem_.snapshot();
  const auto* hist = snap.find("flip.bits_per_event");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->value, 0.0);
}

TEST_F(TelemetryIntegrationTest, DetachedDeviceRecordsNothing) {
  device_.set_telemetry(nullptr);
  auto b = builder();
  b.ldi(0, 7);
  b.act(0, 0);
  b.sleep(static_cast<std::int64_t>(device_.timings().tRAS));
  b.pre(0);
  (void)executor_.run(b.take(), 0, 0, 0);
  EXPECT_EQ(telem_.total_acts(), 0u);
  EXPECT_EQ(telem_.trace().size(), 0u);
}

}  // namespace
}  // namespace rh::telemetry
