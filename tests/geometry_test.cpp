#include "hbm/geometry.hpp"
#include "hbm/address.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace rh::hbm {
namespace {

TEST(Geometry, PaperDeviceMatchesSection3) {
  const Geometry g = paper_geometry();
  EXPECT_EQ(g.channels, 8u);
  EXPECT_EQ(g.pseudo_channels_per_channel, 2u);
  EXPECT_EQ(g.banks_per_pseudo_channel, 16u);
  EXPECT_EQ(g.rows_per_bank, 16384u);
  EXPECT_EQ(g.columns_per_row, 32u);
}

TEST(Geometry, StackDensityIsFourGiB) {
  EXPECT_EQ(paper_geometry().stack_bytes(), 4ULL * 1024 * 1024 * 1024);
}

TEST(Geometry, RowIsOneKiB) {
  const Geometry g = paper_geometry();
  EXPECT_EQ(g.row_bytes(), 1024u);
  EXPECT_EQ(g.row_bits(), 8192u);
}

TEST(Geometry, TotalBanksMatchFigure6) {
  // Fig. 6 plots 256 banks: 8 channels x 2 pseudo channels x 16 banks.
  EXPECT_EQ(paper_geometry().total_banks(), 256u);
}

TEST(Geometry, ChannelsMapPairwiseOntoDies) {
  const Geometry g = paper_geometry();
  EXPECT_EQ(g.channels_per_die(), 2u);
  EXPECT_EQ(g.die_of_channel(0), 0u);
  EXPECT_EQ(g.die_of_channel(1), 0u);
  EXPECT_EQ(g.die_of_channel(6), 3u);
  EXPECT_EQ(g.die_of_channel(7), 3u);
}

TEST(Geometry, DieOfChannelRejectsOutOfRange) {
  EXPECT_THROW((void)paper_geometry().die_of_channel(8), common::PreconditionError);
}

TEST(Geometry, ValidateRejectsDegenerateShapes) {
  Geometry g = paper_geometry();
  g.channels = 0;
  EXPECT_THROW(g.validate(), common::PreconditionError);

  Geometry g2 = paper_geometry();
  g2.dies = 3;  // 8 channels not divisible by 3 dies
  EXPECT_THROW(g2.validate(), common::PreconditionError);
}

TEST(BankAddress, FlatIndexIsBijectiveOverTheStack) {
  const Geometry g = paper_geometry();
  std::vector<bool> seen(g.total_banks(), false);
  for (std::uint32_t ch = 0; ch < g.channels; ++ch) {
    for (std::uint32_t pc = 0; pc < g.pseudo_channels_per_channel; ++pc) {
      for (std::uint32_t bank = 0; bank < g.banks_per_pseudo_channel; ++bank) {
        const std::uint32_t flat = BankAddress{ch, pc, bank}.flat_index(g);
        ASSERT_LT(flat, seen.size());
        EXPECT_FALSE(seen[flat]);
        seen[flat] = true;
      }
    }
  }
}

TEST(BankAddress, ValidChecksEveryField) {
  const Geometry g = paper_geometry();
  EXPECT_TRUE((BankAddress{7, 1, 15}.valid(g)));
  EXPECT_FALSE((BankAddress{8, 0, 0}.valid(g)));
  EXPECT_FALSE((BankAddress{0, 2, 0}.valid(g)));
  EXPECT_FALSE((BankAddress{0, 0, 16}.valid(g)));
}

TEST(RowAddress, ValidChecksRowRange) {
  const Geometry g = paper_geometry();
  EXPECT_TRUE((RowAddress{{0, 0, 0}, 16383}.valid(g)));
  EXPECT_FALSE((RowAddress{{0, 0, 0}, 16384}.valid(g)));
}

}  // namespace
}  // namespace rh::hbm
