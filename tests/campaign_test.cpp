#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/progress.hpp"
#include "campaign/record_io.hpp"
#include "campaign/tail.hpp"
#include "core/spatial.hpp"
#include "resilience/fault.hpp"
#include "telemetry/span.hpp"

namespace rh::campaign {
namespace {

// The spatial_test quick survey, decomposed into small (<=8 rows) shards so
// the resume/failure tests get meaningful checkpoint granularity: 2 channels
// x 3 regions x 3072/512 rows sampled -> 18 shards of 2 rows each.
SweepSpec quick_sweep() {
  core::SurveyConfig survey;
  survey.channels = {0, 7};
  survey.row_stride = 512;
  survey.wcdp_by_ber = true;  // BER-only: fast
  SweepSpec spec = survey_sweep(hbm::DeviceConfig{}, survey, /*max_rows_per_shard=*/2);
  spec.settle_thermal = false;  // pin the temperature; skip the PID settle
  return spec;
}

CampaignConfig quiet_config() {
  CampaignConfig config;
  config.progress = false;
  return config;
}

void expect_records_equal(const std::vector<core::RowRecord>& a,
                          const std::vector<core::RowRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site.channel, b[i].site.channel) << "record " << i;
    EXPECT_EQ(a[i].site.pseudo_channel, b[i].site.pseudo_channel) << "record " << i;
    EXPECT_EQ(a[i].site.bank, b[i].site.bank) << "record " << i;
    EXPECT_EQ(a[i].physical_row, b[i].physical_row) << "record " << i;
    EXPECT_EQ(a[i].wcdp, b[i].wcdp) << "record " << i;
    for (std::size_t p = 0; p < core::kAllPatterns.size(); ++p) {
      EXPECT_EQ(a[i].ber[p].bit_errors, b[i].ber[p].bit_errors) << "record " << i;
      EXPECT_EQ(a[i].ber[p].bits_tested, b[i].ber[p].bits_tested) << "record " << i;
      EXPECT_EQ(a[i].ber[p].ones_to_zeros, b[i].ber[p].ones_to_zeros) << "record " << i;
      EXPECT_EQ(a[i].ber[p].zeros_to_ones, b[i].ber[p].zeros_to_ones) << "record " << i;
      // Bitwise double equality: journaled records must be exact.
      EXPECT_EQ(a[i].ber[p].elapsed_ms, b[i].ber[p].elapsed_ms) << "record " << i;
      EXPECT_EQ(a[i].hc_first[p], b[i].hc_first[p]) << "record " << i;
    }
  }
}

/// A scratch file deleted on scope exit.
class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

TEST(CampaignTest, ParallelMergeIsBitwiseIdenticalToSerial) {
  const SweepSpec spec = quick_sweep();
  ASSERT_GT(spec.shards.size(), 8u);

  CampaignConfig serial = quiet_config();
  serial.jobs = 1;
  Campaign one(serial);
  const auto flat1 = one.run(spec).flat();

  CampaignConfig wide = quiet_config();
  wide.jobs = 8;
  Campaign eight(wide);
  const auto flat8 = eight.run(spec).flat();

  expect_records_equal(flat1, flat8);
}

TEST(CampaignTest, MatchesSpatialSurveyOnOneHost) {
  core::SurveyConfig survey;
  survey.channels = {0, 7};
  survey.row_stride = 512;
  survey.wcdp_by_ber = true;
  SweepSpec spec = survey_sweep(hbm::DeviceConfig{}, survey);
  spec.settle_thermal = false;

  CampaignConfig config = quiet_config();
  config.jobs = 4;
  Campaign campaign(config);
  const auto flat = campaign.run(spec).flat();

  bender::BenderHost host{hbm::DeviceConfig{}};
  host.device().set_temperature(85.0);
  const auto serial = core::SpatialSurvey(host, survey).survey_rows();

  expect_records_equal(flat, serial);
}

TEST(CampaignTest, ResumesFromTruncatedJournalToIdenticalResult) {
  const SweepSpec spec = quick_sweep();
  const TempPath journal("campaign_test_resume.jsonl");

  CampaignConfig full = quiet_config();
  full.jobs = 2;
  full.checkpoint_path = journal.str();
  Campaign first(full);
  const auto complete = first.run(spec);
  EXPECT_EQ(complete.shards_run, spec.shards.size());
  EXPECT_EQ(complete.shards_skipped, 0u);

  // Simulate a kill mid-run: keep the header, half the shard lines, and a
  // torn final line (the write the kill interrupted).
  std::vector<std::string> lines;
  {
    std::ifstream in(journal.str());
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), spec.shards.size() + 1);
  const std::size_t keep_shards = spec.shards.size() / 2;
  {
    std::ofstream out(journal.str(), std::ios::trunc);
    for (std::size_t i = 0; i <= keep_shards; ++i) out << lines[i] << '\n';
    out << lines[keep_shards + 1].substr(0, lines[keep_shards + 1].size() / 2);
  }

  CampaignConfig resumed = quiet_config();
  resumed.jobs = 2;
  resumed.checkpoint_path = journal.str();
  resumed.resume = true;
  Campaign second(resumed);
  const auto result = second.run(spec);

  EXPECT_EQ(result.shards_skipped, keep_shards);
  EXPECT_EQ(result.shards_run, spec.shards.size() - keep_shards);
  expect_records_equal(result.flat(), complete.flat());

  // The finished journal is itself complete again: a third resume runs 0.
  Campaign third(resumed);
  const auto noop = third.run(spec);
  EXPECT_EQ(noop.shards_run, 0u);
  EXPECT_EQ(noop.shards_skipped, spec.shards.size());
  expect_records_equal(noop.flat(), complete.flat());
}

TEST(CampaignTest, RefusesJournalFromDifferentSweep) {
  const SweepSpec spec = quick_sweep();
  const TempPath journal("campaign_test_mismatch.jsonl");

  CampaignConfig config = quiet_config();
  config.checkpoint_path = journal.str();
  Campaign first(config);
  (void)first.run(spec);

  // Same geometry, different stride -> different plan, different hash.
  core::SurveyConfig other_survey;
  other_survey.channels = {0, 7};
  other_survey.row_stride = 256;
  other_survey.wcdp_by_ber = true;
  SweepSpec other = survey_sweep(hbm::DeviceConfig{}, other_survey, 2);
  other.settle_thermal = false;
  ASSERT_NE(sweep_config_hash(spec), sweep_config_hash(other));

  config.resume = true;
  Campaign second(config);
  EXPECT_THROW((void)second.run(other), common::ConfigError);
}

TEST(CampaignTest, FatalShardFailureIsIsolatedWithoutRetries) {
  SweepSpec spec = quick_sweep();
  // Poison one shard: a channel the geometry does not have makes every
  // attempt throw inside the worker.
  const std::size_t poisoned = 3;
  spec.shards[poisoned].site.channel = 99;

  CampaignConfig config = quiet_config();
  config.jobs = 4;
  config.fail_on_shard_error = false;
  Campaign campaign(config);
  const auto result = campaign.run(spec);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].shard, poisoned);
  // A bad channel is a deterministic (fatal) error: retrying cannot help,
  // so the shard is isolated without spending the retry budget.
  EXPECT_EQ(result.shards_retried, 0u);
  EXPECT_TRUE(result.per_shard[poisoned].empty());
  // Every other shard still completed.
  for (std::size_t i = 0; i < result.per_shard.size(); ++i) {
    if (i != poisoned) {
      EXPECT_FALSE(result.per_shard[i].empty()) << "shard " << i;
    }
  }

  CampaignConfig strict = quiet_config();
  strict.jobs = 4;
  Campaign failing(strict);
  EXPECT_THROW((void)failing.run(spec), CampaignError);
}

TEST(CampaignTest, WorkerTelemetryIsAbsorbedIntoAggregate) {
  const SweepSpec spec = quick_sweep();
  telemetry::Telemetry aggregate{telemetry::TelemetryConfig{}};

  CampaignConfig config = quiet_config();
  config.jobs = 4;
  Campaign campaign(config, &aggregate);
  const auto result = campaign.run(spec);

  // ACTs from every worker host landed in the aggregate heatmap, and the
  // campaign counters were merged into the aggregate registry.
  EXPECT_GT(aggregate.total_acts(), 0u);
  const auto snap = aggregate.metrics().snapshot();
  EXPECT_EQ(snap.value_or("campaign.shards_done", -1.0),
            static_cast<double>(spec.shards.size()));
  EXPECT_EQ(result.failures.size(), 0u);
}

TEST(ProgressTest, EtaTextGuardsZeroThroughput) {
  // No executed shards (all resumed) or a zero/garbage clock must render
  // the explicit no-signal form, never inf/nan seconds.
  EXPECT_EQ(eta_text(10.0, 0, 5), "eta --");
  EXPECT_EQ(eta_text(0.0, 3, 5), "eta --");
  EXPECT_EQ(eta_text(-1.0, 3, 5), "eta --");
  // 3 shards in 6 s -> 2 s each -> 4 s for the remaining 2.
  EXPECT_EQ(eta_text(6.0, 3, 2), "eta 4.0s");
  EXPECT_EQ(eta_text(90.0, 1, 2), "eta 3m00s");
  EXPECT_EQ(eta_text(10.0, 5, 0), "eta 0.0s");
}

TEST(ProgressTest, FormatSecondsSwitchesToMinutesAt90s) {
  EXPECT_EQ(format_seconds(0.0), "0.0s");
  EXPECT_EQ(format_seconds(89.94), "89.9s");
  EXPECT_EQ(format_seconds(90.0), "1m30s");
  EXPECT_EQ(format_seconds(3601.0), "60m01s");
}

TEST(CampaignTest, MetricsStreamRecordsTheRunAndFinishes) {
  const SweepSpec spec = quick_sweep();
  const TempPath stream("campaign_test_stream.jsonl");

  CampaignConfig config = quiet_config();
  config.jobs = 4;
  config.metrics_stream_path = stream.str();
  config.stream_cycle_cadence = 1 << 20;  // fine cadence: mid-attempt samples too
  Campaign campaign(config);
  const auto result = campaign.run(spec);
  EXPECT_TRUE(result.failures.empty());

  const MetricsStreamData data = read_metrics_stream(stream.str());
  EXPECT_TRUE(data.has_header);
  EXPECT_EQ(data.seed, spec.device.fault.seed);
  EXPECT_EQ(data.config_hash, sweep_config_hash(spec));
  EXPECT_EQ(data.shards, spec.shards.size());
  EXPECT_EQ(data.jobs, 4u);
  EXPECT_EQ(data.cycle_cadence, std::uint64_t{1} << 20);
  EXPECT_FALSE(data.torn);
  // Every attempt closes with a cycles sample, and the stream ends with the
  // final sample carrying the shard totals.
  EXPECT_GE(data.cycles_samples, spec.shards.size());
  EXPECT_GT(data.device_counters.at("cmd.ACT"), 0u);
  EXPECT_TRUE(data.finished);
  EXPECT_EQ(data.final_done, spec.shards.size());
  EXPECT_EQ(data.final_failed, 0u);
  EXPECT_EQ(data.final_total, spec.shards.size());
}

TEST(CampaignTest, SpanForestLinksARetriedFaultInjectedShardCausally) {
  SweepSpec spec = quick_sweep();
  spec.shards.resize(4);

  CampaignConfig config = quiet_config();
  config.jobs = 1;
  config.retries = 2;
  config.retry_policy.max_attempts = 2;
  Campaign campaign(config);

  // Only the FIRST host built gets an injector whose script times out both
  // upload attempts: shard 0's first attempt aborts (TransportError), the
  // campaign retries it on a fresh, injector-free host, and every later
  // shard runs clean — one retried, fault-marked shard in the forest.
  std::unique_ptr<resilience::FaultInjector> injector;
  campaign.set_host_factory([&](const SweepSpec& s) {
    auto host = std::make_unique<bender::BenderHost>(s.device);
    host->device().set_temperature(s.temperature_c);
    if (injector == nullptr) {
      resilience::FaultPlan plan;
      plan.script = {{resilience::FaultKind::kUploadTimeout, 0},
                     {resilience::FaultKind::kUploadTimeout, 1}};
      injector = std::make_unique<resilience::FaultInjector>(plan);
      host->set_fault_injector(injector.get());
    }
    return host;
  });
  const auto result = campaign.run(spec);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.shards_retried, 1u);
  ASSERT_FALSE(result.timings.empty());
  EXPECT_EQ(result.timings[0].attempts, 2u);
  EXPECT_EQ(result.timings[0].span, telemetry::span_id(0, 0, 0))
      << "the timing row must link into the span forest";

  const telemetry::SpanSheet& spans = campaign.spans();
  EXPECT_EQ(spans.dropped(), 0u);
  const auto find = [&](std::uint64_t id) -> const telemetry::Span* {
    for (const auto& s : spans.spans()) {
      if (s.id == id) return &s;
    }
    return nullptr;
  };
  // Root -> shard 0 -> two attempts; the fault marks hang inside attempt 1.
  ASSERT_NE(find(telemetry::kCampaignSpanId), nullptr);
  EXPECT_EQ(find(telemetry::kCampaignSpanId)->kind, telemetry::SpanKind::kCampaign);
  const telemetry::Span* shard0 = find(telemetry::span_id(0, 0, 0));
  ASSERT_NE(shard0, nullptr);
  EXPECT_EQ(shard0->parent, telemetry::kCampaignSpanId);
  const telemetry::Span* attempt1 = find(telemetry::span_id(0, 1, 0));
  const telemetry::Span* attempt2 = find(telemetry::span_id(0, 2, 0));
  ASSERT_NE(attempt1, nullptr);
  ASSERT_NE(attempt2, nullptr);
  EXPECT_EQ(attempt1->parent, shard0->id);
  EXPECT_EQ(attempt2->parent, shard0->id);
  std::size_t faults = 0;
  std::size_t recoveries = 0;
  for (const auto& s : spans.spans()) {
    if (s.kind == telemetry::SpanKind::kFault) {
      ++faults;
      EXPECT_EQ(s.shard, 0u);
      EXPECT_EQ(s.attempt, 1u) << "faults were scripted for the first attempt only";
      EXPECT_EQ(s.arg, static_cast<std::uint32_t>(resilience::FaultKind::kUploadTimeout));
    }
    if (s.kind == telemetry::SpanKind::kRecovery) ++recoveries;
    EXPECT_FALSE(s.open) << "a finished campaign leaves no span open";
  }
  EXPECT_EQ(faults, 2u) << "both scripted timeouts must be marked";
  EXPECT_GE(recoveries, 1u) << "the abort resolution must be marked";
  // Canonical order places every parent before its children.
  for (const auto& s : spans.spans()) {
    if (s.parent == 0) continue;
    const telemetry::Span* parent = find(s.parent);
    ASSERT_NE(parent, nullptr) << "dangling parent 0x" << std::hex << s.parent;
    EXPECT_LE(parent - spans.spans().data(), &s - spans.spans().data());
  }

  // The Chrome export round-trips the tree: one "b"/"e" pair per interval
  // span, one instant "n" per mark, parents rendered as hex ids.
  std::ostringstream os;
  telemetry::write_chrome_spans(os, spans);
  const std::string json = os.str();
  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  const std::size_t marks = faults + recoveries;
  EXPECT_EQ(count("\"ph\":\"b\""), spans.spans().size() - marks);
  EXPECT_EQ(count("\"ph\":\"b\""), count("\"ph\":\"e\""));
  EXPECT_EQ(count("\"ph\":\"n\""), marks);
  char shard_hex[32];
  std::snprintf(shard_hex, sizeof shard_hex, "\"parent\":\"0x%llx\"",
                static_cast<unsigned long long>(shard0->id));
  EXPECT_NE(json.find(shard_hex), std::string::npos);
}

TEST(RecordIoTest, RowRecordRoundTripsExactly) {
  core::RowRecord rec;
  rec.site = core::Site{7, 1, 3};
  rec.physical_row = 16383;
  rec.wcdp = core::DataPattern::kCheckered1;
  for (std::size_t p = 0; p < core::kAllPatterns.size(); ++p) {
    rec.ber[p].bit_errors = 1234 + p;
    rec.ber[p].bits_tested = 1u << 20;
    rec.ber[p].ones_to_zeros = 1000 + p;
    rec.ber[p].zeros_to_ones = 234;
    rec.ber[p].elapsed_ms = 26.999999999999996 + static_cast<double>(p) * 0.1;
  }
  rec.hc_first[0] = 14531;
  rec.hc_first[1] = std::nullopt;
  rec.hc_first[2] = 262144;
  rec.hc_first[3] = 1;

  std::string json;
  append_row_record_json(json, rec);
  const auto parsed = parse_row_record(parse_json(json, "test record"));

  expect_records_equal({rec}, {parsed});
}

TEST(RecordIoTest, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{\"a\":", "torn"), common::ConfigError);
  EXPECT_THROW((void)parse_json("{\"a\":1} trailing", "trailing"), common::ConfigError);
  const auto missing = parse_json("{\"ch\":0}", "incomplete record");
  EXPECT_THROW((void)parse_row_record(missing), common::ConfigError);
}

TEST(JournalTest, HeaderMismatchNamesTheField) {
  const TempPath path("campaign_test_header.jsonl");
  const JournalHeader header{42, 0xabcdef, 7};
  {
    JournalWriter writer(path.str(), header);
    writer.append_shard(3, {});
  }
  JournalReader reader(path.str());
  EXPECT_EQ(reader.header().seed, 42u);
  EXPECT_EQ(reader.header().config_hash, 0xabcdefu);
  EXPECT_EQ(reader.header().shard_count, 7u);
  ASSERT_EQ(reader.shards().size(), 1u);
  EXPECT_NO_THROW(reader.require_matches(header));

  JournalHeader wrong_seed = header;
  wrong_seed.seed = 43;
  EXPECT_THROW(reader.require_matches(wrong_seed), common::ConfigError);
  JournalHeader wrong_hash = header;
  wrong_hash.config_hash = 1;
  EXPECT_THROW(reader.require_matches(wrong_hash), common::ConfigError);
  JournalHeader wrong_count = header;
  wrong_count.shard_count = 8;
  EXPECT_THROW(reader.require_matches(wrong_count), common::ConfigError);
}

// Adversarial journals for JournalReader::outcomes(): real kill/retry
// interleavings produce duplicate completions, failure-then-success for the
// same shard, and annotation-free lines — the reader must keep the full
// per-line history (report fodder) while shards() deduplicates.

core::RowRecord minimal_record(std::uint32_t row) {
  core::RowRecord record;
  record.site = {0, 0, 1};
  record.physical_row = row;
  return record;
}

TEST(JournalTest, OutcomesKeepDuplicateCompletionsButShardsLastWins) {
  // A shard journaled twice (kill after fsync, resume re-ran it): outcomes()
  // reports both lines in file order; shards() keeps only the last.
  const TempPath path("campaign_test_dup.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_shard(5, {minimal_record(10)}, 100.0, 1);
    writer.append_shard(5, {minimal_record(10), minimal_record(11)}, 250.0, 2);
  }
  JournalReader reader(path.str());
  ASSERT_EQ(reader.outcomes().size(), 2u);
  EXPECT_EQ(reader.outcomes()[0].shard, 5u);
  EXPECT_EQ(reader.outcomes()[0].records, 1u);
  EXPECT_EQ(reader.outcomes()[1].records, 2u);
  EXPECT_EQ(reader.outcomes()[1].attempts, 2u);
  ASSERT_EQ(reader.shards().size(), 1u);
  EXPECT_EQ(reader.shards().at(5).size(), 2u) << "last completion must win";
  EXPECT_EQ(reader.shards().at(5)[1].physical_row, 11u);
}

TEST(JournalTest, FailureThenSuccessForTheSameShard) {
  // Retry exhausted on one rig, then a resume completed the shard: the
  // failure line stays in the history but must not mask the completion.
  const TempPath path("campaign_test_fail_then_ok.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_failure(3, 2, "transport: injected timeout");
    writer.append_shard(3, {minimal_record(7)}, 90.0, 1);
  }
  JournalReader reader(path.str());
  ASSERT_EQ(reader.outcomes().size(), 2u);
  EXPECT_FALSE(reader.outcomes()[0].ok);
  EXPECT_EQ(reader.outcomes()[0].attempts, 2u);
  EXPECT_EQ(reader.outcomes()[0].error, "transport: injected timeout");
  EXPECT_EQ(reader.outcomes()[0].records, 0u);
  EXPECT_TRUE(reader.outcomes()[1].ok);
  ASSERT_EQ(reader.shards().count(3), 1u) << "failure line must not mask the completion";
  EXPECT_EQ(reader.shards().at(3)[0].physical_row, 7u);
}

TEST(JournalTest, SuccessThenFailureStillCountsAsCompleted) {
  // The reverse interleaving (completion journaled, a later rig failed on a
  // stale re-run): the shard stays completed — resume must not re-run it.
  const TempPath path("campaign_test_ok_then_fail.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_shard(6, {minimal_record(9)});
    writer.append_failure(6, 1, "late failure");
  }
  JournalReader reader(path.str());
  ASSERT_EQ(reader.outcomes().size(), 2u);
  EXPECT_EQ(reader.shards().count(6), 1u);
}

TEST(JournalTest, MissingOptionalAnnotationsParseWithDefaults) {
  // Pre-annotation journals carry no attempts/wall_ms; hand-build one line
  // per optional-field combination and check the documented defaults.
  const TempPath path("campaign_test_optional.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)});           // no annotations
    writer.append_shard(1, {minimal_record(2)}, 42.5, 3);  // both annotations
  }
  JournalReader reader(path.str());
  ASSERT_EQ(reader.outcomes().size(), 2u);
  EXPECT_EQ(reader.outcomes()[0].attempts, 1u);
  EXPECT_LT(reader.outcomes()[0].wall_ms, 0.0) << "absent wall_ms reads back negative";
  EXPECT_EQ(reader.outcomes()[1].attempts, 3u);
  EXPECT_EQ(reader.outcomes()[1].wall_ms, 42.5);
}

TEST(JournalTest, OutcomesIgnoreTornTrailingLineButKeepIntactPrefix) {
  const TempPath path("campaign_test_torn.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)}, 10.0, 1);
  }
  const std::uint64_t intact = JournalReader(path.str()).intact_bytes();
  {
    std::ofstream out(path.str(), std::ios::app);
    out << "{\"shard\":1,\"records\":[{\"ch\"";  // the kill mid-write
  }
  JournalReader reader(path.str());
  ASSERT_EQ(reader.outcomes().size(), 1u);
  EXPECT_EQ(reader.outcomes()[0].shard, 0u);
  EXPECT_EQ(reader.intact_bytes(), intact) << "torn tail must not extend the intact prefix";
}

}  // namespace
}  // namespace rh::campaign
