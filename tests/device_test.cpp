#include "hbm/device.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace rh::hbm {
namespace {

class DeviceTest : public ::testing::Test {
protected:
  DeviceTest() : device_(DeviceConfig{}) {}

  /// Writes one column of `row` with `value` through the command interface.
  Cycle write_col0(const BankAddress& bank, std::uint32_t row, std::uint8_t value, Cycle t) {
    device_.activate(bank, row, t);
    std::vector<std::uint8_t> burst(device_.geometry().bytes_per_column, value);
    device_.write(bank, 0, burst, t + device_.timings().tRCD);
    device_.precharge(bank, t + device_.timings().tRCD + device_.timings().tWR);
    return t + device_.timings().tRC + device_.timings().tWR;
  }

  Device device_;
};

TEST_F(DeviceTest, CommandRoundTripThroughHierarchy) {
  const BankAddress bank{3, 1, 7};
  Cycle t = write_col0(bank, 42, 0x5A, 1000);
  device_.activate(bank, 42, t);
  std::vector<std::uint8_t> burst(device_.geometry().bytes_per_column);
  device_.read(bank, 0, t + device_.timings().tRCD, burst);
  for (const auto b : burst) EXPECT_EQ(b, 0x5A);
}

TEST_F(DeviceTest, ChannelsAndPseudoChannelsAreIsolated) {
  const BankAddress a{0, 0, 0};
  const BankAddress b{0, 1, 0};
  const BankAddress c{1, 0, 0};
  Cycle t = write_col0(a, 10, 0xAA, 1000);
  // Same bank index in other channel/pc still has power-on content.
  for (const auto& addr : {b, c}) {
    device_.activate(addr, 10, t);
    std::vector<std::uint8_t> burst(device_.geometry().bytes_per_column);
    device_.read(addr, 0, t + device_.timings().tRCD, burst);
    bool all_aa = true;
    for (const auto byte : burst) all_aa &= (byte == 0xAA);
    EXPECT_FALSE(all_aa);
    device_.precharge(addr, t + device_.timings().tRAS + device_.timings().tRTP);
    t += 2 * device_.timings().tRC;
  }
}

TEST_F(DeviceTest, MrsTogglesEcc) {
  EXPECT_TRUE(device_.mode_registers(0).ecc_enabled());
  device_.mode_register_set(0, ModeRegisters::kEccRegister, 0x0, 100);
  EXPECT_FALSE(device_.mode_registers(0).ecc_enabled());
  EXPECT_TRUE(device_.mode_registers(1).ecc_enabled());  // per channel
}

TEST_F(DeviceTest, RefreshRequiresClosedBanks) {
  device_.activate(BankAddress{0, 0, 0}, 5, 1000);
  EXPECT_THROW(device_.refresh(0, 0, 2000), common::ProtocolError);
  device_.precharge(BankAddress{0, 0, 0}, 1000 + device_.timings().tRAS);
  device_.refresh(0, 0, 2000);
}

TEST_F(DeviceTest, ProprietaryTrrClearsVictimDisturbanceViaRefresh) {
  const BankAddress bank{0, 0, 0};
  const auto& trr_cfg = device_.config().trr;
  Cycle t = 1000;
  // Hammer, then feed REFs until the one-in-17 TRR slot fires.
  device_.hammer_pair(bank, 99, 101, 50'000, device_.timings().tRAS,
                      t + 100'000ULL * device_.timings().tRC);
  t += 100'000ULL * device_.timings().tRC + device_.timings().tRP;
  const std::uint32_t victim_physical = device_.scrambler().logical_to_physical(100);
  ASSERT_GT(device_.bank(bank).disturbance_of_physical(victim_physical), 0.0);
  for (std::uint32_t ref = 0; ref < trr_cfg.period; ++ref) {
    device_.refresh(0, 0, t);
    t += device_.timings().tRFC + 1;
  }
  EXPECT_DOUBLE_EQ(device_.bank(bank).disturbance_of_physical(victim_physical), 0.0);
}

TEST_F(DeviceTest, DocumentedTrrModeRefreshesAnnouncedAggressorsVictims) {
  // Engage the documented JEDEC TRR mode on bank 2 of pseudo channel 0.
  device_.mode_register_set(0, ModeRegisters::kTrrRegister, 0x10 | 0x2, 100);
  const BankAddress bank{0, 0, 2};
  Cycle t = 1000;
  device_.hammer_pair(bank, 99, 101, 50'000, device_.timings().tRAS,
                      t + 100'000ULL * device_.timings().tRC);
  t += 100'000ULL * device_.timings().tRC + device_.timings().tRP;
  // Announce the aggressors with ordinary ACTs, then one REF.
  device_.activate(bank, 99, t);
  device_.precharge(bank, t + device_.timings().tRAS);
  t += device_.timings().tRC;
  device_.refresh(0, 0, t);
  const std::uint32_t victim_physical = device_.scrambler().logical_to_physical(100);
  EXPECT_DOUBLE_EQ(device_.bank(bank).disturbance_of_physical(victim_physical), 0.0);
}

TEST_F(DeviceTest, TemperatureIsDeviceGlobal) {
  device_.set_temperature(45.0);
  EXPECT_DOUBLE_EQ(device_.temperature(), 45.0);
}

TEST_F(DeviceTest, RejectsInvalidAddresses) {
  EXPECT_THROW(device_.activate(BankAddress{8, 0, 0}, 0, 100), common::PreconditionError);
  EXPECT_THROW(device_.activate(BankAddress{0, 2, 0}, 0, 100), common::PreconditionError);
  EXPECT_THROW(device_.activate(BankAddress{0, 0, 16}, 0, 100), common::PreconditionError);
}

TEST_F(DeviceTest, ScramblerIsAppliedOnTheRowPath) {
  // With the default pair-swap mapping, logical 1 decodes to physical 2:
  // hammering logical rows 1's *logical* neighbours does not bracket it.
  const auto& s = device_.scrambler();
  EXPECT_EQ(s.kind(), ScrambleKind::kPairSwap);
  EXPECT_EQ(s.logical_to_physical(1), 2u);
  const BankAddress bank{0, 0, 0};
  device_.activate(bank, 1, 1000);  // physical 2: disturbs physical 1 and 3
  const auto& b = device_.bank(bank);
  EXPECT_GT(b.disturbance_of_physical(1), 0.0);
  EXPECT_GT(b.disturbance_of_physical(3), 0.0);
  EXPECT_DOUBLE_EQ(b.disturbance_of_physical(2), 0.0);
}

TEST_F(DeviceTest, RefreshSweepCoversTheBankOncePerWindow) {
  // 8192 REFs refresh 2 rows per bank each: a full sweep of 16384 rows.
  const auto& t = device_.timings();
  EXPECT_EQ(t.refs_per_window * (device_.geometry().rows_per_bank / t.refs_per_window),
            device_.geometry().rows_per_bank);
}

}  // namespace
}  // namespace rh::hbm
