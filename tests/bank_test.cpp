#include "hbm/bank.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "fault/process_variation.hpp"
#include "fault/retention_model.hpp"
#include "fault/rowhammer_model.hpp"
#include "hbm/subarray.hpp"

namespace rh::hbm {
namespace {

/// Standalone bank rig: geometry + models + one bank, with an identity
/// scrambler so physical == logical and neighbourhoods are easy to reason
/// about.
struct BankRig {
  explicit BankRig(fault::FaultConfig cfg = {}, std::uint32_t channel = 0)
      : geometry(paper_geometry()),
        timings(paper_timings()),
        scrambler(ScrambleKind::kIdentity, geometry.rows_per_bank),
        layout(SubarrayLayout::paper_layout(geometry.rows_per_bank)),
        variation(cfg, geometry),
        rh_model(cfg, geometry, layout, variation),
        retention(cfg, geometry),
        bank(geometry, timings,
             fault::BankContext::from(geometry, BankAddress{channel, 0, 0}), scrambler, rh_model,
             retention) {}

  Geometry geometry;
  TimingParams timings;
  RowScrambler scrambler;
  SubarrayLayout layout;
  fault::ProcessVariation variation;
  fault::RowHammerModel rh_model;
  fault::RetentionModel retention;
  Bank bank;

  /// Writes `value` to every column of `row` through the protocol.
  Cycle write_row(std::uint32_t row, std::uint8_t value, Cycle t) {
    bank.activate(row, t, 85.0);
    t += timings.tRCD;
    std::vector<std::uint8_t> burst(geometry.bytes_per_column, value);
    for (std::uint32_t col = 0; col < geometry.columns_per_row; ++col) {
      bank.write(col, burst, t);
      t += timings.tCCD;
    }
    t += timings.tWR;
    bank.precharge(t, 85.0);
    return t + timings.tRP;
  }

  /// Reads the whole row; returns total bits mismatching `expected`.
  std::uint64_t read_row_flips(std::uint32_t row, std::uint8_t expected, Cycle& t,
                               bool ecc = false) {
    bank.activate(row, t, 85.0);
    t += timings.tRCD;
    std::vector<std::uint8_t> burst(geometry.bytes_per_column);
    std::uint64_t flips = 0;
    for (std::uint32_t col = 0; col < geometry.columns_per_row; ++col) {
      bank.read(col, t, ecc, burst);
      for (const std::uint8_t b : burst) {
        flips += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(b ^ expected)));
      }
      t += timings.tCCD;
    }
    t += timings.tRTP;
    bank.precharge(t, 85.0);
    t += timings.tRP;
    return flips;
  }
};

TEST(Bank, WriteReadRoundTrip) {
  BankRig rig;
  Cycle t = rig.write_row(100, 0xA5, 1000);
  EXPECT_EQ(rig.read_row_flips(100, 0xA5, t), 0u);
}

TEST(Bank, UnwrittenRowsHaveStableDefaultContent) {
  BankRig rig1;
  BankRig rig2;
  Cycle t1 = 1000;
  Cycle t2 = 1000;
  rig1.bank.activate(42, t1, 85.0);
  rig2.bank.activate(42, t2, 85.0);
  std::vector<std::uint8_t> a(rig1.geometry.bytes_per_column);
  std::vector<std::uint8_t> b(rig2.geometry.bytes_per_column);
  rig1.bank.read(0, t1 + rig1.timings.tRCD, false, a);
  rig2.bank.read(0, t2 + rig2.timings.tRCD, false, b);
  EXPECT_EQ(a, b);  // power-on content is deterministic in the seed
}

TEST(Bank, DefaultContentDiffersAcrossRows) {
  BankRig rig;
  Cycle t = 1000;
  std::vector<std::uint8_t> a(rig.geometry.bytes_per_column);
  std::vector<std::uint8_t> b(rig.geometry.bytes_per_column);
  rig.bank.activate(1, t, 85.0);
  rig.bank.read(0, t + rig.timings.tRCD, false, a);
  rig.bank.precharge(t + rig.timings.tRAS + rig.timings.tRTP, 85.0);
  t += 2 * rig.timings.tRC;
  rig.bank.activate(5, t, 85.0);
  rig.bank.read(0, t + rig.timings.tRCD, false, b);
  EXPECT_NE(a, b);
}

TEST(Bank, ActivateDisturbsNeighboursWithDistanceWeights) {
  BankRig rig;
  rig.bank.activate(100, 1000, 85.0);
  const auto& cfg = rig.rh_model.config();
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(99), cfg.distance1_weight);
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(101), cfg.distance1_weight);
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(98), cfg.distance2_weight);
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(102), cfg.distance2_weight);
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(97), 0.0);
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(100), 0.0);  // own ACT restores
}

TEST(Bank, DisturbanceDoesNotCrossSubarrayBoundaries) {
  BankRig rig;
  // Physical row 832 starts the second subarray in the paper layout.
  rig.bank.activate(832, 1000, 85.0);
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(831), 0.0);
  EXPECT_GT(rig.bank.disturbance_of_physical(833), 0.0);
}

TEST(Bank, ActivatingTheVictimResetsItsDisturbance) {
  BankRig rig;
  Cycle t = 1000;
  rig.bank.activate(100, t, 85.0);
  rig.bank.precharge(t + rig.timings.tRAS, 85.0);
  ASSERT_GT(rig.bank.disturbance_of_physical(101), 0.0);
  t += rig.timings.tRAS + rig.timings.tRP;
  rig.bank.activate(101, t, 85.0);  // the victim itself
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(101), 0.0);
}

TEST(Bank, HammerBatchAccumulatesOnVictim) {
  BankRig rig;
  const std::uint64_t count = 5000;
  rig.bank.hammer_pair(100, 102, count, rig.timings.tRAS,
                       1000 + count * 2 * rig.timings.tRC, 85.0);
  const auto& cfg = rig.rh_model.config();
  // Victim at 101 is distance 1 from both aggressors.
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(101),
                   2.0 * count * cfg.distance1_weight);
  // Aggressors end the batch restored.
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(100), 0.0);
  EXPECT_DOUBLE_EQ(rig.bank.disturbance_of_physical(102), 0.0);
  EXPECT_EQ(rig.bank.stats().activates, 2 * count);
}

TEST(Bank, HammerBatchMatchesUnrolledActPreLoop) {
  // The HAMMER macro-op must be observationally equivalent to the raw
  // ACT/PRE loop: same victim disturbance, hence identical flips.
  fault::FaultConfig weak;
  weak.hc0 = 2000.0;  // tiny thresholds so a short loop already flips
  BankRig batch_rig(weak);
  BankRig loop_rig(weak);
  const std::uint32_t count = 600;

  Cycle t = 1000;
  batch_rig.write_row(101, 0x00, t);
  t = 200'000;
  batch_rig.bank.hammer_pair(100, 102, count, batch_rig.timings.tRAS,
                             t + count * 2 * batch_rig.timings.tRC, 85.0);

  Cycle t2 = 1000;
  loop_rig.write_row(101, 0x00, t2);
  t2 = 200'000;
  for (std::uint32_t i = 0; i < count; ++i) {
    for (const std::uint32_t row : {100u, 102u}) {
      loop_rig.bank.activate(row, t2, 85.0);
      loop_rig.bank.precharge(t2 + loop_rig.timings.tRAS, 85.0);
      t2 += loop_rig.timings.tRAS + loop_rig.timings.tRP;
    }
  }

  EXPECT_DOUBLE_EQ(batch_rig.bank.disturbance_of_physical(101),
                   loop_rig.bank.disturbance_of_physical(101));

  Cycle tb = 10'000'000;
  Cycle tl = 10'000'000;
  EXPECT_EQ(batch_rig.read_row_flips(101, 0x00, tb), loop_rig.read_row_flips(101, 0x00, tl));
}

TEST(Bank, HammeringInducesFlipsAboveThreshold) {
  BankRig rig(fault::FaultConfig{}, /*channel=*/7);
  Cycle t = rig.write_row(101, 0x00, 1000);
  t = rig.write_row(100, 0xFF, t);
  t = rig.write_row(102, 0xFF, t);
  rig.bank.hammer_pair(100, 102, 262'144, rig.timings.tRAS,
                       t + 262'144ULL * 2 * rig.timings.tRC, 85.0);
  t += 262'144ULL * 2 * rig.timings.tRC + rig.timings.tRP;
  EXPECT_GT(rig.read_row_flips(101, 0x00, t), 0u);
  EXPECT_GT(rig.bank.stats().rowhammer_flips, 0u);
}

TEST(Bank, RowPressOnTimeAddsExtraDisturbance) {
  BankRig rig;
  Cycle t = 1000;
  rig.bank.activate(100, t, 85.0);
  rig.bank.precharge(t + 16 * rig.timings.tRAS, 85.0);  // held open long
  const double pressed = rig.bank.disturbance_of_physical(101);

  BankRig rig2;
  rig2.bank.activate(100, 1000, 85.0);
  rig2.bank.precharge(1000 + rig2.timings.tRAS, 85.0);  // minimal on-time
  const double minimal = rig2.bank.disturbance_of_physical(101);

  EXPECT_GT(pressed, minimal * 1.5);
}

TEST(Bank, RetentionFlipsAppearAfterLongUnrefreshedWait) {
  BankRig rig;
  Cycle t = rig.write_row(300, 0x00, 1000);
  t += ms_to_cycles(60'000.0);  // 60 s at 85 degC: deep into the weak tail
  const std::uint64_t flips = rig.read_row_flips(300, 0x00, t);
  EXPECT_GT(flips, 0u);
  EXPECT_GT(rig.bank.stats().retention_flips, 0u);
}

TEST(Bank, RefreshPreventsRetentionFlips) {
  BankRig rig;
  Cycle t = rig.write_row(300, 0x00, 1000);
  // Refresh every ~16 ms for 40 simulated refresh windows.
  for (int i = 0; i < 40; ++i) {
    t += ms_to_cycles(16.0);
    rig.bank.refresh_physical_row(300, t, 85.0);
  }
  EXPECT_EQ(rig.read_row_flips(300, 0x00, t), 0u);
}

TEST(Bank, EccMasksSparseFlipsOnReads) {
  fault::FaultConfig weak;
  weak.hc0 = 1.0e6;
  BankRig no_ecc(weak, 0);
  BankRig with_ecc(weak, 0);

  const auto run = [&](BankRig& rig, bool ecc) {
    Cycle t = rig.write_row(101, 0x00, 1000);
    t = rig.write_row(100, 0xFF, t);
    t = rig.write_row(102, 0xFF, t);
    // Light hammering: few flips, mostly isolated single-bit-per-word.
    rig.bank.hammer_pair(100, 102, 9'000, rig.timings.tRAS,
                         t + 9'000ULL * 2 * rig.timings.tRC, 85.0);
    t += 9'000ULL * 2 * rig.timings.tRC + rig.timings.tRP;
    return rig.read_row_flips(101, 0x00, t, ecc);
  };

  const std::uint64_t raw = run(no_ecc, false);
  const std::uint64_t corrected = run(with_ecc, true);
  ASSERT_GT(raw, 0u);
  EXPECT_LT(corrected, raw);
  EXPECT_GT(with_ecc.bank.stats().ecc_corrections, 0u);
}

TEST(Bank, ProtocolErrorsPropagate) {
  BankRig rig;
  std::vector<std::uint8_t> burst(rig.geometry.bytes_per_column, 0);
  EXPECT_THROW(rig.bank.read(0, 1000, false, burst), common::ProtocolError);
  EXPECT_THROW(rig.bank.precharge(1000, 85.0), common::ProtocolError);
  rig.bank.activate(5, 1000, 85.0);
  EXPECT_THROW(rig.bank.activate(6, 1000 + rig.timings.tRC, 85.0), common::ProtocolError);
}

TEST(Bank, RejectsOutOfRangeOperands) {
  BankRig rig;
  EXPECT_THROW(rig.bank.activate(rig.geometry.rows_per_bank, 1000, 85.0),
               common::PreconditionError);
  rig.bank.activate(5, 1000, 85.0);
  std::vector<std::uint8_t> burst(rig.geometry.bytes_per_column, 0);
  EXPECT_THROW(rig.bank.read(rig.geometry.columns_per_row, 1000 + rig.timings.tRCD, false, burst),
               common::PreconditionError);
}

TEST(Bank, LazyStorageOnlyTracksTouchedRows) {
  BankRig rig;
  EXPECT_EQ(rig.bank.tracked_rows(), 0u);
  Cycle t = rig.write_row(100, 0xFF, 1000);
  (void)t;
  EXPECT_EQ(rig.bank.tracked_rows(), 1u);
  EXPECT_TRUE(rig.bank.row_materialized_physical(100));
  EXPECT_FALSE(rig.bank.row_materialized_physical(101));
}

}  // namespace
}  // namespace rh::hbm
