#include "core/thermometer.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"
#include "common/error.hpp"

namespace rh::core {
namespace {

class ThermometerTest : public ::testing::Test {
protected:
  ThermometerTest()
      : host_(hbm::DeviceConfig{}),
        map_(RowMap::from_device(host_.device())),
        thermometer_(host_, map_, Site{0, 0, 0}) {}

  bender::BenderHost host_;
  RowMap map_;
  DramThermometer thermometer_;
};

TEST_F(ThermometerTest, FlipCountGrowsWithTemperature) {
  host_.set_chip_temperature(45.0);
  const auto cold = thermometer_.measure_flips();
  host_.set_chip_temperature(85.0);
  const auto hot = thermometer_.measure_flips();
  EXPECT_GT(hot, cold);
}

TEST_F(ThermometerTest, EstimateRequiresCalibration) {
  EXPECT_THROW((void)thermometer_.estimate(), common::ConfigError);
}

TEST_F(ThermometerTest, CalibrationCurveIsMonotone) {
  thermometer_.calibrate({45.0, 65.0, 85.0});
  const auto& points = thermometer_.calibration();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].flips, points[1].flips);
  EXPECT_LT(points[1].flips, points[2].flips);
}

TEST_F(ThermometerTest, EstimatesInteriorTemperatures) {
  thermometer_.calibrate({45.0, 55.0, 65.0, 75.0, 85.0});
  for (const double truth : {50.0, 60.0, 70.0, 80.0}) {
    host_.set_chip_temperature(truth);
    EXPECT_NEAR(thermometer_.estimate(), truth, 4.0) << "true " << truth;
  }
}

TEST_F(ThermometerTest, ClampsOutsideTheCalibratedRange) {
  thermometer_.calibrate({55.0, 65.0, 75.0});
  host_.set_chip_temperature(40.0);
  EXPECT_DOUBLE_EQ(thermometer_.estimate(), 55.0);
  host_.set_chip_temperature(95.0);
  EXPECT_DOUBLE_EQ(thermometer_.estimate(), 75.0);
}

TEST_F(ThermometerTest, RejectsDegenerateConfigs) {
  ThermometerConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(DramThermometer(host_, map_, Site{0, 0, 0}, cfg), common::PreconditionError);
  EXPECT_THROW(thermometer_.calibrate({85.0}), common::PreconditionError);
}

}  // namespace
}  // namespace rh::core
