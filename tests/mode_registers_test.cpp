#include "hbm/mode_registers.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"

namespace rh::hbm {
namespace {

TEST(ModeRegisters, PowerOnDefaultsEnableEccDisableTrrMode) {
  const ModeRegisters mrs;
  EXPECT_TRUE(mrs.ecc_enabled());
  EXPECT_FALSE(mrs.trr_mode_enabled());
}

TEST(ModeRegisters, EccBitClearsAsThePaperDoes) {
  // §3.1: "we disable ECC by setting the corresponding HBM2 mode register
  // bit to zero".
  ModeRegisters mrs;
  mrs.set(ModeRegisters::kEccRegister, 0x0);
  EXPECT_FALSE(mrs.ecc_enabled());
  mrs.set(ModeRegisters::kEccRegister, 0x1);
  EXPECT_TRUE(mrs.ecc_enabled());
}

TEST(ModeRegisters, TrrModeFieldsDecode) {
  ModeRegisters mrs;
  mrs.set(ModeRegisters::kTrrRegister, 0x10 | 0x5);
  EXPECT_TRUE(mrs.trr_mode_enabled());
  EXPECT_EQ(mrs.trr_mode_bank(), 5u);
  EXPECT_FALSE(mrs.trr_mode_pseudo_channel());

  mrs.set(ModeRegisters::kTrrRegister, 0x30 | 0xF);
  EXPECT_TRUE(mrs.trr_mode_enabled());
  EXPECT_EQ(mrs.trr_mode_bank(), 15u);
  EXPECT_TRUE(mrs.trr_mode_pseudo_channel());
}

TEST(ModeRegisters, ValuesTruncateToOneByte) {
  ModeRegisters mrs;
  mrs.set(3, 0x1ff);
  EXPECT_EQ(mrs.get(3), 0xffu);
}

TEST(ModeRegisters, RejectsOutOfRangeRegister) {
  ModeRegisters mrs;
  EXPECT_THROW(mrs.set(16, 0), common::PreconditionError);
  EXPECT_THROW((void)mrs.get(16), common::PreconditionError);
}

TEST(ModeRegisters, IndependentRegisters) {
  ModeRegisters mrs;
  mrs.set(0, 0xaa);
  mrs.set(1, 0x55);
  EXPECT_EQ(mrs.get(0), 0xaau);
  EXPECT_EQ(mrs.get(1), 0x55u);
  EXPECT_TRUE(mrs.ecc_enabled());  // untouched
}

}  // namespace
}  // namespace rh::hbm
