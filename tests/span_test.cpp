// Tests of the causal span layer (telemetry/span.hpp): deterministic span
// ids, TraceContext nesting and unwinding, the per-attempt phase budget,
// cross-sheet merge + canonical ordering, and the Chrome async export.
#include "telemetry/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace rh::telemetry {
namespace {

std::chrono::steady_clock::time_point epoch() { return std::chrono::steady_clock::now(); }

/// Finds the span with `id`; fails the test when absent.
const Span& find_span(const SpanSheet& sheet, std::uint64_t id) {
  for (const Span& s : sheet.spans()) {
    if (s.id == id) return s;
  }
  ADD_FAILURE() << "span 0x" << std::hex << id << " not in sheet";
  static const Span missing{};
  return missing;
}

TEST(SpanIdTest, EncodesTreePositionAndNeverCollidesWithRoot) {
  // shard in the high bits, attempt in the middle byte, sequence low.
  EXPECT_EQ(span_id(0, 0, 0), 1ull << 32);
  EXPECT_EQ(span_id(0, 1, 0), (1ull << 32) | (1ull << 24));
  EXPECT_EQ(span_id(0, 1, 2), (1ull << 32) | (1ull << 24) | 2);
  EXPECT_EQ(span_id(41, 2, 7), (42ull << 32) | (2ull << 24) | 7);
  // The smallest shard-derived id is far above the reserved root id.
  EXPECT_GT(span_id(0, 0, 0), kCampaignSpanId);
}

TEST(TraceContextTest, NestsPhasesUnderAttemptUnderShard) {
  SpanSheet sheet;
  TraceContext ctx(sheet, 3, epoch());
  const std::uint64_t shard = ctx.open(SpanKind::kShard, 0);
  ctx.set_attempt(1);
  const std::uint64_t attempt = ctx.open(SpanKind::kAttempt, 0);
  const std::uint64_t upload = ctx.open(SpanKind::kUpload, 100);
  ctx.close(upload, 250);
  const std::uint64_t execute = ctx.open(SpanKind::kExecute, 250);
  ctx.mark(SpanKind::kFault, 300, 2);
  ctx.close(execute, 900);
  ctx.close(attempt, 900);
  ctx.close(shard, 900);

  // Parent chain: campaign -> shard -> attempt -> phase; the mark hangs
  // under the innermost open span (execute).
  EXPECT_EQ(find_span(sheet, shard).parent, kCampaignSpanId);
  EXPECT_EQ(find_span(sheet, attempt).parent, shard);
  EXPECT_EQ(find_span(sheet, upload).parent, attempt);
  EXPECT_EQ(find_span(sheet, execute).parent, attempt);
  const Span* mark = nullptr;
  for (const Span& s : sheet.spans()) {
    if (s.kind == SpanKind::kFault) mark = &s;
  }
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->parent, execute);
  EXPECT_EQ(mark->arg, 2u);
  EXPECT_EQ(mark->begin_cycle, mark->end_cycle) << "marks are zero-length";

  // Cycle accounting and closed state.
  EXPECT_EQ(find_span(sheet, upload).begin_cycle, 100u);
  EXPECT_EQ(find_span(sheet, upload).end_cycle, 250u);
  for (const Span& s : sheet.spans()) EXPECT_FALSE(s.open) << to_string(s.kind);
  EXPECT_EQ(sheet.dropped(), 0u);
}

TEST(TraceContextTest, IdsAreDeterministicFunctionsOfTreePosition) {
  // Two contexts replaying the same shard produce byte-identical id
  // sequences — the property that makes merged forests --jobs-invariant.
  const auto replay = [](SpanSheet& sheet) {
    TraceContext ctx(sheet, 5, epoch());
    const auto shard = ctx.open(SpanKind::kShard, 0);
    for (std::uint32_t a = 1; a <= 2; ++a) {
      ctx.set_attempt(a);
      const auto attempt = ctx.open(SpanKind::kAttempt, 0);
      const auto upload = ctx.open(SpanKind::kUpload, 10);
      ctx.close(upload, 20);
      ctx.close(attempt, 30);
    }
    ctx.close(shard, 60);
  };
  SpanSheet a;
  SpanSheet b;
  replay(a);
  replay(b);
  ASSERT_EQ(a.spans().size(), b.spans().size());
  for (std::size_t i = 0; i < a.spans().size(); ++i) {
    EXPECT_EQ(a.spans()[i].id, b.spans()[i].id) << "span " << i;
    EXPECT_EQ(a.spans()[i].parent, b.spans()[i].parent) << "span " << i;
  }
  // set_attempt resets the sequence counter: both attempts use seq 0,1.
  EXPECT_EQ(a.spans()[1].id, span_id(5, 1, 0));
  EXPECT_EQ(a.spans()[3].id, span_id(5, 2, 0));
}

TEST(TraceContextTest, OutOfOrderCloseUnwindsSkippedSpans) {
  // An exception that unwinds past an open inner phase: closing the outer
  // attempt must close the skipped execute span too (at the same cycle).
  SpanSheet sheet;
  TraceContext ctx(sheet, 0, epoch());
  const auto shard = ctx.open(SpanKind::kShard, 0);
  ctx.set_attempt(1);
  const auto attempt = ctx.open(SpanKind::kAttempt, 0);
  const auto execute = ctx.open(SpanKind::kExecute, 50);
  ctx.close(attempt, 120);  // execute never closed explicitly
  ctx.close(shard, 120);
  EXPECT_FALSE(find_span(sheet, execute).open);
  EXPECT_EQ(find_span(sheet, execute).end_cycle, 120u);
  EXPECT_FALSE(find_span(sheet, attempt).open);
}

TEST(TraceContextTest, PhaseBudgetDropsOverflowButKeepsStructureAndMarks) {
  SpanSheet sheet;
  TraceContext ctx(sheet, 0, epoch());
  const auto shard = ctx.open(SpanKind::kShard, 0);
  ctx.set_attempt(1);
  const auto attempt = ctx.open(SpanKind::kAttempt, 0);
  // The attempt span is structural and must not consume phase budget:
  // exactly kSpanBudgetPerAttempt phases fit.
  for (std::uint32_t i = 0; i < kSpanBudgetPerAttempt; ++i) {
    const auto id = ctx.open(SpanKind::kExecute, i);
    EXPECT_NE(id, 0u) << "phase " << i << " should be within budget";
    ctx.close(id, i + 1);
  }
  EXPECT_EQ(sheet.dropped(), 0u);
  // Past the budget: opens return 0, close(0) is a no-op, drops accrue.
  const auto dropped_id = ctx.open(SpanKind::kExecute, 999);
  EXPECT_EQ(dropped_id, 0u);
  ctx.close(dropped_id, 1000);
  ctx.open(SpanKind::kDrain, 999);
  EXPECT_EQ(sheet.dropped(), 2u);
  // Marks are never dropped, even with the budget exhausted.
  ctx.mark(SpanKind::kRecovery, 1000, 1);
  EXPECT_EQ(sheet.dropped(), 2u);
  bool saw_mark = false;
  for (const Span& s : sheet.spans()) saw_mark |= s.kind == SpanKind::kRecovery;
  EXPECT_TRUE(saw_mark);
  // A retry (fresh attempt) refills the budget.
  ctx.close(attempt, 2000);
  ctx.set_attempt(2);
  const auto attempt2 = ctx.open(SpanKind::kAttempt, 0);
  EXPECT_NE(ctx.open(SpanKind::kExecute, 0), 0u);
  ctx.close(attempt2, 10);
  ctx.close(shard, 10);
  // Retained count: shard + 2 attempts + budget phases + 1 post-refill
  // phase + the mark.
  EXPECT_EQ(sheet.spans().size(), 3u + kSpanBudgetPerAttempt + 1u + 1u);
}

TEST(SpanSheetTest, MergeAccumulatesSpansAndDropsAndSortsCanonically) {
  // Worker sheets merge in completion order (shard 7 finished first); the
  // canonical sort restores shard order and keeps parents before children.
  SpanSheet merged;
  {
    SpanSheet w0;
    TraceContext ctx(w0, 7, epoch());
    const auto shard = ctx.open(SpanKind::kShard, 0);
    ctx.set_attempt(1);
    const auto attempt = ctx.open(SpanKind::kAttempt, 0);
    ctx.close(attempt, 5);
    ctx.close(shard, 5);
    w0.note_dropped(3);
    merged.merge_from(w0);
  }
  {
    SpanSheet w1;
    TraceContext ctx(w1, 2, epoch());
    const auto shard = ctx.open(SpanKind::kShard, 0);
    ctx.close(shard, 9);
    w1.note_dropped(1);
    merged.merge_from(w1);
  }
  Span root;
  root.id = kCampaignSpanId;
  root.kind = SpanKind::kCampaign;
  merged.add(root);
  merged.sort_canonical();

  EXPECT_EQ(merged.dropped(), 4u);
  ASSERT_EQ(merged.spans().size(), 4u);
  EXPECT_EQ(merged.spans()[0].id, kCampaignSpanId) << "root sorts first";
  EXPECT_EQ(merged.spans()[1].shard, 2u);
  EXPECT_EQ(merged.spans()[2].shard, 7u);
  EXPECT_EQ(merged.spans()[3].kind, SpanKind::kAttempt);
  // Ascending ids place every parent before its children.
  for (std::size_t i = 1; i < merged.spans().size(); ++i) {
    EXPECT_GT(merged.spans()[i].id, merged.spans()[i - 1].id);
  }
  merged.clear();
  EXPECT_TRUE(merged.spans().empty());
  EXPECT_EQ(merged.dropped(), 0u);
}

TEST(SpanExportTest, ChromeSpansCarryTreeAndPairBeginEnd) {
  SpanSheet sheet;
  TraceContext ctx(sheet, 1, epoch());
  const auto shard = ctx.open(SpanKind::kShard, 0);
  ctx.set_attempt(1);
  const auto attempt = ctx.open(SpanKind::kAttempt, 0);
  ctx.mark(SpanKind::kFault, 40, 0);
  ctx.close(attempt, 80);
  ctx.close(shard, 80);

  std::ostringstream os;
  write_chrome_spans(os, sheet);
  const std::string json = os.str();
  // Async begin/end pairs on the span process, one instant mark, and the
  // parent id rendered in hex so Perfetto queries can join the tree.
  EXPECT_NE(json.find("\"campaign spans\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"n\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fault\""), std::string::npos);
  char parent_hex[32];
  std::snprintf(parent_hex, sizeof parent_hex, "\"parent\":\"0x%llx\"",
                static_cast<unsigned long long>(shard));
  EXPECT_NE(json.find(parent_hex), std::string::npos)
      << "attempt must reference the shard span: " << json;
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
}

TEST(SpanExportTest, EmptySheetWritesAnEmptyDocument) {
  SpanSheet sheet;
  std::ostringstream os;
  write_chrome_spans(os, sheet);
  EXPECT_EQ(os.str(), "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
}

}  // namespace
}  // namespace rh::telemetry
