#include <gtest/gtest.h>

#include <bit>

#include "bender/host.hpp"
#include "common/error.hpp"
#include "core/data_patterns.hpp"
#include "core/row_map.hpp"
#include "core/utrr.hpp"

namespace rh {
namespace {

class SelfRefreshTest : public ::testing::Test {
protected:
  SelfRefreshTest() : host_(hbm::DeviceConfig{}) { host_.device().set_temperature(85.0); }

  std::uint64_t readback_flips(const bender::ExecutionResult& result, std::uint8_t expected) {
    std::uint64_t flips = 0;
    for (const auto byte : result.readback) {
      flips += static_cast<std::uint64_t>(
          std::popcount(static_cast<unsigned>(byte ^ expected)));
    }
    return flips;
  }

  bender::ProgramBuilder builder() {
    return bender::ProgramBuilder(host_.device().geometry(), host_.device().timings());
  }

  bender::BenderHost host_;
};

TEST_F(SelfRefreshTest, CommandsAreRejectedInsideSelfRefresh) {
  host_.device().self_refresh_enter(0, 0, 1000);
  EXPECT_THROW(host_.device().activate(hbm::BankAddress{0, 0, 0}, 5, 2000),
               common::ProtocolError);
  EXPECT_THROW(host_.device().refresh(0, 0, 2000), common::ProtocolError);
  host_.device().self_refresh_exit(0, 0, 3000);
  host_.device().activate(hbm::BankAddress{0, 0, 0}, 5, 4000);
}

TEST_F(SelfRefreshTest, DoubleEntryAndStrayExitAreProtocolErrors) {
  auto& device = host_.device();
  EXPECT_THROW(device.self_refresh_exit(0, 0, 100), common::ProtocolError);
  device.self_refresh_enter(0, 0, 1000);
  EXPECT_THROW(device.self_refresh_enter(0, 0, 2000), common::ProtocolError);
  device.self_refresh_exit(0, 0, 3000);
}

TEST_F(SelfRefreshTest, EntryRequiresClosedBanks) {
  auto& device = host_.device();
  device.activate(hbm::BankAddress{0, 0, 0}, 5, 1000);
  EXPECT_THROW(device.self_refresh_enter(0, 0, 2000), common::ProtocolError);
}

TEST_F(SelfRefreshTest, LongSelfRefreshPreventsRetentionFlips) {
  // Write a row, then park the channel in self-refresh for a minute of
  // simulated time: the internal refresh must keep the data alive, where
  // the same idle wait without self-refresh decays it (host_test proves
  // the latter).
  const auto& geometry = host_.device().geometry();
  auto init = builder();
  init.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  init.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
  init.init_row(0, 500, 0);
  (void)host_.run(init.take(), 0, 0);

  host_.device().self_refresh_enter(0, 0, host_.now());
  host_.idle_ms(60'000.0);
  host_.device().self_refresh_exit(0, 0, host_.now());

  auto read = builder();
  read.read_row(0, 500);
  const auto result = host_.run(read.take(), 0, 0);
  EXPECT_EQ(readback_flips(result, 0x00), 0u);
}

TEST_F(SelfRefreshTest, ShortSelfRefreshOnlySweepsPartOfTheBank) {
  // A stay much shorter than the 32 ms window refreshes only the rows the
  // pointer reached; a row outside the swept prefix still decays relative
  // to its last explicit refresh.
  const auto& geometry = host_.device().geometry();
  auto init = builder();
  init.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  init.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
  init.init_row(0, 8000, 0);  // far from the refresh pointer at row 0
  (void)host_.run(init.take(), 0, 0);

  // Many short self-refresh visits, 2 ms each, spread over a minute: the
  // pointer advances ~512 rows per visit and never reaches row 8000 before
  // the row's retention time elapses.
  for (int i = 0; i < 30; ++i) {
    host_.device().self_refresh_enter(0, 0, host_.now());
    host_.idle_ms(2.0);
    host_.device().self_refresh_exit(0, 0, host_.now());
    host_.idle_ms(2'000.0);
  }

  auto read = builder();
  read.read_row(0, 8000);
  const auto result = host_.run(read.take(), 0, 0);
  EXPECT_GT(readback_flips(result, 0x00), 0u);
}

TEST_F(SelfRefreshTest, SelfRefreshExitResetsTheTrrPhase) {
  // The proprietary TRR restarts its REF counter at SR exit: observing the
  // U-TRR experiment after an SR cycle still infers period 17, with the
  // first firing a full period after the exit.
  host_.device().self_refresh_enter(0, 0, host_.now());
  host_.idle_ms(100.0);
  host_.device().self_refresh_exit(0, 0, host_.now());

  const core::RowMap map = core::RowMap::from_device(host_.device());
  core::UtrrConfig config;
  config.iterations = 40;
  core::UtrrExperiment experiment(host_, map, config);
  core::UtrrResult result;
  for (std::uint32_t row = 4096;; ++row) {
    try {
      result = experiment.run(core::Site{0, 0, 0}, row);
      break;
    } catch (const common::Error&) {
      ASSERT_LT(row, 4160u);
    }
  }
  ASSERT_TRUE(result.trr_detected());
  EXPECT_EQ(result.refreshed_iterations.front(), 17u);
}

TEST_F(SelfRefreshTest, SreSrxInstructionsWorkInPrograms) {
  auto b = builder();
  b.sr_enter();
  b.sleep(100'000);
  b.sr_exit();
  (void)host_.run(b.take(), 3, 1);
  EXPECT_FALSE(host_.device().pseudo_channel(3, 1).in_self_refresh());
}

TEST_F(SelfRefreshTest, PendingDisturbanceMaterializesAtFullRefresh) {
  // Hammer, then a full self-refresh: the victim's flips must be locked in
  // (the internal sweep sensed and restored the corrupted charge), not
  // silently discarded with the disturbance counter.
  auto& device = host_.device();
  const core::RowMap map = core::RowMap::from_device(device);
  const auto& geometry = device.geometry();

  auto b = builder();
  b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  b.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
  b.program().set_wide_register(1, core::make_row_image(geometry, 0xFF));
  b.init_row(0, map.physical_to_logical(1200), 0);
  b.init_row(0, map.physical_to_logical(1199), 1);
  b.init_row(0, map.physical_to_logical(1201), 1);
  b.ldi(0, map.physical_to_logical(1199));
  b.ldi(1, map.physical_to_logical(1201));
  b.hammer(0, 0, 1, 262'144);
  b.sr_enter();
  b.sleep(static_cast<std::int64_t>(hbm::ms_to_cycles(40.0)));  // > one window
  b.sr_exit();
  b.read_row(0, map.physical_to_logical(1200));
  const auto result = host_.run(b.take(), 7, 0);
  EXPECT_GT(readback_flips(result, 0x00), 0u);
}

}  // namespace
}  // namespace rh
