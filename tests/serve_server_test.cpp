// End-to-end tests of the campaign service: admission, execution,
// byte-identity with the bench CLI path, and the content-addressed cache.
// Requests go through Server::handle() directly — the HTTP socket layer has
// its own tests (serve_http_test) and the CI smoke covers the wire.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "campaign/campaign.hpp"
#include "campaign/record_io.hpp"
#include "profiling/report.hpp"
#include "serve/config.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::serve {
namespace {

class TempDir {
public:
  explicit TempDir(std::string path) : path_(std::move(path)) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

/// The resilience_test storm sweep expressed as a service config: 2
/// channels x 512-stride BER-only survey in 2-row shards -> 18 fast shards.
CampaignConfig quick_config() {
  CampaignConfig config;
  config.label = "serve-test";
  config.channels = {0, 7};
  config.row_stride = 512;
  config.wcdp_by_ber = true;
  config.settle_thermal = false;
  config.max_rows_per_shard = 2;
  return config;
}

HttpRequest request(const std::string& method, const std::string& target,
                    const std::string& body = "", const std::string& tenant = "") {
  HttpRequest req;
  req.method = method;
  req.target = target;
  req.body = body;
  if (!tenant.empty()) req.headers["x-tenant"] = tenant;
  return req;
}

campaign::JsonValue parse(const HttpResponse& resp) {
  return campaign::parse_json(resp.body, "response body");
}

/// Polls GET /jobs/<id> until the job leaves the active states.
std::string wait_terminal(Server& server, std::uint64_t id) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    const HttpResponse resp = server.handle(request("GET", "/jobs/" + std::to_string(id)));
    EXPECT_EQ(resp.status, 200);
    const std::string state = parse(resp).at("state").text;
    if (state != "queued" && state != "running") return state;
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "job " << id << " still " << state << " after 2 minutes";
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// The bench CLI path in-process: the same spec through campaign::Campaign
/// with a report-only telemetry sink, rendered as the deterministic report.
std::string bench_det_report(const CampaignConfig& config, unsigned jobs) {
  const campaign::SweepSpec spec = to_sweep_spec(config);
  campaign::CampaignConfig cc;
  cc.progress = false;
  cc.jobs = jobs;
  telemetry::TelemetryConfig tc;
  tc.trace_enabled = false;
  telemetry::Telemetry sink(tc);
  campaign::Campaign campaign(cc, &sink);
  const campaign::CampaignResult result = campaign.run(spec);
  const profiling::RunReport report =
      campaign::build_report(config.label, spec, campaign, result, &sink);
  std::ostringstream os;
  profiling::write_report_json(os, report, /*include_wall=*/false);
  os << '\n';
  return os.str();
}

TEST(ServeServer, EndToEndMatchesTheBenchCliPath) {
  const TempDir dir("serve_server_test_e2e");
  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 2;
  Server server(options);
  server.start();

  // Submit over the API; the work-stealing pool runs it.
  const HttpResponse created =
      server.handle(request("POST", "/jobs", to_canonical_json(quick_config()), "alice"));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::uint64_t id = parse(created).at("id").as_u64();
  // The submit response reads status after the enqueue (so fully-cached
  // jobs answer "done"); for fresh work the rigs may already be running it.
  const std::string born = parse(created).at("state").text;
  EXPECT_TRUE(born == "queued" || born == "running" || born == "done") << born;
  EXPECT_EQ(wait_terminal(server, id), "done");

  const HttpResponse status = server.handle(request("GET", "/jobs/" + std::to_string(id)));
  const campaign::JsonValue doc = parse(status);
  EXPECT_EQ(doc.at("tenant").text, "alice");
  EXPECT_EQ(doc.at("shards").at("failed").as_u64(), 0u);
  EXPECT_EQ(doc.at("shards").at("remaining").as_u64(), 0u);
  EXPECT_EQ(doc.at("shards").at("cached").as_u64(), 0u);
  EXPECT_GT(doc.at("records").as_u64(), 0u);

  // The acceptance bar: the deterministic report fetched over HTTP is
  // byte-identical to the bench CLI path on the same config — any rig
  // count, any interleaving, any amount of work stealing.
  const HttpResponse report =
      server.handle(request("GET", "/jobs/" + std::to_string(id) + "/report?det=1"));
  ASSERT_EQ(report.status, 200);
  EXPECT_EQ(report.body, bench_det_report(quick_config(), options.rigs));

  // The full report exists too, and the stream is a complete document.
  EXPECT_EQ(server.handle(request("GET", "/jobs/" + std::to_string(id) + "/report")).status,
            200);
  const HttpResponse stream =
      server.handle(request("GET", "/jobs/" + std::to_string(id) + "/stream"));
  ASSERT_EQ(stream.status, 200);
  EXPECT_NE(stream.body.find("\"sample\":\"final\""), std::string::npos);

  // Resubmission of the identical config: admitted, served entirely from
  // the result cache, zero shards re-simulated.
  const std::string before_statz = server.handle(request("GET", "/statz")).body;
  const std::uint64_t shards_run_before =
      campaign::parse_json(before_statz, "statz").at("campaign.shards_run").as_u64();

  const HttpResponse resubmitted =
      server.handle(request("POST", "/jobs", to_canonical_json(quick_config()), "bob"));
  ASSERT_EQ(resubmitted.status, 201) << resubmitted.body;
  const std::uint64_t id2 = parse(resubmitted).at("id").as_u64();
  // A fully-cached job answers its own submission already finalized.
  EXPECT_EQ(parse(resubmitted).at("state").text, "done") << resubmitted.body;
  EXPECT_EQ(parse(resubmitted).at("cache_hit").boolean, true);
  EXPECT_EQ(wait_terminal(server, id2), "done");

  const campaign::JsonValue status2 =
      parse(server.handle(request("GET", "/jobs/" + std::to_string(id2))));
  EXPECT_EQ(status2.at("cache_hit").boolean, true);
  EXPECT_EQ(status2.at("config_hash").text, parse(status).at("config_hash").text);
  EXPECT_EQ(status2.at("shards").at("cached").as_u64(),
            parse(status).at("shards").at("total").as_u64());

  const campaign::JsonValue after =
      campaign::parse_json(server.handle(request("GET", "/statz")).body, "statz");
  EXPECT_EQ(after.at("campaign.shards_run").as_u64(), shards_run_before);
  EXPECT_GE(after.at("serve.jobs_cache_hit").as_u64(), 1u);
  EXPECT_GT(after.at("serve.cache_hits").as_u64(), 0u);

  // Both jobs flatten to the same journaled records, byte for byte.
  const HttpResponse results1 =
      server.handle(request("GET", "/jobs/" + std::to_string(id) + "/results"));
  const HttpResponse results2 =
      server.handle(request("GET", "/jobs/" + std::to_string(id2) + "/results"));
  ASSERT_EQ(results1.status, 200);
  ASSERT_EQ(results2.status, 200);
  EXPECT_FALSE(results1.body.empty());
  EXPECT_EQ(results1.body, results2.body);

  server.drain();
}

TEST(ServeServer, FaultStormJobYieldsTheSameResults) {
  // The serve scheduler inherits the resilience plane's guarantee: a
  // transport fault storm changes nothing about the journaled bytes. Run
  // the storm in a fresh server (fresh cache — the fault plan is not part
  // of the cache identity, deliberately) and diff against the clean run.
  const TempDir clean_dir("serve_server_test_storm_clean");
  const TempDir storm_dir("serve_server_test_storm");

  const auto run_results = [](const std::string& dir, const CampaignConfig& config) {
    Server::Options options;
    options.data_dir = dir;
    options.rigs = 2;
    Server server(options);
    server.start();
    const HttpResponse created =
        server.handle(request("POST", "/jobs", to_canonical_json(config)));
    EXPECT_EQ(created.status, 201) << created.body;
    const std::uint64_t id = parse(created).at("id").as_u64();
    EXPECT_EQ(wait_terminal(server, id), "done");
    const HttpResponse results =
        server.handle(request("GET", "/jobs/" + std::to_string(id) + "/results"));
    EXPECT_EQ(results.status, 200);
    server.drain();
    return results.body;
  };

  const std::string clean = run_results(clean_dir.str(), quick_config());
  CampaignConfig storm = quick_config();
  storm.fault_rate = 0.05;
  storm.fault_seed = 0xB0071;
  EXPECT_EQ(config_hash(storm), config_hash(quick_config()));
  const std::string stormed = run_results(storm_dir.str(), storm);
  EXPECT_FALSE(clean.empty());
  EXPECT_EQ(stormed, clean);
}

TEST(ServeServer, AdmissionControl) {
  // No start(): the scheduler has no rig threads, so admitted jobs stay
  // queued and admission decisions are deterministic.
  const TempDir dir("serve_server_test_admission");
  Server::Options options;
  options.data_dir = dir.str();
  options.queue_limit = 3;
  options.tenant_quota = 2;
  Server server(options);
  std::filesystem::create_directories(dir.str());

  const std::string body = to_canonical_json(quick_config());

  // Malformed and invalid configs are 400s, not crashes.
  EXPECT_EQ(server.handle(request("POST", "/jobs", "not json")).status, 400);
  EXPECT_EQ(server.handle(request("POST", "/jobs", R"({"rigs": 4})")).status, 400);

  EXPECT_EQ(server.handle(request("POST", "/jobs", body, "alice")).status, 201);
  EXPECT_EQ(server.handle(request("POST", "/jobs", body, "alice")).status, 201);

  // Tenant quota: alice's third active job bounces, bob still fits.
  const HttpResponse quota = server.handle(request("POST", "/jobs", body, "alice"));
  EXPECT_EQ(quota.status, 429);
  ASSERT_TRUE(quota.extra_headers.count("Retry-After"));
  EXPECT_EQ(server.handle(request("POST", "/jobs", body, "bob")).status, 201);

  // Server-wide queue limit: three active jobs, everyone bounces.
  const HttpResponse full = server.handle(request("POST", "/jobs", body, "carol"));
  EXPECT_EQ(full.status, 429);
  ASSERT_TRUE(full.extra_headers.count("Retry-After"));

  // Cancelling frees a slot.
  EXPECT_EQ(server.handle(request("DELETE", "/jobs/1")).status, 200);
  EXPECT_EQ(server.handle(request("DELETE", "/jobs/1")).status, 409);
  EXPECT_EQ(parse(server.handle(request("GET", "/jobs/1"))).at("state").text, "cancelled");
  EXPECT_EQ(server.handle(request("POST", "/jobs", body, "carol")).status, 201);

  // Unknowns and wrong methods.
  EXPECT_EQ(server.handle(request("GET", "/jobs/99")).status, 404);
  EXPECT_EQ(server.handle(request("DELETE", "/jobs/99")).status, 404);
  EXPECT_EQ(server.handle(request("GET", "/nope")).status, 404);
  EXPECT_EQ(server.handle(request("PUT", "/jobs")).status, 405);
  EXPECT_EQ(server.handle(request("GET", "/jobs/1/report")).status, 404);

  const campaign::JsonValue list = parse(server.handle(request("GET", "/jobs")));
  EXPECT_EQ(list.at("jobs").items.size(), 4u);

  // Draining refuses all new work with a 503.
  server.drain();
  EXPECT_EQ(server.handle(request("POST", "/jobs", body, "dave")).status, 503);
  const campaign::JsonValue statz =
      campaign::parse_json(server.handle(request("GET", "/statz")).body, "statz");
  EXPECT_EQ(statz.at("draining").boolean, true);
  EXPECT_GE(statz.at("serve.jobs_rejected").as_u64(), 4u);
}

TEST(ServeServer, CancelWhileRunningIsSafe) {
  // Regression: DELETE on a *running* job must not close the metrics-stream
  // writer out from under a rig's in-flight sampler (use-after-free). The
  // writers now stay open until the last rig retires; this hammers the
  // cancel path at varying points in the run.
  const TempDir dir("serve_server_test_cancel");
  Server::Options options;
  options.data_dir = dir.str();
  options.rigs = 2;
  Server server(options);
  server.start();

  for (int round = 0; round < 5; ++round) {
    // A distinct channel per round: fresh shards, so the cache never
    // short-circuits the run we are trying to cancel mid-flight.
    CampaignConfig config = quick_config();
    config.channels = {static_cast<std::uint32_t>(round)};
    const HttpResponse created =
        server.handle(request("POST", "/jobs", to_canonical_json(config), "alice"));
    ASSERT_EQ(created.status, 201) << created.body;
    const std::uint64_t id = parse(created).at("id").as_u64();
    std::this_thread::sleep_for(std::chrono::milliseconds(round));
    const HttpResponse cancelled =
        server.handle(request("DELETE", "/jobs/" + std::to_string(id)));
    // The rigs may have already finished by the time the DELETE lands.
    ASSERT_TRUE(cancelled.status == 200 || cancelled.status == 409) << cancelled.body;
    const std::string state = wait_terminal(server, id);
    if (cancelled.status == 200) {
      EXPECT_EQ(state, "cancelled");
      EXPECT_EQ(parse(cancelled).at("state").text, "cancelled");
    }
  }

  // Drain joins the rigs: every cancelled job's writers are closed by its
  // last retire, and the server is still fully queryable.
  server.drain();
  const HttpResponse list = server.handle(request("GET", "/jobs"));
  ASSERT_EQ(list.status, 200);
  EXPECT_EQ(parse(list).at("jobs").items.size(), 5u);
  for (int round = 0; round < 5; ++round) {
    const std::string id = std::to_string(round + 1);
    EXPECT_EQ(server.handle(request("GET", "/jobs/" + id)).status, 200);
    EXPECT_EQ(server.handle(request("GET", "/jobs/" + id + "/stream")).status, 200);
  }
}

TEST(ServeServer, HealthzAndStatzShapes) {
  const TempDir dir("serve_server_test_statz");
  Server::Options options;
  options.data_dir = dir.str();
  Server server(options);
  std::filesystem::create_directories(dir.str());

  const HttpResponse health = server.handle(request("GET", "/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(parse(health).at("ok").boolean, true);

  const campaign::JsonValue statz =
      campaign::parse_json(server.handle(request("GET", "/statz")).body, "statz");
  EXPECT_EQ(statz.at("schema").text, "rh-serve-statz/v1");
  EXPECT_EQ(statz.at("serve.jobs_submitted").as_u64(), 0u);
  EXPECT_EQ(statz.at("serve.rigs").as_u64(), 2u);
  EXPECT_EQ(statz.at("campaign.shards_run").as_u64(), 0u);
}

}  // namespace
}  // namespace rh::serve
