#include "bender/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bender/program.hpp"
#include "common/error.hpp"
#include "core/data_patterns.hpp"
#include "hbm/device.hpp"

namespace rh::bender {
namespace {

class ExecutorTest : public ::testing::Test {
protected:
  ExecutorTest() : device_(hbm::DeviceConfig{}), executor_(device_) {}

  ProgramBuilder builder() { return ProgramBuilder(device_.geometry(), device_.timings()); }

  hbm::Device device_;
  Executor executor_;
};

TEST_F(ExecutorTest, StraightLineTimingMatchesBuilderAccounting) {
  auto b = builder();
  b.program().set_wide_register(0, core::make_row_image(device_.geometry(), 0x11));
  b.init_row(0, 7, 0);
  b.read_row(0, 7);
  const hbm::Cycle predicted = b.virtual_cycles() + 1;  // +1 for the END
  const auto result = executor_.run(b.take(), 0, 0, 500);
  EXPECT_EQ(result.cycles(), predicted);
}

TEST_F(ExecutorTest, ReadbackReturnsWrittenData) {
  auto b = builder();
  b.program().set_wide_register(0, core::make_row_image(device_.geometry(), 0xC3));
  b.init_row(0, 7, 0);
  b.read_row(0, 7);
  const auto result = executor_.run(b.take(), 0, 0, 500);
  ASSERT_EQ(result.readback.size(), device_.geometry().row_bytes());
  for (const auto byte : result.readback) EXPECT_EQ(byte, 0xC3);
}

TEST_F(ExecutorTest, RegisterLoopArithmetic) {
  // Count 0..9 via ADDI/BLT and verify via loop-carried writes: the loop
  // body runs exactly 10 times (10 reads of one column).
  auto b = builder();
  b.program().set_wide_register(0, core::make_row_image(device_.geometry(), 0x01));
  b.init_row(0, 3, 0);
  b.ldi(2, 0);
  b.ldi(3, 10);
  b.ldi(4, 0);  // column 0
  b.touch_row(0, 3);
  const Label loop = b.here();
  // Open row once per iteration to read legally.
  b.ldi(5, 3);
  b.act(0, 5);
  b.sleep(static_cast<std::int64_t>(device_.timings().tRCD));
  b.rd(0, 4);
  b.sleep(static_cast<std::int64_t>(device_.timings().tRAS));
  b.pre(0);
  b.sleep(static_cast<std::int64_t>(device_.timings().tRP));
  b.addi(2, 2, 1);
  b.blt(2, 3, loop);
  const auto result = executor_.run(b.take(), 0, 0, 500);
  EXPECT_EQ(result.readback.size(), 10u * device_.geometry().bytes_per_column);
}

TEST_F(ExecutorTest, HammerMacroAdvancesClockByUnrolledDuration) {
  auto b = builder();
  b.ldi(0, 100);
  b.ldi(1, 102);
  b.hammer(0, 0, 1, 5000);
  const auto result = executor_.run(b.take(), 0, 0, 1000);
  // 2 LDIs + hammer + END; per-hammer period = max(tRC, tRAS + tRP).
  const hbm::Cycle period =
      std::max(device_.timings().tRC, device_.timings().tRAS + device_.timings().tRP);
  EXPECT_EQ(result.cycles(), 2 + 5000ULL * 2 * period + 1);
}

TEST_F(ExecutorTest, HammerMacroDepositsDisturbance) {
  auto b = builder();
  // Logical rows 100 and 101 decode (pair-swap) to physical 100 and 102,
  // bracketing physical row 101.
  b.ldi(0, 100);
  b.ldi(1, 101);
  b.hammer(0, 0, 1, 5000);
  (void)executor_.run(b.take(), 0, 0, 1000);
  EXPECT_GT(device_.bank(hbm::BankAddress{0, 0, 0}).disturbance_of_physical(101), 0.0);
}

TEST_F(ExecutorTest, InstructionBudgetCatchesRunawayLoops) {
  auto b = builder();
  const Label spin = b.here();
  b.jmp(spin);
  b.end();
  EXPECT_THROW(executor_.run(b.take(), 0, 0, 0, 10'000), common::ProgramError);
}

TEST_F(ExecutorTest, RowRegisterOutOfRangeIsCaught) {
  auto b = builder();
  b.ldi(0, 99'999);
  b.act(0, 0);
  EXPECT_THROW(executor_.run(b.take(), 0, 0, 0), common::ProgramError);
}

TEST_F(ExecutorTest, TimingViolationsInProgramsSurface) {
  auto b = builder();
  b.ldi(0, 5);
  b.act(0, 0);
  b.pre(0);  // immediately: violates tRAS
  EXPECT_THROW(executor_.run(b.take(), 0, 0, 0), common::TimingError);
}

TEST_F(ExecutorTest, PropagatedErrorsCarryExecutionContext) {
  auto b = builder();
  b.ldi(0, 5);
  b.act(0, 0);
  b.pre(0);  // violates tRAS on the third instruction (pc 2)
  try {
    (void)executor_.run(b.take(), 0, 0, 0);
    FAIL() << "expected TimingError";
  } catch (const common::TimingError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("after 3 instructions"), std::string::npos) << what;
    EXPECT_NE(what.find("pc 2"), std::string::npos) << what;
    EXPECT_NE(what.find("PRE"), std::string::npos) << what;  // disassembly
    EXPECT_FALSE(e.context().empty());
  }
}

TEST_F(ExecutorTest, BudgetErrorsCarryContextToo) {
  auto b = builder();
  const Label spin = b.here();
  b.jmp(spin);
  b.end();
  try {
    (void)executor_.run(b.take(), 0, 0, 0, 10'000);
    FAIL() << "expected ProgramError";
  } catch (const common::ProgramError& e) {
    EXPECT_NE(std::string(e.what()).find("instructions"), std::string::npos);
  }
}

TEST_F(ExecutorTest, RunMetricsReportCommandMixAndThroughput) {
  auto b = builder();
  b.program().set_wide_register(0, core::make_row_image(device_.geometry(), 0x11));
  b.init_row(0, 7, 0);
  b.read_row(0, 7);
  b.ref();
  b.sleep(static_cast<std::int64_t>(device_.timings().tRFC));
  const auto result = executor_.run(b.take(), 0, 0, 0);
  const auto columns = device_.geometry().columns_per_row;
  EXPECT_EQ(result.metrics.acts, 2u);
  EXPECT_EQ(result.metrics.precharges, 2u);
  EXPECT_EQ(result.metrics.writes, columns);
  EXPECT_EQ(result.metrics.reads, columns);
  EXPECT_EQ(result.metrics.refreshes, 1u);
  EXPECT_DOUBLE_EQ(result.metrics.sim_wall_ms, result.elapsed_ms());
  EXPECT_GT(result.metrics.host_seconds, 0.0);
  EXPECT_GT(result.metrics.act_rate_hz, 0.0);
  EXPECT_GT(result.metrics.instructions_per_second, 0.0);
}

TEST_F(ExecutorTest, HammerMacroCountsUnrolledActsInMetrics) {
  auto b = builder();
  b.ldi(0, 100);
  b.ldi(1, 102);
  b.hammer(0, 0, 1, 1000);
  const auto result = executor_.run(b.take(), 0, 0, 0);
  EXPECT_EQ(result.metrics.acts, 2000u);        // 1000 double-sided pairs
  EXPECT_EQ(result.metrics.precharges, 2000u);  // each ACT pairs with a PRE
}

TEST_F(ExecutorTest, MrsReachesTheDevice) {
  auto b = builder();
  b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  (void)executor_.run(b.take(), 2, 0, 0);
  EXPECT_FALSE(device_.mode_registers(2).ecc_enabled());
  EXPECT_TRUE(device_.mode_registers(0).ecc_enabled());
}

TEST_F(ExecutorTest, RefWithTrfcSleepIsLegal) {
  auto b = builder();
  b.ref();
  b.sleep(static_cast<std::int64_t>(device_.timings().tRFC));
  b.ref();
  b.sleep(static_cast<std::int64_t>(device_.timings().tRFC));
  (void)executor_.run(b.take(), 0, 0, 0);  // no throw
}

TEST_F(ExecutorTest, RawHammerLoopRunsWithoutTimingViolations) {
  auto b = builder();
  b.hammer_loop_raw(0, 100, 102, 50);
  const auto result = executor_.run(b.take(), 0, 0, 0);
  EXPECT_GT(result.instructions_executed, 50u * 6);
}

TEST_F(ExecutorTest, PreaClosesEveryOpenBank) {
  auto b = builder();
  const auto tRRD = static_cast<std::int64_t>(device_.timings().tRRD);
  b.ldi(0, 10);
  b.ldi(1, 20);
  b.act(0, 0);
  b.sleep(tRRD);
  b.act(1, 1);
  b.sleep(static_cast<std::int64_t>(device_.timings().tRAS));
  b.prea();
  (void)executor_.run(b.take(), 0, 0, 0);
  EXPECT_FALSE(device_.bank(hbm::BankAddress{0, 0, 0}).is_open());
  EXPECT_FALSE(device_.bank(hbm::BankAddress{0, 0, 1}).is_open());
}

TEST_F(ExecutorTest, InterleavedBanksRespectTRrdAndOperateIndependently) {
  // Two banks of one pseudo channel, activations tRRD apart: both rows
  // open simultaneously, writes land in the right bank.
  auto b = builder();
  const auto& t = device_.timings();
  b.program().set_wide_register(0, core::make_row_image(device_.geometry(), 0x11));
  b.program().set_wide_register(1, core::make_row_image(device_.geometry(), 0x22));
  b.ldi(0, 10);
  b.ldi(1, 20);
  b.ldi(2, 0);  // column 0
  b.act(0, 0);
  b.sleep(static_cast<std::int64_t>(t.tRRD));
  b.act(1, 1);
  b.sleep(static_cast<std::int64_t>(t.tRCD));
  b.wr(0, 2, 0);
  b.sleep(static_cast<std::int64_t>(t.tCCD));
  b.wr(1, 2, 1);
  b.sleep(static_cast<std::int64_t>(t.tWR + t.tRAS));
  b.prea();
  b.sleep(static_cast<std::int64_t>(t.tRP));
  b.read_row(0, 10);
  b.read_row(1, 20);
  const auto result = executor_.run(b.take(), 0, 0, 0);
  const std::size_t row_bytes = device_.geometry().row_bytes();
  ASSERT_EQ(result.readback.size(), 2 * row_bytes);
  EXPECT_EQ(result.readback[0], 0x11);             // bank 0, column 0
  EXPECT_EQ(result.readback[row_bytes], 0x22);     // bank 1, column 0
}

TEST_F(ExecutorTest, TooCloseCrossBankActsViolateTRrd) {
  auto b = builder();
  b.ldi(0, 10);
  b.ldi(1, 20);
  b.act(0, 0);
  b.act(1, 1);  // 1 cycle later: tRRD violation
  EXPECT_THROW(executor_.run(b.take(), 0, 0, 0), common::TimingError);
}

TEST_F(ExecutorTest, RawLoopAndMacroDepositEqualVictimDisturbance) {
  hbm::Device macro_device{hbm::DeviceConfig{}};
  hbm::Device loop_device{hbm::DeviceConfig{}};
  Executor macro_exec(macro_device);
  Executor loop_exec(loop_device);
  const std::uint32_t count = 40;

  auto mb = ProgramBuilder(macro_device.geometry(), macro_device.timings());
  mb.ldi(0, 100);
  mb.ldi(1, 101);  // physical 100 and 102: double-sided around physical 101
  mb.hammer(0, 0, 1, count);
  (void)macro_exec.run(mb.take(), 0, 0, 0);

  auto lb = ProgramBuilder(loop_device.geometry(), loop_device.timings());
  lb.hammer_loop_raw(0, 100, 101, count);
  (void)loop_exec.run(lb.take(), 0, 0, 0);

  const double macro_d =
      macro_device.bank(hbm::BankAddress{0, 0, 0}).disturbance_of_physical(101);
  EXPECT_GT(macro_d, 0.0);
  EXPECT_DOUBLE_EQ(
      macro_d, loop_device.bank(hbm::BankAddress{0, 0, 0}).disturbance_of_physical(101));
}

}  // namespace
}  // namespace rh::bender
