#include "fault/retention_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "fault/cell_traits.hpp"
#include "hbm/geometry.hpp"

namespace rh::fault {
namespace {

class RetentionModelTest : public ::testing::Test {
protected:
  BankContext bank(std::uint32_t ch = 0) const {
    return BankContext::from(geometry_, hbm::BankAddress{ch, 0, 0});
  }

  std::size_t flips(std::uint32_t row, std::uint8_t value, double elapsed_s,
                    double temp = 85.0) const {
    std::vector<std::uint8_t> data(geometry_.row_bytes(), value);
    return model_.apply(bank(), row, data, elapsed_s, temp);
  }

  FaultConfig cfg_{};
  hbm::Geometry geometry_ = hbm::paper_geometry();
  RetentionModel model_{cfg_, geometry_};
};

TEST_F(RetentionModelTest, ShortWaitsNeverDecay) {
  // The paper's 27 ms experiment budget must be retention-safe at 85 degC.
  EXPECT_EQ(flips(100, 0x00, 0.027), 0u);
  EXPECT_EQ(flips(100, 0xFF, 0.027), 0u);
}

TEST_F(RetentionModelTest, GlobalMinBoundIsSound) {
  const double bound = model_.global_min_retention_s(85.0);
  EXPECT_GT(bound, 0.027);  // paper's methodology bound fits under it
  for (std::uint32_t r = 0; r < 2000; r += 173) {
    EXPECT_EQ(flips(r, 0x00, bound * 0.99), 0u) << "row " << r;
  }
}

TEST_F(RetentionModelTest, LongWaitsDecayManyCells) {
  EXPECT_GT(flips(100, 0x00, 600.0), 1000u);
}

TEST_F(RetentionModelTest, FlipCountIsMonotoneInElapsed) {
  std::size_t prev = 0;
  for (const double s : {0.05, 0.2, 1.0, 5.0, 25.0}) {
    const std::size_t f = flips(100, 0x00, s);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST_F(RetentionModelTest, HeatHalvesRetention) {
  // Same wait decays more at higher temperature (halving per +10 degC).
  const double wait = 0.4;
  EXPECT_GE(flips(100, 0x00, wait, 95.0), flips(100, 0x00, wait, 85.0));
  EXPECT_GE(flips(100, 0x00, wait, 85.0), flips(100, 0x00, wait, 65.0));
  // Quantitatively: t at 75C = 2x t at 85C.
  EXPECT_NEAR(model_.cell_retention_s(bank(), 5, 3, 75.0),
              2.0 * model_.cell_retention_s(bank(), 5, 3, 85.0), 1e-9);
}

TEST_F(RetentionModelTest, OnlyChargedCellsDecay) {
  // A cell stores its charged value or its discharged value; decay flips
  // charged cells only, so an all-zero row and an all-one row decay
  // *different* (complementary) cell populations.
  std::vector<std::uint8_t> zeros(geometry_.row_bytes(), 0x00);
  std::vector<std::uint8_t> ones(geometry_.row_bytes(), 0xFF);
  const double wait = 40.0;
  model_.apply(bank(), 100, zeros, wait, 85.0);
  model_.apply(bank(), 100, ones, wait, 85.0);
  for (std::size_t i = 0; i < zeros.size(); ++i) {
    // A bit cannot have decayed in both experiments: decayed-from-zero means
    // the cell is anti (charged at 0), decayed-from-one means true.
    const std::uint8_t decayed_from_zero = zeros[i];          // 0 -> 1 flips
    const std::uint8_t decayed_from_one = static_cast<std::uint8_t>(~ones[i]);  // 1 -> 0 flips
    EXPECT_EQ(decayed_from_zero & decayed_from_one, 0) << "byte " << i;
  }
}

TEST_F(RetentionModelTest, DecayDirectionMatchesOrientation) {
  std::vector<std::uint8_t> zeros(geometry_.row_bytes(), 0x00);
  model_.apply(bank(), 100, zeros, 40.0, 85.0);
  for (std::size_t i = 0; i < zeros.size(); ++i) {
    for (std::uint32_t j = 0; j < 8; ++j) {
      if ((zeros[i] >> j) & 1) {
        const auto bit = static_cast<std::uint32_t>(i) * 8 + j;
        EXPECT_TRUE(is_anti_cell(cfg_.seed, bank(), 100, bit, cfg_.anti_cell_fraction))
            << "bit " << bit << " flipped 0->1 but is a true cell";
      }
    }
  }
}

TEST_F(RetentionModelTest, RowMinRetentionIsConsistentWithApply) {
  const double t_min = model_.row_min_retention_s(bank(), 321, 85.0);
  EXPECT_EQ(flips(321, 0x00, t_min * 0.95) + flips(321, 0xFF, t_min * 0.95), 0u);
  EXPECT_GT(flips(321, 0x00, t_min * 1.05) + flips(321, 0xFF, t_min * 1.05), 0u);
}

TEST_F(RetentionModelTest, RowMinRetentionSuitsUtrrTimescales) {
  // §5 relies on profiling rows with usable retention times; typical
  // per-row minima should be fractions of a second to seconds at 85 degC.
  double lo = 1e18;
  double hi = 0.0;
  for (std::uint32_t r = 0; r < 64; ++r) {
    const double t = model_.row_min_retention_s(bank(), 4096 + r, 85.0);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(lo, 0.03);
  EXPECT_LT(lo, 2.0);
  EXPECT_LT(hi, 60.0);
}

TEST_F(RetentionModelTest, ApplyIsDeterministic) {
  std::vector<std::uint8_t> a(geometry_.row_bytes(), 0x00);
  std::vector<std::uint8_t> b(geometry_.row_bytes(), 0x00);
  model_.apply(bank(), 77, a, 3.0, 85.0);
  model_.apply(bank(), 77, b, 3.0, 85.0);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rh::fault
