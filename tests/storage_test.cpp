// The storage durability plane, end to end: the deterministic disk-fault
// injector, CRC-32 line framing, the DurableFile / write_file_atomic
// primitives under every fault kind, journal damage classification and
// quarantine resume, campaign-level byte-identity under disk-fault storms,
// metrics-stream degradation, and rh_fsck's detect/repair contract.
#include "resilience/storage.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/fsck.hpp"
#include "campaign/journal.hpp"
#include "campaign/tail.hpp"
#include "common/error.hpp"
#include "core/spatial.hpp"
#include "telemetry/stream.hpp"

namespace rh::resilience {
namespace {

/// A scratch file deleted on scope exit.
class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A plan whose only fault is one scripted entry — exact placement.
StorageFaultPlan scripted(StorageFaultKind kind, std::uint64_t opportunity) {
  StorageFaultPlan plan;
  plan.script.push_back({kind, opportunity});
  return plan;
}

// ---------------------------------------------------------------------------
// The injector: determinism and scripting.
// ---------------------------------------------------------------------------

TEST(StorageInjector, SameSeedAndPlanReplayTheSameStorm) {
  StorageFaultPlan plan;
  plan.seed = 42;
  plan.set_all_rates(0.3);

  const auto drive = [](StorageFaultPlan p) {
    StorageFaultInjector injector(std::move(p));
    for (int i = 0; i < 200; ++i) {
      for (std::size_t k = 0; k < kStorageFaultKindCount; ++k) {
        (void)injector.should_fire(static_cast<StorageFaultKind>(k));
      }
    }
    return injector.log_string();
  };

  const std::string first = drive(plan);
  EXPECT_EQ(first, drive(plan)) << "identical plans must tear identical bytes";
  EXPECT_FALSE(first.empty()) << "a 30% storm over 1000 opportunities fires";

  StorageFaultPlan reseeded = plan;
  reseeded.seed = 43;
  EXPECT_NE(first, drive(reseeded)) << "the seed must decorrelate storms";
}

TEST(StorageInjector, PerKindStreamsAreIndependent) {
  // Arming one kind must not shift when another kind fires: each kind
  // consumes its own opportunity counter.
  StorageFaultPlan torn_only;
  torn_only.seed = 7;
  torn_only.set_rate(StorageFaultKind::kTornLine, 0.5);

  StorageFaultPlan both = torn_only;
  both.set_rate(StorageFaultKind::kFsyncFail, 0.5);

  const auto torn_pattern = [](StorageFaultPlan p) {
    StorageFaultInjector injector(std::move(p));
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      (void)injector.should_fire(StorageFaultKind::kFsyncFail);
      pattern += injector.should_fire(StorageFaultKind::kTornLine) ? '1' : '0';
    }
    return pattern;
  };
  EXPECT_EQ(torn_pattern(torn_only), torn_pattern(both));
}

TEST(StorageInjector, ScriptedFaultFiresExactlyOnItsOpportunity) {
  StorageFaultInjector injector(scripted(StorageFaultKind::kTornLine, 2));
  EXPECT_FALSE(injector.should_fire(StorageFaultKind::kTornLine));
  EXPECT_FALSE(injector.should_fire(StorageFaultKind::kTornLine));
  EXPECT_TRUE(injector.should_fire(StorageFaultKind::kTornLine));
  EXPECT_FALSE(injector.should_fire(StorageFaultKind::kTornLine));
  EXPECT_EQ(injector.stats().injected, 1u);
  EXPECT_EQ(injector.stats().by_kind[static_cast<std::size_t>(StorageFaultKind::kTornLine)],
            1u);
}

// ---------------------------------------------------------------------------
// CRC framing.
// ---------------------------------------------------------------------------

TEST(CrcFrame, RoundTripsThePayload) {
  const std::string payload = R"({"shard":7,"records":[]})";
  const std::string framed = frame_line(payload);
  ASSERT_EQ(framed.size(), payload.size() + 9) << "'\\t' + 8 hex digits";
  std::string_view out;
  EXPECT_EQ(check_frame(framed, out), FrameCheck::kFramed);
  EXPECT_EQ(out, payload);
}

TEST(CrcFrame, BareV1LineIsUnframedNotCorrupt) {
  std::string_view out;
  EXPECT_EQ(check_frame(R"({"shard":1,"records":[]})", out), FrameCheck::kUnframed);
  EXPECT_EQ(out, R"({"shard":1,"records":[]})");
}

TEST(CrcFrame, EveryPayloadBitFlipIsDetected) {
  const std::string payload = R"({"sample":"cycles","shard":3,"cycle":16777216})";
  const std::string framed = frame_line(payload);
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    std::string damaged = framed;
    damaged[bit / 8] = static_cast<char>(static_cast<unsigned char>(damaged[bit / 8]) ^
                                         (1u << (bit % 8)));
    std::string_view out;
    EXPECT_EQ(check_frame(damaged, out), FrameCheck::kMismatch)
        << "flip of payload bit " << bit << " slipped through";
  }
}

// ---------------------------------------------------------------------------
// DurableFile under each fault kind.
// ---------------------------------------------------------------------------

TEST(DurableFileTest, FaultFreeLinesLandNewlineTerminated) {
  const TempPath path("storage_test_plain.jsonl");
  {
    DurableFile file(path.str(), "test file", /*truncate=*/true, nullptr);
    file.write_line("alpha");
    file.write_line("beta");
  }
  EXPECT_EQ(read_file(path.str()), "alpha\nbeta\n");
}

TEST(DurableFileTest, EnospcThrowsBeforeAnythingLands) {
  const TempPath path("storage_test_enospc.jsonl");
  StorageFaultInjector injector(scripted(StorageFaultKind::kEnospc, 0));
  DurableFile file(path.str(), "test file", true, &injector);
  EXPECT_THROW(file.write_line("doomed"), common::StorageError);
  EXPECT_EQ(read_file(path.str()), "") << "a refused write leaves no bytes";
}

TEST(DurableFileTest, ShortWriteThrowsWithOnlyAPrefixOnDisk) {
  const TempPath path("storage_test_short.jsonl");
  StorageFaultInjector injector(scripted(StorageFaultKind::kShortWrite, 1));
  DurableFile file(path.str(), "test file", true, &injector);
  file.write_line("intact");
  EXPECT_THROW(file.write_line("this line will be cut off"), common::StorageError);
  const std::string content = read_file(path.str());
  EXPECT_EQ(content.rfind("intact\n", 0), 0u);
  EXPECT_LT(content.size(), std::string("intact\nthis line will be cut off\n").size())
      << "a short write lands a strict prefix";
}

TEST(DurableFileTest, TornLineLandsAPrefixSilently) {
  // The defining property of a torn line: the writer believes it landed.
  const TempPath path("storage_test_torn.jsonl");
  StorageFaultInjector injector(scripted(StorageFaultKind::kTornLine, 0));
  {
    DurableFile file(path.str(), "test file", true, &injector);
    EXPECT_NO_THROW(file.write_line("silently torn"));
    EXPECT_NO_THROW(file.write_line("next"));
  }
  const std::string content = read_file(path.str());
  EXPECT_EQ(content.find("silently torn\n"), std::string::npos)
      << "the torn line must not be whole";
  // The next line fuses onto the torn prefix — exactly the mid-file
  // corruption shape the readers quarantine.
  EXPECT_NE(content.find("next\n"), std::string::npos);
}

TEST(DurableFileTest, BitCorruptLandsTheLineThenRotsIt) {
  const TempPath path("storage_test_rot.jsonl");
  StorageFaultPlan plan = scripted(StorageFaultKind::kBitCorrupt, 0);
  plan.corrupt_bits = 2;
  StorageFaultInjector injector(plan);
  const std::string line = "a line that will rot on the medium";
  {
    DurableFile file(path.str(), "test file", true, &injector);
    EXPECT_NO_THROW(file.write_line(line));
  }
  const std::string content = read_file(path.str());
  ASSERT_EQ(content.size(), line.size() + 1) << "rot changes bits, not lengths";
  EXPECT_NE(content, line + "\n");
}

TEST(DurableFileTest, FsyncFailureThrowsAfterTheDataLanded) {
  const TempPath path("storage_test_fsync.jsonl");
  StorageFaultInjector injector(scripted(StorageFaultKind::kFsyncFail, 0));
  DurableFile file(path.str(), "test file", true, &injector);
  EXPECT_THROW(file.write_line("written but not durable"), common::StorageError);
  EXPECT_EQ(read_file(path.str()), "written but not durable\n")
      << "the bytes are there; only the durability barrier failed";
}

// ---------------------------------------------------------------------------
// write_file_atomic.
// ---------------------------------------------------------------------------

TEST(AtomicWriteTest, ReplacesContentAndLeavesNoTmp) {
  const TempPath path("storage_test_atomic.json");
  write_file_atomic(path.str(), "{\"v\":1}\n", "test doc");
  write_file_atomic(path.str(), "{\"v\":2}\n", "test doc");
  EXPECT_EQ(read_file(path.str()), "{\"v\":2}\n");
  EXPECT_FALSE(std::filesystem::exists(path.str() + ".tmp"));
}

TEST(AtomicWriteTest, ShortWriteLeavesOldContentAndAnOrphanTmp) {
  const TempPath path("storage_test_atomic_short.json");
  const TempPath tmp(path.str() + ".tmp");
  write_file_atomic(path.str(), "{\"v\":1}\n", "test doc");
  StorageFaultInjector injector(scripted(StorageFaultKind::kShortWrite, 0));
  EXPECT_THROW(
      write_file_atomic(path.str(), "{\"v\":2,\"pad\":\"xxxxxxxx\"}\n", "test doc", &injector),
      common::StorageError);
  EXPECT_EQ(read_file(path.str()), "{\"v\":1}\n") << "the target must never be torn";
  EXPECT_TRUE(std::filesystem::exists(tmp.str())) << "the torn tmp is rh_fsck fodder";
}

TEST(AtomicWriteTest, EnospcLeavesTheTargetUntouched) {
  const TempPath path("storage_test_atomic_enospc.json");
  write_file_atomic(path.str(), "old\n", "test doc");
  StorageFaultInjector injector(scripted(StorageFaultKind::kEnospc, 0));
  EXPECT_THROW(write_file_atomic(path.str(), "new\n", "test doc", &injector),
               common::StorageError);
  EXPECT_EQ(read_file(path.str()), "old\n");
}

}  // namespace
}  // namespace rh::resilience

namespace rh::campaign {
namespace {

using resilience::StorageFaultKind;
using resilience::StorageFaultPlan;

class TempPath {
public:
  explicit TempPath(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

class TempDir {
public:
  explicit TempDir(std::string path) : path_(std::move(path)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

core::RowRecord minimal_record(std::uint32_t row) {
  core::RowRecord record;
  record.site = {0, 0, 1};
  record.physical_row = row;
  return record;
}

/// Flips one byte in the middle of the `line_no`-th line (0-based) of a
/// JSONL file — the canonical mid-file bit-rot lesion.
void corrupt_line(const std::string& path, std::size_t line_no) {
  std::string content = read_file(path);
  std::size_t start = 0;
  for (std::size_t i = 0; i < line_no; ++i) start = content.find('\n', start) + 1;
  const std::size_t end = content.find('\n', start);
  ASSERT_NE(end, std::string::npos);
  content[start + (end - start) / 2] ^= 0x01;
  write_raw(path, content);
}

// ---------------------------------------------------------------------------
// Journal damage classification and quarantine resume.
// ---------------------------------------------------------------------------

TEST(JournalDamage, V1BareJournalStillReads) {
  // A journal written before CRC framing existed: bare payloads. The
  // acceptance contract: readers accept v1 forever.
  const TempPath path("storage_test_v1.jsonl");
  write_raw(path.str(),
            "{\"kind\":\"rh-campaign-journal\",\"version\":1,\"seed\":5,"
            "\"config_hash\":\"00000000000000aa\",\"shards\":4}\n"
            "{\"shard\":1,\"records\":[]}\n"
            "{\"shard\":2,\"attempts\":2,\"failed\":\"injected fault\"}\n");
  const JournalReader reader(path.str());
  EXPECT_EQ(reader.header().seed, 5u);
  EXPECT_EQ(reader.header().shard_count, 4u);
  EXPECT_EQ(reader.shards().count(1), 1u);
  EXPECT_EQ(reader.shards().count(2), 0u) << "a failure line never completes a shard";
  ASSERT_EQ(reader.outcomes().size(), 2u);
  EXPECT_TRUE(reader.corrupt_lines().empty());
  EXPECT_FALSE(reader.torn_tail());
}

TEST(JournalDamage, MixedV1PrefixWithV2AppendsReads) {
  // A v1 journal resumed by a v2 writer: framed lines after bare ones.
  const TempPath path("storage_test_mixed.jsonl");
  write_raw(path.str(),
            "{\"kind\":\"rh-campaign-journal\",\"version\":1,\"seed\":9,"
            "\"config_hash\":\"00000000000000bb\",\"shards\":4}\n"
            "{\"shard\":0,\"records\":[]}\n");
  {
    const JournalReader before(path.str());
    JournalWriter writer(path.str(), before.intact_bytes());
    writer.append_shard(1, {minimal_record(3)}, 10.0, 1);
  }
  const JournalReader reader(path.str());
  EXPECT_EQ(reader.shards().count(0), 1u);
  EXPECT_EQ(reader.shards().count(1), 1u);
  EXPECT_TRUE(reader.corrupt_lines().empty());
}

TEST(JournalDamage, TornTailIsIgnoredAndDroppedOnResume) {
  const TempPath path("storage_test_torn_tail.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)}, 5.0, 1);
  }
  {
    std::ofstream out(path.str(), std::ios::app | std::ios::binary);
    out << "{\"shard\":1,\"rec";  // the kill mid-append
  }
  const JournalReader reader(path.str());
  EXPECT_TRUE(reader.torn_tail());
  EXPECT_EQ(reader.shards().size(), 1u);
  EXPECT_TRUE(reader.corrupt_lines().empty()) << "a torn tail is not corruption";

  // Resume truncates the tear; the next append must not fuse onto it.
  {
    JournalWriter writer(path.str(), reader.intact_bytes());
    writer.append_shard(1, {minimal_record(2)}, 5.0, 1);
  }
  const JournalReader after(path.str());
  EXPECT_FALSE(after.torn_tail());
  EXPECT_EQ(after.shards().size(), 2u);
  EXPECT_TRUE(after.corrupt_lines().empty());
}

TEST(JournalDamage, CorruptMidFileLineIsQuarantinedAndItsShardReRun) {
  const TempPath path("storage_test_quarantinable.jsonl");
  const TempPath sidecar(path.str() + ".quarantine");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)}, 5.0, 1);
    writer.append_shard(1, {minimal_record(2)}, 5.0, 1);
    writer.append_shard(2, {minimal_record(3)}, 5.0, 1);
  }
  corrupt_line(path.str(), 2);  // shard 1's line rots

  const JournalReader reader(path.str());
  ASSERT_EQ(reader.corrupt_lines().size(), 1u);
  EXPECT_EQ(reader.corrupt_lines()[0].line_no, 3u) << "1-based file position";
  EXPECT_EQ(reader.shards().count(0), 1u);
  EXPECT_EQ(reader.shards().count(1), 0u) << "the rotted shard must read as pending";
  EXPECT_EQ(reader.shards().count(2), 1u);

  // The quarantining resume ctor: sidecar gains the raw line, the journal
  // is compacted to header + intact lines, and the shard can be re-run.
  {
    JournalWriter writer(path.str(), reader);
    writer.append_shard(1, {minimal_record(2)}, 5.0, 1);
  }
  EXPECT_NE(read_file(sidecar.str()).find("\"shard\":1"), std::string::npos)
      << "the damaged raw line is preserved for the operator";
  const JournalReader repaired(path.str());
  EXPECT_TRUE(repaired.corrupt_lines().empty());
  EXPECT_EQ(repaired.shards().size(), 3u);
}

TEST(JournalDamage, DamagedHeaderIsFatal) {
  const TempPath path("storage_test_bad_header.jsonl");
  {
    JournalWriter writer(path.str(), JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)}, 5.0, 1);
  }
  corrupt_line(path.str(), 0);
  EXPECT_THROW((void)JournalReader(path.str()), common::ConfigError)
      << "nothing below a damaged identity line can be trusted";
}

// ---------------------------------------------------------------------------
// Campaign-level properties: byte-identity under disk-fault storms.
// ---------------------------------------------------------------------------

SweepSpec quick_sweep() {
  core::SurveyConfig survey;
  survey.channels = {0, 7};
  survey.row_stride = 512;
  survey.wcdp_by_ber = true;
  SweepSpec spec = survey_sweep(hbm::DeviceConfig{}, survey, /*max_rows_per_shard=*/2);
  spec.settle_thermal = false;
  return spec;
}

CampaignConfig quiet_config() {
  CampaignConfig config;
  config.progress = false;
  return config;
}

void expect_records_equal(const std::vector<core::RowRecord>& a,
                          const std::vector<core::RowRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site.bank, b[i].site.bank) << "record " << i;
    EXPECT_EQ(a[i].physical_row, b[i].physical_row) << "record " << i;
    for (std::size_t p = 0; p < core::kAllPatterns.size(); ++p) {
      EXPECT_EQ(a[i].ber[p].bit_errors, b[i].ber[p].bit_errors) << "record " << i;
      EXPECT_EQ(a[i].hc_first[p], b[i].hc_first[p]) << "record " << i;
    }
  }
}

TEST(StorageStorm, CampaignResultsAreByteIdenticalUnderDiskFaults) {
  const SweepSpec spec = quick_sweep();
  const TempPath journal("storage_test_storm.jsonl");
  const TempPath sidecar(journal.str() + ".quarantine");
  const TempPath stream("storage_test_storm_stream.jsonl");

  Campaign clean(quiet_config());
  const CampaignResult baseline = clean.run(spec);
  EXPECT_EQ(baseline.storage_errors, 0u);

  CampaignConfig stormy = quiet_config();
  stormy.checkpoint_path = journal.str();
  stormy.metrics_stream_path = stream.str();
  stormy.storage_fault_plan.seed = 99;
  stormy.storage_fault_plan.set_all_rates(0.5);
  Campaign storm(stormy);
  const CampaignResult damaged = storm.run(spec);

  // The acceptance bar: every injected fault leaves the results
  // byte-identical — durability degrades, correctness does not.
  expect_records_equal(baseline.flat(), damaged.flat());
  EXPECT_GT(damaged.storage_errors, 0u) << "a 50% storm must have been felt";
  EXPECT_FALSE(damaged.storage_error.empty());
}

TEST(StorageStorm, ResumeAfterMidFileRotReRunsExactlyTheDamagedShards) {
  const SweepSpec spec = quick_sweep();
  ASSERT_GT(spec.shards.size(), 4u);
  const TempPath journal("storage_test_rot_resume.jsonl");
  const TempPath sidecar(journal.str() + ".quarantine");

  CampaignConfig full = quiet_config();
  full.checkpoint_path = journal.str();
  Campaign first(full);
  const CampaignResult complete = first.run(spec);

  // Rot two mid-file shard lines, then resume: the campaign must
  // quarantine them, re-run exactly those shards, and converge to the
  // same bytes.
  corrupt_line(journal.str(), 2);
  corrupt_line(journal.str(), 4);

  CampaignConfig again = full;
  again.resume = true;
  Campaign second(again);
  const CampaignResult resumed = second.run(spec);
  EXPECT_EQ(resumed.shards_skipped, spec.shards.size() - 2)
      << "every intact shard is honoured; only the rotted ones re-run";
  expect_records_equal(complete.flat(), resumed.flat());
  EXPECT_TRUE(std::filesystem::exists(sidecar.str()));

  const JournalReader reader(journal.str());
  EXPECT_TRUE(reader.corrupt_lines().empty()) << "the resumed journal is whole again";
  EXPECT_EQ(reader.shards().size(), spec.shards.size());
}

// ---------------------------------------------------------------------------
// Metrics-stream degradation: telemetry loss never fails a run.
// ---------------------------------------------------------------------------

TEST(StreamDegrade, WriterGoesDarkAfterTheFirstStorageError) {
  const TempPath path("storage_test_degrade.jsonl");
  resilience::StorageFaultInjector injector(
      resilience::StorageFaultPlan{0, {}, {{StorageFaultKind::kEnospc, 1}}, 2});
  telemetry::MetricsStreamWriter writer(path.str(), telemetry::MetricsStreamHeader{},
                                        &injector);
  EXPECT_FALSE(writer.degraded());
  writer.append(telemetry::format_cycles_sample(0, 1, 0, 10, {}));  // fires
  EXPECT_TRUE(writer.degraded());
  EXPECT_FALSE(writer.storage_error().empty());
  // Degraded appends are silent no-ops — no throw, no further I/O.
  writer.append(telemetry::format_cycles_sample(0, 1, 1, 20, {}));
  const MetricsStreamData data = read_metrics_stream(path.str());
  EXPECT_TRUE(data.has_header);
  EXPECT_EQ(data.cycles_samples, 0u);
}

TEST(StreamDegrade, CorruptMidStreamSampleIsSkippedNotFatal) {
  const TempPath path("storage_test_stream_rot.jsonl");
  {
    telemetry::MetricsStreamWriter writer(path.str(), telemetry::MetricsStreamHeader{});
    writer.append(telemetry::format_cycles_sample(0, 1, 0, 10, {}));
    writer.append(telemetry::format_cycles_sample(0, 1, 1, 20, {}));
  }
  corrupt_line(path.str(), 1);
  const MetricsStreamData data = read_metrics_stream(path.str());
  EXPECT_EQ(data.corrupt_lines, 1u);
  EXPECT_EQ(data.cycles_samples, 1u);
  EXPECT_FALSE(data.torn);
}

// ---------------------------------------------------------------------------
// rh_fsck: detect every lesion, repair what resume would repair.
// ---------------------------------------------------------------------------

/// Builds a data dir with one of every lesion rh_fsck knows, returning the
/// expected verdict per file name.
std::map<std::string, FsckStatus> build_damaged_dir(const std::string& dir) {
  std::map<std::string, FsckStatus> expected;

  {  // clean journal
    JournalWriter writer(dir + "/job-1.journal.jsonl", JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)}, 5.0, 1);
  }
  expected["job-1.journal.jsonl"] = FsckStatus::kOk;

  {  // torn journal tail
    JournalWriter writer(dir + "/job-2.journal.jsonl", JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)}, 5.0, 1);
    std::ofstream out(dir + "/job-2.journal.jsonl", std::ios::app | std::ios::binary);
    out << "{\"shard\":1,\"rec";
  }
  expected["job-2.journal.jsonl"] = FsckStatus::kTorn;

  {  // corrupt mid-file journal line
    JournalWriter writer(dir + "/job-3.journal.jsonl", JournalHeader{1, 2, 4});
    writer.append_shard(0, {minimal_record(1)}, 5.0, 1);
    writer.append_shard(1, {minimal_record(2)}, 5.0, 1);
  }
  corrupt_line(dir + "/job-3.journal.jsonl", 1);
  expected["job-3.journal.jsonl"] = FsckStatus::kCorrupt;

  {  // destroyed journal header: unrepairable
    JournalWriter writer(dir + "/job-4.journal.jsonl", JournalHeader{1, 2, 4});
  }
  corrupt_line(dir + "/job-4.journal.jsonl", 0);
  expected["job-4.journal.jsonl"] = FsckStatus::kCorrupt;

  {  // clean stream
    telemetry::MetricsStreamWriter writer(dir + "/job-1.stream.jsonl",
                                          telemetry::MetricsStreamHeader{});
    writer.append(telemetry::format_cycles_sample(0, 1, 0, 10, {}));
  }
  expected["job-1.stream.jsonl"] = FsckStatus::kOk;

  // orphaned atomic-write tmp
  write_raw(dir + "/job-5.json.tmp", "{\"config\":");
  expected["job-5.json.tmp"] = FsckStatus::kOrphanTmp;

  // corrupt whole-file descriptor: unrepairable
  write_raw(dir + "/job-6.json", "{\"schema\":\"rh-serve-job/v1\",\"id\":6,");
  expected["job-6.json"] = FsckStatus::kCorrupt;

  return expected;
}

TEST(Fsck, DetectsEveryInjectedLesion) {
  const TempDir dir("storage_test_fsck_detect");
  const auto expected = build_damaged_dir(dir.str());

  const std::vector<FsckVerdict> verdicts = fsck_scan(dir.str());
  ASSERT_EQ(verdicts.size(), expected.size());
  for (const FsckVerdict& v : verdicts) {
    const std::string name = std::filesystem::path(v.path).filename().string();
    ASSERT_EQ(expected.count(name), 1u) << name;
    EXPECT_EQ(v.status, expected.at(name)) << name << ": " << v.detail;
  }

  // The two whole-document lesions and the destroyed header are beyond
  // line-level repair; everything else is repairable.
  for (const FsckVerdict& v : verdicts) {
    const std::string name = std::filesystem::path(v.path).filename().string();
    if (name == "job-4.journal.jsonl" || name == "job-6.json") {
      EXPECT_FALSE(v.repairable) << name;
    } else if (v.status != FsckStatus::kOk) {
      EXPECT_TRUE(v.repairable) << name << ": " << v.detail;
    }
  }
}

TEST(Fsck, RepairRestoresEveryRepairableFile) {
  const TempDir dir("storage_test_fsck_repair");
  build_damaged_dir(dir.str());

  for (const FsckVerdict& v : fsck_scan(dir.str())) {
    if (v.status == FsckStatus::kOk || !v.repairable) continue;
    EXPECT_FALSE(fsck_repair(v).empty()) << v.path;
  }

  // Post-repair: the torn journal reads whole, the quarantined journal
  // reads whole (minus the rotted shard), the orphan tmp is gone, and a
  // re-scan finds only the two unrepairable files still damaged.
  const JournalReader torn(dir.str() + "/job-2.journal.jsonl");
  EXPECT_FALSE(torn.torn_tail());
  const JournalReader rotted(dir.str() + "/job-3.journal.jsonl");
  EXPECT_TRUE(rotted.corrupt_lines().empty());
  EXPECT_EQ(rotted.shards().count(0), 0u) << "the rotted shard stays pending, not invented";
  EXPECT_EQ(rotted.shards().count(1), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.str() + "/job-3.journal.jsonl.quarantine"));
  EXPECT_FALSE(std::filesystem::exists(dir.str() + "/job-5.json.tmp"));

  std::size_t damaged = 0;
  for (const FsckVerdict& v : fsck_scan(dir.str())) {
    if (v.status != FsckStatus::kOk) {
      ++damaged;
      EXPECT_FALSE(v.repairable) << v.path << " should have been repaired already";
    }
  }
  EXPECT_EQ(damaged, 2u) << "only the destroyed header and the corrupt descriptor remain";
}

TEST(Fsck, RepairingAnUnrepairableVerdictThrows) {
  const TempDir dir("storage_test_fsck_refuse");
  write_raw(dir.str() + "/job-1.json", "not json at all");
  const std::vector<FsckVerdict> verdicts = fsck_scan(dir.str());
  ASSERT_EQ(verdicts.size(), 1u);
  ASSERT_FALSE(verdicts[0].repairable);
  EXPECT_THROW((void)fsck_repair(verdicts[0]), common::ConfigError);
}

TEST(Fsck, ReportNamesEveryFileAndTalliesTheDamage) {
  const TempDir dir("storage_test_fsck_render");
  build_damaged_dir(dir.str());
  const std::vector<FsckVerdict> verdicts = fsck_scan(dir.str());
  std::ostringstream os;
  render_fsck_report(os, verdicts);
  const std::string text = os.str();
  for (const FsckVerdict& v : verdicts) {
    EXPECT_NE(text.find(v.path), std::string::npos) << v.path;
  }
  EXPECT_NE(text.find("summary:"), std::string::npos);
  EXPECT_NE(text.find("1 torn"), std::string::npos) << text;
  EXPECT_NE(text.find("3 corrupt (2 unrepairable)"), std::string::npos) << text;
}

}  // namespace
}  // namespace rh::campaign
