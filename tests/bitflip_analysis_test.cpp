#include "core/bitflip_analysis.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "bender/host.hpp"

namespace rh::core {
namespace {

class BitflipAnalysisTest : public ::testing::Test {
protected:
  BitflipAnalysisTest()
      : host_(hbm::DeviceConfig{}),
        map_(RowMap::from_device(host_.device())),
        analyzer_(host_, map_) {
    host_.device().set_temperature(85.0);
  }

  bender::BenderHost host_;
  RowMap map_;
  BitflipAnalyzer analyzer_;
  const Site site_{7, 0, 0};
};

TEST_F(BitflipAnalysisTest, ProfileAccountsEveryFlipOnce) {
  const auto profile = analyzer_.profile_row(site_, 416, DataPattern::kRowstripe0);
  ASSERT_GT(profile.flipped_bits.size(), 0u);
  EXPECT_EQ(profile.directions.total(), profile.flipped_bits.size());
  const std::uint64_t column_sum = std::accumulate(profile.flips_per_column.begin(),
                                                   profile.flips_per_column.end(), std::uint64_t{0});
  EXPECT_EQ(column_sum, profile.flipped_bits.size());
}

TEST_F(BitflipAnalysisTest, AllZeroVictimFlipsOnlyUpward) {
  const auto profile = analyzer_.profile_row(site_, 416, DataPattern::kRowstripe0);
  EXPECT_GT(profile.directions.zero_to_one, 0u);
  EXPECT_EQ(profile.directions.one_to_zero, 0u);
  EXPECT_DOUBLE_EQ(profile.directions.zero_to_one_fraction(), 1.0);
}

TEST_F(BitflipAnalysisTest, AllOneVictimFlipsOnlyDownward) {
  const auto profile = analyzer_.profile_row(site_, 416, DataPattern::kRowstripe1);
  EXPECT_EQ(profile.directions.zero_to_one, 0u);
  EXPECT_GT(profile.directions.one_to_zero, 0u);
}

TEST_F(BitflipAnalysisTest, CheckeredPatternsFlipInBothDirections) {
  FlipDirectionStats census =
      analyzer_.direction_census(site_, 400, 8, 5, DataPattern::kCheckered0);
  EXPECT_GT(census.zero_to_one, 0u);
  EXPECT_GT(census.one_to_zero, 0u);
  // Anti-cell majority + stronger anti-cell coupling: stored zeros flip
  // (to one) more often than stored ones on this chip.
  EXPECT_GT(census.zero_to_one, census.one_to_zero);
}

TEST_F(BitflipAnalysisTest, FlipsAreSpreadAcrossColumns) {
  const auto profile = analyzer_.profile_row(site_, 416, DataPattern::kRowstripe0);
  std::size_t columns_with_flips = 0;
  for (const auto count : profile.flips_per_column) {
    columns_with_flips += count > 0;
  }
  // With percent-scale BER over 32 columns, flips should touch most bursts.
  EXPECT_GT(columns_with_flips, profile.flips_per_column.size() / 2);
}

TEST_F(BitflipAnalysisTest, RowHammerFlipsAreFullyRepeatable) {
  // Deterministic thresholds + identical experiments = identical flips;
  // this is the property real studies exploit for memory templating.
  EXPECT_DOUBLE_EQ(analyzer_.repeatability(site_, 420, DataPattern::kRowstripe0), 1.0);
}

TEST_F(BitflipAnalysisTest, ProfilesAreDeterministic) {
  const auto a = analyzer_.profile_row(site_, 500, DataPattern::kCheckered1);
  const auto b = analyzer_.profile_row(site_, 500, DataPattern::kCheckered1);
  EXPECT_EQ(a.flipped_bits, b.flipped_bits);
}

}  // namespace
}  // namespace rh::core
