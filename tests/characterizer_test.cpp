#include "core/characterizer.hpp"

#include <gtest/gtest.h>

#include "bender/host.hpp"
#include "common/error.hpp"

namespace rh::core {
namespace {

class CharacterizerTest : public ::testing::Test {
protected:
  CharacterizerTest()
      : host_(hbm::DeviceConfig{}),
        map_(RowMap::from_device(host_.device())),
        chr_(host_, map_) {
    host_.device().set_temperature(85.0);
  }

  bender::BenderHost host_;
  RowMap map_;
  Characterizer chr_;
};

TEST_F(CharacterizerTest, BerAt256KHammersFlipsVulnerableRows) {
  const Site site{7, 0, 0};  // most vulnerable channel
  const auto ber = chr_.measure_ber(site, 416, DataPattern::kRowstripe0);
  EXPECT_GT(ber.bit_errors, 0u);
  EXPECT_EQ(ber.bits_tested, host_.device().geometry().row_bits());
  EXPECT_GT(ber.ber(), 0.0);
  EXPECT_LT(ber.ber(), 0.5);
}

TEST_F(CharacterizerTest, BerIsRepeatable) {
  const Site site{7, 0, 0};
  const auto a = chr_.measure_ber(site, 500, DataPattern::kRowstripe0);
  const auto b = chr_.measure_ber(site, 500, DataPattern::kRowstripe0);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
}

TEST_F(CharacterizerTest, BerProgramStaysInsideTheRetentionBound) {
  const Site site{0, 0, 0};
  const auto ber = chr_.measure_ber(site, 100, DataPattern::kRowstripe0);
  // §3.1: experiments finish within 27 ms.
  EXPECT_LT(ber.elapsed_ms, 27.0);
  EXPECT_GT(ber.elapsed_ms, 20.0);  // 256 K double-sided hammers ~ 24 ms
}

TEST_F(CharacterizerTest, OversizedHammerCountViolatesTheMethodologyGuard) {
  const Site site{0, 0, 0};
  EXPECT_THROW((void)chr_.measure_ber(site, 100, DataPattern::kRowstripe0, 300'000),
               common::ConfigError);
}

TEST_F(CharacterizerTest, TheGuardCanBeLiftedForAblations) {
  CharacterizerConfig cfg;
  cfg.enforce_retention_bound = false;
  Characterizer loose(host_, map_, cfg);
  const Site site{0, 0, 0};
  // Runs (and may collect retention flips on top) — but does not throw.
  const auto ber = loose.measure_ber(site, 100, DataPattern::kRowstripe0, 300'000);
  EXPECT_GT(ber.elapsed_ms, 27.0);
}

TEST_F(CharacterizerTest, HcFirstIsExactAtToleranceOne) {
  const Site site{7, 0, 0};
  const auto hc = chr_.measure_hc_first(site, 416, DataPattern::kRowstripe0, 1);
  ASSERT_TRUE(hc.has_value());
  ASSERT_GT(*hc, 1u);
  // Exactness: no flip one hammer earlier, flip at HC_first.
  EXPECT_EQ(chr_.measure_ber(site, 416, DataPattern::kRowstripe0, *hc - 1).bit_errors, 0u);
  EXPECT_GT(chr_.measure_ber(site, 416, DataPattern::kRowstripe0, *hc).bit_errors, 0u);
}

TEST_F(CharacterizerTest, HcFirstToleranceBoundsTheAnswerFromAbove) {
  const Site site{7, 0, 0};
  const auto exact = chr_.measure_hc_first(site, 416, DataPattern::kRowstripe0, 1);
  const auto coarse = chr_.measure_hc_first(site, 416, DataPattern::kRowstripe0, 4096);
  ASSERT_TRUE(exact && coarse);
  EXPECT_GE(*coarse, *exact);
  EXPECT_LE(*coarse, *exact + 4096);
}

TEST_F(CharacterizerTest, LastSubarrayRowsAreFarHarderToFlip) {
  // The attenuated last subarray (paper's SA Z): a row there either never
  // flips within 256 K hammers or needs several times more hammers than the
  // equivalent mid-bank row.
  const Site site{0, 0, 0};
  const std::uint32_t last_sa_row = host_.device().geometry().rows_per_bank - 416;
  const auto mid = chr_.measure_hc_first(site, 416, DataPattern::kRowstripe0, 2048);
  const auto last = chr_.measure_hc_first(site, last_sa_row, DataPattern::kRowstripe0, 2048);
  ASSERT_TRUE(mid.has_value());
  if (last.has_value()) {
    EXPECT_GT(*last, *mid * 3);
  } else {
    SUCCEED();  // never flipped: even stronger attenuation
  }
}

TEST_F(CharacterizerTest, EdgeRowsFallBackToSingleSidedHammering) {
  const Site site{7, 0, 0};
  const auto ber0 = chr_.measure_ber(site, 0, DataPattern::kRowstripe0);
  const auto ber_last =
      chr_.measure_ber(site, host_.device().geometry().rows_per_bank - 1,
                       DataPattern::kRowstripe0);
  // Either may flip or not (single-sided, last subarray), but both must run
  // legally and within the bound.
  EXPECT_LT(ber0.elapsed_ms, 27.0);
  EXPECT_LT(ber_last.elapsed_ms, 27.0);
}

TEST_F(CharacterizerTest, CharacterizeRowPicksTheStrongestPatternAsWcdp) {
  const Site site{7, 0, 0};
  const RowRecord rec = chr_.characterize_row(site, 416);
  const auto wcdp_hc = rec.hc_first[static_cast<std::size_t>(rec.wcdp)];
  ASSERT_TRUE(wcdp_hc.has_value());
  for (std::size_t i = 0; i < kAllPatterns.size(); ++i) {
    if (rec.hc_first[i]) {
      EXPECT_LE(*wcdp_hc, *rec.hc_first[i] + chr_.config().wcdp_tolerance);
    }
  }
  EXPECT_EQ(rec.min_hc_first(), wcdp_hc);
}

TEST_F(CharacterizerTest, FlipDirectionsMatchThePatternByte) {
  const Site site{7, 0, 0};
  const auto rs0 = chr_.measure_ber(site, 416, DataPattern::kRowstripe0);
  EXPECT_EQ(rs0.ones_to_zeros, 0u);  // all-zero victim can only flip 0 -> 1
  EXPECT_EQ(rs0.zeros_to_ones, rs0.bit_errors);
  const auto rs1 = chr_.measure_ber(site, 416, DataPattern::kRowstripe1);
  EXPECT_EQ(rs1.zeros_to_ones, 0u);  // all-one victim can only flip 1 -> 0
}

TEST_F(CharacterizerTest, MoreHammersNeverFlipFewerBits) {
  const Site site{7, 0, 0};
  std::uint64_t prev = 0;
  for (const std::uint64_t hammers : {65'536ULL, 131'072ULL, 262'144ULL}) {
    const auto ber = chr_.measure_ber(site, 416, DataPattern::kRowstripe0, hammers);
    EXPECT_GE(ber.bit_errors, prev);
    prev = ber.bit_errors;
  }
}

TEST_F(CharacterizerTest, RejectsDegenerateConfig) {
  CharacterizerConfig cfg;
  cfg.ber_hammers = 0;
  EXPECT_THROW(Characterizer(host_, map_, cfg), common::PreconditionError);
}

}  // namespace
}  // namespace rh::core
