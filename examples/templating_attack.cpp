// Attack implication (paper §4 summary): memory templating.
//
// "An RH attack can use the most-RH-vulnerable HBM2 channel to reduce the
//  time it spends on preparing for an attack, by finding exploitable RH
//  bitflips faster (i.e., by accelerating memory templating), and performing
//  the attack, by benefiting from a small HC_first value."
//
// This scenario plays both strategies: scan rows in channel 0 (naive) vs
// channel 7 (informed by profiling) until N exploitable bitflips are found,
// and compares the DRAM time each strategy spends.
//
// Run:   ./build/examples/templating_attack [--targets=N]
#include <iostream>

#include "bender/host.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

namespace {

struct TemplatingRun {
  std::uint32_t rows_scanned = 0;
  std::uint64_t flips_found = 0;
  double dram_time_ms = 0.0;
  std::uint64_t best_hc_first = ~0ULL;
};

TemplatingRun scan_channel(bender::BenderHost& host, const core::RowMap& map,
                           std::uint32_t channel, std::uint64_t target_flips) {
  core::Characterizer chr(host, map);
  const core::Site site{channel, 0, 0};
  TemplatingRun run;
  // Walk rows mid-subarray-first within each subarray span — the profiled
  // sweet spots — exactly what a profiling-informed attacker would do.
  for (std::uint32_t i = 0; run.flips_found < target_flips && i < 512; ++i) {
    const std::uint32_t row = 416 + i * 13;  // stays clear of subarray edges
    const auto ber = chr.measure_ber(site, row, core::DataPattern::kRowstripe0);
    ++run.rows_scanned;
    run.flips_found += ber.bit_errors;
    run.dram_time_ms += ber.elapsed_ms;
    if (ber.bit_errors > 0) {
      if (const auto hc = chr.measure_hc_first(site, row, core::DataPattern::kRowstripe0, 4096)) {
        run.best_hc_first = std::min(run.best_hc_first, *hc);
      }
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto targets = static_cast<std::uint64_t>(args.get_positive_int("targets", 2000));

  std::cout << "== memory templating: naive vs vulnerability-aware channel choice ==\n\n";

  bender::BenderHost host{hbm::DeviceConfig{}};
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());

  std::cout << "hunting for " << targets << " exploitable bitflips...\n\n";
  const TemplatingRun naive = scan_channel(host, map, 0, targets);
  const TemplatingRun informed = scan_channel(host, map, 7, targets);

  common::Table table({"strategy", "channel", "rows scanned", "flips found",
                       "DRAM time (ms)", "best HC_first"});
  table.add_row({"naive", "0", std::to_string(naive.rows_scanned),
                 std::to_string(naive.flips_found),
                 common::fmt_double(naive.dram_time_ms, 1),
                 naive.best_hc_first == ~0ULL ? "n/a" : std::to_string(naive.best_hc_first)});
  table.add_row({"profiled", "7", std::to_string(informed.rows_scanned),
                 std::to_string(informed.flips_found),
                 common::fmt_double(informed.dram_time_ms, 1),
                 informed.best_hc_first == ~0ULL ? "n/a"
                                                 : std::to_string(informed.best_hc_first)});
  table.print(std::cout);

  if (informed.dram_time_ms > 0.0) {
    std::cout << "\ntemplating speedup from targeting the most vulnerable channel: "
              << common::fmt_double(naive.dram_time_ms / informed.dram_time_ms, 2) << "x\n";
  }
  std::cout << "the smaller best-HC_first in channel 7 also shortens the *online* attack\n"
               "(fewer activations needed per induced flip), as §4 of the paper notes.\n";
  return 0;
}
