// DRAM as a thermometer (related work [123]: temperature estimation of
// HBM2 channels from retention-error tails).
//
// Retention time halves per ~+10 degC, so the retention bitflip count of a
// fixed row population after a fixed unrefreshed wait is a monotone
// function of chip temperature. Calibrate the curve at known setpoints,
// then read the chip's temperature *from the DRAM itself* — no thermal
// sensor involved. This also demonstrates the SpyHammer-style risk the
// paper's reference list touches on: memory remotely leaks physical
// quantities.
//
// Run:   ./build/examples/dram_thermometer
#include <iostream>

#include "bender/host.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/row_map.hpp"
#include "core/thermometer.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  (void)args;

  std::cout << "== DRAM-as-thermometer (retention side channel) ==\n\n";

  bender::BenderHost host{hbm::DeviceConfig{}};
  const core::RowMap map = core::RowMap::from_device(host.device());
  core::DramThermometer thermometer(host, map, core::Site{0, 0, 0});

  std::cout << "calibrating at 45 / 55 / 65 / 75 / 85 degC (thermal rig does the work)...\n";
  thermometer.calibrate({45.0, 55.0, 65.0, 75.0, 85.0});

  common::Table cal({"temperature (degC)", "retention flips"});
  for (const auto& point : thermometer.calibration()) {
    cal.add_row({common::fmt_double(point.temperature_c, 1), std::to_string(point.flips)});
  }
  cal.print(std::cout);

  std::cout << "\nnow pretending we do NOT know the chip temperature...\n";
  common::Table est({"true degC (hidden)", "estimated from DRAM", "error"});
  for (const double truth : {50.0, 62.0, 70.0, 81.0}) {
    host.set_chip_temperature(truth);
    const double estimated = thermometer.estimate();
    est.add_row({common::fmt_double(truth, 1), common::fmt_double(estimated, 1),
                 common::fmt_double(estimated - truth, 1)});
  }
  est.print(std::cout);
  std::cout << "\nthe DRAM array itself reports its temperature to within a couple of\n"
               "degrees — handy for testing rigs, worrying for isolation.\n";
  return 0;
}
