// Defense implication (paper §4 summary): a variation-aware mitigation.
//
// "An RH defense mechanism can adapt itself to the heterogeneous
//  distribution of the RH vulnerability across channels and subarrays,
//  which may allow the defense mechanism to more efficiently prevent RH
//  bitflips."
//
// This scenario profiles HC_first per channel *and* per subarray class
// (normal vs the attenuated last subarray) and derives a two-level
// preventive-refresh budget, comparing it to the uniform worst-case budget.
//
// Run:   ./build/examples/variation_aware_defense [--rows=N]
#include <iostream>
#include <cmath>
#include <limits>
#include <vector>

#include "bender/host.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto rows = static_cast<std::uint32_t>(args.get_positive_int("rows", 16));

  std::cout << "== variation-aware RowHammer defense sizing ==\n\n";

  bender::BenderHost host{hbm::DeviceConfig{}};
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  core::CharacterizerConfig ccfg;
  ccfg.wcdp_tolerance = 2048;
  core::Characterizer chr(host, map, ccfg);

  const auto& geometry = host.device().geometry();
  std::cout << "profiling minimum HC_first per channel (" << rows << " rows each)...\n\n";

  std::vector<double> normal_min(geometry.channels, std::numeric_limits<double>::infinity());
  std::vector<double> last_sa_min(geometry.channels, std::numeric_limits<double>::infinity());
  for (std::uint32_t ch = 0; ch < geometry.channels; ++ch) {
    const core::Site site{ch, 0, 0};
    for (std::uint32_t i = 0; i < rows; ++i) {
      if (const auto hc = chr.measure_hc_first(site, 400 + i * 101,
                                               core::DataPattern::kRowstripe0, 2048)) {
        normal_min[ch] = std::min(normal_min[ch], static_cast<double>(*hc));
      }
      if (const auto hc =
              chr.measure_hc_first(site, geometry.rows_per_bank - 700 + i * 17,
                                   core::DataPattern::kRowstripe0, 2048)) {
        last_sa_min[ch] = std::min(last_sa_min[ch], static_cast<double>(*hc));
      }
    }
  }

  double chip_min = std::numeric_limits<double>::infinity();
  for (const double m : normal_min) chip_min = std::min(chip_min, m);

  // Mitigation cost model: preventive-refresh rate proportional to
  // 1/HC_first of the *region* being protected.
  common::Table table({"channel", "min HC_first (bank)", "min HC_first (last SA)",
                       "uniform cost", "aware cost"});
  double uniform_total = 0.0;
  double aware_total = 0.0;
  for (std::uint32_t ch = 0; ch < geometry.channels; ++ch) {
    const double uniform = 1.0;
    // Weighted by capacity: the last subarray is 832/16384 of the bank.
    const double frac_last = 832.0 / geometry.rows_per_bank;
    const double aware_normal = chip_min / normal_min[ch];
    const double aware_last = std::isinf(last_sa_min[ch]) ? 0.0 : chip_min / last_sa_min[ch];
    const double aware = (1.0 - frac_last) * aware_normal + frac_last * aware_last;
    uniform_total += uniform;
    aware_total += aware;
    table.add_row({std::to_string(ch), common::fmt_double(normal_min[ch], 0),
                   std::isinf(last_sa_min[ch]) ? ">262144"
                                               : common::fmt_double(last_sa_min[ch], 0),
                   common::fmt_double(uniform, 3), common::fmt_double(aware, 3)});
  }
  table.print(std::cout);

  std::cout << "\nuniform defense budget (everything provisioned for the chip-wide worst\n"
            << "case): " << common::fmt_double(uniform_total, 2)
            << "   |   variation-aware budget: " << common::fmt_double(aware_total, 2) << " ("
            << common::fmt_percent(1.0 - aware_total / uniform_total, 1) << " saved)\n"
            << "\nthe last subarray barely needs protection at all — its HC_first is far\n"
               "beyond what any attacker can accumulate inside a refresh window.\n";
  return 0;
}
