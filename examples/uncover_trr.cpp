// Uncovering the undisclosed in-DRAM TRR (paper §5), narrated step by step.
//
// The chip documents one TRR mode (JEDEC MR15), but also ships a
// *proprietary* mitigation invisible to the memory controller. The U-TRR
// methodology exposes it with nothing but retention failures:
// if a row decays unless someone refreshes it, then "it did not decay" is
// proof that the in-DRAM mitigation touched it.
//
// Run:   ./build/examples/uncover_trr [--iterations=N]
#include <iostream>

#include "bender/host.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/retention_profiler.hpp"
#include "core/row_map.hpp"
#include "core/utrr.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto iterations = static_cast<std::uint32_t>(args.get_positive_int("iterations", 100));

  std::cout << "== uncovering the proprietary TRR (paper §5) ==\n\n";

  bender::BenderHost host{hbm::DeviceConfig{}};
  host.set_chip_temperature(85.0);
  const core::RowMap map = core::RowMap::from_device(host.device());
  const core::Site site{0, 0, 0};

  // Step 1: find a row with a usable retention time, away from the
  // REF-pointer sweep (the sweep covers 2 rows per REF from row 0).
  core::RetentionProfiler profiler(host, map);
  std::uint32_t probe_row = 4096;
  std::optional<core::RetentionProfile> profile;
  while (!(profile = profiler.profile(site, probe_row))) ++probe_row;
  std::cout << "step 1: row " << probe_row << " decays after "
            << common::fmt_double(profile->retention_ms, 1) << " ms unrefreshed ("
            << profile->flips << " retention bitflips)\n";

  // Steps 2-6, iterated: write + wait T/2, poke the aggressor, REF, wait
  // T/2, read. No flips on an iteration == TRR refreshed our row.
  std::cout << "step 2-6: running " << iterations << " iterations of the side-channel loop\n";
  core::UtrrConfig config;
  config.iterations = iterations;
  core::UtrrExperiment experiment(host, map, config);
  const core::UtrrResult result = experiment.run(site, probe_row);

  std::cout << "\niterations where the row was silently refreshed:";
  for (const auto it : result.refreshed_iterations) std::cout << ' ' << it;
  std::cout << '\n';

  if (result.trr_detected()) {
    std::cout << "\n=> the chip implements an undisclosed TRR mechanism.\n";
    if (result.inferred_period) {
      std::cout << "=> it performs a victim-row refresh once every " << *result.inferred_period
                << " periodic REF commands";
      if (*result.inferred_period == 17) {
        std::cout << " — the paper's finding exactly (and the same period U-TRR\n"
                     "   reported for DDR4 chips from 'Vendor C')";
      }
      std::cout << ".\n";
    }
  } else {
    std::cout << "\n=> no proprietary mitigation observed on this device.\n";
  }
  return 0;
}
