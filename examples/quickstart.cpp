// Quickstart: the shortest path from zero to a RowHammer measurement.
//
//   1. bring up the host + simulated HBM2 board
//   2. drive the thermal rig to the paper's 85 degC operating point
//   3. reverse engineer the logical->physical row mapping (§3.1)
//   4. measure one row: BER at 256 K hammers and HC_first, per data pattern
//
// Build & run:   ./build/examples/quickstart [--channel=N] [--row=N]
#include <iostream>

#include "bender/host.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto channel = static_cast<std::uint32_t>(args.get_int("channel", 7));
  const auto row = static_cast<std::uint32_t>(args.get_int("row", 416));

  std::cout << "== hbm2-rowhammer-lab quickstart ==\n\n";

  // 1. Host + device. The DeviceConfig defaults model the paper's chip:
  //    4 GiB stack, 8 channels x 2 pseudo channels x 16 banks x 16384 rows.
  bender::BenderHost host{hbm::DeviceConfig{}};
  std::cout << "device: " << host.device().geometry().stack_bytes() / (1024 * 1024 * 1024)
            << " GiB stack, " << host.device().geometry().channels << " channels, "
            << host.device().geometry().total_banks() << " banks\n";

  // 2. Thermal rig: PID-controlled heating pad + fan, like the testbed.
  host.set_chip_temperature(85.0);
  std::cout << "chip temperature settled at "
            << common::fmt_double(host.thermal().temperature(), 2) << " degC\n";

  // 3. The row decoder scrambles addresses; find the real adjacency with
  //    single-sided hammering probes before choosing aggressor rows.
  const core::Site site{channel, 0, 0};
  const core::RowMap map = core::reverse_engineer_window(host, site, 128, 64);
  std::cout << "row mapping recovered: logical 1 -> physical " << map.logical_to_physical(1)
            << " (so naive +/-1 aggressors would miss)\n\n";

  // 4. Characterize one victim row with the paper's methodology.
  core::Characterizer chr(host, map);
  std::cout << "characterizing physical row " << row << " in channel " << channel << "...\n";
  const core::RowRecord record = chr.characterize_row(site, row);

  common::Table table({"pattern", "BER @256K", "HC_first"});
  for (std::size_t i = 0; i < core::kAllPatterns.size(); ++i) {
    table.add_row({std::string(to_string(core::kAllPatterns[i])),
                   common::fmt_percent(record.ber[i].ber(), 3),
                   record.hc_first[i] ? std::to_string(*record.hc_first[i]) : ">262144"});
  }
  table.print(std::cout);
  std::cout << "\nworst-case data pattern (WCDP) for this row: " << to_string(record.wcdp)
            << ", BER " << common::fmt_percent(record.wcdp_ber().ber(), 3) << "\n"
            << "each measurement ran in "
            << common::fmt_double(record.ber[0].elapsed_ms, 1)
            << " ms of DRAM time — inside the paper's 27 ms retention-safety bound.\n";
  return 0;
}
