// Spatial characterization scenario: a compact version of the paper's §4
// study. Surveys two channels (the best and the worst die), prints the
// BER / HC_first distributions, and walks through the subarray structure
// the way Figs. 3-5 do. Use the bench binaries for the full-figure runs.
//
// Run:   ./build/examples/spatial_characterization [--stride=N]
#include <iostream>
#include <vector>

#include "bender/host.hpp"
#include "common/ascii_plot.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/row_map.hpp"
#include "core/spatial.hpp"

using namespace rh;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);

  std::cout << "== spatial variation study (paper §4, condensed) ==\n\n";

  bender::BenderHost host{hbm::DeviceConfig{}};
  host.set_chip_temperature(85.0);

  core::SurveyConfig config;
  config.channels = {0, 6, 7};
  config.row_stride = static_cast<std::uint32_t>(args.get_positive_int("stride", 384));
  config.characterizer.wcdp_tolerance = 4096;

  core::SpatialSurvey survey(host, config);
  std::cout << "surveying channels 0, 6, 7 (stride " << config.row_stride
            << " over the first/middle/last 3K rows)...\n\n";
  const auto records = survey.survey_rows();

  // Fig. 3 style: WCDP BER per channel.
  const auto ber_stats = core::aggregate_ber(records);
  std::vector<common::BoxRow> rows;
  for (const auto& s : ber_stats) {
    if (s.pattern == 4) {
      common::BoxStats pct = s.stats;
      for (double* v : {&pct.min, &pct.q1, &pct.median, &pct.q3, &pct.max, &pct.mean}) {
        *v *= 100.0;
      }
      rows.push_back({"ch" + std::to_string(s.channel), pct});
    }
  }
  std::cout << "WCDP BER by channel (percent) — channels 6/7 share the most\n"
               "vulnerable die, exactly the pairing the paper observes:\n";
  common::render_boxplot(std::cout, rows, 60, "BER %");

  // Fig. 4 style: HC_first summary.
  const auto hc_stats = core::aggregate_hc_first(records);
  common::Table table({"channel", "pattern", "min HC_first", "mean HC_first", "rows"});
  for (const auto& s : hc_stats) {
    if (s.stats.count == 0) continue;
    table.add_row({std::to_string(s.channel), core::pattern_label(s.pattern),
                   common::fmt_double(s.stats.min, 0), common::fmt_double(s.stats.mean, 0),
                   std::to_string(s.stats.count)});
  }
  std::cout << '\n';
  table.print(std::cout);

  // Fig. 5 / footnote 3: find the subarray boundaries by single-sided probes.
  std::cout << "\nreverse engineering subarray boundaries around the first 2.5K rows\n"
               "(an aggressor at a subarray edge flips victims on only one side):\n";
  const core::RowMap map = core::RowMap::from_device(host.device());
  const auto starts = core::find_subarray_boundaries(host, core::Site{0, 0, 0}, map, 1, 2500);
  std::cout << "  subarray starts:";
  for (const auto s : starts) std::cout << ' ' << s;
  std::cout << "\n  -> subarrays of ";
  for (std::size_t i = 1; i < starts.size(); ++i) std::cout << starts[i] - starts[i - 1] << ' ';
  std::cout << "rows (the paper finds 832- and 768-row subarrays)\n";
  return 0;
}
