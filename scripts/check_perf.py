#!/usr/bin/env python3
"""Compare a perf_baseline run against the committed baseline.

Usage:
    scripts/check_perf.py BASELINE CURRENT [--tolerance 0.25]

Both files are BENCH_campaign.json documents (schema rh-perf-baseline/v1)
emitted by bench/perf_baseline. The gate fails (exit 1) when either tracked
throughput axis — commands_per_host_second or device_cycles_per_host_second —
drops more than --tolerance below the baseline. Improvements and small
regressions print but pass. A missing baseline file passes with a note, so
the check can land before the first baseline is committed and survives
branches that predate it.

--min KEY=VALUE adds an absolute floor on a tracked axis, independent of the
committed baseline: the fast engine's >=5x speedup over the pre-engine
baseline is pinned this way, so quietly re-baselining downward cannot erase
it.
"""

import argparse
import json
import os
import sys

SCHEMA = "rh-perf-baseline/v1"
TRACKED = ("commands_per_host_second", "device_cycles_per_host_second")
CONTEXT = ("commands", "device_cycles", "records", "elapsed_s", "jobs", "stride")


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"check_perf: {path}: expected schema {SCHEMA!r}, "
                 f"got {doc.get('schema')!r}")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_campaign.json")
    parser.add_argument("current", help="BENCH_campaign.json from this build")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--min", action="append", default=[], metavar="KEY=VALUE",
                        dest="floors",
                        help="absolute floor for a tracked axis (repeatable), "
                             "e.g. --min commands_per_host_second=3.24e9; "
                             "fails when the current run is below VALUE even "
                             "if the committed baseline would allow it")
    args = parser.parse_args()

    floors = {}
    for spec in args.floors:
        key, sep, value = spec.partition("=")
        if not sep or key not in TRACKED:
            sys.exit(f"check_perf: --min {spec!r}: expected KEY=VALUE with "
                     f"KEY one of {TRACKED}")
        floors[key] = float(value)

    cur = load(args.current)

    failed = False
    for key, floor in sorted(floors.items()):
        c = float(cur[key])
        verdict = "OK" if c >= floor else "BELOW FLOOR"
        if verdict != "OK":
            failed = True
        print(f"  {key}: {c:,.0f} vs absolute floor {floor:,.0f} {verdict}")

    if not os.path.exists(args.baseline):
        print(f"check_perf: no baseline at {args.baseline}; nothing to "
              "compare (run bench/perf_baseline and commit the output)")
        if failed:
            print("check_perf: FAIL — below an absolute --min floor")
            return 1
        return 0

    base = load(args.baseline)

    if base.get("stride") != cur.get("stride") or base.get("jobs") != cur.get("jobs"):
        print(f"check_perf: note: configs differ "
              f"(baseline stride={base.get('stride')} jobs={base.get('jobs')}, "
              f"current stride={cur.get('stride')} jobs={cur.get('jobs')}); "
              "comparing anyway")

    for key in TRACKED:
        b, c = float(base[key]), float(cur[key])
        if b <= 0:
            print(f"  {key}: baseline is {b}; skipping")
            continue
        delta = (c - b) / b
        floor = b * (1.0 - args.tolerance)
        verdict = "OK" if c >= floor else "REGRESSED"
        if verdict == "REGRESSED":
            failed = True
        print(f"  {key}: {c:,.0f} vs baseline {b:,.0f} "
              f"({delta:+.1%}, floor {floor:,.0f}) {verdict}")

    for key in CONTEXT:
        if key in base and key in cur:
            print(f"  {key}: {cur[key]} (baseline {base[key]})")

    if failed:
        print(f"check_perf: FAIL — throughput below an absolute --min floor "
              f"or more than {args.tolerance:.0%} under baseline")
        return 1
    print("check_perf: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
