#!/usr/bin/env python3
"""Validate a Prometheus text-exposition document (what GET /metricsz serves).

Usage:
    scripts/check_promformat.py FILE [--require NAME ...]
    curl -s http://127.0.0.1:PORT/metricsz | scripts/check_promformat.py -

Checks, per the text exposition format (version 0.0.4):
  - every line is a `# TYPE <name> <counter|gauge|histogram>` header or a
    `name{labels} value` sample; names match [a-zA-Z_:][a-zA-Z0-9_:]*
  - no family is TYPE-declared twice, and every sample belongs to a
    declared family (histogram samples via their _bucket/_sum/_count base)
  - values parse as floats and are finite (a scrape must never carry NaN)
  - histograms are well-formed: buckets cumulative and non-decreasing, a
    closing le="+Inf" bucket present and equal to the family's _count
  - --require NAME fails unless the family NAME was declared (the CI smoke
    pins the serve.* catalogue this way)

Exit 0 when the document is valid, 1 with one line per violation otherwise.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
# name, optional {labels}, mandatory value — labels parsed separately.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$")
# key="value" with \\, \" and \n escapes, comma-separated.
LABELS_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
                       r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*$')


def parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", help="exposition document, or - for stdin")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME", help="fail unless family NAME exists")
    args = parser.parse_args()

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, encoding="utf-8") as f:
            text = f.read()

    errors = []
    types = {}  # family -> counter|gauge|histogram
    # histogram family -> {"buckets": [(le, v)...], "count": v, "sum": v}
    histograms = {}
    samples = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        def err(msg):
            errors.append(f"line {lineno}: {msg}: {line!r}")

        if not line:
            err("blank line")
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if m is None:
                # Bare comments/HELP are legal in the format; this exporter
                # only emits TYPE, so anything else is a malformed header.
                if not line.startswith("# "):
                    err("malformed comment")
                continue
            family, kind = m.group(1), m.group(2)
            if family in types:
                err(f"family {family} TYPE-declared twice")
            types[family] = kind
            if kind == "histogram":
                histograms[family] = {"buckets": [], "count": None, "sum": None}
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            err("not a sample line")
            continue
        name, labels, raw_value = m.group(1), m.group(3), m.group(4)
        if labels is not None and LABELS_RE.match(labels) is None:
            err(f"malformed labels {{{labels}}}")
            continue
        try:
            value = parse_value(raw_value)
        except ValueError:
            err(f"unparseable value {raw_value!r}")
            continue
        if not math.isfinite(value):
            err(f"non-finite value {raw_value}")
        samples += 1

        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base in histograms:
                family = base
                hist = histograms[base]
                if suffix == "_bucket":
                    le = None
                    for pair in (labels or "").split(","):
                        if pair.startswith('le="') and pair.endswith('"'):
                            le = pair[4:-1]
                    if le is None:
                        err("histogram bucket without an le label")
                    else:
                        hist["buckets"].append((le, value))
                elif suffix == "_sum":
                    hist["sum"] = value
                else:
                    hist["count"] = value
                break
        if family not in types:
            errors.append(f"line {lineno}: sample {name} has no TYPE declaration")

    for family, hist in sorted(histograms.items()):
        buckets = hist["buckets"]
        if not buckets:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        last = -1.0
        for le, value in buckets:
            if value < last:
                errors.append(f"histogram {family}: bucket le={le} not cumulative "
                              f"({value} < {last})")
            last = value
        if buckets[-1][0] != "+Inf":
            errors.append(f"histogram {family}: last bucket is le={buckets[-1][0]}, "
                          "not +Inf")
        if hist["count"] is None:
            errors.append(f"histogram {family}: missing _count")
        elif buckets[-1][0] == "+Inf" and buckets[-1][1] != hist["count"]:
            errors.append(f"histogram {family}: le=\"+Inf\" bucket "
                          f"{buckets[-1][1]} != _count {hist['count']}")
        if hist["sum"] is None:
            errors.append(f"histogram {family}: missing _sum")

    for name in args.require:
        if name not in types:
            errors.append(f"required family {name} not found")

    for error in errors:
        print(f"check_promformat: {error}")
    if errors:
        print(f"check_promformat: FAIL — {len(errors)} violation(s) in "
              f"{samples} samples, {len(types)} families")
        return 1
    print(f"check_promformat: PASS — {samples} samples across "
          f"{len(types)} families")
    return 0


if __name__ == "__main__":
    sys.exit(main())
