// Graphene-style counter mitigation (Park et al., MICRO'20 lineage).
//
// Per bank, a Misra-Gries frequent-item table of `counters` entries tracks
// activation-heavy rows. When a row's estimated count crosses `threshold`,
// its neighbours are preventively refreshed and its counter resets. With
// threshold < HC_first / 2 (double-sided halves the per-aggressor budget)
// the mitigation is deterministic: no victim can reach its flip threshold.
//
// The table is sized like the real design: as long as `counters` exceeds
// the number of rows an attacker can activate `threshold` times within a
// refresh window, Misra-Gries cannot undercount an aggressor by more than
// the table's minimum — giving a hard guarantee, unlike PARA.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "defense/policy.hpp"

namespace rh::defense {

struct GrapheneConfig {
  /// Preventive refresh fires when a row's counter reaches this.
  std::uint64_t threshold = 8'192;
  /// Misra-Gries table entries per bank.
  std::uint32_t counters = 64;
};

class Graphene final : public MitigationPolicy {
public:
  Graphene(const core::RowMap& map, GrapheneConfig config);

  std::vector<std::uint32_t> on_activate(std::uint32_t bank, std::uint32_t logical_row) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

  /// Provisioning rule from a measured HC_first: half (double-sided), with
  /// a 2x safety margin.
  [[nodiscard]] static std::uint64_t provision_threshold(double hc_first) {
    return static_cast<std::uint64_t>(hc_first / 4.0);
  }

  /// Test introspection: the current estimate for a row (0 if untracked).
  [[nodiscard]] std::uint64_t count_of(std::uint32_t bank, std::uint32_t logical_row) const;

private:
  struct BankTable {
    // row -> counter; bounded to `counters` entries via Misra-Gries decrement.
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
  };

  const core::RowMap* map_;
  GrapheneConfig config_;
  std::unordered_map<std::uint32_t, BankTable> banks_;
};

}  // namespace rh::defense
