// Defense evaluation harness: replays a RowHammer attack through a
// controller-side mitigation policy against the device, and reports both
// sides of the trade — residual victim bitflips and preventive-activation
// overhead.
//
// The harness plays the memory controller: it issues the attack's ACT/PRE
// stream command by command, shows every ACT to the policy, and interleaves
// whatever preventive activations the policy demands, with legal timing.
#pragma once

#include <cstdint>

#include "bender/host.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"
#include "defense/policy.hpp"

namespace rh::defense {

struct DefenseRunResult {
  std::uint64_t victim_flips = 0;
  std::uint64_t attack_activations = 0;
  std::uint64_t preventive_activations = 0;
  double dram_time_ms = 0.0;

  /// Fraction of extra activations spent on mitigation.
  [[nodiscard]] double overhead() const {
    return attack_activations == 0
               ? 0.0
               : static_cast<double>(preventive_activations) /
                     static_cast<double>(attack_activations);
  }
};

class DefenseHarness {
public:
  DefenseHarness(bender::BenderHost& host, const core::RowMap& map);

  /// Double-sided attack of `hammers` pairs on `victim_physical`, filtered
  /// through `policy` (nullptr = undefended). Rows are initialized with the
  /// Rowstripe0 pattern; returns the victim's bitflips afterwards.
  DefenseRunResult run_double_sided(const core::Site& site, std::uint32_t victim_physical,
                                    std::uint64_t hammers, MitigationPolicy* policy);

private:
  bender::BenderHost* host_;
  const core::RowMap* map_;
};

}  // namespace rh::defense
