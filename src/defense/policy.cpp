#include "defense/policy.hpp"

namespace rh::defense {

std::vector<std::uint32_t> logical_neighbours(const core::RowMap& map,
                                              std::uint32_t logical_row) {
  std::vector<std::uint32_t> out;
  const std::uint32_t p = map.logical_to_physical(logical_row);
  if (p > 0) out.push_back(map.physical_to_logical(p - 1));
  if (p + 1 < map.rows()) out.push_back(map.physical_to_logical(p + 1));
  return out;
}

}  // namespace rh::defense
