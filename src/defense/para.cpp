#include "defense/para.hpp"

#include "common/assert.hpp"

namespace rh::defense {

Para::Para(const core::RowMap& map, ParaConfig config)
    : map_(&map), config_(config), rng_(config.seed) {
  RH_EXPECTS(config_.probability >= 0.0 && config_.probability <= 1.0);
}

std::vector<std::uint32_t> Para::on_activate(std::uint32_t bank, std::uint32_t logical_row) {
  (void)bank;
  if (config_.probability == 0.0 || rng_.uniform() >= config_.probability) return {};
  auto neighbours = logical_neighbours(*map_, logical_row);
  if (neighbours.empty()) return {};
  const std::size_t pick = rng_.below(neighbours.size());
  return {neighbours[pick]};
}

std::string Para::name() const {
  return "PARA(p=" + std::to_string(config_.probability) + ")";
}

}  // namespace rh::defense
