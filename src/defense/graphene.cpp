#include "defense/graphene.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rh::defense {

Graphene::Graphene(const core::RowMap& map, GrapheneConfig config)
    : map_(&map), config_(config) {
  RH_EXPECTS(config_.threshold > 0);
  RH_EXPECTS(config_.counters > 0);
}

std::vector<std::uint32_t> Graphene::on_activate(std::uint32_t bank,
                                                 std::uint32_t logical_row) {
  BankTable& table = banks_[bank];
  auto it = table.counts.find(logical_row);
  if (it == table.counts.end()) {
    if (table.counts.size() < config_.counters) {
      it = table.counts.emplace(logical_row, 0).first;
    } else {
      // Misra-Gries: decrement everyone instead of inserting; evict zeros.
      for (auto entry = table.counts.begin(); entry != table.counts.end();) {
        if (--entry->second == 0) {
          entry = table.counts.erase(entry);
        } else {
          ++entry;
        }
      }
      return {};
    }
  }
  if (++it->second < config_.threshold) return {};
  it->second = 0;
  return logical_neighbours(*map_, logical_row);
}

void Graphene::reset() { banks_.clear(); }

std::string Graphene::name() const {
  return "Graphene(T=" + std::to_string(config_.threshold) + ")";
}

std::uint64_t Graphene::count_of(std::uint32_t bank, std::uint32_t logical_row) const {
  const auto bit = banks_.find(bank);
  if (bit == banks_.end()) return 0;
  const auto it = bit->second.counts.find(logical_row);
  return it == bit->second.counts.end() ? 0 : it->second;
}

}  // namespace rh::defense
