// Memory-controller-side RowHammer mitigation policies.
//
// The paper's defense implication (§4): a mitigation can exploit the
// measured vulnerability map. To ground that, this library implements the
// two classic controller-side baselines the literature compares against —
//
//   PARA      (Kim et al., ISCA'14): on every activation, with probability
//             p, preventively refresh a random physical neighbour.
//             Stateless; protection is probabilistic in the aggregate.
//   Graphene  (Park et al., MICRO'20 style): Misra-Gries frequent-item
//             counters per bank; an aggressor crossing the threshold T gets
//             its neighbours refreshed and its counter reset.
//
// — plus profile-aware variants that consume this repository's measured
// per-channel HC_first (the paper's "adapt to the heterogeneous
// distribution" suggestion).
//
// A policy sees what a real memory controller sees: the logical command
// stream. Victim selection therefore needs the reverse-engineered RowMap —
// the same artifact the characterization produced — to translate physical
// adjacency into logical rows it can activate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/row_map.hpp"

namespace rh::defense {

/// Interface: observe activations, emit preventive victim activations.
class MitigationPolicy {
public:
  virtual ~MitigationPolicy() = default;

  /// Called for every ACT the controller issues. Returns the *logical* rows
  /// the controller must preventively activate (refresh) now.
  virtual std::vector<std::uint32_t> on_activate(std::uint32_t bank,
                                                 std::uint32_t logical_row) = 0;

  /// Forget accumulated state (refresh-window rollover).
  virtual void reset() = 0;

  /// Human-readable name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Shared helper: logical rows of the physical neighbours (distance 1) of
/// `logical_row` under `map`.
[[nodiscard]] std::vector<std::uint32_t> logical_neighbours(const core::RowMap& map,
                                                            std::uint32_t logical_row);

}  // namespace rh::defense
