#include "defense/harness.hpp"

#include <bit>

#include "bender/program.hpp"
#include "common/assert.hpp"
#include "core/data_patterns.hpp"

namespace rh::defense {

DefenseHarness::DefenseHarness(bender::BenderHost& host, const core::RowMap& map)
    : host_(&host), map_(&map) {}

DefenseRunResult DefenseHarness::run_double_sided(const core::Site& site,
                                                  std::uint32_t victim_physical,
                                                  std::uint64_t hammers,
                                                  MitigationPolicy* policy) {
  auto& device = host_->device();
  const auto& geometry = device.geometry();
  const auto& timings = device.timings();
  RH_EXPECTS(victim_physical >= 1 && victim_physical + 1 < geometry.rows_per_bank);

  // Initialize the neighbourhood through the regular program path.
  {
    bender::ProgramBuilder b(geometry, timings);
    b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
    b.program().set_wide_register(0, core::make_row_image(geometry, 0x00));
    b.program().set_wide_register(1, core::make_row_image(geometry, 0xFF));
    for (std::int64_t p = static_cast<std::int64_t>(victim_physical) - 2;
         p <= static_cast<std::int64_t>(victim_physical) + 2; ++p) {
      if (p < 0 || p >= static_cast<std::int64_t>(geometry.rows_per_bank)) continue;
      const bool agg = (p == victim_physical - 1 || p == victim_physical + 1);
      b.init_row(static_cast<std::uint8_t>(site.bank),
                 map_->physical_to_logical(static_cast<std::uint32_t>(p)), agg ? 1 : 0);
    }
    (void)host_->run(b.take(), site.channel, site.pseudo_channel);
  }

  // Play the memory controller: every ACT goes past the policy.
  DefenseRunResult result;
  const hbm::BankAddress bank = site.bank_address();
  const hbm::Cycle step = timings.tRAS + timings.tRP;
  hbm::Cycle t = host_->now();
  const hbm::Cycle start = t;

  const auto issue_act_pre = [&](std::uint32_t logical_row) {
    device.activate(bank, logical_row, t);
    device.precharge(bank, t + timings.tRAS);
    t += step;
  };
  const auto mitigate = [&](std::uint32_t logical_row) {
    if (policy == nullptr) return;
    for (const std::uint32_t victim : policy->on_activate(site.bank, logical_row)) {
      issue_act_pre(victim);
      ++result.preventive_activations;
      // Preventive activations are themselves activations the policy must
      // observe — a real controller's mitigation traffic is in-band. (PARA
      // ignores them statistically; Graphene counts them, as it should.)
    }
  };

  const std::uint32_t agg_a = map_->physical_to_logical(victim_physical - 1);
  const std::uint32_t agg_b = map_->physical_to_logical(victim_physical + 1);
  for (std::uint64_t i = 0; i < hammers; ++i) {
    for (const std::uint32_t agg : {agg_a, agg_b}) {
      issue_act_pre(agg);
      ++result.attack_activations;
      mitigate(agg);
    }
  }
  host_->idle_cycles(t - start);
  result.dram_time_ms = hbm::cycles_to_ms(t - start);

  // Read the victim back.
  bender::ProgramBuilder b(geometry, timings);
  b.read_row(static_cast<std::uint8_t>(site.bank), map_->physical_to_logical(victim_physical));
  const auto readback = host_->run(b.take(), site.channel, site.pseudo_channel);
  for (const std::uint8_t byte : readback.readback) {
    result.victim_flips +=
        static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(byte)));
  }
  return result;
}

}  // namespace rh::defense
