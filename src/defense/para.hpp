// PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA'14).
//
// Stateless: every activation triggers, with probability p, a preventive
// refresh of one randomly chosen physical neighbour. The probability bounds
// the expected number of un-refreshed activations any victim can accumulate
// at ~2/p, so p is provisioned from the chip's minimum HC_first — which is
// exactly what the paper's characterization measures, and what its
// variation-aware suggestion provisions *per channel* instead of chip-wide.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "defense/policy.hpp"

namespace rh::defense {

struct ParaConfig {
  /// Preventive-refresh probability per activation.
  double probability = 0.02;
  std::uint64_t seed = 0x9a7aULL;
};

class Para final : public MitigationPolicy {
public:
  Para(const core::RowMap& map, ParaConfig config);

  std::vector<std::uint32_t> on_activate(std::uint32_t bank, std::uint32_t logical_row) override;
  void reset() override {}
  [[nodiscard]] std::string name() const override;

  /// Provisioning rule: probability that keeps the expected unmitigated
  /// activation count below `hc_first` with margin (PARA's 2/p bound plus
  /// a 4x safety factor, a common provisioning choice).
  [[nodiscard]] static double provision_probability(double hc_first) {
    return std::min(1.0, 8.0 / hc_first);
  }

private:
  const core::RowMap* map_;
  ParaConfig config_;
  common::Xoshiro256 rng_;
};

}  // namespace rh::defense
