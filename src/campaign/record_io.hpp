// RowRecord <-> JSON-line serialization for the campaign results journal,
// plus the minimal JSON reader the journal needs to load itself back.
//
// The write side emits one compact JSON object per record with every field
// of core::RowRecord; doubles are printed with 17 significant digits so a
// parse-back reproduces the exact bit pattern. That exactness is what lets
// a resumed campaign emit byte-identical tables/CSV to an uninterrupted
// one: journaled records must be indistinguishable from recomputed ones.
//
// The read side is a small recursive-descent JSON parser (objects, arrays,
// strings, numbers, true/false/null) that keeps raw number text so integer
// fields can be re-parsed without a double round-trip.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/characterizer.hpp"

namespace rh::campaign {

/// Parsed JSON value. Numbers keep their raw text (`text`) so callers pick
/// integer or floating parsing; object member order is preserved.
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< raw number text, or decoded string contents
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  /// Object member by key, or nullptr (also nullptr for non-objects).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Member that must exist; throws common::ConfigError otherwise.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
};

/// Parses one JSON document. Throws common::ConfigError on malformed input;
/// `what` names the input in the error message.
[[nodiscard]] JsonValue parse_json(std::string_view text, const std::string& what);

/// Appends `record` as a compact JSON object to `out` (no newline).
void append_row_record_json(std::string& out, const core::RowRecord& record);

/// Rebuilds a RowRecord from its JSON form. Throws common::ConfigError on
/// missing fields or out-of-range values.
[[nodiscard]] core::RowRecord parse_row_record(const JsonValue& value);

/// Formats a double with enough digits to round-trip exactly through
/// strtod (17 significant digits).
[[nodiscard]] std::string format_double_exact(double v);

}  // namespace rh::campaign
