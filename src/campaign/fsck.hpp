// Offline integrity checking and repair for the durable campaign state —
// the library behind tools/rh_fsck.
//
// A serve data dir (or a bench working dir) accumulates four kinds of
// durable files: checkpoint journals and metrics streams (append-only
// JSONL, CRC-framed since v2), job descriptors and run reports (whole-file
// JSON, atomically replaced), plus two kinds of residue — orphaned `.tmp`
// files from a kill between write and rename, and `.quarantine` sidecars
// from past repairs. fsck classifies every file with exactly the readers'
// damage taxonomy (ok / torn tail / corrupt / orphaned tmp) and can apply
// the same repairs resume would: truncate a torn tail, quarantine corrupt
// mid-file lines and compact, delete an orphaned tmp. Whole-file JSON
// documents have no line structure to salvage, so a corrupt descriptor or
// report — like a corrupt JSONL header — is reported as unrepairable: the
// operator decides (the data may still be recoverable from the journal).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rh::campaign {

enum class FsckStatus : std::uint8_t {
  kOk = 0,     ///< fully intact (includes files fsck does not interpret)
  kTorn,       ///< only the trailing line is damaged — truncation repairs it
  kCorrupt,    ///< damage beyond the tail; repairable iff line-structured
  kOrphanTmp,  ///< leftover atomic-write temp file — deletion repairs it
};

enum class FsckFileType : std::uint8_t {
  kJournal = 0,  ///< rh-campaign-journal JSONL
  kStream,       ///< rh-metrics-stream JSONL
  kDescriptor,   ///< rh-serve-job/v1 whole-file JSON
  kReport,       ///< rh-run-report/v1 whole-file JSON
  kQuarantine,   ///< .quarantine sidecar from a past repair (not validated)
  kTmp,          ///< .tmp atomic-write leftover
  kOther,        ///< not a file fsck interprets
};

[[nodiscard]] const char* to_string(FsckStatus status);
[[nodiscard]] const char* to_string(FsckFileType type);

/// One damaged line (kCorrupt verdicts on JSONL files).
struct FsckIssue {
  std::size_t line_no = 0;  ///< 1-based position in the file
  std::string reason;       ///< "CRC mismatch", parse error text, ...
};

/// One file's verdict.
struct FsckVerdict {
  std::string path;
  FsckFileType type = FsckFileType::kOther;
  FsckStatus status = FsckStatus::kOk;
  bool repairable = false;     ///< fsck_repair() can restore integrity
  std::uint64_t intact_lines = 0;  ///< JSONL record lines that validated
  std::uint64_t intact_bytes = 0;  ///< undamaged prefix (truncation point)
  bool torn_tail = false;      ///< trailing line damaged (also set on kCorrupt)
  std::vector<FsckIssue> issues;   ///< mid-file damage, in file order
  std::string detail;          ///< one-line elaboration for the report
};

/// Classifies one file. Never throws on damage (damage IS the verdict);
/// throws common::ConfigError only when the file cannot be read at all.
[[nodiscard]] FsckVerdict fsck_file(const std::string& path);

/// Classifies every regular file directly inside `data_dir`, sorted by
/// path. Throws common::ConfigError if the directory cannot be listed.
[[nodiscard]] std::vector<FsckVerdict> fsck_scan(const std::string& data_dir);

/// Applies the repair a verdict calls for: truncates a torn tail, moves
/// corrupt mid-file lines to `path`.quarantine and compacts (atomic
/// rewrite), deletes an orphaned tmp. Returns a one-line note of what was
/// done ("" when the file needed nothing). Throws common::ConfigError when
/// the verdict is unrepairable or the repair itself fails.
std::string fsck_repair(const FsckVerdict& verdict);

/// Human rendering: one verdict line per file plus a summary tally.
void render_fsck_report(std::ostream& os, const std::vector<FsckVerdict>& verdicts);

}  // namespace rh::campaign
