// The experiment-campaign runner: shards a characterization sweep across a
// pool of worker threads and merges the results deterministically.
//
// Why this is sound: the fault model is a pure function of (seed, bank,
// row, bit) — there is no sequential RNG in the device — and every per-row
// test re-initializes its own neighbourhood with refresh (and therefore
// TRR) disabled. So *each worker constructs its own BenderHost from the
// same DeviceConfig* and runs disjoint shards on it, and the merged result
// (ordered by shard index) is bitwise-identical to the serial sweep
// regardless of how shards were scheduled. `--jobs=8` and `--jobs=1`
// produce byte-identical tables; the determinism test pins this.
//
// Robustness:
//   * checkpoint/resume — completed shards stream to a JSONL journal
//     (journal.hpp) whose fsync'd header binds it to the exact sweep
//     config; a resumed campaign skips journaled shards and refuses a
//     mismatched journal,
//   * failure isolation — a shard that throws a common::TransientError
//     (transport exhaustion, thermal upset) is retried on a freshly built
//     host; a fatal error (bad program, bad config) skips the retry budget
//     entirely; either way the failure is reported at the end without
//     killing the rest of the campaign,
//   * fault injection — CampaignConfig::fault_plan arms a per-rig
//     resilience::FaultInjector so the whole recovery stack can be
//     storm-tested (bench/ablation_fault_storm asserts byte-identical
//     results under a 5 % transport-fault rate),
//   * progress — a live progress/ETA line fed from campaign.* counters in
//     the telemetry metrics registry,
//   * observability — each worker host gets its own telemetry sink, all
//     absorbed into the caller's aggregate sink (TelemetrySession) so
//     --metrics-json / --heatmap cover the whole fleet.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "bender/host.hpp"
#include "common/engine.hpp"
#include "common/error.hpp"
#include "core/shard.hpp"
#include "core/spatial.hpp"
#include "hbm/device.hpp"
#include "profiling/report.hpp"
#include "resilience/fault.hpp"
#include "resilience/retry.hpp"
#include "resilience/storage.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::campaign {

/// How a campaign executes (scheduling/robustness knobs; the science lives
/// in SweepSpec). The bench flags --jobs / --checkpoint / --resume map
/// one-to-one onto the first three fields.
struct CampaignConfig {
  /// Worker threads, each owning a private BenderHost clone.
  unsigned jobs = 1;
  /// JSONL results journal; empty disables checkpointing.
  std::string checkpoint_path;
  /// Resume from checkpoint_path, skipping journaled shards. Requires the
  /// journal to exist and match this sweep's config hash.
  bool resume = false;
  /// Re-runs granted to a shard failing with a common::TransientError, each
  /// on a freshly constructed host. Fatal (non-transient) errors are
  /// isolated immediately — retrying a malformed program cannot help.
  unsigned retries = 1;
  /// Throw CampaignError after the campaign drains if any shard still
  /// failed. Benches keep this on (partial sweeps must not masquerade as
  /// results); tests of failure isolation turn it off.
  bool fail_on_shard_error = true;
  /// Progress/ETA line destination; nullptr = std::cerr. Disable with
  /// `progress = false`.
  bool progress = true;
  std::ostream* progress_stream = nullptr;
  /// Infrastructure fault injection (disabled unless a rate is set or the
  /// script is non-empty). Each worker rig gets its own FaultInjector,
  /// deterministically re-seeded from (fault_plan.seed, rig serial), so the
  /// plan describes the fleet-wide failure environment; because every
  /// transport recovery is wall-clock-only, merged results stay
  /// byte-identical to a fault-free run.
  resilience::FaultPlan fault_plan;
  /// Per-host transport retry/backoff policy, applied to every worker rig.
  resilience::RetryPolicy retry_policy;
  /// Disk fault injection for the durable outputs (journal + metrics
  /// stream), disabled unless a rate is set or the script is non-empty.
  /// The journal and the stream draw independent fault streams
  /// deterministically re-seeded from storage_fault_plan.seed. A storage
  /// fault never fails the campaign: journaling/streaming degrade (counted
  /// in CampaignResult::storage_errors) and the science continues — results
  /// stay byte-identical to a fault-free run.
  resilience::StorageFaultPlan storage_fault_plan;
  /// Live metrics time-series (rh-metrics-stream/v1 JSONL, see
  /// telemetry/stream.hpp); empty disables streaming. Written alongside the
  /// checkpoint journal so tools/rh_tail can follow a running campaign.
  std::string metrics_stream_path;
  /// Device cycles between cycles-cadence samples within one shard attempt
  /// (the deterministic per-worker series). ~28 ms of device time.
  std::uint64_t stream_cycle_cadence = 1ull << 24;
  /// Wall milliseconds between campaign-aggregate samples (the monitor
  /// thread's cadence; not deterministic).
  double stream_wall_cadence_ms = 200.0;
  /// Program engine for every worker host (see common/engine.hpp). Both
  /// engines produce byte-identical results, journals, and metrics streams
  /// at the same seed, so the choice is *not* part of the sweep fingerprint
  /// — a checkpoint written by one engine resumes under the other.
  common::EngineKind engine = common::EngineKind::kFast;
  /// Planted fast-path bug for differential-rig sensitivity tests
  /// (kNone in production; ignored when engine == kInterp).
  common::PlantedBug engine_bug = common::PlantedBug::kNone;
};

/// Everything that defines the physics of one sweep: the device (fault seed
/// included), the operating temperature, the measurement parameters, and
/// the deterministic shard plan. Hashed into the journal header.
struct SweepSpec {
  hbm::DeviceConfig device;
  double temperature_c = 85.0;
  /// Settle the thermal rig's PID loop (what the benches do) instead of
  /// pinning the chip temperature directly (faster; used by tests).
  bool settle_thermal = true;
  core::CharacterizerConfig characterizer;
  std::vector<core::ShardSpec> shards;
};

/// SweepSpec for a SpatialSurvey row sweep: same plan, same order, same
/// measurements as SpatialSurvey(host, survey).survey_rows().
[[nodiscard]] SweepSpec survey_sweep(hbm::DeviceConfig device, const core::SurveyConfig& survey,
                                     std::uint32_t max_rows_per_shard = 64);

/// Canonical fingerprint of a sweep (the string that is FNV-1a hashed into
/// the journal header). Stable across runs and platforms.
[[nodiscard]] std::string sweep_fingerprint(const SweepSpec& spec);
[[nodiscard]] std::uint64_t sweep_config_hash(const SweepSpec& spec);

struct ShardFailure {
  std::uint64_t shard = 0;
  std::string what;
};

struct CampaignResult {
  /// Per-shard records, indexed by shard (empty for failed shards).
  std::vector<std::vector<core::RowRecord>> per_shard;
  std::vector<ShardFailure> failures;
  std::uint64_t shards_run = 0;      ///< executed this run
  std::uint64_t shards_skipped = 0;  ///< restored from the journal
  std::uint64_t shards_retried = 0;  ///< extra attempts granted

  /// Cost accounting for every shard executed this run (skipped/failed
  /// shards absent), sorted by shard index. device_cycles and attempts are
  /// deterministic; wall_ms is real host time.
  std::vector<profiling::ShardTiming> timings;
  /// Whole-campaign host wall clock (journal restore through pool join).
  double elapsed_wall_ms = 0.0;
  /// Worker threads actually used (after clamping to pending shards).
  unsigned jobs = 1;

  /// Durable-output write failures survived (journal dropped mid-run,
  /// stream gone dark, ...). Results are still complete and correct when
  /// this is nonzero — only checkpoint/telemetry coverage was lost.
  std::uint64_t storage_errors = 0;
  /// First storage failure's message ("" when storage_errors == 0).
  std::string storage_error;

  /// Records of all shards concatenated in shard order — the deterministic
  /// merge the benches consume (identical to the serial sweep's output).
  [[nodiscard]] std::vector<core::RowRecord> flat() const;
};

/// A campaign failed to produce a complete result set.
class CampaignError : public common::Error {
public:
  using common::Error::Error;
};

class Campaign {
public:
  /// Builds a worker's private host from the sweep spec. The default
  /// constructs BenderHost(spec.device) and brings it to temperature.
  using HostFactory = std::function<std::unique_ptr<bender::BenderHost>(const SweepSpec&)>;

  /// `aggregate` (may be null) receives every worker's telemetry after the
  /// run plus the campaign.* counters; pass TelemetrySession::sink().
  explicit Campaign(CampaignConfig config, telemetry::Telemetry* aggregate = nullptr);

  /// Overrides worker host construction (population studies build variant
  /// devices; tests inject failures).
  void set_host_factory(HostFactory factory) { factory_ = std::move(factory); }

  /// Runs the sweep to completion. Throws common::ConfigError on journal
  /// mismatch and CampaignError per config.fail_on_shard_error.
  CampaignResult run(const SweepSpec& spec);

  /// Live campaign.* counters (shards_total/done/skipped/failed/retried).
  [[nodiscard]] const telemetry::MetricsRegistry& metrics() const { return metrics_; }

  /// Fleet phase profile: every worker's campaign-level phases (rig_build /
  /// shard_run / checkpoint / idle) plus every retired host's host-level
  /// phases, merged under the completion lock. Accumulates across run()
  /// calls on the same Campaign.
  [[nodiscard]] const profiling::Profile& profile() const { return profile_; }

  /// The last run's span forest (campaign -> shard -> attempt -> host
  /// phase -> fault/recovery marks), already merged across workers and in
  /// canonical order. Cleared at the start of each run().
  [[nodiscard]] const telemetry::SpanSheet& spans() const { return spans_; }

private:
  CampaignConfig config_;
  telemetry::Telemetry* aggregate_;
  HostFactory factory_;
  telemetry::MetricsRegistry metrics_;
  profiling::Profile profile_;
  telemetry::SpanSheet spans_;
};

/// Joins a finished campaign into one RunReport: the fleet profile, the
/// campaign.*/resilience.* counters, per-shard timings, and — when `sink`
/// (the TelemetrySession aggregate the workers reported into) is non-null —
/// the full fleet metrics snapshot and trace-ring accounting. With a null
/// sink the report still carries the campaign's own counters; cmd.*-derived
/// throughput is simply absent.
[[nodiscard]] profiling::RunReport build_report(const std::string& label, const SweepSpec& spec,
                                                const Campaign& campaign,
                                                const CampaignResult& result,
                                                const telemetry::Telemetry* sink = nullptr);

/// Same join, from loose parts instead of a Campaign. For runners that
/// schedule shards themselves (the campaign service's shared rig pool) but
/// must produce reports byte-identical to the Campaign path: pass the
/// merged fleet profile, the run's span sheet, and the registry holding the
/// campaign.*/resilience.* counters.
[[nodiscard]] profiling::RunReport build_report(const std::string& label, const SweepSpec& spec,
                                                const profiling::Profile& profile,
                                                const telemetry::SpanSheet& spans,
                                                const telemetry::MetricsRegistry& metrics,
                                                const CampaignResult& result,
                                                const telemetry::Telemetry* sink = nullptr);

}  // namespace rh::campaign
