// Live/post-mortem campaign monitoring: the library behind tools/rh_tail.
//
// A running campaign leaves two append-only JSONL files behind: the
// checkpoint journal (journal.hpp — per-shard outcomes) and the metrics
// stream (telemetry/stream.hpp — periodic counter samples and per-worker
// status). This module reads both with the same torn-tail tolerance the
// journal reader pioneered — a kill can tear at most the trailing line, and
// a monitor must never crash on a file the campaign is mid-append on — and
// joins them into one TailStatus: progress/ETA, per-worker utilization,
// shard outcome counts, fault/recovery rates, and a stall watchdog.
//
// The stall watchdog reasons from the last wall sample's in-flight shards:
// any shard a worker had claimed but never journaled is *suspect*. In
// follow mode the caller feeds in how long the files have been quiet
// (observed_idle_ms) and the watchdog flags the shard once that exceeds
// stall_ms; post-mortem (observed_idle_ms < 0) on an unfinished stream,
// every suspect shard is flagged — the campaign died or was killed with
// those shards open.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace rh::campaign {

/// One parsed rh-metrics-stream file (v1 bare lines or v2 CRC-framed).
/// `torn` means the trailing line was incomplete or unparsable (campaign
/// mid-append or killed mid-write); a damaged *mid-file* line (CRC
/// mismatch, unparsable, unknown sample kind) is counted in corrupt_lines
/// and skipped — telemetry is advisory, so the monitor keeps going.
struct MetricsStreamData {
  bool has_header = false;
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t shards = 0;
  unsigned jobs = 0;
  std::uint64_t cycle_cadence = 0;
  double wall_cadence_ms = 0.0;

  /// Campaign-aggregate counters: accumulated wall-sample deltas, replaced
  /// by the final sample's absolutes when the stream closed cleanly.
  std::map<std::string, std::uint64_t> counters;
  /// Worker-sink counters summed from every cycles sample's deltas (cmd.*,
  /// flip.*, trr.* — the device-side view the campaign registry never sees).
  std::map<std::string, std::uint64_t> device_counters;
  /// The latest wall sample's per-worker view (busy_ms includes in-flight).
  struct Worker {
    double busy_ms = 0.0;
    std::uint64_t done = 0;
    std::int64_t shard = -1;
  };
  std::vector<Worker> workers;

  double last_t_ms = 0.0;  ///< campaign clock of the newest wall/final sample
  std::uint64_t cycles_samples = 0;
  std::uint64_t wall_samples = 0;
  bool finished = false;  ///< the final sample was seen
  std::uint64_t final_done = 0, final_failed = 0, final_skipped = 0, final_total = 0;
  bool torn = false;
  std::uint64_t corrupt_lines = 0;  ///< damaged mid-file lines skipped
};

/// Loads a metrics stream, tolerating a torn trailing line and skipping
/// (while counting) corrupt mid-file lines. Throws common::ConfigError only
/// when the file cannot be opened or its header line is damaged or foreign
/// — with no trusted identity line, nothing below it means anything.
[[nodiscard]] MetricsStreamData read_metrics_stream(const std::string& path);

struct TailOptions {
  /// Quiet time (no file growth) after which an in-flight shard is declared
  /// stalled in follow mode.
  double stall_ms = 2000.0;
  /// How long the monitored files have been quiet, fed by the follow loop;
  /// < 0 means post-mortem (no live observation — flag all suspects).
  double observed_idle_ms = -1.0;
};

/// A shard a worker had in flight with no journal completion.
struct StalledShard {
  std::uint64_t shard = 0;
  unsigned worker = 0;
};

struct TailWorkerView {
  double busy_ms = 0.0;
  std::uint64_t done = 0;
  std::int64_t shard = -1;    ///< in flight, -1 idle
  double utilization = 0.0;   ///< busy_ms / campaign elapsed
};

/// The joined view render_tail_status() prints.
struct TailStatus {
  std::uint64_t seed = 0;
  unsigned jobs = 0;
  std::uint64_t shards_total = 0;
  std::uint64_t done = 0;     ///< journaled completions (or final sample)
  std::uint64_t failed = 0;
  std::uint64_t skipped = 0;  ///< final sample only (resume restores)
  std::uint64_t records = 0;  ///< journaled row records
  std::uint64_t attempts = 0; ///< journaled attempts (retries included)
  double elapsed_ms = 0.0;    ///< campaign clock at the newest sample
  std::string eta;            ///< "eta 12.3s" / "eta --" / "" when finished
  bool finished = false;
  bool torn = false;          ///< either file had a torn trailing line
  std::uint64_t corrupt_lines = 0;  ///< damaged lines skipped across both files
  std::vector<TailWorkerView> workers;
  std::map<std::string, std::uint64_t> counters;         ///< campaign aggregate
  std::map<std::string, std::uint64_t> device_counters;  ///< summed cycles deltas
  std::vector<StalledShard> stalled;
  bool watchdog_tripped = false;  ///< stalled non-empty AND quiet past stall_ms
};

/// Joins a journal and/or a metrics stream (either path may be empty, not
/// both) into a TailStatus. Missing files throw common::ConfigError — the
/// follow loop catches and retries until the campaign creates them.
[[nodiscard]] TailStatus tail_status(const std::string& journal_path,
                                     const std::string& stream_path,
                                     const TailOptions& opts = TailOptions{});

/// Human rendering: progress/ETA line, "per-worker utilization:" section,
/// shard outcomes, fault/recovery rates, and a "stall watchdog:" section.
/// The two section headers always print (CI greps for them).
void render_tail_status(std::ostream& os, const TailStatus& status);

}  // namespace rh::campaign
