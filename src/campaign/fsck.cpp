#include "campaign/fsck.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <ostream>

#include "campaign/record_io.hpp"
#include "common/error.hpp"
#include "resilience/storage.hpp"

namespace rh::campaign {

namespace {

using common::ConfigError;

bool ends_with(const std::string& text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("cannot open file: " + path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

struct SplitLines {
  std::vector<std::string> lines;
  bool final_newline = true;  ///< false when trailing bytes had no '\n'
};

SplitLines split_lines(const std::string& content) {
  SplitLines out;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      out.lines.push_back(content.substr(start));
      out.final_newline = false;
      break;
    }
    out.lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

// --- payload validators (throw ConfigError; mirror the readers) ----------

/// Field checks matter for their throws alone; the values are discarded.
template <typename T>
void require(const T& /*value*/) {}

void validate_journal_header(const JsonValue& doc) {
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || kind->text != "rh-campaign-journal") {
    throw ConfigError("not a campaign journal header");
  }
  const std::uint64_t version = doc.at("version").as_u64();
  if (version != 1 && version != 2) {
    throw ConfigError("unsupported journal version " + std::to_string(version));
  }
  require(doc.at("seed").as_u64());
  require(doc.at("config_hash"));
  require(doc.at("shards").as_u64());
}

void validate_journal_record(const JsonValue& doc) {
  require(doc.at("shard").as_u64());
  if (const JsonValue* failed = doc.find("failed"); failed != nullptr) {
    if (failed->kind != JsonValue::Kind::kString) {
      throw ConfigError("journal failure line: \"failed\" is not a string");
    }
  } else {
    for (const JsonValue& r : doc.at("records").items) require(parse_row_record(r));
  }
}

void validate_stream_header(const JsonValue& doc) {
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || kind->text != "rh-metrics-stream") {
    throw ConfigError("not a metrics stream header");
  }
  require(doc.at("version").as_u64());
  require(doc.at("seed").as_u64());
  require(doc.at("config_hash"));
  require(doc.at("shards").as_u64());
  require(doc.at("jobs").as_u64());
  require(doc.at("cycle_cadence").as_u64());
  require(doc.at("wall_cadence_ms").as_double());
}

void validate_stream_record(const JsonValue& doc) {
  const std::string& sample = doc.at("sample").text;
  if (sample == "cycles") {
    require(doc.at("shard").as_u64());
    require(doc.at("attempt").as_u64());
    require(doc.at("seq").as_u64());
    require(doc.at("cycle").as_u64());
    require(doc.at("deltas"));
  } else if (sample == "wall") {
    require(doc.at("t_ms").as_double());
    require(doc.at("counters"));
    for (const JsonValue& w : doc.at("workers").items) {
      require(w.at("busy_ms").as_double());
      require(w.at("done").as_u64());
      require(w.at("shard"));
    }
  } else if (sample == "final") {
    require(doc.at("t_ms").as_double());
    require(doc.at("counters"));
    const JsonValue& shards = doc.at("shards");
    require(shards.at("done").as_u64());
    require(shards.at("failed").as_u64());
    require(shards.at("skipped").as_u64());
    require(shards.at("total").as_u64());
  } else {
    throw ConfigError("unknown sample kind '" + sample + "'");
  }
}

using Validator = void (*)(const JsonValue&);

/// Full classification of one JSONL file, raw lines retained for repair.
struct JsonlScan {
  FsckVerdict verdict;
  std::string raw_header;
  std::vector<std::string> raw_intact;   ///< record lines, in file order
  std::vector<std::string> corrupt_raw;  ///< parallel to verdict.issues
};

/// One line's classification attempt: CRC check, parse, validate.
bool classify_line(const std::string& line, const std::string& path, std::size_t line_no,
                   Validator validate, std::string& reason) {
  std::string_view body;
  if (resilience::check_frame(line, body) == resilience::FrameCheck::kMismatch) {
    reason = "CRC mismatch";
    return false;
  }
  try {
    const JsonValue doc = parse_json(std::string(body), path + ":" + std::to_string(line_no));
    validate(doc);
  } catch (const ConfigError& e) {
    reason = e.what();
    return false;
  }
  return true;
}

/// The readers' damage taxonomy over one JSONL file: a damaged header is
/// fatal (unrepairable), a damaged final line is a torn tail, a damaged
/// mid-file line is corruption (quarantinable).
JsonlScan scan_jsonl(const std::string& path, const std::string& content,
                     FsckFileType type, Validator validate_header, Validator validate_record) {
  JsonlScan scan;
  FsckVerdict& v = scan.verdict;
  v.path = path;
  v.type = type;

  const SplitLines split = split_lines(content);
  std::string reason;
  if (split.lines.empty() ||
      !classify_line(split.lines[0], path, 1, validate_header, reason)) {
    v.status = FsckStatus::kCorrupt;
    v.repairable = false;
    v.detail = split.lines.empty() ? "empty file (no header)"
                                   : "damaged header — nothing below it can be trusted";
    if (!split.lines.empty()) v.issues.push_back({1, reason});
    return scan;
  }
  scan.raw_header = split.lines[0];
  v.intact_bytes = split.lines[0].size() + 1;

  bool damaged = false;
  for (std::size_t i = 1; i < split.lines.size(); ++i) {
    const std::string& line = split.lines[i];
    const bool tail = i + 1 == split.lines.size();
    if (line.empty()) {
      if (!damaged) v.intact_bytes += 1;
      continue;
    }
    if (classify_line(line, path, i + 1, validate_record, reason)) {
      ++v.intact_lines;
      scan.raw_intact.push_back(line);
      if (!damaged) v.intact_bytes += line.size() + 1;
      continue;
    }
    if (tail) {
      v.torn_tail = true;
      break;
    }
    v.issues.push_back({i + 1, reason});
    scan.corrupt_raw.push_back(line);
    damaged = true;
  }
  v.intact_bytes = std::min<std::uint64_t>(v.intact_bytes, content.size());

  if (!v.issues.empty()) {
    v.status = FsckStatus::kCorrupt;
    v.repairable = true;
    v.detail = std::to_string(v.issues.size()) + " corrupt mid-file line(s)";
  } else if (v.torn_tail) {
    v.status = FsckStatus::kTorn;
    v.repairable = true;
    v.detail = "torn trailing line (intact prefix: " + std::to_string(v.intact_bytes) +
               " bytes)";
  }
  return scan;
}

bool is_descriptor_name(const std::string& name) {
  // Exactly job-<digits>.json: the descriptor, not its report siblings.
  if (name.rfind("job-", 0) != 0) return false;
  const std::string::size_type dot = name.find('.');
  if (dot == std::string::npos || name.substr(dot) != ".json") return false;
  if (dot == 4) return false;
  for (std::string::size_type i = 4; i < dot; ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return false;
  }
  return true;
}

bool valid_job_state(const std::string& text) {
  return text == "queued" || text == "running" || text == "done" || text == "failed" ||
         text == "cancelled";
}

/// Whole-file JSON documents (descriptors, reports): atomically replaced,
/// so any damage means the atomic-write discipline was violated (or the
/// medium rotted) — there is no line structure to salvage.
FsckVerdict fsck_json(const std::string& path, const std::string& name,
                      const std::string& content) {
  FsckVerdict v;
  v.path = path;
  v.type = is_descriptor_name(name)
               ? FsckFileType::kDescriptor
               : (name.find(".report.") != std::string::npos ? FsckFileType::kReport
                                                             : FsckFileType::kOther);
  try {
    const JsonValue doc = parse_json(content, path);
    const JsonValue* schema = doc.find("schema");
    const std::string tag = schema != nullptr ? schema->text : "";
    if (tag == "rh-serve-job/v1") {
      v.type = FsckFileType::kDescriptor;
      require(doc.at("id").as_u64());
      require(doc.at("config"));
      if (!valid_job_state(doc.at("state").text)) {
        throw ConfigError("unknown job state \"" + doc.at("state").text + "\"");
      }
    } else if (tag == "rh-run-report/v1") {
      v.type = FsckFileType::kReport;
    } else if (v.type != FsckFileType::kOther) {
      throw ConfigError("expected schema tag missing (found \"" + tag + "\")");
    } else {
      v.detail = "foreign json (not validated)";
    }
  } catch (const ConfigError& e) {
    v.status = FsckStatus::kCorrupt;
    v.repairable = false;
    v.issues.push_back({1, e.what()});
    v.detail = "whole-file document damaged — no line structure to salvage";
  }
  return v;
}

JsonlScan scan_jsonl_typed(const std::string& path, const std::string& content,
                           FsckFileType type) {
  return type == FsckFileType::kJournal
             ? scan_jsonl(path, content, type, validate_journal_header,
                          validate_journal_record)
             : scan_jsonl(path, content, type, validate_stream_header,
                          validate_stream_record);
}

/// Identifies a JSONL file's family: by header kind when the header is
/// intact, by conventional name (.journal. / .stream. / a bare campaign
/// checkpoint) when it is not.
FsckFileType jsonl_type(const std::string& name, const std::string& content) {
  const SplitLines split = split_lines(content);
  if (!split.lines.empty()) {
    std::string_view body;
    if (resilience::check_frame(split.lines[0], body) != resilience::FrameCheck::kMismatch) {
      try {
        const JsonValue doc = parse_json(std::string(body), name);
        if (const JsonValue* kind = doc.find("kind"); kind != nullptr) {
          if (kind->text == "rh-campaign-journal") return FsckFileType::kJournal;
          if (kind->text == "rh-metrics-stream") return FsckFileType::kStream;
          return FsckFileType::kOther;
        }
      } catch (const ConfigError&) {
        // Damaged header: fall through to the filename.
      }
    }
  }
  if (name.find(".journal.") != std::string::npos) return FsckFileType::kJournal;
  if (name.find(".stream.") != std::string::npos) return FsckFileType::kStream;
  // A bare checkpoint (bench --checkpoint=ck.jsonl) is a journal by
  // convention; with a destroyed header we cannot prove it, so only the
  // explicit suffixes get typed.
  return FsckFileType::kOther;
}

}  // namespace

const char* to_string(FsckStatus status) {
  switch (status) {
    case FsckStatus::kOk: return "ok";
    case FsckStatus::kTorn: return "torn";
    case FsckStatus::kCorrupt: return "corrupt";
    case FsckStatus::kOrphanTmp: return "orphan-tmp";
  }
  return "?";
}

const char* to_string(FsckFileType type) {
  switch (type) {
    case FsckFileType::kJournal: return "journal";
    case FsckFileType::kStream: return "stream";
    case FsckFileType::kDescriptor: return "descriptor";
    case FsckFileType::kReport: return "report";
    case FsckFileType::kQuarantine: return "quarantine";
    case FsckFileType::kTmp: return "tmp";
    case FsckFileType::kOther: return "other";
  }
  return "?";
}

FsckVerdict fsck_file(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  FsckVerdict v;
  v.path = path;

  if (ends_with(name, ".tmp")) {
    v.type = FsckFileType::kTmp;
    v.status = FsckStatus::kOrphanTmp;
    v.repairable = true;
    v.detail = "atomic-write leftover (kill between write and rename)";
    return v;
  }
  if (ends_with(name, ".quarantine")) {
    v.type = FsckFileType::kQuarantine;
    v.detail = "quarantined lines from a past repair (kept verbatim)";
    return v;
  }

  const std::string content = read_all(path);
  if (ends_with(name, ".jsonl")) {
    const FsckFileType type = jsonl_type(name, content);
    if (type == FsckFileType::kOther) {
      v.detail = "unrecognized jsonl (not validated)";
      return v;
    }
    return scan_jsonl_typed(path, content, type).verdict;
  }
  if (ends_with(name, ".json")) {
    return fsck_json(path, name, content);
  }
  v.detail = "skipped";
  return v;
}

std::vector<FsckVerdict> fsck_scan(const std::string& data_dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(data_dir, ec)) {
    throw ConfigError("not a directory: " + data_dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(data_dir, ec)) {
    if (entry.is_regular_file()) paths.push_back(entry.path().string());
  }
  if (ec) throw ConfigError("cannot list directory: " + data_dir);
  std::sort(paths.begin(), paths.end());

  std::vector<FsckVerdict> verdicts;
  verdicts.reserve(paths.size());
  for (const std::string& path : paths) verdicts.push_back(fsck_file(path));
  return verdicts;
}

std::string fsck_repair(const FsckVerdict& verdict) {
  if (verdict.status == FsckStatus::kOk) return "";
  if (!verdict.repairable) {
    throw ConfigError("unrepairable: " + verdict.path + " (" +
                      (verdict.detail.empty() ? to_string(verdict.status) : verdict.detail) +
                      ")");
  }
  switch (verdict.status) {
    case FsckStatus::kOrphanTmp: {
      if (std::remove(verdict.path.c_str()) != 0) {
        throw ConfigError("cannot remove orphaned tmp file: " + verdict.path);
      }
      return "removed orphaned tmp";
    }
    case FsckStatus::kTorn: {
      std::error_code ec;
      std::filesystem::resize_file(verdict.path, verdict.intact_bytes, ec);
      if (ec) throw ConfigError("cannot truncate torn tail: " + verdict.path);
      return "truncated torn tail to " + std::to_string(verdict.intact_bytes) + " bytes";
    }
    case FsckStatus::kCorrupt: {
      // Re-scan for the raw lines (verdicts carry only the diagnosis):
      // quarantine the damaged lines verbatim, then compact — exactly the
      // repair a quarantining resume performs.
      const JsonlScan scan = scan_jsonl_typed(verdict.path, read_all(verdict.path),
                                              verdict.type);
      if (!scan.verdict.repairable) {
        throw ConfigError("unrepairable: " + verdict.path + " (changed since scan)");
      }
      const std::string qpath = verdict.path + ".quarantine";
      std::ofstream quarantine(qpath, std::ios::app | std::ios::binary);
      if (!quarantine) throw ConfigError("cannot open quarantine file: " + qpath);
      for (const std::string& line : scan.corrupt_raw) quarantine << line << '\n';
      quarantine.flush();
      if (!quarantine) throw ConfigError("cannot write quarantine file: " + qpath);
      std::string compacted = scan.raw_header + '\n';
      for (const std::string& line : scan.raw_intact) {
        compacted += line;
        compacted += '\n';
      }
      resilience::write_file_atomic(verdict.path, compacted, "repaired file");
      std::string note = "quarantined " + std::to_string(scan.corrupt_raw.size()) +
                         " corrupt line(s) to " + qpath;
      if (scan.verdict.torn_tail) note += " and dropped the torn tail";
      return note;
    }
    case FsckStatus::kOk: break;
  }
  return "";
}

void render_fsck_report(std::ostream& os, const std::vector<FsckVerdict>& verdicts) {
  std::size_t ok = 0;
  std::size_t torn = 0;
  std::size_t corrupt = 0;
  std::size_t unrepairable = 0;
  std::size_t orphans = 0;
  for (const FsckVerdict& v : verdicts) {
    char line[32];
    std::snprintf(line, sizeof line, "%-10s %-10s ", to_string(v.status), to_string(v.type));
    os << "  " << line << v.path;
    if (v.type == FsckFileType::kJournal || v.type == FsckFileType::kStream) {
      os << " (" << v.intact_lines << " intact line" << (v.intact_lines == 1 ? "" : "s")
         << ")";
    }
    if (!v.detail.empty()) os << " — " << v.detail;
    os << '\n';
    for (const FsckIssue& issue : v.issues) {
      os << "      line " << issue.line_no << ": " << issue.reason << '\n';
    }
    switch (v.status) {
      case FsckStatus::kOk: ++ok; break;
      case FsckStatus::kTorn: ++torn; break;
      case FsckStatus::kCorrupt:
        ++corrupt;
        if (!v.repairable) ++unrepairable;
        break;
      case FsckStatus::kOrphanTmp: ++orphans; break;
    }
  }
  os << "summary: " << verdicts.size() << " file(s) — " << ok << " ok, " << torn << " torn, "
     << corrupt << " corrupt (" << unrepairable << " unrepairable), " << orphans
     << " orphaned tmp\n";
}

}  // namespace rh::campaign
