#include "campaign/record_io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace rh::campaign {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& detail) {
  throw common::ConfigError("malformed JSON in " + what + ": " + detail);
}

/// Cursor over the input; the parser functions advance it.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  const std::string& what;

  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos;
  }

  void expect(char c) {
    if (eof() || peek() != c) fail(what, std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (eof()) fail(what, "unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f' || c == 'n') return parse_keyword();
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key.text), parse_value());
      skip_ws();
      if (eof()) fail(what, "unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (eof()) fail(what, "unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (!eof() && peek() != '"') {
      char c = peek();
      if (c == '\\') {
        ++pos;
        if (eof()) fail(what, "unterminated escape");
        switch (peek()) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // The writer only emits \u00xx control escapes; decode those.
            if (pos + 4 >= text.size()) fail(what, "truncated \\u escape");
            const std::string hex(text.substr(pos + 1, 4));
            c = static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16) & 0xff);
            pos += 4;
            break;
          }
          default: fail(what, "unsupported escape");
        }
      }
      v.text += c;
      ++pos;
    }
    expect('"');
    return v;
  }

  JsonValue parse_keyword() {
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
    } else if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
    } else if (consume_literal("null")) {
      v.kind = JsonValue::Kind::kNull;
    } else {
      fail(what, "unknown keyword");
    }
    return v;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == 'e' ||
                      peek() == 'E' || peek() == '-' || peek() == '+')) {
      ++pos;
    }
    if (pos == start) fail(what, "expected a value");
    v.text = std::string(text.substr(start, pos - start));
    return v;
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw common::ConfigError("journal record is missing field \"" + std::string(key) + "\"");
  }
  return *v;
}

double JsonValue::as_double() const {
  if (kind != Kind::kNumber) throw common::ConfigError("journal field is not a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || errno == ERANGE) {
    throw common::ConfigError("journal field is not a valid number: " + text);
  }
  return v;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind != Kind::kNumber) throw common::ConfigError("journal field is not a number");
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE || text[0] == '-') {
    throw common::ConfigError("journal field is not a valid unsigned integer: " + text);
  }
  return v;
}

JsonValue parse_json(std::string_view text, const std::string& what) {
  Parser p{text, 0, what};
  JsonValue v = p.parse_value();
  p.skip_ws();
  if (!p.eof()) fail(what, "trailing characters after document");
  return v;
}

std::string format_double_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_row_record_json(std::string& out, const core::RowRecord& record) {
  out += "{\"ch\":" + std::to_string(record.site.channel);
  out += ",\"pc\":" + std::to_string(record.site.pseudo_channel);
  out += ",\"bk\":" + std::to_string(record.site.bank);
  out += ",\"row\":" + std::to_string(record.physical_row);
  out += ",\"wcdp\":" + std::to_string(static_cast<std::size_t>(record.wcdp));
  out += ",\"ber\":[";
  for (std::size_t i = 0; i < record.ber.size(); ++i) {
    const auto& b = record.ber[i];
    if (i != 0) out += ',';
    out += "{\"e\":" + std::to_string(b.bit_errors);
    out += ",\"t\":" + std::to_string(b.bits_tested);
    out += ",\"oz\":" + std::to_string(b.ones_to_zeros);
    out += ",\"zo\":" + std::to_string(b.zeros_to_ones);
    out += ",\"ms\":" + format_double_exact(b.elapsed_ms) + "}";
  }
  out += "],\"hc\":[";
  for (std::size_t i = 0; i < record.hc_first.size(); ++i) {
    if (i != 0) out += ',';
    out += record.hc_first[i] ? std::to_string(*record.hc_first[i]) : "null";
  }
  out += "]}";
}

core::RowRecord parse_row_record(const JsonValue& value) {
  core::RowRecord record;
  record.site.channel = static_cast<std::uint32_t>(value.at("ch").as_u64());
  record.site.pseudo_channel = static_cast<std::uint32_t>(value.at("pc").as_u64());
  record.site.bank = static_cast<std::uint32_t>(value.at("bk").as_u64());
  record.physical_row = static_cast<std::uint32_t>(value.at("row").as_u64());
  const std::uint64_t wcdp = value.at("wcdp").as_u64();
  if (wcdp >= core::kAllPatterns.size()) {
    throw common::ConfigError("journal record has out-of-range wcdp index");
  }
  record.wcdp = core::kAllPatterns[wcdp];

  const JsonValue& ber = value.at("ber");
  const JsonValue& hc = value.at("hc");
  if (ber.items.size() != record.ber.size() || hc.items.size() != record.hc_first.size()) {
    throw common::ConfigError("journal record has wrong per-pattern array length");
  }
  for (std::size_t i = 0; i < record.ber.size(); ++i) {
    const JsonValue& b = ber.items[i];
    record.ber[i].bit_errors = b.at("e").as_u64();
    record.ber[i].bits_tested = b.at("t").as_u64();
    record.ber[i].ones_to_zeros = b.at("oz").as_u64();
    record.ber[i].zeros_to_ones = b.at("zo").as_u64();
    record.ber[i].elapsed_ms = b.at("ms").as_double();
    if (hc.items[i].kind != JsonValue::Kind::kNull) {
      record.hc_first[i] = hc.items[i].as_u64();
    }
  }
  return record;
}

}  // namespace rh::campaign
