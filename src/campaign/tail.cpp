#include "campaign/tail.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <ostream>
#include <set>

#include "campaign/journal.hpp"
#include "campaign/progress.hpp"
#include "campaign/record_io.hpp"
#include "common/error.hpp"
#include "resilience/storage.hpp"

namespace rh::campaign {

namespace {

/// Whole-file read split into newline-terminated lines; trailing bytes with
/// no newline are a torn tail (campaign mid-append), never an error.
std::vector<std::string> intact_lines(const std::string& path, bool& torn) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw common::ConfigError("cannot open metrics stream: " + path);
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  if (start < content.size()) torn = true;
  return lines;
}

std::uint64_t hex_u64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 16);
}

void add_counters(std::map<std::string, std::uint64_t>& into, const JsonValue& object) {
  for (const auto& [name, value] : object.members) into[name] += value.as_u64();
}

std::string pct_text(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%", fraction * 100.0);
  return buf;
}

std::string rate_text(double per_s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", per_s);
  return buf;
}

}  // namespace

MetricsStreamData read_metrics_stream(const std::string& path) {
  MetricsStreamData data;
  const std::vector<std::string> lines = intact_lines(path, data.torn);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const bool tail = i + 1 == lines.size();

    // v2 lines carry a CRC frame; v1 lines are bare payloads (kUnframed).
    std::string_view body;
    bool damaged =
        resilience::check_frame(lines[i], body) == resilience::FrameCheck::kMismatch;
    JsonValue doc;
    if (!damaged) {
      try {
        doc = parse_json(std::string(body), path + " line " + std::to_string(i + 1));
      } catch (const common::ConfigError&) {
        damaged = true;
      }
    }

    if (!damaged && !data.has_header) {
      const JsonValue* kind = doc.find("kind");
      if (kind == nullptr || kind->text != "rh-metrics-stream") {
        throw common::ConfigError("not an rh-metrics-stream file: " + path);
      }
      data.has_header = true;
      data.seed = doc.at("seed").as_u64();
      data.config_hash = hex_u64(doc.at("config_hash").text);
      data.shards = doc.at("shards").as_u64();
      data.jobs = static_cast<unsigned>(doc.at("jobs").as_u64());
      data.cycle_cadence = doc.at("cycle_cadence").as_u64();
      data.wall_cadence_ms = doc.at("wall_cadence_ms").as_double();
      continue;
    }

    if (!damaged) {
      try {
        const std::string& sample = doc.at("sample").text;
        if (sample == "cycles") {
          ++data.cycles_samples;
          add_counters(data.device_counters, doc.at("deltas"));
        } else if (sample == "wall") {
          ++data.wall_samples;
          data.last_t_ms = doc.at("t_ms").as_double();
          add_counters(data.counters, doc.at("counters"));
          data.workers.clear();
          for (const auto& w : doc.at("workers").items) {
            MetricsStreamData::Worker worker;
            worker.busy_ms = w.at("busy_ms").as_double();
            worker.done = w.at("done").as_u64();
            worker.shard = static_cast<std::int64_t>(w.at("shard").as_double());
            data.workers.push_back(worker);
          }
        } else if (sample == "final") {
          data.finished = true;
          data.last_t_ms = doc.at("t_ms").as_double();
          data.counters.clear();
          add_counters(data.counters, doc.at("counters"));
          const JsonValue& shards = doc.at("shards");
          data.final_done = shards.at("done").as_u64();
          data.final_failed = shards.at("failed").as_u64();
          data.final_skipped = shards.at("skipped").as_u64();
          data.final_total = shards.at("total").as_u64();
        } else {
          // Parsed JSON but not a sample we know: rot that kept the line
          // well-formed, or a future writer. Either way, skippable.
          damaged = true;
        }
      } catch (const common::ConfigError&) {
        damaged = true;  // a known sample kind with fields missing/mistyped
      }
    }

    if (damaged) {
      // A complete-looking final line can still be half a write (the
      // newline landed, the fsync didn't). Tolerate it exactly like the
      // journal reader. Mid-file damage: no trusted header means nothing
      // below is this stream's (foreign file) — fatal; under a good header
      // it is bit rot on advisory telemetry — count it and keep going.
      if (tail) {
        data.torn = true;
        break;
      }
      if (!data.has_header) {
        throw common::ConfigError("corrupt metrics stream header: " + path);
      }
      ++data.corrupt_lines;
      continue;
    }
  }
  return data;
}

TailStatus tail_status(const std::string& journal_path, const std::string& stream_path,
                       const TailOptions& opts) {
  if (journal_path.empty() && stream_path.empty()) {
    throw common::ConfigError("tail_status needs a journal and/or a metrics stream");
  }
  TailStatus status;
  std::set<std::uint64_t> completed;

  if (!journal_path.empty()) {
    const JournalReader reader(journal_path);
    status.seed = reader.header().seed;
    status.shards_total = reader.header().shard_count;
    status.torn = status.torn || reader.torn_tail();
    status.corrupt_lines += reader.corrupt_lines().size();
    std::set<std::uint64_t> failed_shards;
    for (const auto& outcome : reader.outcomes()) {
      status.attempts += outcome.attempts;
      if (outcome.ok) {
        status.records += outcome.records;
      } else {
        failed_shards.insert(outcome.shard);
      }
    }
    for (const auto& [index, records] : reader.shards()) {
      completed.insert(index);
      failed_shards.erase(index);  // a later retry (resume) completed it
    }
    status.done = completed.size();
    status.failed = failed_shards.size();
  }

  if (!stream_path.empty()) {
    const MetricsStreamData stream = read_metrics_stream(stream_path);
    status.torn = status.torn || stream.torn;
    status.corrupt_lines += stream.corrupt_lines;
    if (stream.has_header) {
      status.seed = stream.seed;
      if (stream.shards > 0) status.shards_total = stream.shards;
      status.jobs = stream.jobs;
    }
    status.elapsed_ms = stream.last_t_ms;
    status.finished = stream.finished;
    status.counters = stream.counters;
    status.device_counters = stream.device_counters;
    if (stream.finished) {
      status.done = std::max(status.done, stream.final_done);
      status.failed = std::max(status.failed, stream.final_failed);
      status.skipped = stream.final_skipped;
      if (stream.final_total > 0) status.shards_total = stream.final_total;
    } else if (journal_path.empty()) {
      // No journal to count from: the streamed campaign counters are the
      // next-best progress signal (they lag by at most one wall cadence).
      const auto find = [&](const char* name) {
        const auto it = stream.counters.find(name);
        return it != stream.counters.end() ? it->second : std::uint64_t{0};
      };
      status.done = find("campaign.shards_done");
      status.failed = find("campaign.shards_failed");
      status.skipped = find("campaign.shards_skipped");
    }
    status.workers.reserve(stream.workers.size());
    for (const auto& w : stream.workers) {
      TailWorkerView view;
      view.busy_ms = w.busy_ms;
      view.done = w.done;
      view.shard = w.shard;
      view.utilization =
          status.elapsed_ms > 0.0 ? std::min(1.0, w.busy_ms / status.elapsed_ms) : 0.0;
      status.workers.push_back(view);
    }
    if (!stream.finished) {
      for (std::size_t i = 0; i < stream.workers.size(); ++i) {
        const std::int64_t shard = stream.workers[i].shard;
        if (shard >= 0 && completed.count(static_cast<std::uint64_t>(shard)) == 0) {
          status.stalled.push_back(
              {static_cast<std::uint64_t>(shard), static_cast<unsigned>(i)});
        }
      }
    }
  }

  if (!status.finished) {
    const std::uint64_t finished_shards = status.done + status.failed + status.skipped;
    const std::uint64_t remaining =
        status.shards_total > finished_shards ? status.shards_total - finished_shards : 0;
    status.eta = eta_text(status.elapsed_ms * 1e-3, status.done + status.failed, remaining);
  }
  // Post-mortem (no live observation), every suspect is a casualty; in
  // follow mode a suspect only trips the watchdog once the files have been
  // quiet longer than the stall budget.
  status.watchdog_tripped = !status.stalled.empty() &&
                            (opts.observed_idle_ms < 0.0 ||
                             opts.observed_idle_ms >= opts.stall_ms);
  return status;
}

void render_tail_status(std::ostream& os, const TailStatus& status) {
  const std::uint64_t finished = status.done + status.failed + status.skipped;
  os << "[rh_tail] seed " << status.seed << " | " << finished << "/" << status.shards_total
     << " shards";
  if (status.shards_total > 0) os << " (" << finished * 100 / status.shards_total << "%)";
  if (status.skipped > 0) os << " | " << status.skipped << " resumed";
  if (status.failed > 0) os << " | " << status.failed << " FAILED";
  if (status.finished) {
    os << " | finished in " << format_seconds(status.elapsed_ms * 1e-3);
  } else {
    os << " | elapsed " << format_seconds(status.elapsed_ms * 1e-3);
    if (!status.eta.empty()) os << " | " << status.eta;
  }
  if (status.torn) os << " | torn tail tolerated";
  if (status.corrupt_lines > 0) {
    os << " | " << status.corrupt_lines << " corrupt line"
       << (status.corrupt_lines == 1 ? "" : "s") << " skipped";
  }
  os << '\n';
  os << "records journaled: " << status.records << " | attempts: " << status.attempts << '\n';

  os << "per-worker utilization:\n";
  if (status.workers.empty()) {
    os << "  (no wall samples yet"
       << (status.jobs > 0 ? ", " + std::to_string(status.jobs) + " workers configured" : "")
       << ")\n";
  }
  for (std::size_t i = 0; i < status.workers.size(); ++i) {
    const TailWorkerView& w = status.workers[i];
    os << "  worker " << i << ": " << pct_text(w.utilization) << " busy ("
       << format_seconds(w.busy_ms * 1e-3) << "), " << w.done << " done, ";
    if (w.shard >= 0) {
      os << "shard " << w.shard << " in flight\n";
    } else {
      os << "idle\n";
    }
  }

  const auto counter = [&](const char* name) {
    const auto it = status.counters.find(name);
    return it != status.counters.end() ? it->second : std::uint64_t{0};
  };
  const std::uint64_t injected = counter("resilience.injected");
  const double elapsed_s = status.elapsed_ms * 1e-3;
  os << "faults: " << injected << " injected";
  if (elapsed_s > 0.0) {
    os << " (" << rate_text(static_cast<double>(injected) / elapsed_s) << "/s)";
  }
  os << ", " << counter("resilience.recovered") << " recovered, "
     << counter("resilience.aborted") << " aborted, "
     << counter("campaign.shards_retried") << " shard retries\n";

  os << "stall watchdog:\n";
  if (status.finished) {
    os << "  campaign finished cleanly — nothing in flight\n";
  } else if (status.stalled.empty()) {
    os << "  ok — no suspect shards\n";
  } else {
    for (const StalledShard& s : status.stalled) {
      os << "  " << (status.watchdog_tripped ? "STALLED" : "in flight") << ": shard "
         << s.shard << " (worker " << s.worker << ") — claimed but not journaled\n";
    }
  }
}

}  // namespace rh::campaign
