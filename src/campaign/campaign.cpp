#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <thread>

#include "campaign/journal.hpp"
#include "campaign/progress.hpp"
#include "campaign/record_io.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/row_map.hpp"
#include "telemetry/stream.hpp"

namespace rh::campaign {

SweepSpec survey_sweep(hbm::DeviceConfig device, const core::SurveyConfig& survey,
                       std::uint32_t max_rows_per_shard) {
  SweepSpec spec;
  spec.shards = core::plan_survey_shards(survey, device.geometry, max_rows_per_shard);
  spec.device = std::move(device);
  spec.characterizer = survey.characterizer;
  return spec;
}

std::string sweep_fingerprint(const SweepSpec& spec) {
  const auto& g = spec.device.geometry;
  const auto& c = spec.characterizer;
  std::string fp = "v1;seed=" + std::to_string(spec.device.fault.seed);
  fp += ";geom=" + std::to_string(g.channels) + "," +
        std::to_string(g.pseudo_channels_per_channel) + "," +
        std::to_string(g.banks_per_pseudo_channel) + "," + std::to_string(g.rows_per_bank) +
        "," + std::to_string(g.columns_per_row) + "," + std::to_string(g.bytes_per_column) +
        "," + std::to_string(g.dies);
  fp += ";scramble=" + std::to_string(static_cast<int>(spec.device.scramble));
  fp += ";temp=" + format_double_exact(spec.temperature_c);
  fp += ";settle=" + std::to_string(spec.settle_thermal ? 1 : 0);
  fp += ";chr=" + std::to_string(c.ber_hammers) + "," + std::to_string(c.max_hammers) + "," +
        std::to_string(c.wcdp_tolerance) + "," + std::to_string(c.surround_rows) + "," +
        std::to_string(c.enforce_retention_bound ? 1 : 0) + "," +
        std::to_string(c.aggressor_on_time);
  fp += ";shards=" + std::to_string(spec.shards.size());
  for (const auto& s : spec.shards) {
    fp += ";" + std::to_string(s.index) + ":" + s.site.to_string() + ":" +
          std::to_string(s.row_begin) + "-" + std::to_string(s.row_end) + ":" +
          std::to_string(s.row_stride) + ":m" + std::to_string(static_cast<int>(s.mode)) +
          ":p" + std::to_string(s.pattern) + ":h" + std::to_string(s.hammers);
  }
  return fp;
}

std::uint64_t sweep_config_hash(const SweepSpec& spec) {
  return fnv1a(sweep_fingerprint(spec));
}

std::vector<core::RowRecord> CampaignResult::flat() const {
  std::vector<core::RowRecord> records;
  std::size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  records.reserve(total);
  for (const auto& shard : per_shard) {
    records.insert(records.end(), shard.begin(), shard.end());
  }
  return records;
}

namespace {

/// One worker's private measurement stack: a host clone, its telemetry
/// sink, its fault injector (when the campaign runs under fault injection),
/// and a characterizer bound to all three. Rebuilt from scratch when a
/// shard throws (the old host's state is suspect after an exception).
struct WorkerRig {
  std::unique_ptr<bender::BenderHost> host;
  std::unique_ptr<telemetry::Telemetry> sink;
  std::unique_ptr<resilience::FaultInjector> injector;
  std::unique_ptr<core::Characterizer> characterizer;
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Live status of one worker slot, mutated under the campaign mutex; the
/// wall-cadence monitor folds it into each wall sample's `workers` array.
struct WorkerStatus {
  double busy_ms = 0.0;    ///< completed-shard wall time (in-flight added at read)
  std::uint64_t done = 0;  ///< shards this worker finished
  std::int64_t shard = -1; ///< shard in flight, -1 when idle
  std::chrono::steady_clock::time_point claim;  ///< when `shard` was claimed
};

}  // namespace

Campaign::Campaign(CampaignConfig config, telemetry::Telemetry* aggregate)
    : config_(std::move(config)), aggregate_(aggregate) {
  factory_ = [](const SweepSpec& spec) {
    auto host = std::make_unique<bender::BenderHost>(spec.device);
    if (spec.settle_thermal) {
      host->set_chip_temperature(spec.temperature_c);
    } else {
      host->device().set_temperature(spec.temperature_c);
    }
    return host;
  };
}

CampaignResult Campaign::run(const SweepSpec& spec) {
  const auto run_start = std::chrono::steady_clock::now();
  spans_.clear();  // spans describe one run; metrics/profile accumulate
  const std::size_t n = spec.shards.size();
  for (std::size_t i = 0; i < n; ++i) {
    RH_EXPECTS(spec.shards[i].index == i);  // merge order is index order
  }
  const JournalHeader header{spec.device.fault.seed, sweep_config_hash(spec),
                             static_cast<std::uint64_t>(n)};

  auto& total_counter = metrics_.counter("campaign.shards_total");
  auto& done_counter = metrics_.counter("campaign.shards_done");
  auto& skipped_counter = metrics_.counter("campaign.shards_skipped");
  auto& failed_counter = metrics_.counter("campaign.shards_failed");
  auto& retried_counter = metrics_.counter("campaign.shards_retried");
  auto& fatal_counter = metrics_.counter("campaign.shards_fatal");
  auto& record_counter = metrics_.counter("campaign.records");
  auto& injected_counter = metrics_.counter("resilience.injected");
  auto& recovered_counter = metrics_.counter("resilience.recovered");
  auto& aborted_counter = metrics_.counter("resilience.aborted");
  // Per-shard end-to-end wall time (all attempts, incl. rig rebuilds). The
  // name carries "wall_ms" on purpose: the deterministic report projection
  // filters metrics by that suffix.
  auto& shard_wall_hist = metrics_.histogram("campaign.shard_wall_ms", 0.0, 60000.0, 120);
  total_counter.add(n);

  CampaignResult result;
  result.per_shard.resize(n);
  std::vector<char> done(n, 0);

  // Storage fault injection: the journal and the stream draw independent,
  // reproducible fault streams decorrelated from the plan seed (and from
  // the transport injectors' 0x819 stream).
  std::unique_ptr<resilience::StorageFaultInjector> journal_injector;
  std::unique_ptr<resilience::StorageFaultInjector> stream_injector;
  if (config_.storage_fault_plan.enabled()) {
    resilience::StorageFaultPlan splan = config_.storage_fault_plan;
    splan.seed = common::hash_coords(config_.storage_fault_plan.seed, 0x570u, 0);
    journal_injector = std::make_unique<resilience::StorageFaultInjector>(splan);
    splan.seed = common::hash_coords(config_.storage_fault_plan.seed, 0x570u, 1);
    stream_injector = std::make_unique<resilience::StorageFaultInjector>(std::move(splan));
  }
  // A storage failure is never worth a shard: drop the durable output that
  // failed, remember why, keep measuring.
  auto note_storage_error = [&result](const common::StorageError& e) {
    ++result.storage_errors;
    if (result.storage_error.empty()) result.storage_error = e.what();
  };

  // Resume: restore journaled shards, refusing a journal from a different
  // sweep. Corrupt mid-file lines are quarantined (their shards re-run);
  // the compacted journal is then reopened for appending the rest.
  std::unique_ptr<JournalWriter> journal;
  try {
    if (!config_.checkpoint_path.empty() && config_.resume) {
      JournalReader reader(config_.checkpoint_path);
      reader.require_matches(header);
      for (const auto& [index, records] : reader.shards()) {
        if (index >= n) continue;  // defensively ignore out-of-range entries
        result.per_shard[index] = records;
        done[index] = 1;
        ++result.shards_skipped;
        record_counter.add(records.size());
      }
      skipped_counter.add(result.shards_skipped);
      journal = std::make_unique<JournalWriter>(config_.checkpoint_path, reader,
                                                journal_injector.get());
    } else if (!config_.checkpoint_path.empty()) {
      journal =
          std::make_unique<JournalWriter>(config_.checkpoint_path, header, journal_injector.get());
    }
  } catch (const common::StorageError& e) {
    note_storage_error(e);  // checkpointing lost; the sweep still runs
  }

  const auto pending =
      static_cast<std::size_t>(std::count(done.begin(), done.end(), char{0}));
  unsigned jobs = std::max(1u, config_.jobs);
  jobs = static_cast<unsigned>(std::min<std::size_t>(jobs, std::max<std::size_t>(pending, 1)));

  // Live metrics stream: header first (fsync'd, like the journal), then
  // per-worker cycles samples during shards, wall samples from the monitor
  // thread, and exactly one final sample after the pool drains.
  const std::uint64_t cycle_cadence = std::max<std::uint64_t>(1, config_.stream_cycle_cadence);
  std::unique_ptr<telemetry::MetricsStreamWriter> stream;
  if (!config_.metrics_stream_path.empty()) {
    try {
      stream = std::make_unique<telemetry::MetricsStreamWriter>(
          config_.metrics_stream_path,
          telemetry::MetricsStreamHeader{spec.device.fault.seed, header.config_hash,
                                         static_cast<std::uint64_t>(n), jobs, cycle_cadence,
                                         config_.stream_wall_cadence_ms},
          stream_injector.get());
    } catch (const common::StorageError& e) {
      note_storage_error(e);  // header never landed: run streamless
    }
  }

  std::ostream* progress_stream =
      config_.progress ? (config_.progress_stream != nullptr ? config_.progress_stream
                                                             : &std::cerr)
                       : nullptr;
  ProgressMeter progress(progress_stream, total_counter, done_counter, skipped_counter,
                         failed_counter, jobs);

  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> rig_serial{0};
  std::mutex mutex;  // guards result, journal, counters, progress, aggregate_,
                     // wstatus, spans_ — and the monitor's wait
  std::vector<WorkerStatus> wstatus(jobs);

  auto retire_rig = [&](WorkerRig& rig) {
    if (rig.host != nullptr || (rig.sink != nullptr && aggregate_ != nullptr) ||
        rig.injector != nullptr) {
      const std::lock_guard<std::mutex> lock(mutex);
      // Host-level phases (upload/execute/drain/recover/thermal) fold into
      // the fleet profile when the rig retires, mirroring telemetry absorb.
      if (rig.host != nullptr) profile_.merge_from(rig.host->profile());
      if (rig.sink != nullptr && aggregate_ != nullptr) aggregate_->absorb(*rig.sink);
      if (rig.injector != nullptr) {
        const auto& stats = rig.injector->stats();
        injected_counter.add(stats.injected);
        recovered_counter.add(stats.recovered);
        aborted_counter.add(stats.aborted);
      }
    }
    rig = WorkerRig{};
  };

  auto build_rig = [&](WorkerRig& rig) {
    // The factory settles the host fault-free; the injector arms only the
    // measurement phase, so rig bring-up stays deterministic.
    rig.host = factory_(spec);
    if (aggregate_ != nullptr) {
      rig.sink = std::make_unique<telemetry::Telemetry>(aggregate_->config());
      rig.host->set_telemetry(rig.sink.get());
    } else if (stream != nullptr) {
      // Streaming without an aggregate still needs a per-worker sink: the
      // cycles series samples its counters. Trace stays off (nothing will
      // export it) and the heatmap matches the device geometry.
      telemetry::TelemetryConfig tc;
      tc.trace_enabled = false;
      tc.channels = spec.device.geometry.channels;
      tc.pseudo_channels = spec.device.geometry.pseudo_channels_per_channel;
      tc.banks = spec.device.geometry.banks_per_pseudo_channel;
      rig.sink = std::make_unique<telemetry::Telemetry>(tc);
      rig.host->set_telemetry(rig.sink.get());
    }
    if (config_.fault_plan.enabled()) {
      // Each rig draws an independent, reproducible fault stream: the plan
      // describes the failure environment, the serial decorrelates rigs.
      resilience::FaultPlan plan = config_.fault_plan;
      plan.seed = common::hash_coords(config_.fault_plan.seed, 0x819u,
                                      rig_serial.fetch_add(1));
      rig.injector = std::make_unique<resilience::FaultInjector>(std::move(plan));
      rig.host->set_fault_injector(rig.injector.get());
    }
    rig.host->set_engine(config_.engine, config_.engine_bug);
    rig.host->set_retry_policy(config_.retry_policy);
    rig.characterizer = std::make_unique<core::Characterizer>(
        *rig.host, core::RowMap::from_device(rig.host->device()), spec.characterizer);
  };

  auto worker = [&](unsigned widx) {
    WorkerRig rig;
    // Each worker accounts its campaign-level phases into a private profile
    // and its spans into a private sheet (both merged under the completion
    // lock at thread exit); its hosts' phases travel with retire_rig.
    // Mirrors the per-worker telemetry sinks.
    profiling::Profile wprof;
    telemetry::SpanSheet wsheet;
    const auto worker_start = std::chrono::steady_clock::now();
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) break;
      if (done[i] != 0) continue;
      if (stream != nullptr) {
        const std::lock_guard<std::mutex> lock(mutex);
        wstatus[widx].shard = static_cast<std::int64_t>(i);
        wstatus[widx].claim = std::chrono::steady_clock::now();
      }

      // The shard's span subtree: shard -> attempt(s) -> host phases. The
      // campaign-level spans carry 0..cycles-consumed cycle stamps; host
      // phases (opened through the context by the host) carry the absolute
      // host clock. Either way end - begin is cycles consumed.
      telemetry::TraceContext ctx(wsheet, i, run_start);
      const std::uint64_t shard_span = ctx.open(telemetry::SpanKind::kShard, 0);

      std::vector<core::RowRecord> records;
      std::string error;
      bool ok = false;
      bool fatal = false;
      unsigned attempts_used = 0;
      double shard_wall_ms = 0.0;       // all attempts, incl. rig rebuilds
      std::uint64_t shard_cycles = 0;   // measurement cycles (deterministic)
      for (unsigned attempt = 0; attempt <= config_.retries && !ok && !fatal; ++attempt) {
        if (attempt > 0) {
          const std::lock_guard<std::mutex> lock(mutex);
          retried_counter.add();
          ++result.shards_retried;
        }
        ++attempts_used;
        ctx.set_attempt(attempt + 1);
        const std::uint64_t attempt_span = ctx.open(telemetry::SpanKind::kAttempt, 0);
        const auto attempt_start = std::chrono::steady_clock::now();
        double build_ms = 0.0;
        hbm::Cycle run_from = 0;
        bool running = false;
        std::unique_ptr<telemetry::MetricsSampler> sampler;
        try {
          if (rig.host == nullptr) {
            build_rig(rig);
            build_ms = ms_since(attempt_start);
            // Bring-up cycles = the fresh host's clock (thermal settle).
            wprof.record(profiling::Phase::kRigBuild, rig.host->now(), build_ms);
          }
          rig.host->set_trace_context(&ctx);
          run_from = rig.host->now();
          if (stream != nullptr && rig.sink != nullptr) {
            // The cycles series is attempt-scoped: cycle stamps relative to
            // run_from, deltas relative to the previous sample, so the
            // series is a pure function of the shard, not of scheduling.
            sampler = std::make_unique<telemetry::MetricsSampler>(
                *stream, rig.sink->metrics(), cycle_cadence, i, attempt + 1, run_from);
            rig.host->set_cycle_sampler(sampler.get());
          }
          running = true;
          records = core::run_shard(*rig.characterizer, spec.shards[i]);
          ok = true;
        } catch (const common::TransientError& e) {
          // Infrastructure gave out (transport budget exhausted, thermal
          // upset): worth a retry on a freshly built rig.
          error = e.what();
        } catch (const std::exception& e) {
          // Deterministic failure — a retry would replay the identical
          // error, so don't burn the budget; isolate the shard now.
          error = e.what();
          fatal = true;
        }
        const std::uint64_t run_cycles =
            (running && rig.host != nullptr) ? rig.host->now() - run_from : 0;
        if (rig.host != nullptr) {
          if (sampler != nullptr) sampler->finish(rig.host->now());
          rig.host->set_cycle_sampler(nullptr);
          rig.host->set_trace_context(nullptr);
        }
        ctx.close(attempt_span, run_cycles);
        const double attempt_ms = ms_since(attempt_start);
        wprof.record(profiling::Phase::kShardRun, run_cycles,
                     std::max(0.0, attempt_ms - build_ms));
        shard_wall_ms += attempt_ms;
        shard_cycles += run_cycles;
        if (!ok) retire_rig(rig);  // the host's state is suspect after a throw
      }

      ctx.close(shard_span, shard_cycles);

      const std::lock_guard<std::mutex> lock(mutex);
      if (fatal) fatal_counter.add();
      if (ok) {
        if (journal != nullptr) {
          try {
            const profiling::PhaseTimer timer(wprof, profiling::Phase::kCheckpoint);
            journal->append_shard(i, records, shard_wall_ms, attempts_used);
          } catch (const common::StorageError& e) {
            journal.reset();  // the journal is gone; results stay in memory
            note_storage_error(e);
          }
        }
        record_counter.add(records.size());
        result.per_shard[i] = std::move(records);
        result.timings.push_back({i, shard_cycles, shard_wall_ms, attempts_used,
                                  telemetry::span_id(i, 0, 0)});
        shard_wall_hist.observe(shard_wall_ms);
        ++result.shards_run;
        done_counter.add();
      } else {
        if (journal != nullptr) {
          try {
            journal->append_failure(i, attempts_used, error);
          } catch (const common::StorageError& e) {
            journal.reset();
            note_storage_error(e);
          }
        }
        result.failures.push_back({i, error});
        failed_counter.add();
      }
      if (stream != nullptr) {
        wstatus[widx].busy_ms += ms_since(wstatus[widx].claim);
        ++wstatus[widx].done;
        wstatus[widx].shard = -1;
      }
      progress.update();
    }
    retire_rig(rig);
    // Queue wait + scheduling gaps: whatever worker lifetime no phase claims.
    const double lifetime_ms = ms_since(worker_start);
    const double busy_ms = wprof.stat(profiling::Phase::kRigBuild).wall_ms +
                           wprof.stat(profiling::Phase::kShardRun).wall_ms +
                           wprof.stat(profiling::Phase::kCheckpoint).wall_ms;
    wprof.record(profiling::Phase::kIdle, 0, std::max(0.0, lifetime_ms - busy_ms));
    const std::lock_guard<std::mutex> lock(mutex);
    profile_.merge_from(wprof);
    spans_.merge_from(wsheet);
  };

  if (pending > 0) {
    // Wall-cadence monitor: samples campaign counter deltas and per-worker
    // utilization under the campaign mutex, appends outside it (fsync is
    // slow; workers must not block on it).
    std::condition_variable monitor_cv;
    bool monitor_stop = false;
    std::thread monitor;
    if (stream != nullptr) {
      monitor = std::thread([&]() {
        telemetry::CounterValues last;
        std::unique_lock<std::mutex> lock(mutex);
        while (!monitor_stop) {
          monitor_cv.wait_for(
              lock, std::chrono::duration<double, std::milli>(config_.stream_wall_cadence_ms),
              [&] { return monitor_stop; });
          if (monitor_stop) break;
          const telemetry::CounterValues now_values = telemetry::counter_values(metrics_);
          telemetry::CounterValues deltas;
          for (const auto& [name, value] : now_values) {
            const auto it = last.find(name);
            const std::uint64_t before = it != last.end() ? it->second : 0;
            if (value > before) deltas[name] = value - before;
          }
          last = now_values;
          std::vector<telemetry::StreamWorkerStatus> workers;
          workers.reserve(wstatus.size());
          const auto snap_now = std::chrono::steady_clock::now();
          for (const auto& s : wstatus) {
            telemetry::StreamWorkerStatus w;
            w.busy_ms = s.busy_ms;
            if (s.shard >= 0) {
              w.busy_ms += std::chrono::duration<double, std::milli>(snap_now - s.claim).count();
            }
            w.done = s.done;
            w.shard = s.shard;
            workers.push_back(w);
          }
          const std::string line =
              telemetry::format_wall_sample(ms_since(run_start), deltas, workers);
          lock.unlock();
          stream->append(line);
          lock.lock();
        }
      });
    }
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
    if (monitor.joinable()) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        monitor_stop = true;
      }
      monitor_cv.notify_all();
      monitor.join();
    }
  }

  std::sort(result.failures.begin(), result.failures.end(),
            [](const ShardFailure& a, const ShardFailure& b) { return a.shard < b.shard; });
  // Workers push timings in completion order; shard order is the canonical
  // (and deterministic) presentation.
  std::sort(result.timings.begin(), result.timings.end(),
            [](const profiling::ShardTiming& a, const profiling::ShardTiming& b) {
              return a.shard < b.shard;
            });
  result.elapsed_wall_ms = ms_since(run_start);
  result.jobs = jobs;

  // Root the span forest and settle it into canonical order: the campaign
  // span's cycle extent is the fleet's total measurement cycles.
  {
    telemetry::Span root;
    root.id = telemetry::kCampaignSpanId;
    root.parent = 0;
    root.kind = telemetry::SpanKind::kCampaign;
    for (const auto& t : result.timings) root.end_cycle += t.device_cycles;
    root.end_wall_ms = result.elapsed_wall_ms;
    spans_.add(root);
    spans_.sort_canonical();
  }

  if (stream != nullptr) {
    stream->append(telemetry::format_final_sample(
        ms_since(run_start), telemetry::counter_values(metrics_), done_counter.value(),
        failed_counter.value(), skipped_counter.value(), total_counter.value()));
    if (stream->degraded()) {
      ++result.storage_errors;
      if (result.storage_error.empty()) result.storage_error = stream->storage_error();
    }
  }

  progress.finish();
  if (aggregate_ != nullptr) aggregate_->metrics().merge_from(metrics_);

  if (config_.fail_on_shard_error && !result.failures.empty()) {
    std::string message = std::to_string(result.failures.size()) + " of " + std::to_string(n) +
                          " shards failed after " + std::to_string(config_.retries) +
                          " retr" + (config_.retries == 1 ? "y" : "ies");
    const std::size_t shown = std::min<std::size_t>(result.failures.size(), 3);
    for (std::size_t i = 0; i < shown; ++i) {
      message += "; shard " + std::to_string(result.failures[i].shard) + ": " +
                 result.failures[i].what;
    }
    if (!config_.checkpoint_path.empty()) {
      message += "; completed shards are journaled in " + config_.checkpoint_path +
                 " (rerun with --resume to retry only the failed shards)";
    }
    throw CampaignError(message);
  }
  return result;
}

profiling::RunReport build_report(const std::string& label, const SweepSpec& spec,
                                  const Campaign& campaign, const CampaignResult& result,
                                  const telemetry::Telemetry* sink) {
  return build_report(label, spec, campaign.profile(), campaign.spans(), campaign.metrics(),
                      result, sink);
}

profiling::RunReport build_report(const std::string& label, const SweepSpec& spec,
                                  const profiling::Profile& profile,
                                  const telemetry::SpanSheet& spans,
                                  const telemetry::MetricsRegistry& metrics,
                                  const CampaignResult& result,
                                  const telemetry::Telemetry* sink) {
  profiling::RunReport report;
  report.campaign = label;
  report.seed = spec.device.fault.seed;
  report.jobs = result.jobs;
  report.shards_total = spec.shards.size();
  report.shards_done = result.shards_run;
  report.shards_skipped = result.shards_skipped;
  report.shards_failed = result.failures.size();
  report.shards_retried = result.shards_retried;
  report.elapsed_wall_ms = result.elapsed_wall_ms;
  report.profile = profile;
  report.timings = result.timings;
  for (const auto& shard : result.per_shard) report.records += shard.size();
  report.spans_total = spans.spans().size();
  report.spans_dropped = spans.dropped();
  if (sink != nullptr) {
    // The aggregate sink already holds the campaign.* counters (run() merges
    // them in) plus every worker's cmd.*/trr.*/flip.* observations; its
    // snapshot() also synthesizes telemetry.trace_dropped.
    report.metrics = sink->snapshot();
    report.trace = {sink->trace().total_recorded(),
                    static_cast<std::uint64_t>(sink->trace().size()),
                    sink->trace_dropped_total()};
  } else {
    report.metrics = metrics.snapshot();
  }
  report.shards_fatal =
      static_cast<std::uint64_t>(report.metrics.value_or("campaign.shards_fatal", 0.0));
  return report;
}

}  // namespace rh::campaign
