// The campaign results journal: a JSONL checkpoint file that makes a killed
// campaign resumable.
//
// Layout (one JSON document per line):
//
//   {"kind":"rh-campaign-journal","version":1,"seed":...,
//    "config_hash":"<16 hex digits>","shards":N}          <- header, fsync'd
//   {"shard":7,"attempts":1,"wall_ms":812.4,
//    "records":[{...RowRecord...}, ...]}                  <- per shard, in
//   {"shard":3,"records":[...]}                              completion order
//   {"shard":9,"attempts":2,"failed":"<error text>"}      <- isolated failure
//
// "attempts"/"wall_ms" are optional cost annotations (rh_report --journal
// renders them); journals written before they existed parse fine, and a
// failure line never counts as a completed shard — resume re-runs it.
//
// The header binds the journal to one exact sweep: the seed, the FNV-1a
// hash of the full campaign configuration (device geometry, scramble,
// temperature, characterizer parameters, and the entire shard plan), and
// the shard count. Resume refuses a journal whose header does not match the
// sweep being run, so stale checkpoints can never silently corrupt results.
//
// Durability: the header is fsync'd before any work starts, and every shard
// line is flushed+fsync'd when it is appended — a kill can lose at most the
// shard in flight. The reader ignores a torn trailing line.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/characterizer.hpp"

namespace rh::campaign {

/// FNV-1a 64-bit hash (used for the journal's config hash).
[[nodiscard]] std::uint64_t fnv1a(std::string_view text);

/// Identity of one sweep, stored in (and checked against) the header line.
struct JournalHeader {
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t shard_count = 0;
};

/// Appends completed shards to the journal. All methods throw
/// common::ConfigError on I/O failure.
class JournalWriter {
public:
  /// Creates (truncating any previous file) and writes an fsync'd header.
  JournalWriter(const std::string& path, const JournalHeader& header);
  /// Reopens an existing journal for appending (resume), first truncating
  /// it to `keep_bytes` — JournalReader::intact_bytes() — so a torn
  /// trailing line from a kill never ends up *preceding* appended lines.
  /// The caller is responsible for having validated the header.
  JournalWriter(const std::string& path, std::uint64_t keep_bytes);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Writes one completed shard as a single line, flushed and fsync'd.
  /// `wall_ms` < 0 omits the cost annotations (attempts/wall_ms), keeping
  /// the pre-annotation byte format.
  void append_shard(std::uint64_t shard, const std::vector<core::RowRecord>& records,
                    double wall_ms = -1.0, unsigned attempts = 1);

  /// Journals an isolated shard failure (after the retry budget drained).
  /// Failure lines are report fodder only: resume still re-runs the shard.
  void append_failure(std::uint64_t shard, unsigned attempts, const std::string& what);

private:
  void write_line(const std::string& line);

  std::FILE* file_ = nullptr;
  std::string path_;
};

/// One journal line's cost/outcome annotations, in file order — what
/// rh_report --journal summarizes without re-running anything.
struct ShardOutcome {
  std::uint64_t shard = 0;
  bool ok = true;
  unsigned attempts = 1;
  double wall_ms = -1.0;     ///< < 0 when the line carried no annotation
  std::size_t records = 0;   ///< completed lines only
  std::string error;         ///< failure lines only
};

/// Loads a journal: header plus every intact shard line. A torn final line
/// (from a kill mid-write) is ignored; any other malformed content throws.
class JournalReader {
public:
  explicit JournalReader(const std::string& path);

  [[nodiscard]] const JournalHeader& header() const { return header_; }
  /// Completed shards by index. Duplicate lines: the last one wins.
  [[nodiscard]] const std::map<std::uint64_t, std::vector<core::RowRecord>>& shards() const {
    return shards_;
  }
  /// Every intact shard line (completions and failures), in file order.
  [[nodiscard]] const std::vector<ShardOutcome>& outcomes() const { return outcomes_; }

  /// Throws common::ConfigError naming the mismatched field if the journal
  /// was written for a different sweep than `expected`.
  void require_matches(const JournalHeader& expected) const;

  /// Byte length of the journal's intact prefix (the header plus every
  /// parsed shard line). A resume truncates the file to this length before
  /// appending, which erases any torn trailing line.
  [[nodiscard]] std::uint64_t intact_bytes() const { return intact_bytes_; }

private:
  JournalHeader header_;
  std::map<std::uint64_t, std::vector<core::RowRecord>> shards_;
  std::vector<ShardOutcome> outcomes_;
  std::uint64_t intact_bytes_ = 0;
};

/// Renders a human summary of a journal (shards done/failed/retried,
/// wall-ms-per-shard percentiles when the journal carries annotations) —
/// the standalone `rh_report --journal` view of a possibly killed campaign.
void render_journal_summary(std::ostream& os, const std::string& path,
                            const JournalReader& reader);

}  // namespace rh::campaign
