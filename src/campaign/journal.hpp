// The campaign results journal: a JSONL checkpoint file that makes a killed
// campaign resumable.
//
// Layout (one JSON document per line; since v2 every line carries a CRC-32
// frame — a trailing '\t' + 8 hex digits over the JSON payload):
//
//   {"kind":"rh-campaign-journal","version":2,"seed":...,
//    "config_hash":"<16 hex digits>","shards":N}<TAB>crc    <- header, fsync'd
//   {"shard":7,"attempts":1,"wall_ms":812.4,
//    "records":[{...RowRecord...}, ...]}<TAB>crc            <- per shard, in
//   {"shard":3,"records":[...]}<TAB>crc                        completion order
//   {"shard":9,"attempts":2,"failed":"<error text>"}<TAB>crc <- isolated failure
//
// "attempts"/"wall_ms" are optional cost annotations (rh_report --journal
// renders them); journals written before they existed parse fine, and a
// failure line never counts as a completed shard — resume re-runs it.
//
// v1 journals (bare payloads, no CRC frame) stay fully readable: the reader
// classifies each line independently, so even a mixed file (v1 prefix, v2
// appends after a resume) parses.
//
// The header binds the journal to one exact sweep: the seed, the FNV-1a
// hash of the full campaign configuration (device geometry, scramble,
// temperature, characterizer parameters, and the entire shard plan), and
// the shard count. Resume refuses a journal whose header does not match the
// sweep being run, so stale checkpoints can never silently corrupt results.
//
// Durability and damage tolerance: the header is fsync'd before any work
// starts and every shard line is flushed+fsync'd when appended — a kill can
// lose at most the shard in flight. The reader classifies each line as
// ok / torn-tail / corrupt instead of throwing: a torn trailing line is
// ignored (the expected residue of a kill mid-append), and a corrupt
// mid-file line (bit rot, a torn line fused with its successor) is
// quarantined — recorded, skipped, and its shard re-run on resume — rather
// than aborting the whole journal. Only a damaged header is fatal: nothing
// below it can be trusted to belong to this sweep.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/characterizer.hpp"
#include "resilience/storage.hpp"

namespace rh::campaign {

class JournalReader;

/// FNV-1a 64-bit hash (used for the journal's config hash).
[[nodiscard]] std::uint64_t fnv1a(std::string_view text);

/// Identity of one sweep, stored in (and checked against) the header line.
struct JournalHeader {
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  std::uint64_t shard_count = 0;
};

/// Appends completed shards to the journal. Open/truncate failures throw
/// common::ConfigError; write/sync failures throw common::StorageError
/// (callers degrade — drop the journal, fail the job — rather than abort).
class JournalWriter {
public:
  /// Creates (truncating any previous file) and writes an fsync'd header.
  /// `injector` may be null and must outlive the writer.
  JournalWriter(const std::string& path, const JournalHeader& header,
                resilience::StorageFaultInjector* injector = nullptr);
  /// Reopens an existing journal for appending (resume), first truncating
  /// it to `keep_bytes` — JournalReader::intact_bytes() — so a torn
  /// trailing line from a kill never ends up *preceding* appended lines.
  /// The caller is responsible for having validated the header.
  JournalWriter(const std::string& path, std::uint64_t keep_bytes,
                resilience::StorageFaultInjector* injector = nullptr);
  /// Resume from a fully classified read: tail-only damage truncates (as
  /// above); mid-file corrupt lines are appended verbatim to
  /// `path`.quarantine and the journal is compacted — header plus every
  /// intact line rewritten atomically — before reopening for append. The
  /// quarantined shards are absent from reader.shards(), so resume re-runs
  /// exactly them.
  JournalWriter(const std::string& path, const JournalReader& reader,
                resilience::StorageFaultInjector* injector = nullptr);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Writes one completed shard as a single line, flushed and fsync'd.
  /// `wall_ms` < 0 omits the cost annotations (attempts/wall_ms), keeping
  /// the pre-annotation byte format.
  void append_shard(std::uint64_t shard, const std::vector<core::RowRecord>& records,
                    double wall_ms = -1.0, unsigned attempts = 1);

  /// Journals an isolated shard failure (after the retry budget drained).
  /// Failure lines are report fodder only: resume still re-runs the shard.
  void append_failure(std::uint64_t shard, unsigned attempts, const std::string& what);

private:
  void write_line(const std::string& payload);

  std::unique_ptr<resilience::DurableFile> file_;
  std::string path_;
};

/// One journal line's cost/outcome annotations, in file order — what
/// rh_report --journal summarizes without re-running anything.
struct ShardOutcome {
  std::uint64_t shard = 0;
  bool ok = true;
  unsigned attempts = 1;
  double wall_ms = -1.0;     ///< < 0 when the line carried no annotation
  std::size_t records = 0;   ///< completed lines only
  std::string error;         ///< failure lines only
};

/// One damaged (non-tail) journal line: quarantine fodder.
struct CorruptLine {
  std::size_t line_no = 0;  ///< 1-based position in the file
  std::string reason;       ///< "CRC mismatch", parse error text, ...
  std::string raw;          ///< the line exactly as it sits on disk
};

/// Loads a journal: header plus every intact shard line, with per-line
/// damage classification. A torn final line (kill mid-write) is ignored; a
/// corrupt mid-file line is recorded in corrupt_lines() and skipped — its
/// shard simply stays pending. Only an unreadable header throws
/// (common::ConfigError): a journal whose identity line is damaged cannot
/// be trusted at all.
class JournalReader {
public:
  explicit JournalReader(const std::string& path);

  [[nodiscard]] const JournalHeader& header() const { return header_; }
  /// Completed shards by index. Duplicate lines: the last one wins.
  [[nodiscard]] const std::map<std::uint64_t, std::vector<core::RowRecord>>& shards() const {
    return shards_;
  }
  /// Every intact shard line (completions and failures), in file order.
  [[nodiscard]] const std::vector<ShardOutcome>& outcomes() const { return outcomes_; }

  /// Mid-file lines that failed their CRC or did not parse, in file order.
  [[nodiscard]] const std::vector<CorruptLine>& corrupt_lines() const { return corrupt_lines_; }
  /// True when the final line was torn (ignored, not corruption).
  [[nodiscard]] bool torn_tail() const { return torn_tail_; }

  /// The header line exactly as it sits on disk (for compaction).
  [[nodiscard]] const std::string& raw_header() const { return raw_header_; }
  /// Every intact record line exactly as on disk, in file order (for
  /// compaction; excludes the header, corrupt lines, and the torn tail).
  [[nodiscard]] const std::vector<std::string>& raw_lines() const { return raw_lines_; }

  /// Throws common::ConfigError naming the mismatched field if the journal
  /// was written for a different sweep than `expected`.
  void require_matches(const JournalHeader& expected) const;

  /// Byte length of the journal's undamaged prefix: the header plus every
  /// intact line up to the first corrupt line or the torn tail. When
  /// corrupt_lines() is empty a resume truncates the file to this length
  /// before appending; otherwise the quarantining JournalWriter ctor
  /// compacts instead.
  [[nodiscard]] std::uint64_t intact_bytes() const { return intact_bytes_; }

private:
  JournalHeader header_;
  std::map<std::uint64_t, std::vector<core::RowRecord>> shards_;
  std::vector<ShardOutcome> outcomes_;
  std::vector<CorruptLine> corrupt_lines_;
  std::vector<std::string> raw_lines_;
  std::string raw_header_;
  bool torn_tail_ = false;
  std::uint64_t intact_bytes_ = 0;
};

/// Renders a human summary of a journal (shards done/failed/retried,
/// wall-ms-per-shard percentiles when the journal carries annotations,
/// damage report when lines were quarantined) — the standalone
/// `rh_report --journal` view of a possibly killed campaign.
void render_journal_summary(std::ostream& os, const std::string& path,
                            const JournalReader& reader);

}  // namespace rh::campaign
