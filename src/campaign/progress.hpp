// Campaign progress/ETA reporting, fed from the telemetry metrics registry.
//
// The campaign engine owns a MetricsRegistry with campaign.* counters
// (shards_total/done/skipped/failed/retried); the meter reads those live
// counters — it keeps no shard arithmetic of its own — and renders one
// status line. On a TTY the line redraws in place (\r); otherwise it prints
// a fresh line each time completion crosses a 10% decile, so CI logs stay
// readable.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "telemetry/metrics.hpp"

namespace rh::campaign {

/// ETA text for `remaining` items after `executed` finished in `elapsed_s`
/// seconds: "eta 12.3s" / "eta 2m05s", or "eta --" when there is no rate
/// signal yet — nothing executed, (near-)zero elapsed (instant shards), or
/// a non-finite projection. Shared by the progress meter and rh_tail.
[[nodiscard]] std::string eta_text(double elapsed_s, std::uint64_t executed,
                                   std::uint64_t remaining);

/// "12.3s" / "2m05s" duration rendering shared by the progress line,
/// eta_text, and rh_tail.
[[nodiscard]] std::string format_seconds(double s);

class ProgressMeter {
public:
  /// `os` may be nullptr to disable output entirely. The counters must
  /// outlive the meter (they live in the campaign's registry).
  ProgressMeter(std::ostream* os, const telemetry::Counter& total,
                const telemetry::Counter& done, const telemetry::Counter& skipped,
                const telemetry::Counter& failed, unsigned jobs);

  /// Re-renders the status line. Call after every shard completion (the
  /// campaign already holds its completion lock, so reads are consistent).
  void update();
  /// Prints the final summary line (always newline-terminated).
  void finish();

private:
  [[nodiscard]] double elapsed_s() const;

  std::ostream* os_;
  const telemetry::Counter* total_;
  const telemetry::Counter* done_;
  const telemetry::Counter* skipped_;
  const telemetry::Counter* failed_;
  unsigned jobs_;
  bool tty_ = false;
  std::size_t last_decile_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rh::campaign
