#include "campaign/progress.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <ostream>
#include <sstream>

#if __has_include(<unistd.h>)
#include <unistd.h>
#define RH_CAMPAIGN_HAS_ISATTY 1
#endif

namespace rh::campaign {

std::string format_seconds(double s) {
  char buf[32];
  if (s >= 90.0) {
    std::snprintf(buf, sizeof buf, "%dm%02ds", static_cast<int>(s) / 60,
                  static_cast<int>(s) % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fs", s);
  }
  return buf;
}

std::string eta_text(double elapsed_s, std::uint64_t executed, std::uint64_t remaining) {
  // No executed shards (everything so far was resumed from the journal) or
  // an instant/zero clock: a projection would be 0/0 or inf — render the
  // explicit "no signal yet" form instead of a garbage number.
  if (executed == 0 || !(elapsed_s > 1e-9)) return "eta --";
  const double eta = elapsed_s / static_cast<double>(executed) * static_cast<double>(remaining);
  if (!std::isfinite(eta)) return "eta --";
  return "eta " + format_seconds(eta);
}

ProgressMeter::ProgressMeter(std::ostream* os, const telemetry::Counter& total,
                             const telemetry::Counter& done, const telemetry::Counter& skipped,
                             const telemetry::Counter& failed, unsigned jobs)
    : os_(os),
      total_(&total),
      done_(&done),
      skipped_(&skipped),
      failed_(&failed),
      jobs_(jobs),
      start_(std::chrono::steady_clock::now()) {
#ifdef RH_CAMPAIGN_HAS_ISATTY
  if (os_ == &std::cerr || os_ == &std::clog) tty_ = ::isatty(2) != 0;
#endif
}

double ProgressMeter::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

void ProgressMeter::update() {
  if (os_ == nullptr) return;
  const std::uint64_t total = total_->value();
  const std::uint64_t done = done_->value();
  const std::uint64_t skipped = skipped_->value();
  const std::uint64_t failed = failed_->value();
  if (total == 0) return;

  const std::uint64_t finished = done + skipped + failed;
  const auto decile = static_cast<std::size_t>(finished * 10 / total);
  if (!tty_ && decile == last_decile_ && finished != total) return;
  last_decile_ = decile;

  // ETA from the shards *this* run actually executed; journal-skipped
  // shards completed in a previous run and carry no timing signal.
  const double elapsed = elapsed_s();
  const std::uint64_t executed = done + failed;
  const std::uint64_t remaining = total - finished;
  std::ostringstream line;
  line << "[campaign] " << finished << "/" << total << " shards ("
       << (finished * 100 / total) << "%)";
  if (skipped > 0) line << " | " << skipped << " resumed from checkpoint";
  if (failed > 0) line << " | " << failed << " FAILED";
  line << " | " << jobs_ << (jobs_ == 1 ? " worker" : " workers") << " | elapsed "
       << format_seconds(elapsed);
  if (remaining > 0) line << " | " << eta_text(elapsed, executed, remaining);
  if (tty_) {
    *os_ << '\r' << line.str() << "\x1b[K" << std::flush;
  } else {
    *os_ << line.str() << '\n';
  }
}

void ProgressMeter::finish() {
  if (os_ == nullptr) return;
  const std::uint64_t total = total_->value();
  const std::uint64_t done = done_->value();
  const std::uint64_t skipped = skipped_->value();
  const std::uint64_t failed = failed_->value();
  if (tty_) *os_ << '\r' << "\x1b[K";
  *os_ << "[campaign] finished: " << done << " shards run, " << skipped
       << " resumed from checkpoint, " << failed << " failed (of " << total << ") in "
       << format_seconds(elapsed_s()) << '\n';
}

}  // namespace rh::campaign
