#include "campaign/journal.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "campaign/record_io.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "profiling/report.hpp"
#include "telemetry/metrics.hpp"

#if __has_include(<unistd.h>)
#include <unistd.h>
#define RH_CAMPAIGN_HAS_FSYNC 1
#endif

namespace rh::campaign {

namespace {

constexpr std::string_view kJournalKind = "rh-campaign-journal";
constexpr std::uint64_t kJournalVersion = 1;

/// The header hash travels as fixed-width hex so the header line is
/// byte-stable across platforms.
std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string header_line(const JournalHeader& header) {
  return std::string("{\"kind\":\"") + std::string(kJournalKind) +
         "\",\"version\":" + std::to_string(kJournalVersion) +
         ",\"seed\":" + std::to_string(header.seed) + ",\"config_hash\":\"" +
         hash_hex(header.config_hash) + "\",\"shards\":" + std::to_string(header.shard_count) +
         "}";
}

void sync_to_disk(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw common::ConfigError("cannot flush checkpoint journal: " + path);
  }
#ifdef RH_CAMPAIGN_HAS_FSYNC
  if (::fsync(fileno(file)) != 0) {
    throw common::ConfigError("cannot fsync checkpoint journal: " + path);
  }
#endif
}

}  // namespace

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

JournalWriter::JournalWriter(const std::string& path, const JournalHeader& header)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw common::ConfigError("cannot create checkpoint journal: " + path);
  }
  write_line(header_line(header));
}

JournalWriter::JournalWriter(const std::string& path, std::uint64_t keep_bytes)
    : path_(path) {
  // Drop the torn residue of a kill mid-append before writing anything new;
  // appending after it would turn an ignorable trailing tear into mid-file
  // corruption on the next read.
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (!ec && keep_bytes < size) {
    std::filesystem::resize_file(path, keep_bytes, ec);
  }
  if (ec) {
    throw common::ConfigError("cannot truncate checkpoint journal for resume: " + path);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    throw common::ConfigError("cannot reopen checkpoint journal: " + path);
  }
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::write_line(const std::string& line) {
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    throw common::ConfigError("cannot write checkpoint journal: " + path_);
  }
  sync_to_disk(file_, path_);
}

void JournalWriter::append_shard(std::uint64_t shard,
                                 const std::vector<core::RowRecord>& records, double wall_ms,
                                 unsigned attempts) {
  std::string line = "{\"shard\":" + std::to_string(shard);
  if (wall_ms >= 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", wall_ms);
    line += ",\"attempts\":" + std::to_string(attempts) + ",\"wall_ms\":" + buf;
  }
  line += ",\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) line += ',';
    append_row_record_json(line, records[i]);
  }
  line += "]}";
  write_line(line);
}

void JournalWriter::append_failure(std::uint64_t shard, unsigned attempts,
                                   const std::string& what) {
  write_line("{\"shard\":" + std::to_string(shard) + ",\"attempts\":" +
             std::to_string(attempts) + ",\"failed\":\"" + telemetry::json_escape(what) +
             "\"}");
}

JournalReader::JournalReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw common::ConfigError("cannot open checkpoint journal for resume: " + path);
  }

  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  std::string line;
  if (!std::getline(in, line)) {
    throw common::ConfigError("checkpoint journal is empty: " + path);
  }
  const JsonValue header = parse_json(line, path + " (header)");
  const JsonValue* kind = header.find("kind");
  if (kind == nullptr || kind->text != kJournalKind) {
    throw common::ConfigError("not a campaign journal: " + path);
  }
  if (header.at("version").as_u64() != kJournalVersion) {
    throw common::ConfigError("unsupported journal version in " + path);
  }
  header_.seed = header.at("seed").as_u64();
  header_.config_hash = std::strtoull(header.at("config_hash").text.c_str(), nullptr, 16);
  header_.shard_count = header.at("shards").as_u64();
  intact_bytes_ = line.size() + 1;

  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      intact_bytes_ += line.size() + 1;
      continue;
    }
    JsonValue entry;
    try {
      entry = parse_json(line, path + ":" + std::to_string(line_no));
    } catch (const common::ConfigError&) {
      // A torn trailing line is the expected residue of a kill mid-append;
      // anything malformed *before* the end means real corruption.
      if (in.peek() == EOF) break;
      throw;
    }
    ShardOutcome outcome;
    outcome.shard = entry.at("shard").as_u64();
    if (const JsonValue* attempts = entry.find("attempts"); attempts != nullptr) {
      outcome.attempts = static_cast<unsigned>(attempts->as_u64());
    }
    if (const JsonValue* wall = entry.find("wall_ms"); wall != nullptr) {
      outcome.wall_ms = wall->as_double();
    }
    if (const JsonValue* failed = entry.find("failed"); failed != nullptr) {
      // Failure annotation: report fodder only — the shard stays pending,
      // so a resume re-runs it.
      outcome.ok = false;
      outcome.error = failed->text;
    } else {
      std::vector<core::RowRecord> records;
      const JsonValue& array = entry.at("records");
      records.reserve(array.items.size());
      for (const JsonValue& r : array.items) records.push_back(parse_row_record(r));
      outcome.records = records.size();
      shards_[outcome.shard] = std::move(records);
    }
    outcomes_.push_back(std::move(outcome));
    intact_bytes_ += line.size() + 1;
  }
  intact_bytes_ = std::min(intact_bytes_, file_size);
}

void render_journal_summary(std::ostream& os, const std::string& path,
                            const JournalReader& reader) {
  const JournalHeader& h = reader.header();
  os << "=== checkpoint journal: " << path << " ===\n";
  os << "sweep: seed " << h.seed << ", config " << hash_hex(h.config_hash) << ", "
     << h.shard_count << " shards planned\n";

  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t retried = 0;
  std::size_t records = 0;
  std::vector<double> wall;
  for (const ShardOutcome& o : reader.outcomes()) {
    if (o.ok) {
      ++done;
      records += o.records;
      if (o.wall_ms >= 0.0) wall.push_back(o.wall_ms);
    } else {
      ++failed;
    }
    if (o.attempts > 1) ++retried;
  }
  // Duplicate completion lines can make `done` exceed the distinct count;
  // report both so a resumed journal reads honestly.
  os << "shards: " << reader.shards().size() << "/" << h.shard_count << " complete ("
     << done << " completion lines, " << failed << " failure lines, " << retried
     << " needed retries)  |  records: " << records << '\n';
  if (reader.shards().size() < h.shard_count) {
    os << "pending: " << h.shard_count - reader.shards().size()
       << " shards — rerun with --resume to finish the sweep\n";
  }

  if (!wall.empty()) {
    const profiling::LatencySummary lat = profiling::summarize_latencies(wall);
    common::Table latency({"timed shards", "min", "p50", "p90", "p99", "max", "mean",
                           "total s"});
    latency.add_row({std::to_string(lat.count), common::fmt_double(lat.min, 1),
                     common::fmt_double(lat.p50, 1), common::fmt_double(lat.p90, 1),
                     common::fmt_double(lat.p99, 1), common::fmt_double(lat.max, 1),
                     common::fmt_double(lat.mean, 1),
                     common::fmt_double(lat.total_ms * 1e-3, 1)});
    os << "\nwall ms per journaled shard:\n";
    latency.print(os);
  } else {
    os << "(no per-shard wall-ms annotations in this journal)\n";
  }

  for (const ShardOutcome& o : reader.outcomes()) {
    if (!o.ok) {
      os << "failed shard " << o.shard << " after " << o.attempts
         << " attempt" << (o.attempts == 1 ? "" : "s") << ": " << o.error << '\n';
    }
  }
}

void JournalReader::require_matches(const JournalHeader& expected) const {
  if (header_.seed != expected.seed) {
    throw common::ConfigError(
        "checkpoint journal was written for seed " + std::to_string(header_.seed) +
        ", not " + std::to_string(expected.seed) + "; refusing to resume");
  }
  if (header_.shard_count != expected.shard_count) {
    throw common::ConfigError("checkpoint journal covers " + std::to_string(header_.shard_count) +
                              " shards, not " + std::to_string(expected.shard_count) +
                              "; refusing to resume");
  }
  if (header_.config_hash != expected.config_hash) {
    throw common::ConfigError(
        "checkpoint journal config hash " + hash_hex(header_.config_hash) +
        " does not match this campaign's " + hash_hex(expected.config_hash) +
        " (different stride, patterns, geometry, or characterizer settings); "
        "refusing to resume");
  }
}

}  // namespace rh::campaign
