#include "campaign/journal.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "campaign/record_io.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "profiling/report.hpp"
#include "telemetry/metrics.hpp"

namespace rh::campaign {

namespace {

constexpr std::string_view kJournalKind = "rh-campaign-journal";
// v2 = CRC-framed lines. Readers accept v1 (bare payloads) forever.
constexpr std::uint64_t kJournalVersion = 2;

/// The header hash travels as fixed-width hex so the header line is
/// byte-stable across platforms.
std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

std::string header_line(const JournalHeader& header) {
  return std::string("{\"kind\":\"") + std::string(kJournalKind) +
         "\",\"version\":" + std::to_string(kJournalVersion) +
         ",\"seed\":" + std::to_string(header.seed) + ",\"config_hash\":\"" +
         hash_hex(header.config_hash) + "\",\"shards\":" + std::to_string(header.shard_count) +
         "}";
}

/// Drop the torn residue of a kill mid-append before writing anything new;
/// appending after it would turn an ignorable trailing tear into mid-file
/// corruption on the next read.
void truncate_for_resume(const std::string& path, std::uint64_t keep_bytes) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (!ec && keep_bytes < size) {
    std::filesystem::resize_file(path, keep_bytes, ec);
  }
  if (ec) {
    throw common::ConfigError("cannot truncate checkpoint journal for resume: " + path);
  }
}

}  // namespace

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

JournalWriter::JournalWriter(const std::string& path, const JournalHeader& header,
                             resilience::StorageFaultInjector* injector)
    : path_(path) {
  file_ = std::make_unique<resilience::DurableFile>(path, "checkpoint journal",
                                                    /*truncate=*/true, injector);
  write_line(header_line(header));
}

JournalWriter::JournalWriter(const std::string& path, std::uint64_t keep_bytes,
                             resilience::StorageFaultInjector* injector)
    : path_(path) {
  truncate_for_resume(path, keep_bytes);
  file_ = std::make_unique<resilience::DurableFile>(path, "checkpoint journal",
                                                    /*truncate=*/false, injector);
}

JournalWriter::JournalWriter(const std::string& path, const JournalReader& reader,
                             resilience::StorageFaultInjector* injector)
    : path_(path) {
  if (reader.corrupt_lines().empty()) {
    truncate_for_resume(path, reader.intact_bytes());
  } else {
    // Quarantine-and-compact: the damaged lines move verbatim to a sidecar
    // (nothing is ever silently discarded), then the journal is rewritten
    // atomically as header + every intact line. The quarantined shards are
    // absent from reader.shards(), so the resume planner re-runs exactly
    // them and the final results stay byte-identical.
    const std::string qpath = path + ".quarantine";
    std::ofstream quarantine(qpath, std::ios::app | std::ios::binary);
    if (!quarantine) {
      throw common::ConfigError("cannot open journal quarantine file: " + qpath);
    }
    for (const CorruptLine& line : reader.corrupt_lines()) {
      quarantine << line.raw << '\n';
    }
    quarantine.flush();
    if (!quarantine) {
      throw common::ConfigError("cannot write journal quarantine file: " + qpath);
    }
    std::string compacted = reader.raw_header() + '\n';
    for (const std::string& line : reader.raw_lines()) {
      compacted += line;
      compacted += '\n';
    }
    resilience::write_file_atomic(path, compacted, "checkpoint journal", injector);
  }
  file_ = std::make_unique<resilience::DurableFile>(path, "checkpoint journal",
                                                    /*truncate=*/false, injector);
}

JournalWriter::~JournalWriter() = default;

void JournalWriter::write_line(const std::string& payload) {
  file_->write_line(resilience::frame_line(payload));
}

void JournalWriter::append_shard(std::uint64_t shard,
                                 const std::vector<core::RowRecord>& records, double wall_ms,
                                 unsigned attempts) {
  std::string line = "{\"shard\":" + std::to_string(shard);
  if (wall_ms >= 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", wall_ms);
    line += ",\"attempts\":" + std::to_string(attempts) + ",\"wall_ms\":" + buf;
  }
  line += ",\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) line += ',';
    append_row_record_json(line, records[i]);
  }
  line += "]}";
  write_line(line);
}

void JournalWriter::append_failure(std::uint64_t shard, unsigned attempts,
                                   const std::string& what) {
  write_line("{\"shard\":" + std::to_string(shard) + ",\"attempts\":" +
             std::to_string(attempts) + ",\"failed\":\"" + telemetry::json_escape(what) +
             "\"}");
}

JournalReader::JournalReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw common::ConfigError("cannot open checkpoint journal for resume: " + path);
  }
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  // Split into lines, keeping track of whether the final one was
  // newline-terminated: a partial tail is the classic kill-mid-append
  // residue and may only ever be torn, never corrupt.
  std::vector<std::string> lines;
  bool final_newline = true;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(content.substr(start));
      final_newline = false;
      break;
    }
    lines.push_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines.empty()) {
    throw common::ConfigError("checkpoint journal is empty: " + path);
  }

  // The header is the trust anchor: damage here is fatal, because nothing
  // below it can be proven to belong to this sweep.
  std::string_view payload;
  if (resilience::check_frame(lines[0], payload) == resilience::FrameCheck::kMismatch) {
    throw common::ConfigError("corrupt checkpoint journal header (CRC mismatch): " + path);
  }
  const JsonValue header = parse_json(std::string(payload), path + " (header)");
  const JsonValue* kind = header.find("kind");
  if (kind == nullptr || kind->text != kJournalKind) {
    throw common::ConfigError("not a campaign journal: " + path);
  }
  const std::uint64_t version = header.at("version").as_u64();
  if (version != 1 && version != kJournalVersion) {
    throw common::ConfigError("unsupported journal version in " + path);
  }
  header_.seed = header.at("seed").as_u64();
  header_.config_hash = std::strtoull(header.at("config_hash").text.c_str(), nullptr, 16);
  header_.shard_count = header.at("shards").as_u64();
  raw_header_ = lines[0];
  intact_bytes_ = lines[0].size() + 1;

  bool damaged = false;  // a corrupt line ends the undamaged prefix
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t line_no = i + 1;
    const bool tail = i + 1 == lines.size();
    if (line.empty()) {
      if (!damaged) intact_bytes_ += 1;
      continue;
    }

    std::string reason;
    ShardOutcome outcome;
    std::vector<core::RowRecord> records;
    bool completed = false;
    bool ok = false;
    std::string_view body;
    if (resilience::check_frame(line, body) == resilience::FrameCheck::kMismatch) {
      reason = "CRC mismatch";
    } else {
      try {
        const JsonValue entry = parse_json(std::string(body), path + ":" + std::to_string(line_no));
        outcome.shard = entry.at("shard").as_u64();
        if (const JsonValue* attempts = entry.find("attempts"); attempts != nullptr) {
          outcome.attempts = static_cast<unsigned>(attempts->as_u64());
        }
        if (const JsonValue* wall = entry.find("wall_ms"); wall != nullptr) {
          outcome.wall_ms = wall->as_double();
        }
        if (const JsonValue* failed = entry.find("failed"); failed != nullptr) {
          // Failure annotation: report fodder only — the shard stays
          // pending, so a resume re-runs it.
          outcome.ok = false;
          outcome.error = failed->text;
        } else {
          const JsonValue& array = entry.at("records");
          records.reserve(array.items.size());
          for (const JsonValue& r : array.items) records.push_back(parse_row_record(r));
          outcome.records = records.size();
          completed = true;
        }
        ok = true;
      } catch (const common::ConfigError& e) {
        reason = e.what();
      }
    }

    if (!ok) {
      if (tail) {
        // The expected residue of a kill mid-append: ignorable.
        torn_tail_ = true;
        break;
      }
      corrupt_lines_.push_back({line_no, reason, line});
      damaged = true;
      continue;
    }
    if (completed) shards_[outcome.shard] = std::move(records);
    outcomes_.push_back(std::move(outcome));
    raw_lines_.push_back(line);
    if (!damaged) intact_bytes_ += line.size() + 1;
  }
  // An intact partial tail has no newline on disk; never claim more bytes
  // than the file holds.
  (void)final_newline;
  intact_bytes_ = std::min<std::uint64_t>(intact_bytes_, content.size());
}

void render_journal_summary(std::ostream& os, const std::string& path,
                            const JournalReader& reader) {
  const JournalHeader& h = reader.header();
  os << "=== checkpoint journal: " << path << " ===\n";
  os << "sweep: seed " << h.seed << ", config " << hash_hex(h.config_hash) << ", "
     << h.shard_count << " shards planned\n";

  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t retried = 0;
  std::size_t records = 0;
  std::vector<double> wall;
  for (const ShardOutcome& o : reader.outcomes()) {
    if (o.ok) {
      ++done;
      records += o.records;
      if (o.wall_ms >= 0.0) wall.push_back(o.wall_ms);
    } else {
      ++failed;
    }
    if (o.attempts > 1) ++retried;
  }
  // Duplicate completion lines can make `done` exceed the distinct count;
  // report both so a resumed journal reads honestly.
  os << "shards: " << reader.shards().size() << "/" << h.shard_count << " complete ("
     << done << " completion lines, " << failed << " failure lines, " << retried
     << " needed retries)  |  records: " << records << '\n';
  if (reader.shards().size() < h.shard_count) {
    os << "pending: " << h.shard_count - reader.shards().size()
       << " shards — rerun with --resume to finish the sweep\n";
  }
  if (!reader.corrupt_lines().empty()) {
    os << "damage: " << reader.corrupt_lines().size()
       << " corrupt line(s) — quarantined and re-run on the next resume\n";
    for (const CorruptLine& line : reader.corrupt_lines()) {
      os << "  line " << line.line_no << ": " << line.reason << '\n';
    }
  }

  if (!wall.empty()) {
    const profiling::LatencySummary lat = profiling::summarize_latencies(wall);
    common::Table latency({"timed shards", "min", "p50", "p90", "p99", "max", "mean",
                           "total s"});
    latency.add_row({std::to_string(lat.count), common::fmt_double(lat.min, 1),
                     common::fmt_double(lat.p50, 1), common::fmt_double(lat.p90, 1),
                     common::fmt_double(lat.p99, 1), common::fmt_double(lat.max, 1),
                     common::fmt_double(lat.mean, 1),
                     common::fmt_double(lat.total_ms * 1e-3, 1)});
    os << "\nwall ms per journaled shard:\n";
    latency.print(os);
  } else {
    os << "(no per-shard wall-ms annotations in this journal)\n";
  }

  for (const ShardOutcome& o : reader.outcomes()) {
    if (!o.ok) {
      os << "failed shard " << o.shard << " after " << o.attempts
         << " attempt" << (o.attempts == 1 ? "" : "s") << ": " << o.error << '\n';
    }
  }
}

void JournalReader::require_matches(const JournalHeader& expected) const {
  if (header_.seed != expected.seed) {
    throw common::ConfigError(
        "checkpoint journal was written for seed " + std::to_string(header_.seed) +
        ", not " + std::to_string(expected.seed) + "; refusing to resume");
  }
  if (header_.shard_count != expected.shard_count) {
    throw common::ConfigError("checkpoint journal covers " + std::to_string(header_.shard_count) +
                              " shards, not " + std::to_string(expected.shard_count) +
                              "; refusing to resume");
  }
  if (header_.config_hash != expected.config_hash) {
    throw common::ConfigError(
        "checkpoint journal config hash " + hash_hex(header_.config_hash) +
        " does not match this campaign's " + hash_hex(expected.config_hash) +
        " (different stride, patterns, geometry, or characterizer settings); "
        "refusing to resume");
  }
}

}  // namespace rh::campaign
