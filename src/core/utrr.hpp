// The U-TRR methodology (Hassan et al., MICRO'21), as applied by the paper
// to uncover the HBM2 chip's undisclosed TRR mechanism (§5).
//
// Key idea: use retention failures as a side channel for "was this row
// refreshed?". One iteration (paper's six steps, with the practical
// adaptation that step 2 rewrites the row so earlier decay cannot persist):
//
//   1. (once) profile row R's retention time T
//   2. write row R (refreshes it) and wait T/2
//   3. activate + precharge row R+1 (the would-be aggressor the TRR
//      sampler should capture)
//   4. issue one periodic REF (the TRR trigger opportunity)
//   5. wait another T/2
//   6. read row R: *no* bitflips mean something refreshed R in between —
//      i.e. the in-DRAM TRR fired on this iteration's REF
//
// The experiment runs N iterations and infers the TRR period from the gaps
// between refreshed iterations. The paper observes R refreshed once every
// 17 iterations.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bender/host.hpp"
#include "core/retention_profiler.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"

namespace rh::core {

struct UtrrConfig {
  std::uint32_t iterations = 100;
  /// Wait = safety * profiled retention time (so T/2 alone cannot flip, but
  /// the full wait reliably does).
  double safety = 1.5;
};

struct UtrrResult {
  double retention_ms = 0.0;  ///< profiled retention time of row R
  double wait_ms = 0.0;       ///< the per-iteration total wait used
  /// 1-based iterations whose read showed no bitflips (TRR refreshed R).
  std::vector<std::uint32_t> refreshed_iterations;
  /// Most common gap between refreshed iterations; nullopt if fewer than
  /// two firings were observed.
  std::optional<std::uint32_t> inferred_period;

  [[nodiscard]] bool trr_detected() const { return !refreshed_iterations.empty(); }
};

class UtrrExperiment {
public:
  UtrrExperiment(bender::BenderHost& host, const RowMap& map, UtrrConfig config = {});

  /// Runs the experiment on physical row R. R must have a usable retention
  /// time (throws common::Error otherwise) and should sit away from the
  /// REF-pointer sweep range (the caller picks R; see the bench).
  UtrrResult run(const Site& site, std::uint32_t physical_row);

private:
  bender::BenderHost* host_;
  const RowMap* map_;
  UtrrConfig config_;
};

}  // namespace rh::core
