#include "core/thermometer.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "core/retention_profiler.hpp"

namespace rh::core {

DramThermometer::DramThermometer(bender::BenderHost& host, const RowMap& map, const Site& site,
                                 ThermometerConfig config)
    : host_(&host), map_(&map), site_(site), config_(config) {
  RH_EXPECTS(config_.rows > 0 && config_.stride > 0);
  RH_EXPECTS(config_.wait_ms > 0.0);
}

std::uint64_t DramThermometer::measure_flips() {
  RetentionProfiler profiler(*host_, *map_);
  std::uint64_t flips = 0;
  for (std::uint32_t i = 0; i < config_.rows; ++i) {
    flips += profiler.flips_after(site_, config_.first_row + i * config_.stride, config_.wait_ms);
  }
  return flips;
}

void DramThermometer::calibrate(const std::vector<double>& temperatures_c) {
  RH_EXPECTS(temperatures_c.size() >= 2);
  points_.clear();
  for (const double temp : temperatures_c) {
    host_->set_chip_temperature(temp);
    points_.push_back({temp, measure_flips()});
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].temperature_c <= points_[i - 1].temperature_c ||
        points_[i].flips <= points_[i - 1].flips) {
      throw common::ConfigError(
          "thermometer calibration curve is not strictly monotone; use a larger row "
          "population or a longer wait");
    }
  }
}

double DramThermometer::estimate() {
  if (points_.size() < 2) throw common::ConfigError("thermometer is not calibrated");
  const std::uint64_t flips = measure_flips();

  // Clamp outside the calibrated range.
  if (flips <= points_.front().flips) return points_.front().temperature_c;
  if (flips >= points_.back().flips) return points_.back().temperature_c;

  // Log-linear interpolation between the bracketing calibration points.
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (flips > points_[i].flips) continue;
    const auto& lo = points_[i - 1];
    const auto& hi = points_[i];
    const double log_lo = std::log(static_cast<double>(lo.flips) + 1.0);
    const double log_hi = std::log(static_cast<double>(hi.flips) + 1.0);
    const double log_x = std::log(static_cast<double>(flips) + 1.0);
    const double frac = (log_x - log_lo) / (log_hi - log_lo);
    return lo.temperature_c + frac * (hi.temperature_c - lo.temperature_c);
  }
  return points_.back().temperature_c;
}

}  // namespace rh::core
