// The paper's Table 1 data patterns.
//
// Each test initializes the victim row V, its two aggressors V±1, and the
// surrounding rows V±[2:8] with a fixed byte each:
//
//   pattern      victim  aggressors  V±[2:8]
//   Rowstripe0    0x00      0xFF       0x00
//   Rowstripe1    0xFF      0x00       0xFF
//   Checkered0    0x55      0xAA       0x55
//   Checkered1    0xAA      0x55       0xAA
//
// The paper's WCDP ("worst-case data pattern") is chosen *per row*: the
// pattern with the smallest HC_first, ties broken by the largest BER at
// 256 K hammers (§3.1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "hbm/geometry.hpp"

namespace rh::core {

enum class DataPattern : std::uint8_t {
  kRowstripe0,
  kRowstripe1,
  kCheckered0,
  kCheckered1,
};

inline constexpr std::array<DataPattern, 4> kAllPatterns{
    DataPattern::kRowstripe0, DataPattern::kRowstripe1, DataPattern::kCheckered0,
    DataPattern::kCheckered1};

[[nodiscard]] constexpr std::string_view to_string(DataPattern p) {
  switch (p) {
    case DataPattern::kRowstripe0: return "Rowstripe0";
    case DataPattern::kRowstripe1: return "Rowstripe1";
    case DataPattern::kCheckered0: return "Checkered0";
    case DataPattern::kCheckered1: return "Checkered1";
  }
  return "?";
}

[[nodiscard]] constexpr std::uint8_t victim_byte(DataPattern p) {
  switch (p) {
    case DataPattern::kRowstripe0: return 0x00;
    case DataPattern::kRowstripe1: return 0xFF;
    case DataPattern::kCheckered0: return 0x55;
    case DataPattern::kCheckered1: return 0xAA;
  }
  return 0;
}

[[nodiscard]] constexpr std::uint8_t aggressor_byte(DataPattern p) {
  switch (p) {
    case DataPattern::kRowstripe0: return 0xFF;
    case DataPattern::kRowstripe1: return 0x00;
    case DataPattern::kCheckered0: return 0xAA;
    case DataPattern::kCheckered1: return 0x55;
  }
  return 0;
}

/// Rows V±[2:8] carry the victim byte (Table 1).
[[nodiscard]] constexpr std::uint8_t surround_byte(DataPattern p) { return victim_byte(p); }

/// Builds a full row image filled with `value`.
[[nodiscard]] std::vector<std::uint8_t> make_row_image(const hbm::Geometry& geometry,
                                                       std::uint8_t value);

}  // namespace rh::core
