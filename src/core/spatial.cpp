#include "core/spatial.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/shard.hpp"

namespace rh::core {

std::vector<RegionSpec> paper_regions(const hbm::Geometry& geometry, std::uint32_t region_rows) {
  RH_EXPECTS(region_rows > 0 && region_rows * 2 <= geometry.rows_per_bank);
  const std::uint32_t middle_first = (geometry.rows_per_bank - region_rows) / 2;
  return {
      {"first", 0, region_rows},
      {"middle", middle_first, region_rows},
      {"last", geometry.rows_per_bank - region_rows, region_rows},
  };
}

SpatialSurvey::SpatialSurvey(bender::BenderHost& host, SurveyConfig config)
    : host_(&host), config_(std::move(config)) {
  RH_EXPECTS(!config_.channels.empty());
  RH_EXPECTS(config_.row_stride >= 1);
}

RowRecord characterize_row_ber_only(Characterizer& chr, const Site& site, std::uint32_t row) {
  RowRecord rec;
  rec.site = site;
  rec.physical_row = row;
  for (std::size_t i = 0; i < kAllPatterns.size(); ++i) {
    rec.ber[i] = chr.measure_ber(site, row, kAllPatterns[i]);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < kAllPatterns.size(); ++i) {
    if (rec.ber[i].bit_errors > rec.ber[best].bit_errors) best = i;
  }
  rec.wcdp = kAllPatterns[best];
  return rec;
}

std::vector<RowRecord> SpatialSurvey::survey_rows() {
  // The serial path iterates the same shard plan the campaign runner
  // distributes across workers, so both produce identical records in
  // identical order (src/campaign depends on this equivalence).
  const auto shards = plan_survey_shards(config_, host_->device().geometry());
  const RowMap map = RowMap::from_device(host_->device());
  Characterizer chr(*host_, map, config_.characterizer);

  std::vector<RowRecord> records;
  for (const auto& shard : shards) {
    auto shard_records = run_shard(chr, shard);
    records.insert(records.end(), std::make_move_iterator(shard_records.begin()),
                   std::make_move_iterator(shard_records.end()));
  }
  return records;
}

std::vector<SpatialSurvey::BankPoint> SpatialSurvey::survey_banks(std::uint32_t rows_per_region,
                                                                  std::uint32_t stride) {
  const auto& geometry = host_->device().geometry();
  const auto regions = paper_regions(geometry, rows_per_region);
  const RowMap map = RowMap::from_device(host_->device());

  std::vector<BankPoint> points;
  for (const std::uint32_t channel : config_.channels) {
    for (std::uint32_t pc = 0; pc < geometry.pseudo_channels_per_channel; ++pc) {
      for (std::uint32_t bank = 0; bank < geometry.banks_per_pseudo_channel; ++bank) {
        const Site site{channel, pc, bank};
        Characterizer chr(*host_, map, config_.characterizer);
        std::vector<double> bers;
        for (const auto& region : regions) {
          for (std::uint32_t row = region.first_row; row < region.first_row + region.rows;
               row += stride) {
            const RowRecord rec = characterize_row_ber_only(chr, site, row);
            bers.push_back(rec.wcdp_ber().ber());
          }
        }
        BankPoint point;
        point.site = site;
        point.rows_tested = bers.size();
        point.mean_ber = common::mean(bers);
        point.cv = common::coefficient_of_variation(bers);
        points.push_back(point);
      }
    }
  }
  return points;
}

std::string pattern_label(std::size_t pattern_index) {
  if (pattern_index < kAllPatterns.size()) {
    return std::string(to_string(kAllPatterns[pattern_index]));
  }
  return "WCDP";
}

namespace {

template <typename Extract>
std::vector<ChannelPatternStats> aggregate(const std::vector<RowRecord>& records,
                                           Extract&& extract) {
  std::vector<std::uint32_t> channels;
  for (const auto& rec : records) {
    if (std::find(channels.begin(), channels.end(), rec.site.channel) == channels.end()) {
      channels.push_back(rec.site.channel);
    }
  }
  std::sort(channels.begin(), channels.end());

  std::vector<ChannelPatternStats> out;
  for (const std::uint32_t channel : channels) {
    for (std::size_t pattern = 0; pattern <= kWcdpPatternIndex; ++pattern) {
      std::vector<double> values;
      for (const auto& rec : records) {
        if (rec.site.channel != channel) continue;
        extract(rec, pattern, values);
      }
      ChannelPatternStats s;
      s.channel = channel;
      s.pattern = pattern;
      s.stats = common::box_stats(values);
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

std::vector<ChannelPatternStats> aggregate_ber(const std::vector<RowRecord>& records) {
  return aggregate(records,
                   [](const RowRecord& rec, std::size_t pattern, std::vector<double>& values) {
                     if (pattern < kAllPatterns.size()) {
                       values.push_back(rec.ber[pattern].ber());
                     } else {
                       values.push_back(rec.wcdp_ber().ber());
                     }
                   });
}

std::vector<ChannelPatternStats> aggregate_hc_first(const std::vector<RowRecord>& records) {
  return aggregate(records,
                   [](const RowRecord& rec, std::size_t pattern, std::vector<double>& values) {
                     if (pattern < kAllPatterns.size()) {
                       if (rec.hc_first[pattern]) {
                         values.push_back(static_cast<double>(*rec.hc_first[pattern]));
                       }
                     } else if (const auto hc = rec.hc_first[static_cast<std::size_t>(rec.wcdp)]) {
                       values.push_back(static_cast<double>(*hc));
                     }
                   });
}

}  // namespace rh::core
