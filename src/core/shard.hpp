// Deterministic work units for experiment campaigns.
//
// A ShardSpec names a contiguous slice of a characterization sweep — one
// site, a physical-row range sampled at a stride, and a measurement mode.
// Shards are the unit of scheduling, journaling, and retry for the campaign
// runner (src/campaign): because the fault model is a pure function of
// (seed, coordinates) and every per-row test re-initializes its own
// neighbourhood, running disjoint shards on independently constructed
// devices with the same seed is bitwise-equivalent to the serial sweep.
//
// SpatialSurvey::survey_rows() iterates the exact same plan serially, so the
// serial and campaign paths share one source of truth for iteration order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/characterizer.hpp"
#include "core/site.hpp"
#include "hbm/geometry.hpp"

namespace rh::core {

struct SurveyConfig;  // core/spatial.hpp

/// What a shard measures per sampled row.
enum class ShardMode : std::uint8_t {
  /// Full paper methodology: BER + HC_first per pattern, WCDP selection.
  kFullRow = 0,
  /// BER for the four Table 1 patterns, WCDP by largest BER (fast proxy).
  kBerOnly = 1,
  /// One measure_ber call for `pattern` at `hammers` (onset-curve sweeps).
  kSinglePattern = 2,
};

/// One deterministic unit of campaign work: rows [row_begin, row_end) of
/// `site`, sampled every `row_stride`, measured per `mode`. `index` is the
/// shard's position in the plan; merged results are ordered by it.
struct ShardSpec {
  std::uint64_t index = 0;
  Site site;
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;  ///< exclusive
  std::uint32_t row_stride = 1;
  ShardMode mode = ShardMode::kFullRow;
  /// kSinglePattern only: pattern index into kAllPatterns.
  std::uint8_t pattern = 0;
  /// kSinglePattern only: hammer count (0 = the characterizer's ber_hammers).
  std::uint64_t hammers = 0;

  /// Rows this shard samples.
  [[nodiscard]] std::size_t sampled_rows() const {
    if (row_end <= row_begin) return 0;
    return (row_end - row_begin + row_stride - 1) / row_stride;
  }
};

/// Executes one shard on a characterizer. Every row is measured exactly the
/// way the serial survey measures it; the output order is row order.
[[nodiscard]] std::vector<RowRecord> run_shard(Characterizer& characterizer,
                                               const ShardSpec& shard);

/// Decomposes a SpatialSurvey row sweep into shards, in the serial survey's
/// iteration order (channel, then region, then row). Regions are split so no
/// shard samples more than `max_rows_per_shard` rows, which bounds the
/// checkpoint/retry granularity. Concatenating run_shard results in index
/// order reproduces SpatialSurvey::survey_rows() exactly.
[[nodiscard]] std::vector<ShardSpec> plan_survey_shards(const SurveyConfig& config,
                                                        const hbm::Geometry& geometry,
                                                        std::uint32_t max_rows_per_shard = 64);

}  // namespace rh::core
