// Retention-time profiling (the first step of the U-TRR methodology, §5).
//
// A row's retention time T is the smallest unrefreshed interval after which
// the row exhibits retention bitflips. The profiler writes the row, waits,
// reads it back, and searches T by doubling + bisection — entirely through
// the host-visible interface, as on real hardware.
#pragma once

#include <cstdint>
#include <optional>

#include "bender/host.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"

namespace rh::core {

struct RetentionProfile {
  /// Smallest tested wait that produced bitflips, in milliseconds.
  double retention_ms = 0.0;
  /// Bitflips observed at that wait.
  std::uint64_t flips = 0;
};

class RetentionProfiler {
public:
  RetentionProfiler(bender::BenderHost& host, const RowMap& map);

  /// Bitflips in `physical_row` after writing it and waiting `wait_ms`.
  std::uint64_t flips_after(const Site& site, std::uint32_t physical_row, double wait_ms);

  /// Profiles the row's retention time: doubling search from `start_ms`
  /// up to `max_ms`, then bisection to ~6% relative resolution.
  /// nullopt if the row shows no flips even at max_ms.
  std::optional<RetentionProfile> profile(const Site& site, std::uint32_t physical_row,
                                          double start_ms = 16.0, double max_ms = 16'000.0);

private:
  bender::BenderHost* host_;
  const RowMap* map_;
};

}  // namespace rh::core
