#include "core/row_map.hpp"

#include <algorithm>
#include <string>

#include "bender/program.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "core/data_patterns.hpp"

namespace rh::core {

RowMap::RowMap(std::uint32_t rows) : log_to_phys_(rows), phys_to_log_(rows) {
  for (std::uint32_t r = 0; r < rows; ++r) {
    log_to_phys_[r] = r;
    phys_to_log_[r] = r;
  }
}

RowMap RowMap::from_device(const hbm::Device& device) {
  RowMap map(device.geometry().rows_per_bank);
  for (std::uint32_t logical = 0; logical < map.rows(); ++logical) {
    map.set(logical, device.scrambler().logical_to_physical(logical));
  }
  return map;
}

std::uint32_t RowMap::logical_to_physical(std::uint32_t logical) const {
  RH_EXPECTS(logical < log_to_phys_.size());
  return log_to_phys_[logical];
}

std::uint32_t RowMap::physical_to_logical(std::uint32_t physical) const {
  RH_EXPECTS(physical < phys_to_log_.size());
  return phys_to_log_[physical];
}

void RowMap::set(std::uint32_t logical, std::uint32_t physical) {
  RH_EXPECTS(logical < log_to_phys_.size());
  RH_EXPECTS(physical < phys_to_log_.size());
  log_to_phys_[logical] = physical;
  phys_to_log_[physical] = logical;
}

namespace {

std::size_t count_mismatch(std::span<const std::uint8_t> data, std::uint8_t expected) {
  std::size_t flips = 0;
  for (std::uint8_t b : data) {
    flips += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(b ^ expected)));
  }
  return flips;
}

}  // namespace

AdjacencyProbe probe_adjacency(bender::BenderHost& host, const Site& site,
                               std::uint32_t aggressor_logical, std::uint32_t window,
                               std::uint64_t hammers) {
  const auto& geometry = host.device().geometry();
  RH_EXPECTS(aggressor_logical < geometry.rows_per_bank);
  const std::uint32_t lo =
      aggressor_logical > window ? aggressor_logical - window : 0;
  const std::uint32_t hi =
      std::min(geometry.rows_per_bank - 1, aggressor_logical + window);

  bender::ProgramBuilder b(geometry, host.device().timings());
  b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);  // raw flips, per §3.1
  // Victims all-zero (anti cells charged + opposite aggressor = strongest
  // coupling); the aggressor all-one.
  b.program().set_wide_register(0, make_row_image(geometry, 0x00));
  b.program().set_wide_register(1, make_row_image(geometry, 0xFF));
  for (std::uint32_t r = lo; r <= hi; ++r) {
    b.init_row(static_cast<std::uint8_t>(site.bank), r, r == aggressor_logical ? 1 : 0);
  }
  b.ldi(0, aggressor_logical);
  b.hammer_single(static_cast<std::uint8_t>(site.bank), 0, static_cast<std::int64_t>(hammers));
  std::vector<std::uint32_t> read_order;
  for (std::uint32_t r = lo; r <= hi; ++r) {
    if (r == aggressor_logical) continue;
    b.read_row(static_cast<std::uint8_t>(site.bank), r);
    read_order.push_back(r);
  }

  const auto result = host.run(b.take(), site.channel, site.pseudo_channel);

  AdjacencyProbe probe;
  probe.aggressor_logical = aggressor_logical;
  const std::size_t row_bytes = geometry.row_bytes();
  for (std::size_t i = 0; i < read_order.size(); ++i) {
    const std::span<const std::uint8_t> row(result.readback.data() + i * row_bytes, row_bytes);
    if (count_mismatch(row, 0x00) > 0) probe.victims_logical.push_back(read_order[i]);
  }
  return probe;
}

RowMap reverse_engineer_window(bender::BenderHost& host, const Site& site, std::uint32_t first,
                               std::uint32_t count) {
  const auto& geometry = host.device().geometry();
  RH_EXPECTS(first + count <= geometry.rows_per_bank);

  // Collect probes for a handful of aggressors across the window.
  std::vector<AdjacencyProbe> probes;
  const std::uint32_t step = std::max(1u, count / 8);
  for (std::uint32_t r = first; r < first + count; r += step) {
    probes.push_back(probe_adjacency(host, site, r));
  }

  // Match against the known decoder families (identity / pair-swap /
  // xor-fold), the same way real reverse-engineering matches observed
  // adjacency against vendor mapping families from prior work.
  const std::array<hbm::ScrambleKind, 3> candidates{
      hbm::ScrambleKind::kIdentity, hbm::ScrambleKind::kPairSwap, hbm::ScrambleKind::kXorFold};
  const auto& layout = host.device().subarray_layout();

  for (const auto kind : candidates) {
    const hbm::RowScrambler scrambler(kind, geometry.rows_per_bank);
    bool consistent = true;
    for (const auto& probe : probes) {
      // Predicted victims: logical rows whose physical index is adjacent to
      // the aggressor's physical index within the same subarray.
      const std::uint32_t p = scrambler.logical_to_physical(probe.aggressor_logical);
      std::vector<std::uint32_t> predicted;
      for (const std::int64_t d : {-1, +1}) {
        const std::int64_t v = static_cast<std::int64_t>(p) + d;
        if (v < 0 || v >= static_cast<std::int64_t>(geometry.rows_per_bank)) continue;
        if (layout.crosses_boundary(p, static_cast<std::uint32_t>(v))) continue;
        predicted.push_back(scrambler.physical_to_logical(static_cast<std::uint32_t>(v)));
      }
      std::sort(predicted.begin(), predicted.end());
      std::vector<std::uint32_t> observed = probe.victims_logical;
      std::sort(observed.begin(), observed.end());
      // Every observed victim must be predicted. (A predicted victim can be
      // missing from the observation if that row happens to be RH-strong,
      // so we require observed ⊆ predicted and at least one observation.)
      if (observed.empty() ||
          !std::includes(predicted.begin(), predicted.end(), observed.begin(), observed.end())) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      RowMap map(geometry.rows_per_bank);
      for (std::uint32_t logical = 0; logical < map.rows(); ++logical) {
        map.set(logical, scrambler.logical_to_physical(logical));
      }
      return map;
    }
  }
  throw common::Error("reverse engineering failed: no known mapping family matches the probes");
}

RowMap reverse_engineer_exact(bender::BenderHost& host, const Site& site, std::uint32_t first,
                              std::uint32_t count) {
  const auto& geometry = host.device().geometry();
  RH_EXPECTS(count >= 2);
  RH_EXPECTS(first + count <= geometry.rows_per_bank);

  // Probe every row in the window; victims inside the window become path
  // edges, victims outside anchor the orientation.
  std::vector<std::vector<std::uint32_t>> internal(count);
  std::vector<std::vector<std::uint32_t>> external(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto probe = probe_adjacency(host, site, first + i);
    for (const std::uint32_t victim : probe.victims_logical) {
      if (victim >= first && victim < first + count) {
        internal[i].push_back(victim - first);
      } else {
        external[i].push_back(victim);
      }
    }
  }
  // Symmetrize: physical adjacency is mutual even if one direction's probe
  // missed (an RH-strong victim row).
  for (std::uint32_t i = 0; i < count; ++i) {
    for (const std::uint32_t j : internal[i]) {
      if (std::find(internal[j].begin(), internal[j].end(), i) == internal[j].end()) {
        internal[j].push_back(i);
      }
    }
  }

  // The window's physical layout is a path: exactly two degree-1 endpoints.
  std::vector<std::uint32_t> endpoints;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (internal[i].size() == 1) endpoints.push_back(i);
    if (internal[i].size() > 2 || internal[i].empty()) {
      throw common::Error("adjacency probes do not form a path (row " +
                          std::to_string(first + i) + " has degree " +
                          std::to_string(internal[i].size()) + ")");
    }
  }
  if (endpoints.size() != 2) {
    throw common::Error("adjacency graph has " + std::to_string(endpoints.size()) +
                        " endpoints; expected a single path");
  }

  // Orientation: the endpoint whose external victim is logical row first-1
  // sits next to the preceding window, i.e. at physical index `first`.
  // (With a group-local decoder, the row physically adjacent across the
  // window boundary is the logically adjacent one.)
  std::uint32_t start = endpoints[0];
  const auto anchored_low = [&](std::uint32_t e) {
    return first > 0 && std::find(external[e].begin(), external[e].end(), first - 1) !=
                            external[e].end();
  };
  const auto anchored_high = [&](std::uint32_t e) {
    return std::find(external[e].begin(), external[e].end(), first + count) !=
           external[e].end();
  };
  if (anchored_low(endpoints[1]) || anchored_high(endpoints[0])) {
    start = endpoints[1];
  } else if (!anchored_low(endpoints[0]) && !anchored_high(endpoints[1])) {
    throw common::Error("cannot orient the recovered path: no external anchor edges");
  }

  // Walk the path, assigning physical indices in order.
  RowMap map(geometry.rows_per_bank);
  std::uint32_t prev = count;  // sentinel: no previous node
  std::uint32_t node = start;
  for (std::uint32_t p = 0; p < count; ++p) {
    map.set(first + node, first + p);
    std::uint32_t next = count;
    for (const std::uint32_t n : internal[node]) {
      if (n != prev) next = n;
    }
    prev = node;
    if (next == count && p + 1 < count) {
      throw common::Error("path walk ended early at physical offset " + std::to_string(p));
    }
    node = next;
  }
  return map;
}

std::vector<std::uint32_t> find_subarray_boundaries(bender::BenderHost& host, const Site& site,
                                                    const RowMap& map,
                                                    std::uint32_t first_physical,
                                                    std::uint32_t count) {
  const auto& geometry = host.device().geometry();
  RH_EXPECTS(first_physical + count <= geometry.rows_per_bank);
  std::vector<std::uint32_t> starts;

  // One directed probe: hammer physical `agg` single-sided, report whether
  // each existing physical neighbour collected flips.
  const auto probe = [&](std::uint32_t agg) {
    bender::ProgramBuilder b(geometry, host.device().timings());
    b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);  // raw flips, per §3.1
    b.program().set_wide_register(0, make_row_image(geometry, 0x00));
    b.program().set_wide_register(1, make_row_image(geometry, 0xFF));
    const auto bank = static_cast<std::uint8_t>(site.bank);
    std::vector<std::uint32_t> victims;
    for (const std::int64_t d : {-1, +1}) {
      const std::int64_t v = static_cast<std::int64_t>(agg) + d;
      if (v < 0 || v >= static_cast<std::int64_t>(geometry.rows_per_bank)) continue;
      victims.push_back(static_cast<std::uint32_t>(v));
    }
    for (const std::uint32_t v : victims) {
      b.init_row(bank, map.physical_to_logical(v), 0);
    }
    b.init_row(bank, map.physical_to_logical(agg), 1);
    b.ldi(0, map.physical_to_logical(agg));
    b.hammer_single(bank, 0, 480'000);
    for (const std::uint32_t v : victims) {
      b.read_row(bank, map.physical_to_logical(v));
    }
    const auto result = host.run(b.take(), site.channel, site.pseudo_channel);
    const std::size_t row_bytes = geometry.row_bytes();
    struct Flips {
      bool above = false;  // physical agg-1
      bool below = false;  // physical agg+1
    } flips;
    for (std::size_t i = 0; i < victims.size(); ++i) {
      const std::span<const std::uint8_t> row(result.readback.data() + i * row_bytes, row_bytes);
      const bool flipped = count_mismatch(row, 0x00) > 0;
      if (victims[i] + 1 == agg) flips.above = flipped;
      if (victims[i] == agg + 1) flips.below = flipped;
    }
    return flips;
  };

  for (std::uint32_t p = std::max(first_physical, 1u); p < first_physical + count; ++p) {
    // Boundary candidate p: the sense-amp stripe between p-1 and p blocks
    // disturbance in *both* directions, and both rows must demonstrably
    // flip their same-subarray neighbour (otherwise an RH-strong victim row
    // would masquerade as a boundary).
    const auto from_p = probe(p);
    if (from_p.above || !from_p.below) continue;
    const auto from_prev = probe(p - 1);
    if (from_prev.below) continue;                 // p-1 still disturbs p: same subarray
    if (p >= 2 && !from_prev.above) continue;      // p-1 can't flip anyone: inconclusive
    starts.push_back(p);
  }
  return starts;
}

}  // namespace rh::core
