#include "core/attack.hpp"

#include <bit>

#include "bender/program.hpp"
#include "common/assert.hpp"
#include "core/data_patterns.hpp"

namespace rh::core {

AttackResult AttackRunner::double_sided(const Site& site, std::uint32_t victim_physical,
                                        const AttackConfig& config) {
  return run(site, victim_physical, config, /*with_decoy=*/false);
}

AttackResult AttackRunner::decoy_evasion(const Site& site, std::uint32_t victim_physical,
                                         const AttackConfig& config) {
  return run(site, victim_physical, config, /*with_decoy=*/true);
}

ManySidedResult AttackRunner::many_sided(const Site& site, std::uint32_t first_physical,
                                         std::uint32_t victim_count,
                                         const AttackConfig& config) {
  const auto& geometry = host_->device().geometry();
  const auto& timings = host_->device().timings();
  RH_EXPECTS(victim_count >= 1);
  const std::uint32_t span = 2 * victim_count + 1;  // A V A V ... A
  RH_EXPECTS(first_physical + span <= geometry.rows_per_bank);
  const auto bank = static_cast<std::uint8_t>(site.bank);

  bender::ProgramBuilder b(geometry, timings);
  b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  b.program().set_wide_register(0, make_row_image(geometry, 0x00));
  b.program().set_wide_register(1, make_row_image(geometry, 0xFF));

  std::vector<std::uint32_t> aggressors;
  std::vector<std::uint32_t> victims;
  for (std::uint32_t off = 0; off < span; ++off) {
    const std::uint32_t p = first_physical + off;
    const bool is_aggressor = (off % 2 == 0);
    (is_aggressor ? aggressors : victims).push_back(p);
    b.init_row(bank, map_->physical_to_logical(p), is_aggressor ? 1 : 0);
  }

  // Split the double-sided activation budget (2 x hammers) over the
  // aggressor set and the REF chunks.
  const std::uint64_t chunks = config.refs == 0 ? 1 : config.refs;
  const std::uint64_t acts_per_agg_chunk =
      std::max<std::uint64_t>(1, 2 * config.hammers / (chunks * aggressors.size()));
  for (std::uint64_t c = 0; c < chunks; ++c) {
    for (const std::uint32_t agg : aggressors) {
      b.ldi(0, map_->physical_to_logical(agg));
      b.hammer_single(bank, 0, static_cast<std::int64_t>(acts_per_agg_chunk));
    }
    if (config.refs > 0) {
      b.ref();
      b.sleep(static_cast<std::int64_t>(timings.tRFC));
    }
  }
  for (const std::uint32_t v : victims) {
    b.read_row(bank, map_->physical_to_logical(v));
  }

  const auto result = host_->run(b.take(), site.channel, site.pseudo_channel);

  ManySidedResult out;
  out.dram_time_ms = result.elapsed_ms();
  const std::size_t row_bytes = geometry.row_bytes();
  for (std::size_t v = 0; v < victims.size(); ++v) {
    std::uint64_t flips = 0;
    for (std::size_t i = 0; i < row_bytes; ++i) {
      flips += static_cast<std::uint64_t>(
          std::popcount(static_cast<unsigned>(result.readback[v * row_bytes + i])));
    }
    out.per_victim_flips.push_back(flips);
    out.total_victim_flips += flips;
  }
  return out;
}

AttackResult AttackRunner::run(const Site& site, std::uint32_t victim_physical,
                               const AttackConfig& config, bool with_decoy) {
  const auto& geometry = host_->device().geometry();
  const auto& timings = host_->device().timings();
  RH_EXPECTS(victim_physical >= 1 && victim_physical + 1 < geometry.rows_per_bank);
  RH_EXPECTS(victim_physical + config.decoy_distance < geometry.rows_per_bank);
  const auto bank = static_cast<std::uint8_t>(site.bank);

  bender::ProgramBuilder b(geometry, timings);
  b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  b.program().set_wide_register(0, make_row_image(geometry, 0x00));
  b.program().set_wide_register(1, make_row_image(geometry, 0xFF));

  // Victim + aggressors; the decoy keeps its power-on content (an attacker
  // does not care what the decoy row holds).
  b.init_row(bank, map_->physical_to_logical(victim_physical), 0);
  b.init_row(bank, map_->physical_to_logical(victim_physical - 1), 1);
  b.init_row(bank, map_->physical_to_logical(victim_physical + 1), 1);

  b.ldi(0, map_->physical_to_logical(victim_physical - 1));
  b.ldi(1, map_->physical_to_logical(victim_physical + 1));
  const std::uint32_t decoy_logical =
      map_->physical_to_logical(victim_physical + config.decoy_distance);

  const std::uint64_t chunks = config.refs == 0 ? 1 : config.refs;
  const std::uint64_t chunk = config.hammers / chunks;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    b.hammer(bank, 0, 1, static_cast<std::int64_t>(chunk));
    if (config.refs > 0) {
      if (with_decoy) {
        // Poison the sampler: the last activation before the REF is the
        // decoy, so a firing TRR refreshes the decoy's neighbours instead
        // of ours.
        b.touch_row(bank, decoy_logical);
      }
      b.ref();
      b.sleep(static_cast<std::int64_t>(timings.tRFC));
    }
  }
  b.read_row(bank, map_->physical_to_logical(victim_physical));

  const auto result = host_->run(b.take(), site.channel, site.pseudo_channel);

  AttackResult out;
  out.dram_time_ms = result.elapsed_ms();
  for (const std::uint8_t byte : result.readback) {
    out.victim_flips += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(byte)));
  }
  return out;
}

}  // namespace rh::core
