// DRAM-as-thermometer: estimating chip temperature from retention errors.
//
// Related work the paper cites ([123], Kwon et al., Electronics'23)
// estimates HBM2 channel temperature from the tail distribution of
// retention errors. The physics: retention time halves per ~+10 degC, so
// at a fixed unrefreshed wait the retention bitflip count of a known row
// population is a strictly monotone function of temperature — measure the
// count, invert the curve, and DRAM becomes its own temperature sensor.
//
// Calibration drives the thermal rig to a set of known temperatures and
// records the flip counts; estimation measures once and interpolates
// (linearly in log-count, since the count grows ~exponentially in
// temperature over the tail region).
#pragma once

#include <cstdint>
#include <vector>

#include "bender/host.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"

namespace rh::core {

struct ThermometerConfig {
  /// Rows used as the sensing population.
  std::uint32_t first_row = 4096;
  std::uint32_t rows = 12;
  std::uint32_t stride = 7;
  /// Unrefreshed wait per measurement, milliseconds. Long enough that the
  /// population shows hundreds of flips at the calibration temperatures.
  double wait_ms = 3'000.0;
};

struct CalibrationPoint {
  double temperature_c = 0.0;
  std::uint64_t flips = 0;
};

class DramThermometer {
public:
  DramThermometer(bender::BenderHost& host, const RowMap& map, const Site& site,
                  ThermometerConfig config = {});

  /// Measures the sensing population's retention flips at the chip's
  /// current temperature.
  [[nodiscard]] std::uint64_t measure_flips();

  /// Drives the rig to each temperature and records a calibration point.
  /// Throws ConfigError if the resulting curve is not strictly monotone
  /// (population too small / waits too short to separate the points).
  void calibrate(const std::vector<double>& temperatures_c);

  /// Estimates the current chip temperature from one measurement against
  /// the calibration curve (log-linear interpolation, clamped to the
  /// calibrated range). Throws ConfigError if not calibrated.
  [[nodiscard]] double estimate();

  [[nodiscard]] const std::vector<CalibrationPoint>& calibration() const { return points_; }

private:
  bender::BenderHost* host_;
  const RowMap* map_;
  Site site_;
  ThermometerConfig config_;
  std::vector<CalibrationPoint> points_;
};

}  // namespace rh::core
