// The paper's per-row measurement methodology as a library (§3.1):
//
//   * double-sided RowHammer with the Table 1 data patterns,
//   * BER at a fixed hammer count (256 K hammers = 512 K activations),
//   * HC_first search up to 256 K hammers,
//   * per-row worst-case data pattern (WCDP) selection,
//   * methodology guard: every test program must finish within 27 ms so
//     retention failures cannot contaminate the results, and periodic
//     refresh is never issued (which also disables on-die TRR).
//
// All rows are *physical* at this layer; the Characterizer owns a RowMap
// and emits Bender programs in logical space.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "bender/host.hpp"
#include "core/data_patterns.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"

namespace rh::core {

struct CharacterizerConfig {
  /// Hammers (aggressor-pair activations) for BER tests; paper: 256 K.
  std::uint64_t ber_hammers = 262'144;
  /// HC_first search ceiling; paper: up to 256 K hammers.
  std::uint64_t max_hammers = 262'144;
  /// HC_first bisection tolerance for WCDP selection (coarser = faster).
  std::uint64_t wcdp_tolerance = 2'048;
  /// Rows on each side of the victim initialized with the surround byte
  /// (Table 1 initializes V±[2:8]).
  std::uint32_t surround_rows = 8;
  /// Enforce the paper's 27 ms retention-interference bound per program.
  bool enforce_retention_bound = true;
  /// Aggressor on-time in cycles for RowPress ablations (0 = minimal tRAS).
  std::uint64_t aggressor_on_time = 0;
};

struct BerResult {
  std::uint64_t bit_errors = 0;
  std::uint64_t bits_tested = 0;
  std::uint64_t ones_to_zeros = 0;  ///< victim bit 1 read as 0
  std::uint64_t zeros_to_ones = 0;  ///< victim bit 0 read as 1
  double elapsed_ms = 0.0;

  [[nodiscard]] double ber() const {
    return bits_tested == 0 ? 0.0
                            : static_cast<double>(bit_errors) / static_cast<double>(bits_tested);
  }
};

/// Everything measured about one victim row.
struct RowRecord {
  Site site;
  std::uint32_t physical_row = 0;
  std::array<BerResult, kAllPatterns.size()> ber{};
  /// HC_first per pattern; nullopt = no flip up to max_hammers.
  std::array<std::optional<std::uint64_t>, kAllPatterns.size()> hc_first{};
  DataPattern wcdp = DataPattern::kRowstripe0;

  [[nodiscard]] const BerResult& wcdp_ber() const {
    return ber[static_cast<std::size_t>(wcdp)];
  }
  [[nodiscard]] std::optional<std::uint64_t> min_hc_first() const;
};

class Characterizer {
public:
  Characterizer(bender::BenderHost& host, RowMap map, CharacterizerConfig config = {});

  /// BER of `victim_physical` under `pattern` after `hammers` double-sided
  /// hammers (config.ber_hammers when 0).
  BerResult measure_ber(const Site& site, std::uint32_t victim_physical, DataPattern pattern,
                        std::uint64_t hammers = 0);

  /// Smallest hammer count inducing at least one bitflip (bisection with
  /// `tolerance`; exact when tolerance == 1). nullopt if the row survives
  /// config.max_hammers.
  std::optional<std::uint64_t> measure_hc_first(const Site& site, std::uint32_t victim_physical,
                                                DataPattern pattern, std::uint64_t tolerance = 1);

  /// Full paper methodology for one row: BER for the four Table 1 patterns,
  /// HC_first for each (at wcdp_tolerance), and the WCDP choice (smallest
  /// HC_first, ties by largest BER).
  RowRecord characterize_row(const Site& site, std::uint32_t victim_physical);

  [[nodiscard]] const CharacterizerConfig& config() const { return config_; }
  [[nodiscard]] const RowMap& row_map() const { return map_; }
  [[nodiscard]] bender::BenderHost& host() { return *host_; }

private:
  /// Runs one init-hammer-read program and returns the victim readback
  /// compared against the pattern's victim byte.
  BerResult hammer_and_read(const Site& site, std::uint32_t victim_physical, DataPattern pattern,
                            std::uint64_t hammers);

  bender::BenderHost* host_;
  RowMap map_;
  CharacterizerConfig config_;
};

}  // namespace rh::core
