#include "core/shard.hpp"

#include "common/assert.hpp"
#include "core/spatial.hpp"

namespace rh::core {

std::vector<RowRecord> run_shard(Characterizer& characterizer, const ShardSpec& shard) {
  RH_EXPECTS(shard.row_stride >= 1);
  RH_EXPECTS(shard.mode != ShardMode::kSinglePattern || shard.pattern < kAllPatterns.size());
  std::vector<RowRecord> records;
  records.reserve(shard.sampled_rows());
  for (std::uint32_t row = shard.row_begin; row < shard.row_end; row += shard.row_stride) {
    switch (shard.mode) {
      case ShardMode::kFullRow:
        records.push_back(characterizer.characterize_row(shard.site, row));
        break;
      case ShardMode::kBerOnly:
        records.push_back(characterize_row_ber_only(characterizer, shard.site, row));
        break;
      case ShardMode::kSinglePattern: {
        RowRecord rec;
        rec.site = shard.site;
        rec.physical_row = row;
        const auto pattern = kAllPatterns[shard.pattern];
        rec.ber[shard.pattern] =
            characterizer.measure_ber(shard.site, row, pattern, shard.hammers);
        rec.wcdp = pattern;
        records.push_back(rec);
        break;
      }
    }
  }
  return records;
}

std::vector<ShardSpec> plan_survey_shards(const SurveyConfig& config,
                                          const hbm::Geometry& geometry,
                                          std::uint32_t max_rows_per_shard) {
  RH_EXPECTS(!config.channels.empty());
  RH_EXPECTS(config.row_stride >= 1);
  RH_EXPECTS(max_rows_per_shard >= 1);
  const auto regions = paper_regions(geometry, config.region_rows);
  const std::uint32_t span = max_rows_per_shard * config.row_stride;

  std::vector<ShardSpec> shards;
  for (const std::uint32_t channel : config.channels) {
    const Site site{channel, config.pseudo_channel, config.bank};
    for (const auto& region : regions) {
      const std::uint32_t region_end = region.first_row + region.rows;
      for (std::uint32_t begin = region.first_row; begin < region_end; begin += span) {
        ShardSpec shard;
        shard.index = shards.size();
        shard.site = site;
        shard.row_begin = begin;
        shard.row_end = std::min(region_end, begin + span);
        shard.row_stride = config.row_stride;
        shard.mode = config.wcdp_by_ber ? ShardMode::kBerOnly : ShardMode::kFullRow;
        shards.push_back(shard);
      }
    }
  }
  return shards;
}

}  // namespace rh::core
