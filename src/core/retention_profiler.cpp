#include "core/retention_profiler.hpp"

#include <bit>

#include "bender/program.hpp"
#include "common/assert.hpp"
#include "core/data_patterns.hpp"

namespace rh::core {

namespace {
/// Profiling pattern: all-zero stores charge in anti cells (the majority
/// orientation), giving plenty of decay-sensitive cells.
constexpr std::uint8_t kProfileByte = 0x00;
}  // namespace

RetentionProfiler::RetentionProfiler(bender::BenderHost& host, const RowMap& map)
    : host_(&host), map_(&map) {}

std::uint64_t RetentionProfiler::flips_after(const Site& site, std::uint32_t physical_row,
                                             double wait_ms) {
  const auto& geometry = host_->device().geometry();
  const auto bank = static_cast<std::uint8_t>(site.bank);
  const std::uint32_t logical = map_->physical_to_logical(physical_row);

  {
    bender::ProgramBuilder init(geometry, host_->device().timings());
    init.program().set_wide_register(0, make_row_image(geometry, kProfileByte));
    init.init_row(bank, logical, 0);
    host_->run(init.take(), site.channel, site.pseudo_channel);
  }

  host_->idle_ms(wait_ms);

  bender::ProgramBuilder read(geometry, host_->device().timings());
  // The retention side channel needs raw bitflips: keep on-die ECC off.
  read.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  read.read_row(bank, logical);
  const auto result = host_->run(read.take(), site.channel, site.pseudo_channel);

  std::uint64_t flips = 0;
  for (const std::uint8_t b : result.readback) {
    flips += static_cast<std::uint64_t>(
        std::popcount(static_cast<unsigned>(b ^ kProfileByte)));
  }
  return flips;
}

std::optional<RetentionProfile> RetentionProfiler::profile(const Site& site,
                                                           std::uint32_t physical_row,
                                                           double start_ms, double max_ms) {
  RH_EXPECTS(start_ms > 0 && max_ms >= start_ms);

  // Doubling search for the first failing wait.
  double hi = start_ms;
  std::uint64_t flips = flips_after(site, physical_row, hi);
  while (flips == 0) {
    if (hi >= max_ms) return std::nullopt;
    hi = std::min(hi * 2.0, max_ms);
    flips = flips_after(site, physical_row, hi);
  }

  // Bisect [hi/2, hi] down to ~6% relative width.
  double lo = hi / 2.0;
  while ((hi - lo) / hi > 0.0625) {
    const double mid = 0.5 * (lo + hi);
    const std::uint64_t mid_flips = flips_after(site, physical_row, mid);
    if (mid_flips > 0) {
      hi = mid;
      flips = mid_flips;
    } else {
      lo = mid;
    }
  }
  return RetentionProfile{hi, flips};
}

}  // namespace rh::core
