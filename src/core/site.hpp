// A test site: one bank within the stack, named the way the paper's
// methodology iterates (channel, pseudo channel, bank).
#pragma once

#include <string>

#include "hbm/address.hpp"

namespace rh::core {

struct Site {
  std::uint32_t channel = 0;
  std::uint32_t pseudo_channel = 0;
  std::uint32_t bank = 0;

  [[nodiscard]] hbm::BankAddress bank_address() const {
    return hbm::BankAddress{channel, pseudo_channel, bank};
  }

  [[nodiscard]] std::string to_string() const {
    return "ch" + std::to_string(channel) + ".pc" + std::to_string(pseudo_channel) + ".b" +
           std::to_string(bank);
  }
};

}  // namespace rh::core
