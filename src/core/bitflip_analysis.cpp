#include "core/bitflip_analysis.hpp"

#include <algorithm>

#include "bender/program.hpp"
#include "common/assert.hpp"

namespace rh::core {

BitflipAnalyzer::BitflipAnalyzer(bender::BenderHost& host, const RowMap& map)
    : host_(&host), map_(&map) {}

RowFlipProfile BitflipAnalyzer::profile_row(const Site& site, std::uint32_t physical_row,
                                            DataPattern pattern, std::uint64_t hammers) {
  const auto& geometry = host_->device().geometry();
  RH_EXPECTS(physical_row >= 1 && physical_row + 1 < geometry.rows_per_bank);
  const auto bank = static_cast<std::uint8_t>(site.bank);

  bender::ProgramBuilder b(geometry, host_->device().timings());
  b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  b.program().set_wide_register(0, make_row_image(geometry, victim_byte(pattern)));
  b.program().set_wide_register(1, make_row_image(geometry, aggressor_byte(pattern)));
  for (std::int64_t p = static_cast<std::int64_t>(physical_row) - 2;
       p <= static_cast<std::int64_t>(physical_row) + 2; ++p) {
    if (p < 0 || p >= static_cast<std::int64_t>(geometry.rows_per_bank)) continue;
    const bool agg = (p == physical_row - 1 || p == physical_row + 1);
    b.init_row(bank, map_->physical_to_logical(static_cast<std::uint32_t>(p)), agg ? 1 : 0);
  }
  b.ldi(0, map_->physical_to_logical(physical_row - 1));
  b.ldi(1, map_->physical_to_logical(physical_row + 1));
  b.hammer(bank, 0, 1, static_cast<std::int64_t>(hammers));
  b.read_row(bank, map_->physical_to_logical(physical_row));

  const auto result = host_->run(b.take(), site.channel, site.pseudo_channel);

  RowFlipProfile profile;
  profile.site = site;
  profile.physical_row = physical_row;
  profile.pattern = pattern;
  profile.flips_per_column.assign(geometry.columns_per_row, 0);

  const std::uint8_t expected = victim_byte(pattern);
  for (std::size_t i = 0; i < result.readback.size(); ++i) {
    const std::uint8_t got = result.readback[i];
    const auto diff = static_cast<std::uint8_t>(got ^ expected);
    if (diff == 0) continue;
    const auto column = static_cast<std::uint32_t>(i / geometry.bytes_per_column);
    for (std::uint32_t j = 0; j < 8; ++j) {
      if (((diff >> j) & 1) == 0) continue;
      const auto bit = static_cast<std::uint32_t>(i) * 8 + j;
      profile.flipped_bits.push_back(bit);
      ++profile.flips_per_column[column];
      if ((expected >> j) & 1) {
        ++profile.directions.one_to_zero;
      } else {
        ++profile.directions.zero_to_one;
      }
    }
  }
  return profile;
}

double BitflipAnalyzer::repeatability(const Site& site, std::uint32_t physical_row,
                                      DataPattern pattern, std::uint64_t hammers) {
  const auto first = profile_row(site, physical_row, pattern, hammers);
  const auto second = profile_row(site, physical_row, pattern, hammers);
  if (first.flipped_bits.empty()) return 1.0;
  std::size_t again = 0;
  for (const auto bit : first.flipped_bits) {
    if (std::binary_search(second.flipped_bits.begin(), second.flipped_bits.end(), bit)) ++again;
  }
  return static_cast<double>(again) / static_cast<double>(first.flipped_bits.size());
}

FlipDirectionStats BitflipAnalyzer::direction_census(const Site& site, std::uint32_t first_row,
                                                     std::uint32_t rows, std::uint32_t stride,
                                                     DataPattern pattern,
                                                     std::uint64_t hammers) {
  RH_EXPECTS(stride >= 1);
  FlipDirectionStats census;
  for (std::uint32_t i = 0; i < rows; ++i) {
    const auto profile = profile_row(site, first_row + i * stride, pattern, hammers);
    census.zero_to_one += profile.directions.zero_to_one;
    census.one_to_zero += profile.directions.one_to_zero;
  }
  return census;
}

}  // namespace rh::core
