#include "core/utrr.hpp"

#include <bit>
#include <map>

#include "bender/program.hpp"
#include "common/assert.hpp"
#include "common/error.hpp"
#include "core/data_patterns.hpp"

namespace rh::core {

namespace {
constexpr std::uint8_t kProfileByte = 0x00;
}

UtrrExperiment::UtrrExperiment(bender::BenderHost& host, const RowMap& map, UtrrConfig config)
    : host_(&host), map_(&map), config_(config) {
  RH_EXPECTS(config_.iterations > 0);
  RH_EXPECTS(config_.safety > 1.0);
}

UtrrResult UtrrExperiment::run(const Site& site, std::uint32_t physical_row) {
  const auto& geometry = host_->device().geometry();
  RH_EXPECTS(physical_row + 1 < geometry.rows_per_bank);
  const auto bank = static_cast<std::uint8_t>(site.bank);
  const std::uint32_t logical_r = map_->physical_to_logical(physical_row);
  const std::uint32_t logical_agg = map_->physical_to_logical(physical_row + 1);

  // Step 1 (once): profile R's retention time.
  RetentionProfiler profiler(*host_, *map_);
  const auto profile = profiler.profile(site, physical_row);
  if (!profile) {
    throw common::Error("row has no measurable retention failure; pick another row");
  }

  UtrrResult result;
  result.retention_ms = profile->retention_ms;
  result.wait_ms = profile->retention_ms * config_.safety;
  const double half_wait = result.wait_ms / 2.0;

  for (std::uint32_t iter = 1; iter <= config_.iterations; ++iter) {
    // Step 2: write (refresh) R, then wait T/2.
    {
      bender::ProgramBuilder b(geometry, host_->device().timings());
      b.program().set_wide_register(0, make_row_image(geometry, kProfileByte));
      b.init_row(bank, logical_r, 0);
      host_->run(b.take(), site.channel, site.pseudo_channel);
    }
    host_->idle_ms(half_wait);

    // Steps 3+4: activate/precharge the aggressor R+1, then one REF.
    {
      bender::ProgramBuilder b(geometry, host_->device().timings());
      b.touch_row(bank, logical_agg);
      b.ref();
      b.sleep(static_cast<std::int64_t>(host_->device().timings().tRFC));
      host_->run(b.take(), site.channel, site.pseudo_channel);
    }

    // Step 5: wait the second T/2.
    host_->idle_ms(half_wait);

    // Step 6: read R; no flips => TRR refreshed it mid-wait. ECC stays
    // disabled so single-bit retention failures are visible (§3.1).
    bender::ProgramBuilder b(geometry, host_->device().timings());
    b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
    b.read_row(bank, logical_r);
    const auto readback = host_->run(b.take(), site.channel, site.pseudo_channel);
    std::uint64_t flips = 0;
    for (const std::uint8_t byte : readback.readback) {
      flips += static_cast<std::uint64_t>(
          std::popcount(static_cast<unsigned>(byte ^ kProfileByte)));
    }
    if (flips == 0) result.refreshed_iterations.push_back(iter);
  }

  // Infer the period: the most common gap between consecutive firings.
  if (result.refreshed_iterations.size() >= 2) {
    std::map<std::uint32_t, std::uint32_t> gap_counts;
    for (std::size_t i = 1; i < result.refreshed_iterations.size(); ++i) {
      ++gap_counts[result.refreshed_iterations[i] - result.refreshed_iterations[i - 1]];
    }
    std::uint32_t best_gap = 0;
    std::uint32_t best_count = 0;
    for (const auto& [gap, count] : gap_counts) {
      if (count > best_count) {
        best_gap = gap;
        best_count = count;
      }
    }
    result.inferred_period = best_gap;
  }
  return result;
}

}  // namespace rh::core
