// Logical<->physical row mapping, reverse engineered from outside the chip.
//
// The paper (§3.1) finds physically adjacent rows by reverse engineering the
// memory-controller-visible (logical) to in-DRAM (physical) row address
// mapping, following prior work: hammer one row single-sided and observe
// *which logical rows* collect bitflips — those are its physical neighbours.
// The same probe also exposes subarray boundaries (footnote 3): an aggressor
// at the edge of a subarray induces flips in only one victim row.
//
// RowMap is the recovered bijection. reverse_engineer() performs the probe
// over a row window; from_device() shortcuts via the device's known
// scrambler for bulk characterization runs (the paper, too, reverse
// engineers once and reuses the mapping — tests prove both agree).
#pragma once

#include <cstdint>
#include <vector>

#include "bender/host.hpp"
#include "core/site.hpp"

namespace rh::core {

class RowMap {
public:
  /// Identity map for `rows` rows.
  explicit RowMap(std::uint32_t rows);

  /// Builds the map directly from the device's row decoder (bulk-run
  /// shortcut; equivalent to a full reverse-engineering pass).
  static RowMap from_device(const hbm::Device& device);

  [[nodiscard]] std::uint32_t logical_to_physical(std::uint32_t logical) const;
  [[nodiscard]] std::uint32_t physical_to_logical(std::uint32_t physical) const;
  [[nodiscard]] std::uint32_t rows() const {
    return static_cast<std::uint32_t>(log_to_phys_.size());
  }

  /// Overrides one association (used by the reverse-engineering pass).
  void set(std::uint32_t logical, std::uint32_t physical);

private:
  std::vector<std::uint32_t> log_to_phys_;
  std::vector<std::uint32_t> phys_to_log_;
};

/// Result of probing one aggressor row single-sided.
struct AdjacencyProbe {
  std::uint32_t aggressor_logical = 0;
  /// Logical rows (within the probe window) that collected flips.
  std::vector<std::uint32_t> victims_logical;
};

/// Hammers `aggressor_logical` single-sided and reports which logical rows
/// in [aggressor-window, aggressor+window] collect bitflips. All probed rows
/// are initialized to a striped pattern first.
AdjacencyProbe probe_adjacency(bender::BenderHost& host, const Site& site,
                               std::uint32_t aggressor_logical, std::uint32_t window = 4,
                               std::uint64_t hammers = 600'000);

/// Reverse engineers the logical->physical mapping over logical rows
/// [first, first+count) by adjacency probing, assuming (like the real
/// decoders we model) that the mapping permutes rows only within small
/// aligned groups. Rows whose probes are ambiguous fall back to identity.
/// The returned map covers the whole bank (identity outside the window).
RowMap reverse_engineer_window(bender::BenderHost& host, const Site& site, std::uint32_t first,
                               std::uint32_t count);

/// Family-free reverse engineering: recovers the mapping over the aligned
/// logical window [first, first+count) purely from the adjacency graph —
/// probe every row, find the degree-1 endpoints of the resulting physical
/// path, walk it, and orient it using the edges that leave the window
/// (the window-edge rows' external victims anchor which end is physically
/// first). No assumption about the decoder family; requires only that the
/// decoder permutes rows within the window (group-local scrambling) and
/// that the window lies inside one subarray. Throws common::Error when the
/// probes do not form an orientable path (e.g. window spans a subarray
/// boundary).
RowMap reverse_engineer_exact(bender::BenderHost& host, const Site& site, std::uint32_t first,
                              std::uint32_t count);

/// Detects subarray boundaries in physical row space over
/// [first_physical, first_physical+count): returns the physical rows that
/// *start* a subarray, found by single-sided probes that flip victims on
/// only one side (paper footnote 3). Requires a correct `map`.
std::vector<std::uint32_t> find_subarray_boundaries(bender::BenderHost& host, const Site& site,
                                                    const RowMap& map,
                                                    std::uint32_t first_physical,
                                                    std::uint32_t count);

}  // namespace rh::core
