// RowHammer attack patterns against a *live* system (refresh running).
//
// The paper's §4/§5 implications: knowing the mitigation (a single-entry
// sampler firing every 17th REF) and the vulnerability map (channel 7,
// mid-subarray rows, small HC_first) tells an attacker exactly how to beat
// the deployed defense. This module provides:
//
//   - plain double-sided hammering with REF interleaved at a realistic
//     cadence (what the in-DRAM TRR *does* stop), and
//   - a decoy-augmented pattern in the spirit of TRRespass/U-TRR custom
//     patterns: right before each REF, the attacker activates a harmless
//     decoy row so the single-entry sampler captures the decoy instead of
//     the true aggressors — the TRR then wastes its victim refresh on the
//     decoy's neighbourhood while the real victim keeps accumulating
//     disturbance.
//
// Both run as ordinary Bender programs; nothing reaches into the device.
#pragma once

#include <cstdint>
#include <vector>

#include "bender/host.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"

namespace rh::core {

struct AttackConfig {
  /// Total double-sided hammers against the victim.
  std::uint64_t hammers = 262'144;
  /// REF commands interleaved across the attack (0 = refresh disabled,
  /// i.e. the characterization setting).
  std::uint64_t refs = 512;
  /// Physical distance of the decoy row from the victim (far enough that
  /// the TRR's neighbourhood refresh around the decoy cannot touch the
  /// victim).
  std::uint32_t decoy_distance = 64;
};

struct AttackResult {
  std::uint64_t victim_flips = 0;
  double dram_time_ms = 0.0;
};

struct ManySidedResult {
  std::uint64_t total_victim_flips = 0;
  std::vector<std::uint64_t> per_victim_flips;
  double dram_time_ms = 0.0;
};

class AttackRunner {
public:
  AttackRunner(bender::BenderHost& host, const RowMap& map) : host_(&host), map_(&map) {}

  /// Double-sided hammering of `victim_physical` with REFs interleaved.
  /// The TRR sampler sees only the aggressor pair.
  AttackResult double_sided(const Site& site, std::uint32_t victim_physical,
                            const AttackConfig& config = {});

  /// The same attack, but each REF is preceded by one decoy activation that
  /// poisons the single-entry sampler.
  AttackResult decoy_evasion(const Site& site, std::uint32_t victim_physical,
                             const AttackConfig& config = {});

  /// TRRespass-style many-sided hammering: `victim_count` victims
  /// interleaved with `victim_count + 1` aggressors starting at physical
  /// row `first_physical` (layout A V A V ... A). The total activation
  /// budget (2 x hammers) is split across the aggressors. Against a
  /// single-entry sampler, only the last-activated aggressor's
  /// neighbourhood gets the victim refresh — the other victims accumulate
  /// disturbance even with refresh running.
  ManySidedResult many_sided(const Site& site, std::uint32_t first_physical,
                             std::uint32_t victim_count, const AttackConfig& config = {});

private:
  AttackResult run(const Site& site, std::uint32_t victim_physical, const AttackConfig& config,
                   bool with_decoy);

  bender::BenderHost* host_;
  const RowMap* map_;
};

}  // namespace rh::core
