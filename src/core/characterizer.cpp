#include "core/characterizer.hpp"

#include <algorithm>
#include <bit>
#include <string>

#include "common/assert.hpp"
#include "common/error.hpp"

namespace rh::core {

std::optional<std::uint64_t> RowRecord::min_hc_first() const {
  std::optional<std::uint64_t> best;
  for (const auto& hc : hc_first) {
    if (hc && (!best || *hc < *best)) best = *hc;
  }
  return best;
}

Characterizer::Characterizer(bender::BenderHost& host, RowMap map, CharacterizerConfig config)
    : host_(&host), map_(std::move(map)), config_(config) {
  RH_EXPECTS(config_.ber_hammers > 0);
  RH_EXPECTS(config_.max_hammers > 0);
  RH_EXPECTS(config_.wcdp_tolerance >= 1);
}

BerResult Characterizer::hammer_and_read(const Site& site, std::uint32_t victim_physical,
                                         DataPattern pattern, std::uint64_t hammers) {
  const auto& geometry = host_->device().geometry();
  const auto& timings = host_->device().timings();
  RH_EXPECTS(victim_physical < geometry.rows_per_bank);
  const auto bank = static_cast<std::uint8_t>(site.bank);

  bender::ProgramBuilder b(geometry, timings);
  // Methodology (§3.1): disable on-die ECC via the mode register so the
  // measurement sees raw bitflips. (Power-on default has ECC enabled.)
  b.mrs(hbm::ModeRegisters::kEccRegister, 0x0);
  b.program().set_wide_register(0, make_row_image(geometry, victim_byte(pattern)));
  b.program().set_wide_register(1, make_row_image(geometry, aggressor_byte(pattern)));

  // Initialize the neighbourhood: victim and V±[2:surround] with the victim
  // byte, aggressors V±1 with the aggressor byte (Table 1).
  const auto v = static_cast<std::int64_t>(victim_physical);
  const std::int64_t rows = geometry.rows_per_bank;
  for (std::int64_t p = v - config_.surround_rows; p <= v + config_.surround_rows; ++p) {
    if (p < 0 || p >= rows) continue;
    const bool is_aggressor = (p == v - 1 || p == v + 1);
    const std::uint32_t logical = map_.physical_to_logical(static_cast<std::uint32_t>(p));
    b.init_row(bank, logical, is_aggressor ? 1 : 0);
  }

  // Double-sided hammering; rows at the bank edge fall back to single-sided
  // with the same total activation count.
  const bool has_above = v - 1 >= 0;
  const bool has_below = v + 1 < rows;
  const auto on_time = static_cast<std::int64_t>(config_.aggressor_on_time);
  if (has_above && has_below) {
    b.ldi(0, map_.physical_to_logical(static_cast<std::uint32_t>(v - 1)));
    b.ldi(1, map_.physical_to_logical(static_cast<std::uint32_t>(v + 1)));
    b.hammer(bank, 0, 1, static_cast<std::int64_t>(hammers), on_time);
  } else {
    const std::uint32_t only = has_above ? static_cast<std::uint32_t>(v - 1)
                                         : static_cast<std::uint32_t>(v + 1);
    b.ldi(0, map_.physical_to_logical(only));
    b.hammer_single(bank, 0, static_cast<std::int64_t>(2 * hammers), on_time);
  }

  const std::uint32_t victim_logical = map_.physical_to_logical(victim_physical);
  b.read_row(bank, victim_logical);

  // Methodology guard (§3.1): the whole program — init, hammer, read — must
  // finish well inside the 32 ms refresh window so retention failures cannot
  // masquerade as RowHammer bitflips. The paper budgets 27 ms.
  const double program_ms = hbm::cycles_to_ms(b.virtual_cycles());
  if (config_.enforce_retention_bound && program_ms > 27.0) {
    throw common::ConfigError("test program takes " + std::to_string(program_ms) +
                              " ms, violating the 27 ms retention-interference bound");
  }

  const auto result = host_->run(b.take(), site.channel, site.pseudo_channel);

  BerResult out;
  out.bits_tested = geometry.row_bits();
  out.elapsed_ms = result.elapsed_ms();
  const std::uint8_t expected = victim_byte(pattern);
  RH_ENSURES(result.readback.size() == geometry.row_bytes());
  for (const std::uint8_t got : result.readback) {
    const auto diff = static_cast<unsigned>(got ^ expected);
    out.bit_errors += static_cast<std::uint64_t>(std::popcount(diff));
    out.ones_to_zeros += static_cast<std::uint64_t>(std::popcount(diff & expected));
    out.zeros_to_ones +=
        static_cast<std::uint64_t>(std::popcount(diff & static_cast<unsigned>(~expected & 0xff)));
  }
  return out;
}

BerResult Characterizer::measure_ber(const Site& site, std::uint32_t victim_physical,
                                     DataPattern pattern, std::uint64_t hammers) {
  return hammer_and_read(site, victim_physical, pattern,
                         hammers == 0 ? config_.ber_hammers : hammers);
}

std::optional<std::uint64_t> Characterizer::measure_hc_first(const Site& site,
                                                             std::uint32_t victim_physical,
                                                             DataPattern pattern,
                                                             std::uint64_t tolerance) {
  RH_EXPECTS(tolerance >= 1);
  // The flip response is monotone in hammer count (each probe re-initializes
  // the neighbourhood), so bisection is sound.
  std::uint64_t hi = config_.max_hammers;
  if (hammer_and_read(site, victim_physical, pattern, hi).bit_errors == 0) return std::nullopt;
  std::uint64_t lo = 0;  // exclusive: 0 hammers never flips
  while (hi - lo > tolerance) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (hammer_and_read(site, victim_physical, pattern, mid).bit_errors > 0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

RowRecord Characterizer::characterize_row(const Site& site, std::uint32_t victim_physical) {
  RowRecord rec;
  rec.site = site;
  rec.physical_row = victim_physical;

  for (std::size_t i = 0; i < kAllPatterns.size(); ++i) {
    rec.ber[i] = measure_ber(site, victim_physical, kAllPatterns[i]);
    rec.hc_first[i] =
        measure_hc_first(site, victim_physical, kAllPatterns[i], config_.wcdp_tolerance);
  }

  // WCDP (§3.1): the pattern with the smallest HC_first; when several tie,
  // the one with the largest BER at 256 K hammers.
  std::size_t best = 0;
  for (std::size_t i = 1; i < kAllPatterns.size(); ++i) {
    const auto& cand = rec.hc_first[i];
    const auto& incumbent = rec.hc_first[best];
    const std::uint64_t cand_hc = cand ? *cand : ~0ULL;
    const std::uint64_t incumbent_hc = incumbent ? *incumbent : ~0ULL;
    const std::uint64_t tie_band = config_.wcdp_tolerance;
    if (cand_hc + tie_band < incumbent_hc) {
      best = i;
    } else if (cand_hc <= incumbent_hc + tie_band &&
               rec.ber[i].bit_errors > rec.ber[best].bit_errors) {
      best = i;
    }
  }
  rec.wcdp = kAllPatterns[best];
  return rec;
}

}  // namespace rh::core
