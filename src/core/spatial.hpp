// Spatial-variation surveys (paper §4): drive the Characterizer across
// channels / regions / banks and aggregate the series each figure plots.
//
//   Fig. 3: BER box-stats per (channel, data pattern incl. WCDP)
//   Fig. 4: HC_first box-stats per (channel, data pattern incl. WCDP)
//   Fig. 5: per-row WCDP BER across the first / middle / last 3 K rows
//   Fig. 6: per-bank (mean BER, coefficient of variation) scatter
//
// The paper tests the first, middle, and last 3 K rows of one bank in every
// channel, all four Table 1 patterns, five repeats, at 85 degC. The survey
// samples rows with a configurable stride so quick runs stay quick; a stride
// of 1 reproduces the full methodology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bender/host.hpp"
#include "common/stats.hpp"
#include "core/characterizer.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"

namespace rh::core {

/// Index of the per-row WCDP series in pattern-indexed aggregations: indices
/// 0..kAllPatterns.size()-1 are the Table 1 patterns, kWcdpPatternIndex is
/// the per-row worst-case data pattern (see ChannelPatternStats::pattern).
inline constexpr std::size_t kWcdpPatternIndex = kAllPatterns.size();

struct RegionSpec {
  std::string name;
  std::uint32_t first_row = 0;
  std::uint32_t rows = 0;
};

/// The paper's three test regions: first, middle, and last `region_rows`
/// rows of the bank.
[[nodiscard]] std::vector<RegionSpec> paper_regions(const hbm::Geometry& geometry,
                                                    std::uint32_t region_rows = 3072);

struct SurveyConfig {
  /// Channels to survey (paper: all 8).
  std::vector<std::uint32_t> channels{0, 1, 2, 3, 4, 5, 6, 7};
  std::uint32_t pseudo_channel = 0;
  std::uint32_t bank = 0;
  /// Rows per region and sampling stride (stride 1 = the paper's full set).
  std::uint32_t region_rows = 3072;
  std::uint32_t row_stride = 96;
  /// When true, skip the HC_first searches and pick the WCDP as the pattern
  /// with the largest BER — a fast proxy that agrees with the HC_first-based
  /// definition in this monotone regime (used by the Fig. 5/6 sweeps).
  bool wcdp_by_ber = false;
  CharacterizerConfig characterizer{};
};

class SpatialSurvey {
public:
  SpatialSurvey(bender::BenderHost& host, SurveyConfig config);

  /// Fig. 3/4/5 data: one RowRecord per sampled row per channel.
  [[nodiscard]] std::vector<RowRecord> survey_rows();

  struct BankPoint {
    Site site;
    double mean_ber = 0.0;
    double cv = 0.0;
    std::size_t rows_tested = 0;
  };

  /// Fig. 6 data: per-bank mean/CV of WCDP BER over the first, middle, and
  /// last `rows_per_region` rows sampled at `stride`, across every bank of
  /// every pseudo channel of the configured channels.
  [[nodiscard]] std::vector<BankPoint> survey_banks(std::uint32_t rows_per_region = 100,
                                                    std::uint32_t stride = 10);

  [[nodiscard]] const SurveyConfig& config() const { return config_; }

private:
  bender::BenderHost* host_;
  SurveyConfig config_;
};

/// Cheap per-row characterization: BER for the four Table 1 patterns only,
/// WCDP chosen as the max-BER pattern. The fast path behind wcdp_by_ber
/// surveys and campaign ShardMode::kBerOnly shards.
[[nodiscard]] RowRecord characterize_row_ber_only(Characterizer& chr, const Site& site,
                                                  std::uint32_t row);

/// Aggregation for Figs. 3 and 4: index 0..3 = Table 1 patterns, 4 = WCDP.
struct ChannelPatternStats {
  std::uint32_t channel = 0;
  std::size_t pattern = 0;  ///< 0..3 = kAllPatterns, 4 = per-row WCDP
  common::BoxStats stats;
};

[[nodiscard]] std::string pattern_label(std::size_t pattern_index);

/// BER box-stats per channel x pattern (+ WCDP). Fig. 3's series.
[[nodiscard]] std::vector<ChannelPatternStats> aggregate_ber(
    const std::vector<RowRecord>& records);

/// HC_first box-stats per channel x pattern (+ WCDP), over rows where
/// HC_first exists. Fig. 4's series.
[[nodiscard]] std::vector<ChannelPatternStats> aggregate_hc_first(
    const std::vector<RowRecord>& records);

}  // namespace rh::core
