#include "core/data_patterns.hpp"

namespace rh::core {

std::vector<std::uint8_t> make_row_image(const hbm::Geometry& geometry, std::uint8_t value) {
  return std::vector<std::uint8_t>(geometry.row_bytes(), value);
}

}  // namespace rh::core
