// Bit-level analysis of RowHammer flips.
//
// The paper's §4 closing observation: "the RH vulnerability of a cell
// depends on i) the cell's physical location within a DRAM bank and ii)
// data stored in the neighboring cells" — this module quantifies both from
// the outside, using only measured readback:
//
//   - flip *direction* statistics (0->1 vs 1->0) per data pattern, which
//     expose the true-/anti-cell composition of the array;
//   - flip *column position* histograms within the row, which expose
//     whether flips cluster spatially;
//   - per-cell repeatability: the fraction of flipped cells that flip again
//     on a repeated identical experiment (RowHammer flips are known to be
//     highly repeatable per cell; retention-style noise is not).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bender/host.hpp"
#include "core/characterizer.hpp"
#include "core/data_patterns.hpp"
#include "core/row_map.hpp"
#include "core/site.hpp"

namespace rh::core {

struct FlipDirectionStats {
  std::uint64_t zero_to_one = 0;
  std::uint64_t one_to_zero = 0;

  [[nodiscard]] std::uint64_t total() const { return zero_to_one + one_to_zero; }
  /// Fraction of flips in the 0->1 direction (anti-cell charge loss).
  [[nodiscard]] double zero_to_one_fraction() const {
    return total() == 0 ? 0.0 : static_cast<double>(zero_to_one) / static_cast<double>(total());
  }
};

struct RowFlipProfile {
  Site site;
  std::uint32_t physical_row = 0;
  DataPattern pattern = DataPattern::kRowstripe0;
  FlipDirectionStats directions;
  /// Flip counts per column burst (columns_per_row buckets).
  std::vector<std::uint64_t> flips_per_column;
  /// Exact bit indices that flipped (row_bits-sized space).
  std::vector<std::uint32_t> flipped_bits;
};

class BitflipAnalyzer {
public:
  BitflipAnalyzer(bender::BenderHost& host, const RowMap& map);

  /// Hammers `physical_row` under `pattern` and returns the bit-level
  /// profile of the flips.
  RowFlipProfile profile_row(const Site& site, std::uint32_t physical_row, DataPattern pattern,
                             std::uint64_t hammers = 262'144);

  /// Repeatability: fraction of the bits flipped in a first run that flip
  /// again in an identical second run (1.0 = perfectly repeatable).
  double repeatability(const Site& site, std::uint32_t physical_row, DataPattern pattern,
                       std::uint64_t hammers = 262'144);

  /// Aggregated direction statistics over several rows.
  FlipDirectionStats direction_census(const Site& site, std::uint32_t first_row,
                                      std::uint32_t rows, std::uint32_t stride,
                                      DataPattern pattern, std::uint64_t hammers = 262'144);

private:
  bender::BenderHost* host_;
  const RowMap* map_;
};

}  // namespace rh::core
