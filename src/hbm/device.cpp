#include "hbm/device.hpp"

#include "common/assert.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::hbm {

using telemetry::TraceCommand;

DeviceConfig vendor_b_profile() {
  DeviceConfig config;
  config.scramble = ScrambleKind::kXorFold;
  config.trr.period = 9;
  config.fault.seed = 0xB02B0B5ULL;
  config.fault.die_factor = {1.53, 1.22, 1.09, 1.00};  // worst die at the bottom
  config.subarray_sizes.assign(config.geometry.rows_per_bank / 512, 512);
  return config;
}

Device::Device(DeviceConfig config)
    : config_(std::move(config)),
      scrambler_(config_.scramble, config_.geometry.rows_per_bank),
      layout_(config_.subarray_sizes.empty()
                  ? SubarrayLayout::paper_layout(config_.geometry.rows_per_bank)
                  : SubarrayLayout(config_.subarray_sizes)),
      temperature_c_(config_.initial_temperature_c) {
  config_.geometry.validate();
  variation_ = std::make_unique<fault::ProcessVariation>(config_.fault, config_.geometry);
  rh_model_ = std::make_unique<fault::RowHammerModel>(config_.fault, config_.geometry, layout_,
                                                      *variation_);
  retention_model_ = std::make_unique<fault::RetentionModel>(config_.fault, config_.geometry);

  channels_.resize(config_.geometry.channels);
  for (std::uint32_t ch = 0; ch < config_.geometry.channels; ++ch) {
    auto& channel = channels_[ch];
    channel.pseudo_channels.reserve(config_.geometry.pseudo_channels_per_channel);
    for (std::uint32_t pc = 0; pc < config_.geometry.pseudo_channels_per_channel; ++pc) {
      channel.pseudo_channels.emplace_back(config_.geometry, config_.timings, ch, pc, scrambler_,
                                           *rh_model_, *retention_model_, config_.trr);
    }
  }
}

void Device::set_engine(common::EngineKind kind, common::PlantedBug bug) {
  engine_ = kind;
  const bool fast = kind == common::EngineKind::kFast;
  rh_model_->set_fast_kernel(fast);
  // Planted bugs deliberately break the fast path only: the interp engine
  // stays ground truth so the differential rig can convict the fast one.
  const bool skip_trr = fast && bug == common::PlantedBug::kSkipTrrSample;
  const bool stale_flush = fast && bug == common::PlantedBug::kStaleDisturbanceFlush;
  for (auto& channel : channels_) {
    for (auto& pc : channel.pseudo_channels) {
      pc.set_skip_trr_sample_bug(skip_trr);
      for (std::uint32_t b = 0; b < pc.bank_count(); ++b) {
        pc.bank(b).set_stale_flush_bug(stale_flush);
      }
    }
  }
}

void Device::set_telemetry(telemetry::Telemetry* sink) {
  telemetry_ = sink;
  for (auto& channel : channels_) {
    for (auto& pc : channel.pseudo_channels) pc.set_telemetry(sink);
  }
}

Device::Channel& Device::channel_at(std::uint32_t channel) {
  RH_EXPECTS(channel < channels_.size());
  return channels_[channel];
}

const ModeRegisters& Device::mode_registers(std::uint32_t channel) const {
  RH_EXPECTS(channel < channels_.size());
  return channels_[channel].mode_registers;
}

PseudoChannel& Device::pseudo_channel(std::uint32_t channel, std::uint32_t pc) {
  auto& ch = channel_at(channel);
  RH_EXPECTS(pc < ch.pseudo_channels.size());
  return ch.pseudo_channels[pc];
}

Bank& Device::bank(const BankAddress& addr) {
  RH_EXPECTS(addr.valid(config_.geometry));
  return pseudo_channel(addr.channel, addr.pseudo_channel).bank(addr.bank);
}

const Bank& Device::bank(const BankAddress& addr) const {
  RH_EXPECTS(addr.valid(config_.geometry));
  RH_EXPECTS(addr.channel < channels_.size());
  return channels_[addr.channel].pseudo_channels[addr.pseudo_channel].bank(addr.bank);
}

void Device::activate(const BankAddress& addr, std::uint32_t row, Cycle now) {
  RH_EXPECTS(addr.valid(config_.geometry));
  pseudo_channel(addr.channel, addr.pseudo_channel).activate(addr.bank, row, now, temperature_c_);
  RH_TELEM(telemetry_,
           on_command(TraceCommand::kAct, now, addr.channel, addr.pseudo_channel, addr.bank, row));
}

void Device::precharge(const BankAddress& addr, Cycle now) {
  RH_EXPECTS(addr.valid(config_.geometry));
  pseudo_channel(addr.channel, addr.pseudo_channel).precharge(addr.bank, now, temperature_c_);
  RH_TELEM(telemetry_,
           on_command(TraceCommand::kPre, now, addr.channel, addr.pseudo_channel, addr.bank, 0));
}

void Device::precharge_all(std::uint32_t channel, std::uint32_t pc, Cycle now) {
  pseudo_channel(channel, pc).precharge_all(now, temperature_c_);
  RH_TELEM(telemetry_, on_command(TraceCommand::kPreA, now, channel, pc, 0, 0));
}

void Device::read(const BankAddress& addr, std::uint32_t column, Cycle now,
                  std::span<std::uint8_t> out) {
  RH_EXPECTS(addr.valid(config_.geometry));
  const bool ecc = channels_[addr.channel].mode_registers.ecc_enabled();
  pseudo_channel(addr.channel, addr.pseudo_channel).read(addr.bank, column, now, ecc, out);
  RH_TELEM(telemetry_, on_command(TraceCommand::kRd, now, addr.channel, addr.pseudo_channel,
                                  addr.bank, 0, column));
}

void Device::write(const BankAddress& addr, std::uint32_t column,
                   std::span<const std::uint8_t> data, Cycle now) {
  RH_EXPECTS(addr.valid(config_.geometry));
  pseudo_channel(addr.channel, addr.pseudo_channel).write(addr.bank, column, data, now);
  RH_TELEM(telemetry_, on_command(TraceCommand::kWr, now, addr.channel, addr.pseudo_channel,
                                  addr.bank, 0, column));
}

void Device::refresh(std::uint32_t channel, std::uint32_t pc, Cycle now) {
  pseudo_channel(channel, pc).refresh(now, temperature_c_);
  RH_TELEM(telemetry_, on_command(TraceCommand::kRef, now, channel, pc, 0, 0));
}

void Device::self_refresh_enter(std::uint32_t channel, std::uint32_t pc, Cycle now) {
  pseudo_channel(channel, pc).enter_self_refresh(now);
  RH_TELEM(telemetry_, on_command(TraceCommand::kSrEnter, now, channel, pc, 0, 0));
}

void Device::self_refresh_exit(std::uint32_t channel, std::uint32_t pc, Cycle now) {
  pseudo_channel(channel, pc).exit_self_refresh(now, temperature_c_);
  RH_TELEM(telemetry_, on_command(TraceCommand::kSrExit, now, channel, pc, 0, 0));
}

void Device::mode_register_set(std::uint32_t channel, std::uint32_t reg, std::uint32_t value,
                               Cycle now) {
  auto& ch = channel_at(channel);
  ch.mode_registers.set(reg, value);
  // MRS has no modelled timing constraint beyond bus occupancy.
  RH_TELEM(telemetry_, on_command(TraceCommand::kMrs, now, channel, 0, 0, reg, value));
  if (reg == ModeRegisters::kTrrRegister) {
    // Engage/disengage the documented TRR mode on the selected pseudo
    // channel (both TRR engines coexist; see trr/documented_trr.hpp).
    const bool pc_sel = ch.mode_registers.trr_mode_pseudo_channel();
    const std::uint32_t pc = pc_sel ? 1u : 0u;
    for (std::uint32_t i = 0; i < ch.pseudo_channels.size(); ++i) {
      auto& mode = ch.pseudo_channels[i].documented_trr();
      if (ch.mode_registers.trr_mode_enabled() && i == pc) {
        mode.enter(ch.mode_registers.trr_mode_bank());
      } else {
        mode.exit();
      }
    }
  }
}

void Device::hammer_pair(const BankAddress& addr, std::uint32_t row_a, std::uint32_t row_b,
                         std::uint64_t count, Cycle on_time, Cycle end) {
  RH_EXPECTS(addr.valid(config_.geometry));
  pseudo_channel(addr.channel, addr.pseudo_channel)
      .hammer_pair(addr.bank, row_a, row_b, count, on_time, end, temperature_c_);
  RH_TELEM(telemetry_,
           on_hammer(end, addr.channel, addr.pseudo_channel, addr.bank, row_a, 2 * count));
}

void Device::hammer_single(const BankAddress& addr, std::uint32_t row, std::uint64_t count,
                           Cycle on_time, Cycle end) {
  RH_EXPECTS(addr.valid(config_.geometry));
  pseudo_channel(addr.channel, addr.pseudo_channel)
      .hammer_single(addr.bank, row, count, on_time, end, temperature_c_);
  RH_TELEM(telemetry_, on_hammer(end, addr.channel, addr.pseudo_channel, addr.bank, row, count));
}

}  // namespace rh::hbm
