#include "hbm/pseudo_channel.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::hbm {

namespace {

trr::ProprietaryTrrConfig per_pc_trr(const trr::ProprietaryTrrConfig& base, std::uint32_t channel,
                                     std::uint32_t pseudo_channel) {
  trr::ProprietaryTrrConfig cfg = base;
  cfg.seed = common::hash_coords(base.seed, channel, pseudo_channel);
  return cfg;
}

}  // namespace

PseudoChannel::PseudoChannel(const Geometry& geometry, const TimingParams& timings,
                             std::uint32_t channel, std::uint32_t pseudo_channel,
                             const RowScrambler& scrambler,
                             const fault::RowHammerModel& rh_model,
                             const fault::RetentionModel& retention_model,
                             const trr::ProprietaryTrrConfig& trr_config)
    : geometry_(&geometry),
      scrambler_(&scrambler),
      channel_(channel),
      pseudo_channel_(pseudo_channel),
      timings_(timings),
      channel_timing_(timings_),
      proprietary_trr_(per_pc_trr(trr_config, channel, pseudo_channel)) {
  banks_.reserve(geometry.banks_per_pseudo_channel);
  for (std::uint32_t b = 0; b < geometry.banks_per_pseudo_channel; ++b) {
    const BankAddress addr{channel, pseudo_channel, b};
    banks_.emplace_back(geometry, timings, fault::BankContext::from(geometry, addr), scrambler,
                        rh_model, retention_model);
  }
  RH_EXPECTS(timings.refs_per_window > 0);
  rows_per_ref_ = std::max(1u, geometry.rows_per_bank / timings.refs_per_window);
}

void PseudoChannel::set_telemetry(telemetry::Telemetry* sink) {
  telemetry_ = sink;
  for (auto& b : banks_) b.set_telemetry(sink);
}

Bank& PseudoChannel::bank(std::uint32_t index) {
  RH_EXPECTS(index < banks_.size());
  return banks_[index];
}

const Bank& PseudoChannel::bank(std::uint32_t index) const {
  RH_EXPECTS(index < banks_.size());
  return banks_[index];
}

void PseudoChannel::activate(std::uint32_t bank_idx, std::uint32_t row, Cycle now,
                             double temperature_c) {
  check_not_self_refreshing();
  channel_timing_.on_activate(now, bank_idx);
  bank(bank_idx).activate(row, now, temperature_c);
  proprietary_trr_.observe_activate(bank_idx, row);
  documented_trr_.observe_activate(bank_idx, row);
}

void PseudoChannel::precharge(std::uint32_t bank_idx, Cycle now, double temperature_c) {
  check_not_self_refreshing();
  channel_timing_.check_not_refreshing(now);
  bank(bank_idx).precharge(now, temperature_c);
}

void PseudoChannel::precharge_all(Cycle now, double temperature_c) {
  check_not_self_refreshing();
  channel_timing_.check_not_refreshing(now);
  for (auto& b : banks_) {
    if (b.is_open()) b.precharge(now, temperature_c);
  }
}

void PseudoChannel::read(std::uint32_t bank_idx, std::uint32_t column, Cycle now, bool ecc,
                         std::span<std::uint8_t> out) {
  check_not_self_refreshing();
  channel_timing_.on_column(now, /*is_write=*/false);
  bank(bank_idx).read(column, now, ecc, out);
}

void PseudoChannel::write(std::uint32_t bank_idx, std::uint32_t column,
                          std::span<const std::uint8_t> data, Cycle now) {
  check_not_self_refreshing();
  channel_timing_.on_column(now, /*is_write=*/true);
  bank(bank_idx).write(column, data, now);
}

void PseudoChannel::refresh(Cycle now, double temperature_c) {
  check_not_self_refreshing();
  for (const auto& b : banks_) {
    if (b.is_open()) throw common::ProtocolError("REF with an open bank");
  }
  channel_timing_.on_refresh(now);

  // Pointer sweep: each REF refreshes the next rows_per_ref_ physical rows
  // in every bank, covering the array once per refresh window.
  for (auto& b : banks_) {
    for (std::uint32_t i = 0; i < rows_per_ref_; ++i) {
      const std::uint32_t row = (refresh_pointer_ + i) % geometry_->rows_per_bank;
      b.refresh_physical_row(row, now, temperature_c);
    }
  }
  refresh_pointer_ = (refresh_pointer_ + rows_per_ref_) % geometry_->rows_per_bank;
  RH_TELEM(telemetry_, on_refresh_pointer(channel_, pseudo_channel_, refresh_pointer_));

  // The undisclosed mitigation spends one-in-N REFs on a victim refresh
  // (paper §5: once every 17 REF commands).
  if (const auto action = proprietary_trr_.on_refresh()) {
    refresh_neighbourhood(action->bank, action->logical_row,
                          proprietary_trr_.config().neighborhood, now, temperature_c);
    RH_TELEM(telemetry_, on_trr_trigger(now, channel_, pseudo_channel_, action->bank,
                                        action->logical_row, /*documented=*/false));
  }
  // The documented JEDEC TRR mode, when engaged by the controller.
  if (const auto action = documented_trr_.on_refresh()) {
    for (const std::uint32_t row : action->logical_rows) {
      refresh_neighbourhood(action->bank, row, 2, now, temperature_c);
      RH_TELEM(telemetry_, on_trr_trigger(now, channel_, pseudo_channel_, action->bank, row,
                                          /*documented=*/true));
    }
  }
}

void PseudoChannel::hammer_pair(std::uint32_t bank_idx, std::uint32_t row_a, std::uint32_t row_b,
                                std::uint64_t count, Cycle on_time, Cycle end,
                                double temperature_c) {
  check_not_self_refreshing();
  bank(bank_idx).hammer_pair(row_a, row_b, count, on_time, end, temperature_c);
  proprietary_trr_.observe_activate(bank_idx, row_a);
  if (!skip_trr_sample_bug_) proprietary_trr_.observe_activate(bank_idx, row_b);
  documented_trr_.observe_activate(bank_idx, row_a);
  documented_trr_.observe_activate(bank_idx, row_b);
}

void PseudoChannel::hammer_single(std::uint32_t bank_idx, std::uint32_t row, std::uint64_t count,
                                  Cycle on_time, Cycle end, double temperature_c) {
  check_not_self_refreshing();
  bank(bank_idx).hammer_single(row, count, on_time, end, temperature_c);
  proprietary_trr_.observe_activate(bank_idx, row);
  documented_trr_.observe_activate(bank_idx, row);
}

void PseudoChannel::check_not_self_refreshing() const {
  if (self_refresh_) {
    throw common::ProtocolError("command issued while the pseudo channel is in self-refresh");
  }
}

void PseudoChannel::enter_self_refresh(Cycle now) {
  check_not_self_refreshing();
  for (const auto& b : banks_) {
    if (b.is_open()) throw common::ProtocolError("self-refresh entry with an open bank");
  }
  channel_timing_.check_not_refreshing(now);
  self_refresh_ = true;
  self_refresh_entry_ = now;
}

void PseudoChannel::exit_self_refresh(Cycle now, double temperature_c) {
  if (!self_refresh_) throw common::ProtocolError("self-refresh exit while not in self-refresh");
  RH_EXPECTS(now >= self_refresh_entry_);
  self_refresh_ = false;

  // Internal refresh progressed at the tREFI cadence while inside.
  const Cycle duration = now - self_refresh_entry_;
  const auto refs = static_cast<std::uint32_t>(
      std::min<Cycle>(duration / timings_.tREFI, timings_.refs_per_window));
  if (refs >= timings_.refs_per_window) {
    for (auto& b : banks_) b.note_full_refresh(now, self_refresh_entry_, temperature_c);
  } else {
    for (auto& b : banks_) {
      for (std::uint32_t i = 0; i < refs * rows_per_ref_; ++i) {
        b.refresh_physical_row((refresh_pointer_ + i) % geometry_->rows_per_bank, now,
                               temperature_c);
      }
    }
    refresh_pointer_ =
        (refresh_pointer_ + refs * rows_per_ref_) % geometry_->rows_per_bank;
  }
  // Vendor implementations restart the mitigation engine at SR exit.
  proprietary_trr_.reset();
}

void PseudoChannel::refresh_neighbourhood(std::uint32_t bank_idx, std::uint32_t logical_row,
                                          std::uint32_t radius, Cycle now, double temperature_c) {
  const std::uint32_t p = scrambler_->logical_to_physical(logical_row);
  Bank& b = bank(bank_idx);
  for (std::int64_t d = -static_cast<std::int64_t>(radius); d <= static_cast<std::int64_t>(radius);
       ++d) {
    if (d == 0) continue;
    const std::int64_t victim = static_cast<std::int64_t>(p) + d;
    if (victim < 0 || victim >= static_cast<std::int64_t>(geometry_->rows_per_bank)) continue;
    b.refresh_physical_row(static_cast<std::uint32_t>(victim), now, temperature_c);
  }
}

}  // namespace rh::hbm
