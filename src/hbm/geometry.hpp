// HBM2 stack geometry. Defaults mirror the chip the paper tests (§3):
// 4 GiB stack, 8 channels, 2 pseudo channels per channel, 16 banks per
// pseudo channel, 16384 rows per bank, 32 columns per row. Channels are
// placed pairwise on 4 stacked DRAM dies (the paper's hypothesis for the
// grouped per-channel behaviour it observes in Figs. 3 and 4).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"

namespace rh::hbm {

struct Geometry {
  std::uint32_t channels = 8;
  std::uint32_t pseudo_channels_per_channel = 2;
  std::uint32_t banks_per_pseudo_channel = 16;
  std::uint32_t rows_per_bank = 16384;
  std::uint32_t columns_per_row = 32;
  /// Bytes transferred per column access: 64-bit pseudo-channel interface at
  /// burst length 4 = 32 bytes.
  std::uint32_t bytes_per_column = 32;
  /// Number of stacked DRAM dies; channels are distributed evenly over dies.
  std::uint32_t dies = 4;

  [[nodiscard]] constexpr std::uint32_t row_bytes() const {
    return columns_per_row * bytes_per_column;
  }
  [[nodiscard]] constexpr std::uint32_t row_bits() const { return row_bytes() * 8; }
  [[nodiscard]] constexpr std::uint32_t total_banks() const {
    return channels * pseudo_channels_per_channel * banks_per_pseudo_channel;
  }
  [[nodiscard]] constexpr std::uint64_t stack_bytes() const {
    return static_cast<std::uint64_t>(total_banks()) * rows_per_bank * row_bytes();
  }
  [[nodiscard]] constexpr std::uint32_t channels_per_die() const { return channels / dies; }

  /// Die index hosting `channel` (channels {2d, 2d+1} live on die d by
  /// default). Precondition: channel < channels.
  [[nodiscard]] std::uint32_t die_of_channel(std::uint32_t channel) const {
    RH_EXPECTS(channel < channels);
    return channel / channels_per_die();
  }

  /// Validates internal consistency; throws ConfigError via RH_EXPECTS-style
  /// checks if the geometry is degenerate.
  void validate() const {
    RH_EXPECTS(channels > 0 && pseudo_channels_per_channel > 0);
    RH_EXPECTS(banks_per_pseudo_channel > 0 && rows_per_bank > 0);
    RH_EXPECTS(columns_per_row > 0 && bytes_per_column > 0);
    RH_EXPECTS(dies > 0 && channels % dies == 0);
  }
};

/// The paper's device: 4 GiB stack as described in §3.
[[nodiscard]] inline Geometry paper_geometry() { return Geometry{}; }

}  // namespace rh::hbm
