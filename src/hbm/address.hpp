// Addressing structures. Rows carry *logical* (memory-controller-visible)
// indices everywhere in the host-facing API; the device applies its internal
// logical->physical scrambling (see scramble.hpp) at the row decoder, exactly
// like real silicon. Host-side code that needs physical adjacency must
// reverse engineer the mapping (core/row_mapper), as the paper does (§3.1).
#pragma once

#include <compare>
#include <cstdint>

#include "hbm/geometry.hpp"

namespace rh::hbm {

/// Identifies one bank within the stack.
struct BankAddress {
  std::uint32_t channel = 0;
  std::uint32_t pseudo_channel = 0;
  std::uint32_t bank = 0;

  auto operator<=>(const BankAddress&) const = default;

  /// Flat index in [0, geometry.total_banks()).
  [[nodiscard]] std::uint32_t flat_index(const Geometry& g) const {
    return (channel * g.pseudo_channels_per_channel + pseudo_channel) *
               g.banks_per_pseudo_channel +
           bank;
  }

  [[nodiscard]] bool valid(const Geometry& g) const {
    return channel < g.channels && pseudo_channel < g.pseudo_channels_per_channel &&
           bank < g.banks_per_pseudo_channel;
  }
};

/// Identifies one row (logical index) within a bank.
struct RowAddress {
  BankAddress bank;
  std::uint32_t row = 0;

  auto operator<=>(const RowAddress&) const = default;

  [[nodiscard]] bool valid(const Geometry& g) const {
    return bank.valid(g) && row < g.rows_per_bank;
  }
};

/// Identifies one column burst within a row.
struct ColumnAddress {
  RowAddress row;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid(const Geometry& g) const {
    return row.valid(g) && column < g.columns_per_row;
  }
};

}  // namespace rh::hbm
