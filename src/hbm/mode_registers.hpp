// HBM2 mode registers (JESD235-style).
//
// We model the registers the paper's methodology touches:
//   - MR4 bit 0: on-die ECC enable. The paper disables ECC "by setting the
//     corresponding HBM2 mode register bit to zero" (§3.1).
//   - MR15: the *documented* Target Row Refresh (TRR) mode — enable bit,
//     target bank, pseudo-channel select. This is the standard's explicit TRR
//     mode; the paper's §5 discovery is about an additional *undisclosed*
//     mechanism that exists regardless of this register.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace rh::hbm {

class ModeRegisters {
public:
  static constexpr std::uint32_t kCount = 16;
  static constexpr std::uint32_t kEccRegister = 4;
  static constexpr std::uint32_t kTrrRegister = 15;

  ModeRegisters() {
    // Power-on defaults: ECC enabled (bit set), documented TRR mode off.
    raw_[kEccRegister] = 0x1;
    raw_[kTrrRegister] = 0x0;
  }

  /// Raw MRS write (what the device receives on the bus).
  void set(std::uint32_t reg, std::uint32_t value) {
    RH_EXPECTS(reg < kCount);
    raw_[reg] = value & 0xffu;
  }

  [[nodiscard]] std::uint32_t get(std::uint32_t reg) const {
    RH_EXPECTS(reg < kCount);
    return raw_[reg];
  }

  [[nodiscard]] bool ecc_enabled() const { return (raw_[kEccRegister] & 0x1u) != 0; }

  /// Documented JEDEC TRR mode fields (MR15).
  [[nodiscard]] bool trr_mode_enabled() const { return (raw_[kTrrRegister] & 0x10u) != 0; }
  [[nodiscard]] std::uint32_t trr_mode_bank() const { return raw_[kTrrRegister] & 0x0fu; }
  [[nodiscard]] bool trr_mode_pseudo_channel() const { return (raw_[kTrrRegister] & 0x20u) != 0; }

private:
  std::array<std::uint32_t, kCount> raw_{};
};

}  // namespace rh::hbm
