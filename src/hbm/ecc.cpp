#include "hbm/ecc.hpp"

#include <bit>
#include <cstring>

#include "common/assert.hpp"

namespace rh::hbm {

std::size_t popcount_diff(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  RH_EXPECTS(a.size() == b.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    count += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(a[i] ^ b[i])));
  }
  return count;
}

std::size_t ecc_correct_read(std::span<std::uint8_t> out, std::span<const std::uint8_t> written) {
  RH_EXPECTS(out.size() == written.size());
  RH_EXPECTS(out.size() % 8 == 0);
  std::size_t corrected = 0;
  for (std::size_t off = 0; off < out.size(); off += 8) {
    std::uint64_t raw = 0;
    std::uint64_t ref = 0;
    std::memcpy(&raw, out.data() + off, 8);
    std::memcpy(&ref, written.data() + off, 8);
    if (raw == ref) continue;
    if (std::popcount(raw ^ ref) == 1) {
      std::memcpy(out.data() + off, &ref, 8);
      ++corrected;
    }
  }
  return corrected;
}

}  // namespace rh::hbm
