#include "hbm/bank.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "fault/cell_traits.hpp"
#include "hbm/ecc.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::hbm {

Bank::Bank(const Geometry& geometry, const TimingParams& timings, fault::BankContext context,
           const RowScrambler& scrambler, const fault::RowHammerModel& rh_model,
           const fault::RetentionModel& retention_model)
    : geometry_(&geometry),
      timings_(timings),
      context_(context),
      scrambler_(&scrambler),
      rh_model_(&rh_model),
      retention_model_(&retention_model),
      timing_(timings_) {}

void Bank::activate(std::uint32_t logical_row, Cycle now, double temperature_c) {
  RH_EXPECTS(logical_row < geometry_->rows_per_bank);
  timing_.on_activate(now, logical_row);
  const std::uint32_t p = scrambler_->logical_to_physical(logical_row);
  settle(p, now, temperature_c);
  open_physical_ = p;
  act_cycle_ = now;
  add_act_disturbance(p, 1.0);
  ++stats_.activates;
}

void Bank::precharge(Cycle now, double temperature_c) {
  (void)temperature_c;
  timing_.on_precharge(now);
  // RowPress: an aggressor held open past tRAS disturbs its neighbours more
  // per activation. The extra disturbance is attributable at PRE time, when
  // the on-time is known. The ACT itself already deposited weight 1.0.
  const double extra = press_factor(now - act_cycle_) - 1.0;
  if (extra > 0.0) add_act_disturbance(open_physical_, extra);
}

double Bank::press_factor(Cycle on_time) const {
  // RowPress (ISCA'23): disturbance per activation grows roughly
  // logarithmically with the aggressor row's on-time beyond tRAS.
  if (on_time <= timings_.tRAS) return 1.0;
  const double rel = static_cast<double>(on_time - timings_.tRAS) /
                     static_cast<double>(timings_.tRAS);
  return 1.0 + rh_model_->config().press_coeff * std::log1p(rel);
}

void Bank::read(std::uint32_t column, Cycle now, bool ecc_enabled, std::span<std::uint8_t> out) {
  RH_EXPECTS(column < geometry_->columns_per_row);
  RH_EXPECTS(out.size() == geometry_->bytes_per_column);
  timing_.on_read(now);
  RowState& rs = ensure_materialized(open_physical_);
  const std::size_t off = static_cast<std::size_t>(column) * geometry_->bytes_per_column;
  std::copy_n(rs.raw.begin() + static_cast<std::ptrdiff_t>(off), out.size(), out.begin());
  if (ecc_enabled) {
    stats_.ecc_corrections += ecc_correct_read(
        out, std::span<const std::uint8_t>(rs.written).subspan(off, out.size()));
  }
  ++stats_.reads;
}

void Bank::write(std::uint32_t column, std::span<const std::uint8_t> data, Cycle now) {
  RH_EXPECTS(column < geometry_->columns_per_row);
  RH_EXPECTS(data.size() == geometry_->bytes_per_column);
  timing_.on_write(now);
  RowState& rs = ensure_materialized(open_physical_);
  const std::size_t off = static_cast<std::size_t>(column) * geometry_->bytes_per_column;
  std::copy(data.begin(), data.end(), rs.raw.begin() + static_cast<std::ptrdiff_t>(off));
  std::copy(data.begin(), data.end(), rs.written.begin() + static_cast<std::ptrdiff_t>(off));
  ++stats_.writes;
}

void Bank::refresh_physical_row(std::uint32_t physical_row, Cycle now, double temperature_c) {
  RH_EXPECTS(physical_row < geometry_->rows_per_bank);
  RH_EXPECTS(!timing_.open());
  settle(physical_row, now, temperature_c);
}

void Bank::note_full_refresh(Cycle now, Cycle refresh_start, double temperature_c) {
  RH_EXPECTS(!timing_.open());
  // Materialize pending fault state of every row we track (rows with data
  // and rows that only accumulated disturbance), then collapse all refresh
  // bookkeeping to `now`. While the internal refresh engine runs (from
  // `refresh_start`), a row goes at most one refresh window unrefreshed —
  // decay accrues only until then; accumulated RowHammer disturbance is
  // sensed and locked in by the first sweep.
  const Cycle decayed_until = std::min(now, refresh_start + timings_.refresh_window);
  const std::vector<std::uint32_t> live = disturbance_.live_rows();
  std::vector<std::uint32_t> pending;
  pending.reserve(rows_.size() + live.size());
  for (const auto& [row, state] : rows_) {
    (void)state;
    pending.push_back(row);
  }
  for (const std::uint32_t row : live) {
    if (rows_.find(row) == rows_.end()) pending.push_back(row);
  }
  for (const std::uint32_t row : pending) settle_impl(row, now, decayed_until, temperature_c);
  disturbance_.clear();
  last_refresh_.clear();
  epoch_ = now;
}

void Bank::hammer_pair(std::uint32_t logical_row_a, std::uint32_t logical_row_b,
                       std::uint64_t count, Cycle on_time, Cycle end, double temperature_c) {
  RH_EXPECTS(logical_row_a < geometry_->rows_per_bank);
  RH_EXPECTS(logical_row_b < geometry_->rows_per_bank);
  timing_.note_batch_end(end);
  const std::uint32_t pa = scrambler_->logical_to_physical(logical_row_a);
  const std::uint32_t pb = scrambler_->logical_to_physical(logical_row_b);
  // Each aggressor's own pending state materializes before the batch (its
  // first ACT senses and restores it)...
  settle(pa, end, temperature_c);
  settle(pb, end, temperature_c);
  const double scale = static_cast<double>(count) * press_factor(on_time);
  add_act_disturbance(pa, scale);
  if (pb != pa) add_act_disturbance(pb, scale);
  // ...and its *last* ACT restores it again, clearing whatever disturbance
  // the opposite aggressor deposited during the batch.
  if (!stale_flush_bug_) {
    disturbance_.erase(pa);
    disturbance_.erase(pb);
  }
  last_refresh_[pa] = end;
  last_refresh_[pb] = end;
  stats_.activates += 2 * count;
}

void Bank::hammer_single(std::uint32_t logical_row, std::uint64_t count, Cycle on_time, Cycle end,
                         double temperature_c) {
  RH_EXPECTS(logical_row < geometry_->rows_per_bank);
  timing_.note_batch_end(end);
  const std::uint32_t p = scrambler_->logical_to_physical(logical_row);
  settle(p, end, temperature_c);
  add_act_disturbance(p, static_cast<double>(count) * press_factor(on_time));
  if (!stale_flush_bug_) disturbance_.erase(p);
  last_refresh_[p] = end;
  stats_.activates += count;
}

double Bank::disturbance_of_physical(std::uint32_t physical_row) const {
  return disturbance_.get(physical_row);
}

bool Bank::row_materialized_physical(std::uint32_t physical_row) const {
  return rows_.find(physical_row) != rows_.end();
}

Bank::RowState& Bank::ensure_materialized(std::uint32_t physical_row) {
  if (memo_state_ != nullptr && memo_row_ == physical_row) return *memo_state_;
  auto it = rows_.find(physical_row);
  if (it == rows_.end()) {
    RowState rs;
    rs.raw.resize(geometry_->row_bytes());
    fault::fill_default_data(rh_model_->config().seed, context_, physical_row, rs.raw);
    rs.written = rs.raw;
    it = rows_.emplace(physical_row, std::move(rs)).first;
  }
  memo_row_ = physical_row;
  memo_state_ = &it->second;
  return it->second;
}

std::span<const std::uint8_t> Bank::neighbour_data(std::uint32_t physical_row,
                                                   std::int64_t neighbour,
                                                   std::vector<std::uint8_t>& scratch) {
  if (neighbour < 0 || neighbour >= static_cast<std::int64_t>(geometry_->rows_per_bank)) return {};
  const auto n = static_cast<std::uint32_t>(neighbour);
  if (rh_model_->layout().crosses_boundary(physical_row, n)) return {};
  const auto it = rows_.find(n);
  if (it != rows_.end()) return it->second.raw;
  scratch.resize(geometry_->row_bytes());
  fault::fill_default_data(rh_model_->config().seed, context_, n, scratch);
  return scratch;
}

void Bank::settle(std::uint32_t physical_row, Cycle now, double temperature_c) {
  settle_impl(physical_row, now, now, temperature_c);
}

void Bank::settle_impl(std::uint32_t physical_row, Cycle now, Cycle decayed_until,
                       double temperature_c) {
  const auto lr = last_refresh_.find(physical_row);
  const Cycle last = lr == last_refresh_.end() ? epoch_ : lr->second;
  const Cycle since = decayed_until > last ? decayed_until - last : 0;
  const double elapsed_s = static_cast<double>(since) *
                           static_cast<double>(kCyclePicoseconds) * 1e-12;
  const double disturbance = disturbance_.get(physical_row);

  const bool need_retention =
      elapsed_s >= retention_model_->global_min_retention_s(temperature_c);
  const bool need_rh = disturbance >= rh_model_->global_min_disturbance();
  // Retention decay of a row that was never written (and never disturbed)
  // turns power-on junk into different junk — unobservable, so don't
  // materialize storage for it. Written rows always settle their decay.
  const bool tracked = rows_.find(physical_row) != rows_.end();

  if ((need_retention && tracked) || need_rh) {
    RowState& rs = ensure_materialized(physical_row);
    ++stats_.settles;
    std::size_t retention_flipped = 0;
    std::size_t rh_flipped = 0;
    if (need_retention) {
      retention_flipped =
          retention_model_->apply(context_, physical_row, rs.raw, elapsed_s, temperature_c);
      stats_.retention_flips += retention_flipped;
    }
    if (need_rh) {
      const auto above =
          neighbour_data(physical_row, static_cast<std::int64_t>(physical_row) - 1, scratch_above_);
      const auto below =
          neighbour_data(physical_row, static_cast<std::int64_t>(physical_row) + 1, scratch_below_);
      rh_flipped = rh_model_->apply(context_, physical_row, rs.raw, above, below, disturbance,
                                    temperature_c);
      stats_.rowhammer_flips += rh_flipped;
    }
    if (rh_flipped + retention_flipped > 0) {
      RH_TELEM(telemetry_,
               on_bit_flips(now, context_.channel, context_.pseudo_channel, context_.bank,
                            physical_row, static_cast<std::uint32_t>(rh_flipped),
                            static_cast<std::uint32_t>(retention_flipped), disturbance));
    }
  }
  disturbance_.erase(physical_row);
  last_refresh_[physical_row] = now;
}

void Bank::add_act_disturbance(std::uint32_t aggressor, double scale) {
  const auto& cfg = rh_model_->config();
  const auto& layout = rh_model_->layout();
  const auto rows = static_cast<std::int64_t>(geometry_->rows_per_bank);
  const auto add = [&](std::int64_t victim, double weight) {
    if (victim < 0 || victim >= rows) return;
    const auto v = static_cast<std::uint32_t>(victim);
    if (layout.crosses_boundary(aggressor, v)) return;
    disturbance_.add(v, weight * scale, geometry_->rows_per_bank);
  };
  const auto a = static_cast<std::int64_t>(aggressor);
  add(a - 1, cfg.distance1_weight);
  add(a + 1, cfg.distance1_weight);
  add(a - 2, cfg.distance2_weight);
  add(a + 2, cfg.distance2_weight);
}

}  // namespace rh::hbm
