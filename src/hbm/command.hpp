// DRAM command vocabulary visible at the HBM2 interface.
#pragma once

#include <cstdint>
#include <string_view>

namespace rh::hbm {

enum class CommandKind : std::uint8_t {
  kActivate,       ///< ACT: open a row in a bank
  kPrecharge,      ///< PRE: close the open row in a bank
  kPrechargeAll,   ///< PREA: close all open rows in the pseudo channel
  kRead,           ///< RD: burst-read one column of the open row
  kWrite,          ///< WR: burst-write one column of the open row
  kRefresh,        ///< REF: all-bank periodic refresh step
  kModeRegisterSet  ///< MRS: write a mode register
};

[[nodiscard]] constexpr std::string_view to_string(CommandKind k) {
  switch (k) {
    case CommandKind::kActivate: return "ACT";
    case CommandKind::kPrecharge: return "PRE";
    case CommandKind::kPrechargeAll: return "PREA";
    case CommandKind::kRead: return "RD";
    case CommandKind::kWrite: return "WR";
    case CommandKind::kRefresh: return "REF";
    case CommandKind::kModeRegisterSet: return "MRS";
  }
  return "?";
}

}  // namespace rh::hbm
