// On-die ECC model.
//
// Modern high-density DRAM (including HBM2) ships single-error-correcting
// on-die ECC over 64-bit words. The check bits never leave the die, so we
// model the *semantics* rather than the code: the device remembers the last
// written image of each row; on the read path, any 64-bit word whose raw
// (possibly corrupted) content differs from the written content in exactly
// one bit is returned corrected, while words with 2+ errors are returned
// raw (detected-uncorrectable; we do not model miscorrection).
//
// Correction happens only on the read data path — the array keeps the raw
// charge — matching real on-die ECC, where errors stay latent in the array.
// The paper disables ECC via the mode register for all experiments (§3.1);
// a unit test shows why: with ECC on, single-bit RowHammer flips vanish
// from the host's view.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace rh::hbm {

/// Counts differing bits between two equal-sized byte spans.
[[nodiscard]] std::size_t popcount_diff(std::span<const std::uint8_t> a,
                                        std::span<const std::uint8_t> b);

/// Applies on-die-ECC read-path correction to `out` (initially the raw
/// data), using `written` as the reference image. Both spans must be the
/// same size and a multiple of 8 bytes (one codeword = 64 data bits).
/// Returns the number of corrected (single-error) codewords.
std::size_t ecc_correct_read(std::span<std::uint8_t> out, std::span<const std::uint8_t> written);

}  // namespace rh::hbm
