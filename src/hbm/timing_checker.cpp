#include "hbm/timing_checker.hpp"

#include <string>

namespace rh::hbm {

namespace {

[[noreturn]] void timing_violation(const char* rule, Cycle need, Cycle now) {
  throw common::TimingError(std::string("timing violation: ") + rule + " requires cycle >= " +
                            std::to_string(need) + ", command issued at " + std::to_string(now));
}

}  // namespace

void BankTiming::on_activate(Cycle now, std::uint32_t logical_row) {
  if (open_) throw common::ProtocolError("ACT to a bank with an open row");
  if (ever_activated_ && now < last_act_ + t_->tRC) timing_violation("tRC", last_act_ + t_->tRC, now);
  if (ever_precharged_ && now < last_pre_ + t_->tRP) timing_violation("tRP", last_pre_ + t_->tRP, now);
  open_ = true;
  open_row_ = logical_row;
  last_act_ = now;
  ever_activated_ = true;
}

void BankTiming::on_precharge(Cycle now) {
  if (!open_) throw common::ProtocolError("PRE to a bank with no open row");
  if (now < last_act_ + t_->tRAS) timing_violation("tRAS", last_act_ + t_->tRAS, now);
  // Gate on ever-flags, not cycle sentinels: a column command issued at
  // cycle 0 (reachable when tRCD is degenerate) must still be recovered.
  if (ever_written_ && now < last_wr_ + t_->tWR) timing_violation("tWR", last_wr_ + t_->tWR, now);
  if (ever_read_ && now < last_rd_ + t_->tRTP) timing_violation("tRTP", last_rd_ + t_->tRTP, now);
  open_ = false;
  last_pre_ = now;
  ever_precharged_ = true;
}

void BankTiming::on_read(Cycle now) {
  if (!open_) throw common::ProtocolError("RD to a bank with no open row");
  if (now < last_act_ + t_->tRCD) timing_violation("tRCD", last_act_ + t_->tRCD, now);
  last_rd_ = now;
  ever_read_ = true;
}

void BankTiming::on_write(Cycle now) {
  if (!open_) throw common::ProtocolError("WR to a bank with no open row");
  if (now < last_act_ + t_->tRCD) timing_violation("tRCD", last_act_ + t_->tRCD, now);
  last_wr_ = now;
  ever_written_ = true;
}

void BankTiming::force_closed(Cycle now) {
  open_ = false;
  last_pre_ = now;
  ever_precharged_ = true;
}

void BankTiming::note_batch_end(Cycle end) {
  if (open_) throw common::ProtocolError("batch hammer requires the bank to be precharged");
  last_act_ = end > t_->tRC ? end - t_->tRC : 0;
  last_pre_ = end > t_->tRP ? end - t_->tRP : 0;
  ever_activated_ = true;
  ever_precharged_ = true;
}

void ChannelTiming::on_activate(Cycle now, std::uint32_t bank) {
  check_not_refreshing(now);
  const std::uint32_t group = t_->banks_per_group > 0 ? bank / t_->banks_per_group : 0;
  if (ever_activated_ && now < last_act_ + t_->tRRD) {
    timing_violation("tRRD", last_act_ + t_->tRRD, now);
  }
  if (group < group_ever_act_.size() && group_ever_act_[group] &&
      now < group_last_act_[group] + t_->tRRD_L) {
    timing_violation("tRRD_L", group_last_act_[group] + t_->tRRD_L, now);
  }
  if (faw_count_ >= 4 && now < faw_[faw_count_ % 4] + t_->tFAW) {
    timing_violation("tFAW", faw_[faw_count_ % 4] + t_->tFAW, now);
  }
  last_act_ = now;
  ever_activated_ = true;
  if (group >= group_ever_act_.size()) {
    group_ever_act_.resize(group + 1, false);
    group_last_act_.resize(group + 1, 0);
  }
  group_ever_act_[group] = true;
  group_last_act_[group] = now;
  faw_[faw_count_ % 4] = now;
  ++faw_count_;
}

void ChannelTiming::on_column(Cycle now, bool is_write) {
  check_not_refreshing(now);
  if (ever_column_ && now < last_col_ + t_->tCCD) timing_violation("tCCD", last_col_ + t_->tCCD, now);
  if (!is_write && ever_written_ && now < last_wr_ + t_->tWTR) {
    timing_violation("tWTR", last_wr_ + t_->tWTR, now);
  }
  last_col_ = now;
  ever_column_ = true;
  if (is_write) {
    last_wr_ = now;
    ever_written_ = true;
  }
}

void ChannelTiming::on_refresh(Cycle now) {
  check_not_refreshing(now);
  ref_done_ = now + t_->tRFC;
}

void ChannelTiming::check_not_refreshing(Cycle now) const {
  if (now < ref_done_) timing_violation("tRFC", ref_done_, now);
}

}  // namespace rh::hbm
