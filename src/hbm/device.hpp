// The HBM2 device: the stack a DRAM Bender host talks to.
//
// Owns the geometry, the fault-physics models, the row scrambler, per-channel
// mode registers, and the channel/pseudo-channel/bank hierarchy. The public
// surface is the HBM2 command set plus two batch "macro-op" entry points that
// the Bender executor uses for tight hammer loops (equivalent to, but far
// faster to simulate than, the unrolled ACT/PRE stream — an equivalence the
// test suite verifies).
//
// A single global cycle clock (advanced by the executor) timestamps all
// commands; retention is evaluated against it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/engine.hpp"
#include "fault/config.hpp"
#include "fault/process_variation.hpp"
#include "fault/retention_model.hpp"
#include "fault/rowhammer_model.hpp"
#include "hbm/address.hpp"
#include "hbm/geometry.hpp"
#include "hbm/mode_registers.hpp"
#include "hbm/pseudo_channel.hpp"
#include "hbm/scramble.hpp"
#include "hbm/subarray.hpp"
#include "hbm/timing.hpp"
#include "trr/proprietary_trr.hpp"

namespace rh::telemetry {
class Telemetry;
}

namespace rh::hbm {

struct DeviceConfig {
  Geometry geometry;
  TimingParams timings;
  ScrambleKind scramble = ScrambleKind::kPairSwap;
  fault::FaultConfig fault;
  trr::ProprietaryTrrConfig trr;
  double initial_temperature_c = 85.0;
  /// Explicit subarray sizes (must sum to rows_per_bank). Empty = the
  /// paper chip's floorplan (8x832, 4x768, 8x832).
  std::vector<std::uint32_t> subarray_sizes;
};

/// A second simulated part for methodology-generalization tests: a vendor
/// with a different floorplan (uniform 512-row subarrays), a different row
/// decoder (xor-fold), a faster proprietary TRR (one victim refresh per 9
/// REFs), and the worst die at the bottom of the stack (channels 0-1).
[[nodiscard]] DeviceConfig vendor_b_profile();

class Device {
public:
  explicit Device(DeviceConfig config);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // --- HBM2 command interface (all rows logical) -----------------------
  void activate(const BankAddress& bank, std::uint32_t row, Cycle now);
  void precharge(const BankAddress& bank, Cycle now);
  void precharge_all(std::uint32_t channel, std::uint32_t pseudo_channel, Cycle now);
  void read(const BankAddress& bank, std::uint32_t column, Cycle now,
            std::span<std::uint8_t> out);
  void write(const BankAddress& bank, std::uint32_t column, std::span<const std::uint8_t> data,
             Cycle now);
  void refresh(std::uint32_t channel, std::uint32_t pseudo_channel, Cycle now);
  /// Self-refresh entry/exit (SRE/SRX). While inside, the pseudo channel
  /// refreshes itself and rejects all other commands.
  void self_refresh_enter(std::uint32_t channel, std::uint32_t pseudo_channel, Cycle now);
  void self_refresh_exit(std::uint32_t channel, std::uint32_t pseudo_channel, Cycle now);
  /// MRS write; reg 4 bit 0 controls on-die ECC, reg 15 the documented TRR
  /// mode (see mode_registers.hpp).
  void mode_register_set(std::uint32_t channel, std::uint32_t reg, std::uint32_t value, Cycle now);

  // --- Batch macro-ops (executor fast path) -----------------------------
  void hammer_pair(const BankAddress& bank, std::uint32_t row_a, std::uint32_t row_b,
                   std::uint64_t count, Cycle on_time, Cycle end);
  void hammer_single(const BankAddress& bank, std::uint32_t row, std::uint64_t count, Cycle on_time,
                     Cycle end);

  // --- Environment -------------------------------------------------------
  void set_temperature(double celsius) { temperature_c_ = celsius; }
  [[nodiscard]] double temperature() const { return temperature_c_; }

  // --- Engine selection ---------------------------------------------------
  /// Selects between the reference device core (kInterp: per-bit fault
  /// rescans) and the fast one (kFast: cached sorted-threshold fault kernel).
  /// Both are bit-identical by contract; `bug` deliberately breaks the fast
  /// path for differential-rig sensitivity tests and is only honoured when
  /// `kind == kFast`.
  void set_engine(common::EngineKind kind,
                  common::PlantedBug bug = common::PlantedBug::kNone);
  [[nodiscard]] common::EngineKind engine() const { return engine_; }

  // --- Observability ------------------------------------------------------
  /// Attaches (or detaches, with nullptr) a telemetry sink observing the
  /// full stack: interface commands here, TRR triggers and refresh-pointer
  /// progress in the pseudo channels, bit-flip materializations in the
  /// banks. The sink must outlive the device or be detached first; when no
  /// sink is attached the instrumentation costs one branch per hook.
  void set_telemetry(telemetry::Telemetry* sink);
  [[nodiscard]] telemetry::Telemetry* telemetry() const { return telemetry_; }

  // --- Introspection ------------------------------------------------------
  [[nodiscard]] const Geometry& geometry() const { return config_.geometry; }
  [[nodiscard]] const TimingParams& timings() const { return config_.timings; }
  [[nodiscard]] const DeviceConfig& config() const { return config_; }
  [[nodiscard]] const RowScrambler& scrambler() const { return scrambler_; }
  [[nodiscard]] const SubarrayLayout& subarray_layout() const { return layout_; }
  [[nodiscard]] const fault::RowHammerModel& rowhammer_model() const { return *rh_model_; }
  [[nodiscard]] const fault::RetentionModel& retention_model() const { return *retention_model_; }
  [[nodiscard]] const ModeRegisters& mode_registers(std::uint32_t channel) const;
  [[nodiscard]] Bank& bank(const BankAddress& addr);
  [[nodiscard]] const Bank& bank(const BankAddress& addr) const;
  [[nodiscard]] PseudoChannel& pseudo_channel(std::uint32_t channel, std::uint32_t pc);

private:
  struct Channel {
    ModeRegisters mode_registers;
    std::vector<PseudoChannel> pseudo_channels;
  };

  [[nodiscard]] Channel& channel_at(std::uint32_t channel);

  DeviceConfig config_;
  RowScrambler scrambler_;
  SubarrayLayout layout_;
  std::unique_ptr<fault::ProcessVariation> variation_;
  std::unique_ptr<fault::RowHammerModel> rh_model_;
  std::unique_ptr<fault::RetentionModel> retention_model_;
  std::vector<Channel> channels_;
  double temperature_c_ = 85.0;
  telemetry::Telemetry* telemetry_ = nullptr;
  common::EngineKind engine_ = common::EngineKind::kInterp;
};

}  // namespace rh::hbm
