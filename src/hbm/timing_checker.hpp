// JEDEC-style command-timing validation.
//
// DRAM Bender gives the experimenter cycle-precise control of the command
// bus — and with it the ability to issue illegal sequences. Real chips
// silently misbehave; our device *throws* (TimingError / ProtocolError) so
// test programs are validated as they run. Program builders in src/core
// insert the correct spacing; these checks are what prove they do.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "hbm/timing.hpp"

namespace rh::hbm {

/// Per-bank timing + open/closed state.
class BankTiming {
public:
  explicit BankTiming(const TimingParams& t) : t_(&t) {}

  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] std::uint32_t open_row() const { return open_row_; }
  [[nodiscard]] Cycle last_activate() const { return last_act_; }

  /// Validates and records an ACT at `now` opening `logical_row`.
  void on_activate(Cycle now, std::uint32_t logical_row);
  /// Validates and records a PRE at `now`.
  void on_precharge(Cycle now);
  /// Validates and records a RD at `now`.
  void on_read(Cycle now);
  /// Validates and records a WR at `now`.
  void on_write(Cycle now);
  /// Forces closed state (REF, PREA, batch ops).
  void force_closed(Cycle now);

  /// Records the end of a batch hammer macro-op: the bank finished its last
  /// ACT/PRE pair at `end`, so subsequent ACTs respect tRC/tRP from there.
  void note_batch_end(Cycle end);

private:
  const TimingParams* t_;
  bool open_ = false;
  std::uint32_t open_row_ = 0;
  Cycle last_act_ = 0;
  Cycle last_pre_ = 0;
  Cycle last_rd_ = 0;
  Cycle last_wr_ = 0;
  bool ever_activated_ = false;
  bool ever_precharged_ = false;
  bool ever_read_ = false;
  bool ever_written_ = false;
};

/// Pseudo-channel-level constraints: tRRD/tRRD_L across banks and within a
/// bank group, the tFAW four-activate window, tCCD on the shared data bus,
/// the tWTR write-to-read turnaround, and tRFC after REF.
class ChannelTiming {
public:
  explicit ChannelTiming(const TimingParams& t) : t_(&t) {}

  /// Validates and records an ACT to `bank` at `now`. Checks, in order:
  /// tRFC, tRRD (any bank), tRRD_L (same bank group), tFAW (rolling window
  /// of the last four activations).
  void on_activate(Cycle now, std::uint32_t bank = 0);
  /// Validates and records a RD/WR on the shared data path: tCCD always,
  /// plus the tWTR turnaround for a RD following a WR.
  void on_column(Cycle now, bool is_write = false);
  void on_refresh(Cycle now);
  /// Throws if a command at `now` falls inside the tRFC window of a REF.
  void check_not_refreshing(Cycle now) const;

private:
  const TimingParams* t_;
  Cycle last_act_ = 0;
  Cycle last_col_ = 0;
  Cycle last_wr_ = 0;
  Cycle ref_done_ = 0;
  bool ever_activated_ = false;
  bool ever_column_ = false;
  bool ever_written_ = false;
  /// Last ACT per bank group (lazily grown to the highest group seen).
  std::vector<Cycle> group_last_act_;
  std::vector<bool> group_ever_act_;
  /// Ring of the last four ACT timestamps; slot (faw_count_ % 4) holds the
  /// fourth-previous ACT once four have been recorded.
  std::array<Cycle, 4> faw_{};
  std::uint64_t faw_count_ = 0;
};

}  // namespace rh::hbm
