// JEDEC-style command-timing validation.
//
// DRAM Bender gives the experimenter cycle-precise control of the command
// bus — and with it the ability to issue illegal sequences. Real chips
// silently misbehave; our device *throws* (TimingError / ProtocolError) so
// test programs are validated as they run. Program builders in src/core
// insert the correct spacing; these checks are what prove they do.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "hbm/timing.hpp"

namespace rh::hbm {

/// Per-bank timing + open/closed state.
class BankTiming {
public:
  explicit BankTiming(const TimingParams& t) : t_(&t) {}

  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] std::uint32_t open_row() const { return open_row_; }
  [[nodiscard]] Cycle last_activate() const { return last_act_; }

  /// Validates and records an ACT at `now` opening `logical_row`.
  void on_activate(Cycle now, std::uint32_t logical_row);
  /// Validates and records a PRE at `now`.
  void on_precharge(Cycle now);
  /// Validates and records a RD at `now`.
  void on_read(Cycle now);
  /// Validates and records a WR at `now`.
  void on_write(Cycle now);
  /// Forces closed state (REF, PREA, batch ops).
  void force_closed(Cycle now);

  /// Records the end of a batch hammer macro-op: the bank finished its last
  /// ACT/PRE pair at `end`, so subsequent ACTs respect tRC/tRP from there.
  void note_batch_end(Cycle end);

private:
  const TimingParams* t_;
  bool open_ = false;
  std::uint32_t open_row_ = 0;
  Cycle last_act_ = 0;
  Cycle last_pre_ = 0;
  Cycle last_rd_ = 0;
  Cycle last_wr_ = 0;
  bool ever_activated_ = false;
  bool ever_precharged_ = false;
};

/// Pseudo-channel-level constraints: tRRD across banks, tCCD on the shared
/// data bus, tRFC after REF.
class ChannelTiming {
public:
  explicit ChannelTiming(const TimingParams& t) : t_(&t) {}

  void on_activate(Cycle now);
  void on_column(Cycle now);
  void on_refresh(Cycle now);
  /// Throws if a command at `now` falls inside the tRFC window of a REF.
  void check_not_refreshing(Cycle now) const;

private:
  const TimingParams* t_;
  Cycle last_act_ = 0;
  Cycle last_col_ = 0;
  Cycle ref_done_ = 0;
  bool ever_activated_ = false;
  bool ever_column_ = false;
};

}  // namespace rh::hbm
