// One DRAM bank: protocol state machine, sparse cell storage, and the point
// where the fault model meets the command stream.
//
// Storage is lazy: a bank of 16384 rows materializes only the rows an
// experiment touches (the full stack is 4 GiB; experiments touch megabytes).
// Each materialized row keeps two images:
//   raw     — the charge state (accumulates RowHammer and retention flips)
//   written — the last data written by the host (the on-die ECC reference)
//
// Fault bookkeeping is *settled* whenever a row's charge is sensed and
// restored (own ACT, REF sweep, TRR victim refresh): pending retention decay
// and RowHammer disturbance materialize into `raw`, the disturbance counter
// resets, and the refresh timestamp advances — exactly the lifecycle of a
// real row through sense-amplifier restore.
//
// All host-facing row numbers are logical; the bank applies the row-decoder
// scrambling internally. Disturbance and refresh bookkeeping are keyed by
// physical row.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "fault/context.hpp"
#include "fault/retention_model.hpp"
#include "fault/rowhammer_model.hpp"
#include "hbm/geometry.hpp"
#include "hbm/scramble.hpp"
#include "hbm/timing.hpp"
#include "hbm/timing_checker.hpp"

namespace rh::telemetry {
class Telemetry;
}

namespace rh::hbm {

class Bank {
public:
  struct Stats {
    std::uint64_t activates = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowhammer_flips = 0;   ///< bits flipped by disturbance so far
    std::uint64_t retention_flips = 0;   ///< bits flipped by decay so far
    std::uint64_t ecc_corrections = 0;   ///< codewords corrected on reads
    std::uint64_t settles = 0;           ///< full row settles (fault scans)
  };

  Bank(const Geometry& geometry, const TimingParams& timings, fault::BankContext context,
       const RowScrambler& scrambler, const fault::RowHammerModel& rh_model,
       const fault::RetentionModel& retention_model);

  // --- DRAM protocol (logical row addressing) --------------------------
  void activate(std::uint32_t logical_row, Cycle now, double temperature_c);
  void precharge(Cycle now, double temperature_c);
  /// Reads one column burst of the open row into `out` (bytes_per_column
  /// bytes). When `ecc_enabled`, single-bit errors per 64-bit word are
  /// corrected on the fly.
  void read(std::uint32_t column, Cycle now, bool ecc_enabled, std::span<std::uint8_t> out);
  /// Writes one column burst into the open row.
  void write(std::uint32_t column, std::span<const std::uint8_t> data, Cycle now);

  [[nodiscard]] bool is_open() const { return timing_.open(); }
  [[nodiscard]] std::uint32_t open_logical_row() const { return timing_.open_row(); }

  // --- Refresh paths (physical row addressing; caller = pseudo channel) --
  /// Sense+restore of one physical row (REF sweep step / TRR victim refresh).
  void refresh_physical_row(std::uint32_t physical_row, Cycle now, double temperature_c);
  /// Treats every row as refreshed at `now` (self-refresh exit after at
  /// least one full internal sweep that started at `refresh_start`):
  /// pending fault state of tracked rows materializes first — with decay
  /// accrued only up to one refresh window past `refresh_start` — then all
  /// refresh timestamps collapse to `now`.
  void note_full_refresh(Cycle now, Cycle refresh_start, double temperature_c);

  // --- Batch hammering (the Bender HAMMER macro-op) ---------------------
  /// `count` double-sided hammers: alternating ACT+PRE pairs to both logical
  /// rows, each held open for `on_time` cycles (values <= tRAS mean minimal
  /// on-time; larger values engage the RowPress multiplier). The bank must
  /// be precharged. `end` is the cycle when the batch completes (the
  /// executor advances the clock).
  void hammer_pair(std::uint32_t logical_row_a, std::uint32_t logical_row_b, std::uint64_t count,
                   Cycle on_time, Cycle end, double temperature_c);
  /// `count` single-sided hammers of one row.
  void hammer_single(std::uint32_t logical_row, std::uint64_t count, Cycle on_time, Cycle end,
                     double temperature_c);

  // --- Introspection (tests, analytics) ---------------------------------
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] double disturbance_of_physical(std::uint32_t physical_row) const;
  [[nodiscard]] bool row_materialized_physical(std::uint32_t physical_row) const;
  [[nodiscard]] const RowScrambler& scrambler() const { return *scrambler_; }
  [[nodiscard]] const fault::BankContext& context() const { return context_; }
  /// Pending-work check used by tests to confirm hot-path skip behaviour.
  [[nodiscard]] std::size_t tracked_rows() const { return rows_.size(); }

  /// Telemetry sink for bit-flip materialization events (attached through
  /// Device::set_telemetry; nullptr detaches).
  void set_telemetry(telemetry::Telemetry* sink) { telemetry_ = sink; }

  /// Planted bug (differential-rig sensitivity tests only): the batch
  /// hammer macro-ops skip the final own-ACT re-settle of the aggressors,
  /// leaving stale disturbance behind. Wired through Device::set_engine.
  void set_stale_flush_bug(bool enabled) { stale_flush_bug_ = enabled; }

private:
  struct RowState {
    std::vector<std::uint8_t> raw;
    std::vector<std::uint8_t> written;
  };

  /// Per-row disturbance accumulator, structure-of-arrays: a dense value
  /// lane plus a liveness lane, allocated lazily on the first deposit (most
  /// banks in a device never see an ACT). The touched list remembers every
  /// row whose entry went live since the last full refresh so clearing and
  /// sweeping cost O(touched), not O(rows); erased rows stay in the list
  /// and are skipped via the liveness lane.
  class DisturbanceMap {
  public:
    void add(std::uint32_t row, double weight, std::size_t rows) {
      if (value_.empty()) {
        value_.assign(rows, 0.0);
        live_.assign(rows, 0);
        tracked_.assign(rows, 0);
      }
      if (tracked_[row] == 0) {
        tracked_[row] = 1;
        touched_.push_back(row);
      }
      if (live_[row] == 0) {
        live_[row] = 1;
        value_[row] = 0.0;
      }
      value_[row] += weight;
    }
    [[nodiscard]] double get(std::uint32_t row) const {
      return value_.empty() || live_[row] == 0 ? 0.0 : value_[row];
    }
    [[nodiscard]] bool contains(std::uint32_t row) const {
      return !value_.empty() && live_[row] != 0;
    }
    void erase(std::uint32_t row) {
      if (!value_.empty()) live_[row] = 0;
    }
    void clear() {
      for (const std::uint32_t row : touched_) {
        live_[row] = 0;
        tracked_[row] = 0;
      }
      touched_.clear();
    }
    /// Rows with a live entry, in first-deposit order (the canonical sweep
    /// order full-refresh settling uses). Each live row appears once.
    [[nodiscard]] std::vector<std::uint32_t> live_rows() const {
      std::vector<std::uint32_t> rows;
      rows.reserve(touched_.size());
      for (const std::uint32_t row : touched_) {
        if (live_[row] != 0) rows.push_back(row);
      }
      return rows;
    }

  private:
    std::vector<double> value_;
    std::vector<std::uint8_t> live_;     ///< row currently holds disturbance
    std::vector<std::uint8_t> tracked_;  ///< row is already on the touched list
    std::vector<std::uint32_t> touched_;
  };

  /// Sense + restore: materializes pending retention/RowHammer effects into
  /// `raw`, resets disturbance, advances the refresh timestamp.
  void settle(std::uint32_t physical_row, Cycle now, double temperature_c);
  /// settle() with decay accrued only up to `decayed_until` (self-refresh:
  /// the internal engine kept the row alive from then on).
  void settle_impl(std::uint32_t physical_row, Cycle now, Cycle decayed_until,
                   double temperature_c);
  /// RowPress disturbance multiplier for an aggressor held open `on_time`.
  [[nodiscard]] double press_factor(Cycle on_time) const;
  RowState& ensure_materialized(std::uint32_t physical_row);
  /// Adds `scale` activations' worth of disturbance around physical row
  /// `aggressor` (distance-1 and distance-2 neighbours, same subarray only).
  void add_act_disturbance(std::uint32_t aggressor, double scale);
  /// Raw image of a neighbour row for coupling, generating power-on content
  /// into `scratch` when the row was never materialized. Returns an empty
  /// span when the neighbour is absent or across a subarray boundary.
  [[nodiscard]] std::span<const std::uint8_t> neighbour_data(std::uint32_t physical_row,
                                                             std::int64_t neighbour,
                                                             std::vector<std::uint8_t>& scratch);

  const Geometry* geometry_;
  TimingParams timings_;
  fault::BankContext context_;
  const RowScrambler* scrambler_;
  const fault::RowHammerModel* rh_model_;
  const fault::RetentionModel* retention_model_;
  telemetry::Telemetry* telemetry_ = nullptr;

  BankTiming timing_;
  std::uint32_t open_physical_ = 0;
  Cycle act_cycle_ = 0;

  std::unordered_map<std::uint32_t, RowState> rows_;
  /// One-entry memo for ensure_materialized: consecutive column accesses hit
  /// the same open row, and rows_ never erases, so node references stay
  /// valid for the bank's lifetime.
  RowState* memo_state_ = nullptr;
  std::uint32_t memo_row_ = 0;
  DisturbanceMap disturbance_;
  std::unordered_map<std::uint32_t, Cycle> last_refresh_;
  bool stale_flush_bug_ = false;
  /// Refresh timestamp for rows with no explicit last_refresh_ entry
  /// (power-up = 0; advanced by full-refresh events like self-refresh).
  Cycle epoch_ = 0;
  std::vector<std::uint8_t> scratch_above_;
  std::vector<std::uint8_t> scratch_below_;
  Stats stats_;
};

}  // namespace rh::hbm
