// One HBM2 pseudo channel: 16 banks behind a shared 64-bit data path, a
// refresh pointer, and the in-DRAM mitigation engines that snoop its command
// stream (the proprietary sampler TRR of paper §5 and the documented JEDEC
// TRR mode).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/retention_model.hpp"
#include "fault/rowhammer_model.hpp"
#include "hbm/bank.hpp"
#include "hbm/geometry.hpp"
#include "hbm/scramble.hpp"
#include "hbm/timing.hpp"
#include "hbm/timing_checker.hpp"
#include "trr/documented_trr.hpp"
#include "trr/proprietary_trr.hpp"

namespace rh::telemetry {
class Telemetry;
}

namespace rh::hbm {

class PseudoChannel {
public:
  PseudoChannel(const Geometry& geometry, const TimingParams& timings, std::uint32_t channel,
                std::uint32_t pseudo_channel, const RowScrambler& scrambler,
                const fault::RowHammerModel& rh_model,
                const fault::RetentionModel& retention_model,
                const trr::ProprietaryTrrConfig& trr_config);

  void activate(std::uint32_t bank, std::uint32_t row, Cycle now, double temperature_c);
  void precharge(std::uint32_t bank, Cycle now, double temperature_c);
  void precharge_all(Cycle now, double temperature_c);
  void read(std::uint32_t bank, std::uint32_t column, Cycle now, bool ecc,
            std::span<std::uint8_t> out);
  void write(std::uint32_t bank, std::uint32_t column, std::span<const std::uint8_t> data,
             Cycle now);

  /// One periodic REF: advances the refresh pointer over every bank and
  /// gives both TRR engines their trigger opportunity. All banks must be
  /// precharged (ProtocolError otherwise).
  void refresh(Cycle now, double temperature_c);

  /// Self-refresh entry: the device refreshes itself internally; every
  /// command except the exit is rejected until then. All banks must be
  /// precharged.
  void enter_self_refresh(Cycle now);
  /// Self-refresh exit at `now`. Internal refresh progressed at the tREFI
  /// cadence while inside; a stay of at least one refresh window leaves
  /// every row freshly refreshed. Also resets the proprietary TRR engine
  /// (sampler and REF counter), as vendor implementations do.
  void exit_self_refresh(Cycle now, double temperature_c);
  [[nodiscard]] bool in_self_refresh() const { return self_refresh_; }

  /// Batch hammer macro-ops (see bank.hpp). The TRR sampler observes these
  /// like ordinary activations.
  void hammer_pair(std::uint32_t bank, std::uint32_t row_a, std::uint32_t row_b,
                   std::uint64_t count, Cycle on_time, Cycle end, double temperature_c);
  void hammer_single(std::uint32_t bank, std::uint32_t row, std::uint64_t count, Cycle on_time,
                     Cycle end, double temperature_c);

  [[nodiscard]] Bank& bank(std::uint32_t index);
  [[nodiscard]] const Bank& bank(std::uint32_t index) const;
  [[nodiscard]] std::uint32_t bank_count() const {
    return static_cast<std::uint32_t>(banks_.size());
  }

  /// Attaches the telemetry sink (TRR trigger events, refresh-pointer
  /// progress here; bit-flip events in the banks). Called by the device.
  void set_telemetry(telemetry::Telemetry* sink);

  /// Documented JEDEC TRR mode control (driven by device MRS writes).
  trr::DocumentedTrrMode& documented_trr() { return documented_trr_; }
  [[nodiscard]] const trr::DocumentedTrrMode& documented_trr() const { return documented_trr_; }
  /// Proprietary mitigation introspection (tests only; the host-visible
  /// interface never exposes this).
  [[nodiscard]] const trr::ProprietaryTrr& proprietary_trr() const { return proprietary_trr_; }

  /// Planted bug (differential-rig sensitivity tests only): the batched
  /// hammer macro-op skips the proprietary sampler's observation of the
  /// second aggressor row. Wired through Device::set_engine.
  void set_skip_trr_sample_bug(bool enabled) { skip_trr_sample_bug_ = enabled; }

private:
  /// Refreshes the physical neighbourhood of a logical aggressor row.
  void refresh_neighbourhood(std::uint32_t bank, std::uint32_t logical_row,
                             std::uint32_t radius, Cycle now, double temperature_c);

  /// Throws ProtocolError if the pseudo channel is in self-refresh.
  void check_not_self_refreshing() const;

  const Geometry* geometry_;
  const RowScrambler* scrambler_;
  std::uint32_t channel_ = 0;
  std::uint32_t pseudo_channel_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  TimingParams timings_;
  ChannelTiming channel_timing_;
  std::vector<Bank> banks_;
  trr::ProprietaryTrr proprietary_trr_;
  trr::DocumentedTrrMode documented_trr_;
  std::uint32_t refresh_pointer_ = 0;
  std::uint32_t rows_per_ref_ = 1;
  bool self_refresh_ = false;
  Cycle self_refresh_entry_ = 0;
  bool skip_trr_sample_bug_ = false;
};

}  // namespace rh::hbm
