// HBM2 interface clock and timing parameters.
//
// The paper's DRAM Bender build controls command timing at 1.66 ns
// granularity (600 MHz HBM2 interface clock, §3). All timings here are in
// interface-clock cycles; values follow JESD235-class HBM2 speed bins.
//
// Key derived quantity the paper relies on (§3.1): one double-sided hammer is
// two ACT+PRE pairs, so 256 K hammers = 512 K row cycles * tRC(46.7 ns)
// ≈ 23.9 ms — safely inside the 27 ms bound that keeps retention failures
// from contaminating RowHammer measurements (32 ms refresh window).
#pragma once

#include <cstdint>

namespace rh::hbm {

/// Simulated time in interface-clock cycles.
using Cycle = std::uint64_t;

/// Picoseconds per interface clock cycle: 1.66 ns at 600 MHz.
inline constexpr std::uint64_t kCyclePicoseconds = 1667;

/// Converts cycles to milliseconds of simulated wall-clock time.
[[nodiscard]] constexpr double cycles_to_ms(Cycle c) {
  return static_cast<double>(c) * static_cast<double>(kCyclePicoseconds) * 1e-9;
}

/// Converts a millisecond duration to interface cycles (rounded down).
[[nodiscard]] constexpr Cycle ms_to_cycles(double ms) {
  return static_cast<Cycle>(ms * 1e9 / static_cast<double>(kCyclePicoseconds));
}

/// Per-bank / per-channel timing constraints, in cycles.
struct TimingParams {
  Cycle tRC = 28;    ///< ACT-to-ACT, same bank (46.7 ns)
  Cycle tRAS = 20;   ///< ACT-to-PRE, same bank (33.3 ns)
  Cycle tRP = 9;     ///< PRE-to-ACT, same bank (15.0 ns)
  Cycle tRCD = 12;   ///< ACT-to-RD/WR, same bank (20.0 ns)
  Cycle tWR = 10;    ///< end of WR to PRE (16.7 ns)
  Cycle tRTP = 5;    ///< RD to PRE (8.3 ns)
  Cycle tCCD = 2;    ///< column-to-column (3.3 ns)
  Cycle tRRD = 4;    ///< ACT-to-ACT, different banks, same pseudo channel
                     ///< (tRRD_S: short, across bank groups)
  Cycle tRRD_L = 4;  ///< ACT-to-ACT within one bank group (the paper bin
                     ///< shows no visible L/S split at 600 MHz; vendor
                     ///< profiles may widen it)
  Cycle tFAW = 18;   ///< four-activate window: any 5th ACT in a pseudo
                     ///< channel waits tFAW from the 4th-previous (30 ns)
  Cycle tWTR = 5;    ///< end of WR burst to next RD on the shared data
                     ///< path (8.3 ns write-to-read turnaround)
  Cycle tRFC = 156;  ///< REF to next command (260 ns)
  Cycle tREFI = 2340;  ///< nominal REF-to-REF interval (3.9 us)

  /// Banks per bank group for the tRRD_L scope (16 banks = 4 groups of 4).
  std::uint32_t banks_per_group = 4;

  /// Standard refresh window: every row refreshed once per 32 ms.
  Cycle refresh_window = ms_to_cycles(32.0);

  /// REF commands needed per refresh window (8192 for 16 K rows refreshed in
  /// pairs, typical for this density class).
  std::uint32_t refs_per_window = 8192;
};

/// The paper's timing set (defaults above).
[[nodiscard]] inline TimingParams paper_timings() { return TimingParams{}; }

}  // namespace rh::hbm
