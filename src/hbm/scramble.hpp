// Logical-to-physical row-address scrambling.
//
// DRAM vendors remap the memory-controller-visible (logical) row address at
// the row decoder, so logically consecutive rows are not always physically
// adjacent. RowHammer experiments must therefore reverse engineer the mapping
// before choosing aggressor rows (§3.1 of the paper, following prior work).
//
// All supported mappings are involutions (l2p == p2l), which is both common
// in real decoders (XOR-based remaps) and convenient to verify.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/assert.hpp"

namespace rh::hbm {

enum class ScrambleKind : std::uint8_t {
  kIdentity,  ///< physical == logical
  kPairSwap,  ///< groups of 4: logical {0,1,2,3} -> physical {0,2,1,3}
  kXorFold    ///< bit1 twists bit0: physical = logical ^ ((logical >> 1) & 1)
};

[[nodiscard]] constexpr std::string_view to_string(ScrambleKind k) {
  switch (k) {
    case ScrambleKind::kIdentity: return "identity";
    case ScrambleKind::kPairSwap: return "pair-swap";
    case ScrambleKind::kXorFold: return "xor-fold";
  }
  return "?";
}

/// Stateless row-address scrambler for one bank.
class RowScrambler {
public:
  explicit RowScrambler(ScrambleKind kind, std::uint32_t rows_per_bank)
      : kind_(kind), rows_(rows_per_bank) {
    RH_EXPECTS(rows_per_bank >= 4 && rows_per_bank % 4 == 0);
  }

  [[nodiscard]] ScrambleKind kind() const { return kind_; }

  /// Physical row driven by the decoder for logical row `logical`.
  [[nodiscard]] std::uint32_t logical_to_physical(std::uint32_t logical) const {
    RH_EXPECTS(logical < rows_);
    switch (kind_) {
      case ScrambleKind::kIdentity: return logical;
      case ScrambleKind::kPairSwap: {
        // Within each aligned group of 4, swap the middle two entries.
        const std::uint32_t off = logical & 3u;
        if (off == 1) return logical + 1;
        if (off == 2) return logical - 1;
        return logical;
      }
      case ScrambleKind::kXorFold: return logical ^ ((logical >> 1) & 1u);
    }
    return logical;
  }

  /// Logical row that decodes to physical row `physical`. All supported
  /// mappings are involutions, so this mirrors logical_to_physical.
  [[nodiscard]] std::uint32_t physical_to_logical(std::uint32_t physical) const {
    return logical_to_physical(physical);
  }

private:
  ScrambleKind kind_;
  std::uint32_t rows_;
};

}  // namespace rh::hbm
