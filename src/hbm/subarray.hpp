// Subarray layout within a bank.
//
// The paper reverse engineers subarray boundaries with single-sided
// RowHammer (footnote 3) and finds subarrays of either 832 or 768 rows, with
// the *last* subarray of the bank (832 rows) exhibiting far fewer bitflips
// (Fig. 5, "SA Z") — hypothesized to sit next to the shared I/O circuitry.
//
// Our default layout covers 16384 rows as 8x832, 4x768, 8x832 (20 subarrays):
// the first tested region lands in 832-row subarrays (paper's SA X), the
// middle region spans 768-row subarrays (SA Y), and the bank ends with an
// 832-row subarray (SA Z).
//
// Subarray boundaries are *physical-row* concepts: callers must pass physical
// row indices (after scrambling).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rh::hbm {

/// Immutable description of where each subarray starts and ends.
class SubarrayLayout {
public:
  /// Builds the default paper-calibrated layout for `rows_per_bank` rows.
  /// For the canonical 16384-row bank this is 8x832 + 4x768 + 8x832. Other
  /// row counts get a uniform best-effort tiling with 832-row subarrays
  /// (remainder merged into the final subarray).
  static SubarrayLayout paper_layout(std::uint32_t rows_per_bank);

  /// Builds a layout from explicit subarray sizes (must sum to the bank size).
  explicit SubarrayLayout(std::vector<std::uint32_t> sizes);

  [[nodiscard]] std::uint32_t subarray_count() const {
    return static_cast<std::uint32_t>(starts_.size());
  }

  /// Index of the subarray containing physical row `row`.
  [[nodiscard]] std::uint32_t subarray_of(std::uint32_t row) const;

  /// First physical row of subarray `sa`.
  [[nodiscard]] std::uint32_t start_of(std::uint32_t sa) const {
    RH_EXPECTS(sa < subarray_count());
    return starts_[sa];
  }

  /// Number of rows in subarray `sa`.
  [[nodiscard]] std::uint32_t size_of(std::uint32_t sa) const {
    RH_EXPECTS(sa < subarray_count());
    return sizes_[sa];
  }

  /// Total rows covered (== rows_per_bank).
  [[nodiscard]] std::uint32_t total_rows() const { return total_rows_; }

  /// Relative position of `row` inside its subarray, in [0, 1). 0 and ~1 are
  /// next to the sense amplifiers at the subarray edges; 0.5 is mid-array.
  [[nodiscard]] double relative_position(std::uint32_t row) const;

  /// True if `row` lies in the bank's final subarray (the paper's SA Z).
  [[nodiscard]] bool in_last_subarray(std::uint32_t row) const {
    return subarray_of(row) == subarray_count() - 1;
  }

  /// True if `rowA` and `rowB` are in different subarrays (an aggressor at a
  /// subarray edge only disturbs victims on its own side — the paper's
  /// boundary reverse-engineering signal).
  [[nodiscard]] bool crosses_boundary(std::uint32_t rowA, std::uint32_t rowB) const {
    return subarray_of(rowA) != subarray_of(rowB);
  }

private:
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> sizes_;
  std::uint32_t total_rows_ = 0;
};

inline SubarrayLayout::SubarrayLayout(std::vector<std::uint32_t> sizes) : sizes_(std::move(sizes)) {
  RH_EXPECTS(!sizes_.empty());
  starts_.reserve(sizes_.size());
  std::uint32_t at = 0;
  for (std::uint32_t s : sizes_) {
    RH_EXPECTS(s > 0);
    starts_.push_back(at);
    at += s;
  }
  total_rows_ = at;
}

inline SubarrayLayout SubarrayLayout::paper_layout(std::uint32_t rows_per_bank) {
  std::vector<std::uint32_t> sizes;
  if (rows_per_bank == 16384) {
    for (int i = 0; i < 8; ++i) sizes.push_back(832);
    for (int i = 0; i < 4; ++i) sizes.push_back(768);
    for (int i = 0; i < 8; ++i) sizes.push_back(832);
  } else {
    std::uint32_t remaining = rows_per_bank;
    while (remaining > 2 * 832) {
      sizes.push_back(832);
      remaining -= 832;
    }
    sizes.push_back(remaining);
  }
  return SubarrayLayout(std::move(sizes));
}

inline std::uint32_t SubarrayLayout::subarray_of(std::uint32_t row) const {
  RH_EXPECTS(row < total_rows_);
  // Binary search over starts_ (20 entries: a linear scan would also do, but
  // this is on the per-bit fault-model path via relative_position).
  std::uint32_t lo = 0;
  std::uint32_t hi = subarray_count();
  while (hi - lo > 1) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (starts_[mid] <= row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

inline double SubarrayLayout::relative_position(std::uint32_t row) const {
  const std::uint32_t sa = subarray_of(row);
  return (static_cast<double>(row - starts_[sa]) + 0.5) / static_cast<double>(sizes_[sa]);
}

}  // namespace rh::hbm
