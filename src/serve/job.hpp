// One tenant-submitted campaign job and its on-disk footprint.
//
// A Job owns exactly the state one Campaign::run() call owns — result,
// counters, profile, span sheet, journal, metrics stream, worker status —
// because the service's contract is that a job's deterministic report is
// byte-identical to running its config through the bench CLI path. The
// scheduler (scheduler.hpp) mutates all of it under `mutex`, replicating
// the campaign engine's accounting move for move; the job just holds it.
//
// On-disk footprint, all under the server's data dir and all named by id:
//   job-<id>.json           descriptor (tenant, state, canonical config) —
//                           what restart recovery replays
//   job-<id>.journal.jsonl  the campaign checkpoint journal (the results)
//   job-<id>.stream.jsonl   rh-metrics-stream/v1 (GET /jobs/<id>/stream)
//   job-<id>.report.json    rh-run-report/v1, written at finalize
//   job-<id>.report.det.json  the deterministic projection of the same
//
// The journal doubles as the job's durable result set: resume restores it,
// the cache warms from it, and GET /jobs/<id>/results flattens it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "profiling/profile.hpp"
#include "resilience/storage.hpp"
#include "serve/config.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "telemetry/stream.hpp"
#include "telemetry/telemetry.hpp"

namespace rh::serve {

enum class JobState : std::uint8_t { kQueued, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] const char* to_string(JobState state);
[[nodiscard]] JobState job_state_from_string(const std::string& text);

/// True for states the scheduler still owes work to.
[[nodiscard]] inline bool job_state_active(JobState s) {
  return s == JobState::kQueued || s == JobState::kRunning;
}

/// Live status of one rig slot against this job (the wall samples' workers
/// array). Guarded by Job::mutex.
struct JobWorkerStatus {
  double busy_ms = 0.0;
  std::uint64_t done = 0;
  std::int64_t shard = -1;
  std::chrono::steady_clock::time_point claim;
};

struct Job {
  // --- immutable after admission --------------------------------------
  std::uint64_t id = 0;
  std::string tenant = "anonymous";
  CampaignConfig config;
  campaign::SweepSpec spec;   ///< to_sweep_spec(config), computed once
  std::uint64_t hash = 0;     ///< config_hash(config) == the journal header's
  std::string cache_prefix;   ///< sweep_cache_prefix(spec)
  std::string journal_path;
  std::string stream_path;
  std::string report_path;
  std::string det_report_path;
  std::string meta_path;

  // --- mutable, guarded by `mutex` (cancel is an atomic flag so the
  //     scheduler can observe it without the lock) -----------------------
  std::mutex mutex;
  JobState state = JobState::kQueued;
  std::atomic<bool> cancel{false};
  std::string error;  ///< first fatal failure / finalize error, for the API

  std::vector<char> done;        ///< per-shard completion, plan order
  std::size_t remaining = 0;     ///< shards not yet completed or failed
  std::uint64_t shards_cached = 0;  ///< answered from the result cache
  unsigned rigs_attached = 0;    ///< rigs currently holding this job's state
  /// Fault-injector decorrelation serial (atomic: drawn during rig build,
  /// outside the job lock — exactly Campaign::run()'s rig_serial).
  std::atomic<std::uint64_t> rig_serial{0};
  bool finalized = false;
  /// The journal writer died on a storage failure: results are no longer
  /// durable, so finalize marks the job failed with the storage reason
  /// (counted in result.storage_errors alongside stream/report losses).
  bool journal_lost = false;

  campaign::CampaignResult result;
  telemetry::MetricsRegistry metrics;   ///< campaign.*/resilience.* counters
  profiling::Profile profile;           ///< fleet profile (rigs merge in)
  telemetry::SpanSheet spans;
  std::unique_ptr<telemetry::Telemetry> aggregate;  ///< fleet cmd.* sink
  std::unique_ptr<campaign::JournalWriter> journal;
  std::unique_ptr<telemetry::MetricsStreamWriter> stream;
  /// Per-job storage fault injectors (null unless the server was started
  /// with a storage fault plan), one independent stream per durable output
  /// so a journal fault never moves a stream fault.
  std::unique_ptr<resilience::StorageFaultInjector> journal_injector;
  std::unique_ptr<resilience::StorageFaultInjector> stream_injector;
  std::unique_ptr<resilience::StorageFaultInjector> meta_injector;
  std::vector<JobWorkerStatus> wstatus;       ///< one slot per scheduler rig
  telemetry::CounterValues last_wall;         ///< previous wall sample's values
  std::chrono::steady_clock::time_point epoch;  ///< run start (span clock base)
};

/// Registers the campaign counter set on a fresh job's registry in the
/// exact order Campaign::run() does (snapshot key order is sorted, but the
/// stream's delta series observes registration-time zero-ness).
void register_job_counters(Job& job);

/// Completes a job whose last shard has retired: sorts timings/failures,
/// roots the span forest, emits the final stream sample, merges counters
/// into the aggregate sink, builds the rh-run-report/v1 pair, and writes
/// both report files. Caller holds job.mutex; state must still be active.
void finalize_job(Job& job);

/// One-line JSON descriptor for GET /jobs/<id> (and the jobs list).
[[nodiscard]] std::string job_status_json(Job& job);

/// Persisted job-<id>.json descriptor (canonical config embedded).
[[nodiscard]] std::string job_meta_json(Job& job);

}  // namespace rh::serve
