#include "serve/observe.hpp"

#include <cassert>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "telemetry/prometheus.hpp"

namespace rh::serve {

namespace {

/// JSON number rendering shared with the exposition path, so the access log
/// and flight recorder agree with /metricsz byte-for-byte on values.
std::string num(double v) { return telemetry::prometheus_number(v); }

}  // namespace

// ---------------------------------------------------------------------------
// ServiceMetrics
// ---------------------------------------------------------------------------

ServiceMetrics::ServiceMetrics() {
  // The catalogue. Bounds follow the campaign-side convention (shard walls
  // cap at a minute); HTTP handlers are µs-scale with file-serving tails.
  registry_.histogram("serve.http_request_us", 0.0, 100000.0, 100);
  registry_.histogram("serve.queue_wait_ms", 0.0, 60000.0, 120);
  registry_.histogram("serve.steal_wait_ms", 0.0, 60000.0, 120);
  registry_.histogram("serve.shard_exec_ms", 0.0, 60000.0, 120);
  registry_.histogram("serve.cache_lookup_us", 0.0, 5000.0, 100);
  registry_.histogram("serve.cache_hit_us", 0.0, 5000.0, 100);
  registry_.counter("serve.http_requests");
  registry_.counter("serve.http_2xx");
  registry_.counter("serve.http_4xx");
  registry_.counter("serve.http_5xx");
}

void ServiceMetrics::add(const std::string& name, std::uint64_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_.counter(name).add(n);
}

void ServiceMetrics::set_gauge(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  registry_.gauge(name).set(value);
}

void ServiceMetrics::observe(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Bounds are ignored on a re-request; every histogram must come from the
  // constructor's catalogue, so a typo'd name would mint a degenerate
  // 1-bin histogram here — catch that in debug builds.
  assert(registry_.snapshot().find(name) != nullptr && "histogram not in catalogue");
  registry_.histogram(name, 0.0, 1.0, 1).observe(value);
}

telemetry::MetricsSnapshot ServiceMetrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return registry_.snapshot();
}

// ---------------------------------------------------------------------------
// AccessLog
// ---------------------------------------------------------------------------

const char* access_outcome(int status) {
  if (status == 429 || status == 503) return "rejected";
  if (status >= 500) return "server-error";
  if (status >= 400) return "client-error";
  return "ok";
}

std::string access_record_json(const AccessRecord& record) {
  std::string out = "{\"bytes\":" + std::to_string(record.bytes);
  out += ",\"method\":\"" + telemetry::json_escape(record.method) + '"';
  out += ",\"outcome\":\"" + telemetry::json_escape(record.outcome) + '"';
  out += ",\"path\":\"" + telemetry::json_escape(record.path) + '"';
  out += ",\"status\":" + std::to_string(record.status);
  out += ",\"tenant\":\"" + telemetry::json_escape(record.tenant) + '"';
  out += ",\"wall_us\":" + num(record.wall_us);
  out += '}';
  return out;
}

AccessLog::AccessLog(const std::string& path, resilience::StorageFaultInjector* injector)
    : path_(path) {
  // First boot creates the file; a restart appends to the existing log
  // (DurableFile's append mode requires the file to exist).
  const bool fresh = !std::filesystem::exists(path);
  file_ = std::make_unique<resilience::DurableFile>(path, "access log",
                                                    /*truncate=*/fresh, injector);
}

void AccessLog::record(const AccessRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!storage_error_.empty()) return;  // already dark
  try {
    file_->write_line(resilience::frame_line(access_record_json(record)));
  } catch (const common::StorageError& e) {
    // Same contract as the metrics stream: the access log is advisory, so
    // a dying disk silences it instead of failing requests.
    storage_error_ = e.what();
    file_.reset();
  }
}

bool AccessLog::degraded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return !storage_error_.empty();
}

std::string AccessLog::storage_error() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return storage_error_;
}

const std::string& AccessLog::path() const { return path_; }

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

const char* to_string(ServiceEventKind kind) {
  switch (kind) {
    case ServiceEventKind::kAdmit: return "admit";
    case ServiceEventKind::kReject: return "reject";
    case ServiceEventKind::kSteal: return "steal";
    case ServiceEventKind::kRetry: return "retry";
    case ServiceEventKind::kStorageError: return "storage-error";
    case ServiceEventKind::kCancel: return "cancel";
    case ServiceEventKind::kFinalize: return "finalize";
    case ServiceEventKind::kRecover: return "recover";
    case ServiceEventKind::kFatal: return "fatal";
    case ServiceEventKind::kDump: return "dump";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity_);
}

void FlightRecorder::record(ServiceEventKind kind, std::uint64_t job,
                            std::string_view tenant, std::string detail) {
  const auto now = std::chrono::steady_clock::now();
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceEvent& slot = ring_[seq_ % capacity_];
  slot.seq = seq_++;
  slot.t_ms = std::chrono::duration<double, std::milli>(now - epoch_).count();
  slot.kind = kind;
  slot.job = job;
  slot.tenant.assign(tenant.data(), tenant.size());
  slot.detail = std::move(detail);
}

std::vector<ServiceEvent> FlightRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ServiceEvent> out;
  const std::uint64_t live = seq_ < capacity_ ? seq_ : capacity_;
  out.reserve(live);
  for (std::uint64_t i = seq_ - live; i < seq_; ++i) out.push_back(ring_[i % capacity_]);
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::string FlightRecorder::dump_jsonl() const {
  const std::vector<ServiceEvent> snapshot = events();
  std::uint64_t recorded_total = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    recorded_total = seq_;
  }
  const std::uint64_t dropped =
      recorded_total > capacity_ ? recorded_total - capacity_ : 0;
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"dropped\":" + std::to_string(dropped) +
                    ",\"kind\":\"rh-flightrec\",\"recorded\":" +
                    std::to_string(recorded_total) + ",\"version\":1}\n";
  for (const ServiceEvent& e : snapshot) {
    out += "{\"detail\":\"" + telemetry::json_escape(e.detail) + '"';
    out += ",\"job\":" + std::to_string(e.job);
    out += ",\"kind\":\"";
    out += to_string(e.kind);
    out += '"';
    out += ",\"seq\":" + std::to_string(e.seq);
    out += ",\"t_ms\":" + num(e.t_ms);
    out += ",\"tenant\":\"" + telemetry::json_escape(e.tenant) + "\"}\n";
  }
  return out;
}

std::string FlightRecorder::dump_to_dir(const std::string& dir) const {
  const std::string text = dump_jsonl();
  std::uint64_t serial = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    serial = dumps_++;
  }
  char name[96];
  std::snprintf(name, sizeof name, "flightrec-%lld-%llu.jsonl",
                static_cast<long long>(std::time(nullptr)),
                static_cast<unsigned long long>(serial));
  const std::string path = dir + "/" + name;
  try {
    resilience::write_file_atomic(path, text, "flight-recorder dump");
  } catch (const common::Error&) {
    return "";  // a post-mortem aid must never be a crash source
  }
  return path;
}

}  // namespace rh::serve
