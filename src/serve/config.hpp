// The serializable campaign-job description the service accepts over HTTP.
//
// serve::CampaignConfig is the *science* half of a job — device seed and
// geometry knobs, TRR, survey/onset sweep shape, characterizer parameters,
// and the optional fault-storm environment — in one flat struct with a
// canonical JSON form. The *scheduling* half (rigs, retries, queue limits)
// belongs to the server, never to the job: two tenants submitting the same
// physics must produce the same bytes regardless of how the pool was sized.
//
// Canonical form and hashing:
//   * to_canonical_json emits members in alphabetical key order with
//     round-trip-exact doubles (format_double_exact), so any two configs
//     that parse equal serialize identically, byte for byte.
//   * config_hash(cfg) is NOT a hash of the JSON text. The config is first
//     lowered to the campaign::SweepSpec it denotes (to_sweep_spec) and
//     hashed with campaign::sweep_config_hash — the same FNV-1a fingerprint
//     the checkpoint-journal header records. One hash therefore names the
//     sweep everywhere: the HTTP API, the journal on disk, the metrics
//     stream header, and the result cache. Fields that cannot change the
//     measured bytes (label, fault plan) are excluded by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/record_io.hpp"
#include "core/spatial.hpp"
#include "hbm/device.hpp"
#include "resilience/fault.hpp"

namespace rh::serve {

/// One submittable unit of campaign work. Defaults describe the paper's
/// fig3/fig4-style full-methodology survey on the calibrated device.
struct CampaignConfig {
  /// Sweep family: "survey" (plan_survey_shards over channels/regions) or
  /// "onset" (explicit single-pattern shards per hammer count, the
  /// ablation_hammer_count sweep).
  std::string kind = "survey";
  /// Report label (rh-run-report/v1 `campaign` field). Not hashed.
  std::string label = "survey";

  // --- device ----------------------------------------------------------
  std::uint64_t seed = 0x5AFA2123;  ///< fault-model seed (the calibrated chip)
  std::string scramble = "pair-swap";  ///< identity | pair-swap | xor-fold
  bool trr_enabled = true;
  std::uint32_t trr_period = 17;
  double temperature_c = 85.0;
  bool settle_thermal = true;

  // --- survey shape (kind == "survey") ---------------------------------
  std::vector<std::uint32_t> channels{0, 1, 2, 3, 4, 5, 6, 7};
  std::uint32_t pseudo_channel = 0;
  std::uint32_t bank = 0;
  std::uint32_t region_rows = 3072;
  std::uint32_t row_stride = 96;
  bool wcdp_by_ber = false;

  // --- characterizer ---------------------------------------------------
  std::uint64_t ber_hammers = 262'144;
  std::uint64_t max_hammers = 262'144;
  std::uint64_t wcdp_tolerance = 2'048;
  std::uint32_t surround_rows = 8;
  bool enforce_retention_bound = true;
  std::uint64_t aggressor_on_time = 0;

  // --- onset shape (kind == "onset") -----------------------------------
  /// One kSinglePattern shard per (hammer count, channel).
  std::vector<std::uint64_t> hammer_counts{8'192,  16'384,  32'768,  65'536,
                                           98'304, 131'072, 196'608, 262'144};
  std::uint32_t onset_rows = 10;
  std::uint32_t onset_row_begin = 410;
  std::uint32_t onset_row_stride = 23;
  std::uint32_t onset_pattern = 0;

  // --- scheduling granularity + fault environment ----------------------
  /// Checkpoint/retry granularity of the shard plan (survey kind).
  std::uint32_t max_rows_per_shard = 64;
  /// Transport-fault storm rate per opportunity, [0, 1]. Not hashed: the
  /// resilience plane guarantees results are byte-identical under faults.
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0x57084;
};

/// Canonical JSON: one object, alphabetical keys, exact doubles, plus a
/// "schema":"rh-campaign-config/v1" tag. parse -> emit is a fixed point.
[[nodiscard]] std::string to_canonical_json(const CampaignConfig& config);

/// Parses a config from JSON text (any member order). Unknown keys and
/// out-of-domain values throw common::ConfigError; absent keys keep their
/// defaults, so `{}` is the default survey job.
[[nodiscard]] CampaignConfig config_from_json(const std::string& text, const std::string& what);

/// Same, from an already-parsed JSON object (e.g. the "config" member of a
/// persisted job descriptor).
[[nodiscard]] CampaignConfig config_from_json(const campaign::JsonValue& doc,
                                              const std::string& what);

/// The device this config describes (paper part + seed/scramble/TRR knobs).
[[nodiscard]] hbm::DeviceConfig to_device_config(const CampaignConfig& config);

/// Lowers the config to the exact sweep the campaign engine runs. The same
/// config always produces the same spec (shard plan included).
[[nodiscard]] campaign::SweepSpec to_sweep_spec(const CampaignConfig& config);

/// The config's fault-storm plan (enabled() == false when fault_rate is 0).
[[nodiscard]] resilience::FaultPlan to_fault_plan(const CampaignConfig& config);

/// The stable identity of this config's sweep — identical to the
/// config_hash the checkpoint journal and metrics stream headers record.
[[nodiscard]] std::uint64_t config_hash(const CampaignConfig& config);

/// `config_hash` rendered the way journal headers and the HTTP API print
/// it: 16 lowercase hex digits.
[[nodiscard]] std::string config_hash_hex(const CampaignConfig& config);

}  // namespace rh::serve
